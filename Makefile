# Developer entry points. `make check` is the tier-1 gate (build + tests);
# `make race` adds the data-race check on the parallel sample runner and
# the detection service's loopback differential; `make cover` enforces
# the coverage floor; `make bench-smoke` runs each hot-path
# microbenchmark once as a compile-and-run sanity check (use `make
# bench` for real numbers); `make fuzz-smoke` gives the wire decoder's
# fuzzer a short budget.

GO ?= go
COVER_MIN ?= 70
FUZZ_TIME ?= 30s

.PHONY: all build test race vet check cover bench-smoke bench-smoke-mp bench bench-guard bench-baseline bench-profile hotpath fuzz-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run 'TestRunMany|TestArenaDifferential|TestInterestDifferential|TestReaderIndexDifferential|TestRunBatchedMatchesUnbatched|TestColumnarDifferential|TestBatchChopping|TestWitness|TestExamineDeterministic|TestRunDeterministic|TestMergeSamplesClones|TestMergeSamplesOrderInsensitive|TestLoopback|TestEngineMatchesInProcess|TestShedPolicy|TestShutdownDrains|TestSnapshotDuringIngest|TestShedVisibleInSnapshot|TestCluster' ./internal/report/ ./internal/svd/ ./internal/frd/ ./internal/obs/ ./internal/server/ ./internal/cluster/

vet:
	$(GO) vet ./...

check: build vet test

# Per-package statement coverage with a repo-wide floor. The floor is a
# ratchet: raise COVER_MIN when coverage grows, never lower it to admit a
# regression.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% is below the $(COVER_MIN)% floor" >&2; exit 1; }

bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkHotPath' -benchtime 1x .

# Multi-core smoke: the shard sweep and the columnar ingest hop under
# GOMAXPROCS=4, one iteration each. CI machines are the only multi-core
# hardware this repo reliably sees, so this is where cross-shard
# interleavings (ring handoff, pool recycling under real parallelism)
# get exercised at all — it is a compile-and-run sanity check, not a
# measurement.
bench-smoke-mp:
	GOMAXPROCS=4 $(GO) test -run NONE -bench 'BenchmarkServerIngest|BenchmarkWireDecodeColumns' -benchtime 1x -benchmem .

bench:
	$(GO) test -run NONE -bench 'BenchmarkHotPath|BenchmarkOverhead|BenchmarkDetectorStep' -benchmem .

# Fail if the detectors' hot path regressed beyond tolerance over the
# recorded baseline (BENCH_BASELINE.json): 10% by default, with noisier
# entries (the multi-thread sweeps, the service benchmarks) carrying
# their own per-entry tolerance in the baseline file. Refresh with
# `make bench-baseline` after a deliberate perf change — it preserves
# per-entry tolerances and allocation ceilings. The service benchmarks
# run as separate invocations because their op is a whole execution
# replay, not a single detector step, so they need their own -benchtime.
# Every invocation passes -benchmem: several baseline entries carry an
# allocs/op ceiling (zero for the steady-state ingest hop and the
# detector step benchmarks), and benchguard fails a ceiling it cannot
# check. BenchmarkHotPathSVDStep additionally carries a max_ns ceiling
# in the baseline — the paper-facing 25 ns/instr budget — so a drift
# inside the percentage tolerance still fails once it crosses the
# absolute line.
# 8M ops ≈ two full passes over the 4.2M-event recorded stream: the
# first pass faults in block tables and CU arena pages, the second
# runs warm, so the guarded number reflects the steady state the
# ns/instr claims are about rather than first-touch allocation.
BENCH_GUARD = $(GO) test -run NONE -bench 'BenchmarkHotPath(SVD|FRD)Step(Threads|Witness|Zipf)?$$' -benchtime 8000000x -count 3 -benchmem .
BENCH_GUARD_WIRE = $(GO) test -run NONE -bench 'BenchmarkWire(Encode|Decode|DecodeColumns)$$' -benchtime 200x -count 3 -benchmem .
BENCH_GUARD_INGEST = $(GO) test -run NONE -bench 'BenchmarkServerIngest$$' -benchtime 5x -count 3 -benchmem .
# The steady group runs TWICE: Journaled and Telemetry are bounded
# RELATIVE to Steady, the guard compares per-benchmark minima, and with
# -count all repeats of one benchmark run as a single consecutive block
# — so machine-load drift between blocks skews the ratio. Two passes
# give every benchmark samples from two time windows, and min-picking
# pairs each benchmark's quietest window against the others'.
BENCH_GUARD_STEADY = $(GO) test -run NONE -bench 'BenchmarkServerIngest(Steady|Telemetry|Locality|Journaled)$$' -benchtime 50x -count 3 -benchmem .

# Up to three attempts: benchguard's calibration probe absorbs
# SUSTAINED host slowness (a slow runner scales the absolute and
# relative budgets), but a transient co-tenant burst that lands inside
# one bench window and is gone by probe time is indistinguishable from
# a real regression within a single attempt. A genuine regression fails
# all three attempts; a burst passes on a quieter retry.
bench-guard:
	@for i in 1 2 3; do \
		if { $(BENCH_GUARD); $(BENCH_GUARD_WIRE); $(BENCH_GUARD_INGEST); $(BENCH_GUARD_STEADY); $(BENCH_GUARD_STEADY); } | $(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json; then \
			exit 0; \
		fi; \
		echo "bench-guard: attempt $$i failed"; \
	done; echo "bench-guard: regression persisted across 3 attempts"; exit 1

bench-baseline:
	{ $(BENCH_GUARD); $(BENCH_GUARD_WIRE); $(BENCH_GUARD_INGEST); $(BENCH_GUARD_STEADY); $(BENCH_GUARD_STEADY); } | $(GO) run ./cmd/benchguard -record -baseline BENCH_BASELINE.json

# CPU profile of the single-thread SVD hot path, at the same op count
# the guard uses. CI runs this next to bench-guard and uploads the
# profile, so a regression the guard catches arrives with the evidence
# needed to read it (`go tool pprof BENCH_cpu.pprof`) instead of a
# reproduce-locally round trip.
bench-profile:
	$(GO) test -run NONE -bench 'BenchmarkHotPathSVDStep$$' -benchtime 2000000x -benchmem -cpuprofile BENCH_cpu.pprof .

# Machine-readable hot-path snapshot (ns/instr, allocs, Minstr/s).
hotpath:
	$(GO) run ./cmd/svdbench -hotpath -scale 2 -json BENCH_hotpath.json

# Short-budget fuzz of the wire decoder: untrusted bytes must map to the
# protocol's error taxonomy, never a panic. The committed corpus seeds
# truncations, bad magic, version skew, and length abuse. go test fuzzes
# one target per invocation, so the row and columnar decoders each run
# with their own $(FUZZ_TIME) budget.
fuzz-smoke:
	$(GO) test -run NONE -fuzz 'FuzzDeframe$$' -fuzztime $(FUZZ_TIME) ./internal/wire/
	$(GO) test -run NONE -fuzz 'FuzzDeframeColumns$$' -fuzztime $(FUZZ_TIME) ./internal/wire/
