// Benchmarks comparing SVD against the §8 related-work detector families
// implemented in this repository — happens-before (frd), lockset
// (lockset), and stale-value (stale) — and evaluating the §4.4 hardware
// SVD sketch. These extend the paper's evaluation beyond its own baseline.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/frd"
	"repro/internal/lockset"
	"repro/internal/stale"
	"repro/internal/svd"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// BenchmarkBaselineFalsePositives runs all four detector families on the
// benign-race MySQL workload (Figure 1) and the race-free PgSQL workload:
// every report is a false positive. SVD's advantage — detecting only
// erroneous executions — shows as the lowest counts.
func BenchmarkBaselineFalsePositives(b *testing.B) {
	for _, wName := range []string{"mysql-tables", "pgsql-oltp"} {
		b.Run(wName, func(b *testing.B) {
			var svdFP, frdFP, lockFP, staleFP, insts uint64
			for i := 0; i < b.N; i++ {
				w, err := workloads.ByName(wName, 1, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				m, err := w.NewVM(uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				sd := svd.New(w.Prog, w.NumThreads, svd.Options{})
				fd := frd.New(w.Prog, w.NumThreads, frd.Options{})
				ld := lockset.New(w.NumThreads, lockset.Options{})
				td := stale.New(w.NumThreads, stale.Options{})
				m.Attach(sd)
				m.Attach(fd)
				m.Attach(ld)
				m.Attach(td)
				if _, err := m.Run(1 << 25); err != nil {
					b.Fatal(err)
				}
				svdFP += sd.Stats().Violations
				frdFP += fd.Stats().Races
				lockFP += ld.Stats().Reports
				staleFP += td.Stats().Reports
				insts += sd.Stats().Instructions
			}
			m := float64(insts) / 1e6
			b.ReportMetric(float64(svdFP)/m, "svd-FP/M")
			b.ReportMetric(float64(frdFP)/m, "frd-FP/M")
			b.ReportMetric(float64(lockFP)/m, "lockset-FP/M")
			b.ReportMetric(float64(staleFP)/m, "stale-FP/M")
		})
	}
}

// BenchmarkBaselineDetection runs all four on the buggy Apache workload:
// everyone should find something; the metric is dynamic reports per
// corrupted execution (alarm volume for one real bug).
func BenchmarkBaselineDetection(b *testing.B) {
	var svdR, frdR, lockR, staleR uint64
	corrupted := 0
	for i := 0; i < b.N; i++ {
		w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 64, Buggy: true, Seed: uint64(i)})
		m, err := w.NewVM(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		sd := svd.New(w.Prog, w.NumThreads, svd.Options{})
		fd := frd.New(w.Prog, w.NumThreads, frd.Options{})
		ld := lockset.New(w.NumThreads, lockset.Options{})
		td := stale.New(w.NumThreads, stale.Options{})
		m.Attach(sd)
		m.Attach(fd)
		m.Attach(ld)
		m.Attach(td)
		if _, err := m.Run(1 << 25); err != nil {
			b.Fatal(err)
		}
		if bad, _ := w.Check(m); bad {
			corrupted++
		}
		svdR += sd.Stats().Violations
		frdR += fd.Stats().Races
		lockR += ld.Stats().Reports
		staleR += td.Stats().Reports
	}
	n := float64(b.N)
	b.ReportMetric(float64(corrupted)/n, "corrupt-rate")
	b.ReportMetric(float64(svdR)/n, "svd-reports")
	b.ReportMetric(float64(frdR)/n, "frd-reports")
	b.ReportMetric(float64(lockR)/n, "lockset-reports")
	b.ReportMetric(float64(staleR)/n, "stale-reports")
}

// BenchmarkSchedulerSensitivity asks whether the reproduction's results
// depend on the interleaving generator: the same workloads run under the
// random-quantum scheduler and under timing-first scheduling driven by the
// MSI cache cost model (the paper's Simics+Wisconsin-timing substrate
// style). The bug-detection and false-positive characteristics should be
// of the same order under both.
func BenchmarkSchedulerSensitivity(b *testing.B) {
	modes := []struct {
		name string
		mode vm.ScheduleMode
		cost func(threads int) vm.CostModel
	}{
		{"random-quantum", vm.Interleave, func(int) vm.CostModel { return nil }},
		{"timing-first-cache", vm.TimingFirst, func(threads int) vm.CostModel {
			return cache.NewCostModel(threads, cache.Config{Sets: 64, Ways: 4})
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var corrupted, detected int
			var pgFP, pgInsts uint64
			for i := 0; i < b.N; i++ {
				ap := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 64, Buggy: true, Seed: uint64(i)})
				m, err := ap.NewVMWith(uint64(i), mode.mode, mode.cost(ap.NumThreads))
				if err != nil {
					b.Fatal(err)
				}
				d := svd.New(ap.Prog, ap.NumThreads, svd.Options{})
				m.Attach(d)
				if _, err := m.Run(1 << 25); err != nil {
					b.Fatal(err)
				}
				if bad, _ := ap.Check(m); bad {
					corrupted++
					if d.Stats().Violations > 0 {
						detected++
					}
				}

				pg := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 128, Seed: uint64(i)})
				m, err = pg.NewVMWith(uint64(i), mode.mode, mode.cost(pg.NumThreads))
				if err != nil {
					b.Fatal(err)
				}
				d = svd.New(pg.Prog, pg.NumThreads, svd.Options{})
				m.Attach(d)
				if _, err := m.Run(1 << 25); err != nil {
					b.Fatal(err)
				}
				pgFP += d.Stats().Violations
				pgInsts += d.Stats().Instructions
			}
			b.ReportMetric(float64(corrupted)/float64(b.N), "apache-corrupt-rate")
			detRate := 0.0
			if corrupted > 0 {
				detRate = float64(detected) / float64(corrupted)
			}
			b.ReportMetric(detRate, "apache-detect-rate")
			b.ReportMetric(float64(pgFP)/(float64(pgInsts)/1e6), "pgsql-dFP/M")
		})
	}
}

// BenchmarkOptimizerImpact compiles the workloads with and without the SVL
// optimizer and compares dynamic instruction counts and detector behavior:
// optimized code performs fewer loads and branches, which reshapes the
// dependence graph SVD infers without changing program behavior.
func BenchmarkOptimizerImpact(b *testing.B) {
	for _, name := range []string{"apache-buggy", "pgsql-oltp"} {
		for _, optimized := range []bool{false, true} {
			label := name + "/O0"
			if optimized {
				label = name + "/O1"
			}
			b.Run(label, func(b *testing.B) {
				var insts, viols uint64
				corrupted := 0
				for i := 0; i < b.N; i++ {
					w, err := workloads.ByName(name, 1, uint64(i))
					if err != nil {
						b.Fatal(err)
					}
					if optimized {
						w = w.Reoptimized()
					}
					m, err := w.NewVM(uint64(i))
					if err != nil {
						b.Fatal(err)
					}
					d := svd.New(w.Prog, w.NumThreads, svd.Options{})
					m.Attach(d)
					if _, err := m.Run(1 << 25); err != nil {
						b.Fatal(err)
					}
					if bad, _ := w.Check(m); bad {
						corrupted++
					}
					insts += d.Stats().Instructions
					viols += d.Stats().Violations
				}
				n := float64(b.N)
				b.ReportMetric(float64(insts)/n, "instrs")
				b.ReportMetric(float64(viols)/n, "violations")
				b.ReportMetric(float64(corrupted)/n, "corrupt-rate")
			})
		}
	}
}

// BenchmarkHardwareSVD sweeps cache capacity for the §4.4 hardware
// detector on the buggy Apache workload: detection quality and coherence
// traffic vs cache size, with the software full-snoop detector as the
// reference point.
func BenchmarkHardwareSVD(b *testing.B) {
	run := func(b *testing.B, attach func(w *workloads.Workload, m *vm.VM) func() (uint64, uint64)) {
		var viol, misses uint64
		for i := 0; i < b.N; i++ {
			w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 64, Buggy: true, Seed: uint64(i)})
			m, err := w.NewVM(uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			get := attach(w, m)
			if _, err := m.Run(1 << 25); err != nil {
				b.Fatal(err)
			}
			v, ms := get()
			viol += v
			misses += ms
		}
		b.ReportMetric(float64(viol)/float64(b.N), "violations")
		b.ReportMetric(float64(misses)/float64(b.N), "cache-misses")
	}

	b.Run("software", func(b *testing.B) {
		run(b, func(w *workloads.Workload, m *vm.VM) func() (uint64, uint64) {
			d := svd.New(w.Prog, w.NumThreads, svd.Options{})
			m.Attach(d)
			return func() (uint64, uint64) { return d.Stats().Violations, 0 }
		})
	})
	for _, sets := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("hw-%d-lines", sets*4), func(b *testing.B) {
			run(b, func(w *workloads.Workload, m *vm.VM) func() (uint64, uint64) {
				hw, err := svd.NewHardware(w.Prog, w.NumThreads, svd.Options{}, cache.Config{Sets: sets, Ways: 4})
				if err != nil {
					b.Fatal(err)
				}
				m.Attach(hw)
				return func() (uint64, uint64) { return hw.Det.Stats().Violations, hw.Caches.Stats().Misses }
			})
		})
	}
}
