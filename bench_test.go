// Benchmarks regenerating the paper's evaluation (§6-7). Each benchmark
// corresponds to a row of Table 2, a claim of §7.1/§7.3, the BER scenario
// of §1.1, or an ablation of a §4.2-4.3 design choice; DESIGN.md maps
// experiment ids to benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// The interesting outputs are the custom metrics (violations/M,
// races/M, staticFP, ns/instr, rollbacks, ...), not the wall-clock time of
// the benchmark loop itself.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ber"
	"repro/internal/frd"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/svd"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// benchSample runs one workload sample under both detectors and reports
// Table 2's per-row metrics.
func benchSample(b *testing.B, w *workloads.Workload) {
	b.Helper()
	var last *report.Sample
	for i := 0; i < b.N; i++ {
		s, err := report.Run(w, uint64(i), report.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	m := float64(last.Instructions) / 1e6
	b.ReportMetric(m, "Minstrs")
	b.ReportMetric(float64(last.SVD.DynamicFalse)/m, "svd-dFP/M")
	b.ReportMetric(float64(last.FRD.DynamicFalse)/m, "frd-dFP/M")
	b.ReportMetric(float64(len(last.SVD.FalseSites)), "svd-sFP")
	b.ReportMetric(float64(len(last.FRD.FalseSites)), "frd-sFP")
	b.ReportMetric(float64(last.LogEntries), "aposteriori")
	b.ReportMetric(float64(last.CUs)/m, "CUs/M")
	b.ReportMetric(b2f(last.SVD.FoundBug || last.LogFoundBug), "svd-found-bug")
	b.ReportMetric(b2f(last.FRD.FoundBug), "frd-found-bug")
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- Table 2, rows 1-2: Apache (erroneous and bug-free executions) ---

func BenchmarkTable2ApacheBuggy(b *testing.B) {
	benchSample(b, workloads.ApacheLog(workloads.ApacheConfig{
		Threads: 4, Requests: 128, Buggy: true, Seed: 1,
	}))
}

func BenchmarkTable2ApacheFixed(b *testing.B) {
	benchSample(b, workloads.ApacheLog(workloads.ApacheConfig{
		Threads: 4, Requests: 128, Buggy: false, Seed: 1,
	}))
}

// --- Table 2, rows 3-4: MySQL (the prepared-query bug; benign races) ---

func BenchmarkTable2MySQLPreparedBuggy(b *testing.B) {
	benchSample(b, workloads.MySQLPrepared(workloads.MySQLPreparedConfig{
		Threads: 4, Queries: 96, Buggy: true, Seed: 1,
	}))
}

func BenchmarkTable2MySQLTables(b *testing.B) {
	benchSample(b, workloads.MySQLTables(workloads.MySQLTablesConfig{
		Lockers: 3, Ops: 160,
	}))
}

// --- Table 2, row 5: PgSQL (race-free; the SVD/FRD inversion) ---

func BenchmarkTable2PgSQL(b *testing.B) {
	benchSample(b, workloads.PgSQLOLTP(workloads.PgSQLConfig{
		Warehouses: 4, Terminals: 4, Txns: 256, Seed: 1,
	}))
}

// --- §7.3 overhead: the detectors' slowdown over bare execution ---

func benchOverhead(b *testing.B, attach func(w *workloads.Workload, m *vm.VM)) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 64, Seed: 1})
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := w.NewVM(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if attach != nil {
			attach(w, m)
		}
		n, err := m.Run(1 << 26)
		if err != nil {
			b.Fatal(err)
		}
		instrs += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
}

func BenchmarkOverheadBare(b *testing.B) { benchOverhead(b, nil) }

func BenchmarkOverheadSVD(b *testing.B) {
	benchOverhead(b, func(w *workloads.Workload, m *vm.VM) {
		m.AttachBatch(svd.New(w.Prog, w.NumThreads, svd.Options{}))
	})
}

func BenchmarkOverheadFRD(b *testing.B) {
	benchOverhead(b, func(w *workloads.Workload, m *vm.VM) {
		m.AttachBatch(frd.New(w.Prog, w.NumThreads, frd.Options{}))
	})
}

// --- §7.3 scaling: execution length vs static and dynamic FPs ---

func BenchmarkScalingLength(b *testing.B) {
	for _, factor := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("factor-%d", factor), func(b *testing.B) {
			var pt report.ScalingPoint
			for i := 0; i < b.N; i++ {
				pts, err := report.ScalingSweep([]int{factor}, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				pt = pts[len(pts)-1] // the pgsql point
			}
			b.ReportMetric(pt.MInsts, "Minstrs")
			b.ReportMetric(float64(pt.StaticFP), "staticFP")
			b.ReportMetric(float64(pt.DynFP), "dynFP")
		})
	}
}

// --- Ablations of the §4.2-4.3 design choices ---

// ablationRun runs the PgSQL and buggy-Apache workloads under the given
// SVD options, reporting false positives (pgsql) and bug detection
// (apache).
func ablationRun(b *testing.B, opts svd.Options) {
	b.Helper()
	var fp, fpInsts, detect, truePos, trueSites uint64
	for i := 0; i < b.N; i++ {
		pg := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 192, Seed: uint64(i)})
		s, err := report.Run(pg, uint64(i), report.Options{SVD: opts})
		if err != nil {
			b.Fatal(err)
		}
		fp += s.SVD.DynamicFalse
		fpInsts += s.Instructions

		ap := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 64, Buggy: true, Seed: uint64(i)})
		s, err = report.Run(ap, uint64(i), report.Options{SVD: opts})
		if err != nil {
			b.Fatal(err)
		}
		if s.Erroneous && (s.SVD.FoundBug || s.LogFoundBug) {
			detect++
		}
		truePos += s.SVD.DynamicTrue
		trueSites += uint64(len(s.SVD.TrueSites))
	}
	n := float64(b.N)
	b.ReportMetric(float64(fp)/(float64(fpInsts)/1e6), "pgsql-dFP/M")
	b.ReportMetric(float64(detect)/n, "apache-detect-rate")
	b.ReportMetric(float64(truePos)/n, "apache-dTP")
	b.ReportMetric(float64(trueSites)/n, "apache-true-sites")
}

// BenchmarkAblationBaseline is the paper's published configuration.
func BenchmarkAblationBaseline(b *testing.B) { ablationRun(b, svd.Options{}) }

// BenchmarkAblationCheckAllBlocks widens the strict-2PL check from input
// blocks to whole CU footprints (§4.3 argues input-only reduces FPs).
func BenchmarkAblationCheckAllBlocks(b *testing.B) {
	ablationRun(b, svd.Options{CheckAllBlocks: true})
}

// BenchmarkAblationNoAddressDeps drops address dependences (§4.3's
// vector/pointer handling).
func BenchmarkAblationNoAddressDeps(b *testing.B) {
	ablationRun(b, svd.Options{NoAddressDeps: true})
}

// BenchmarkAblationNoControlDeps drops the Skipper control stack (§4.2).
func BenchmarkAblationNoControlDeps(b *testing.B) {
	ablationRun(b, svd.Options{NoControlDeps: true})
}

// BenchmarkAblationBlockSize evaluates larger detection blocks (§6.2 used
// word-size blocks to avoid false sharing).
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, shift := range []uint{0, 2, 4} {
		b.Run(fmt.Sprintf("words-%d", 1<<shift), func(b *testing.B) {
			ablationRun(b, svd.Options{BlockShift: shift})
		})
	}
}

// --- §1.1 BER: rollback cost vs checkpoint interval ---

func BenchmarkBERInterval(b *testing.B) {
	for _, interval := range []uint64{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("interval-%d", interval), func(b *testing.B) {
			w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 48, Buggy: true, Seed: 1})
			var rollbacks, wasted, total uint64
			avoided := 0
			for i := 0; i < b.N; i++ {
				m, err := w.NewVM(uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				det := svd.New(w.Prog, w.NumThreads, svd.Options{})
				m.Attach(det)
				st, err := ber.Run(m, det, ber.Config{CheckpointInterval: interval})
				if err != nil {
					b.Fatal(err)
				}
				if bad, _ := w.Check(m); !bad {
					avoided++
				}
				rollbacks += uint64(st.Rollbacks)
				wasted += st.WastedInstructions
				total += st.TotalInstructions
			}
			b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks")
			b.ReportMetric(float64(wasted)/float64(total)*100, "wasted-%")
			b.ReportMetric(float64(avoided)/float64(b.N), "avoid-rate")
		})
	}
}

// --- Substrate microbenchmarks: VM and detector throughput ---

func BenchmarkVMThroughput(b *testing.B) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m, err := w.NewVM(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		n, err := m.Run(1 << 26)
		if err != nil {
			b.Fatal(err)
		}
		instrs += n
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkDetectorStep(b *testing.B) {
	// Raw per-event detector cost on a synthetic event stream.
	w := workloads.MySQLTables(workloads.MySQLTablesConfig{Lockers: 3, Ops: 40})
	det := svd.New(w.Prog, w.NumThreads, svd.Options{})
	m, err := w.NewVM(1)
	if err != nil {
		b.Fatal(err)
	}
	var evs []vm.Event
	m.Attach(vm.ObserverFunc(func(ev *vm.Event) { evs = append(evs, *ev) }))
	if _, err := m.Run(1 << 20); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i, k := 0, 0; i < b.N; i++ {
		det.Step(&evs[k])
		// Index wrap, not i%len(evs): a 64-bit divide per iteration is
		// ~2ns of harness overhead on the CI host, charged to the
		// detector it is supposed to measure.
		if k++; k == len(evs) {
			k = 0
		}
	}
}

// --- Detector hot path: per-instruction cost and allocation rate ---
//
// The tentpole metrics for the flat block store, CU arena, and parallel
// runner: ns/instr and allocs (via -benchmem) of the detectors' Step loops
// and of whole sample runs.

// recordEvents replays a workload once and captures its event stream.
func recordEvents(b *testing.B, w *workloads.Workload, maxSteps uint64) []vm.Event {
	b.Helper()
	m, err := w.NewVM(1)
	if err != nil {
		b.Fatal(err)
	}
	var evs []vm.Event
	m.Attach(vm.ObserverFunc(func(ev *vm.Event) { evs = append(evs, *ev) }))
	if _, err := m.Run(maxSteps); err != nil {
		b.Fatal(err)
	}
	return evs
}

// BenchmarkHotPathSVDStep measures SVD's cost per observed instruction on
// the PgSQL stream (the largest bug-free Table 2 row).
func BenchmarkHotPathSVDStep(b *testing.B) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	evs := recordEvents(b, w, 1<<22)
	det := svd.New(w.Prog, w.NumThreads, svd.Options{})
	// One untimed pass faults in the block tables and CU arena pages, so
	// the timed region measures the steady-state step the ns/instr claim
	// (and the max_ns ceiling in BENCH_BASELINE.json) is about, even at
	// the guard's fixed op count.
	for i := range evs {
		det.Step(&evs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i, k := 0, 0; i < b.N; i++ {
		det.Step(&evs[k])
		// Index wrap, not i%len(evs): a 64-bit divide per iteration is
		// ~2ns of harness overhead on the CI host, charged to the
		// detector it is supposed to measure.
		if k++; k == len(evs) {
			k = 0
		}
	}
	b.StopTimer()
	st := det.Stats()
	if st.CUsCreated > 0 {
		b.ReportMetric(float64(st.CUsReused)/float64(st.CUsCreated), "cu-reuse-rate")
	}
}

// zipfProgram is the tiny fixed program under the synthetic Zipf
// streams: one load site, one store site, so every event is a memory
// access and the measured cost is pure detector hot path.
func zipfProgram() *isa.Program {
	code := []isa.Instr{
		isa.Load(isa.Reg(8), isa.RegZero, 0),
		isa.Store(isa.Reg(8), isa.RegZero, 0),
		isa.Halt(),
	}
	return &isa.Program{Name: "zipf-locality", Code: code}
}

// zipfEvents builds a synthetic stream whose addresses follow a Zipf law
// over a 64Ki-word key space: a handful of hot words hammered in long
// same-thread runs (the best case for the MRU block cache, the fanout
// quiet cache, and sub-run coalescing) against a heavy cold tail that
// misses every locality cache. Each run is 1..16 loads of one address by
// one thread, closed by a store — the read-modify-write shape the
// detectors exist to watch. flags stay opcode-consistent throughout, the
// invariant the wire decoder enforces on served streams.
func zipfEvents(threads, n int, seed int64) []vm.Event {
	prog := zipfProgram()
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<16)
	evs := make([]vm.Event, 0, n)
	var seq uint64
	for len(evs) < n {
		cpu := rng.Intn(threads)
		addr := int64(zipf.Uint64())
		run := 1 + rng.Intn(16)
		for i := 0; i <= run && len(evs) < n; i++ {
			seq++
			ev := vm.Event{Seq: seq, CPU: cpu, Addr: addr}
			if i < run {
				ev.PC, ev.Instr = 0, prog.Code[0]
				ev.IsLoad, ev.Loaded = true, addr+1
			} else {
				ev.PC, ev.Instr = 1, prog.Code[1]
				ev.IsStore, ev.Stored = true, addr+2
			}
			evs = append(evs, ev)
		}
	}
	return evs
}

// BenchmarkHotPathSVDStepZipf measures Step on the synthetic Zipf
// stream: the skew concentrates work on a few contended blocks (deep
// quiet-cache reuse, real fan-out on the stores) while the tail churns
// the 2-entry caches. Together with BenchmarkHotPathSVDStep (the PgSQL
// mix, mostly thread-private) this brackets the locality machinery from
// both ends; the skips/instr metric reports how much fan-out the quiet
// cache retires.
func BenchmarkHotPathSVDStepZipf(b *testing.B) {
	const threads = 8
	evs := zipfEvents(threads, 1<<20, 1)
	// The contended stream reports real violations; cap retention and
	// saturate the cap during warmup so the timed region measures
	// stepping, not record growth (same rationale as the server ingest
	// benchmarks).
	det := svd.New(zipfProgram(), threads, svd.Options{MaxViolations: 256})
	for i := range evs {
		det.Step(&evs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i, k := 0, 0; i < b.N; i++ {
		det.Step(&evs[k])
		// Index wrap, not i%len(evs): a 64-bit divide per iteration is
		// ~2ns of harness overhead on the CI host, charged to the
		// detector it is supposed to measure.
		if k++; k == len(evs) {
			k = 0
		}
	}
	b.StopTimer()
	st := det.Stats()
	if st.Instructions > 0 {
		b.ReportMetric(float64(st.RemoteSkipped)/float64(st.Instructions), "skips/instr")
	}
}

// BenchmarkHotPathSVDStepTelemetry measures the same stream with a
// metrics-only recorder attached — the cost of live counters and
// histograms without event tracing. Compare against BenchmarkHotPathSVDStep
// to see the telemetry layer's enabled overhead; the disabled overhead is
// BenchmarkHotPathSVDStep itself (one nil pointer check per hook).
func BenchmarkHotPathSVDStepTelemetry(b *testing.B) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	evs := recordEvents(b, w, 1<<22)
	sink := obs.NewSink(obs.SinkOptions{})
	det := svd.New(w.Prog, w.NumThreads, svd.Options{Recorder: sink.NewRecorder("bench")})
	b.ReportAllocs()
	b.ResetTimer()
	for i, k := 0, 0; i < b.N; i++ {
		det.Step(&evs[k])
		// Index wrap, not i%len(evs): a 64-bit divide per iteration is
		// ~2ns of harness overhead on the CI host, charged to the
		// detector it is supposed to measure.
		if k++; k == len(evs) {
			k = 0
		}
	}
	b.StopTimer()
	st := det.Stats()
	if st.CUsCreated > 0 {
		b.ReportMetric(float64(st.CUsReused)/float64(st.CUsCreated), "cu-reuse-rate")
	}
}

// BenchmarkHotPathSVDStepWitness measures the same stream with the
// violation flight recorder on: every load/store also enters the
// per-thread access ring. Compare against BenchmarkHotPathSVDStep for the
// recorder's enabled cost; disabled the only difference is one nil check
// per access, so the plain benchmark doubles as the disabled baseline.
func BenchmarkHotPathSVDStepWitness(b *testing.B) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	evs := recordEvents(b, w, 1<<22)
	det := svd.New(w.Prog, w.NumThreads, svd.Options{Witness: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i, k := 0, 0; i < b.N; i++ {
		det.Step(&evs[k])
		// Index wrap, not i%len(evs): a 64-bit divide per iteration is
		// ~2ns of harness overhead on the CI host, charged to the
		// detector it is supposed to measure.
		if k++; k == len(evs) {
			k = 0
		}
	}
	b.StopTimer()
	st := det.Stats()
	if st.Witnesses != st.Violations {
		b.Fatalf("witnesses = %d, violations = %d", st.Witnesses, st.Violations)
	}
}

// BenchmarkHotPathFRDStep measures FRD's cost per observed instruction on
// the same stream.
func BenchmarkHotPathFRDStep(b *testing.B) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	evs := recordEvents(b, w, 1<<22)
	det := frd.New(w.Prog, w.NumThreads, frd.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i, k := 0, 0; i < b.N; i++ {
		det.Step(&evs[k])
		// Index wrap, not i%len(evs): a 64-bit divide per iteration is
		// ~2ns of harness overhead on the CI host, charged to the
		// detector it is supposed to measure.
		if k++; k == len(evs) {
			k = 0
		}
	}
}

// BenchmarkHotPathSVDStepBatch measures the same stream consumed through
// StepBatch in default-ring-size chunks — the amortized-dispatch path the
// VM drives in production. ns/op stays per event.
func BenchmarkHotPathSVDStepBatch(b *testing.B) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	evs := recordEvents(b, w, 1<<22)
	det := svd.New(w.Prog, w.NumThreads, svd.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		lo := n % len(evs)
		hi := lo + vm.DefaultBatchCap
		if hi > len(evs) {
			hi = len(evs)
		}
		if hi-lo > b.N-n {
			hi = lo + (b.N - n)
		}
		det.StepBatch(evs[lo:hi])
		n += hi - lo
	}
}

// benchStepThreads measures per-instruction detector cost as the thread
// count grows, with per-thread work held constant. The full fan-out is
// O(threads) per memory instruction; the interest index should keep the
// curve near-flat (thread-private blocks dominate the PgSQL mix).
func benchStepThreads(b *testing.B, step func(w *workloads.Workload, evs []vm.Event, n int)) {
	for _, threads := range []int{4, 8, 16} {
		// benchstat-style key=value naming: a trailing "-N" would be
		// indistinguishable from the GOMAXPROCS suffix for baseline tools.
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			w := workloads.PgSQLOLTP(workloads.PgSQLConfig{
				Warehouses: 4, Terminals: threads, Txns: 12 * threads, Seed: 1,
			})
			evs := recordEvents(b, w, 1<<22)
			b.ReportAllocs()
			b.ResetTimer()
			step(w, evs, b.N)
		})
	}
}

// BenchmarkHotPathSVDStepThreads is the scaling tentpole: sublinear growth
// in NumCPUs. Compare against BenchmarkHotPathSVDStepThreadsNoIndex for
// the fan-out baseline.
func BenchmarkHotPathSVDStepThreads(b *testing.B) {
	benchStepThreads(b, func(w *workloads.Workload, evs []vm.Event, n int) {
		det := svd.New(w.Prog, w.NumThreads, svd.Options{})
		for i, k := 0, 0; i < n; i++ {
			det.Step(&evs[k])
			if k++; k == len(evs) {
				k = 0
			}
		}
	})
}

// BenchmarkHotPathSVDStepThreadsNoIndex is the O(NumCPUs) fan-out the
// index replaces, kept runnable for before/after curves (EXPERIMENTS.md).
func BenchmarkHotPathSVDStepThreadsNoIndex(b *testing.B) {
	benchStepThreads(b, func(w *workloads.Workload, evs []vm.Event, n int) {
		det := svd.New(w.Prog, w.NumThreads, svd.Options{NoInterestIndex: true})
		for i, k := 0, 0; i < n; i++ {
			det.Step(&evs[k])
			if k++; k == len(evs) {
				k = 0
			}
		}
	})
}

// BenchmarkHotPathFRDStepThreads: the same scaling curve for FRD's
// write-time read-epoch scan.
func BenchmarkHotPathFRDStepThreads(b *testing.B) {
	benchStepThreads(b, func(w *workloads.Workload, evs []vm.Event, n int) {
		det := frd.New(w.Prog, w.NumThreads, frd.Options{})
		for i, k := 0, 0; i < n; i++ {
			det.Step(&evs[k])
			if k++; k == len(evs) {
				k = 0
			}
		}
	})
}

// BenchmarkHotPathFRDStepThreadsNoIndex is FRD's full-scan baseline.
func BenchmarkHotPathFRDStepThreadsNoIndex(b *testing.B) {
	benchStepThreads(b, func(w *workloads.Workload, evs []vm.Event, n int) {
		det := frd.New(w.Prog, w.NumThreads, frd.Options{NoInterestIndex: true})
		for i, k := 0, 0; i < n; i++ {
			det.Step(&evs[k])
			if k++; k == len(evs) {
				k = 0
			}
		}
	})
}

// BenchmarkHotPathSVDSample measures a whole SVD-attached sample,
// normalized to ns and allocs per simulated instruction.
func BenchmarkHotPathSVDSample(b *testing.B) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	var instrs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := w.NewVM(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		det := svd.New(w.Prog, w.NumThreads, svd.Options{})
		m.AttachBatch(det)
		n, err := m.Run(1 << 26)
		if err != nil {
			b.Fatal(err)
		}
		instrs += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
}

// BenchmarkHotPathRunMany measures the parallel sample runner end to end
// (both detectors, classification) in Minstr/s at GOMAXPROCS workers.
func BenchmarkHotPathRunMany(b *testing.B) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	seeds := report.Seeds(1, 4)
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sams, err := report.RunMany(w, seeds, report.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range sams {
			instrs += s.Instructions
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
