// Command benchguard compares `go test -bench` output against a recorded
// baseline and fails when a benchmark regresses beyond tolerance. It is
// the CI guard keeping the detectors' instrumented-but-disabled hot path
// honest: telemetry hooks are supposed to cost one nil check, and this
// tool notices if they start costing more.
//
// Usage:
//
//	go test -run NONE -bench 'BenchmarkHotPath(SVD|FRD)Step$' -count 5 . |
//	    go run ./cmd/benchguard -baseline BENCH_BASELINE.json
//
//	go test -run NONE -bench ... -count 5 . |
//	    go run ./cmd/benchguard -record -baseline BENCH_BASELINE.json
//
// With -record, the measured minima overwrite the baseline file instead of
// being compared. Comparison uses the minimum ns/op across -count repeats
// — the least-noisy stand-in for the true cost on a shared machine.
//
// The baseline maps benchmark names to either a plain ns/op number or an
// object {"ns": N, "tolerance": T, "allocs": A} carrying a per-entry
// tolerance and an optional allocation ceiling. The -tolerance flag is
// the default for plain entries; per-entry values win, which lets one
// file hold tight bounds for stable microbenchmarks next to loose bounds
// for noisier multi-thread sweeps. -record preserves the per-entry
// tolerances and ceilings already in the file.
//
// An "allocs" ceiling is an absolute allocs/op bound (no tolerance —
// allocation counts are deterministic), checked against the MAXIMUM
// across -count repeats: a steady-state-zero benchmark that allocates on
// any repeat is a pooling regression, and the noisiest repeat is the one
// that shows it. Benchmarks carrying a ceiling must be run with
// -benchmem; the guard fails if the ceiling has nothing to check
// against, because a silently unchecked bound is worse than none.
//
// An entry may also carry {"max_ns": M}: an absolute ns/op ceiling,
// independent of the recorded baseline. Where "ns" + tolerance guards
// against drift ("no slower than last time"), max_ns pins a target the
// benchmark must keep meeting in absolute terms — the paper-facing
// budget ("SVD stepping stays under 25 ns/instr") that would otherwise
// erode one in-tolerance regression at a time. Like "allocs" it is
// policy, not measurement: -record re-measures "ns" but never writes or
// loosens a max_ns, and the check compares against the same per-run
// minimum the drift check uses.
//
// An entry may also carry {"over": "BenchmarkOther", "ratio": R}: a
// relative bound requiring this benchmark's ns/op to stay within R of
// the named benchmark's measured ns/op in the SAME run (got <= other ×
// (1+R)). Relative bounds express overhead budgets — "telemetry costs
// at most 3% over the untelemetered path" — that absolute baselines
// cannot, because both sides drift with the machine. The reference must
// be measured in the same guard invocation; a missing reference fails,
// same as an uncheckable ceiling.
//
// # Host calibration
//
// Absolute ceilings and tight relative budgets assume the checking host
// runs about as fast as the recording host, which CI cannot promise: a
// ~20% slower or noisier runner pushes a healthy 23.8 ns SVD step over
// its 25 ns ceiling and a 2% telemetry delta over its 3% budget. The
// guard therefore times a deterministic probe on every run — serial
// integer work plus dependent table reads with a cache-hit/miss blend
// like a detector step's, so co-tenant memory contention registers,
// not just clock speed. -record stores the probe's ns under the
// reserved "_calibration" baseline key; at check time the guard
// re-times the probe and derives a drift factor hostNS/recordedNS,
// clamped to [1.0, 1.5]. The factor scales the max_ns ceiling and the
// relative-ratio allowance — a slower host gets proportionally more
// room, never more than 1.5×, and a faster host gets no slack at all
// (the clamp floor keeps a fast machine from tightening the budget
// below what a human pinned). Drift-vs-baseline checks are untouched:
// their recorded ns and the fresh measurement move with the host
// together, and their tolerances already absorb residual noise. The
// "_calibration" entry is a measurement, so -record refreshes it
// alongside the ns baselines it belongs to; max_ns remains policy and
// is still never written. An entry whose budget was pinned on a
// different machine than the baselines can carry {"cal_ns": C}, that
// machine's probe reading: the ceiling's drift is then computed
// against C instead of "_calibration", so the budget keeps meaning
// "the reference machine's 25 ns" wherever the check runs. The
// -calibration-ns flag substitutes a given probe reading (tests,
// reproducing a CI failure locally).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"

	"repro/internal/buildinfo"
)

// benchLine matches one benchmark result, e.g.
//
//	BenchmarkHotPathSVDStep-8   19741086   60.93 ns/op   0 B/op   0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines survive machine moves.
// go test omits the suffix on single-CPU machines, so sub-benchmarks must
// avoid a trailing "-N" of their own (the sweeps use "threads=4" naming);
// otherwise stripping would be ambiguous.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// allocsField matches the -benchmem allocation column, wherever custom
// metrics (events/sec and friends) landed it on the line.
var allocsField = regexp.MustCompile(`\s([0-9]+) allocs/op`)

// entry is one baseline record. Tolerance zero means "use the -tolerance
// flag"; it round-trips as a plain JSON number to keep the common case
// readable. Allocs, when present, is an absolute allocs/op ceiling.
type entry struct {
	NS        float64  `json:"ns"`
	Tolerance float64  `json:"tolerance,omitempty"`
	Allocs    *float64 `json:"allocs,omitempty"`

	// MaxNS, when positive, is an absolute ns/op ceiling checked against
	// the run's minimum — a pinned budget on top of the drift bound.
	MaxNS float64 `json:"max_ns,omitempty"`

	// CalNS, when positive, is the calibration-probe reading of the host
	// MaxNS was pinned on: the ceiling's drift factor is computed against
	// it instead of the file-level "_calibration" entry. Policy, like the
	// ceiling itself — a budget established on one machine keeps meaning
	// "that machine's 25 ns" even after -record refreshes the baselines
	// on a slower one. When the budget predates calibration support,
	// estimate it from a known-good ratio (this host's probe times the
	// reference measurement over this host's measurement).
	CalNS float64 `json:"cal_ns,omitempty"`

	// Over names another benchmark measured in the same run; Ratio is
	// the allowed fractional overhead above it. Both travel together.
	Over  string  `json:"over,omitempty"`
	Ratio float64 `json:"ratio,omitempty"`
}

func (e *entry) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] != '{' {
		e.Tolerance = 0
		return json.Unmarshal(data, &e.NS)
	}
	type plain entry
	return json.Unmarshal(data, (*plain)(e))
}

func (e entry) MarshalJSON() ([]byte, error) {
	if e.Tolerance == 0 && e.Allocs == nil && e.MaxNS == 0 && e.CalNS == 0 && e.Over == "" {
		return json.Marshal(e.NS)
	}
	type plain entry
	return json.Marshal(plain(e))
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against (or write with -record)")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed fractional regression over baseline (per-entry tolerances in the file override this)")
		record       = flag.Bool("record", false, "write the measured minima to the baseline instead of comparing")
		calNS        = flag.Float64("calibration-ns", 0, "use this calibration-probe ns/iter instead of measuring (0 = measure)")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("benchguard"))
		return
	}

	measured, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}

	hostCal := *calNS
	if hostCal <= 0 {
		hostCal = calibrationProbe()
	}

	if *record {
		n, err := recordBaseline(*baselinePath, measured, hostCal)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: recorded %d baselines to %s (calibration %.3f ns)\n", n, *baselinePath, hostCal)
		return
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	drift := 1.0
	if cal, ok := baseline[calibrationKey]; ok && cal.NS > 0 {
		drift = driftFactor(hostCal, cal.NS)
		fmt.Printf("benchguard: calibration probe %.3f ns vs %.3f recorded -> drift factor %.2f on absolute/relative budgets\n",
			hostCal, cal.NS, drift)
	}
	failed := false
	for _, name := range sortedKeys(measured) {
		got := measured[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Printf("benchguard: %-48s %10.2f ns/op  (no baseline, skipped)\n", name, got.NS)
			continue
		}
		tol := *tolerance
		if base.Tolerance > 0 {
			tol = base.Tolerance
		}
		ratio := got.NS/base.NS - 1
		status := "ok"
		if ratio > tol {
			status = "REGRESSION"
			failed = true
		}
		allocNote := ""
		if base.Allocs != nil {
			switch {
			case !got.HasAllocs:
				allocNote = "  allocs UNCHECKED (run with -benchmem)"
				failed = true
			case got.Allocs > *base.Allocs:
				allocNote = fmt.Sprintf("  %.0f allocs/op over ceiling %.0f", got.Allocs, *base.Allocs)
				status = "REGRESSION"
				failed = true
			default:
				allocNote = fmt.Sprintf("  %.0f allocs/op (ceiling %.0f)", got.Allocs, *base.Allocs)
			}
		}
		maxNote, maxRegressed := checkMaxNS(got, base, hostCal, drift)
		if maxRegressed {
			status = "REGRESSION"
			failed = true
		}
		overNote, overOK, overRegressed := checkRelative(got, base, measured, drift)
		if !overOK {
			failed = true
		}
		if overRegressed {
			status = "REGRESSION"
		}
		fmt.Printf("benchguard: %-48s %10.2f ns/op vs %10.2f baseline  %+6.1f%% (tol %2.0f%%)  %s%s%s%s\n",
			name, got.NS, base.NS, ratio*100, tol*100, status, allocNote, maxNote, overNote)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: hot path regressed beyond tolerance over %s\n", *baselinePath)
		os.Exit(1)
	}
}

// calibrationKey is the reserved baseline entry holding the recording
// host's calibration-probe reading. It cannot collide with a benchmark:
// parseBench only produces names starting with "Benchmark".
const calibrationKey = "_calibration"

// calProbeIters sizes the calibration probe: a few milliseconds of
// serial work per repeat, long enough to amortize timer overhead,
// short enough that five repeats cost nothing next to the benchmarks
// being guarded.
const calProbeIters = 1 << 22

// The probe's two working sets. The guarded step benchmarks are bound
// by table walks (block maps, CU arenas) that mostly hit cache with a
// tail of deeper misses; on a shared machine their dominant noise
// source is cache and memory-bandwidth contention from co-tenants,
// which a register-only loop is completely blind to (measured: a
// stable 2.5 ns ALU probe while the SVD step swung 28→40 ns under
// co-tenant load). The small table stays L1-resident like the hot
// block map; the big table spills the per-core caches so one read in
// eight sees the contended shared levels, roughly the hit/miss blend
// of a detector step.
const (
	calProbeSmall = 1 << 10 // uint64s = 8 KiB, always read
	calProbeBig   = 1 << 20 // uint64s = 8 MiB, read every 8th iter
)

// calSink defeats dead-code elimination of the probe loop.
var calSink uint64

// calibrationProbe times a fixed, deterministic mix of integer work
// (the splitmix64 finalizer) and dependent table reads — every
// iteration from an L1-resident table, every eighth from an 8 MiB one
// — returning ns per iteration: a stand-in for the host's serial speed
// on the cache-mostly access pattern the guarded detector-step
// benchmarks actually have. MEDIAN of seven repeats, unlike the
// benchmarks' minimum: the drift factor divides two probe readings
// taken minutes or machines apart, and a minimum is exactly the
// statistic that lands on one lucky quiet scheduling window — the
// median moves with the host's sustained speed, which is what the
// scaled budgets need.
func calibrationProbe() float64 {
	small := make([]uint64, calProbeSmall)
	big := make([]uint64, calProbeBig)
	for i := range big {
		big[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	for i := range small {
		small[i] = uint64(i) * 0xFF51AFD7ED558CCD
	}
	const reps = 7
	var runs [reps]float64
	for rep := 0; rep < reps; rep++ {
		x := uint64(0x9E3779B97F4A7C15) + calSink
		start := time.Now()
		for i := 0; i < calProbeIters; i++ {
			x ^= x >> 33
			x *= 0xFF51AFD7ED558CCD
			x ^= x >> 29
			// Dependent loads: the index derives from the running hash, so
			// reads serialize behind the memory system like a table walk.
			x += small[x&(calProbeSmall-1)]
			if i&7 == 0 {
				x += big[x&(calProbeBig-1)]
			}
		}
		runs[rep] = float64(time.Since(start).Nanoseconds()) / calProbeIters
		calSink = x
	}
	sort.Float64s(runs[:])
	return runs[reps/2]
}

// driftFactor converts a host/recorded probe ratio into the multiplier
// applied to absolute ceilings and relative budgets. Clamped to [1, 1.5]:
// a faster host never tightens a human-pinned budget, and a host more
// than 50% slower is too far from the recording machine for scaled
// budgets to mean anything — at that point the run should fail loudly.
func driftFactor(hostNS, recordedNS float64) float64 {
	if hostNS <= 0 || recordedNS <= 0 {
		return 1
	}
	d := hostNS / recordedNS
	if d < 1 {
		return 1
	}
	if d > 1.5 {
		return 1.5
	}
	return d
}

// checkMaxNS applies an entry's absolute ns/op ceiling, scaled by the
// host drift factor — the entry's own cal_ns reference when it has one,
// the file-level recording-host drift otherwise. Unlike the drift bound
// it has no tolerance: the ceiling is the budget, and any headroom
// belongs in the number a human recorded, not in a multiplier — drift
// only compensates for the checking host being measurably slower than
// the host the budget refers to.
func checkMaxNS(got measurement, base entry, hostCal, drift float64) (note string, regressed bool) {
	if base.CalNS > 0 {
		drift = driftFactor(hostCal, base.CalNS)
	}
	ceiling := base.MaxNS * drift
	switch {
	case base.MaxNS <= 0:
		return "", false
	case got.NS > ceiling:
		return fmt.Sprintf("  %.2f ns/op over the absolute %.2f ceiling (%.2f pinned x%.2f drift)",
			got.NS, ceiling, base.MaxNS, drift), true
	default:
		return fmt.Sprintf("  within the absolute %.2f ceiling (%.2f pinned x%.2f drift)",
			ceiling, base.MaxNS, drift), false
	}
}

// checkRelative applies an entry's over/ratio bound against the run's
// own measurements, with the allowance scaled by the host drift factor
// (a noisier host blurs the small deltas these budgets meter). ok is
// false when the bound failed or could not be checked; regressed marks
// the former (a real overshoot, not a missing reference).
func checkRelative(got measurement, base entry, measured map[string]measurement, drift float64) (note string, ok, regressed bool) {
	if base.Over == "" {
		return "", true, false
	}
	allowed := base.Ratio * drift
	ref, refOK := measured[base.Over]
	switch {
	case !refOK:
		return fmt.Sprintf("  relative bound UNCHECKED (%s not in this run)", base.Over), false, false
	case got.NS > ref.NS*(1+allowed):
		return fmt.Sprintf("  %+.1f%% over %s exceeds the %.1f%% budget",
			(got.NS/ref.NS-1)*100, base.Over, allowed*100), false, true
	default:
		return fmt.Sprintf("  %+.1f%% over %s (budget %.1f%%)",
			(got.NS/ref.NS-1)*100, base.Over, allowed*100), true, false
	}
}

// measurement is one benchmark's digest across -count repeats: the
// minimum ns/op (least scheduling noise) and, under -benchmem, the
// maximum allocs/op (an allocation on any repeat is real).
type measurement struct {
	NS        float64
	Allocs    float64
	HasAllocs bool
}

// parseBench folds go test -bench output into per-name measurements.
func parseBench(f io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		cur, seen := out[m[1]]
		if !seen || ns < cur.NS {
			cur.NS = ns
		}
		if a := allocsField.FindStringSubmatch(line); a != nil {
			allocs, err := strconv.ParseFloat(a[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			if !cur.HasAllocs || allocs > cur.Allocs {
				cur.Allocs = allocs
			}
			cur.HasAllocs = true
		}
		out[m[1]] = cur
	}
	return out, sc.Err()
}

func readBaseline(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w (run with -record to create it)", path, err)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

// recordBaseline writes the measured minima, carrying forward any
// per-entry tolerances and allocation ceilings (and entries for
// benchmarks not in this run) from an existing baseline file. Ceilings
// are policy, not measurements, so -record never invents or tightens
// one — it only preserves what a human wrote. The calibration probe is
// a measurement, so it IS refreshed: the recorded ns baselines and the
// recorded probe must come from the same host for the drift factor to
// mean anything.
func recordBaseline(path string, measured map[string]measurement, hostCal float64) (int, error) {
	merged := map[string]entry{}
	if prev, err := readBaseline(path); err == nil {
		merged = prev
	}
	for name, m := range measured {
		e := merged[name] // keeps the prior tolerance/ceiling, zero for new entries
		e.NS = m.NS
		merged[name] = e
	}
	merged[calibrationKey] = entry{NS: hostCal}
	data, err := marshalSorted(merged)
	if err != nil {
		return 0, err
	}
	return len(merged), os.WriteFile(path, data, 0o644)
}

// marshalSorted renders the baseline with stable key order, one entry per
// line, so -record produces reviewable diffs.
func marshalSorted(m map[string]entry) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("{\n")
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		v, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, "  %q: %s", k, v)
		if i < len(keys)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	return buf.Bytes(), nil
}

func sortedKeys(m map[string]measurement) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
