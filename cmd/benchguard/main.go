// Command benchguard compares `go test -bench` output against a recorded
// baseline and fails when a benchmark regresses beyond tolerance. It is
// the CI guard keeping the detectors' instrumented-but-disabled hot path
// honest: telemetry hooks are supposed to cost one nil check, and this
// tool notices if they start costing more.
//
// Usage:
//
//	go test -run NONE -bench 'BenchmarkHotPath(SVD|FRD)Step$' -count 5 . |
//	    go run ./cmd/benchguard -baseline BENCH_BASELINE.json
//
//	go test -run NONE -bench ... -count 5 . |
//	    go run ./cmd/benchguard -record -baseline BENCH_BASELINE.json
//
// With -record, the measured minima overwrite the baseline file instead of
// being compared. Comparison uses the minimum ns/op across -count repeats
// — the least-noisy stand-in for the true cost on a shared machine.
//
// The baseline maps benchmark names to either a plain ns/op number or an
// object {"ns": N, "tolerance": T, "allocs": A} carrying a per-entry
// tolerance and an optional allocation ceiling. The -tolerance flag is
// the default for plain entries; per-entry values win, which lets one
// file hold tight bounds for stable microbenchmarks next to loose bounds
// for noisier multi-thread sweeps. -record preserves the per-entry
// tolerances and ceilings already in the file.
//
// An "allocs" ceiling is an absolute allocs/op bound (no tolerance —
// allocation counts are deterministic), checked against the MAXIMUM
// across -count repeats: a steady-state-zero benchmark that allocates on
// any repeat is a pooling regression, and the noisiest repeat is the one
// that shows it. Benchmarks carrying a ceiling must be run with
// -benchmem; the guard fails if the ceiling has nothing to check
// against, because a silently unchecked bound is worse than none.
//
// An entry may also carry {"max_ns": M}: an absolute ns/op ceiling,
// independent of the recorded baseline. Where "ns" + tolerance guards
// against drift ("no slower than last time"), max_ns pins a target the
// benchmark must keep meeting in absolute terms — the paper-facing
// budget ("SVD stepping stays under 25 ns/instr") that would otherwise
// erode one in-tolerance regression at a time. Like "allocs" it is
// policy, not measurement: -record re-measures "ns" but never writes or
// loosens a max_ns, and the check compares against the same per-run
// minimum the drift check uses.
//
// An entry may also carry {"over": "BenchmarkOther", "ratio": R}: a
// relative bound requiring this benchmark's ns/op to stay within R of
// the named benchmark's measured ns/op in the SAME run (got <= other ×
// (1+R)). Relative bounds express overhead budgets — "telemetry costs
// at most 3% over the untelemetered path" — that absolute baselines
// cannot, because both sides drift with the machine. The reference must
// be measured in the same guard invocation; a missing reference fails,
// same as an uncheckable ceiling.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/buildinfo"
)

// benchLine matches one benchmark result, e.g.
//
//	BenchmarkHotPathSVDStep-8   19741086   60.93 ns/op   0 B/op   0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines survive machine moves.
// go test omits the suffix on single-CPU machines, so sub-benchmarks must
// avoid a trailing "-N" of their own (the sweeps use "threads=4" naming);
// otherwise stripping would be ambiguous.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// allocsField matches the -benchmem allocation column, wherever custom
// metrics (events/sec and friends) landed it on the line.
var allocsField = regexp.MustCompile(`\s([0-9]+) allocs/op`)

// entry is one baseline record. Tolerance zero means "use the -tolerance
// flag"; it round-trips as a plain JSON number to keep the common case
// readable. Allocs, when present, is an absolute allocs/op ceiling.
type entry struct {
	NS        float64  `json:"ns"`
	Tolerance float64  `json:"tolerance,omitempty"`
	Allocs    *float64 `json:"allocs,omitempty"`

	// MaxNS, when positive, is an absolute ns/op ceiling checked against
	// the run's minimum — a pinned budget on top of the drift bound.
	MaxNS float64 `json:"max_ns,omitempty"`

	// Over names another benchmark measured in the same run; Ratio is
	// the allowed fractional overhead above it. Both travel together.
	Over  string  `json:"over,omitempty"`
	Ratio float64 `json:"ratio,omitempty"`
}

func (e *entry) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] != '{' {
		e.Tolerance = 0
		return json.Unmarshal(data, &e.NS)
	}
	type plain entry
	return json.Unmarshal(data, (*plain)(e))
}

func (e entry) MarshalJSON() ([]byte, error) {
	if e.Tolerance == 0 && e.Allocs == nil && e.MaxNS == 0 && e.Over == "" {
		return json.Marshal(e.NS)
	}
	type plain entry
	return json.Marshal(plain(e))
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against (or write with -record)")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed fractional regression over baseline (per-entry tolerances in the file override this)")
		record       = flag.Bool("record", false, "write the measured minima to the baseline instead of comparing")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("benchguard"))
		return
	}

	measured, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}

	if *record {
		n, err := recordBaseline(*baselinePath, measured)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: recorded %d baselines to %s\n", n, *baselinePath)
		return
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	failed := false
	for _, name := range sortedKeys(measured) {
		got := measured[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Printf("benchguard: %-48s %10.2f ns/op  (no baseline, skipped)\n", name, got.NS)
			continue
		}
		tol := *tolerance
		if base.Tolerance > 0 {
			tol = base.Tolerance
		}
		ratio := got.NS/base.NS - 1
		status := "ok"
		if ratio > tol {
			status = "REGRESSION"
			failed = true
		}
		allocNote := ""
		if base.Allocs != nil {
			switch {
			case !got.HasAllocs:
				allocNote = "  allocs UNCHECKED (run with -benchmem)"
				failed = true
			case got.Allocs > *base.Allocs:
				allocNote = fmt.Sprintf("  %.0f allocs/op over ceiling %.0f", got.Allocs, *base.Allocs)
				status = "REGRESSION"
				failed = true
			default:
				allocNote = fmt.Sprintf("  %.0f allocs/op (ceiling %.0f)", got.Allocs, *base.Allocs)
			}
		}
		maxNote, maxRegressed := checkMaxNS(got, base)
		if maxRegressed {
			status = "REGRESSION"
			failed = true
		}
		overNote, overOK, overRegressed := checkRelative(got, base, measured)
		if !overOK {
			failed = true
		}
		if overRegressed {
			status = "REGRESSION"
		}
		fmt.Printf("benchguard: %-48s %10.2f ns/op vs %10.2f baseline  %+6.1f%% (tol %2.0f%%)  %s%s%s%s\n",
			name, got.NS, base.NS, ratio*100, tol*100, status, allocNote, maxNote, overNote)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: hot path regressed beyond tolerance over %s\n", *baselinePath)
		os.Exit(1)
	}
}

// checkMaxNS applies an entry's absolute ns/op ceiling. Unlike the
// drift bound it has no tolerance: the ceiling is the budget, and any
// headroom belongs in the number a human recorded, not in a multiplier.
func checkMaxNS(got measurement, base entry) (note string, regressed bool) {
	switch {
	case base.MaxNS <= 0:
		return "", false
	case got.NS > base.MaxNS:
		return fmt.Sprintf("  %.2f ns/op over the absolute %.2f ceiling", got.NS, base.MaxNS), true
	default:
		return fmt.Sprintf("  within the absolute %.2f ceiling", base.MaxNS), false
	}
}

// checkRelative applies an entry's over/ratio bound against the run's
// own measurements. ok is false when the bound failed or could not be
// checked; regressed marks the former (a real overshoot, not a missing
// reference).
func checkRelative(got measurement, base entry, measured map[string]measurement) (note string, ok, regressed bool) {
	if base.Over == "" {
		return "", true, false
	}
	ref, refOK := measured[base.Over]
	switch {
	case !refOK:
		return fmt.Sprintf("  relative bound UNCHECKED (%s not in this run)", base.Over), false, false
	case got.NS > ref.NS*(1+base.Ratio):
		return fmt.Sprintf("  %+.1f%% over %s exceeds the %.0f%% budget",
			(got.NS/ref.NS-1)*100, base.Over, base.Ratio*100), false, true
	default:
		return fmt.Sprintf("  %+.1f%% over %s (budget %.0f%%)",
			(got.NS/ref.NS-1)*100, base.Over, base.Ratio*100), true, false
	}
}

// measurement is one benchmark's digest across -count repeats: the
// minimum ns/op (least scheduling noise) and, under -benchmem, the
// maximum allocs/op (an allocation on any repeat is real).
type measurement struct {
	NS        float64
	Allocs    float64
	HasAllocs bool
}

// parseBench folds go test -bench output into per-name measurements.
func parseBench(f io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		cur, seen := out[m[1]]
		if !seen || ns < cur.NS {
			cur.NS = ns
		}
		if a := allocsField.FindStringSubmatch(line); a != nil {
			allocs, err := strconv.ParseFloat(a[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			if !cur.HasAllocs || allocs > cur.Allocs {
				cur.Allocs = allocs
			}
			cur.HasAllocs = true
		}
		out[m[1]] = cur
	}
	return out, sc.Err()
}

func readBaseline(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w (run with -record to create it)", path, err)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

// recordBaseline writes the measured minima, carrying forward any
// per-entry tolerances and allocation ceilings (and entries for
// benchmarks not in this run) from an existing baseline file. Ceilings
// are policy, not measurements, so -record never invents or tightens
// one — it only preserves what a human wrote.
func recordBaseline(path string, measured map[string]measurement) (int, error) {
	merged := map[string]entry{}
	if prev, err := readBaseline(path); err == nil {
		merged = prev
	}
	for name, m := range measured {
		e := merged[name] // keeps the prior tolerance/ceiling, zero for new entries
		e.NS = m.NS
		merged[name] = e
	}
	data, err := marshalSorted(merged)
	if err != nil {
		return 0, err
	}
	return len(merged), os.WriteFile(path, data, 0o644)
}

// marshalSorted renders the baseline with stable key order, one entry per
// line, so -record produces reviewable diffs.
func marshalSorted(m map[string]entry) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("{\n")
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		v, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, "  %q: %s", k, v)
		if i < len(keys)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	return buf.Bytes(), nil
}

func sortedKeys(m map[string]measurement) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
