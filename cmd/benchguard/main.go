// Command benchguard compares `go test -bench` output against a recorded
// baseline and fails when a benchmark regresses beyond tolerance. It is
// the CI guard keeping the detectors' instrumented-but-disabled hot path
// honest: telemetry hooks are supposed to cost one nil check, and this
// tool notices if they start costing more.
//
// Usage:
//
//	go test -run NONE -bench 'BenchmarkHotPath(SVD|FRD)Step$' -count 5 . |
//	    go run ./cmd/benchguard -baseline BENCH_BASELINE.json
//
//	go test -run NONE -bench ... -count 5 . |
//	    go run ./cmd/benchguard -record -baseline BENCH_BASELINE.json
//
// With -record, the measured minima overwrite the baseline file instead of
// being compared. Comparison uses the minimum ns/op across -count repeats
// — the least-noisy stand-in for the true cost on a shared machine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one benchmark result, e.g.
//
//	BenchmarkHotPathSVDStep-8   19741086   60.93 ns/op   0 B/op ...
//
// The -8 GOMAXPROCS suffix is stripped so baselines survive machine moves.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against (or write with -record)")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed fractional regression over baseline")
		record       = flag.Bool("record", false, "write the measured minima to the baseline instead of comparing")
	)
	flag.Parse()

	measured, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}

	if *record {
		if err := writeBaseline(*baselinePath, measured); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: recorded %d baselines to %s\n", len(measured), *baselinePath)
		return
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	failed := false
	for _, name := range sortedKeys(measured) {
		base, ok := baseline[name]
		if !ok {
			fmt.Printf("benchguard: %-40s %10.2f ns/op  (no baseline, skipped)\n", name, measured[name])
			continue
		}
		got := measured[name]
		ratio := got/base - 1
		status := "ok"
		if ratio > *tolerance {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchguard: %-40s %10.2f ns/op vs %10.2f baseline  %+6.1f%%  %s\n",
			name, got, base, ratio*100, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: hot path regressed more than %.0f%% over %s\n",
			*tolerance*100, *baselinePath)
		os.Exit(1)
	}
}

// parseBench extracts the minimum ns/op per benchmark name from go test
// -bench output; repeats from -count collapse to their fastest run.
func parseBench(f *os.File) (map[string]float64, error) {
	min := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := min[m[1]]; !ok || ns < prev {
			min[m[1]] = ns
		}
	}
	return min, sc.Err()
}

func readBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w (run with -record to create it)", path, err)
	}
	var out map[string]float64
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

func writeBaseline(path string, v map[string]float64) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
