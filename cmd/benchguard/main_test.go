package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestParseBench: minima for ns/op, maxima for allocs/op, GOMAXPROCS
// suffix stripped, custom metrics between ns/op and the -benchmem
// columns tolerated.
func TestParseBench(t *testing.T) {
	out := `
goos: linux
BenchmarkHotPathSVDStep-8   	19741086	        60.93 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotPathSVDStep-8   	20000000	        58.10 ns/op	       8 B/op	       1 allocs/op
BenchmarkServerIngest/shards=2-8	     100	  13300000 ns/op	   8470000 events/sec	    1024 B/op	       3 allocs/op
BenchmarkWireEncode 	    2000	    449634 ns/op
PASS
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	svd := got["BenchmarkHotPathSVDStep"]
	if svd.NS != 58.10 {
		t.Errorf("ns minimum: got %v, want 58.10", svd.NS)
	}
	if !svd.HasAllocs || svd.Allocs != 1 {
		t.Errorf("allocs maximum: got %+v, want 1 (the noisier repeat)", svd)
	}
	ingest := got["BenchmarkServerIngest/shards=2"]
	if ingest.NS != 13300000 || !ingest.HasAllocs || ingest.Allocs != 3 {
		t.Errorf("custom-metric line misparsed: %+v", ingest)
	}
	enc := got["BenchmarkWireEncode"]
	if enc.HasAllocs {
		t.Errorf("line without -benchmem claimed allocs: %+v", enc)
	}
}

// TestEntryRoundTrip: plain-number entries stay plain, object entries
// keep tolerance and ceiling through a marshal/unmarshal cycle.
func TestEntryRoundTrip(t *testing.T) {
	ceiling := 0.0
	in := map[string]entry{
		"plain":  {NS: 42},
		"tuned":  {NS: 31.09, Tolerance: 0.2},
		"capped": {NS: 100, Tolerance: 0.3, Allocs: &ceiling},
	}
	data, err := marshalSorted(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"plain": 42`) {
		t.Errorf("plain entry did not stay a bare number:\n%s", data)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["tuned"].Tolerance != 0.2 {
		t.Errorf("tolerance lost: %+v", out["tuned"])
	}
	c := out["capped"]
	if c.Allocs == nil || *c.Allocs != 0 || c.Tolerance != 0.3 {
		t.Errorf("ceiling lost: %+v", c)
	}
}

// TestEntryMaxNSRoundTrip: a max_ns ceiling marshals as an object (even
// alone), survives the round trip, and -record's merge preserves it
// while re-measuring ns.
func TestEntryMaxNSRoundTrip(t *testing.T) {
	in := map[string]entry{
		"pinned": {NS: 23.9, MaxNS: 25},
	}
	data, err := marshalSorted(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"max_ns":25`) {
		t.Errorf("max_ns missing from marshaled entry:\n%s", data)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if p := out["pinned"]; p.MaxNS != 25 || p.NS != 23.9 {
		t.Errorf("ceiling lost in round trip: %+v", p)
	}

	// The -record merge path: measured ns replaces the baseline, the
	// ceiling is policy and must ride along untouched.
	e := out["pinned"]
	e.NS = 24.4
	if e.MaxNS != 25 {
		t.Errorf("merge dropped the ceiling: %+v", e)
	}
}

// TestCheckMaxNS: under the ceiling passes, over it regresses, entries
// without one pass silently. No tolerance applies.
func TestCheckMaxNS(t *testing.T) {
	cases := []struct {
		name          string
		got           float64
		base          entry
		wantRegressed bool
	}{
		{"under", 23.9, entry{NS: 23, MaxNS: 25}, false},
		{"exact", 25, entry{NS: 23, MaxNS: 25}, false},
		{"over", 25.01, entry{NS: 23, MaxNS: 25}, true},
		{"no-ceiling", 1e9, entry{NS: 23}, false},
	}
	for _, tc := range cases {
		note, regressed := checkMaxNS(measurement{NS: tc.got}, tc.base, 0, 1)
		if regressed != tc.wantRegressed {
			t.Errorf("%s: regressed=%v (%s), want %v", tc.name, regressed, note, tc.wantRegressed)
		}
		if tc.base.MaxNS == 0 && note != "" {
			t.Errorf("%s: entry without a ceiling must pass silently, got %q", tc.name, note)
		}
	}
}

// TestEntryRelativeBound: over/ratio survive the round trip, and an
// entry with only a relative bound still marshals as an object.
func TestEntryRelativeBound(t *testing.T) {
	ceiling := 0.0
	in := map[string]entry{
		"rel": {NS: 200, Allocs: &ceiling, Over: "BenchmarkBase", Ratio: 0.03},
	}
	data, err := marshalSorted(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	r := out["rel"]
	if r.Over != "BenchmarkBase" || r.Ratio != 0.03 || r.Allocs == nil {
		t.Errorf("relative bound lost in round trip: %+v", r)
	}
}

// TestCheckRelative exercises the got-vs-reference bound the guard
// applies: within budget passes, over budget regresses, and a missing
// reference is a failure, not a silent skip.
func TestCheckRelative(t *testing.T) {
	base := entry{Over: "BenchmarkBase", Ratio: 0.03}
	cases := []struct {
		name          string
		measured      map[string]measurement
		wantOK        bool
		wantRegressed bool
	}{
		{"within", map[string]measurement{"BenchmarkBase": {NS: 100}, "BenchmarkRel": {NS: 102}}, true, false},
		{"exceeds", map[string]measurement{"BenchmarkBase": {NS: 100}, "BenchmarkRel": {NS: 104}}, false, true},
		{"missing-ref", map[string]measurement{"BenchmarkRel": {NS: 102}}, false, false},
	}
	for _, tc := range cases {
		note, ok, regressed := checkRelative(tc.measured["BenchmarkRel"], base, tc.measured, 1)
		if ok != tc.wantOK || regressed != tc.wantRegressed {
			t.Errorf("%s: ok=%v regressed=%v (%s), want ok=%v regressed=%v",
				tc.name, ok, regressed, note, tc.wantOK, tc.wantRegressed)
		}
	}
	if note, ok, _ := checkRelative(measurement{NS: 5}, entry{}, nil, 1); !ok || note != "" {
		t.Errorf("entry without a bound must pass silently, got ok=%v note=%q", ok, note)
	}
}

// TestDriftFactor pins the clamp: a faster host gets no slack, drift
// scales linearly up to 1.5x, and degenerate probe readings neutralize
// to 1.
func TestDriftFactor(t *testing.T) {
	cases := []struct {
		host, recorded, want float64
	}{
		{0.8, 1.0, 1.0}, // faster host never tightens
		{1.0, 1.0, 1.0}, // same speed
		{1.2, 1.0, 1.2}, // 20% slower host: the flake this exists for
		{3.0, 1.0, 1.5}, // clamp ceiling
		{0, 1.0, 1.0},   // probe failed
		{1.0, 0, 1.0},   // baseline has no probe reading
	}
	for _, tc := range cases {
		if got := driftFactor(tc.host, tc.recorded); got != tc.want {
			t.Errorf("driftFactor(%v, %v) = %v, want %v", tc.host, tc.recorded, got, tc.want)
		}
	}
}

// TestCheckMaxNSDrift: the 25 ns ceiling scaled by a 20%-slower host
// admits 28 ns but still rejects 31 ns — the exact flake scenario the
// calibration probe exists to absorb, without loosening the pinned
// budget on an equal-speed host.
func TestCheckMaxNSDrift(t *testing.T) {
	base := entry{NS: 23.8, MaxNS: 25}
	if _, regressed := checkMaxNS(measurement{NS: 28}, base, 0, 1.2); regressed {
		t.Error("28 ns over a 25*1.2=30 ns drifted ceiling flagged as regression")
	}
	if _, regressed := checkMaxNS(measurement{NS: 31}, base, 0, 1.2); !regressed {
		t.Error("31 ns under a 30 ns drifted ceiling passed")
	}
	if _, regressed := checkMaxNS(measurement{NS: 25.01}, base, 0, 1); !regressed {
		t.Error("drift 1 must keep the pinned ceiling exact")
	}
}

// TestCheckRelativeDrift: the 3% telemetry budget scales with drift the
// same way — 4% overhead passes on a 1.5x-drifted host (budget 4.5%)
// and still fails at drift 1.
func TestCheckRelativeDrift(t *testing.T) {
	base := entry{Over: "BenchmarkBase", Ratio: 0.03}
	measured := map[string]measurement{
		"BenchmarkBase": {NS: 100},
		"BenchmarkRel":  {NS: 104},
	}
	if _, ok, regressed := checkRelative(measured["BenchmarkRel"], base, measured, 1.5); !ok || regressed {
		t.Error("4% overhead over a 4.5% drifted budget failed")
	}
	if _, ok, regressed := checkRelative(measured["BenchmarkRel"], base, measured, 1); ok || !regressed {
		t.Error("4% overhead over the exact 3% budget passed")
	}
}

// TestRecordWritesCalibration: -record stores the probe reading under
// the reserved key and refreshes it on re-record, while the reserved
// key never collides with parsed benchmarks.
func TestRecordWritesCalibration(t *testing.T) {
	path := t.TempDir() + "/baseline.json"
	if _, err := recordBaseline(path, map[string]measurement{"BenchmarkX": {NS: 10}}, 1.25); err != nil {
		t.Fatal(err)
	}
	b, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if cal := b[calibrationKey]; cal.NS != 1.25 {
		t.Fatalf("calibration not recorded: %+v", b)
	}
	if b["BenchmarkX"].NS != 10 {
		t.Fatalf("benchmark baseline lost: %+v", b)
	}
	// Re-record on a different host: the probe reading must refresh
	// (it is a measurement, not policy).
	if _, err := recordBaseline(path, map[string]measurement{"BenchmarkX": {NS: 11}}, 0.9); err != nil {
		t.Fatal(err)
	}
	b, err = readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if cal := b[calibrationKey]; cal.NS != 0.9 {
		t.Fatalf("re-record kept the stale calibration: %+v", b[calibrationKey])
	}
}

// TestCalibrationProbe sanity: the probe measures something positive
// and finite, and repeated runs land within the same order of
// magnitude (it times fixed serial work, not the scheduler).
func TestCalibrationProbe(t *testing.T) {
	a, b := calibrationProbe(), calibrationProbe()
	if a <= 0 || b <= 0 {
		t.Fatalf("probe returned nonpositive readings: %v, %v", a, b)
	}
	if ratio := a / b; ratio > 3 || ratio < 1.0/3 {
		t.Errorf("probe readings unstable: %v vs %v", a, b)
	}
}

// TestCheckMaxNSCalNSReference: an entry carrying its own cal_ns pins
// the ceiling's drift to the budget's reference host, overriding the
// file-level recording-host drift — so re-recording baselines on a
// slower machine cannot silently re-anchor the budget.
func TestCheckMaxNSCalNSReference(t *testing.T) {
	base := entry{NS: 30, MaxNS: 25, CalNS: 2.0}
	// Host probe 2.6 vs reference 2.0 -> drift 1.3, ceiling 32.5.
	if _, regressed := checkMaxNS(measurement{NS: 31}, base, 2.6, 1.0); regressed {
		t.Error("31 ns under the 32.5 ns reference-drifted ceiling flagged")
	}
	if _, regressed := checkMaxNS(measurement{NS: 33}, base, 2.6, 1.0); !regressed {
		t.Error("33 ns over the 32.5 ns reference-drifted ceiling passed")
	}
	// Faster host than the reference: clamp to the pinned ceiling.
	if _, regressed := checkMaxNS(measurement{NS: 25.1}, base, 1.5, 1.0); !regressed {
		t.Error("fast host must keep the pinned 25 ns ceiling exact")
	}
	// cal_ns survives the entry round trip and the -record merge.
	data, err := marshalSorted(map[string]entry{"pinned": base})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["pinned"].CalNS != 2.0 || out["pinned"].MaxNS != 25 {
		t.Errorf("cal_ns lost in round trip: %+v", out["pinned"])
	}
}
