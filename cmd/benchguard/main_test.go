package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestParseBench: minima for ns/op, maxima for allocs/op, GOMAXPROCS
// suffix stripped, custom metrics between ns/op and the -benchmem
// columns tolerated.
func TestParseBench(t *testing.T) {
	out := `
goos: linux
BenchmarkHotPathSVDStep-8   	19741086	        60.93 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotPathSVDStep-8   	20000000	        58.10 ns/op	       8 B/op	       1 allocs/op
BenchmarkServerIngest/shards=2-8	     100	  13300000 ns/op	   8470000 events/sec	    1024 B/op	       3 allocs/op
BenchmarkWireEncode 	    2000	    449634 ns/op
PASS
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	svd := got["BenchmarkHotPathSVDStep"]
	if svd.NS != 58.10 {
		t.Errorf("ns minimum: got %v, want 58.10", svd.NS)
	}
	if !svd.HasAllocs || svd.Allocs != 1 {
		t.Errorf("allocs maximum: got %+v, want 1 (the noisier repeat)", svd)
	}
	ingest := got["BenchmarkServerIngest/shards=2"]
	if ingest.NS != 13300000 || !ingest.HasAllocs || ingest.Allocs != 3 {
		t.Errorf("custom-metric line misparsed: %+v", ingest)
	}
	enc := got["BenchmarkWireEncode"]
	if enc.HasAllocs {
		t.Errorf("line without -benchmem claimed allocs: %+v", enc)
	}
}

// TestEntryRoundTrip: plain-number entries stay plain, object entries
// keep tolerance and ceiling through a marshal/unmarshal cycle.
func TestEntryRoundTrip(t *testing.T) {
	ceiling := 0.0
	in := map[string]entry{
		"plain":  {NS: 42},
		"tuned":  {NS: 31.09, Tolerance: 0.2},
		"capped": {NS: 100, Tolerance: 0.3, Allocs: &ceiling},
	}
	data, err := marshalSorted(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"plain": 42`) {
		t.Errorf("plain entry did not stay a bare number:\n%s", data)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["tuned"].Tolerance != 0.2 {
		t.Errorf("tolerance lost: %+v", out["tuned"])
	}
	c := out["capped"]
	if c.Allocs == nil || *c.Allocs != 0 || c.Tolerance != 0.3 {
		t.Errorf("ceiling lost: %+v", c)
	}
}

// TestEntryMaxNSRoundTrip: a max_ns ceiling marshals as an object (even
// alone), survives the round trip, and -record's merge preserves it
// while re-measuring ns.
func TestEntryMaxNSRoundTrip(t *testing.T) {
	in := map[string]entry{
		"pinned": {NS: 23.9, MaxNS: 25},
	}
	data, err := marshalSorted(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"max_ns":25`) {
		t.Errorf("max_ns missing from marshaled entry:\n%s", data)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if p := out["pinned"]; p.MaxNS != 25 || p.NS != 23.9 {
		t.Errorf("ceiling lost in round trip: %+v", p)
	}

	// The -record merge path: measured ns replaces the baseline, the
	// ceiling is policy and must ride along untouched.
	e := out["pinned"]
	e.NS = 24.4
	if e.MaxNS != 25 {
		t.Errorf("merge dropped the ceiling: %+v", e)
	}
}

// TestCheckMaxNS: under the ceiling passes, over it regresses, entries
// without one pass silently. No tolerance applies.
func TestCheckMaxNS(t *testing.T) {
	cases := []struct {
		name          string
		got           float64
		base          entry
		wantRegressed bool
	}{
		{"under", 23.9, entry{NS: 23, MaxNS: 25}, false},
		{"exact", 25, entry{NS: 23, MaxNS: 25}, false},
		{"over", 25.01, entry{NS: 23, MaxNS: 25}, true},
		{"no-ceiling", 1e9, entry{NS: 23}, false},
	}
	for _, tc := range cases {
		note, regressed := checkMaxNS(measurement{NS: tc.got}, tc.base)
		if regressed != tc.wantRegressed {
			t.Errorf("%s: regressed=%v (%s), want %v", tc.name, regressed, note, tc.wantRegressed)
		}
		if tc.base.MaxNS == 0 && note != "" {
			t.Errorf("%s: entry without a ceiling must pass silently, got %q", tc.name, note)
		}
	}
}

// TestEntryRelativeBound: over/ratio survive the round trip, and an
// entry with only a relative bound still marshals as an object.
func TestEntryRelativeBound(t *testing.T) {
	ceiling := 0.0
	in := map[string]entry{
		"rel": {NS: 200, Allocs: &ceiling, Over: "BenchmarkBase", Ratio: 0.03},
	}
	data, err := marshalSorted(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]entry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	r := out["rel"]
	if r.Over != "BenchmarkBase" || r.Ratio != 0.03 || r.Allocs == nil {
		t.Errorf("relative bound lost in round trip: %+v", r)
	}
}

// TestCheckRelative exercises the got-vs-reference bound the guard
// applies: within budget passes, over budget regresses, and a missing
// reference is a failure, not a silent skip.
func TestCheckRelative(t *testing.T) {
	base := entry{Over: "BenchmarkBase", Ratio: 0.03}
	cases := []struct {
		name          string
		measured      map[string]measurement
		wantOK        bool
		wantRegressed bool
	}{
		{"within", map[string]measurement{"BenchmarkBase": {NS: 100}, "BenchmarkRel": {NS: 102}}, true, false},
		{"exceeds", map[string]measurement{"BenchmarkBase": {NS: 100}, "BenchmarkRel": {NS: 104}}, false, true},
		{"missing-ref", map[string]measurement{"BenchmarkRel": {NS: 102}}, false, false},
	}
	for _, tc := range cases {
		note, ok, regressed := checkRelative(tc.measured["BenchmarkRel"], base, tc.measured)
		if ok != tc.wantOK || regressed != tc.wantRegressed {
			t.Errorf("%s: ok=%v regressed=%v (%s), want ok=%v regressed=%v",
				tc.name, ok, regressed, note, tc.wantOK, tc.wantRegressed)
		}
	}
	if note, ok, _ := checkRelative(measurement{NS: 5}, entry{}, nil); !ok || note != "" {
		t.Errorf("entry without a bound must pass silently, got ok=%v note=%q", ok, note)
	}
}
