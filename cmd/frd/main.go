// Command frd runs a workload (or a compiled SVL program) under the
// Frontier Race Detector baseline and prints data races. With -frontier it
// also records a trace and prints the frontier races and the automatically
// discovered synchronization blocks — the paper's first FRD pass.
//
// Usage:
//
//	frd -workload mysql-tables -seed 3
//	frd -src program.svl -frontier
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/frd"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "registered workload to run (see -list)")
		srcPath   = flag.String("src", "", "SVL source file to compile and run instead")
		list      = flag.Bool("list", false, "list registered workloads")
		seed      = flag.Uint64("seed", 0, "scheduler seed")
		scale     = flag.Int("scale", 1, "workload size multiplier")
		cpus      = flag.Int("cpus", 0, "CPU count for -src programs")
		maxSteps  = flag.Uint64("max-steps", 1<<24, "instruction budget")
		maxShow   = flag.Int("show", 10, "max races to print")
		frontier  = flag.Bool("frontier", false, "also record a trace and print frontier races")
		tracePath = flag.String("trace", "", "write race events as Chrome trace-event JSON to this file")
		witness   = flag.Bool("witness", false, "enable the race flight recorder and print the forensic report")
		logLevel  = flag.String("log-level", "info", "operational log level: debug, info, warn, error")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("frd"))
		return
	}

	obs.InitSlog(*logLevel, false)
	if *list {
		for _, name := range workloads.Names() {
			fmt.Println(name)
		}
		return
	}
	if err := run(*workload, *srcPath, *seed, *scale, *cpus, *maxSteps, *maxShow, *frontier, *witness, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "frd:", err)
		os.Exit(1)
	}
}

func run(workload, srcPath string, seed uint64, scale, cpus int, maxSteps uint64, maxShow int, wantFrontier, witness bool, tracePath string) error {
	m, w, err := buildMachine(workload, srcPath, seed, scale, cpus)
	if err != nil {
		return err
	}
	var sink *obs.Sink
	opts := frd.Options{Witness: witness}
	if tracePath != "" {
		sink = obs.NewSink(obs.SinkOptions{Tracing: true})
		opts.Recorder = sink.NewRecorder(fmt.Sprintf("frd seed %d", seed))
	}
	prog := m.Program()
	det := frd.New(prog, m.NumCPUs(), opts)
	m.AttachBatch(det)

	var rec *trace.Recorder
	if wantFrontier {
		rec, err = trace.NewRecorder(prog, m.NumCPUs(), 1<<21)
		if err != nil {
			return err
		}
		m.Attach(rec)
	}

	if _, err := m.Run(maxSteps); err != nil {
		fmt.Printf("execution faulted: %v\n", err)
	} else if !m.Done() {
		fmt.Printf("stopped after %d instructions (budget)\n", maxSteps)
	}
	if sink != nil {
		det.FlushObs()
		opts.Recorder.Flush()
		if err := sink.WriteTraceFile(tracePath); err != nil {
			return err
		}
		slog.Info("trace written", "path", tracePath, "events", sink.Trace().Len())
	}

	st := det.Stats()
	fmt.Printf("program: %s  cpus: %d  seed: %d\n", prog.Name, m.NumCPUs(), seed)
	fmt.Printf("instructions: %d  data accesses: %d loads / %d stores  sync ops: %d\n",
		st.Instructions, st.Loads, st.Stores, st.SyncOps)
	fmt.Printf("data races: %d dynamic, %d static sites\n", st.Races, len(det.Sites()))
	for i, site := range det.Sites() {
		if i >= maxShow {
			fmt.Printf("  ... %d more sites\n", len(det.Sites())-maxShow)
			break
		}
		marker := ""
		if w != nil && (w.BugPCs[site.PCLow] || w.BugPCs[site.PCHigh]) {
			marker = "  <- injected bug"
		}
		fmt.Printf("  [%6d dynamic] %s vs %s on %s%s\n",
			site.Count, locOf(prog, site.PCLow), locOf(prog, site.PCHigh),
			symOf(prog, site.First.Block), marker)
	}

	if witness {
		fmt.Println()
		fmt.Print(obs.RenderForensicReport(det.Witnesses(), obs.ForensicOptions{
			Loc:       prog.LocationOf,
			Sym:       func(b int64) string { return prog.SymbolFor(b << opts.BlockShift) },
			MaxGroups: maxShow,
		}))
	}

	if rec != nil {
		tr := rec.Trace()
		accs := tr.Accesses()
		races := frd.Frontier(accs)
		sync := frd.DiscoverSync(accs)
		fmt.Printf("frontier pass: %d memory accesses, %d frontier races, sync blocks %v\n",
			len(accs), len(races), sync)
		for i, r := range races {
			if i >= maxShow {
				fmt.Printf("  ... %d more frontier races\n", len(races)-maxShow)
				break
			}
			fmt.Printf("  frontier: %s vs %s on %s\n",
				locOf(prog, r.FirstPC), locOf(prog, r.SecondPC), symOf(prog, r.Block))
		}
	}

	if w != nil && w.Check != nil {
		bad, detail := w.Check(m)
		fmt.Printf("outcome: erroneous=%v (%s)\n", bad, detail)
	}
	return nil
}

func buildMachine(workload, srcPath string, seed uint64, scale, cpus int) (*vm.VM, *workloads.Workload, error) {
	switch {
	case workload != "" && srcPath != "":
		return nil, nil, fmt.Errorf("pass -workload or -src, not both")
	case workload != "":
		w, err := workloads.ByName(workload, scale, seed)
		if err != nil {
			return nil, nil, err
		}
		m, err := w.NewVM(seed)
		return m, w, err
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, nil, err
		}
		prog, err := lang.Compile(string(src), lang.Options{Name: srcPath})
		if err != nil {
			return nil, nil, err
		}
		if cpus <= 0 {
			cpus = len(prog.Entries)
		}
		m, err := vm.New(prog, vm.Config{
			NumCPUs: cpus, MemWords: 1 << 18, StackWords: 1 << 10,
			Seed: seed, MaxQuantum: 8,
		})
		return m, nil, err
	default:
		return nil, nil, fmt.Errorf("pass -workload <name> (see -list) or -src <file.svl>")
	}
}

func locOf(prog interface{ LocationOf(int64) string }, pc int64) string {
	if loc := prog.LocationOf(pc); loc != "" {
		return loc
	}
	return fmt.Sprintf("pc %d", pc)
}

func symOf(prog interface{ SymbolFor(int64) string }, addr int64) string {
	if s := prog.SymbolFor(addr); s != "" {
		return s
	}
	return fmt.Sprintf("word %d", addr)
}
