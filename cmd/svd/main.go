// Command svd runs a workload (or a compiled SVL program) under the online
// Serializability Violation Detector and prints its findings: dynamic
// violations, static violation sites, and the a posteriori examination log.
//
// Usage:
//
//	svd -workload apache-buggy -seed 3 -scale 2
//	svd -src program.svl -cpus 4 -seed 1
//	svd -workload apache-buggy -trace out.json   # Chrome trace of CU lifecycle
//	svd -workload apache-buggy -witness          # forensic report per site pair
//	svd -workload apache-buggy -witness-json w.json
//	svd -list
//
// -witness turns on the violation flight recorder (DESIGN.md §9): every
// violation is paired with a causal witness, and the findings section ends
// with a forensic report — per site pair, the victim unit's footprint, the
// stale input, and the two-thread schedule that closed the cycle, folded
// with the matching a posteriori examination finding. -witness-json dumps
// the raw witnesses as JSON for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/svd"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "registered workload to run (see -list)")
		srcPath   = flag.String("src", "", "SVL source file to compile and run instead")
		list      = flag.Bool("list", false, "list registered workloads")
		seed      = flag.Uint64("seed", 0, "scheduler seed (same seed replays the same execution)")
		scale     = flag.Int("scale", 1, "workload size multiplier")
		cpus      = flag.Int("cpus", 0, "CPU count for -src programs (default: thread declarations)")
		maxSteps  = flag.Uint64("max-steps", 1<<24, "instruction budget")
		maxShow   = flag.Int("show", 10, "max violations and log entries to print")
		allBlocks = flag.Bool("check-all-blocks", false, "check whole CU footprints, not only input blocks")
		noAddr    = flag.Bool("no-address-deps", false, "disable address dependences")
		noCtrl    = flag.Bool("no-control-deps", false, "disable the Skipper control-dependence stack")
		blockLog2 = flag.Uint("block-shift", 0, "log2 words per detection block")
		tracePath = flag.String("trace", "", "write CU lifecycle events as Chrome trace-event JSON to this file")
		witness   = flag.Bool("witness", false, "enable the violation flight recorder and print the forensic report")
		witnessJS = flag.String("witness-json", "", "write the raw violation witnesses to this file as JSON (implies -witness)")
		logLevel  = flag.String("log-level", "info", "operational log level: debug, info, warn, error")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("svd"))
		return
	}

	obs.InitSlog(*logLevel, false)
	if *list {
		for _, name := range workloads.Names() {
			fmt.Println(name)
		}
		return
	}
	if err := run(*workload, *srcPath, *seed, *scale, *cpus, *maxSteps, *maxShow, *tracePath, *witnessJS, svd.Options{
		CheckAllBlocks: *allBlocks,
		NoAddressDeps:  *noAddr,
		NoControlDeps:  *noCtrl,
		BlockShift:     *blockLog2,
		Witness:        *witness || *witnessJS != "",
	}); err != nil {
		fmt.Fprintln(os.Stderr, "svd:", err)
		os.Exit(1)
	}
}

func run(workload, srcPath string, seed uint64, scale, cpus int, maxSteps uint64, maxShow int, tracePath, witnessJSON string, opts svd.Options) error {
	m, w, err := buildMachine(workload, srcPath, seed, scale, cpus)
	if err != nil {
		return err
	}
	var sink *obs.Sink
	if tracePath != "" {
		sink = obs.NewSink(obs.SinkOptions{Tracing: true})
		opts.Recorder = sink.NewRecorder(fmt.Sprintf("svd seed %d", seed))
	}
	prog := m.Program()
	det := svd.New(prog, m.NumCPUs(), opts)
	m.AttachBatch(det)
	if _, err := m.Run(maxSteps); err != nil {
		fmt.Printf("execution faulted: %v\n", err)
	} else if !m.Done() {
		fmt.Printf("stopped after %d instructions (budget)\n", maxSteps)
	}
	if sink != nil {
		det.FlushObs()
		opts.Recorder.Flush()
		if err := sink.WriteTraceFile(tracePath); err != nil {
			return err
		}
		slog.Info("trace written", "path", tracePath, "events", sink.Trace().Len())
	}

	st := det.Stats()
	fmt.Printf("program: %s  cpus: %d  seed: %d\n", prog.Name, m.NumCPUs(), seed)
	fmt.Printf("instructions: %d  loads: %d  stores: %d  CUs: %d (cut %d, merged %d)\n",
		st.Instructions, st.Loads, st.Stores, st.CUsLive(), st.CUsCut, st.CUsMerged)
	fmt.Printf("serializability violations: %d dynamic, %d static sites\n",
		st.Violations, len(det.Sites()))

	for i, site := range det.Sites() {
		if i >= maxShow {
			fmt.Printf("  ... %d more sites\n", len(det.Sites())-maxShow)
			break
		}
		loc := site.Location
		if loc == "" {
			loc = fmt.Sprintf("pc %d", site.StorePC)
		}
		marker := ""
		if w != nil && w.BugPCs[site.StorePC] {
			marker = "  <- injected bug"
		}
		fmt.Printf("  [%6d dynamic] store at %s (block %d, conflicts with cpu %d pc %d)%s\n",
			site.Count, loc, site.First.Block, site.First.ConflictCPU, site.First.ConflictPC, marker)
	}

	log := det.Log()
	fmt.Printf("a posteriori log: %d distinct triples (%d dynamic)\n", len(log), st.LogEntries)
	for i, e := range log {
		if i >= maxShow {
			fmt.Printf("  ... %d more entries\n", len(log)-maxShow)
			break
		}
		fmt.Printf("  cpu %d read %s of %s: local write %s overwritten by cpu %d write %s\n",
			e.CPU, locOf(prog, e.ReadPC), symOf(prog, e.Block),
			locOf(prog, e.LocalWritePC), e.RemoteWriteCPU, locOf(prog, e.RemoteWritePC))
	}

	findings := svd.Examine(prog, log)
	if len(findings) > 0 {
		fmt.Printf("a posteriori examination (%d variables):\n", len(findings))
		for i, f := range findings {
			if i >= maxShow {
				fmt.Printf("  ... %d more findings\n", len(findings)-maxShow)
				break
			}
			fmt.Print(indent(f.Describe(prog)))
		}
	}

	if opts.Witness {
		ws := det.Witnesses()
		fmt.Println()
		fmt.Print(obs.RenderForensicReport(ws, obs.ForensicOptions{
			Loc:       prog.LocationOf,
			Sym:       func(b int64) string { return prog.SymbolFor(b << opts.BlockShift) },
			Annotate:  annotateFromFindings(findings),
			MaxGroups: maxShow,
		}))
		if witnessJSON != "" {
			data, err := json.MarshalIndent(ws, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(witnessJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			slog.Info("witnesses written", "path", witnessJSON, "count", len(ws))
		}
	}

	if w != nil && w.Check != nil {
		bad, detail := w.Check(m)
		fmt.Printf("outcome: erroneous=%v (%s)\n", bad, detail)
	}
	return nil
}

func buildMachine(workload, srcPath string, seed uint64, scale, cpus int) (*vm.VM, *workloads.Workload, error) {
	switch {
	case workload != "" && srcPath != "":
		return nil, nil, fmt.Errorf("pass -workload or -src, not both")
	case workload != "":
		w, err := workloads.ByName(workload, scale, seed)
		if err != nil {
			return nil, nil, err
		}
		m, err := w.NewVM(seed)
		return m, w, err
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, nil, err
		}
		prog, err := lang.Compile(string(src), lang.Options{Name: srcPath})
		if err != nil {
			return nil, nil, err
		}
		if cpus <= 0 {
			cpus = len(prog.Entries)
		}
		m, err := vm.New(prog, vm.Config{
			NumCPUs: cpus, MemWords: 1 << 18, StackWords: 1 << 10,
			Seed: seed, MaxQuantum: 8,
		})
		return m, nil, err
	default:
		return nil, nil, fmt.Errorf("pass -workload <name> (see -list) or -src <file.svl>")
	}
}

// annotateFromFindings folds the a posteriori examination into the
// forensic report: when a witness group's block matches an examined
// variable, the group carries the examiner's reading of it.
func annotateFromFindings(findings []svd.Finding) func(obs.WitnessGroup) string {
	return func(g obs.WitnessGroup) string {
		for _, f := range findings {
			if f.Block != g.First.Block {
				continue
			}
			name := f.Symbol
			if name == "" {
				name = fmt.Sprintf("block %d", f.Block)
			}
			if f.Symmetric {
				return fmt.Sprintf("examiner: %s is written symmetrically by %d threads that read their value back — likely meant to be thread-local", name, f.Writers)
			}
			return fmt.Sprintf("examiner: %d threads saw their writes to %s overwritten by %d others (%d dynamic triples)", f.Readers, name, f.Writers, f.Dynamic)
		}
		return ""
	}
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

func locOf(prog interface{ LocationOf(int64) string }, pc int64) string {
	if loc := prog.LocationOf(pc); loc != "" {
		return loc
	}
	return fmt.Sprintf("pc %d", pc)
}

func symOf(prog interface{ SymbolFor(int64) string }, addr int64) string {
	if s := prog.SymbolFor(addr); s != "" {
		return s
	}
	return fmt.Sprintf("word %d", addr)
}
