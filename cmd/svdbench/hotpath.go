package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/report"
	"repro/internal/svd"
	"repro/internal/workloads"
)

// benchSnapshot is the machine-readable -hotpath result (-json FILE).
type benchSnapshot struct {
	Workload string `json:"workload"`
	Scale    int    `json:"scale"`
	Seed     uint64 `json:"seed"`

	BareNsPerInstr float64 `json:"bare_ns_per_instr"`
	SVDNsPerInstr  float64 `json:"svd_ns_per_instr"`
	FRDNsPerInstr  float64 `json:"frd_ns_per_instr"`

	SVDAllocsPerKInstr float64 `json:"svd_allocs_per_kinstr"`

	SeqMinstrPerSec float64 `json:"seq_minstr_per_sec"`
	ParMinstrPerSec float64 `json:"par_minstr_per_sec"`
	Parallelism     int     `json:"parallelism"`
	Speedup         float64 `json:"speedup"`
}

// runHotpath microbenchmarks the detector hot path on the PgSQL workload
// (the largest bug-free Table 2 row): per-instruction detector cost,
// allocation rate, and the sample-runner's parallel throughput.
func runHotpath(scale int, seed uint64, parallel int, jsonPath string) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{
		Warehouses: 4, Terminals: 4, Txns: 128 * scale, Seed: seed,
	})
	snap := benchSnapshot{Workload: w.Name, Scale: scale, Seed: seed, Parallelism: parallel}

	fmt.Println("== detector hot path ==")
	snap.BareNsPerInstr = timeRun(w, seed, "none")
	snap.SVDNsPerInstr = timeRun(w, seed, "svd")
	snap.FRDNsPerInstr = timeRun(w, seed, "frd")
	snap.SVDAllocsPerKInstr = measureSVDAllocs(w, seed)
	fmt.Printf("%-22s %12.1f ns/instr\n", "bare VM", snap.BareNsPerInstr)
	fmt.Printf("%-22s %12.1f ns/instr (%.1fx), %.2f allocs/Kinstr\n",
		"with SVD", snap.SVDNsPerInstr, snap.SVDNsPerInstr/snap.BareNsPerInstr, snap.SVDAllocsPerKInstr)
	fmt.Printf("%-22s %12.1f ns/instr (%.1fx)\n",
		"with FRD", snap.FRDNsPerInstr, snap.FRDNsPerInstr/snap.BareNsPerInstr)

	seeds := report.Seeds(seed, 2*parallel)
	snap.SeqMinstrPerSec = sampleThroughput(w, seeds, 1)
	snap.ParMinstrPerSec = sampleThroughput(w, seeds, parallel)
	snap.Speedup = snap.ParMinstrPerSec / snap.SeqMinstrPerSec
	fmt.Printf("%-22s %12.2f Minstr/s\n", "samples sequential", snap.SeqMinstrPerSec)
	fmt.Printf("%-22s %12.2f Minstr/s (%d workers, %.2fx)\n",
		"samples parallel", snap.ParMinstrPerSec, parallel, snap.Speedup)

	if jsonPath != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// measureSVDAllocs runs one SVD-attached sample and reports heap
// allocations per thousand detector-observed instructions.
func measureSVDAllocs(w *workloads.Workload, seed uint64) float64 {
	m, err := w.NewVM(seed)
	if err != nil {
		fatal(err)
	}
	det := svd.New(w.Prog, w.NumThreads, svd.Options{})
	m.AttachBatch(det)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := m.Run(1 << 26); err != nil {
		fatal(err)
	}
	runtime.ReadMemStats(&after)
	instrs := det.Stats().Instructions
	if instrs == 0 {
		return 0
	}
	return float64(after.Mallocs-before.Mallocs) / float64(instrs) * 1000
}

// sampleThroughput measures RunMany throughput in million instructions per
// wall-clock second at the given parallelism.
func sampleThroughput(w *workloads.Workload, seeds []uint64, parallel int) float64 {
	start := time.Now()
	sams, err := report.RunMany(w, seeds, report.Options{}, parallel)
	if err != nil {
		fatal(err)
	}
	var instrs uint64
	for _, s := range sams {
		instrs += s.Instructions
	}
	return float64(instrs) / 1e6 / time.Since(start).Seconds()
}
