// Command svdbench regenerates the paper's evaluation (§6–7):
//
//	svdbench -table2 [-scale N] [-samples N]   Table 2
//	svdbench -fn                               §7.1 apparent false negatives
//	svdbench -scaling                          §7.3 execution-length sweep
//	svdbench -overhead                         §7.3 detector overhead
//	svdbench -hotpath                          detector hot-path microbenchmark
//	svdbench -ber                              §1.1 BER avoidance scenario
//	svdbench -baselines                        §8 detector families, head to head
//
// Sample-running modes (-table2, -fn) fan independent samples across
// -parallel workers (default GOMAXPROCS) with bit-identical results.
// -json FILE writes machine-readable output: the -hotpath measurements,
// or for -table2 the rows plus the merged detector stats across every
// sample.
//
// Observability (DESIGN.md §7, §9):
//
//	-trace out.json   record detector activity (CU lifecycle, violations,
//	                  witnesses, log triples, races, harness phases) as
//	                  Chrome trace-event JSON, loadable in Perfetto
//	-http :6060       serve OpenMetrics (/metrics), expvar (/debug/vars),
//	                  and net/http/pprof (/debug/pprof) during the run;
//	                  with no run mode, serve until interrupted; shuts
//	                  down cleanly on SIGINT
//	-witness          enable the violation flight recorder; -json output
//	                  then carries the witness digest
//	-metrics-format   print the aggregated telemetry to stdout after the
//	                  run, as "json" (snapshot) or "openmetrics" (text
//	                  exposition)
//
// Operational messages (server lifecycle, files written) go to stderr via
// log/slog; -log-level and -log-json tune them.
//
// Absolute numbers differ from the paper's (the substrate is this
// repository's VM, not Simics on SPARC hardware); the shapes — who wins,
// by what rough factor, and the PgSQL inversion — are the reproduction
// targets. See EXPERIMENTS.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/ber"
	"repro/internal/buildinfo"
	"repro/internal/frd"
	"repro/internal/lockset"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/stale"
	"repro/internal/svd"
	"repro/internal/workloads"
)

func main() {
	var (
		table2    = flag.Bool("table2", false, "reproduce Table 2")
		fn        = flag.Bool("fn", false, "reproduce the §7.1 apparent-false-negative analysis")
		scaling   = flag.Bool("scaling", false, "reproduce the §7.3 execution-length sweep")
		overhead  = flag.Bool("overhead", false, "measure detector time overhead (§7.3)")
		berMode   = flag.Bool("ber", false, "demonstrate BER-based bug avoidance (§1.1)")
		baselines = flag.Bool("baselines", false, "compare the §8 detector families on all workloads")
		hotpath   = flag.Bool("hotpath", false, "microbenchmark the detector hot path")
		scale     = flag.Int("scale", 2, "workload size multiplier")
		samples   = flag.Int("samples", 4, "samples per bug-free Table 2 row")
		seed      = flag.Uint64("seed", 0, "base scheduler seed")
		parallel  = flag.Int("parallel", 0, "sample-runner workers; <=0 means GOMAXPROCS")
		jsonPath  = flag.String("json", "", "write machine-readable results (-hotpath or -table2) to this file as JSON")
		tracePath = flag.String("trace", "", "write detector activity as Chrome trace-event JSON to this file")
		httpAddr  = flag.String("http", "", "serve OpenMetrics, expvar, and pprof on this address (e.g. :6060)")
		witness   = flag.Bool("witness", false, "enable the violation flight recorder (witnesses ride in -json and -trace output)")
		metricsFm = flag.String("metrics-format", "", "print aggregated telemetry to stdout after the run: json or openmetrics")
		logLevel  = flag.String("log-level", "info", "operational log level: debug, info, warn, error")
		logJSON   = flag.Bool("log-json", false, "emit operational log records as JSON")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("svdbench"))
		return
	}

	logger := obs.InitSlog(*logLevel, *logJSON)
	if *metricsFm != "" && *metricsFm != "json" && *metricsFm != "openmetrics" {
		fatal(fmt.Errorf("unknown -metrics-format %q (want json or openmetrics)", *metricsFm))
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	var sink *obs.Sink
	if *tracePath != "" || *httpAddr != "" || *metricsFm != "" {
		sink = obs.NewSink(obs.SinkOptions{Tracing: *tracePath != ""})
		sink.PublishExpvar("svd")
	}
	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.StartServer(*httpAddr, sink, "svd")
		if err != nil {
			fatal(err)
		}
		logger.Info("metrics server started",
			"addr", srv.Addr(), "metrics", "/metrics", "expvar", "/debug/vars", "pprof", "/debug/pprof")
	}

	ran := false
	if *table2 {
		ran = true
		runTable2(*scale, *samples, *seed, *parallel, *jsonPath, sink, *witness)
	}
	if *fn {
		ran = true
		runFN(*scale, *seed, *parallel, sink, *witness)
	}
	if *scaling {
		ran = true
		runScaling(*seed)
	}
	if *overhead {
		ran = true
		runOverhead(*scale, *seed)
	}
	if *berMode {
		ran = true
		runBER(*scale, *seed)
	}
	if *baselines {
		ran = true
		runBaselines(*scale, *seed)
	}
	if *hotpath {
		ran = true
		runHotpath(*scale, *seed, *parallel, *jsonPath)
	}
	if !ran && *httpAddr != "" {
		// Pure serving mode: keep the endpoint up until SIGINT, then shut
		// down cleanly instead of dying mid-request.
		logger.Info("no run mode given; serving until interrupted")
		<-ctx.Done()
	} else if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			logger.Warn("metrics server shutdown", "err", err)
		}
		cancel()
		logger.Info("metrics server stopped")
	}
	if *tracePath != "" {
		if err := sink.WriteTraceFile(*tracePath); err != nil {
			fatal(err)
		}
		logger.Info("trace written", "path", *tracePath, "events", sink.Trace().Len())
	}
	if *metricsFm != "" && sink != nil {
		switch *metricsFm {
		case "json":
			data, err := json.MarshalIndent(sink.Snapshot(), "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
		case "openmetrics":
			if err := sink.WriteOpenMetrics(os.Stdout, "svd"); err != nil {
				fatal(err)
			}
		}
	}
}

// runBaselines compares SVD with the related-work detector families (§8):
// happens-before, lockset, and stale-value, all given the synchronization
// annotations they require (SVD uses none).
func runBaselines(scale int, seed uint64) {
	fmt.Println("== §8 detector families: dynamic reports per million instructions ==")
	fmt.Printf("%-22s %7s %12s %12s %12s %12s %9s\n",
		"workload", "MInsts", "svd", "happens-bef", "lockset", "stale-value", "erroneous")
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, scale, seed)
		if err != nil {
			fatal(err)
		}
		m, err := w.NewVM(seed)
		if err != nil {
			fatal(err)
		}
		sd := svd.New(w.Prog, w.NumThreads, svd.Options{})
		fd := frd.New(w.Prog, w.NumThreads, frd.Options{})
		ld := lockset.New(w.NumThreads, lockset.Options{})
		td := stale.New(w.NumThreads, stale.Options{})
		m.AttachBatch(sd)
		m.AttachBatch(fd)
		m.Attach(ld)
		m.Attach(td)
		if _, err := m.Run(1 << 26); err != nil {
			fatal(err)
		}
		mi := float64(sd.Stats().Instructions) / 1e6
		bad := false
		if w.Check != nil {
			bad, _ = w.Check(m)
		}
		fmt.Printf("%-22s %7.2f %12.2f %12.2f %12.2f %12.2f %9v\n",
			name, mi,
			float64(sd.Stats().Violations)/mi,
			float64(fd.Stats().Races)/mi,
			float64(ld.Stats().Reports)/mi,
			float64(td.Stats().Reports)/mi,
			bad)
	}
	fmt.Println("note: SVD reports actual serializability violations; the others report races or")
	fmt.Println("patterns, need lock annotations (auto-derived from CAS here), and fire on correct runs.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "svdbench:", err)
	os.Exit(1)
}

func runTable2(scale, samples int, seed uint64, parallel int, jsonPath string, sink *obs.Sink, witness bool) {
	fmt.Printf("== Table 2 (scale %d, %d samples per bug-free row) ==\n", scale, samples)
	rows, merged, err := report.Table2(report.Table2Config{
		Scale: scale, Samples: samples, Seed: seed, Parallelism: parallel, Obs: sink, Witness: witness,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.RenderTable(rows))
	fmt.Println()
	for _, r := range rows {
		fmt.Print(report.Summary(r))
	}
	if jsonPath != "" {
		if err := writeTable2JSON(jsonPath, rows, merged, sink); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Table 2 rows and merged stats to %s\n", jsonPath)
	}
}

// writeTable2JSON dumps the rows plus the merged detector counters (and,
// when telemetry is on, the sink's histogram snapshot) for downstream
// tooling.
func writeTable2JSON(path string, rows []report.Row, merged report.MergedStats, sink *obs.Sink) error {
	out := struct {
		Rows      []report.Row       `json:"rows"`
		Stats     report.MergedStats `json:"stats"`
		Telemetry *obs.Snapshot      `json:"telemetry,omitempty"`
	}{Rows: rows, Stats: merged}
	if sink != nil {
		snap := sink.Snapshot()
		out.Telemetry = &snap
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runFN(scale int, seed uint64, parallel int, sink *obs.Sink, witness bool) {
	fmt.Println("== §7.1 apparent false negatives ==")
	for _, name := range []string{"apache-buggy", "mysql-prepared-buggy"} {
		w, err := workloads.ByName(name, scale, seed)
		if err != nil {
			fatal(err)
		}
		sams, err := report.RunMany(w, report.Seeds(seed, 6), report.Options{Obs: sink, Witness: witness}, parallel)
		if err != nil {
			fatal(err)
		}
		row := report.Aggregate(name, sams)
		fmt.Print(report.Summary(row))
	}
}

func runScaling(seed uint64) {
	fmt.Println("== §7.3 execution-length sweep ==")
	pts, err := report.ScalingSweep([]int{1, 2, 4, 8, 16}, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-14s %6s %10s %10s %10s\n", "workload", "factor", "MInsts", "staticFP", "dynFP")
	for _, p := range pts {
		fmt.Printf("%-14s %6d %10.2f %10d %10d\n", p.Workload, p.Factor, p.MInsts, p.StaticFP, p.DynFP)
	}
	fmt.Println("expected shape: staticFP ~flat (tracks exercised code), dynFP ~linear in length")
}

func runOverhead(scale int, seed uint64) {
	fmt.Println("== §7.3 detector overhead ==")
	fmt.Printf("%-22s %12s %12s %12s %10s %10s\n",
		"workload", "bare ns/ins", "svd ns/ins", "frd ns/ins", "svd x", "frd x")
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, scale, seed)
		if err != nil {
			fatal(err)
		}
		bare := timeRun(w, seed, "none")
		withSVD := timeRun(w, seed, "svd")
		withFRD := timeRun(w, seed, "frd")
		fmt.Printf("%-22s %12.1f %12.1f %12.1f %9.1fx %9.1fx\n",
			name, bare, withSVD, withFRD, withSVD/bare, withFRD/bare)
	}
}

func timeRun(w *workloads.Workload, seed uint64, det string) float64 {
	m, err := w.NewVM(seed)
	if err != nil {
		fatal(err)
	}
	switch det {
	case "svd":
		m.AttachBatch(svd.New(w.Prog, w.NumThreads, svd.Options{}))
	case "frd":
		m.AttachBatch(frd.New(w.Prog, w.NumThreads, frd.Options{}))
	}
	start := time.Now()
	n, err := m.Run(1 << 26)
	if err != nil {
		// Faults are a workload outcome (the buggy variants crash); the
		// timing up to the fault still stands.
		_ = err
	}
	if n == 0 {
		return 0
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func runBER(scale int, seed uint64) {
	fmt.Println("== §1.1 BER-based avoidance of the Apache bug ==")
	w, err := workloads.ByName("apache-buggy", scale, seed)
	if err != nil {
		fatal(err)
	}
	for s := seed; s < seed+4; s++ {
		m, err := w.NewVM(s)
		if err != nil {
			fatal(err)
		}
		if _, err := m.Run(1 << 24); err != nil {
			fatal(err)
		}
		bad, detail := w.Check(m)
		fmt.Printf("seed %d without BER: erroneous=%v (%s)\n", s, bad, detail)

		m, err = w.NewVM(s)
		if err != nil {
			fatal(err)
		}
		det := svd.New(w.Prog, w.NumThreads, svd.Options{})
		m.Attach(det)
		st, err := ber.Run(m, det, ber.Config{CheckpointInterval: 2048})
		if err != nil {
			fatal(err)
		}
		bad, detail = w.Check(m)
		fmt.Printf("seed %d with    BER: erroneous=%v (%s); %d rollbacks, %d wasted, %d serialized of %d total\n",
			s, bad, detail, st.Rollbacks, st.WastedInstructions, st.SerialInstructions, st.TotalInstructions)
	}
}
