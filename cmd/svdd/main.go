// Command svdd is the detection daemon: a long-running service that
// accepts wire-format event streams (internal/wire), spreads them over
// sharded detector workers (internal/server), and answers each stream
// with the same report an in-process run would produce. Ingest is
// zero-copy columnar: each session decodes frames straight into pooled
// column batches that the shard worker consumes and recycles, so the
// socket-to-detector hop allocates nothing in steady state (DESIGN.md
// §11).
//
// Usage:
//
//	svdd -listen :7077 -shards 4
//	svdd -listen :7077 -http :7078          # /metrics, /statusz, /report, /debug/pprof
//	svdd -listen :7077 -policy shed         # drop batches under overload
//	svdd -listen :7077 -status-interval 10s # periodic status log line
//	svdd -listen :7077 -journal /var/svdd   # durable journal of ingested streams
//	svdd -cluster -node-id a -peers a=:7077+:7078,b=:7177+:7178
//
// With -cluster, svdd joins a static multi-node detection cluster
// (DESIGN.md §15): keyed streams are routed by consistent hash, a
// misrouted stream is forwarded to its owner, and when a probe demotes
// a member the survivors re-shard and drain affected streams to their
// new owners with a replay handoff. The HTTP plane's /report becomes a
// scatter-gather merge across the whole cluster; the local node's own
// report moves to /report/local and its raw samples to /samples.
//
// With -journal, every ingested wire frame is persisted to a segmented
// append-only store before its batch reaches a detector, violations are
// anchored to their journal records, and cmd/svdreplay can later replay
// the capture with byte-exact verification (-journal-* flags tune
// rotation, retention, and fsync cadence). Restarting over the same
// directory recovers torn tails and keeps stream ids unique.
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, open
// streams may finish until -drain-timeout expires, then the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", ":7077", "address for the event-stream listener")
		shards       = flag.Int("shards", runtime.GOMAXPROCS(0), "detector worker count")
		queue        = flag.Int("queue", 64, "per-shard pending-batch queue depth")
		policyName   = flag.String("policy", "block", "overload policy: block (backpressure) or shed (drop and report)")
		httpAddr     = flag.String("http", "", "address for the observability endpoint (empty = off): /metrics, /statusz, /report, /debug/pprof")
		scale        = flag.Int("scale", 1, "workload scale for streams that name a registry workload without one")
		telemetry    = flag.Bool("telemetry", true, "per-batch ingest telemetry: shard latency histograms, busy fraction")
		statusEvery  = flag.Duration("status-interval", 0, "log a status summary at this interval (0 = off)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for open streams")
		journalDir   = flag.String("journal", "", "directory for the durable event journal (empty = off)")
		journalSeg   = flag.Int64("journal-segment-bytes", journal.DefaultSegmentBytes, "journal segment rotation size")
		journalAge   = flag.Duration("journal-segment-age", 0, "rotate journal segments at this age even if not full (0 = size only)")
		journalKeep  = flag.Int("journal-retain-segments", 0, "sealed journal segments to retain (0 = all)")
		journalBytes = flag.Int64("journal-retain-bytes", 0, "total sealed journal bytes to retain (0 = all)")
		journalSync  = flag.Duration("journal-fsync-interval", journal.DefaultFsyncInterval, "upper bound on the journal's unsynced window (<0 = every append)")
		clustered    = flag.Bool("cluster", false, "join a multi-node detection cluster (requires -node-id and -peers)")
		nodeID       = flag.String("node-id", "", "this node's id in -peers")
		peersSpec    = flag.String("peers", "", "cluster members: id=wireaddr[+httpaddr],... (must include -node-id)")
		peerToken    = flag.String("cluster-token", "", "shared secret authenticating the node-to-node plane; empty derives one from -peers (set explicitly when the wire port is reachable by untrusted clients)")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "peer liveness/anti-entropy probe interval (0 = off)")
		logLevel     = flag.String("log-level", "info", "operational log level: debug, info, warn, error")
		logJSON      = flag.Bool("log-json", false, "log as JSON instead of text")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String("svdd"))
		return
	}
	log := obs.InitSlog(*logLevel, *logJSON)

	policy, err := server.ParsePolicy(*policyName)
	if err != nil {
		fatal(log, "bad -policy", err)
	}
	var jw *journal.Writer
	var streamBase uint64
	if *journalDir != "" {
		prov, err := journal.OpenDir(*journalDir)
		if err != nil {
			fatal(log, "journal open", err)
		}
		jw, err = journal.OpenWriter(prov, journal.Options{
			SegmentBytes:   *journalSeg,
			SegmentAge:     *journalAge,
			RetainSegments: *journalKeep,
			RetainBytes:    *journalBytes,
			FsyncInterval:  *journalSync,
		})
		if err != nil {
			fatal(log, "journal recover", err)
		}
		streamBase = jw.StreamBase()
		rec := jw.Recovery()
		log.Info("journal open", "dir", *journalDir, "segments", rec.Segments,
			"repaired", rec.Repaired, "truncated_bytes", rec.TruncatedBytes,
			"stream_base", streamBase)
	}

	sink := obs.NewSink(obs.SinkOptions{})
	eng := server.New(server.Options{
		Shards:     *shards,
		QueueDepth: *queue,
		Policy:     policy,
		Scale:      *scale,
		Obs:        sink,
		Telemetry:  *telemetry,
		Journal:    jw,
		StreamBase: streamBase,
		NodeID:     *nodeID,
		Logger:     log,
	})

	var cs *server.ClusterServer
	if *clustered {
		if *nodeID == "" || *peersSpec == "" {
			fatal(log, "cluster config", fmt.Errorf("-cluster requires -node-id and -peers"))
		}
		members, err := cluster.ParsePeers(*peersSpec)
		if err != nil {
			fatal(log, "bad -peers", err)
		}
		view := cluster.NewView(1, members)
		if _, ok := view.Member(*nodeID); !ok {
			fatal(log, "cluster config", fmt.Errorf("-node-id %q is not in -peers", *nodeID))
		}
		rt := cluster.NewRouter(*nodeID, view)
		token := *peerToken
		if token == "" {
			// Every node of one cluster runs with the same -peers, so a
			// token derived from the member list agrees fleet-wide with
			// no extra distribution. It keeps ordinary clients from
			// injecting Assign/Handoff frames, but anyone who knows the
			// topology can compute it — set -cluster-token explicitly
			// (or firewall the wire port) in adversarial settings.
			token = cluster.DeriveToken(members)
		}
		cs = server.NewClusterServer(eng, rt, server.ClusterOptions{PeerToken: token})
		log.Info("cluster mode", "node", *nodeID, "members", len(members), "epoch", view.Epoch)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(log, "listen", err)
	}
	log.Info("svdd listening", "addr", ln.Addr().String(),
		"shards", *shards, "policy", policy.String(), "build", buildinfo.String("svdd"))

	var httpSrv *http.Server
	if *httpAddr != "" {
		// Publish before the mux serves /debug/vars; an unpublished sink
		// leaves the endpoint showing only the runtime's defaults.
		sink.PublishExpvar("svdd")
		// One /metrics page: the sink's detector families plus the
		// engine's shard/stream service telemetry, single # EOF.
		mux := obs.NewServeMux(sink, "svdd", eng.MetricsWriter())
		if cs != nil {
			// Clustered /report is the scatter-gather merge; the node's
			// own view stays reachable for debugging.
			mux.Handle("/report", cs.GatherHandler())
			mux.Handle("/report/local", eng.ReportHandler())
			mux.Handle("/samples", eng.SamplesHandler())
		} else {
			mux.Handle("/report", eng.ReportHandler())
		}
		mux.Handle("/statusz", eng.StatuszHandler())
		httpLn, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(log, "http listen", err)
		}
		httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := httpSrv.Serve(httpLn); err != nil && err != http.ErrServerClosed {
				log.Error("http endpoint", "err", err)
			}
		}()
		log.Info("observability endpoint", "addr", httpLn.Addr().String())
	}

	if cs != nil && *probeEvery > 0 {
		// The probe doubles as failure detector and view anti-entropy:
		// each round exchanges Assign frames with every peer and demotes
		// unreachable members so routing converges without the peer.
		probeTicker := time.NewTicker(*probeEvery)
		defer probeTicker.Stop()
		go func() {
			for range probeTicker.C {
				cs.ProbePeers()
			}
		}()
	}

	if *statusEvery > 0 {
		ticker := time.NewTicker(*statusEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				log.Info("status", eng.StatusSummary()...)
			}
		}()
	}

	// SIGINT/SIGTERM closes the listener; Serve returns once every
	// session ends, then the engine drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Info("signal received, draining", "timeout", drainTimeout.String())
		ln.Close()
	}()

	serve := eng.Serve
	if cs != nil {
		serve = cs.Serve
	}
	if err := serve(ln); err != nil {
		log.Error("serve", "err", err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := eng.Shutdown(drainCtx); err != nil {
		log.Warn("drain cut short", "err", err)
	}
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			log.Warn("journal close", "err", err)
		}
	}
	c := eng.Counters()
	log.Info("svdd stopped", "streams", c.StreamsClosed, "events", c.Events, "batches_shed", c.BatchesShed)
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	os.Exit(1)
}
