// Command svdload is the detection service's load generator: it replays
// workload executions over the wire protocol to a running svdd, paces
// them at a target event rate, and reports the achieved throughput plus
// the server's detection results.
//
// Usage:
//
//	svdload -addr localhost:7077 -workload queue-buggy -samples 8
//	svdload -addr localhost:7077 -workload apache-buggy -rate 500000
//	svdload -addr localhost:7077 -workload queue-buggy -verify
//	svdload -addr localhost:7077 -workload queue-buggy -latency
//	svdload -nodes :7077,:7177,:7277 -report localhost:7078 -verify
//
// -verify re-runs every sample in-process and fails unless the served
// report matches bit for bit — the live form of the loopback
// differential test.
//
// -nodes sprays the streams round-robin across a cluster of svdd
// nodes instead of a single -addr, stamping each stream with its
// routing key (workload/seed) so misrouted streams exercise the
// cluster's forwarding path. -report then fetches the scatter-gather
// merged report from one node's HTTP plane after the run and fails
// unless it is byte-identical to an in-process merge of the same
// samples — the cluster-wide form of -verify. With
// -tolerate-disconnect, a node that dies mid-run is dropped from the
// spray and the run continues on the survivors (crash-drill mode).
//
// -latency negotiates send stamps on every stream and prints the
// client-observed wire-to-verdict distribution (p50/p90/p99 from the
// server's per-stream histograms, merged across samples). Both flags
// compose: a -verify -latency run proves the stamps change nothing in
// the detection results while measuring them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workloads"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:7077", "svdd address")
		nodes       = flag.String("nodes", "", "comma-separated svdd wire addresses to spray streams across (cluster mode; overrides -addr)")
		reportAddr  = flag.String("report", "", "cluster HTTP address; after the run, require the merged /report byte-identical to an in-process merge")
		workload    = flag.String("workload", "queue-buggy", "registered workload to replay (see svd -list)")
		samples     = flag.Int("samples", 4, "number of executions to stream, seeds seed..seed+samples-1")
		seed        = flag.Uint64("seed", 1, "first scheduler seed")
		scale       = flag.Int("scale", 1, "workload size multiplier")
		rate        = flag.Float64("rate", 0, "target events/sec per stream (0 = unpaced)")
		witness     = flag.Bool("witness", false, "ask the server for violation witnesses")
		embed       = flag.Bool("embed-program", false, "ship the program image in the handshake instead of naming the workload")
		verify      = flag.Bool("verify", false, "re-run each sample in-process and require bit-identical reports")
		tolerate    = flag.Bool("tolerate-disconnect", false, "treat a dropped connection as the end of the run, not a failure (crash-drill mode)")
		latency     = flag.Bool("latency", false, "negotiate send stamps and report wire-to-verdict latency percentiles")
		jsonOut     = flag.Bool("json", false, "print per-sample results as JSON")
		logLevel    = flag.String("log-level", "info", "operational log level: debug, info, warn, error")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String("svdload"))
		return
	}
	log := obs.InitSlog(*logLevel, false)

	addrs := []string{*addr}
	if *nodes != "" {
		addrs = addrs[:0]
		for _, a := range strings.Split(*nodes, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			log.Error("bad -nodes", "err", "no addresses")
			os.Exit(1)
		}
	}

	var wants []*report.Sample
	var totalEvents uint64
	var totalElapsed time.Duration
	violations, races := uint64(0), uint64(0)
	// Latency histograms merge exactly (power-of-two buckets), so the
	// aggregate percentiles are computed over every stamped batch of the
	// whole run, not averaged per sample.
	var latAgg obs.Histogram
	start := time.Now()
	for i := 0; i < *samples; i++ {
		s := *seed + uint64(i)
		w, err := workloads.ByName(*workload, *scale, s)
		if err != nil {
			log.Error("workload", "err", err)
			os.Exit(1)
		}
		// One connection per sample keeps streams independent; svdd
		// round-robins them across shards. With -nodes, samples also
		// round-robin across the cluster, and each stream carries its
		// routing key so the receiving node can forward a misroute.
		target := addrs[i%len(addrs)]
		cli, conn, err := server.Dial(target)
		if err != nil {
			if *tolerate && len(addrs) > 1 {
				log.Warn("node unreachable, dropping from spray", "addr", target, "err", err)
				addrs = dropAddr(addrs, target)
				i--
				continue
			}
			if *tolerate {
				log.Warn("daemon unreachable, ending run", "addr", target, "err", err)
				break
			}
			log.Error("dial", "addr", target, "err", err)
			os.Exit(1)
		}
		var key string
		if *nodes != "" {
			key = fmt.Sprintf("%s/%d", *workload, s)
		}
		got, stats, err := cli.RunSample(w, s, server.ReplayOptions{
			Witness:      *witness,
			Rate:         *rate,
			Scale:        *scale,
			EmbedProgram: *embed,
			Timestamps:   *latency,
			Key:          key,
		})
		conn.Close()
		if err != nil {
			// Under -tolerate-disconnect a mid-stream hangup is the
			// expected outcome of a crash drill: the daemon was killed
			// while this sample streamed. With other nodes left, drop
			// the dead one and keep the run going on the survivors;
			// the interrupted sample never produced a report and is
			// simply lost. Single-node runs stop cleanly as before.
			if *tolerate && len(addrs) > 1 {
				log.Warn("connection lost mid-sample, dropping node from spray",
					"addr", target, "workload", *workload, "seed", s, "err", err)
				addrs = dropAddr(addrs, target)
				continue
			}
			if *tolerate {
				log.Warn("connection lost mid-sample, ending run", "workload", *workload, "seed", s, "err", err)
				break
			}
			log.Error("replay", "workload", *workload, "seed", s, "err", err)
			os.Exit(1)
		}
		totalEvents += stats.Events
		totalElapsed += stats.Elapsed
		violations += got.SVDStats.Violations
		races += got.FRDStats.Races
		if *latency {
			if stats.Latency == nil {
				log.Error("server returned no latency report (svdd too old for timestamps?)", "seed", s)
				os.Exit(1)
			}
			latAgg.Merge(&stats.Latency.WireToVerdictNs)
		}

		if *verify || *reportAddr != "" {
			wLocal, err := workloads.ByName(*workload, *scale, s)
			if err != nil {
				log.Error("workload", "err", err)
				os.Exit(1)
			}
			want, err := report.Run(wLocal, s, report.Options{Witness: *witness})
			if err != nil {
				log.Error("in-process run", "seed", s, "err", err)
				os.Exit(1)
			}
			if *reportAddr != "" {
				wants = append(wants, want)
			}
			if *verify {
				gotJS, _ := json.Marshal(got)
				wantJS, _ := json.Marshal(want)
				if string(gotJS) != string(wantJS) {
					log.Error("served report differs from in-process run", "workload", *workload, "seed", s)
					os.Exit(1)
				}
				log.Info("verified", "workload", *workload, "seed", s)
			}
		}
		if *jsonOut {
			js, _ := json.Marshal(got)
			fmt.Println(string(js))
		} else {
			kv := []any{
				"workload", *workload, "seed", s,
				"events", stats.Events,
				"events_per_sec", fmt.Sprintf("%.0f", stats.EventsPerSec()),
				"violations", got.SVDStats.Violations,
				"races", got.FRDStats.Races,
				"erroneous", got.Erroneous,
			}
			if stats.Latency != nil {
				sum := stats.Latency.Summary()
				kv = append(kv,
					"lat_batches", sum.Count,
					"lat_p50", time.Duration(sum.P50).String(),
					"lat_p99", time.Duration(sum.P99).String())
			}
			log.Info("sample", kv...)
		}
	}
	wall := time.Since(start)
	fmt.Printf("svdload: %d samples, %d events in %v wall (%.0f events/sec aggregate), %d violations, %d races\n",
		*samples, totalEvents, wall.Round(time.Millisecond),
		float64(totalEvents)/wall.Seconds(), violations, races)
	if *latency {
		sum := latAgg.Summarize()
		fmt.Printf("svdload: wire-to-verdict latency over %d batches: p50 %v, p90 %v, p99 %v, max %v\n",
			sum.Count, time.Duration(sum.P50), time.Duration(sum.P90),
			time.Duration(sum.P99), time.Duration(sum.Max))
	}

	if *reportAddr != "" {
		// The cluster-wide differential: the scatter-gather /report must
		// merge to exactly what an in-process run over the same samples
		// merges to, regardless of which node each stream landed on or
		// whether it was forwarded or handed off along the way.
		resp, err := http.Get("http://" + *reportAddr + "/report")
		if err != nil {
			log.Error("cluster report fetch", "addr", *reportAddr, "err", err)
			os.Exit(1)
		}
		var cr server.ClusterReport
		err = json.NewDecoder(resp.Body).Decode(&cr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			log.Error("cluster report decode", "addr", *reportAddr, "status", resp.StatusCode, "err", err)
			os.Exit(1)
		}
		report.SortSamples(wants)
		local := report.MergeSamples(wants)
		gotJS, _ := json.Marshal(cr.Merged)
		wantJS, _ := json.Marshal(local)
		if string(gotJS) != string(wantJS) {
			log.Error("merged cluster report differs from in-process merge",
				"cluster", string(gotJS), "local", string(wantJS))
			os.Exit(1)
		}
		served := 0
		for _, n := range cr.Nodes {
			served += n.Samples
		}
		fmt.Printf("svdload: merged cluster report verified: %d samples across %d nodes (epoch %d) == in-process merge of %d samples\n",
			served, len(cr.Nodes), cr.Epoch, len(wants))
	}
}

// dropAddr removes addr from the spray set, preserving order.
func dropAddr(addrs []string, addr string) []string {
	out := addrs[:0]
	for _, a := range addrs {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}
