// Command svdreplay consumes the durable journal a svdd -journal run
// left behind: it lists the capture, re-serves it through a loopback
// engine with byte-exact verification against the journaled verdicts,
// and runs the offline differential over recorded traffic.
//
// Usage:
//
//	svdreplay -journal /var/svdd                # list segments and streams
//	svdreplay -journal /var/svdd -verify        # replay, compare verdicts
//	svdreplay -journal /var/svdd -offline       # differential re-detection
//	svdreplay -journal /var/svdd -offline -stream 3
//	svdreplay -journal /var/svdd -anchors       # re-derive witness evidence
//	svdreplay -journal /var/svdd -anchors -anchor-site 66
//
// -verify replays every journaled stream through the identical decode
// and detector path the daemon used and byte-compares each fresh
// verdict with the journaled one; any divergence exits nonzero. This is
// the crash-drill check: kill a journaled daemon mid-load, restart it,
// and -verify proves the recovered capture still replays cleanly.
//
// -offline decodes recorded streams to event rows and scores every
// online detector configuration (witnesses on/off, interest index
// on/off, SVD vs FRD) against the offline three-pass reference — the
// paper's accuracy/overhead table computed from production traffic
// instead of benchmark reruns.
//
// -anchors re-detects every journaled stream with the flight recorder
// forced on and prints each violation's anchor: the journal coordinates
// of the batch that produced it plus the re-derived witness, even when
// the original producer never asked for witnesses. -anchor-site narrows
// the listing to violations reported at one store PC. The forced
// witnesses run on a dedicated engine so they can never leak into
// -verify's byte comparison — a witness-forced replay of a witnessless
// capture would legitimately diverge.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/offline"
	"repro/internal/server"
)

func main() {
	var (
		dir         = flag.String("journal", "", "journal directory to read (required)")
		verify      = flag.Bool("verify", false, "replay every stream and byte-compare verdicts with the journaled ones")
		offlineRun  = flag.Bool("offline", false, "run the offline differential over recorded streams")
		anchorsRun  = flag.Bool("anchors", false, "re-detect with forced witnesses and list every violation's journal anchor")
		anchorSite  = flag.Int64("anchor-site", -1, "restrict -anchors to violations reported at this store PC (-1 = all)")
		stream      = flag.Int64("stream", -1, "restrict -offline to one stream id (-1 = all complete streams)")
		shards      = flag.Int("shards", 1, "replay engine worker count")
		scale       = flag.Int("scale", 1, "workload scale for streams that name a registry workload without one")
		maxStmts    = flag.Int("max-stmts", 0, "offline trace bound in statements (0 = recorder default)")
		jsonOut     = flag.Bool("json", false, "print results as JSON")
		logLevel    = flag.String("log-level", "info", "operational log level: debug, info, warn, error")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String("svdreplay"))
		return
	}
	log := obs.InitSlog(*logLevel, false)
	if *dir == "" {
		log.Error("svdreplay requires -journal <dir>")
		os.Exit(2)
	}

	prov, err := journal.OpenDir(*dir)
	if err != nil {
		log.Error("journal open", "dir", *dir, "err", err)
		os.Exit(1)
	}
	r, err := journal.OpenReader(prov)
	if err != nil {
		log.Error("journal read", "dir", *dir, "err", err)
		os.Exit(1)
	}
	defer r.Close()

	if !*verify && !*offlineRun && !*anchorsRun {
		listJournal(r, *jsonOut)
		return
	}

	// The replay engine must mirror the daemon's detector options; the
	// defaults here match svdd's defaults.
	eng := server.New(server.Options{Shards: *shards, Scale: *scale, Logger: log})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	exit := 0
	if *verify {
		if !runVerify(log, eng, r, *jsonOut) {
			exit = 1
		}
	}
	if *offlineRun {
		if !runOffline(log, eng, r, *stream, *maxStmts, *jsonOut) {
			exit = 1
		}
	}
	if *anchorsRun {
		// A dedicated engine keeps the forced witnesses out of -verify's
		// byte comparison: the verify engine above must mirror the live
		// daemon's options exactly, and ForceWitness is not one of them.
		aeng := server.New(server.Options{Shards: *shards, Scale: *scale, ForceWitness: true, Logger: log})
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = aeng.Shutdown(ctx)
		}()
		if !runAnchors(log, aeng, r, *anchorSite, *jsonOut) {
			exit = 1
		}
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// runAnchors re-detects the capture with forced witnesses and prints
// each stream's violation anchors, optionally narrowed to one site.
func runAnchors(log interface {
	Info(string, ...any)
	Error(string, ...any)
}, eng *server.Engine, r *journal.Reader, site int64, jsonOut bool) bool {
	streams, err := eng.ReplayJournalAnchored(r)
	if err != nil {
		log.Error("anchored replay", "err", err)
		return false
	}
	ok := true
	if site >= 0 {
		for i := range streams {
			kept := streams[i].Anchors[:0]
			for _, a := range streams[i].Anchors {
				if a.Witness != nil && a.Witness.PC == site {
					kept = append(kept, a)
				}
			}
			streams[i].Anchors = kept
		}
	}
	if jsonOut {
		js, _ := json.MarshalIndent(streams, "", "  ")
		fmt.Println(string(js))
	}
	total, withWitness := 0, 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !jsonOut {
		fmt.Fprintln(tw, "STREAM\tWORKLOAD\tSEED\tDETECTOR\tINDEX\tSITE-PC\tSEQ-RANGE\tSEGMENT\tOFFSET")
	}
	for _, as := range streams {
		if as.Err != "" {
			log.Error("stream failed anchored replay", "stream", as.Stream, "err", as.Err)
			ok = false
			continue
		}
		for _, a := range as.Anchors {
			total++
			pc := int64(-1)
			if a.Witness != nil {
				withWitness++
				pc = a.Witness.PC
			}
			if !jsonOut {
				fmt.Fprintf(tw, "%d\t%s\t%d\t%s\t%d\t%d\t%d..%d\t%016x\t%d\n",
					as.Stream, as.Workload, as.Seed, a.Detector, a.Index,
					pc, a.FirstSeq, a.LastSeq, a.Loc.Segment, a.Loc.Offset)
			}
		}
	}
	if !jsonOut {
		tw.Flush()
		if site >= 0 {
			fmt.Printf("svdreplay: %d anchored violations at site %d (%d with witnesses) across %d streams\n",
				total, site, withWitness, len(streams))
		} else {
			fmt.Printf("svdreplay: %d anchored violations (%d with witnesses) across %d streams\n",
				total, withWitness, len(streams))
		}
	}
	return ok
}

// listJournal prints the capture's shape: segments with their sizes and
// ages, then streams with their completeness.
func listJournal(r *journal.Reader, jsonOut bool) {
	if jsonOut {
		js, _ := json.MarshalIndent(struct {
			Segments []journal.SegmentInfo `json:"segments"`
			Streams  []journal.StreamInfo  `json:"streams"`
		}{r.Segments(), r.Streams()}, "", "  ")
		fmt.Println(string(js))
		return
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SEGMENT\tBYTES\tRECORDS\tCREATED\tSTATE")
	for _, s := range r.Segments() {
		state := "sealed"
		switch {
		case s.Torn:
			state = "torn-tail"
		case s.Scanned:
			state = "scanned"
		}
		fmt.Fprintf(tw, "%016x\t%d\t%d\t%s\t%s\n",
			s.ID, s.Size, s.Records,
			time.Unix(0, s.CreatedUnixNano).UTC().Format(time.RFC3339), state)
	}
	fmt.Fprintln(tw, "\nSTREAM\tRECORDS\tEVENTS\tSEQ-RANGE\tVERDICT")
	for _, s := range r.Streams() {
		verdict := "incomplete"
		switch {
		case s.HasError:
			verdict = "error"
		case s.HasResult:
			verdict = "result"
		case s.HasGoodbye:
			verdict = "goodbye-only"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d..%d\t%s\n",
			s.Stream, s.Records, s.Events, s.FirstSeq, s.LastSeq, verdict)
	}
	tw.Flush()
}

// runVerify replays the whole journal and reports per-stream outcomes;
// it returns false when anything diverged or errored.
func runVerify(log interface {
	Info(string, ...any)
	Error(string, ...any)
}, eng *server.Engine, r *journal.Reader, jsonOut bool) bool {
	sum, err := eng.ReplayJournal(r)
	if err != nil {
		log.Error("replay", "err", err)
		return false
	}
	if jsonOut {
		js, _ := json.MarshalIndent(sum, "", "  ")
		fmt.Println(string(js))
	} else {
		for _, rs := range sum.Streams {
			switch {
			case rs.Err != "":
				log.Error("stream errored", "stream", rs.Stream, "workload", rs.Workload, "err", rs.Err)
			case rs.Incomplete:
				log.Info("stream incomplete (cut capture)", "stream", rs.Stream, "workload", rs.Workload, "events", rs.Events)
			case rs.Match:
				log.Info("stream verified", "stream", rs.Stream, "workload", rs.Workload, "events", rs.Events)
			default:
				log.Error("stream DIVERGED", "stream", rs.Stream, "workload", rs.Workload, "detail", rs.Divergence)
			}
		}
		fmt.Printf("svdreplay: %d streams replayed, %d verified, %d matched, %d diverged, %d incomplete, %d errors\n",
			sum.Replayed, sum.Verified, sum.Matched, sum.Diverged, sum.Incomplete, sum.Errors)
	}
	return sum.Ok() && sum.Diverged == 0
}

// runOffline decodes the selected streams and prints the differential
// table for each; false on any decode or differential failure.
func runOffline(log interface {
	Info(string, ...any)
	Error(string, ...any)
}, eng *server.Engine, r *journal.Reader, only int64, maxStmts int, jsonOut bool) bool {
	ok := true
	ran := 0
	for _, si := range r.Streams() {
		if only >= 0 && si.Stream != uint64(only) {
			continue
		}
		w, evs, err := eng.DecodeStreamEvents(r, si.Stream)
		if err != nil {
			log.Error("decode stream", "stream", si.Stream, "err", err)
			ok = false
			continue
		}
		if len(evs) == 0 {
			log.Info("stream holds no events, skipping", "stream", si.Stream)
			continue
		}
		rep, err := offline.Differential(w.Prog, w.NumThreads, evs, nil, maxStmts)
		if err != nil {
			log.Error("differential", "stream", si.Stream, "err", err)
			ok = false
			continue
		}
		ran++
		if jsonOut {
			js, _ := json.MarshalIndent(struct {
				Stream   uint64              `json:"stream"`
				Workload string              `json:"workload"`
				Report   *offline.DiffReport `json:"report"`
			}{si.Stream, w.Name, rep}, "", "  ")
			fmt.Println(string(js))
			continue
		}
		fmt.Printf("stream %d (%s): %d events, %d threads — offline reference: %d violations, %d sites in %v",
			si.Stream, w.Name, rep.Events, rep.Threads,
			rep.OfflineViolations, rep.OfflineSites,
			time.Duration(rep.OfflineElapsedNs).Round(time.Microsecond))
		if rep.TraceDropped > 0 {
			fmt.Printf(" (%d statements dropped from the trace bound)", rep.TraceDropped)
		}
		fmt.Println()
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  CONFIG\tVIOLATIONS\tSITES\tSHARED\tONLINE-ONLY\tMISSED\tELAPSED\tEVENTS/SEC")
		for _, row := range rep.Rows {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%d\t%v\t%.0f\n",
				row.Config.Name, row.Violations, row.Sites,
				row.SharedSites, row.OnlineOnly, row.OfflineOnly,
				time.Duration(row.ElapsedNs).Round(time.Microsecond),
				row.EventsPerSec)
		}
		tw.Flush()
	}
	if only >= 0 && ran == 0 && ok {
		log.Error("no journaled stream matched -stream", "stream", only)
		return false
	}
	return ok
}
