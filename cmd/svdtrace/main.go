// Command svdtrace implements the paper's post-mortem debugging scenario
// (§1.1 "From symptoms to bugs"): capture a failing execution once as a
// self-contained trace file, then analyze it offline as many times as
// needed.
//
//	svdtrace -record -workload apache-buggy -seed 3 -o run.trc
//	svdtrace -analyze run.trc
//	svdtrace -dot run.trc -max-stmts 200 > dpdg.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/depgraph"
	"repro/internal/frd"
	"repro/internal/offline"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		record   = flag.Bool("record", false, "record a workload execution to -o")
		analyze  = flag.String("analyze", "", "trace file to analyze offline")
		dot      = flag.String("dot", "", "trace file to render as a Graphviz d-PDG")
		slice    = flag.String("slice", "", "trace file to slice backward from -stmt")
		stmt     = flag.Int("stmt", -1, "statement index for -slice (-1 = the last memory write)")
		workload = flag.String("workload", "apache-buggy", "workload for -record")
		seed     = flag.Uint64("seed", 0, "scheduler seed for -record")
		scale    = flag.Int("scale", 1, "workload size multiplier for -record")
		out      = flag.String("o", "trace.trc", "output file for -record")
		maxStmts = flag.Int("max-stmts", 300, "statement cap for -dot")
		show     = flag.Int("show", 8, "max items per report section")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("svdtrace"))
		return
	}

	var err error
	switch {
	case *record:
		err = doRecord(*workload, *seed, *scale, *out)
	case *analyze != "":
		err = doAnalyze(*analyze, *show)
	case *dot != "":
		err = doDot(*dot, *maxStmts)
	case *slice != "":
		err = doSlice(*slice, *stmt, *show)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "svdtrace:", err)
		os.Exit(1)
	}
}

func doRecord(name string, seed uint64, scale int, out string) error {
	w, err := workloads.ByName(name, scale, seed)
	if err != nil {
		return err
	}
	m, err := w.NewVM(seed)
	if err != nil {
		return err
	}
	rec, err := trace.NewRecorder(w.Prog, w.NumThreads, 1<<22)
	if err != nil {
		return err
	}
	m.Attach(rec)
	if _, err := m.Run(1 << 25); err != nil {
		fmt.Printf("execution faulted (recorded up to the fault): %v\n", err)
	}
	tr := rec.Trace()
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteTrace(f, tr); err != nil {
		return err
	}
	bad, detail := false, ""
	if w.Check != nil {
		bad, detail = w.Check(m)
	}
	fmt.Printf("recorded %d statements (%d dropped) of %s seed %d to %s\n",
		len(tr.Stmts), tr.Dropped, name, seed, out)
	fmt.Printf("outcome: erroneous=%v (%s)\n", bad, detail)
	return f.Close()
}

func doAnalyze(path string, show int) error {
	tr, err := loadTrace(path)
	if err != nil {
		return err
	}
	prog := tr.Prog
	fmt.Printf("trace: %s, %d statements, %d threads\n", prog.Name, len(tr.Stmts), tr.NumCPUs)

	res := offline.Run(tr, 0)
	fmt.Printf("offline pass 1: %d computational units\n", res.NumCUs())
	fmt.Printf("offline pass 3: %d strict-2PL violations at %d sites\n",
		len(res.Violations), len(res.Sites()))
	for i, site := range res.Sites() {
		if i >= show {
			fmt.Printf("  ... %d more sites\n", len(res.Sites())-show)
			break
		}
		fmt.Printf("  %s conflicts with open unit at %s\n",
			loc(prog, site[0]), loc(prog, site[1]))
	}
	fmt.Printf("conflict-serializable: %v\n", depgraph.ConflictSerializable(tr, res.CUOf))

	accs := tr.Accesses()
	frontier := frd.Frontier(accs)
	fmt.Printf("frontier races: %d; CAS-managed sync blocks: %v\n",
		len(frontier), frd.DiscoverSync(accs))
	for i, r := range frontier {
		if i >= show {
			fmt.Printf("  ... %d more frontier races\n", len(frontier)-show)
			break
		}
		fmt.Printf("  %s vs %s on %s\n", loc(prog, r.FirstPC), loc(prog, r.SecondPC), sym(prog, r.Block))
	}
	return nil
}

func doDot(path string, maxStmts int) error {
	tr, err := loadTrace(path)
	if err != nil {
		return err
	}
	if len(tr.Stmts) > maxStmts {
		tr.Stmts = tr.Stmts[:maxStmts]
		// Prune dangling dependence references past the cut.
		for i := range tr.Stmts {
			s := &tr.Stmts[i]
			if s.MemPred >= int32(maxStmts) {
				s.MemPred = -1
			}
			if s.CtrlPred >= int32(maxStmts) {
				s.CtrlPred = -1
			}
			kept := s.TruePreds[:0]
			for _, p := range s.TruePreds {
				if p < int32(maxStmts) {
					kept = append(kept, p)
				}
			}
			s.TruePreds = kept
		}
	}
	g := depgraph.Build(tr)
	cuOf := depgraph.OperationalCUs(tr)
	return g.WriteDot(os.Stdout, cuOf)
}

// doSlice prints the dynamic backward slice of a statement — the causal
// history a programmer walks once the detector has pointed at a suspicious
// access (Agrawal–Horgan slicing over the d-PDG).
func doSlice(path string, stmt, show int) error {
	tr, err := loadTrace(path)
	if err != nil {
		return err
	}
	if stmt < 0 {
		// Default: the last write to a shared word — the most recent
		// inter-thread communication, a natural symptom site.
		for i := len(tr.Stmts) - 1; i >= 0; i-- {
			if tr.Stmts[i].IsStore && tr.Shared(tr.Stmts[i].Addr) {
				stmt = i
				break
			}
		}
	}
	if stmt < 0 || stmt >= len(tr.Stmts) {
		return fmt.Errorf("statement index %d outside [0,%d)", stmt, len(tr.Stmts))
	}
	g := depgraph.Build(tr)
	s := &tr.Stmts[stmt]
	fmt.Printf("slicing backward from stmt %d: cpu %d %s at %s\n",
		stmt, s.CPU, s.Instr, loc(tr.Prog, s.PC))

	full := g.BackwardSlice(int32(stmt), depgraph.AllSliceKinds())
	local := g.BackwardSlice(int32(stmt), depgraph.SliceKinds{True: true, Control: true})
	fmt.Printf("slice: %d statements (%d thread-local; %d reached through other threads)\n",
		len(full), len(local), len(full)-len(local))

	// Show the most recent cross-thread statements: the interference.
	shown := 0
	localSet := map[int32]bool{}
	for _, idx := range local {
		localSet[idx] = true
	}
	for i := len(full) - 1; i >= 0 && shown < show; i-- {
		idx := full[i]
		if localSet[idx] {
			continue
		}
		st := &tr.Stmts[idx]
		fmt.Printf("  interference: stmt %d cpu %d %s at %s\n",
			idx, st.CPU, st.Instr, loc(tr.Prog, st.PC))
		shown++
	}
	return nil
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadTrace(f)
}

func loc(p interface{ LocationOf(int64) string }, pc int64) string {
	if l := p.LocationOf(pc); l != "" {
		return l
	}
	return fmt.Sprintf("pc %d", pc)
}

func sym(p interface{ SymbolFor(int64) string }, addr int64) string {
	if s := p.SymbolFor(addr); s != "" {
		return s
	}
	return fmt.Sprintf("word %d", addr)
}
