// Command svlc is the SVL compiler driver:
//
//	svlc prog.svl                  compile, report size
//	svlc -S prog.svl               disassemble to stdout
//	svlc -o prog.bin prog.svl      write the binary program image
//	svlc -run -seed 3 prog.svl     compile and execute
//	svlc -asm -o prog.bin prog.s   assemble instead of compile
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/buildinfo"
	"repro/internal/isa"
	"repro/internal/lang"
	"repro/internal/vm"
)

func main() {
	var (
		out      = flag.String("o", "", "write the binary program image here")
		disasm   = flag.Bool("S", false, "print the generated code")
		optimize = flag.Bool("O", false, "enable the optimizer (folding, dead branches, addressing modes)")
		useAsm   = flag.Bool("asm", false, "treat input as assembly, not SVL")
		run      = flag.Bool("run", false, "execute after compiling")
		seed     = flag.Uint64("seed", 0, "scheduler seed for -run")
		cpus     = flag.Int("cpus", 0, "CPU count for -run (default: thread declarations)")
		steps    = flag.Uint64("max-steps", 1<<24, "instruction budget for -run")
		dumpMem  = flag.String("dump", "", "after -run, print this data symbol's value")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("svlc"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: svlc [flags] <file.svl>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}

	var prog *isa.Program
	if *useAsm {
		prog, err = asm.Assemble(string(src), 0)
	} else {
		prog, err = lang.Compile(string(src), lang.Options{Name: path, Optimize: *optimize})
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d instructions, %d data words, %d threads\n",
		prog.Name, len(prog.Code), len(prog.Data), len(prog.Entries))

	if *disasm {
		printDisasm(prog)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := isa.WriteProgram(f, prog); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *run {
		n := *cpus
		if n <= 0 {
			n = len(prog.Entries)
		}
		m, err := vm.New(prog, vm.Config{
			NumCPUs: n, MemWords: 1 << 18, StackWords: 1 << 10,
			Seed: *seed, MaxQuantum: 8,
		})
		if err != nil {
			fail(err)
		}
		ran, err := m.Run(*steps)
		if err != nil {
			fmt.Printf("faulted after %d instructions: %v\n", ran, err)
			os.Exit(1)
		}
		fmt.Printf("executed %d instructions, done=%v\n", ran, m.Done())
		if *dumpMem != "" {
			addr, ok := prog.Symbols[*dumpMem]
			if !ok {
				fail(fmt.Errorf("no data symbol %q", *dumpMem))
			}
			fmt.Printf("%s = %d\n", *dumpMem, m.Mem(addr))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "svlc:", err)
	os.Exit(1)
}

func printDisasm(prog *isa.Program) {
	labelAt := map[int64][]string{}
	for name, pc := range prog.Labels {
		labelAt[pc] = append(labelAt[pc], name)
	}
	for pc := range labelAt {
		sort.Strings(labelAt[pc])
	}
	lastLoc := ""
	for pc, in := range prog.Code {
		for _, l := range labelAt[int64(pc)] {
			fmt.Printf("%s:\n", l)
		}
		loc := prog.LocationOf(int64(pc))
		note := ""
		if loc != "" && loc != lastLoc {
			note = "  ; " + loc
			lastLoc = loc
		}
		fmt.Printf("%5d  %-28s%s\n", pc, in.String(), note)
	}
	if len(prog.Symbols) > 0 {
		fmt.Println("data:")
		names := make([]string, 0, len(prog.Symbols))
		for name := range prog.Symbols {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		for _, name := range names {
			fmt.Printf("%5d  %s\n", prog.Symbols[name], name)
		}
	}
}
