// Package repro reproduces "A Serializability Violation Detector for
// Shared-Memory Server Programs" (Xu, Bodík & Hill, PLDI 2005).
//
// The repository implements the paper's detector (SVD) and everything it
// stands on: a deterministic multiprocessor virtual machine with replayable
// scheduling (the Simics stand-in), a small concurrent language and
// compiler that produce the binaries the detector observes, the
// happens-before Frontier Race Detector baseline, the offline three-pass
// reference algorithm with the formal d-PDG machinery, backward error
// recovery, and models of the paper's Apache/MySQL/PostgreSQL workloads
// with ground-truth bug annotations.
//
// Layout:
//
//	internal/isa        instruction set, binary program images
//	internal/asm        assembler
//	internal/lang       the SVL language and compiler
//	internal/vm         deterministic multiprocessor VM (snapshot/restore)
//	internal/cfg        control-flow graphs and postdominators
//	internal/trace      exact-dependence trace recording
//	internal/depgraph   d-PDG, computational units (Definitions 1-3),
//	                    serializability theory
//	internal/offline    the offline three-pass algorithm (Figures 5-6)
//	internal/svd        the online detector (Figures 7-8) — the paper's
//	                    primary contribution
//	internal/frd        the happens-before baseline + frontier races
//	internal/ber        backward error recovery (checkpoint/rollback)
//	internal/workloads  Apache/MySQL/PgSQL models + input generators
//	internal/report     evaluation: classification, Table 2, sweeps
//	cmd/svd, cmd/frd    run detectors on workloads or SVL programs
//	cmd/svlc            SVL compiler driver
//	cmd/svdbench        regenerate the paper's evaluation
//	examples/*          runnable scenario walk-throughs
//
// The benchmarks in bench_test.go regenerate every quantitative artifact
// of the paper's evaluation; EXPERIMENTS.md records paper-vs-measured.
package repro
