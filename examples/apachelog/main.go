// The Figure 2 scenario: Apache's log_config module buffers log records in
// shared memory, and version 2.0.48 omitted the lock around the append —
// silently corrupting the access log. This example
//
//  1. runs the buggy workload and shows the corruption,
//
//  2. shows SVD flagging the serializability violation at the exact
//     source lines of the bug, and
//
//  3. re-runs the same seed with backward error recovery: SVD triggers a
//     rollback and serialized re-execution, and the log comes out intact.
//
//     go run ./examples/apachelog
package main

import (
	"fmt"
	"log"

	"repro/internal/ber"
	"repro/internal/svd"
	"repro/internal/workloads"
)

func main() {
	w := workloads.ApacheLog(workloads.ApacheConfig{
		Threads:  4,
		Requests: 64,
		Buggy:    true,
		Seed:     7,
	})
	fmt.Println(w.Description)

	// Find a seed whose interleaving manifests the bug.
	var seed uint64
	for ; seed < 32; seed++ {
		m, err := w.NewVM(seed)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.Run(1 << 24); err != nil {
			log.Fatal(err)
		}
		if bad, detail := w.Check(m); bad {
			fmt.Printf("\nseed %d without any detector: %s\n", seed, detail)
			break
		}
	}
	if seed == 32 {
		log.Fatal("no seed manifested the bug")
	}

	// Same execution replayed with SVD attached (deterministic replay:
	// the detector does not perturb the run).
	m, err := w.NewVM(seed)
	if err != nil {
		log.Fatal(err)
	}
	det := svd.New(w.Prog, w.NumThreads, svd.Options{})
	m.Attach(det)
	if _, err := m.Run(1 << 24); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay with SVD: %d dynamic violations at %d sites\n",
		det.Stats().Violations, len(det.Sites()))
	for _, site := range det.Sites() {
		marker := ""
		if w.BugPCs[site.StorePC] {
			marker = "   <-- the missing-lock bug"
		}
		fmt.Printf("  %s: %d violations%s\n", w.Prog.LocationOf(site.StorePC), site.Count, marker)
	}

	// Same seed under backward error recovery.
	m, err = w.NewVM(seed)
	if err != nil {
		log.Fatal(err)
	}
	det = svd.New(w.Prog, w.NumThreads, svd.Options{})
	m.Attach(det)
	st, err := ber.Run(m, det, ber.Config{CheckpointInterval: 2048})
	if err != nil {
		log.Fatal(err)
	}
	bad, detail := w.Check(m)
	fmt.Printf("\nsame seed with SVD + BER: erroneous=%v (%s)\n", bad, detail)
	fmt.Printf("  %d rollbacks, %d checkpoints, %d wasted and %d serialized of %d total instructions\n",
		st.Rollbacks, st.Checkpoints, st.WastedInstructions, st.SerialInstructions, st.TotalInstructions)
	fmt.Println("  the error was avoided online, without knowing the bug in advance (§1.1)")
}
