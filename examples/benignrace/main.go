// The Figure 1 scenario: MySQL's table-locking code contains real data
// races on tot_lock — an unlocked reader probes a counter maintained under
// a mutex — but the races are benign: the invariant tot_lock >= 0 keeps
// the guarded branch dead, and every execution is serializable.
//
// A happens-before race detector (FRD) reports these races as bugs; the
// paper observes that deciding they are harmless "requires non-trivial
// time and effort, even by a programmer who is familiar with MySQL". SVD
// stays silent because serializability is never violated — the false
// positive a race detector cannot avoid.
//
//	go run ./examples/benignrace
package main

import (
	"fmt"
	"log"

	"repro/internal/frd"
	"repro/internal/svd"
	"repro/internal/workloads"
)

func main() {
	w := workloads.MySQLTables(workloads.MySQLTablesConfig{Lockers: 3, Ops: 200})
	fmt.Println(w.Description)

	var totalRaces, totalViolations uint64
	for seed := uint64(0); seed < 4; seed++ {
		m, err := w.NewVM(seed)
		if err != nil {
			log.Fatal(err)
		}
		sd := svd.New(w.Prog, w.NumThreads, svd.Options{})
		fd := frd.New(w.Prog, w.NumThreads, frd.Options{})
		m.Attach(sd)
		m.Attach(fd)
		if _, err := m.Run(1 << 24); err != nil {
			log.Fatal(err)
		}
		if bad, detail := w.Check(m); bad {
			log.Fatalf("the benign workload corrupted state: %s", detail)
		}
		fmt.Printf("\nseed %d: FRD %d dynamic races, SVD %d violations\n",
			seed, fd.Stats().Races, sd.Stats().Violations)
		if seed == 0 {
			for _, site := range fd.Sites() {
				fmt.Printf("  FRD: %s races with %s (%d dynamic instances)\n",
					w.Prog.LocationOf(site.PCLow), w.Prog.LocationOf(site.PCHigh), site.Count)
			}
		}
		totalRaces += fd.Stats().Races
		totalViolations += sd.Stats().Violations
	}

	fmt.Printf("\ntotals: FRD reported %d dynamic races; SVD reported %d violations\n",
		totalRaces, totalViolations)
	switch {
	case totalViolations == 0 && totalRaces > 0:
		fmt.Println("the Figure 1 contrast holds: the races are real but harmless, and only")
		fmt.Println("the serializability detector knows it — no annotations required.")
	case totalRaces == 0:
		fmt.Println("unexpected: FRD saw no races (increase Ops or seeds)")
	default:
		fmt.Println("unexpected: SVD reported on a serializable execution")
	}
}
