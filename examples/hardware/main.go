// The §4.4 hardware SVD sketch, explored: "multiprocessor caches can help
// store CUs; cache coherence protocols can help detect serializability
// violations". This example runs the buggy Apache workload under
//
//  1. the software detector (perfect snooping: every access reaches every
//     instance), and
//  2. the hardware-style detector, where an instance hears about remote
//     accesses only through MSI invalidations/downgrades of lines it
//     caches, and loses a block's detection state on eviction,
//
// across cache sizes — measuring what detection costs when it must live
// inside real caches.
//
//	go run ./examples/hardware
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/svd"
	"repro/internal/workloads"
)

func main() {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 64, Buggy: true, Seed: 3})
	fmt.Println(w.Description)
	fmt.Println()
	fmt.Printf("%-22s %12s %12s %12s %12s\n", "detector", "violations", "bug found", "misses", "evictions")

	run := func(name string, sets, ways int) {
		m, err := w.NewVM(1)
		if err != nil {
			log.Fatal(err)
		}
		var det *svd.Detector
		var caches *cache.Hierarchy
		if sets == 0 {
			det = svd.New(w.Prog, w.NumThreads, svd.Options{})
			m.Attach(det)
		} else {
			hw, err := svd.NewHardware(w.Prog, w.NumThreads, svd.Options{}, cache.Config{Sets: sets, Ways: ways})
			if err != nil {
				log.Fatal(err)
			}
			m.Attach(hw)
			det, caches = hw.Det, hw.Caches
		}
		if _, err := m.Run(1 << 25); err != nil {
			log.Fatal(err)
		}
		var misses, evictions uint64
		if caches != nil {
			st := caches.Stats()
			misses, evictions = st.Misses, st.Evictions
		}
		report(name, det, w, misses, evictions)
	}

	run("software (full snoop)", 0, 0)
	for _, sets := range []int{1024, 64, 8, 2} {
		run(fmt.Sprintf("hw %4d lines", sets*2), sets, 2)
	}

	fmt.Println()
	fmt.Println("reading: with ample cache the coherence traffic carries the full signal; as")
	fmt.Println("capacity shrinks, evictions discard block state and silent read-sharing hides")
	fmt.Println("transitions, trading detection for hardware feasibility — the §4.4 design space.")
}

func report(name string, det *svd.Detector, w *workloads.Workload, misses, evictions uint64) {
	found := false
	for _, s := range det.Sites() {
		if w.BugPCs[s.StorePC] || w.BugPCs[s.First.ConflictPC] {
			found = true
		}
	}
	fmt.Printf("%-22s %12d %12v %12d %12d\n",
		name, det.Stats().Violations, found, misses, evictions)
}
