// The Figure 3 scenario: MySQL 4.1.1's prepared-query bug. Variables that
// should be per-query (field->query_id, join_tab->used_fields) live in
// shared table structures, so concurrent queries overwrite each other's
// bookkeeping and the server crashes — a bug whose root cause was unknown
// until the paper's authors read SVD's a posteriori log.
//
// This example shows the paper's §2.3 workflow: the online detector's CUs
// are cut by the shared dependences (the region hypothesis fails here), so
// online detection is weak — but the (s, rw, lw) log triples point straight
// at the mistakenly shared variables.
//
//	go run ./examples/mysqlprepared
package main

import (
	"fmt"
	"log"

	"repro/internal/svd"
	"repro/internal/workloads"
)

func main() {
	w := workloads.MySQLPrepared(workloads.MySQLPreparedConfig{
		Threads: 4,
		Queries: 64,
		Buggy:   true,
		Seed:    3,
	})
	fmt.Println(w.Description)

	for seed := uint64(0); seed < 16; seed++ {
		m, err := w.NewVM(seed)
		if err != nil {
			log.Fatal(err)
		}
		det := svd.New(w.Prog, w.NumThreads, svd.Options{})
		m.Attach(det)
		if _, err := m.Run(1 << 24); err != nil {
			log.Fatal(err)
		}
		bad, detail := w.Check(m)
		if !bad {
			continue
		}
		fmt.Printf("\nseed %d: %s\n", seed, detail)
		fmt.Printf("online: %d dynamic violations, %d cuts by shared dependences (region hypothesis broken here)\n",
			det.Stats().Violations, det.Stats().SharedCutLoads+det.Stats().SharedCutRemote)

		fmt.Printf("\na posteriori examination log (%d distinct triples):\n", len(det.Log()))
		shown := 0
		for _, e := range det.Log() {
			hit := w.BugPCs[e.ReadPC] || w.BugPCs[e.RemoteWritePC] || w.BugPCs[e.LocalWritePC]
			if !hit && shown >= 3 {
				continue
			}
			marker := ""
			if hit {
				marker = "   <-- the mistakenly shared variable"
			}
			fmt.Printf("  cpu %d read %s of %s:\n    local write %s overwritten by cpu %d write %s%s\n",
				e.CPU, w.Prog.LocationOf(e.ReadPC), symbol(w, e.Block),
				w.Prog.LocationOf(e.LocalWritePC), e.RemoteWriteCPU,
				w.Prog.LocationOf(e.RemoteWritePC), marker)
			shown++
			if shown >= 8 {
				break
			}
		}
		fmt.Println("\nreading the log, the programmer sees that used_fields and field_query_id")
		fmt.Println("are written locally, overwritten remotely, and read back — i.e. they were")
		fmt.Println("meant to be thread-local. Declaring them per-thread fixes the crash (the")
		fmt.Println("mysql-prepared-fixed workload), exactly the fix the paper reports (§7.1).")
		return
	}
	log.Fatal("no seed manifested the bug")
}

func symbol(w *workloads.Workload, block int64) string {
	if s := w.Prog.SymbolFor(block); s != "" {
		return s
	}
	return fmt.Sprintf("word %d", block)
}
