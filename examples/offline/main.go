// The offline pipeline (§3-4.1): record an execution with exact
// dependences, build the dynamic program dependence graph, compute
// computational units two independent ways — the declarative partition of
// Definitions 1-3 and the one-pass algorithm of Figure 5 — check the
// region hypothesis, run the three-pass strict-2PL detector of Figure 6,
// and cross-validate against the precise conflict-serializability test and
// the online detector on the same execution.
//
//	go run ./examples/offline
package main

import (
	"fmt"
	"log"

	"repro/internal/depgraph"
	"repro/internal/frd"
	"repro/internal/lang"
	"repro/internal/offline"
	"repro/internal/svd"
	"repro/internal/trace"
	"repro/internal/vm"
)

const source = `
shared queue[16];
shared head;
shared count;
lock qlock;
shared popped[2];

func producer(n) {
    var i;
    i = 0;
    while (i < n) {
        lock(qlock);
        if (count < 16) {
            queue[(head + count) % 16] = tid * 1000 + i;
            count = count + 1;
        }
        unlock(qlock);
        i = i + 1;
    }
}

func consumer(n) {
    var i, v;
    i = 0;
    while (i < n) {
        v = -1;
        lock(qlock);
        if (count > 0) {
            v = queue[head];
            head = (head + 1) % 16;
            count = count - 1;
        }
        unlock(qlock);
        if (v >= 0) {
            popped[tid - 2] = popped[tid - 2] + 1;
        }
        i = i + 1;
    }
}

thread 0 producer(24);
thread 1 producer(24);
thread 2 consumer(30);
thread 3 consumer(30);
`

func main() {
	prog, err := lang.Compile(source, lang.Options{Name: "queue"})
	if err != nil {
		log.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{
		NumCPUs: 4, MemWords: 1 << 14, StackWords: 512, Seed: 5, MaxQuantum: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	rec, err := trace.NewRecorder(prog, 4, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	det := svd.New(prog, 4, svd.Options{})
	m.Attach(rec)
	m.Attach(det)
	if _, err := m.Run(1 << 22); err != nil {
		log.Fatal(err)
	}
	tr := rec.Trace()
	fmt.Printf("recorded %d dynamic statements across 4 threads\n", len(tr.Stmts))

	// The d-PDG (§3.1).
	g := depgraph.Build(tr)
	kinds := map[depgraph.ArcKind]int{}
	for _, a := range g.Arcs {
		kinds[a.Kind]++
	}
	fmt.Printf("d-PDG: %d arcs (%d true-local, %d true-shared, %d control, %d conflict)\n",
		len(g.Arcs), kinds[depgraph.TrueLocal], kinds[depgraph.TrueShared],
		kinds[depgraph.Control], kinds[depgraph.Conflict])

	// Computational units, two ways (Definitions 1-3 vs Figure 5).
	decl := g.CUs()
	oper := depgraph.OperationalCUs(tr)
	declN, operN := countCUs(decl), countCUs(oper)
	fmt.Printf("computational units: %d (declarative) vs %d (operational one-pass)\n", declN, operN)
	if bad := depgraph.RegionRuleViolations(g, oper); len(bad) != 0 {
		fmt.Printf("region hypothesis violated by CUs %v (unexpected!)\n", bad)
	} else {
		fmt.Println("region hypothesis holds: no CU has internal shared dependences; all weakly connected")
	}

	// The offline three-pass detector (Figure 6).
	res := offline.Run(tr, 0)
	fmt.Printf("offline strict-2PL violations: %d (%d static sites)\n",
		len(res.Violations), len(res.Sites()))
	fmt.Printf("conflict-serializable: %v\n", depgraph.ConflictSerializable(tr, res.CUOf))

	// Cross-checks against the online detector and the frontier pass.
	fmt.Printf("online SVD on the same execution: %d violations, %d a posteriori triples\n",
		det.Stats().Violations, len(det.Log()))
	accs := tr.Accesses()
	fmt.Printf("frontier pass: %d frontier races, discovered sync blocks %v (the lock word)\n",
		len(frd.Frontier(accs)), frd.DiscoverSync(accs))

	fmt.Println(`
Reading the results: the queue is correctly locked, yet neither detector is
silent — for instructive reasons the paper spells out.

  * The offline check is the CONSERVATIVE one (§3.3: "not violating strict
    2PL is sufficient yet not necessary"). A spinlock itself violates
    strict 2PL by construction — every contended CAS conflicts with the
    holder's open unit — so most offline reports and the serializability
    "cycle" sit on the lock word, which is also why the CU-as-transaction
    model judges lock handoffs non-serializable.
  * The online detector's heuristics (§4.3: check only input blocks, only
    at dependent stores) exist precisely to ignore that lock noise; its
    remaining reports are the §5.2 too-large-CU false positives on the
    post-region use of a value read under the lock.
  * The frontier pass finds the contended lock word and nothing else —
    the annotation FRD needs, discovered automatically.`)
}

func countCUs(cuOf []int) int {
	max := -1
	for _, id := range cuOf {
		if id > max {
			max = id
		}
	}
	return max + 1
}
