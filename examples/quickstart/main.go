// Quickstart: compile a small concurrent SVL program with a classic
// atomicity bug, run it on the deterministic multiprocessor VM with the
// Serializability Violation Detector attached, and print what SVD finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/lang"
	"repro/internal/svd"
	"repro/internal/vm"
)

// Two threads increment a shared counter without synchronization: the
// load-increment-store sequence is an atomic region the programmer forgot
// to implement, so interleavings that break it are not serializable.
const source = `
shared counter;
shared done[2];

func worker(n) {
    var i;
    i = 0;
    while (i < n) {
        counter = counter + 1;   // racy read-modify-write
        i = i + 1;
    }
    done[tid] = 1;
}

thread 0 worker(500);
thread 1 worker(500);
`

func main() {
	prog, err := lang.Compile(source, lang.Options{Name: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}

	m, err := vm.New(prog, vm.Config{
		NumCPUs:    2,
		MemWords:   1 << 14,
		StackWords: 512,
		Seed:       42, // same seed => same interleaving => same detections
		MaxQuantum: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	det := svd.New(prog, 2, svd.Options{})
	m.Attach(det)

	if _, err := m.Run(1 << 20); err != nil {
		log.Fatal(err)
	}

	final := m.Mem(prog.Symbols["counter"])
	fmt.Printf("counter = %d (1000 expected; %d updates lost to the race)\n",
		final, 1000-final)

	st := det.Stats()
	fmt.Printf("SVD observed %d instructions and inferred %d computational units\n",
		st.Instructions, st.CUsLive())
	fmt.Printf("serializability violations: %d dynamic at %d program points\n",
		st.Violations, len(det.Sites()))
	for _, site := range det.Sites() {
		fmt.Printf("  %s: %d violations (first: conflicting access by cpu %d at %s)\n",
			prog.LocationOf(site.StorePC), site.Count,
			site.First.ConflictCPU, prog.LocationOf(site.First.ConflictPC))
	}
	fmt.Println("note: SVD needed no annotations — it inferred the atomic region from dependences")
}
