// Cross-module integration tests: the online detector, the offline
// three-pass algorithm, the serializability theory, and the workloads all
// telling one consistent story about the same executions.
package repro

import (
	"testing"

	"repro/internal/depgraph"
	"repro/internal/frd"
	"repro/internal/offline"
	"repro/internal/svd"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// recordWorkload runs a workload with a trace recorder and online detector
// attached.
func recordWorkload(t *testing.T, w *workloads.Workload, seed uint64, serialize bool) (*trace.Trace, *svd.Detector, *vm.VM) {
	t.Helper()
	m, err := w.NewVM(seed)
	if err != nil {
		t.Fatal(err)
	}
	if serialize {
		m.SetMode(vm.Serialize)
	}
	rec, err := trace.NewRecorder(w.Prog, w.NumThreads, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	det := svd.New(w.Prog, w.NumThreads, svd.Options{})
	m.Attach(rec)
	m.Attach(det)
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("workload did not finish")
	}
	tr := rec.Trace()
	if tr.Dropped != 0 {
		t.Fatalf("trace truncated (%d dropped); raise the cap", tr.Dropped)
	}
	return tr, det, m
}

// TestSerializedApacheCleanEverywhere: a serialized execution of even the
// buggy Apache is correct, and every layer agrees — the workload check,
// the online detector, the offline detector, and the serializability test.
func TestSerializedApacheCleanEverywhere(t *testing.T) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 3, Requests: 12, Buggy: true, Seed: 2})
	tr, det, m := recordWorkload(t, w, 3, true)

	if bad, detail := w.Check(m); bad {
		t.Fatalf("serialized execution corrupted: %s", detail)
	}
	if n := det.Stats().Violations; n != 0 {
		t.Errorf("online SVD reported %d violations on a serialized execution", n)
	}
	res := offline.Run(tr, 0)
	if !res.Clean() {
		t.Errorf("offline detector reported %d violations on a serialized execution", len(res.Violations))
	}
	if !depgraph.ConflictSerializable(tr, res.CUOf) {
		t.Error("serialized execution judged non-serializable")
	}
}

// TestCorruptedApacheFlaggedEverywhere: an interleaving that corrupts the
// log is flagged by the online detector, the offline detector, and the
// serializability test.
func TestCorruptedApacheFlaggedEverywhere(t *testing.T) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 3, Requests: 12, Buggy: true, Seed: 2})
	for seed := uint64(0); seed < 12; seed++ {
		tr, det, m := recordWorkload(t, w, seed, false)
		bad, _ := w.Check(m)
		if !bad {
			continue
		}
		if n := det.Stats().Violations; n == 0 {
			t.Errorf("seed %d: corrupted run, online SVD silent", seed)
		}
		res := offline.Run(tr, 0)
		if res.Clean() {
			t.Errorf("seed %d: corrupted run, offline detector silent", seed)
		}
		if depgraph.ConflictSerializable(tr, res.CUOf) {
			t.Errorf("seed %d: corrupted run judged serializable", seed)
		}
		return
	}
	t.Skip("no seed corrupted the log at this size")
}

// TestOfflineConservativeOverOnline: on lock-free workloads (no spinlock
// noise) every execution the online detector flags, the conservative
// offline detector flags too.
func TestOfflineConservativeOverOnline(t *testing.T) {
	w := workloads.MySQLPrepared(workloads.MySQLPreparedConfig{Threads: 3, Queries: 16, Buggy: true, Seed: 4})
	flagged := 0
	for seed := uint64(0); seed < 6; seed++ {
		tr, det, _ := recordWorkload(t, w, seed, false)
		res := offline.Run(tr, 0)
		if det.Stats().Violations > 0 {
			flagged++
			if res.Clean() {
				t.Errorf("seed %d: online flagged, offline clean", seed)
			}
		}
	}
	if flagged == 0 {
		t.Skip("online never flagged at this size")
	}
}

// TestDetectorReplayDeterminism: the same seed yields bit-identical
// detector output — the property that makes the paper's post-mortem
// debugging scenario (§6.1) work.
func TestDetectorReplayDeterminism(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		run := func() (uint64, uint64, int, int) {
			m, err := w.NewVM(7)
			if err != nil {
				t.Fatal(err)
			}
			sd := svd.New(w.Prog, w.NumThreads, svd.Options{})
			fd := frd.New(w.Prog, w.NumThreads, frd.Options{})
			m.Attach(sd)
			m.Attach(fd)
			if _, err := m.Run(1 << 25); err != nil {
				t.Fatal(err)
			}
			return sd.Stats().Violations, fd.Stats().Races, len(sd.Log()), len(sd.Sites())
		}
		v1, r1, l1, s1 := run()
		v2, r2, l2, s2 := run()
		if v1 != v2 || r1 != r2 || l1 != l2 || s1 != s2 {
			t.Errorf("%s: replay diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
				name, v1, r1, l1, s1, v2, r2, l2, s2)
		}
	}
}

// TestAllWorkloadsComplete: every registered workload finishes within
// budget on several seeds with both detectors attached and, when bug-free,
// passes its own consistency check.
func TestAllWorkloadsComplete(t *testing.T) {
	for _, name := range workloads.Names() {
		for seed := uint64(0); seed < 2; seed++ {
			w, err := workloads.ByName(name, 1, seed)
			if err != nil {
				t.Fatal(err)
			}
			m, err := w.NewVM(seed)
			if err != nil {
				t.Fatal(err)
			}
			m.Attach(svd.New(w.Prog, w.NumThreads, svd.Options{}))
			m.Attach(frd.New(w.Prog, w.NumThreads, frd.Options{}))
			if _, err := m.Run(1 << 25); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !m.Done() {
				t.Fatalf("%s seed %d did not finish", name, seed)
			}
			if bad, detail := w.Check(m); bad && !w.Buggy {
				t.Errorf("%s seed %d: bug-free workload corrupted: %s", name, seed, detail)
			}
		}
	}
}
