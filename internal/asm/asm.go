// Package asm implements a two-pass assembler for the isa package.
//
// The source syntax is line-oriented:
//
//	; comment                     -- also "#" comments
//	.name  prog                   -- program name
//	.data  sym n                  -- reserve n zero words at the next data address
//	.data  sym = v0 v1 ...        -- initialized words
//	.entry cpu label              -- CPU entry point
//	label:                        -- code label
//	  li   t0, 42
//	  la   t1, sym                -- pseudo: address of data symbol
//	  load t2, 4(t1)              -- t2 = mem[t1+4]
//	  store t2, sym               -- pseudo: mem[&sym] = t2 (via gp)
//	  cas  t0, (t1), t2, t3
//	  call f                      -- pseudo: jal ra, f
//	  ret                         -- pseudo: jr ra
//	  push s0 / pop s0            -- pseudo: stack ops via sp
//
// Branch and jump targets are labels. Registers are named r0..r31 or by
// alias (zero, ra, sp, tid, a0..a3, t0..t9, s0..s9, gp).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// maxDataWords bounds the assembled data segment (a VM's memory is a few
// hundred thousand words; anything larger is a typo or hostile input).
const maxDataWords = 1 << 24

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type assembler struct {
	name     string
	code     []pending
	lineInfo []string
	labels   map[string]int64
	symbols  map[string]int64
	data     []int64
	dataBase int64
	entries  map[int]string
}

// pending is an instruction awaiting symbol resolution.
type pending struct {
	in    isa.Instr
	label string // branch/jump target to resolve into Imm
	sym   string // data symbol to resolve into Imm
	line  int
}

// Assemble translates source into a program. DataBase fixes where the data
// segment is loaded; pass 0 to place data at address 0.
func Assemble(source string, dataBase int64) (*isa.Program, error) {
	a := &assembler{
		name:     "a.out",
		labels:   make(map[string]int64),
		symbols:  make(map[string]int64),
		dataBase: dataBase,
		entries:  make(map[int]string),
	}
	if err := a.parse(source); err != nil {
		return nil, err
	}
	return a.link()
}

// MustAssemble is Assemble for tests and fixed workload sources; it panics
// on error.
func MustAssemble(source string, dataBase int64) *isa.Program {
	p, err := Assemble(source, dataBase)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) parse(source string) error {
	for i, raw := range strings.Split(source, "\n") {
		line := i + 1
		text := raw
		if j := strings.IndexAny(text, ";#"); j >= 0 {
			text = text[:j]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// A label may share a line with an instruction: "loop: addi ...".
		for {
			j := strings.Index(text, ":")
			if j < 0 || strings.ContainsAny(text[:j], " \t,(") {
				break
			}
			label := text[:j]
			if !validIdent(label) {
				return a.errf(line, "invalid label %q", label)
			}
			if _, dup := a.labels[label]; dup {
				return a.errf(line, "duplicate label %q", label)
			}
			a.labels[label] = int64(len(a.code))
			text = strings.TrimSpace(text[j+1:])
			if text == "" {
				break
			}
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			if err := a.directive(line, text); err != nil {
				return err
			}
			continue
		}
		if err := a.instruction(line, text); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) directive(line int, text string) error {
	fields := strings.Fields(text)
	switch fields[0] {
	case ".name":
		if len(fields) != 2 {
			return a.errf(line, ".name wants one argument")
		}
		a.name = fields[1]
	case ".entry":
		if len(fields) != 3 {
			return a.errf(line, ".entry wants: .entry <cpu> <label>")
		}
		cpu, err := strconv.Atoi(fields[1])
		if err != nil || cpu < 0 {
			return a.errf(line, "bad cpu %q", fields[1])
		}
		a.entries[cpu] = fields[2]
	case ".data":
		rest := strings.TrimSpace(strings.TrimPrefix(text, ".data"))
		name, spec, hasInit := strings.Cut(rest, "=")
		name = strings.TrimSpace(name)
		var sym string
		var count int
		if hasInit {
			sym = name
		} else {
			parts := strings.Fields(name)
			if len(parts) != 2 {
				return a.errf(line, ".data wants: .data <sym> <n> or .data <sym> = v...")
			}
			sym = parts[0]
			n, err := strconv.Atoi(parts[1])
			if err != nil || n <= 0 {
				return a.errf(line, "bad word count %q", parts[1])
			}
			if n > maxDataWords || len(a.data)+n > maxDataWords {
				return a.errf(line, "data segment exceeds %d words", maxDataWords)
			}
			count = n
		}
		if !validIdent(sym) {
			return a.errf(line, "invalid symbol %q", sym)
		}
		if _, dup := a.symbols[sym]; dup {
			return a.errf(line, "duplicate symbol %q", sym)
		}
		a.symbols[sym] = a.dataBase + int64(len(a.data))
		if hasInit {
			for _, tok := range strings.Fields(spec) {
				v, err := strconv.ParseInt(tok, 0, 64)
				if err != nil {
					return a.errf(line, "bad initializer %q", tok)
				}
				a.data = append(a.data, v)
			}
		} else {
			a.data = append(a.data, make([]int64, count)...)
		}
	default:
		return a.errf(line, "unknown directive %s", fields[0])
	}
	return nil
}

func (a *assembler) emit(line int, p pending) {
	p.line = line
	a.code = append(a.code, p)
}

func (a *assembler) instruction(line int, text string) error {
	mnem, rest, _ := strings.Cut(text, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	args := splitArgs(rest)

	reg := func(i int) (isa.Reg, error) {
		if i >= len(args) {
			return 0, a.errf(line, "%s: missing operand %d", mnem, i+1)
		}
		r, ok := regByName(args[i])
		if !ok {
			return 0, a.errf(line, "%s: bad register %q", mnem, args[i])
		}
		return r, nil
	}
	imm := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, a.errf(line, "%s: missing immediate operand %d", mnem, i+1)
		}
		v, err := strconv.ParseInt(args[i], 0, 64)
		if err != nil {
			return 0, a.errf(line, "%s: bad immediate %q", mnem, args[i])
		}
		return v, nil
	}
	// want verifies the argument count.
	want := func(n int) error {
		if len(args) != n {
			return a.errf(line, "%s: want %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}

	switch mnem {
	case "nop", "halt", "yield":
		if err := want(0); err != nil {
			return err
		}
		op := map[string]isa.Op{"nop": isa.OpNop, "halt": isa.OpHalt, "yield": isa.OpYield}[mnem]
		a.emit(line, pending{in: isa.Instr{Op: op}})

	case "li":
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.LI(rd, v)})

	case "la": // pseudo: rd = &sym
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.LI(rd, 0), sym: args[1]})

	case "mov":
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Mov(rd, rs)})

	case "add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr",
		"slt", "sle", "seq", "sne":
		if err := want(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		rs2, err := reg(2)
		if err != nil {
			return err
		}
		op := aluOps[mnem]
		a.emit(line, pending{in: isa.ALU(op, rd, rs1, rs2)})

	case "addi":
		if err := want(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Addi(rd, rs1, v)})

	case "load", "store":
		if err := want(2); err != nil {
			return err
		}
		r, err := reg(0)
		if err != nil {
			return err
		}
		base, disp, sym, err := a.parseAddr(line, mnem, args[1])
		if err != nil {
			return err
		}
		var in isa.Instr
		if mnem == "load" {
			in = isa.Load(r, base, disp)
		} else {
			in = isa.Store(r, base, disp)
		}
		a.emit(line, pending{in: in, sym: sym})

	case "cas":
		if err := want(4); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		addrArg := strings.TrimSuffix(strings.TrimPrefix(args[1], "("), ")")
		raddr, ok := regByName(addrArg)
		if !ok {
			return a.errf(line, "cas: bad address register %q", args[1])
		}
		rexp, err := reg(2)
		if err != nil {
			return err
		}
		rnew, err := reg(3)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Cas(rd, raddr, rexp, rnew)})

	case "beqz", "bnez":
		if err := want(2); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		op := isa.OpBeqz
		if mnem == "bnez" {
			op = isa.OpBnez
		}
		a.emit(line, pending{in: isa.Instr{Op: op, Rs1: rs}, label: args[1]})

	case "jmp", "b":
		if err := want(1); err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Jmp(0), label: args[0]})

	case "jal":
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Jal(rd, 0), label: args[1]})

	case "call": // pseudo: jal ra, label
		if err := want(1); err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Jal(isa.RegRA, 0), label: args[0]})

	case "jr":
		if err := want(1); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Jr(rs)})

	case "ret": // pseudo: jr ra
		if err := want(0); err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Jr(isa.RegRA)})

	case "push": // pseudo: sp -= 1; mem[sp] = rs
		if err := want(1); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Addi(isa.RegSP, isa.RegSP, -1)})
		a.emit(line, pending{in: isa.Store(rs, isa.RegSP, 0)})

	case "pop": // pseudo: rd = mem[sp]; sp += 1
		if err := want(1); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(line, pending{in: isa.Load(rd, isa.RegSP, 0)})
		a.emit(line, pending{in: isa.Addi(isa.RegSP, isa.RegSP, 1)})

	default:
		return a.errf(line, "unknown mnemonic %q", mnem)
	}
	return nil
}

// parseAddr parses "imm(reg)", "sym(reg)", "sym", or "imm" address syntax.
// A bare sym/imm uses the zero register as base. When sym is non-empty the
// displacement is resolved at link time.
func (a *assembler) parseAddr(line int, mnem, arg string) (base isa.Reg, disp int64, sym string, err error) {
	inner := ""
	if i := strings.Index(arg, "("); i >= 0 {
		if !strings.HasSuffix(arg, ")") {
			return 0, 0, "", a.errf(line, "%s: malformed address %q", mnem, arg)
		}
		inner = arg[i+1 : len(arg)-1]
		arg = arg[:i]
	}
	base = isa.RegZero
	if inner != "" {
		r, ok := regByName(inner)
		if !ok {
			return 0, 0, "", a.errf(line, "%s: bad base register %q", mnem, inner)
		}
		base = r
	}
	if arg == "" {
		return base, 0, "", nil
	}
	if v, err2 := strconv.ParseInt(arg, 0, 64); err2 == nil {
		return base, v, "", nil
	}
	if !validIdent(arg) {
		return 0, 0, "", a.errf(line, "%s: bad displacement %q", mnem, arg)
	}
	return base, 0, arg, nil
}

func (a *assembler) link() (*isa.Program, error) {
	p := &isa.Program{
		Name:     a.name,
		Code:     make([]isa.Instr, 0, len(a.code)),
		Data:     a.data,
		DataBase: a.dataBase,
		Symbols:  a.symbols,
		Labels:   a.labels,
	}
	for _, pd := range a.code {
		in := pd.in
		if pd.label != "" {
			pc, ok := a.labels[pd.label]
			if !ok {
				return nil, a.errf(pd.line, "undefined label %q", pd.label)
			}
			in.Imm = pc
		}
		if pd.sym != "" {
			addr, ok := a.symbols[pd.sym]
			if !ok {
				return nil, a.errf(pd.line, "undefined symbol %q", pd.sym)
			}
			in.Imm += addr
		}
		p.Code = append(p.Code, in)
		p.LineInfo = append(p.LineInfo, fmt.Sprintf("line %d", pd.line))
	}
	maxCPU := -1
	for cpu := range a.entries {
		if cpu > maxCPU {
			maxCPU = cpu
		}
	}
	if maxCPU >= 0 {
		p.Entries = make([]int64, maxCPU+1)
		for i := range p.Entries {
			p.Entries[i] = -1
		}
		for cpu, label := range a.entries {
			pc, ok := a.labels[label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined entry label %q", label)
			}
			p.Entries[cpu] = pc
		}
		// CPUs with no declared entry park on a synthesized halt.
		for i, e := range p.Entries {
			if e < 0 {
				p.Entries[i] = int64(len(p.Code))
			}
		}
		needHalt := false
		for _, e := range p.Entries {
			if e == int64(len(p.Code)) {
				needHalt = true
			}
		}
		if needHalt {
			p.Code = append(p.Code, isa.Halt())
			p.LineInfo = append(p.LineInfo, "synthesized halt")
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

var aluOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul, "div": isa.OpDiv,
	"mod": isa.OpMod, "and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"shl": isa.OpShl, "shr": isa.OpShr, "slt": isa.OpSlt, "sle": isa.OpSle,
	"seq": isa.OpSeq, "sne": isa.OpSne,
}

func splitArgs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var regAliases = map[string]isa.Reg{
	"zero": isa.RegZero, "ra": isa.RegRA, "sp": isa.RegSP, "tid": isa.RegTID,
	"gp": isa.RegGP,
	"a0": isa.RegA0, "a1": isa.RegA1, "a2": isa.RegA2, "a3": isa.RegA3,
}

func regByName(s string) (isa.Reg, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, true
	}
	if len(s) >= 2 {
		n, err := strconv.Atoi(s[1:])
		if err == nil {
			switch s[0] {
			case 'r':
				if n >= 0 && n < isa.NumRegs {
					return isa.Reg(n), true
				}
			case 't':
				if n >= 0 && n <= 9 {
					return isa.RegT0 + isa.Reg(n), true
				}
			case 's':
				if n >= 0 && n <= 9 {
					return isa.RegS0 + isa.Reg(n), true
				}
			}
		}
	}
	return 0, false
}
