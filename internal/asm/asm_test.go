package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

func runSource(t *testing.T, src string, cpus int) *vm.VM {
	t.Helper()
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(p, vm.Config{NumCPUs: cpus, MemWords: 4096, StackWords: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("program did not halt")
	}
	return m
}

func TestAssembleBasics(t *testing.T) {
	src := `
; sum 1..n into result
.name sum
.data n = 10
.data result 1

.entry 0 main
main:
	load t0, n        ; t0 = n
	li   t1, 0        ; sum
loop:
	add  t1, t1, t0
	addi t0, t0, -1
	bnez t0, loop
	store t1, result
	halt
`
	p, err := Assemble(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sum" {
		t.Errorf("name = %q", p.Name)
	}
	if p.Symbols["n"] != 100 || p.Symbols["result"] != 101 {
		t.Errorf("symbols = %v", p.Symbols)
	}
	m, err := vm.New(p, vm.Config{NumCPUs: 1, MemWords: 4096, StackWords: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem(101); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestLabelOnSameLine(t *testing.T) {
	src := `
.entry 0 main
main: li t0, 7
	store t0, 0(zero)
	halt
`
	m := runSource(t, src, 1)
	if got := m.Mem(0); got != 7 {
		t.Errorf("mem[0] = %d, want 7", got)
	}
}

func TestCallRetPushPop(t *testing.T) {
	src := `
.data out 1
.entry 0 main
main:
	li   a0, 6
	call fact
	store a0, out
	halt

; a0 = a0! (recursive, exercises the stack)
fact:
	li   t0, 2
	slt  t0, a0, t0    ; a0 < 2 ?
	beqz t0, recurse
	li   a0, 1
	ret
recurse:
	push ra
	push a0
	addi a0, a0, -1
	call fact
	pop  t1            ; original n
	pop  ra
	mul  a0, a0, t1
	ret
`
	p, err := Assemble(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(p, vm.Config{NumCPUs: 1, MemWords: 4096, StackWords: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem(p.Symbols["out"]); got != 720 {
		t.Errorf("6! = %d, want 720", got)
	}
}

func TestCasSpinlock(t *testing.T) {
	src := `
.data lock 1
.data counter 1
.entry 0 worker
.entry 1 worker
.entry 2 worker
.entry 3 worker

worker:
	li s0, 200        ; iterations
iter:
	; acquire
acquire:
	la  t0, lock
	li  t1, 0
	li  t2, 1
	cas t3, (t0), t1, t2
	bnez t3, locked
	yield
	jmp acquire
locked:
	load t4, counter
	addi t4, t4, 1
	store t4, counter
	; release
	li  t5, 0
	store t5, lock
	addi s0, s0, -1
	bnez s0, iter
	halt
`
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(p, vm.Config{NumCPUs: 4, MemWords: 1 << 14, StackWords: 128, Seed: 3, MaxQuantum: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("spinlock program did not finish")
	}
	if got := m.Mem(p.Symbols["counter"]); got != 800 {
		t.Errorf("locked counter = %d, want 800", got)
	}
}

func TestEntriesWithGaps(t *testing.T) {
	src := `
.entry 0 a
.entry 2 b
a:	li t0, 1
	store t0, 0(zero)
	halt
b:	li t0, 2
	store t0, 1(zero)
	halt
`
	m := runSource(t, src, 3)
	if m.Mem(0) != 1 || m.Mem(1) != 2 {
		t.Errorf("mem = %d,%d", m.Mem(0), m.Mem(1))
	}
}

func TestRegisterNames(t *testing.T) {
	names := map[string]isa.Reg{
		"zero": 0, "ra": 1, "sp": 2, "tid": 3, "gp": 28,
		"a0": 4, "a3": 7, "t0": 8, "t9": 17, "s0": 18, "s9": 27,
		"r0": 0, "r31": 31, "R5": 5, "T3": 11,
	}
	for name, want := range names {
		got, ok := regByName(name)
		if !ok || got != want {
			t.Errorf("regByName(%q) = %d,%v, want %d", name, got, ok, want)
		}
	}
	for _, bad := range []string{"", "x1", "r32", "t10", "s10", "r-1", "ra0"} {
		if _, ok := regByName(bad); ok {
			t.Errorf("regByName(%q) accepted", bad)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frob t0", "unknown mnemonic"},
		{"unknown directive", ".frob x", "unknown directive"},
		{"bad register", "li x9, 1", "bad register"},
		{"bad immediate", "li t0, abc", "bad immediate"},
		{"undefined label", "jmp nowhere", "undefined label"},
		{"undefined symbol", "load t0, nosym", "undefined symbol"},
		{"duplicate label", "a:\na:\n halt", "duplicate label"},
		{"duplicate symbol", ".data x 1\n.data x 1", "duplicate symbol"},
		{"bad entry", ".entry 0 nowhere\nhalt", "undefined entry label"},
		{"operand count", "add t0, t1", "want 3 operands"},
		{"bad data count", ".data x 0", "bad word count"},
		{"bad init", ".data x = 1 q", "bad initializer"},
		{"malformed addr", "load t0, 3(t1", "malformed address"},
		{"bad entry cpu", ".entry x main\nmain: halt", "bad cpu"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, 0)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
# hash comment
; semicolon comment

.entry 0 main
main:
	li t0, 5   ; trailing
	store t0, 0(zero)  # trailing hash
	halt
`
	m := runSource(t, src, 1)
	if got := m.Mem(0); got != 5 {
		t.Errorf("mem[0] = %d", got)
	}
}

func TestNegativeAndHexImmediates(t *testing.T) {
	src := `
.entry 0 main
main:
	li t0, -5
	li t1, 0x10
	add t0, t0, t1
	store t0, 0(zero)
	halt
`
	m := runSource(t, src, 1)
	if got := m.Mem(0); got != 11 {
		t.Errorf("mem[0] = %d, want 11", got)
	}
}

func TestLineInfoRecorded(t *testing.T) {
	p, err := Assemble(".entry 0 m\nm:\n li t0, 1\n halt\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.LineInfo) != len(p.Code) {
		t.Fatalf("lineinfo len %d != code len %d", len(p.LineInfo), len(p.Code))
	}
	if p.LineInfo[0] != "line 3" {
		t.Errorf("LineInfo[0] = %q, want line 3", p.LineInfo[0])
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("frob", 0)
}
