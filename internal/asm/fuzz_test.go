package asm

import "testing"

// FuzzAssemble checks the assembler never panics and that accepted
// programs validate.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"halt",
		".entry 0 main\nmain: li t0, 1\n halt",
		".data x = 1 2 3\n.entry 0 m\nm: load t0, x\n store t0, x(t1)\n halt",
		"label: jmp label",
		"push t0\npop t1\ncall f\nret\nf: ret",
		".data x 99999999999999999999",
		"cas t0, (t1), t2, t3",
		"li t0, 0xZZ",
		"a: a:",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src, 0)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted program failed validation: %v\nsource: %q", verr, src)
		}
	})
}
