// Package ber implements backward error recovery around the online
// detector — the paper's scenario (I) (§1.1): "when an erroneous execution
// is detected, the execution rolls back to a safe checkpoint and reexecutes
// (more) serially".
//
// The runner keeps a small ring of checkpoints (SafetyNet-style), each a
// machine snapshot paired with a clone of the detector state — the paper's
// hardware BER would keep the detector's block FSMs and CU references in
// the checkpointed caches, so rollback restores detector and machine
// together. When SVD reports a serializability violation (or the machine
// faults, the crash analogue), execution rolls back to the newest
// checkpoint and re-executes a window with serialized scheduling, retrying
// older checkpoints and different thread orders when the first choice
// still fails; afterwards normal interleaved execution resumes.
//
// Because every dynamic false positive costs one unnecessary rollback, the
// paper's insistence on a detector with few dynamic false positives is
// directly measurable here (Rollbacks, WastedInstructions).
package ber

import (
	"fmt"

	"repro/internal/svd"
	"repro/internal/vm"
)

// Config parameterizes the recovery loop.
type Config struct {
	// CheckpointInterval is the number of instructions between
	// checkpoints. Zero means 4096.
	CheckpointInterval uint64

	// CheckpointDepth is how many checkpoints the ring retains. Zero
	// means 3.
	CheckpointDepth int

	// SerialWindow is the number of instructions re-executed with
	// serialized scheduling after a rollback. Zero means
	// 2*CheckpointInterval.
	SerialWindow uint64

	// MaxSteps bounds the total instructions executed (including
	// re-execution). Zero means 1<<24.
	MaxSteps uint64

	// MaxRollbacks aborts recovery when exceeded (livelock guard). Zero
	// means 1<<20.
	MaxRollbacks int
}

func (c Config) withDefaults() Config {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 4096
	}
	if c.CheckpointDepth <= 0 {
		c.CheckpointDepth = 3
	}
	if c.SerialWindow == 0 {
		c.SerialWindow = 2 * c.CheckpointInterval
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 1 << 24
	}
	if c.MaxRollbacks == 0 {
		c.MaxRollbacks = 1 << 20
	}
	return c
}

// Stats reports what recovery cost.
type Stats struct {
	Checkpoints        int
	Rollbacks          int    // recovery events (a retry ladder counts once)
	RetriedOrders      int    // serialized re-executions beyond the first
	Violations         uint64 // detector reports and faults that triggered recovery
	TotalInstructions  uint64 // everything executed, including redone work
	WastedInstructions uint64 // instructions discarded by rollbacks
	SerialInstructions uint64 // instructions executed in serialized mode
	Completed          bool   // the program ran to completion
}

// checkpoint pairs a machine snapshot with the detector state captured at
// the same instant.
type checkpoint struct {
	mach *vm.Snapshot
	det  *svd.Detector
	seq  uint64
}

// Run executes the machine under SVD with checkpoint/rollback recovery.
// The detector must already be attached to the machine.
func Run(m *vm.VM, det *svd.Detector, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	var st Stats

	ring := make([]checkpoint, 0, cfg.CheckpointDepth)
	push := func() {
		cp := checkpoint{mach: m.Snapshot(), det: det.Clone(), seq: m.Seq()}
		if len(ring) == cfg.CheckpointDepth {
			copy(ring, ring[1:])
			ring[len(ring)-1] = cp
		} else {
			ring = append(ring, cp)
		}
		st.Checkpoints++
	}
	push()

	for st.TotalInstructions < cfg.MaxSteps && !m.Done() {
		before := det.Stats().Violations
		ran, err := m.Run(cfg.CheckpointInterval)
		st.TotalInstructions += ran
		violated := err != nil || det.Stats().Violations > before
		if !violated {
			push()
			continue
		}
		if err != nil {
			st.Violations++
		} else {
			st.Violations += det.Stats().Violations - before
		}
		st.Rollbacks++
		if st.Rollbacks > cfg.MaxRollbacks {
			return st, fmt.Errorf("ber: rollback budget exceeded (%d)", cfg.MaxRollbacks)
		}

		// Recovery. A serialized re-execution attempt is "clean" when it
		// runs without faults and without detector reports, and
		// "faultless" when it merely avoids crashing (conflict flags
		// recorded before the checkpoint can make every order report, so
		// reports alone must not block progress).
		//
		// Detector violations recover at the newest checkpoint only: a
		// clean order if one exists, else the first faultless one. Faults
		// (crashes) descend the checkpoint ladder — the poison may predate
		// the newest checkpoint — requiring a faultless window.
		type rung struct{ level, attempt int }
		var fallback *rung
		recovered := false
		usedLevel := len(ring) - 1
		first := true

		tryRung := func(level, attempt int) (clean, faultless bool) {
			cp := ring[level]
			st.WastedInstructions += m.Seq() - cp.seq
			m.Restore(cp.mach)
			det.CopyFrom(cp.det)
			if !first {
				st.RetriedOrders++
			}
			first = false
			vbefore := det.Stats().Violations
			m.SetMode(vm.Serialize)
			m.SkewSerialOrder(attempt)
			sran, serr := m.RunToScheduleBoundary(cfg.SerialWindow, 8*cfg.SerialWindow)
			st.TotalInstructions += sran
			st.SerialInstructions += sran
			m.SetMode(vm.Interleave)
			if serr != nil {
				return false, false
			}
			return det.Stats().Violations == vbefore, true
		}

		lowest := len(ring) - 1 // violation recovery: newest level only
		if err != nil {
			lowest = 0 // fault recovery: descend the whole ladder
		}
	ladder:
		for level := len(ring) - 1; level >= lowest; level-- {
			for attempt := 0; attempt < m.NumCPUs(); attempt++ {
				clean, faultless := tryRung(level, attempt)
				if clean {
					recovered = true
					usedLevel = level
					break ladder
				}
				if faultless && fallback == nil {
					fallback = &rung{level, attempt}
				}
			}
		}
		if !recovered && fallback != nil {
			if _, faultless := tryRung(fallback.level, fallback.attempt); faultless {
				recovered = true
				usedLevel = fallback.level
			}
		}
		if !recovered {
			return st, fmt.Errorf("ber: error persists across all checkpoints and serialized orders")
		}
		// Checkpoints newer than the restored level belong to the
		// abandoned timeline; older ones remain valid ancestors — keeping
		// them is what lets the next recovery escape a checkpoint taken at
		// a poisoned window seam (a thread parked mid-region).
		ring = ring[:usedLevel+1]
		push()
	}
	st.Completed = m.Done()
	return st, nil
}
