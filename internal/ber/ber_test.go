package ber

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/lang"
	"repro/internal/svd"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestBERAvoidsApacheCorruption is the paper's headline scenario: the buggy
// Apache log writer corrupts its log under free interleaving, but with SVD
// triggering rollback + serialized re-execution the corruption is avoided.
func TestBERAvoidsApacheCorruption(t *testing.T) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 48, Buggy: true, Seed: 1})

	// First establish that the bug manifests without BER for some seed.
	manifested := false
	var badSeed uint64
	for seed := uint64(0); seed < 8; seed++ {
		m, err := w.NewVM(seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(1 << 24); err != nil {
			t.Fatal(err)
		}
		if bad, _ := w.Check(m); bad {
			manifested, badSeed = true, seed
			break
		}
	}
	if !manifested {
		t.Fatal("bug never manifested without BER")
	}

	// Now run the same seeds with BER.
	avoidedBad := false
	for seed := uint64(0); seed < 8; seed++ {
		m, err := w.NewVM(seed)
		if err != nil {
			t.Fatal(err)
		}
		det := svd.New(w.Prog, w.NumThreads, svd.Options{})
		m.Attach(det)
		st, err := Run(m, det, Config{CheckpointInterval: 2048})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !st.Completed {
			t.Fatalf("seed %d: did not complete (total %d instrs)", seed, st.TotalInstructions)
		}
		if bad, detail := w.Check(m); bad {
			t.Errorf("seed %d: corrupted despite BER (%d rollbacks): %s", seed, st.Rollbacks, detail)
		} else if seed == badSeed {
			avoidedBad = true
			t.Logf("seed %d: corruption avoided with %d rollbacks, %d wasted + %d serial instrs",
				seed, st.Rollbacks, st.WastedInstructions, st.SerialInstructions)
		}
		if seed == badSeed && st.Rollbacks == 0 {
			t.Errorf("seed %d: corrupting seed completed with zero rollbacks", seed)
		}
	}
	if !avoidedBad {
		t.Error("the corrupting seed was not exercised under BER")
	}
}

// TestBERCleanWorkloadNoRollbacks: a correct workload with no detector
// reports must run through BER untouched.
func TestBERCleanWorkloadNoRollbacks(t *testing.T) {
	w := workloads.MySQLTables(workloads.MySQLTablesConfig{Lockers: 3, Ops: 50})
	m, err := w.NewVM(4)
	if err != nil {
		t.Fatal(err)
	}
	det := svd.New(w.Prog, w.NumThreads, svd.Options{})
	m.Attach(det)
	st, err := Run(m, det, Config{CheckpointInterval: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Completed {
		t.Fatal("did not complete")
	}
	if st.Rollbacks != 0 {
		t.Errorf("benign workload caused %d rollbacks", st.Rollbacks)
	}
	if st.WastedInstructions != 0 {
		t.Errorf("wasted %d instructions with no rollbacks", st.WastedInstructions)
	}
	if bad, detail := w.Check(m); bad {
		t.Errorf("corrupted: %s", detail)
	}
}

// TestBERFaultRecovery: a workload that faults (the MySQL crash analogue)
// is also rolled back and serialized past the fault.
func TestBERFaultRecovery(t *testing.T) {
	// A program where racy index arithmetic faults: thread 0 divides by a
	// shared word that thread 1 briefly zeroes. The two stores are
	// adjacent (no yield between them), so a quantum boundary must split
	// them for the reader to observe zero — a timing-dependent crash that
	// serialized re-execution avoids, since serialization switches threads
	// only at yields.
	src := `
shared idx = 4;
shared arr[8];
shared out;
func reader(n) {
    var i, v;
    i = 0;
    while (i < n) {
        v = 1000 / idx;       // faults when idx is momentarily 0
        out = out + arr[v % 8];
        i = i + 1;
        yield();
    }
}
func zeroer(n) {
    var i;
    i = 0;
    while (i < n) {
        idx = 0;
        idx = 4;
        i = i + 1;
        yield();
    }
}
thread 0 reader(120);
thread 1 zeroer(120);
`
	prog := mustCompile(t, src)
	faulted := false
	var faultSeed uint64
	for seed := uint64(0); seed < 30; seed++ {
		m, err := vm.New(prog, vm.Config{NumCPUs: 2, MemWords: 1 << 14, StackWords: 512, Seed: seed, MaxQuantum: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(1 << 20); err != nil {
			faulted, faultSeed = true, seed
			break
		}
	}
	if !faulted {
		t.Skip("no seed faulted")
	}
	m, err := vm.New(prog, vm.Config{NumCPUs: 2, MemWords: 1 << 14, StackWords: 512, Seed: faultSeed, MaxQuantum: 4})
	if err != nil {
		t.Fatal(err)
	}
	det := svd.New(prog, 2, svd.Options{})
	m.Attach(det)
	st, err := Run(m, det, Config{CheckpointInterval: 256})
	if err != nil {
		t.Fatalf("BER did not recover the fault: %v", err)
	}
	if !st.Completed {
		t.Fatal("did not complete after fault recovery")
	}
	if st.Rollbacks == 0 {
		t.Error("fault recovered without any rollback?")
	}
}

// TestBERRollbackBudget: the livelock guard trips when serialized
// re-execution cannot help (here: an absurdly small budget).
func TestBERRollbackBudget(t *testing.T) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 64, Buggy: true, Seed: 2})
	m, err := w.NewVM(1)
	if err != nil {
		t.Fatal(err)
	}
	det := svd.New(w.Prog, w.NumThreads, svd.Options{})
	m.Attach(det)
	st, err := Run(m, det, Config{CheckpointInterval: 4096, SerialWindow: 1, MaxRollbacks: 1})
	if err == nil && st.Rollbacks <= 1 {
		t.Skip("no second violation occurred; budget not exercised")
	}
	if err == nil {
		t.Errorf("rollback budget exceeded without error (rollbacks=%d)", st.Rollbacks)
	}
}

func mustCompile(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := lang.Compile(src, lang.Options{Name: "bertest"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}
