// Package blockstore provides the flat per-block metadata store backing
// the detectors' hot paths.
//
// Both online detectors (svd, frd) consult per-block metadata on every
// memory access. The paper's practicality argument (§7.3) hinges on that
// per-access cost being a small constant: SVD's space overhead is "a CU
// pointer for each memory block", which in hardware is an indexed lookup,
// not a hash probe. The VM's address space is word-addressed and dense
// (workloads size memory at 2^16-2^18 words), so the natural software
// analogue is a two-level page table of dense pages: the per-access lookup
// is two array indexes and a mask instead of a map probe, and pages are
// materialized only for the address ranges a thread actually touches.
//
// For pathological sparse address spaces (or very large BlockShift
// configurations) a map-backed mode is available via Options.Sparse; block
// numbers outside the dense range (negative, or beyond MaxPages pages)
// transparently overflow into the same map.
package blockstore

// DefaultPageShift sizes pages at 1<<9 = 512 entries: small enough that a
// thread touching one hot region does not commit megabytes, large enough
// that the page table stays short for the VM's 2^16-2^18-word memories.
const DefaultPageShift = 9

// defaultMaxPages caps the dense page table at 2^15 pages (2^24 blocks at
// the default page size); blocks beyond it fall into the overflow map.
const defaultMaxPages = 1 << 15

// Options configure a Store.
type Options struct {
	// PageShift selects pages of 1<<PageShift entries; zero means
	// DefaultPageShift.
	PageShift uint

	// MaxPages bounds the dense page table; zero means a 2^15-page cap.
	// Blocks at or beyond MaxPages<<PageShift go to the overflow map.
	MaxPages int

	// Sparse forces map-backed storage for every block — the escape hatch
	// for address spaces too sparse for paging to pay off.
	Sparse bool
}

// Store is a paged flat store of per-block metadata of type T, indexed by
// block number. The zero value of T must represent "no metadata recorded";
// dense slots are materialized a page at a time, already zeroed.
type Store[T any] struct {
	pageShift uint
	mask      int64
	maxPages  int
	sparse    bool
	pages     [][]T
	overflow  map[int64]*T
}

// New builds an empty store.
func New[T any](opts Options) *Store[T] {
	if opts.PageShift == 0 {
		opts.PageShift = DefaultPageShift
	}
	if opts.MaxPages <= 0 {
		opts.MaxPages = defaultMaxPages
	}
	return &Store[T]{
		pageShift: opts.PageShift,
		mask:      (int64(1) << opts.PageShift) - 1,
		maxPages:  opts.MaxPages,
		sparse:    opts.Sparse,
	}
}

// Lookup returns the slot for block b, or nil if no page (or map entry)
// has been materialized for it. A non-nil result may still be a zero T:
// pages materialize 1<<PageShift neighbors at once, and it is the caller's
// convention (e.g. a touched flag in T) that distinguishes a recorded
// block from a zeroed neighbor.
func (s *Store[T]) Lookup(b int64) *T {
	if !s.sparse && b >= 0 {
		pi := b >> s.pageShift
		if pi < int64(len(s.pages)) {
			if p := s.pages[pi]; p != nil {
				return &p[b&s.mask]
			}
			return nil
		}
		if pi < int64(s.maxPages) {
			return nil
		}
	}
	return s.overflow[b]
}

// Ensure returns the slot for block b, materializing its page (or map
// entry) if needed. The materialized-page case is kept small enough to
// inline into the detectors' per-access paths.
func (s *Store[T]) Ensure(b int64) *T {
	if !s.sparse && b >= 0 {
		pi := b >> s.pageShift
		if pi < int64(len(s.pages)) {
			if p := s.pages[pi]; p != nil {
				return &p[b&s.mask]
			}
		}
	}
	return s.ensureSlow(b)
}

func (s *Store[T]) ensureSlow(b int64) *T {
	if !s.sparse && b >= 0 {
		pi := b >> s.pageShift
		if pi < int64(s.maxPages) {
			if pi >= int64(len(s.pages)) {
				grown := make([][]T, pi+1)
				copy(grown, s.pages)
				s.pages = grown
			}
			if s.pages[pi] == nil {
				s.pages[pi] = make([]T, 1<<s.pageShift)
			}
			return &s.pages[pi][b&s.mask]
		}
	}
	if s.overflow == nil {
		s.overflow = make(map[int64]*T)
	}
	v := s.overflow[b]
	if v == nil {
		v = new(T)
		s.overflow[b] = v
	}
	return v
}

// Delete clears block b's slot back to the zero T (dense) or removes its
// entry (overflow). Pages are not reclaimed.
func (s *Store[T]) Delete(b int64) {
	if !s.sparse && b >= 0 {
		pi := b >> s.pageShift
		if pi < int64(len(s.pages)) {
			if p := s.pages[pi]; p != nil {
				var zero T
				p[b&s.mask] = zero
			}
			return
		}
		if pi < int64(s.maxPages) {
			return
		}
	}
	delete(s.overflow, b)
}

// Range calls f for every materialized slot until f returns false. Dense
// pages are visited in block order and include zero-valued neighbors of
// recorded blocks; overflow entries follow in unspecified order.
func (s *Store[T]) Range(f func(b int64, v *T) bool) {
	for pi, p := range s.pages {
		if p == nil {
			continue
		}
		base := int64(pi) << s.pageShift
		for i := range p {
			if !f(base+int64(i), &p[i]) {
				return
			}
		}
	}
	for b, v := range s.overflow {
		if !f(b, v) {
			return
		}
	}
}

// Reset drops all pages and overflow entries.
func (s *Store[T]) Reset() {
	s.pages = nil
	s.overflow = nil
}

// Slots reports the number of materialized slots (dense page entries plus
// overflow entries) — the store's space commitment in units of T.
func (s *Store[T]) Slots() int {
	slots, _, overflow := s.PageStats()
	return slots + overflow
}

// PageStats breaks the store's space commitment down for occupancy
// telemetry: slots is the dense entries committed, pages the materialized
// dense pages they span, and overflow the map-backed entries.
func (s *Store[T]) PageStats() (slots, pages, overflow int) {
	for _, p := range s.pages {
		if p != nil {
			pages++
			slots += len(p)
		}
	}
	return slots, pages, len(s.overflow)
}
