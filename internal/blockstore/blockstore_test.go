package blockstore

import (
	"testing"
)

type meta struct {
	touched bool
	n       int
}

func TestEnsureLookupRoundTrip(t *testing.T) {
	s := New[meta](Options{})
	if got := s.Lookup(5); got != nil {
		t.Fatalf("Lookup on empty store = %v, want nil", got)
	}
	m := s.Ensure(5)
	m.touched = true
	m.n = 42
	got := s.Lookup(5)
	if got == nil || got.n != 42 || !got.touched {
		t.Fatalf("Lookup after Ensure = %+v", got)
	}
	if got != s.Ensure(5) {
		t.Fatal("Ensure is not idempotent")
	}
	// A neighbor on the same page is materialized but zero.
	if nb := s.Lookup(6); nb == nil || nb.touched || nb.n != 0 {
		t.Fatalf("neighbor slot = %+v, want zero", nb)
	}
	// A block on an unmaterialized page is absent.
	if far := s.Lookup(1 << 20); far != nil {
		t.Fatalf("far Lookup = %v, want nil", far)
	}
}

func TestNegativeAndHugeBlocksOverflow(t *testing.T) {
	s := New[meta](Options{})
	for _, b := range []int64{-1, -1 << 40, 1 << 40} {
		if s.Lookup(b) != nil {
			t.Fatalf("block %d present before Ensure", b)
		}
		m := s.Ensure(b)
		m.n = int(b % 97)
		if got := s.Lookup(b); got == nil || got.n != int(b%97) {
			t.Fatalf("block %d round trip failed: %+v", b, got)
		}
		s.Delete(b)
		if s.Lookup(b) != nil {
			t.Fatalf("block %d survived Delete", b)
		}
	}
}

func TestSparseMode(t *testing.T) {
	s := New[meta](Options{Sparse: true})
	s.Ensure(5).n = 7
	if got := s.Lookup(5); got == nil || got.n != 7 {
		t.Fatalf("sparse round trip = %+v", got)
	}
	// Sparse mode materializes exactly the ensured blocks.
	if nb := s.Lookup(6); nb != nil {
		t.Fatalf("sparse neighbor = %v, want nil", nb)
	}
	if got := s.Slots(); got != 1 {
		t.Fatalf("sparse Slots = %d, want 1", got)
	}
}

func TestDeleteZeroesDenseSlot(t *testing.T) {
	s := New[meta](Options{})
	s.Ensure(100).n = 3
	s.Delete(100)
	if got := s.Lookup(100); got == nil || got.n != 0 {
		t.Fatalf("dense slot after Delete = %+v, want zero", got)
	}
	// Deleting never-materialized blocks is a no-op.
	s.Delete(1 << 22)
	s.Delete(-5)
}

func TestRangeVisitsAllMaterialized(t *testing.T) {
	s := New[meta](Options{PageShift: 4})
	want := map[int64]int{3: 1, 200: 2, -9: 3, 1 << 40: 4}
	for b, n := range want {
		s.Ensure(b).n = n
	}
	got := map[int64]int{}
	s.Range(func(b int64, v *meta) bool {
		if v.n != 0 {
			got[b] = v.n
		}
		return true
	})
	for b, n := range want {
		if got[b] != n {
			t.Errorf("Range missed block %d (want %d, got %d)", b, n, got[b])
		}
	}
	// Early termination.
	visits := 0
	s.Range(func(int64, *meta) bool { visits++; return false })
	if visits != 1 {
		t.Errorf("Range after false = %d visits, want 1", visits)
	}
}

func TestResetAndSlots(t *testing.T) {
	s := New[meta](Options{PageShift: 4})
	s.Ensure(0)
	s.Ensure(1000)
	s.Ensure(-1)
	if got := s.Slots(); got != 2*16+1 {
		t.Fatalf("Slots = %d, want %d", got, 2*16+1)
	}
	if slots, pages, overflow := s.PageStats(); slots != 2*16 || pages != 2 || overflow != 1 {
		t.Fatalf("PageStats = (%d, %d, %d), want (32, 2, 1)", slots, pages, overflow)
	}
	s.Reset()
	if got := s.Slots(); got != 0 {
		t.Fatalf("Slots after Reset = %d, want 0", got)
	}
	if s.Lookup(0) != nil || s.Lookup(-1) != nil {
		t.Fatal("blocks survived Reset")
	}
}

func TestMaxPagesOverflow(t *testing.T) {
	s := New[meta](Options{PageShift: 4, MaxPages: 2})
	s.Ensure(1).n = 1  // page 0
	s.Ensure(40).n = 2 // beyond 2 pages of 16 -> overflow
	if got := s.Lookup(40); got == nil || got.n != 2 {
		t.Fatalf("overflow block = %+v", got)
	}
	if got := s.Slots(); got != 16+1 {
		t.Fatalf("Slots = %d, want 17", got)
	}
}
