package blockstore

import "math/bits"

// This file provides the global block interest index. Both detectors pay
// their remote-propagation cost per memory instruction: the software SVD
// fans every access out to every other thread instance, and FRD's write
// check scans every thread's read epoch. Server workloads are dominated by
// thread-private blocks (stacks, per-request scratch), so almost all of
// that fan-out lands on threads that hold no state for the block and
// return immediately — O(NumCPUs) work per instruction to discover "no one
// cares". The interest index inverts the question: for each block it keeps
// the compact set of thread ids that currently hold materialized state, so
// a propagating access visits exactly the threads that could react. A
// block whose sole owner is the accessor takes a zero-broadcast fast path.
//
// Correctness rests on one invariant: the set for block b must include
// every thread whose detector instance has materialized ("touched") state
// for b. Over-approximation is harmless — delivering to a thread without
// state is the same no-op it always was — but a missing member would
// silently drop a conflict. Maintainers are the materialization points
// (svd ensureBlock, frd read-epoch installation) and the teardown points
// (svd evictBlock in hardware mode, frd write invalidation).

// ThreadSet is a compact set of thread ids attached to one block. Ids
// 0..63 are tracked precisely as bits; ids >= 64 fold into a shared
// count, which over-approximates membership (all high threads are visited
// while any holds state) — precision degrades gracefully, correctness
// does not. Callers must keep Add/Remove balanced per (thread, block)
// state transition: Add only when state materializes, Remove only when it
// is torn down, never twice.
type ThreadSet struct {
	bits uint64
	hi   int32 // members with id >= 64
}

// Add inserts tid.
func (s *ThreadSet) Add(tid int) {
	if tid < 64 {
		s.bits |= 1 << uint(tid)
	} else {
		s.hi++
	}
}

// Remove deletes tid.
func (s *ThreadSet) Remove(tid int) {
	if tid < 64 {
		s.bits &^= 1 << uint(tid)
	} else if s.hi > 0 {
		s.hi--
	}
}

// Clear empties the set.
func (s *ThreadSet) Clear() { *s = ThreadSet{} }

// Empty reports whether no thread is interested.
func (s ThreadSet) Empty() bool { return s.bits == 0 && s.hi == 0 }

// Only reports whether tid is the sole member (the zero-broadcast fast
// path). For tid >= 64 the fold makes sole membership unknowable, so it
// conservatively reports false.
func (s ThreadSet) Only(tid int) bool {
	if tid < 64 {
		return s.hi == 0 && s.bits == 1<<uint(tid)
	}
	return false
}

// Has reports whether tid may be a member (precise below 64,
// over-approximate above).
func (s ThreadSet) Has(tid int) bool {
	if tid < 64 {
		return s.bits&(1<<uint(tid)) != 0
	}
	return s.hi > 0
}

// Bits returns the membership mask of threads 0..63.
func (s ThreadSet) Bits() uint64 { return s.bits }

// HasHigh reports whether any thread with id >= 64 is a member.
func (s ThreadSet) HasHigh() bool { return s.hi > 0 }

// Len returns the member count (high threads count individually).
func (s ThreadSet) Len() int { return bits.OnesCount64(s.bits) + int(s.hi) }

// ForEach calls f for every member except exclude, in ascending id order
// (high-folded ids visit every thread in [64, numThreads)). The hot paths
// iterate Bits inline instead; this is the convenience form for tests and
// cold paths.
func (s ThreadSet) ForEach(exclude, numThreads int, f func(tid int)) {
	mask := s.bits
	if exclude >= 0 && exclude < 64 {
		mask &^= 1 << uint(exclude)
	}
	for rest := mask; rest != 0; rest &= rest - 1 {
		f(bits.TrailingZeros64(rest))
	}
	if s.hi > 0 {
		for tid := 64; tid < numThreads; tid++ {
			if tid != exclude {
				f(tid)
			}
		}
	}
}

// Interest is the global block interest index: one ThreadSet per block,
// stored in the same paged flat layout as the per-thread metadata so the
// per-access lookup is array indexing. One Interest is shared by all
// thread instances of a detector; it is not safe for concurrent use (the
// detectors are single-goroutine per sample, like the rest of their
// state).
type Interest struct {
	store *Store[ThreadSet]

	// gen counts membership mutations. Consumers caching a (block →
	// ThreadSet) pair compare generations instead of re-probing the store:
	// a matching generation proves no Add/Remove ran since the set was
	// read, so the cached copy is still the set the store would return.
	gen uint64
}

// NewInterest builds an empty index.
func NewInterest(opts Options) *Interest {
	return &Interest{store: New[ThreadSet](opts)}
}

// Add records tid's interest in block b.
func (ix *Interest) Add(b int64, tid int) {
	ix.gen++
	ix.store.Ensure(b).Add(tid)
}

// Remove drops tid's interest in block b.
func (ix *Interest) Remove(b int64, tid int) {
	ix.gen++
	if s := ix.store.Lookup(b); s != nil {
		s.Remove(tid)
	}
}

// Gen returns the mutation generation. Any Add or Remove changes it, so
// equal generations bracket an interval over which every cached Get
// result is still exact.
func (ix *Interest) Gen() uint64 { return ix.gen }

// Get returns block b's interest set by value (the empty set for blocks
// never recorded).
func (ix *Interest) Get(b int64) ThreadSet {
	if s := ix.store.Lookup(b); s != nil {
		return *s
	}
	return ThreadSet{}
}

// Population returns the total membership across all blocks — the index's
// size in (thread, block) pairs. Leak checks compare it against the
// detectors' own touched-block accounting.
func (ix *Interest) Population() int {
	total := 0
	ix.store.Range(func(_ int64, s *ThreadSet) bool {
		total += s.Len()
		return true
	})
	return total
}
