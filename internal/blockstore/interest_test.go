package blockstore

import (
	"reflect"
	"testing"
)

func TestThreadSetLowIDs(t *testing.T) {
	var s ThreadSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero value is not the empty set")
	}
	s.Add(0)
	s.Add(5)
	s.Add(63)
	if s.Empty() || s.Len() != 3 {
		t.Fatalf("len = %d after 3 adds", s.Len())
	}
	for _, tid := range []int{0, 5, 63} {
		if !s.Has(tid) {
			t.Errorf("Has(%d) = false", tid)
		}
	}
	if s.Has(1) || s.Has(62) {
		t.Error("Has reports non-members")
	}
	if s.Only(5) {
		t.Error("Only(5) with 3 members")
	}
	s.Remove(0)
	s.Remove(63)
	if !s.Only(5) {
		t.Error("Only(5) = false with sole member 5")
	}
	s.Remove(5)
	if !s.Empty() {
		t.Error("set not empty after removing every member")
	}
	// Removing a non-member is a no-op.
	s.Remove(7)
	if !s.Empty() {
		t.Error("removing a non-member changed the set")
	}
}

func TestThreadSetHighIDsFold(t *testing.T) {
	var s ThreadSet
	s.Add(64)
	s.Add(200)
	if !s.HasHigh() || s.Len() != 2 {
		t.Fatalf("high fold broken: HasHigh=%v Len=%d", s.HasHigh(), s.Len())
	}
	// The fold over-approximates: any high id reports membership.
	if !s.Has(64) || !s.Has(999) {
		t.Error("high membership must over-approximate")
	}
	// Sole membership is unknowable above the fold.
	s.Remove(200)
	if s.Only(64) {
		t.Error("Only must be conservative for folded ids")
	}
	s.Remove(64)
	if s.HasHigh() || !s.Empty() {
		t.Error("balanced removes did not drain the fold")
	}
	// Underflow guard.
	s.Remove(64)
	if s.HasHigh() {
		t.Error("removing from an empty fold went negative")
	}
}

func TestThreadSetForEachOrder(t *testing.T) {
	var s ThreadSet
	for _, tid := range []int{9, 2, 40, 65, 70} {
		s.Add(tid)
	}
	var got []int
	s.ForEach(9, 66, func(tid int) { got = append(got, tid) })
	// Ascending, excluding 9; the two folded high members visit every
	// thread in [64, numThreads).
	want := []int{2, 40, 64, 65}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach order = %v, want %v", got, want)
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Clear left members behind")
	}
}

func TestInterestIndex(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		ix := NewInterest(Options{Sparse: sparse})
		if got := ix.Get(42); !got.Empty() {
			t.Errorf("sparse=%v: unrecorded block not empty", sparse)
		}
		ix.Add(42, 3)
		ix.Add(42, 7)
		ix.Add(-8, 3) // negative block ids must work like the stores they mirror
		if got := ix.Get(42); !got.Has(3) || !got.Has(7) || got.Len() != 2 {
			t.Errorf("sparse=%v: Get(42) = %+v", sparse, got)
		}
		if !ix.Get(-8).Only(3) {
			t.Errorf("sparse=%v: negative block lost", sparse)
		}
		if got := ix.Population(); got != 3 {
			t.Errorf("sparse=%v: population = %d, want 3", sparse, got)
		}
		ix.Remove(42, 3)
		if got := ix.Get(42); !got.Only(7) {
			t.Errorf("sparse=%v: remove failed: %+v", sparse, got)
		}
		// Removing from a block never recorded must not materialize it.
		ix.Remove(1000, 5)
		if got := ix.Population(); got != 2 {
			t.Errorf("sparse=%v: population after removes = %d, want 2", sparse, got)
		}
	}
}
