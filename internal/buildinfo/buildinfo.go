// Package buildinfo renders the module version and VCS revision baked
// into a binary by the Go linker, so every command in this repo answers
// -version the same way without linker flags or per-command plumbing.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String renders "name version" from the embedded build info: the module
// version when the binary was built from a tagged module, the VCS
// revision (with a +dirty marker for modified trees) when built from a
// checkout, and "devel" when neither is recorded (e.g. test binaries).
func String(name string) string {
	return name + " " + describe(debug.ReadBuildInfo())
}

func describe(bi *debug.BuildInfo, ok bool) string {
	if !ok || bi == nil {
		return "devel"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		return fmt.Sprintf("%s (%s, %s)", version, rev, goVersion(bi))
	}
	return fmt.Sprintf("%s (%s)", version, goVersion(bi))
}

func goVersion(bi *debug.BuildInfo) string {
	if v := strings.TrimSpace(bi.GoVersion); v != "" {
		return v
	}
	return "unknown go"
}
