package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringNeverEmpty(t *testing.T) {
	s := String("svdd")
	if !strings.HasPrefix(s, "svdd ") || len(s) <= len("svdd ") {
		t.Errorf("String = %q", s)
	}
}

func TestDescribe(t *testing.T) {
	if got := describe(nil, false); got != "devel" {
		t.Errorf("no build info: %q", got)
	}
	bi := &debug.BuildInfo{GoVersion: "go1.22"}
	bi.Main.Version = "v1.2.3"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef"},
		{Key: "vcs.modified", Value: "true"},
	}
	if got := describe(bi, true); got != "v1.2.3 (0123456789ab+dirty, go1.22)" {
		t.Errorf("full info: %q", got)
	}
	bi.Settings = nil
	if got := describe(bi, true); got != "v1.2.3 (go1.22)" {
		t.Errorf("no vcs: %q", got)
	}
}
