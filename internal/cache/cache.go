// Package cache models per-CPU private caches kept coherent with an MSI
// invalidation protocol.
//
// The paper sketches a hardware SVD (§4.4): piggyback CU-reference
// propagation on existing datapaths, store CU state in the caches, and
// detect conflicts from coherence traffic. This package supplies the
// coherence substrate for that exploration: each simulated memory access
// updates the accessor's cache and reports exactly the coherence actions a
// snooping MSI protocol would perform — which remote CPUs got invalidated
// or downgraded (those are the only ones a hardware detector instance would
// hear about) and which locally cached line was evicted (whose detector
// state a hardware implementation would lose).
package cache

import "fmt"

// MSI is a cache-line coherence state.
type MSI uint8

const (
	// Invalid: not present.
	Invalid MSI = iota
	// Shared: clean, possibly in several caches.
	Shared
	// Modified: dirty, exclusive to one cache.
	Modified
)

var msiNames = [...]string{"I", "S", "M"}

func (s MSI) String() string { return msiNames[s] }

// Config shapes each CPU's private cache.
type Config struct {
	// Sets is the number of cache sets (power of two). Zero means 64.
	Sets int
	// Ways is the associativity. Zero means 4.
	Ways int
	// LineShift is log2 words per line. Zero means word lines, matching
	// the detector's default block size.
	LineShift uint
}

func (c Config) withDefaults() Config {
	if c.Sets <= 0 {
		c.Sets = 64
	}
	if c.Ways <= 0 {
		c.Ways = 4
	}
	return c
}

// Lines returns the per-CPU capacity in lines.
func (c Config) Lines() int { return c.Sets * c.Ways }

// Result describes the coherence consequences of one access.
type Result struct {
	Hit bool

	// Invalidated lists CPUs whose copy was invalidated (a remote write
	// reached them); Downgraded lists CPUs whose Modified copy was
	// demoted to Shared (a remote read reached them). These are the CPUs
	// that observe the access in a snooping protocol.
	Invalidated []int
	Downgraded  []int

	// EvictedLine is the line address (word address >> LineShift) the
	// accessor evicted to make room, or -1.
	EvictedLine int64
}

// Stats aggregates cache behavior.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64 // remote copies invalidated
	Downgrades    uint64 // remote copies demoted M -> S
}

type line struct {
	tag   int64 // line address; valid iff state != Invalid
	state MSI
	used  uint64 // LRU clock
}

// Hierarchy is the set of private caches.
type Hierarchy struct {
	cfg   Config
	cpus  [][]line // cpu -> sets*ways lines
	clock uint64
	stats Stats

	// scratch buffers reused across calls.
	inv, down []int
}

// New builds caches for numCPUs processors.
func New(numCPUs int, cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	h := &Hierarchy{cfg: cfg, cpus: make([][]line, numCPUs)}
	for i := range h.cpus {
		h.cpus[i] = make([]line, cfg.Sets*cfg.Ways)
	}
	return h
}

// Config returns the cache shape.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns aggregate counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// set returns the slice of ways for a line address.
func (h *Hierarchy) set(cpu int, lineAddr int64) []line {
	idx := int(lineAddr) & (h.cfg.Sets - 1)
	base := idx * h.cfg.Ways
	return h.cpus[cpu][base : base+h.cfg.Ways]
}

// Access performs one access and returns its coherence consequences. The
// returned slices are valid until the next call.
func (h *Hierarchy) Access(cpu int, addr int64, write bool) Result {
	h.clock++
	h.stats.Accesses++
	lineAddr := addr >> h.cfg.LineShift
	res := Result{EvictedLine: -1}
	h.inv = h.inv[:0]
	h.down = h.down[:0]

	ways := h.set(cpu, lineAddr)
	var hitLine *line
	for i := range ways {
		if ways[i].state != Invalid && ways[i].tag == lineAddr {
			hitLine = &ways[i]
			break
		}
	}

	// Snoop remote copies. A write invalidates them; a read demotes a
	// remote Modified copy (which supplies the data).
	snoop := func() {
		for other := range h.cpus {
			if other == cpu {
				continue
			}
			ows := h.set(other, lineAddr)
			for i := range ows {
				ol := &ows[i]
				if ol.state == Invalid || ol.tag != lineAddr {
					continue
				}
				if write {
					ol.state = Invalid
					h.stats.Invalidations++
					h.inv = append(h.inv, other)
				} else if ol.state == Modified {
					ol.state = Shared
					h.stats.Downgrades++
					h.down = append(h.down, other)
				}
			}
		}
	}

	if hitLine != nil {
		res.Hit = true
		h.stats.Hits++
		hitLine.used = h.clock
		if write && hitLine.state != Modified {
			// Upgrade: S -> M invalidates the other copies.
			snoop()
			hitLine.state = Modified
		}
		res.Invalidated, res.Downgraded = h.inv, h.down
		return res
	}

	// Miss: snoop, then fill, evicting the LRU way.
	h.stats.Misses++
	snoop()
	victim := &ways[0]
	for i := range ways {
		if ways[i].state == Invalid {
			victim = &ways[i]
			break
		}
		if ways[i].used < victim.used {
			victim = &ways[i]
		}
	}
	if victim.state != Invalid {
		h.stats.Evictions++
		res.EvictedLine = victim.tag
	}
	victim.tag = lineAddr
	victim.used = h.clock
	if write {
		victim.state = Modified
	} else {
		victim.state = Shared
	}
	res.Invalidated, res.Downgraded = h.inv, h.down
	return res
}

// Holds reports whether a CPU currently caches the line containing addr,
// and in what state.
func (h *Hierarchy) Holds(cpu int, addr int64) (MSI, bool) {
	lineAddr := addr >> h.cfg.LineShift
	ways := h.set(cpu, lineAddr)
	for i := range ways {
		if ways[i].state != Invalid && ways[i].tag == lineAddr {
			return ways[i].state, true
		}
	}
	return Invalid, false
}

// CheckInvariants validates the single-writer/multi-reader invariant, for
// tests: a line Modified in one cache must be Invalid everywhere else.
func (h *Hierarchy) CheckInvariants() error {
	holders := map[int64][]MSI{}
	for cpu := range h.cpus {
		for _, l := range h.cpus[cpu] {
			if l.state != Invalid {
				holders[l.tag] = append(holders[l.tag], l.state)
			}
		}
	}
	for tag, states := range holders {
		modified := 0
		for _, s := range states {
			if s == Modified {
				modified++
			}
		}
		if modified > 0 && len(states) > 1 {
			return fmt.Errorf("cache: line %d modified with %d total copies", tag, len(states))
		}
	}
	return nil
}
