package cache

import (
	"math/rand"
	"testing"
)

func TestMissThenHit(t *testing.T) {
	h := New(2, Config{Sets: 4, Ways: 2})
	r := h.Access(0, 100, false)
	if r.Hit {
		t.Error("cold access hit")
	}
	r = h.Access(0, 100, false)
	if !r.Hit {
		t.Error("second access missed")
	}
	st := h.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteInvalidatesRemoteCopies(t *testing.T) {
	h := New(3, Config{Sets: 4, Ways: 2})
	h.Access(0, 100, false)
	h.Access(1, 100, false)
	r := h.Access(2, 100, true)
	if len(r.Invalidated) != 2 {
		t.Fatalf("invalidated = %v, want cpus 0 and 1", r.Invalidated)
	}
	if _, held := h.Holds(0, 100); held {
		t.Error("cpu 0 still holds the invalidated line")
	}
	if s, held := h.Holds(2, 100); !held || s != Modified {
		t.Errorf("writer holds %v,%v, want Modified", s, held)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestReadDowngradesModified(t *testing.T) {
	h := New(2, Config{Sets: 4, Ways: 2})
	h.Access(0, 100, true)
	r := h.Access(1, 100, false)
	if len(r.Downgraded) != 1 || r.Downgraded[0] != 0 {
		t.Fatalf("downgraded = %v, want [0]", r.Downgraded)
	}
	if s, _ := h.Holds(0, 100); s != Shared {
		t.Errorf("writer's copy is %v, want Shared", s)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUpgradeInvalidates(t *testing.T) {
	h := New(2, Config{Sets: 4, Ways: 2})
	h.Access(0, 100, false)
	h.Access(1, 100, false)
	r := h.Access(0, 100, true) // S -> M upgrade, hits locally
	if !r.Hit {
		t.Error("upgrade missed")
	}
	if len(r.Invalidated) != 1 || r.Invalidated[0] != 1 {
		t.Errorf("invalidated = %v, want [1]", r.Invalidated)
	}
}

func TestEvictionLRU(t *testing.T) {
	// 1 set x 2 ways: the third distinct line evicts the least recently
	// used.
	h := New(1, Config{Sets: 1, Ways: 2})
	h.Access(0, 1, false)
	h.Access(0, 2, false)
	h.Access(0, 1, false) // touch 1: line 2 is now LRU
	r := h.Access(0, 3, false)
	if r.EvictedLine != 2 {
		t.Errorf("evicted line %d, want 2", r.EvictedLine)
	}
	if _, held := h.Holds(0, 2); held {
		t.Error("evicted line still held")
	}
	if _, held := h.Holds(0, 1); !held {
		t.Error("recently used line evicted")
	}
}

func TestLineGranularity(t *testing.T) {
	h := New(2, Config{Sets: 4, Ways: 2, LineShift: 2})
	h.Access(0, 100, false) // line 25
	r := h.Access(0, 102, false)
	if !r.Hit {
		t.Error("same-line access missed (line granularity broken)")
	}
	r = h.Access(1, 103, true) // writes the same line from another cpu
	if len(r.Invalidated) != 1 {
		t.Errorf("invalidated = %v, want [0]", r.Invalidated)
	}
}

func TestReadSharingNoTraffic(t *testing.T) {
	h := New(4, Config{Sets: 4, Ways: 2})
	for cpu := 0; cpu < 4; cpu++ {
		r := h.Access(cpu, 100, false)
		if len(r.Invalidated)+len(r.Downgraded) != 0 {
			t.Errorf("read sharing generated traffic: %+v", r)
		}
	}
	st := h.Stats()
	if st.Invalidations != 0 || st.Downgrades != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMSIStrings(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
}

// TestInvariantsUnderRandomTraffic fuzzes the protocol and checks the
// single-writer invariant after every access.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := New(4, Config{Sets: 2, Ways: 2, LineShift: 1})
	for i := 0; i < 5000; i++ {
		cpu := rng.Intn(4)
		addr := int64(rng.Intn(64))
		h.Access(cpu, addr, rng.Intn(2) == 0)
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	st := h.Stats()
	if st.Accesses != 5000 || st.Hits+st.Misses != 5000 {
		t.Errorf("stats = %+v", st)
	}
	if st.Evictions == 0 {
		t.Error("tiny cache never evicted")
	}
}
