package cache

import "repro/internal/vm"

// CostModel prices instructions for the VM's timing-first scheduler using
// this package's coherence model: cache hits are fast, misses stall the
// CPU for the miss penalty. Combined with vm.TimingFirst this reproduces
// the flavor of the paper's substrate — a timing simulator in which thread
// interleaving follows modeled memory-system latencies rather than a
// random quantum lottery (§6.1 uses the Wisconsin SMP timing model).
type CostModel struct {
	h *Hierarchy

	// ALUCost, HitCost, MissCost are cycle prices; zero values default to
	// 1, 2, and 20.
	ALUCost  uint64
	HitCost  uint64
	MissCost uint64
}

// NewCostModel builds a cost model with private caches per CPU.
func NewCostModel(numCPUs int, cfg Config) *CostModel {
	return &CostModel{h: New(numCPUs, cfg), ALUCost: 1, HitCost: 2, MissCost: 20}
}

// Hierarchy exposes the underlying caches (for stats).
func (c *CostModel) Hierarchy() *Hierarchy { return c.h }

// Cost implements vm.CostModel.
func (c *CostModel) Cost(ev *vm.Event) uint64 {
	if !ev.Instr.Op.IsMem() {
		if c.ALUCost == 0 {
			return 1
		}
		return c.ALUCost
	}
	res := c.h.Access(ev.CPU, ev.Addr, ev.IsStore)
	if res.Hit {
		if c.HitCost == 0 {
			return 2
		}
		return c.HitCost
	}
	if c.MissCost == 0 {
		return 20
	}
	return c.MissCost
}

var _ vm.CostModel = (*CostModel)(nil)
