// Package cfg builds instruction-level control-flow graphs for isa programs
// and computes postdominators.
//
// The trace recorder uses immediate postdominators as exact control-flow
// reconvergence points: a dynamic statement is control dependent on the
// most recent conditional branch whose immediate postdominator has not yet
// been reached (§3.1's control dependence definition — modifying the
// branch's predicate could bypass the statement, and no later branch could).
// The online detector instead uses the Skipper probing heuristic (§4.2);
// comparing the two is one of the reproduction's ablations.
package cfg

import (
	"fmt"

	"repro/internal/isa"
)

// Graph is the control-flow graph of a program at instruction granularity.
// Node i is instruction i; node len(Code) is the synthetic exit node, which
// Halt reaches directly and Jr conservatively reaches (indirect jump
// targets are unknown statically).
type Graph struct {
	N     int // number of instruction nodes (exit node is N)
	Succs [][]int
	Preds [][]int
}

// Exit returns the synthetic exit node id.
func (g *Graph) Exit() int { return g.N }

// New builds the CFG of prog.
func New(prog *isa.Program) *Graph {
	n := len(prog.Code)
	g := &Graph{
		N:     n,
		Succs: make([][]int, n+1),
		Preds: make([][]int, n+1),
	}
	addEdge := func(from, to int) {
		g.Succs[from] = append(g.Succs[from], to)
		g.Preds[to] = append(g.Preds[to], from)
	}
	for pc, in := range prog.Code {
		switch {
		case in.Op == isa.OpHalt:
			addEdge(pc, g.Exit())
		case in.Op == isa.OpJr:
			// Indirect target: conservatively an exit (returns leave the
			// region the caller's branches guard; see trace's call-depth
			// handling for the dynamic complement).
			addEdge(pc, g.Exit())
		case in.Op == isa.OpJal:
			// A call returns: for control-dependence purposes it is a
			// straight-line instruction (the callee has its own region,
			// delimited by its Jr's exit edge).
			addEdge(pc, fallthroughTarget(pc, n))
		case in.Op == isa.OpJmp:
			addEdge(pc, int(in.Imm))
		case in.Op.IsCondBranch():
			addEdge(pc, int(in.Imm))
			if pc+1 <= n {
				addEdge(pc, fallthroughTarget(pc, n))
			}
		default:
			addEdge(pc, fallthroughTarget(pc, n))
		}
	}
	return g
}

func fallthroughTarget(pc, n int) int {
	if pc+1 >= n {
		return n // falling off the end reaches exit
	}
	return pc + 1
}

// PostDominators computes the immediate postdominator of every node using
// the Cooper–Harvey–Kennedy iterative algorithm on the reverse graph. The
// result maps each instruction node to its immediate postdominator
// (possibly the exit node). Nodes that cannot reach exit map to -1.
func (g *Graph) PostDominators() []int {
	exit := g.Exit()
	total := g.N + 1

	// Reverse postorder of the REVERSE graph (i.e., order nodes by a DFS
	// from exit along predecessor edges).
	order := make([]int, 0, total)
	seen := make([]bool, total)
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, p := range g.Preds[u] {
			if !seen[p] {
				dfs(p)
			}
		}
		order = append(order, u)
	}
	dfs(exit)
	// order is postorder of the reverse-DFS; reverse it for RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, total)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range order {
		rpoNum[u] = i
	}

	ipdom := make([]int, total)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[exit] = exit

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, u := range order {
			if u == exit {
				continue
			}
			newIdom := -1
			for _, s := range g.Succs[u] {
				if ipdom[s] == -1 && s != exit {
					continue
				}
				if rpoNum[s] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != -1 && ipdom[u] != newIdom {
				ipdom[u] = newIdom
				changed = true
			}
		}
	}
	out := make([]int, g.N)
	copy(out, ipdom[:g.N])
	return out
}

// Reconvergence returns, for every conditional branch, the PC at which its
// two paths reconverge: the immediate postdominator, skipping over the
// branch's fallthrough when the ipdom chain starts there. Non-branch
// instructions map to -1, as do branches that reconverge only at exit.
func Reconvergence(prog *isa.Program) []int64 {
	g := New(prog)
	ipdom := g.PostDominators()
	out := make([]int64, len(prog.Code))
	for pc, in := range prog.Code {
		out[pc] = -1
		if !in.Op.IsCondBranch() {
			continue
		}
		r := ipdom[pc]
		if r < 0 || r >= g.N {
			continue // reconverges at exit only
		}
		out[pc] = int64(r)
	}
	return out
}

// Validate performs structural checks, for tests.
func (g *Graph) Validate() error {
	for u, succs := range g.Succs {
		for _, s := range succs {
			if s < 0 || s > g.N {
				return fmt.Errorf("cfg: edge %d->%d out of range", u, s)
			}
			found := false
			for _, p := range g.Preds[s] {
				if p == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("cfg: edge %d->%d missing reverse edge", u, s)
			}
		}
	}
	return nil
}
