package cfg

import (
	"testing"

	"repro/internal/isa"
)

func TestLinearProgram(t *testing.T) {
	p := &isa.Program{Name: "lin", Code: []isa.Instr{
		isa.LI(8, 1),
		isa.Addi(8, 8, 1),
		isa.Halt(),
	}}
	g := New(p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ipdom := g.PostDominators()
	if ipdom[0] != 1 || ipdom[1] != 2 || ipdom[2] != g.Exit() {
		t.Errorf("ipdom = %v", ipdom)
	}
}

func TestIfReconvergence(t *testing.T) {
	// 0: beqz -> 3; 1,2 = then arm; 3 = join.
	p := &isa.Program{Name: "if", Code: []isa.Instr{
		isa.Beqz(8, 3),
		isa.Nop(),
		isa.Nop(),
		isa.Nop(),
		isa.Halt(),
	}}
	rc := Reconvergence(p)
	if rc[0] != 3 {
		t.Errorf("if reconvergence = %d, want 3", rc[0])
	}
	for pc := 1; pc < len(rc); pc++ {
		if rc[pc] != -1 {
			t.Errorf("non-branch pc %d has reconvergence %d", pc, rc[pc])
		}
	}
}

func TestIfElseReconvergence(t *testing.T) {
	// 0: beqz -> 3 (else); 1 then; 2 jmp 5; 3,4 else; 5 join.
	p := &isa.Program{Name: "ifelse", Code: []isa.Instr{
		isa.Beqz(8, 3),
		isa.Nop(),
		isa.Jmp(5),
		isa.Nop(),
		isa.Nop(),
		isa.Nop(),
		isa.Halt(),
	}}
	rc := Reconvergence(p)
	if rc[0] != 5 {
		t.Errorf("if/else reconvergence = %d, want 5", rc[0])
	}
}

func TestLoopReconvergence(t *testing.T) {
	// 0: li; 1: beqz -> 4 (exit); 2: body; 3: jmp 1; 4: halt.
	p := &isa.Program{Name: "loop", Code: []isa.Instr{
		isa.LI(8, 3),
		isa.Beqz(8, 4),
		isa.Addi(8, 8, -1),
		isa.Jmp(1),
		isa.Halt(),
	}}
	rc := Reconvergence(p)
	// The loop-condition branch reconverges at the loop exit: the body is
	// control dependent on it.
	if rc[1] != 4 {
		t.Errorf("loop-condition reconvergence = %d, want 4", rc[1])
	}
}

func TestNestedIf(t *testing.T) {
	// 0: beqz -> 6 (outer); 1: beqz -> 4 (inner); 2,3 inner-then;
	// 4,5 after-inner; 6 join.
	p := &isa.Program{Name: "nested", Code: []isa.Instr{
		isa.Beqz(8, 6),
		isa.Beqz(9, 4),
		isa.Nop(),
		isa.Nop(),
		isa.Nop(),
		isa.Nop(),
		isa.Nop(),
		isa.Halt(),
	}}
	rc := Reconvergence(p)
	if rc[0] != 6 {
		t.Errorf("outer reconvergence = %d, want 6", rc[0])
	}
	if rc[1] != 4 {
		t.Errorf("inner reconvergence = %d, want 4", rc[1])
	}
}

func TestBranchWithEarlyHaltReconvergesAtExitOnly(t *testing.T) {
	// 0: beqz -> 2; 1: halt; 2: halt — the two arms never reconverge in
	// code, only at exit.
	p := &isa.Program{Name: "nojoin", Code: []isa.Instr{
		isa.Beqz(8, 2),
		isa.Halt(),
		isa.Halt(),
	}}
	rc := Reconvergence(p)
	if rc[0] != -1 {
		t.Errorf("reconvergence = %d, want -1 (exit only)", rc[0])
	}
}

func TestJrEdgesToExit(t *testing.T) {
	p := &isa.Program{Name: "jr", Code: []isa.Instr{
		isa.Jr(1),
		isa.Halt(),
	}}
	g := New(p)
	succs := g.Succs[0]
	if len(succs) != 1 || succs[0] != g.Exit() {
		t.Errorf("jr succs = %v, want [exit]", succs)
	}
}

func TestFallthroughOffEnd(t *testing.T) {
	p := &isa.Program{Name: "end", Code: []isa.Instr{
		isa.Nop(),
	}}
	g := New(p)
	if got := g.Succs[0]; len(got) != 1 || got[0] != g.Exit() {
		t.Errorf("final-instruction succs = %v", got)
	}
	ipdom := g.PostDominators()
	if ipdom[0] != g.Exit() {
		t.Errorf("ipdom of final = %d", ipdom[0])
	}
}

func TestInfiniteLoopUnreachableExit(t *testing.T) {
	// 0: jmp 0 — never reaches exit; postdominator undefined (-1).
	p := &isa.Program{Name: "inf", Code: []isa.Instr{
		isa.Jmp(0),
	}}
	ipdom := New(p).PostDominators()
	if ipdom[0] != -1 {
		t.Errorf("ipdom of unexitable node = %d, want -1", ipdom[0])
	}
}

func TestDiamondWithSharedTail(t *testing.T) {
	// A diamond whose join has a tail; ipdom of the branch must be the
	// join, not the tail.
	p := &isa.Program{Name: "diamond", Code: []isa.Instr{
		isa.Beqz(8, 3),
		isa.Nop(),
		isa.Jmp(4),
		isa.Nop(),
		isa.Nop(), // join
		isa.Nop(), // tail
		isa.Halt(),
	}}
	rc := Reconvergence(p)
	if rc[0] != 4 {
		t.Errorf("diamond reconvergence = %d, want 4", rc[0])
	}
}
