package cluster

import (
	"fmt"
	"testing"

	"repro/internal/wire"
)

func ids(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("workload-%d/seed-%d", i%7, i)
	}
	return out
}

// TestRingDeterministic: the ring is a pure function of the member id
// set — order and duplicates don't matter, and two independently built
// rings agree on every route. This is the property that lets nodes
// route without consulting each other.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(1, []string{"n1", "n2", "n3"})
	b := NewRing(1, []string{"n3", "n1", "n2", "n1"})
	for _, k := range keys(500) {
		oa, ok := a.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q", k)
		}
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("rings disagree on %q: %q vs %q", k, oa, ob)
		}
	}
}

// TestRingDistribution: with vnodes, no node's share of 10k keys is
// wildly off uniform. Loose bound (half to double the fair share) —
// the point is no starvation, not perfection.
func TestRingDistribution(t *testing.T) {
	members := ids(4)
	r := NewRing(1, members)
	counts := make(map[string]int)
	const n = 10000
	for i := 0; i < n; i++ {
		o, _ := r.Owner(fmt.Sprintf("stream/%d", i))
		counts[o]++
	}
	fair := n / len(members)
	for _, id := range members {
		if counts[id] < fair/2 || counts[id] > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair %d): distribution broken", id, counts[id], n, fair)
		}
	}
}

// TestRingConsistency: removing one node moves only that node's keys.
// This is the property consistent hashing exists for — a member loss
// must not reshuffle streams between survivors, or every death would
// trigger cluster-wide handoffs.
func TestRingConsistency(t *testing.T) {
	r := NewRing(1, ids(4))
	dead := "node-2"
	r2 := r.Without(dead)
	if r2.Version() != r.Version()+1 {
		t.Fatalf("Without did not bump version: %d -> %d", r.Version(), r2.Version())
	}
	if r2.Has(dead) {
		t.Fatal("removed node still on ring")
	}
	moved, total := 0, 0
	for _, k := range keys(2000) {
		before, _ := r.Owner(k)
		after, _ := r2.Owner(k)
		total++
		if before != after {
			moved++
			if before != dead {
				t.Fatalf("key %q moved %q -> %q though %q died", k, before, after, dead)
			}
			if after == dead {
				t.Fatalf("key %q assigned to the dead node", k)
			}
		}
	}
	if moved == 0 {
		t.Fatal("suspicious: dead node owned zero of 2000 keys")
	}
	// Removing a non-member is a no-op, version included.
	if r3 := r.Without("ghost"); r3.Version() != r.Version() {
		t.Fatal("removing a non-member churned the version")
	}
}

// TestRingEmpty: the empty ring owns nothing instead of panicking.
func TestRingEmpty(t *testing.T) {
	r := NewRing(0, nil)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// TestParsePeers covers the flag grammar.
func TestParsePeers(t *testing.T) {
	ms, err := ParsePeers("n1=127.0.0.1:7071+127.0.0.1:7171, n2=127.0.0.1:7072")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d members", len(ms))
	}
	if ms[0].ID != "n1" || ms[0].Addr != "127.0.0.1:7071" || ms[0].HTTPAddr != "127.0.0.1:7171" {
		t.Fatalf("n1 parsed wrong: %+v", ms[0])
	}
	if ms[1].ID != "n2" || ms[1].Addr != "127.0.0.1:7072" || ms[1].HTTPAddr != "" {
		t.Fatalf("n2 parsed wrong: %+v", ms[1])
	}
	for _, bad := range []string{"", "n1", "=addr", "n1=", "n1=a:1,n1=b:2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestViewAssignmentRoundTrip: view -> wire.Assignment -> view
// preserves epoch, ring version, and every route.
func TestViewAssignmentRoundTrip(t *testing.T) {
	v := NewView(5, []Member{
		{ID: "n1", Addr: "a:1", HTTPAddr: "a:2"},
		{ID: "n2", Addr: "b:1"},
		{ID: "n3", Addr: "c:1", HTTPAddr: "c:2"},
	})
	a := v.Assignment("n1")
	if a.Epoch != 5 || a.Origin != "n1" || len(a.Nodes) != 3 {
		t.Fatalf("assignment malformed: %+v", a)
	}
	v2 := ViewFromAssignment(a)
	if v2.Epoch != v.Epoch || v2.Ring().Version() != v.Ring().Version() {
		t.Fatalf("round trip lost versions: %d/%d vs %d/%d", v2.Epoch, v2.Ring().Version(), v.Epoch, v.Ring().Version())
	}
	for _, k := range keys(200) {
		o1, _ := v.Owner(k)
		o2, _ := v2.Owner(k)
		if o1 != o2 {
			t.Fatalf("round trip changed route for %q: %+v vs %+v", k, o1, o2)
		}
	}
}

// TestRouterEpochProtocol: a router adopts strictly newer views only —
// higher epoch, or same epoch with newer ring — and replays of the
// current view are no-ops. Stale assignments must lose, or a slow
// node's old view would resurrect a dead member.
func TestRouterEpochProtocol(t *testing.T) {
	members := []Member{{ID: "n1", Addr: "a:1"}, {ID: "n2", Addr: "b:1"}, {ID: "n3", Addr: "c:1"}}
	r := NewRouter("n1", NewView(1, members))

	// Stale epoch: rejected.
	if _, changed := r.ApplyAssignment(wire.Assignment{Epoch: 0, RingVersion: 99, Origin: "n2"}); changed {
		t.Fatal("adopted a stale epoch")
	}
	// Same epoch, same ring: no-op replay.
	if _, changed := r.ApplyAssignment(r.View().Assignment("n2")); changed {
		t.Fatal("replay of current view counted as a change")
	}
	// Newer epoch: adopted.
	newer := NewView(2, members[:2]).Assignment("n2")
	if v, changed := r.ApplyAssignment(newer); !changed || v.Epoch != 2 || len(v.Members) != 2 {
		t.Fatalf("did not adopt newer view: changed=%v %+v", changed, v)
	}
	// Same epoch, newer ring version: adopted (the member-loss tiebreak).
	bumped := newer
	bumped.RingVersion++
	bumped.Nodes = bumped.Nodes[:1]
	if v, changed := r.ApplyAssignment(bumped); !changed || len(v.Members) != 1 {
		t.Fatalf("did not adopt same-epoch newer-ring view: changed=%v %+v", changed, v)
	}
}

// TestRouterConcurrentMarkDownConverges: two nodes that concurrently
// mark *different* members down produce views with the same epoch and
// ring version but different member sets. The view order must still be
// total — after exchanging assignments in both directions the routers
// agree on one view, or the cluster would route the same key to two
// owners until an unrelated epoch bump.
func TestRouterConcurrentMarkDownConverges(t *testing.T) {
	members := []Member{
		{ID: "n1", Addr: "a:1"}, {ID: "n2", Addr: "b:1"},
		{ID: "n3", Addr: "c:1"}, {ID: "n4", Addr: "d:1"},
	}
	r1 := NewRouter("n1", NewView(1, members))
	r2 := NewRouter("n2", NewView(1, members))
	v1, _ := r1.MarkDown("n3")
	v2, _ := r2.MarkDown("n4")
	if v1.Epoch != v2.Epoch || v1.Ring().Version() != v2.Ring().Version() {
		t.Fatalf("concurrent markdowns should tie on versions: %d/%d vs %d/%d",
			v1.Epoch, v1.Ring().Version(), v2.Epoch, v2.Ring().Version())
	}
	if v1.Fingerprint() == v2.Fingerprint() {
		t.Fatal("test needs diverged member sets")
	}
	// Anti-entropy both ways: exactly one side must adopt.
	_, c1 := r1.ApplyAssignment(r2.View().Assignment("n2"))
	_, c2 := r2.ApplyAssignment(r1.View().Assignment("n1"))
	if c1 == c2 {
		t.Fatalf("tiebreak not deterministic: changed=%v/%v", c1, c2)
	}
	if got1, got2 := r1.View().Fingerprint(), r2.View().Fingerprint(); got1 != got2 {
		t.Fatalf("routers did not converge: %q vs %q", got1, got2)
	}
	for _, k := range keys(300) {
		o1, ok1 := r1.Owner(k)
		o2, ok2 := r2.Owner(k)
		if ok1 != ok2 || o1.ID != o2.ID {
			t.Fatalf("converged views route %q differently: %v/%v", k, o1, o2)
		}
	}
	// A replay of the now-shared view changes nothing on either side.
	if _, changed := r1.ApplyAssignment(r2.View().Assignment("n2")); changed {
		t.Fatal("replay after convergence changed the view")
	}
}

// TestRouterMarkDown: declaring a member dead advances the epoch,
// removes it from the ring, reroutes its keys to survivors, and is
// idempotent. A node cannot mark itself down.
func TestRouterMarkDown(t *testing.T) {
	members := []Member{{ID: "n1", Addr: "a:1"}, {ID: "n2", Addr: "b:1"}, {ID: "n3", Addr: "c:1"}}
	r := NewRouter("n1", NewView(1, members))
	before := r.View()

	v, changed := r.MarkDown("n2")
	if !changed || v.Epoch != before.Epoch+1 {
		t.Fatalf("MarkDown: changed=%v epoch %d -> %d", changed, before.Epoch, v.Epoch)
	}
	if _, ok := v.Member("n2"); ok {
		t.Fatal("dead member still in view")
	}
	for _, k := range keys(300) {
		if o, ok := v.Owner(k); !ok || o.ID == "n2" {
			t.Fatalf("key %q routed to dead node (ok=%v)", k, ok)
		}
	}
	if _, changed := r.MarkDown("n2"); changed {
		t.Fatal("second MarkDown of the same node changed the view")
	}
	if _, changed := r.MarkDown("n1"); changed {
		t.Fatal("node marked itself down")
	}
	if s := r.Snapshot(); s.MembersDown != 1 {
		t.Fatalf("downs counter %d, want 1", s.MembersDown)
	}
}

// TestHistoryCap: the history buffer records until the cap, then goes
// sticky and stays sticky, releasing its memory.
func TestHistoryCap(t *testing.T) {
	h := NewHistory(32)
	hdr := []byte("123456789")
	h.Append(hdr, []byte("0123456789"))
	if h.Sticky() || h.Len() != 19 {
		t.Fatalf("after first append: sticky=%v len=%d", h.Sticky(), h.Len())
	}
	h.Append(hdr, []byte("0123456789"))
	if !h.Sticky() {
		t.Fatal("cap crossed but not sticky")
	}
	if h.Bytes() != nil {
		t.Fatal("sticky history kept its buffer")
	}
	h.Append(hdr, nil)
	if !h.Sticky() {
		t.Fatal("sticky history un-stuck")
	}
}
