package cluster

// History accumulates one stream's raw wire frames (hello + events,
// exactly as received) so the stream can be handed to a new owner:
// replaying the bytes through fresh detectors rebuilds the detection
// state exactly, because the detectors are deterministic. The buffer is
// capped — a stream that outgrows it becomes sticky (it finishes on the
// node that holds its state) rather than unbounded memory.
type History struct {
	buf      []byte
	limit    int
	overflow bool
}

// NewHistory builds a history buffer with the given byte cap.
func NewHistory(limit int) *History {
	return &History{limit: limit}
}

// Append records one raw frame (header then payload). Once the cap is
// crossed the buffer is released and the stream is marked sticky; a
// sticky history never un-sticks.
func (h *History) Append(hdr, payload []byte) {
	if h.overflow {
		return
	}
	if len(h.buf)+len(hdr)+len(payload) > h.limit {
		h.overflow = true
		h.buf = nil
		return
	}
	h.buf = append(h.buf, hdr...)
	h.buf = append(h.buf, payload...)
}

// Sticky reports whether the stream outgrew the buffer and must finish
// where it is.
func (h *History) Sticky() bool { return h.overflow }

// MarkSticky pins the stream where it is, releasing the buffer, exactly
// as if the cap had been crossed. The handoff path uses it when a
// transfer fails for a reason retrying cannot fix — the encoded handoff
// exceeded the frame cap — so the stream stops re-attempting a doomed
// move on every frame.
func (h *History) MarkSticky() {
	h.overflow = true
	h.buf = nil
}

// Bytes is the recorded frame history: a valid wire byte stream.
func (h *History) Bytes() []byte { return h.buf }

// Len is the recorded byte count.
func (h *History) Len() int { return len(h.buf) }
