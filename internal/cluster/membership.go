package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/wire"
)

// Member is one cluster node's identity and addresses.
type Member struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`                // wire (TCP) listen address
	HTTPAddr string `json:"http_addr,omitempty"` // HTTP plane, may be empty
}

// ParsePeers parses the -peers flag form: a comma-separated list of
// id=wireaddr or id=wireaddr+httpaddr entries, e.g.
//
//	n1=127.0.0.1:7071+127.0.0.1:7171,n2=127.0.0.1:7072
//
// '+' separates the two addresses because ':' is taken by host:port.
func ParsePeers(s string) ([]Member, error) {
	var out []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addrs, ok := strings.Cut(part, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("cluster: peer %q: want id=host:port[+httphost:port]", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		wireAddr, httpAddr, _ := strings.Cut(addrs, "+")
		if wireAddr == "" {
			return nil, fmt.Errorf("cluster: peer %q: empty wire address", part)
		}
		out = append(out, Member{ID: id, Addr: wireAddr, HTTPAddr: httpAddr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", s)
	}
	return out, nil
}

// DeriveToken computes the default peer-plane token from a member
// list: FNV-64a over every id and address, hex-rendered. Nodes started
// with identical -peers derive identical tokens with no side-channel
// distribution, which keeps ordinary wire clients from forging cluster
// frames; it is not a secret against anyone who knows the topology, so
// adversarial deployments must set an explicit token instead.
func DeriveToken(members []Member) string {
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	h := fnv.New64a()
	for _, m := range ms {
		fmt.Fprintf(h, "%s=%s+%s,", m.ID, m.Addr, m.HTTPAddr)
	}
	return fmt.Sprintf("peers-%016x", h.Sum64())
}

// View is one membership assignment: an epoch (total order on views —
// higher epoch wins everywhere), the member list, and the ring derived
// from it. Views are immutable; the Router swaps whole views.
type View struct {
	Epoch   uint64
	Members []Member
	ring    *Ring
}

// NewView builds a view over the given members at the given epoch. The
// ring version starts equal to the epoch so a fresh static config is
// self-consistent; reassignment paths bump both.
func NewView(epoch uint64, members []Member) *View {
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	ids := make([]string, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
	}
	return &View{Epoch: epoch, Members: ms, ring: NewRing(epoch, ids)}
}

// Ring exposes the view's ring.
func (v *View) Ring() *Ring { return v.ring }

// Fingerprint canonically renders the view's member-id set: ids sorted
// and comma-joined. Identity is the id set only — address fields do not
// participate, because two nodes that agree on membership must agree on
// the fingerprint even if one learned an address differently.
func (v *View) Fingerprint() string {
	ids := make([]string, len(v.Members))
	for i, m := range v.Members {
		ids[i] = m.ID
	}
	// Members is sorted by construction (NewView).
	return strings.Join(ids, ",")
}

// AssignmentFingerprint is Fingerprint over a wire view that has not
// been rebuilt into a View yet: same canonical form, so the two compare
// directly.
func AssignmentFingerprint(a wire.Assignment) string {
	ids := make([]string, len(a.Nodes))
	for i, n := range a.Nodes {
		ids[i] = n.ID
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// Owner routes a stream key under this view.
func (v *View) Owner(key string) (Member, bool) {
	id, ok := v.ring.Owner(key)
	if !ok {
		return Member{}, false
	}
	m, ok := v.Member(id)
	return m, ok
}

// Member looks up a member by id.
func (v *View) Member(id string) (Member, bool) {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i].ID >= id })
	if i < len(v.Members) && v.Members[i].ID == id {
		return v.Members[i], true
	}
	return Member{}, false
}

// Without derives the view that follows losing one member: epoch
// advances past both inputs' so the new view wins the gossip race, and
// the ring rebuilds without the node. Removing a non-member returns the
// receiver.
func (v *View) Without(id string) *View {
	if _, ok := v.Member(id); !ok {
		return v
	}
	var rest []Member
	for _, m := range v.Members {
		if m.ID != id {
			rest = append(rest, m)
		}
	}
	nv := NewView(v.Epoch+1, rest)
	nv.ring = NewRing(v.ring.Version()+1, nv.ring.Nodes())
	return nv
}

// Assignment renders the view as the wire frame payload, stamped with
// the sending node.
func (v *View) Assignment(origin string) wire.Assignment {
	a := wire.Assignment{Epoch: v.Epoch, RingVersion: v.ring.Version(), Origin: origin}
	for _, m := range v.Members {
		a.Nodes = append(a.Nodes, wire.NodeInfo{ID: m.ID, Addr: m.Addr, HTTPAddr: m.HTTPAddr})
	}
	return a
}

// ViewFromAssignment rebuilds a view from the wire frame. The ring
// version is taken from the frame, not recomputed, so two nodes that
// exchanged the same assignment agree on it exactly.
func ViewFromAssignment(a wire.Assignment) *View {
	ms := make([]Member, len(a.Nodes))
	for i, n := range a.Nodes {
		ms[i] = Member{ID: n.ID, Addr: n.Addr, HTTPAddr: n.HTTPAddr}
	}
	v := NewView(a.Epoch, ms)
	v.ring = NewRing(a.RingVersion, v.ring.Nodes())
	return v
}
