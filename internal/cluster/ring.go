// Package cluster is the detection service's membership and routing
// layer: a consistent-hash ring over a set of svdd nodes, a versioned
// membership view exchanged via wire.Assignment frames, and the small
// bookkeeping a node needs to route streams, forward misrouted ones,
// and hand off in-flight streams when ownership moves.
//
// The paper's detector is a single shared-memory process; this layer is
// what makes N of them act as one service. The invariant it preserves
// is the detectors': every stream key maps to exactly one owner under
// any given view, so each node still sees complete streams and the
// per-stream detection semantics are unchanged. The package depends
// only on internal/wire (for the Assignment frame shape) — the engine
// integration lives in internal/server.
package cluster

import (
	"hash/fnv"
	"sort"
)

// vnodesPerNode is how many points each node contributes to the ring.
// Share variance shrinks as 1/sqrt(vnodes); 256 holds every node's
// share within ~±2x even for unlucky id sets while the ring stays tiny
// (a 16-node cluster is 4096 points, one binary search per route).
const vnodesPerNode = 256

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over a node set. Version
// increments whenever the membership changes, so two nodes can compare
// rings without exchanging the full point list. Build rings through
// NewRing/Without; the zero Ring owns nothing.
type Ring struct {
	version uint64
	nodes   []string
	points  []ringPoint
}

// NewRing builds a ring over the given node ids at the given version.
// Duplicate ids collapse; order does not matter (the point set is a
// pure function of the id set, which is what makes two nodes that agree
// on membership agree on every route).
func NewRing(version uint64, ids []string) *Ring {
	seen := make(map[string]bool, len(ids))
	var uniq []string
	for _, id := range ids {
		if id != "" && !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	sort.Strings(uniq)
	r := &Ring{version: version, nodes: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodesPerNode)
	for ni, id := range uniq {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, v), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// pointHash is FNV-64a over id + '#' + vnode (two LE bytes), finalized
// by mix64 — stable across processes and Go versions, which the
// cross-node agreement property requires.
func pointHash(id string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{'#', byte(vnode), byte(vnode >> 8)})
	return mix64(h.Sum64())
}

// keyHash hashes a stream key onto the circle.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-64a alone has weak avalanche
// into the high bits for short, similar inputs (sequential seeds in a
// key, a vnode counter), and ring placement orders by the full 64-bit
// value — unmixed, points and keys clump and the share distribution
// skews several-fold. The finalizer is a fixed bijection, so agreement
// across nodes is unaffected.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Version reports the ring's membership version.
func (r *Ring) Version() uint64 { return r.version }

// Nodes lists the member ids in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len is the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner maps a stream key to its owning node: the first ring point at
// or after the key's hash, wrapping at the top. Empty ring owns
// nothing (ok=false). The empty key is a valid input — callers that
// want round-robin for keyless streams should not route through the
// ring at all.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node], true
}

// Has reports whether id is a member.
func (r *Ring) Has(id string) bool {
	i := sort.SearchStrings(r.nodes, id)
	return i < len(r.nodes) && r.nodes[i] == id
}

// Without returns a new ring with id removed and the version bumped.
// Returns the receiver unchanged when id is not a member — no version
// churn for a no-op.
func (r *Ring) Without(id string) *Ring {
	if !r.Has(id) {
		return r
	}
	var rest []string
	for _, n := range r.nodes {
		if n != id {
			rest = append(rest, n)
		}
	}
	return NewRing(r.version+1, rest)
}
