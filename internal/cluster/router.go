package cluster

import (
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Router is one node's routing state: its identity, the current
// membership view, and the cluster counters the metrics and /statusz
// planes export. Safe for concurrent use — sessions route on every
// stream open and between frames.
type Router struct {
	self string

	mu   sync.RWMutex
	view *View

	// Counters. Misroutes counts streams that arrived at a non-owner
	// (each then forwarded or adopted); forwarded counts frames relayed
	// to the owner; handoffs count drained-stream transfers by
	// direction; downs counts members this node declared dead.
	misroutes   atomic.Uint64
	forwarded   atomic.Uint64
	handoffsOut atomic.Uint64
	handoffsIn  atomic.Uint64
	inflight    atomic.Int64 // handoffs currently being replayed or sent
	downs       atomic.Uint64
}

// NewRouter builds a router for node self over the initial view. self
// must be a member of the view.
func NewRouter(self string, v *View) *Router {
	return &Router{self: self, view: v}
}

// Self reports this node's id.
func (r *Router) Self() string { return r.self }

// View returns the current membership view.
func (r *Router) View() *View {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.view
}

// Owner routes a key under the current view.
func (r *Router) Owner(key string) (Member, bool) {
	return r.View().Owner(key)
}

// Owns reports whether this node owns the key right now.
func (r *Router) Owns(key string) bool {
	m, ok := r.Owner(key)
	return ok && m.ID == r.self
}

// ApplyAssignment adopts a peer's view when it orders after the current
// one. The order must be total or diverged nodes never reconverge, so
// it has three tiers: epoch, then ring version (the tiebreak a
// same-epoch member loss produces), then — when both are equal but the
// member sets still differ, which two nodes concurrently marking
// *different* members down produces — the canonical member-set
// fingerprint, smaller winning. The fingerprint tier is arbitrary but
// deterministic: both sides pick the same winner, the anti-entropy
// exchange spreads it, and the markdown the losing view carried is
// re-detected by the next failed probe or dial, one epoch later.
// Returns the view in force afterwards and whether it changed.
// Idempotent on replays of the current view.
func (r *Router) ApplyAssignment(a wire.Assignment) (*View, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.view
	curRV := cur.Ring().Version()
	switch {
	case a.Epoch < cur.Epoch:
		return cur, false
	case a.Epoch == cur.Epoch && a.RingVersion < curRV:
		return cur, false
	case a.Epoch == cur.Epoch && a.RingVersion == curRV:
		if AssignmentFingerprint(a) >= cur.Fingerprint() {
			return cur, false
		}
	}
	r.view = ViewFromAssignment(a)
	return r.view, true
}

// MarkDown removes a member this node has decided is dead: the view
// advances one epoch without it, so the next Assign exchange spreads
// the removal. Returns the new view and whether anything changed (a
// second MarkDown of the same node is a no-op; a node never marks
// itself down).
func (r *Router) MarkDown(id string) (*View, bool) {
	if id == r.self {
		return r.View(), false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.view.Member(id); !ok {
		return r.view, false
	}
	r.view = r.view.Without(id)
	r.downs.Add(1)
	return r.view, true
}

// Counter bumps, called from session paths.

func (r *Router) NoteMisroute() { r.misroutes.Add(1) }

func (r *Router) NoteForwarded(frames uint64) { r.forwarded.Add(frames) }

func (r *Router) NoteHandoffOut() { r.handoffsOut.Add(1) }

func (r *Router) NoteHandoffIn() { r.handoffsIn.Add(1) }

// HandoffStarted/HandoffDone bracket an in-flight transfer for the
// /statusz "handoffs in flight" gauge.
func (r *Router) HandoffStarted() { r.inflight.Add(1) }

func (r *Router) HandoffDone() { r.inflight.Add(-1) }

// Stats is a point-in-time snapshot of the router for /statusz and
// OpenMetrics.
type Stats struct {
	Self             string
	Epoch            uint64
	RingVersion      uint64
	Members          []Member
	Misroutes        uint64
	ForwardedFrames  uint64
	HandoffsOut      uint64
	HandoffsIn       uint64
	HandoffsInFlight int64
	MembersDown      uint64
}

// Snapshot captures the router's current state.
func (r *Router) Snapshot() Stats {
	v := r.View()
	return Stats{
		Self:             r.self,
		Epoch:            v.Epoch,
		RingVersion:      v.Ring().Version(),
		Members:          append([]Member(nil), v.Members...),
		Misroutes:        r.misroutes.Load(),
		ForwardedFrames:  r.forwarded.Load(),
		HandoffsOut:      r.handoffsOut.Load(),
		HandoffsIn:       r.handoffsIn.Load(),
		HandoffsInFlight: r.inflight.Load(),
		MembersDown:      r.downs.Load(),
	}
}
