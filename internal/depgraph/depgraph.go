// Package depgraph implements the paper's formal machinery (§3): the
// dynamic program dependence graph (d-PDG), thread d-PDGs, the crossing-arc
// construction that makes computational units unique (Definitions 1–3), and
// serializability of CU partitions (Definition 4 via conflict
// serializability, plus the strict-2PL sufficient condition of §3.3).
//
// Two independent CU constructions are provided:
//
//   - CUs: the declarative partition of Definitions 1–3 — iteratively
//     remove, for each shared dependence arc in execution order, the
//     crossing arcs that would connect statements at or after the reading
//     statement to the written-side component, then take weakly connected
//     components of what remains;
//   - OperationalCUs: the one-pass algorithm of Figure 5, which deactivates
//     a predecessor's CU when a statement reads a shared variable the CU
//     wrote, and otherwise merges the active predecessor CUs.
//
// The two agree on the executions we generate (a property the test suite
// checks), which is the paper's justification for using the one-pass form
// online.
//
// Interpretation note: Definition 1 as printed swaps the roles of (y,x) and
// (b,a) relative to Figure 4's caption and the in-text example. We follow
// the consistent reading used by the prose and the operational algorithm:
// for a shared arc from read r back to write w, the crossing arcs are the
// true-local/control arcs whose earlier endpoint is weakly connected to w
// (along E_l ∪ E_c) and whose later endpoint executes at or after r —
// "all crossing arcs that connect to the CU from a later dynamic statement
// are cut", cutting the thread trace just before r.
package depgraph

import (
	"sort"

	"repro/internal/trace"
)

// ArcKind classifies d-PDG arcs (§3.1).
type ArcKind uint8

const (
	// TrueLocal is a true dependence through a register or an unshared
	// memory word (E_l).
	TrueLocal ArcKind = iota
	// TrueShared is a true dependence through a shared memory word (E_s).
	TrueShared
	// Control is a control dependence (E_c).
	Control
	// Conflict is an inter-thread conflict dependence (E_h).
	Conflict
)

var arcNames = [...]string{"true-local", "true-shared", "control", "conflict"}

func (k ArcKind) String() string { return arcNames[k] }

// Arc is one dependence: From depends on To, with To executing earlier
// (the paper writes arcs as (a, b) with b ≼ a).
type Arc struct {
	From, To int32
	Kind     ArcKind
}

// Graph is a d-PDG over a recorded trace.
type Graph struct {
	Trace *trace.Trace
	Arcs  []Arc
}

// Build constructs the full d-PDG: true-local, true-shared, and control
// arcs from the trace's exact dependence records, and conflict arcs per
// §3.1 (latest conflicting access by another thread with no intervening
// write).
func Build(tr *trace.Trace) *Graph {
	g := &Graph{Trace: tr}

	for i := range tr.Stmts {
		s := &tr.Stmts[i]
		for _, p := range s.TruePreds {
			g.Arcs = append(g.Arcs, Arc{From: int32(i), To: p, Kind: TrueLocal})
		}
		if s.MemPred >= 0 {
			kind := TrueLocal
			if tr.Shared(s.Addr) {
				kind = TrueShared
			}
			g.Arcs = append(g.Arcs, Arc{From: int32(i), To: s.MemPred, Kind: kind})
		}
		if s.CtrlPred >= 0 {
			g.Arcs = append(g.Arcs, Arc{From: int32(i), To: s.CtrlPred, Kind: Control})
		}
	}

	// Conflict arcs: for each word, a write conflicts back to the previous
	// write and to every read since it; a read conflicts back to the
	// previous write. Only inter-thread arcs are conflict dependences.
	type lastAccess struct {
		idx int32
		cpu int
	}
	lastWrite := map[int64]lastAccess{}
	readsSince := map[int64][]lastAccess{}
	for i := range tr.Stmts {
		s := &tr.Stmts[i]
		if !s.IsLoad && !s.IsStore {
			continue
		}
		v := s.Addr
		if s.IsLoad {
			if w, ok := lastWrite[v]; ok && w.cpu != s.CPU {
				g.Arcs = append(g.Arcs, Arc{From: int32(i), To: w.idx, Kind: Conflict})
			}
		}
		if s.IsStore {
			if w, ok := lastWrite[v]; ok && w.cpu != s.CPU {
				g.Arcs = append(g.Arcs, Arc{From: int32(i), To: w.idx, Kind: Conflict})
			}
			for _, r := range readsSince[v] {
				if r.cpu != s.CPU && r.idx != int32(i) {
					g.Arcs = append(g.Arcs, Arc{From: int32(i), To: r.idx, Kind: Conflict})
				}
			}
			lastWrite[v] = lastAccess{int32(i), s.CPU}
			readsSince[v] = readsSince[v][:0]
		}
		if s.IsLoad {
			readsSince[v] = append(readsSince[v], lastAccess{int32(i), s.CPU})
		}
	}
	return g
}

// ThreadArcs returns the td-PDG arcs of one thread: all true and control
// arcs between its statements, conflict arcs omitted (§3.1).
func (g *Graph) ThreadArcs(cpu int) []Arc {
	var out []Arc
	for _, a := range g.Arcs {
		if a.Kind == Conflict {
			continue
		}
		if g.Trace.Stmts[a.From].CPU == cpu {
			out = append(out, a)
		}
	}
	return out
}

// CUs computes the computational-unit partition of every thread trace per
// Definitions 1–3. The result maps each statement index to a CU id;
// statements of different threads never share a CU. Ids are dense from 0.
func (g *Graph) CUs() []int {
	tr := g.Trace
	cuOf := make([]int, len(tr.Stmts))
	for i := range cuOf {
		cuOf[i] = -1
	}
	next := 0
	for cpu := 0; cpu < tr.NumCPUs; cpu++ {
		next = g.threadCUs(cpu, cuOf, next)
	}
	return cuOf
}

// threadCUs partitions one thread trace.
func (g *Graph) threadCUs(cpu int, cuOf []int, next int) int {
	tr := g.Trace
	stmts := tr.ThreadStmts(cpu)
	if len(stmts) == 0 {
		return next
	}
	pos := make(map[int32]int, len(stmts)) // stmt index -> position in thread trace
	for i, s := range stmts {
		pos[s] = i
	}

	// Local adjacency (E_l ∪ E_c) and the shared arcs (E_s), in thread
	// positions.
	type edge struct{ u, v int } // u later, v earlier
	var edges []edge
	removed := map[int]bool{}
	type sharedArc struct{ r, w int }
	var shared []sharedArc
	for _, a := range g.ThreadArcs(cpu) {
		u, v := pos[a.From], pos[a.To]
		if a.Kind == TrueShared {
			shared = append(shared, sharedArc{r: u, w: v})
			continue
		}
		edges = append(edges, edge{u, v})
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i].r < shared[j].r })

	adj := make([][]int, len(stmts)) // edge indices incident to each node
	for ei, e := range edges {
		adj[e.u] = append(adj[e.u], ei)
		adj[e.v] = append(adj[e.v], ei)
	}

	// component computes the set of nodes weakly connected to start along
	// non-removed edges, visiting only nodes with position < limit
	// (pass len(stmts) for no limit).
	component := func(start, limit int) map[int]bool {
		comp := map[int]bool{start: true}
		work := []int{start}
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			for _, ei := range adj[n] {
				if removed[ei] {
					continue
				}
				e := edges[ei]
				o := e.u
				if o == n {
					o = e.v
				}
				if o < limit && !comp[o] {
					comp[o] = true
					work = append(work, o)
				}
			}
		}
		return comp
	}

	// Definition 2: for each shared arc in execution order of the reading
	// statement r, remove its crossing arcs — the arcs whose earlier
	// endpoint lies in the component the written side had grown to before
	// r executed, and whose later endpoint executes at or after r. The
	// component is evaluated over statements before r only: a unit's
	// membership is fixed as statements execute, so statements at or after
	// the cutting read were never part of the unit being cut.
	for _, sa := range shared {
		comp := component(sa.w, sa.r)
		for ei, e := range edges {
			if removed[ei] {
				continue
			}
			if comp[e.v] && e.u >= sa.r {
				removed[ei] = true
			}
		}
	}

	// Definition 3: weakly connected components of the reduced graph.
	for i := range stmts {
		if cuOf[stmts[i]] != -1 {
			continue
		}
		comp := component(i, len(stmts))
		for n := range comp {
			cuOf[stmts[n]] = next
		}
		next++
	}
	return next
}

// OperationalCUs computes the CU partition with the one-pass algorithm of
// Figure 5 using the trace's exact dependences and shared-variable oracle.
// The result format matches CUs.
func OperationalCUs(tr *trace.Trace) []int {
	type ocu struct {
		id     int
		parent *ocu
		active bool
		shVars map[int64]bool
		stmts  []int32
	}
	find := func(c *ocu) *ocu {
		for c.parent != nil {
			if c.parent.parent != nil {
				c.parent = c.parent.parent
			}
			c = c.parent
		}
		return c
	}

	cuOfStmt := make([]*ocu, len(tr.Stmts))
	nextID := 0
	var predBuf []int32

	for cpu := 0; cpu < tr.NumCPUs; cpu++ {
		for _, idx := range tr.ThreadStmts(cpu) {
			s := &tr.Stmts[idx]
			predBuf = s.Preds(predBuf[:0])

			// Shared-dependence test (Figure 5 lines 4-9): deactivate any
			// active predecessor CU that wrote a shared variable this
			// statement reads.
			if s.IsLoad && tr.Shared(s.Addr) {
				for _, p := range predBuf {
					pc := cuOfStmt[p]
					if pc == nil {
						continue
					}
					pc = find(pc)
					if pc.active && pc.shVars[s.Addr] {
						pc.active = false
					}
				}
			}

			// Merge the remaining active predecessor CUs (line 10-12).
			var merged *ocu
			for _, p := range predBuf {
				pc := cuOfStmt[p]
				if pc == nil {
					continue
				}
				pc = find(pc)
				if !pc.active || pc == merged {
					continue
				}
				if merged == nil {
					merged = pc
					continue
				}
				// Union: fold pc into merged.
				if len(pc.stmts) > len(merged.stmts) {
					merged, pc = pc, merged
				}
				merged.stmts = append(merged.stmts, pc.stmts...)
				for v := range pc.shVars {
					merged.shVars[v] = true
				}
				pc.parent = merged
				pc.active = false
				pc.shVars = nil
				pc.stmts = nil
			}
			if merged == nil {
				merged = &ocu{id: nextID, active: true, shVars: map[int64]bool{}}
				nextID++
			}
			merged.stmts = append(merged.stmts, idx)
			merged.active = true
			cuOfStmt[idx] = merged

			// Record shared writes (lines 15-16).
			if s.IsStore && tr.Shared(s.Addr) {
				merged.shVars[s.Addr] = true
			}
		}
	}

	// Densify ids in first-statement order.
	out := make([]int, len(tr.Stmts))
	ids := map[*ocu]int{}
	next := 0
	for i := range tr.Stmts {
		c := cuOfStmt[i]
		if c == nil {
			out[i] = -1
			continue
		}
		c = find(c)
		id, ok := ids[c]
		if !ok {
			id = next
			next++
			ids[c] = id
		}
		out[i] = id
	}
	return out
}
