package depgraph

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

func record(t *testing.T, p *isa.Program, cpus int, seed uint64) *trace.Trace {
	t.Helper()
	m, err := vm.New(p, vm.Config{NumCPUs: cpus, Seed: seed, MaxQuantum: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewRecorder(p, cpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(r)
	if _, err := m.Run(1 << 18); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("program did not halt")
	}
	return r.Trace()
}

// samePartition reports whether two CU labelings induce the same
// equivalence classes.
func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ab, ba := map[int]int{}, map[int]int{}
	for i := range a {
		if (a[i] < 0) != (b[i] < 0) {
			return false
		}
		if a[i] < 0 {
			continue
		}
		if m, ok := ab[a[i]]; ok && m != b[i] {
			return false
		}
		ab[a[i]] = b[i]
		if m, ok := ba[b[i]]; ok && m != a[i] {
			return false
		}
		ba[b[i]] = a[i]
	}
	return true
}

// TestSharedDependenceCutsCU: a thread writes a shared word and reads it
// back; the read must start a new CU in both constructions.
func TestSharedDependenceCutsCU(t *testing.T) {
	p := &isa.Program{Name: "cut", Entries: []int64{0, 5}, Code: []isa.Instr{
		isa.LI(8, 1),                   // 0 T0
		isa.Store(8, isa.RegZero, 100), // 1 T0: write shared
		isa.Load(9, isa.RegZero, 100),  // 2 T0: read it back -> cut
		isa.Store(9, isa.RegZero, 101), // 3 T0
		isa.Halt(),                     // 4
		isa.Load(10, isa.RegZero, 100), // 5 T1 makes word 100 shared
		isa.Halt(),                     // 6
	}}
	tr := record(t, p, 2, 3)
	g := Build(tr)
	decl := g.CUs()
	oper := OperationalCUs(tr)
	if !samePartition(decl, oper) {
		t.Errorf("partitions differ:\ndecl=%v\noper=%v", decl, oper)
	}
	// Find T0's store (pc 1) and load (pc 2): different CUs.
	var wIdx, rIdx = -1, -1
	for i := range tr.Stmts {
		switch tr.Stmts[i].PC {
		case 1:
			wIdx = i
		case 2:
			rIdx = i
		}
	}
	if wIdx < 0 || rIdx < 0 {
		t.Fatal("statements not found")
	}
	if oper[wIdx] == oper[rIdx] {
		t.Errorf("shared write and read-back share CU %d", oper[wIdx])
	}
	if bad := RegionRuleViolations(g, oper); len(bad) != 0 {
		t.Errorf("operational partition violates region rules: %v", bad)
	}
	if bad := RegionRuleViolations(g, decl); len(bad) != 0 {
		t.Errorf("declarative partition violates region rules: %v", bad)
	}
}

// TestUnsharedReadBackStaysInCU: without a second thread the word is not
// shared and the read-back continues the same CU.
func TestUnsharedReadBackStaysInCU(t *testing.T) {
	p := &isa.Program{Name: "nocut", Entries: []int64{0}, Code: []isa.Instr{
		isa.LI(8, 1),
		isa.Store(8, isa.RegZero, 100),
		isa.Load(9, isa.RegZero, 100),
		isa.Store(9, isa.RegZero, 101),
		isa.Halt(),
	}}
	tr := record(t, p, 1, 0)
	oper := OperationalCUs(tr)
	if oper[1] != oper[2] || oper[2] != oper[3] {
		t.Errorf("unshared read-back split the CU: %v", oper)
	}
}

// TestDependenceArcKinds checks Build's arc classification.
func TestDependenceArcKinds(t *testing.T) {
	p := &isa.Program{Name: "arcs", Entries: []int64{0, 6}, Code: []isa.Instr{
		isa.LI(8, 1),                   // 0
		isa.Store(8, isa.RegZero, 100), // 1: shared write
		isa.Load(9, isa.RegZero, 100),  // 2: shared true dep on 1
		isa.Beqz(9, 5),                 // 3: true dep on 2
		isa.Store(9, isa.RegZero, 101), // 4: ctrl dep on 3 (r9=1, not taken)
		isa.Halt(),                     // 5
		isa.Load(10, isa.RegZero, 100), // 6 (T1): conflict with T0's store
		isa.Halt(),                     // 7
	}}
	// Run serialized so T0 completes first: T1's load then conflicts with
	// T0's store deterministically.
	m, err := vm.New(p, vm.Config{NumCPUs: 2, Mode: vm.Serialize})
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewRecorder(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(r)
	if _, err := m.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	tr := r.Trace()
	g := Build(tr)

	count := map[ArcKind]int{}
	for _, a := range g.Arcs {
		count[a.Kind]++
	}
	if count[TrueShared] != 1 {
		t.Errorf("true-shared arcs = %d, want 1", count[TrueShared])
	}
	if count[Control] != 1 {
		t.Errorf("control arcs = %d, want 1", count[Control])
	}
	if count[Conflict] == 0 {
		t.Error("no conflict arcs")
	}
	if count[TrueLocal] == 0 {
		t.Error("no true-local arcs")
	}
	for k := TrueLocal; k <= Conflict; k++ {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	// td-PDG excludes conflicts and foreign statements.
	for _, a := range g.ThreadArcs(0) {
		if a.Kind == Conflict {
			t.Error("thread arcs contain conflicts")
		}
		if tr.Stmts[a.From].CPU != 0 {
			t.Error("thread arcs contain foreign statements")
		}
	}
}

// TestConflictArcAdjacency: conflict arcs link only accesses with no
// intervening write (§3.1 condition III).
func TestConflictArcAdjacency(t *testing.T) {
	p := &isa.Program{Name: "conf", Entries: []int64{0, 3}, Code: []isa.Instr{
		isa.Store(isa.RegZero, isa.RegZero, 100), // T0 w1
		isa.Store(isa.RegZero, isa.RegZero, 100), // T0 w2
		isa.Halt(),
		isa.Load(8, isa.RegZero, 100), // T1 read
		isa.Halt(),
	}}
	m, err := vm.New(p, vm.Config{NumCPUs: 2, Mode: vm.Serialize})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := trace.NewRecorder(p, 2, 0)
	m.Attach(r)
	if _, err := m.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	g := Build(r.Trace())
	var conflicts []Arc
	for _, a := range g.Arcs {
		if a.Kind == Conflict {
			conflicts = append(conflicts, a)
		}
	}
	// T1's read conflicts only with T0's second (latest) write.
	if len(conflicts) != 1 {
		t.Fatalf("conflict arcs = %v, want exactly 1", conflicts)
	}
	if got := g.Trace.Stmts[conflicts[0].To].PC; got != 1 {
		t.Errorf("conflict reaches back to pc %d, want 1 (no intervening write)", got)
	}
}

// TestConflictSerializableSerialTrace: strictly serial CU executions are
// serializable.
func TestConflictSerializableSerialTrace(t *testing.T) {
	p := incrementProgram(2, 3)
	m, err := vm.New(p, vm.Config{NumCPUs: 2, Mode: vm.Serialize})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := trace.NewRecorder(p, 2, 0)
	m.Attach(r)
	if _, err := m.Run(1 << 18); err != nil {
		t.Fatal(err)
	}
	tr := r.Trace()
	if !ConflictSerializable(tr, OperationalCUs(tr)) {
		t.Error("serialized execution judged non-serializable")
	}
}

// TestConflictSerializableLostUpdate: an interleaving that loses an update
// is not serializable.
func TestConflictSerializableLostUpdate(t *testing.T) {
	// Hand-build the classic non-serializable trace via a tiny program
	// run under a seed that interleaves the load/store windows.
	p := incrementProgram(2, 30)
	for seed := uint64(0); seed < 50; seed++ {
		m, err := vm.New(p, vm.Config{NumCPUs: 2, Seed: seed, MaxQuantum: 2})
		if err != nil {
			t.Fatal(err)
		}
		r, _ := trace.NewRecorder(p, 2, 0)
		m.Attach(r)
		if _, err := m.Run(1 << 18); err != nil {
			t.Fatal(err)
		}
		if m.Mem(0) == 60 {
			continue // no lost update this seed
		}
		tr := r.Trace()
		if ConflictSerializable(tr, OperationalCUs(tr)) {
			t.Fatalf("seed %d lost an update but was judged serializable", seed)
		}
		return
	}
	t.Skip("no seed produced a lost update")
}

// incrementProgram: n CPUs, k racy increments of word 0 each.
func incrementProgram(n int, k int64) *isa.Program {
	code := []isa.Instr{
		isa.LI(8, k),
		isa.Load(9, isa.RegZero, 0),
		isa.Addi(9, 9, 1),
		isa.Store(9, isa.RegZero, 0),
		isa.Addi(8, 8, -1),
		isa.Bnez(8, 1),
		isa.Halt(),
	}
	return &isa.Program{Name: "inc", Code: code, Entries: make([]int64, n)}
}

// randProgram generates a random terminating program: forward branches
// only, memory confined to words [0,16), no faults.
func randProgram(rng *rand.Rand, n int, cpus int) *isa.Program {
	regs := []isa.Reg{8, 9, 10, 11, 12}
	reg := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	code := make([]isa.Instr, n+1)
	for pc := 0; pc < n; pc++ {
		switch rng.Intn(10) {
		case 0, 1:
			code[pc] = isa.LI(reg(), int64(rng.Intn(100)))
		case 2, 3:
			code[pc] = isa.ALU(isa.OpAdd, reg(), reg(), reg())
		case 4, 5:
			code[pc] = isa.Load(reg(), isa.RegZero, int64(rng.Intn(16)))
		case 6, 7:
			code[pc] = isa.Store(reg(), isa.RegZero, int64(rng.Intn(16)))
		case 8:
			// Forward branch to a random later pc (possibly the halt).
			target := pc + 1 + rng.Intn(n-pc)
			code[pc] = isa.Beqz(reg(), int64(target))
		default:
			code[pc] = isa.Addi(reg(), reg(), int64(rng.Intn(5)))
		}
	}
	code[n] = isa.Halt()
	return &isa.Program{Name: "rand", Code: code, Entries: make([]int64, cpus)}
}

// TestDeclarativeMatchesOperational is the reproduction's central formal
// property: the declarative CU partition of Definitions 1–3 equals the
// one-pass operational partition of Figure 5 on random multithreaded
// executions.
func TestDeclarativeMatchesOperational(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		p := randProgram(rng, 12+rng.Intn(30), 1+rng.Intn(3))
		seed := rng.Uint64()
		tr := record(t, p, len(p.Entries), seed)
		g := Build(tr)
		decl := g.CUs()
		oper := OperationalCUs(tr)
		if !samePartition(decl, oper) {
			t.Fatalf("trial %d (seed %d): partitions differ\nprog=%v\ndecl=%v\noper=%v",
				trial, seed, p.Code, decl, oper)
		}
	}
}

// TestRegionRulesHoldOnRandomExecutions: both constructions must satisfy
// the region hypothesis (no internal shared dependences, weak
// connectivity).
func TestRegionRulesHoldOnRandomExecutions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		p := randProgram(rng, 10+rng.Intn(25), 1+rng.Intn(3))
		tr := record(t, p, len(p.Entries), rng.Uint64())
		g := Build(tr)
		for name, part := range map[string][]int{
			"declarative": g.CUs(),
			"operational": OperationalCUs(tr),
		} {
			if bad := RegionRuleViolations(g, part); len(bad) != 0 {
				t.Fatalf("trial %d: %s partition breaks region rules for CUs %v", trial, name, bad)
			}
		}
	}
}
