package depgraph

import (
	"fmt"
	"io"
)

// WriteDot renders a d-PDG (with its CU partition) as Graphviz dot: one
// box per dynamic statement labeled with its thread and unit, true-shared
// arcs in red, control arcs dashed blue, conflict arcs dotted orange —
// the pictures of the paper's Figures 1–4, generated from real traces.
// cuOf may be nil to omit unit labels.
func (g *Graph) WriteDot(w io.Writer, cuOf []int) error {
	tr := g.Trace
	if _, err := fmt.Fprintln(w, "digraph dpdg {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB; node [shape=box, fontsize=9];")
	for i := range tr.Stmts {
		s := &tr.Stmts[i]
		label := fmt.Sprintf("t%d", s.CPU)
		if cuOf != nil && i < len(cuOf) && cuOf[i] >= 0 {
			label += fmt.Sprintf(" cu%d", cuOf[i])
		}
		loc := tr.Prog.LocationOf(s.PC)
		if loc == "" {
			loc = fmt.Sprintf("pc %d", s.PC)
		}
		fmt.Fprintf(w, "  n%d [label=\"%s\\n%s\\n%s\"];\n", i, label, s.Instr, loc)
	}
	styles := map[ArcKind]string{
		TrueLocal:  "color=black",
		TrueShared: "color=red, penwidth=2",
		Control:    "color=blue, style=dashed",
		Conflict:   "color=orange, style=dotted",
	}
	for _, a := range g.Arcs {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [%s];\n", a.From, a.To, styles[a.Kind]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
