package depgraph

import (
	"sort"

	"repro/internal/trace"
)

// ConflictSerializable reports whether the CU partition of a trace is
// serializable in the sense of Definition 4, checked as database conflict
// serializability: build the precedence graph whose nodes are CUs, with an
// edge from CU_i to CU_j whenever an access of CU_i conflicts with a later
// access of CU_j (different threads), plus the program order between a
// thread's own units; the partition is serializable iff the graph is
// acyclic [Papadimitriou 1986]. Conflict serializability is sufficient for
// view equivalence to a serial trace, so this is the conservative precise
// check against which the strict-2PL heuristic is validated.
//
// cuOf maps statement index to CU id (as produced by Graph.CUs or
// OperationalCUs); statements with id -1 are ignored.
func ConflictSerializable(tr *trace.Trace, cuOf []int) bool {
	numCU := 0
	for _, id := range cuOf {
		if id+1 > numCU {
			numCU = id + 1
		}
	}
	if numCU == 0 {
		return true
	}
	adj := make(map[int]map[int]bool)
	addEdge := func(a, b int) {
		if a == b || a < 0 || b < 0 {
			return
		}
		m := adj[a]
		if m == nil {
			m = map[int]bool{}
			adj[a] = m
		}
		m[b] = true
	}

	// The precedence graph uses conflict edges only, the standard
	// transaction model: accesses of the same thread never conflict, and
	// the paper's §3.3 analysis assumes non-overlapping CUs, under which a
	// topological order of the conflict graph extends to a serial trace
	// that also respects each thread's internal dependence order.
	// (Definition 3 technically permits overlapping CUs, for which no
	// transaction-shaped serializability question is well posed.)

	// Conflict edges: for every word, every ordered pair of conflicting
	// accesses in different threads' units.
	type acc struct {
		cu    int
		cpu   int
		write bool
	}
	byWord := map[int64][]acc{}
	for i := range tr.Stmts {
		s := &tr.Stmts[i]
		if (!s.IsLoad && !s.IsStore) || cuOf[i] < 0 {
			continue
		}
		byWord[s.Addr] = append(byWord[s.Addr], acc{cu: cuOf[i], cpu: s.CPU, write: s.IsStore})
	}
	for _, list := range byWord {
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.cpu != b.cpu && (a.write || b.write) {
					addEdge(a.cu, b.cu)
				}
			}
		}
	}

	// Cycle detection by iterative DFS with colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]uint8)
	var nodes []int
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, start := range nodes {
		if color[start] != white {
			continue
		}
		type frame struct {
			node int
			next []int
		}
		succs := func(n int) []int {
			var out []int
			for m := range adj[n] {
				out = append(out, m)
			}
			sort.Ints(out)
			return out
		}
		stack := []frame{{start, succs(start)}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if len(f.next) == 0 {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			n := f.next[0]
			f.next = f.next[1:]
			switch color[n] {
			case gray:
				return false // back edge: cycle
			case white:
				color[n] = gray
				stack = append(stack, frame{n, succs(n)})
			}
		}
	}
	return true
}

// RegionRuleViolations checks the region hypothesis against a CU
// partition: rule 1 — no CU contains a write of a shared word followed by a
// read of that word; rule 2 — every CU's statements are weakly connected
// along E_l ∪ E_c. It returns the ids of CUs violating either rule; a
// correct partition returns none. This is the invariant the test suite
// property-checks on random executions.
func RegionRuleViolations(g *Graph, cuOf []int) []int {
	tr := g.Trace
	bad := map[int]bool{}

	// Rule 1: shared arcs must cross CU boundaries.
	for _, a := range g.Arcs {
		if a.Kind != TrueShared {
			continue
		}
		if cuOf[a.From] >= 0 && cuOf[a.From] == cuOf[a.To] {
			bad[cuOf[a.From]] = true
		}
	}

	// Rule 2: weak connectivity of each CU along local and control arcs.
	// Union-find over statements restricted to arcs inside one CU.
	parent := make([]int32, len(tr.Stmts))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, a := range g.Arcs {
		if a.Kind == Conflict || a.Kind == TrueShared {
			continue
		}
		if cuOf[a.From] >= 0 && cuOf[a.From] == cuOf[a.To] {
			parent[find(a.From)] = find(a.To)
		}
	}
	roots := map[int]int32{}
	for i := range tr.Stmts {
		id := cuOf[i]
		if id < 0 {
			continue
		}
		r := find(int32(i))
		if prev, ok := roots[id]; ok && prev != r {
			bad[id] = true
		} else if !ok {
			roots[id] = r
		}
	}

	var out []int
	for id := range bad {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
