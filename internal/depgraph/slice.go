package depgraph

import "sort"

// Dynamic program slicing over the d-PDG. The paper defines its td-PDG as
// "identical to a dynamic dependence graph defined by Agrawal and Horgan"
// [1], whose purpose is slicing: the backward slice of a dynamic statement
// is every statement that influenced it through true, control, or — across
// threads — conflict dependences. In the post-mortem scenario the slice of
// the crashing statement is the execution's causal history, which is what
// a programmer walks after SVD's log has pointed at a suspicious read.

// SliceKinds selects which dependence kinds a slice follows.
type SliceKinds struct {
	True     bool // true dependences (E_l and E_s)
	Control  bool // control dependences (E_c)
	Conflict bool // inter-thread conflict dependences (E_h)
}

// AllSliceKinds follows everything — the full causal history.
func AllSliceKinds() SliceKinds { return SliceKinds{True: true, Control: true, Conflict: true} }

// BackwardSlice returns the indices of the statements the given statement
// transitively depends on (including itself), sorted ascending.
func (g *Graph) BackwardSlice(stmt int32, kinds SliceKinds) []int32 {
	follow := func(k ArcKind) bool {
		switch k {
		case TrueLocal, TrueShared:
			return kinds.True
		case Control:
			return kinds.Control
		case Conflict:
			return kinds.Conflict
		}
		return false
	}
	// Dependence arcs point backward in time (From depends on To), so the
	// backward slice walks From -> To edges.
	succs := make(map[int32][]int32)
	for _, a := range g.Arcs {
		if follow(a.Kind) {
			succs[a.From] = append(succs[a.From], a.To)
		}
	}
	seen := map[int32]bool{stmt: true}
	work := []int32{stmt}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range succs[n] {
			if !seen[m] {
				seen[m] = true
				work = append(work, m)
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForwardSlice returns the statements transitively influenced by the given
// statement (including itself), sorted ascending — the impact set of a
// write, useful for asking "what did this corrupted value reach?".
func (g *Graph) ForwardSlice(stmt int32, kinds SliceKinds) []int32 {
	follow := func(k ArcKind) bool {
		switch k {
		case TrueLocal, TrueShared:
			return kinds.True
		case Control:
			return kinds.Control
		case Conflict:
			return kinds.Conflict
		}
		return false
	}
	preds := make(map[int32][]int32)
	for _, a := range g.Arcs {
		if follow(a.Kind) {
			preds[a.To] = append(preds[a.To], a.From)
		}
	}
	seen := map[int32]bool{stmt: true}
	work := []int32{stmt}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range preds[n] {
			if !seen[m] {
				seen[m] = true
				work = append(work, m)
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
