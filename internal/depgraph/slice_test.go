package depgraph

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

// sliceTrace builds a two-thread execution with a clean dependence shape:
//
//	T0: li r8,1; store r8->[100]; li r9,5; store r9->[101]
//	T1: load r10<-[100]; addi r10; store r10->[102]
//
// run serialized so T1 sees T0's write (a conflict arc).
func sliceTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := &isa.Program{Name: "slice", Entries: []int64{0, 5}, Code: []isa.Instr{
		0: isa.LI(8, 1),
		1: isa.Store(8, isa.RegZero, 100),
		2: isa.LI(9, 5),
		3: isa.Store(9, isa.RegZero, 101),
		4: isa.Halt(),
		5: isa.Load(10, isa.RegZero, 100),
		6: isa.Addi(10, 10, 1),
		7: isa.Store(10, isa.RegZero, 102),
		8: isa.Halt(),
	}}
	m, err := vm.New(p, vm.Config{NumCPUs: 2, Mode: vm.Serialize})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(rec)
	if _, err := m.Run(1 << 12); err != nil {
		t.Fatal(err)
	}
	return rec.Trace()
}

// stmtAt finds the trace index of the statement with the given PC.
func stmtAt(t *testing.T, tr *trace.Trace, pc int64) int32 {
	t.Helper()
	for i := range tr.Stmts {
		if tr.Stmts[i].PC == pc {
			return int32(i)
		}
	}
	t.Fatalf("no statement at pc %d", pc)
	return -1
}

func TestBackwardSliceFollowsChain(t *testing.T) {
	tr := sliceTrace(t)
	g := Build(tr)
	// The final store (pc 7) depends on the addi (6), the load (5), and —
	// through the conflict arc — T0's store (1) and its li (0). T0's
	// unrelated pair (2, 3) stays out.
	slice := g.BackwardSlice(stmtAt(t, tr, 7), AllSliceKinds())
	got := map[int64]bool{}
	for _, idx := range slice {
		got[tr.Stmts[idx].PC] = true
	}
	for _, pc := range []int64{7, 6, 5, 1, 0} {
		if !got[pc] {
			t.Errorf("slice missing pc %d (got %v)", pc, got)
		}
	}
	for _, pc := range []int64{2, 3} {
		if got[pc] {
			t.Errorf("slice contains unrelated pc %d", pc)
		}
	}
}

func TestBackwardSliceWithoutConflicts(t *testing.T) {
	tr := sliceTrace(t)
	g := Build(tr)
	// Without conflict arcs the slice stays inside T1.
	slice := g.BackwardSlice(stmtAt(t, tr, 7), SliceKinds{True: true, Control: true})
	for _, idx := range slice {
		if tr.Stmts[idx].CPU != 1 {
			t.Errorf("thread-local slice crossed threads at pc %d", tr.Stmts[idx].PC)
		}
	}
}

func TestForwardSliceImpact(t *testing.T) {
	tr := sliceTrace(t)
	g := Build(tr)
	// Everything downstream of T0's store to [100]: T1's load, addi, and
	// final store — but not T0's unrelated pair.
	slice := g.ForwardSlice(stmtAt(t, tr, 1), AllSliceKinds())
	got := map[int64]bool{}
	for _, idx := range slice {
		got[tr.Stmts[idx].PC] = true
	}
	for _, pc := range []int64{1, 5, 6, 7} {
		if !got[pc] {
			t.Errorf("forward slice missing pc %d", pc)
		}
	}
	if got[2] || got[3] {
		t.Error("forward slice contains unrelated statements")
	}
}

func TestWriteDot(t *testing.T) {
	tr := sliceTrace(t)
	g := Build(tr)
	cuOf := OperationalCUs(tr)
	var buf strings.Builder
	if err := g.WriteDot(&buf, cuOf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The slice trace is straight-line code with an inter-thread
	// communication: true-local (black) and conflict (orange) arcs.
	for _, want := range []string{
		"digraph dpdg {", "color=orange", "color=black", "->", "}",
		fmt.Sprintf("n%d", len(tr.Stmts)-1),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// Every arc endpoint must reference a declared node.
	if strings.Count(out, "[label=") != len(tr.Stmts) {
		t.Errorf("node count mismatch: %d labels for %d stmts",
			strings.Count(out, "[label="), len(tr.Stmts))
	}
	// nil cuOf also renders.
	var buf2 strings.Builder
	if err := g.WriteDot(&buf2, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "cu0") {
		t.Error("nil cuOf still printed unit labels")
	}
}

func TestSliceIncludesControlDependences(t *testing.T) {
	p := &isa.Program{Name: "ctrl", Entries: []int64{0}, Code: []isa.Instr{
		0: isa.LI(8, 1),
		1: isa.Beqz(8, 4),
		2: isa.LI(9, 7),
		3: isa.Store(9, isa.RegZero, 100),
		4: isa.Halt(),
	}}
	m, err := vm.New(p, vm.Config{NumCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := trace.NewRecorder(p, 1, 0)
	m.Attach(rec)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	g := Build(tr)
	slice := g.BackwardSlice(stmtAt(t, tr, 3), AllSliceKinds())
	got := map[int64]bool{}
	for _, idx := range slice {
		got[tr.Stmts[idx].PC] = true
	}
	// The store is control dependent on the branch, which depends on the li.
	for _, pc := range []int64{3, 2, 1, 0} {
		if !got[pc] {
			t.Errorf("slice missing pc %d", pc)
		}
	}
	noCtrl := g.BackwardSlice(stmtAt(t, tr, 3), SliceKinds{True: true})
	for _, idx := range noCtrl {
		if tr.Stmts[idx].PC == 1 {
			t.Error("true-only slice followed a control arc")
		}
	}
}
