package frd

import (
	"fmt"

	"repro/internal/vm"
)

// StepColumns processes one columnar batch (vm.ColumnObserver),
// bit-identical to StepBatch on the equivalent rows. The happens-before
// detector only looks at memory operations, and the columnar form makes
// the skip cheap: rows whose flags carry neither load nor store are
// rejected on the flags column alone — one byte test, no program
// indexing, no Event materialized. The opcode test stays behind it as
// the authoritative filter: the flags byte and the opcode agree on
// every row the VM emits and the validating wire decoder (which
// enforces the per-PC flag class, see wire.Deframer) lets through, so
// the pre-skip never rejects a row the opcode test would keep.
//
// Bounds checks on PC are hoisted out of the row loop exactly as in
// svd.StepColumns: one OR-fold proves every PC in range before any row
// executes, and a failing batch poisons the detector (BatchErr reports
// a vm.ErrBadBatch; later batches are dropped) instead of half-applying.
//
// Block ids come from the batch's Blocks column when its shift matches
// ours, skipping the per-row shift the producer already paid for.
func (d *Detector) StepColumns(eb *vm.EventBatch) {
	if d.batchErr != nil {
		return
	}
	n := eb.Len()
	code := d.prog.Code
	codeLen := int64(len(code))
	var or int64
	for _, pc := range eb.PC {
		or |= pc | (codeLen - 1 - pc)
	}
	if or < 0 {
		d.batchErr = fmt.Errorf("%w: pc outside program of %d instructions", vm.ErrBadBatch, codeLen)
		return
	}
	// Bulk-advance like StepBatch: recorder timestamps within a batch
	// already see the post-batch count on the row path, so the columnar
	// path matches it, not per-event Step.
	d.stats.Instructions += uint64(n)
	shift := d.opts.BlockShift
	blocks := eb.Blocks
	if s, on := eb.BlockShift(); !on || s != shift {
		blocks = nil
	}
	// Materialized in place per memory row; hoisted for the same reason
	// as svd.StepColumns — overwriting one stack slot beats building a
	// fresh ~72-byte struct through a temporary on every row.
	var ev vm.Event
	for k := 0; k < n; k++ {
		flags := eb.Flags[k]
		if flags&(vm.FlagLoad|vm.FlagStore) == 0 {
			continue
		}
		pc := eb.PC[k]
		in := code[pc]
		if !in.Op.IsMem() {
			continue
		}
		ev.Seq = eb.Seq[k]
		ev.CPU = int(eb.CPU[k])
		ev.PC = pc
		ev.Instr = in
		ev.Addr = eb.Addr[k]
		ev.IsLoad = flags&vm.FlagLoad != 0
		ev.IsStore = flags&vm.FlagStore != 0
		ev.Loaded = eb.Loaded[k]
		ev.Stored = eb.Stored[k]
		ev.Taken = flags&vm.FlagTaken != 0
		var b int64
		if blocks != nil {
			b = blocks[k]
		} else {
			b = ev.Addr >> shift
		}
		d.stepMem(&ev, b)
	}
}
