package frd

import "repro/internal/vm"

// StepColumns processes one columnar batch (vm.ColumnObserver),
// bit-identical to StepBatch on the equivalent rows. The happens-before
// detector only looks at memory operations, and the columnar form makes
// the skip cheap: non-memory rows are rejected on the rebound opcode
// alone, without materializing an Event. The test is on the opcode, not
// the flags byte — a hostile wire stream can carry a CAS row with
// neither flag set, and step() still applies its sync annotation to
// such an event, so filtering on flags would diverge from the row path.
func (d *Detector) StepColumns(eb *vm.EventBatch) {
	n := eb.Len()
	// Bulk-advance like StepBatch: recorder timestamps within a batch
	// already see the post-batch count on the row path, so the columnar
	// path matches it, not per-event Step.
	d.stats.Instructions += uint64(n)
	code := d.prog.Code
	// Materialized in place per memory row; hoisted for the same reason
	// as svd.StepColumns — overwriting one stack slot beats building a
	// fresh ~72-byte struct through a temporary on every row.
	var ev vm.Event
	for k := 0; k < n; k++ {
		pc := eb.PC[k]
		in := code[pc]
		if !in.Op.IsMem() {
			continue
		}
		flags := eb.Flags[k]
		ev.Seq = eb.Seq[k]
		ev.CPU = int(eb.CPU[k])
		ev.PC = pc
		ev.Instr = in
		ev.Addr = eb.Addr[k]
		ev.IsLoad = flags&vm.FlagLoad != 0
		ev.IsStore = flags&vm.FlagStore != 0
		ev.Loaded = eb.Loaded[k]
		ev.Stored = eb.Stored[k]
		ev.Taken = flags&vm.FlagTaken != 0
		d.step(&ev)
	}
}
