// Package frd implements the Frontier Race Detector, the paper's baseline
// (§6.2): a two-pass happens-before data-race detector.
//
// The paper's FRD first computes frontier races — the tightest conflicting
// access pairs not causally ordered by other conflicting accesses [Choi &
// Min 1991] — and asks the programmer to annotate each as a synchronization
// race or a data race; the second pass is then a standard happens-before
// (Lamport) race detector that treats the annotated synchronization
// accesses as ordering operations. The two-pass design exists only because
// synchronization operations are unlabeled in SPARC binaries.
//
// This reproduction keeps both halves: the Frontier function implements the
// first pass over a recorded access trace, and Detector implements the
// second pass online with vector clocks. Annotation is automatic — blocks
// touched by compare-and-swap instructions are synchronization (our ISA
// makes lock words identifiable) — which, exactly as in the paper's
// methodology, favors FRD over SVD: FRD gets the a priori annotations that
// SVD never needs.
package frd

import (
	"fmt"
	mathbits "math/bits"
	"sort"

	"repro/internal/blockstore"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Options tune the detector.
type Options struct {
	// BlockShift selects block size as 1<<BlockShift words (word-size by
	// default, matching §6.2 "to avoid false sharing, we use word-size
	// blocks in SVD and FRD").
	BlockShift uint

	// SyncBlocks are extra a priori synchronization annotations beyond the
	// automatic CAS rule.
	SyncBlocks []int64

	// MaxRaces caps retained dynamic race records (counting continues).
	// Zero means 1 << 16.
	MaxRaces int

	// SparseBlockTable keeps block metadata in a hash map instead of the
	// paged flat store — the escape hatch for sparse address spaces.
	SparseBlockTable bool

	// NoInterestIndex disables the per-block reader interest set: every
	// write scans every thread's read epoch, as in the original
	// implementation. Debug and differential-testing knob; the indexed
	// path scans exactly the threads holding a valid read epoch, which is
	// output-identical.
	NoInterestIndex bool

	// Witness turns on the violation flight recorder (DESIGN.md §9),
	// symmetric with svd.Options.Witness: each thread keeps a bounded
	// ring of its recent data accesses, and every reported race is paired
	// with an obs.Witness carrying the racy pair and the interleaving
	// window sliced from the rings.
	Witness bool

	// WitnessRing sets the per-thread access-ring capacity when Witness is
	// on. Zero means obs.DefaultWitnessRing.
	WitnessRing int

	// Recorder attaches the telemetry layer (internal/obs): race events
	// and end-of-run block-store occupancy. Nil keeps the hot path free
	// of telemetry work beyond one nil check per report.
	Recorder *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.MaxRaces <= 0 {
		o.MaxRaces = 1 << 16
	}
	if o.WitnessRing <= 0 {
		o.WitnessRing = obs.DefaultWitnessRing
	}
	return o
}

// Race is one dynamic data race: two conflicting accesses to Block,
// unordered by the happens-before relation.
type Race struct {
	Block int64

	// The earlier access.
	FirstPC  int64
	FirstCPU int
	FirstSeq uint64
	FirstWr  bool

	// The later access (the one that detected the race).
	SecondPC  int64
	SecondCPU int
	SecondSeq uint64
	SecondWr  bool
}

// String renders the race for reports.
func (r Race) String() string {
	return fmt.Sprintf("data race on block %d: cpu %d pc %d (seq %d, write=%v) unordered with cpu %d pc %d (seq %d, write=%v)",
		r.Block, r.FirstCPU, r.FirstPC, r.FirstSeq, r.FirstWr,
		r.SecondCPU, r.SecondPC, r.SecondSeq, r.SecondWr)
}

// SiteKey is the composite static identity of a race site: the canonically
// ordered PC pair. Consumers aggregating sites across detectors must key on
// this struct — packing the pair into one integer aliases distinct sites
// once PCs outgrow the packing shift.
type SiteKey struct {
	PCLow, PCHigh int64 // canonical order: PCLow <= PCHigh
}

// Site aggregates dynamic races by the static PC pair involved; this is the
// static-false-positive axis of Table 2.
type Site struct {
	PCLow, PCHigh int64 // canonical order: PCLow <= PCHigh
	Count         uint64
	First         Race
}

// Key returns the site's composite static identity.
func (s Site) Key() SiteKey { return SiteKey{PCLow: s.PCLow, PCHigh: s.PCHigh} }

// Stats aggregates detector activity.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	SyncOps      uint64 // accesses treated as synchronization
	Races        uint64 // dynamic race instances (pre-cap)
	Witnesses    uint64 // race witnesses assembled (== Races with Options.Witness)

	// Remote-propagation counters: per non-sync write the detector owes
	// NumCPUs-1 potential read-epoch probes; RemoteSent counts the ones
	// performed and RemoteSkipped the ones the reader interest set proved
	// unnecessary (always zero with NoInterestIndex). Sent+Skipped is
	// path-independent.
	RemoteSent    uint64
	RemoteSkipped uint64
}

// Add accumulates o into s field-wise. report.MergeSamples uses it to
// fold detector counters across parallel sample runs.
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.SyncOps += o.SyncOps
	s.Races += o.Races
	s.Witnesses += o.Witnesses
	s.RemoteSent += o.RemoteSent
	s.RemoteSkipped += o.RemoteSkipped
}

type epoch struct {
	clock uint64
	pc    int64
	seq   uint64
	valid bool
}

type blockInfo struct {
	write    epoch // last write epoch, indexed by writer
	writeCPU int
	reads    []epoch // per-CPU last read epochs

	// readers is the interest set over reads: thread t is a member iff
	// reads[t].valid (over-approximate for t >= 64). Writes scan only the
	// members instead of all NumCPUs epochs.
	readers blockstore.ThreadSet

	releaseVC vclock // sync blocks: the release clock
	isSync    bool
}

// Detector is the online happens-before pass. It implements vm.Observer.
type Detector struct {
	prog     *isa.Program
	opts     Options
	rec      *obs.Recorder // telemetry hooks; nil when disabled
	numCPUs  int
	useIndex bool // maintain and consult blockInfo.readers

	vc     []vclock
	blocks *blockstore.Store[blockInfo]

	// rings are the per-thread flight-recorder buffers; nil unless
	// Options.Witness.
	rings []*obs.AccessRing

	races     []Race
	witnesses []obs.Witness
	sites     map[SiteKey]*Site
	stats     Stats

	// MRU cache over blockInfo: the last two blocks' resolved slots, so
	// the block-local access runs the detectors' workloads exhibit skip
	// the page (or map) lookup and the lazy reads check. No invalidation
	// is needed — FRD never deletes block slots, and Reset rebuilds the
	// whole detector. Scalar fields (not a [2]-array) keep the hit path
	// within the inliner's budget, as in svd.threadState.
	cb0, cb1   int64
	cbp0, cbp1 *blockInfo

	// batchErr, once set, poisons the columnar path: StepColumns drops
	// every later batch. See StepColumns.
	batchErr error
}

// New builds a detector for prog across numCPUs processors.
func New(prog *isa.Program, numCPUs int, opts Options) *Detector {
	d := &Detector{
		prog:     prog,
		opts:     opts.withDefaults(),
		rec:      opts.Recorder,
		numCPUs:  numCPUs,
		useIndex: !opts.NoInterestIndex,
		vc:       make([]vclock, numCPUs),
		blocks:   blockstore.New[blockInfo](blockstore.Options{Sparse: opts.SparseBlockTable}),
		sites:    make(map[SiteKey]*Site),
	}
	for i := range d.vc {
		d.vc[i] = newVClock(numCPUs)
		d.vc[i][i] = 1
	}
	if d.opts.Witness {
		d.rings = make([]*obs.AccessRing, numCPUs)
		for i := range d.rings {
			d.rings[i] = obs.NewAccessRing(d.opts.WitnessRing)
		}
	}
	for _, b := range opts.SyncBlocks {
		d.blockInfo(b >> opts.BlockShift).isSync = true
	}
	return d
}

// Reset discards all detector state.
func (d *Detector) Reset() {
	*d = *New(d.prog, d.numCPUs, d.opts)
}

// Races returns retained dynamic race records.
func (d *Detector) Races() []Race { return d.races }

// Witnesses returns the retained race witnesses. With Options.Witness the
// slice pairs one-for-one with Races(); without it the slice is nil.
func (d *Detector) Witnesses() []obs.Witness { return d.witnesses }

// Stats returns aggregate counters.
func (d *Detector) Stats() Stats { return d.stats }

// BatchErr returns the sticky columnar-path error: non-nil once a batch
// failed StepColumns's preflight, after which every batch is dropped.
// The per-event path is unaffected.
func (d *Detector) BatchErr() error { return d.batchErr }

// Sites returns race sites sorted by descending dynamic count.
func (d *Detector) Sites() []Site {
	out := make([]Site, 0, len(d.sites))
	for _, s := range d.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].PCLow != out[j].PCLow {
			return out[i].PCLow < out[j].PCLow
		}
		return out[i].PCHigh < out[j].PCHigh
	})
	return out
}

func (d *Detector) blockInfo(b int64) *blockInfo {
	bi := d.blocks.Ensure(b)
	if bi.reads == nil {
		// Flat pages materialize zero-valued slots; the per-CPU read
		// epochs are attached on a block's first real access.
		bi.reads = make([]epoch, d.numCPUs)
	}
	return bi
}

// blockInfoCached resolves a block through the MRU cache; the repeat-
// access hit is one compare and inlines into the access path.
func (d *Detector) blockInfoCached(b int64) *blockInfo {
	bi := d.cbp0
	if bi == nil || d.cb0 != b {
		bi = d.blockInfoCachedSlow(b)
	}
	return bi
}

func (d *Detector) blockInfoCachedSlow(b int64) *blockInfo {
	if bi := d.cbp1; bi != nil && d.cb1 == b {
		// Promote to MRU so a two-block ping-pong hits on every access.
		d.cb1 = d.cb0
		d.cb0 = b
		d.cbp1 = d.cbp0
		d.cbp0 = bi
		return bi
	}
	bi := d.blockInfo(b)
	d.cb1 = d.cb0
	d.cb0 = b
	d.cbp1 = d.cbp0
	d.cbp0 = bi
	return bi
}

// Step processes one dynamic instruction (vm.Observer).
func (d *Detector) Step(ev *vm.Event) {
	d.stats.Instructions++
	d.step(ev)
}

// StepBatch processes a run of consecutive dynamic instructions
// (vm.BatchObserver). Output is bit-identical to feeding the events
// through Step one at a time.
func (d *Detector) StepBatch(evs []vm.Event) {
	d.stats.Instructions += uint64(len(evs))
	for i := range evs {
		d.step(&evs[i])
	}
}

func (d *Detector) step(ev *vm.Event) {
	in := ev.Instr
	if !in.Op.IsMem() {
		return
	}
	d.stepMem(ev, ev.Addr>>d.opts.BlockShift)
}

// stepMem processes one memory access whose block id the caller already
// holds — computed here on the per-event path, read from the batch's
// Blocks column on the columnar one.
func (d *Detector) stepMem(ev *vm.Event, b int64) {
	bi := d.blockInfoCached(b)

	// Automatic annotation: a block touched by CAS is a lock word.
	if ev.Instr.Op == isa.OpCas && !bi.isSync {
		bi.isSync = true
	}
	if bi.isSync {
		d.syncAccess(ev, bi)
		return
	}
	if ev.IsLoad {
		d.stats.Loads++
		d.read(ev, b, bi)
	}
	if ev.IsStore {
		d.stats.Stores++
		d.write(ev, b, bi)
	}
}

// syncAccess applies lock semantics: reading a sync block is an acquire
// (join the block's release clock into the thread), writing one is a
// release (publish the thread's clock), and either way the access is not a
// data access.
func (d *Detector) syncAccess(ev *vm.Event, bi *blockInfo) {
	d.stats.SyncOps++
	t := ev.CPU
	if ev.IsLoad {
		d.vc[t].join(bi.releaseVC)
	}
	if ev.IsStore {
		if bi.releaseVC == nil {
			bi.releaseVC = newVClock(d.numCPUs)
		}
		bi.releaseVC.join(d.vc[t])
		d.vc[t][t]++
	}
}

func (d *Detector) read(ev *vm.Event, b int64, bi *blockInfo) {
	t := ev.CPU
	if bi.write.valid && bi.writeCPU != t && bi.write.clock > d.vc[t][bi.writeCPU] {
		d.report(b, bi.write, bi.writeCPU, true, ev, false)
	}
	if d.useIndex && !bi.reads[t].valid {
		bi.readers.Add(t)
	}
	bi.reads[t] = epoch{clock: d.vc[t][t], pc: ev.PC, seq: ev.Seq, valid: true}
	if d.rings != nil {
		d.rings[t].Add(obs.WitnessAccess{CPU: t, PC: ev.PC, Block: b, Seq: ev.Seq})
	}
}

func (d *Detector) write(ev *vm.Event, b int64, bi *blockInfo) {
	t := ev.CPU
	if bi.write.valid && bi.writeCPU != t && bi.write.clock > d.vc[t][bi.writeCPU] {
		d.report(b, bi.write, bi.writeCPU, true, ev, true)
	}
	peers := uint64(d.numCPUs - 1)
	if d.useIndex {
		// Probe and invalidate only the threads the reader set names: bits
		// ascending, then (if any high-id thread holds a read) every thread
		// >= 64 — the same ascending order, restricted to the threads with
		// valid epochs, as the full scan, so races report identically.
		var sent uint64
		for rest := bi.readers.Bits(); rest != 0; rest &= rest - 1 {
			cpu := mathbits.TrailingZeros64(rest)
			r := bi.reads[cpu]
			if r.valid && cpu != t && r.clock > d.vc[t][cpu] {
				d.report(b, r, cpu, false, ev, true)
			}
			bi.reads[cpu].valid = false
			if cpu != t {
				sent++
			}
		}
		if bi.readers.HasHigh() {
			for cpu := 64; cpu < d.numCPUs; cpu++ {
				r := bi.reads[cpu]
				if r.valid && cpu != t && r.clock > d.vc[t][cpu] {
					d.report(b, r, cpu, false, ev, true)
				}
				bi.reads[cpu].valid = false
				if cpu != t {
					sent++
				}
			}
		}
		bi.readers.Clear()
		d.stats.RemoteSent += sent
		d.stats.RemoteSkipped += peers - sent
	} else {
		for cpu := range bi.reads {
			r := bi.reads[cpu]
			if r.valid && cpu != t && r.clock > d.vc[t][cpu] {
				d.report(b, r, cpu, false, ev, true)
			}
		}
		// The new write supersedes previous reads as the frontier of this
		// block's access history.
		for cpu := range bi.reads {
			bi.reads[cpu].valid = false
		}
		d.stats.RemoteSent += peers
	}
	bi.write = epoch{clock: d.vc[t][t], pc: ev.PC, seq: ev.Seq, valid: true}
	bi.writeCPU = t
	if d.rings != nil {
		d.rings[t].Add(obs.WitnessAccess{CPU: t, PC: ev.PC, Block: b, Write: true, Seq: ev.Seq})
	}
}

// FlushObs records the block store's end-of-run occupancy into the
// attached recorder; the harness calls it once after a run.
func (d *Detector) FlushObs() {
	if d.rec == nil {
		return
	}
	slots, pages, overflow := d.blocks.PageStats()
	d.rec.ObserveStore(0, pages, slots+overflow, -1)
	d.rec.ObserveRemote(d.stats.RemoteSent, d.stats.RemoteSkipped)
}

func (d *Detector) report(b int64, first epoch, firstCPU int, firstWr bool, ev *vm.Event, secondWr bool) {
	d.stats.Races++
	if r := d.rec; r != nil {
		r.Race(d.stats.Instructions, ev.CPU, ev.PC, b)
	}
	r := Race{
		Block:     b,
		FirstPC:   first.pc,
		FirstCPU:  firstCPU,
		FirstSeq:  first.seq,
		FirstWr:   firstWr,
		SecondPC:  ev.PC,
		SecondCPU: ev.CPU,
		SecondSeq: ev.Seq,
		SecondWr:  secondWr,
	}
	key := SiteKey{PCLow: r.FirstPC, PCHigh: r.SecondPC}
	if key.PCLow > key.PCHigh {
		key.PCLow, key.PCHigh = key.PCHigh, key.PCLow
	}
	s := d.sites[key]
	if s == nil {
		s = &Site{PCLow: key.PCLow, PCHigh: key.PCHigh, First: r}
		d.sites[key] = s
	}
	s.Count++
	if d.opts.Witness {
		w := d.buildWitness(r)
		d.stats.Witnesses++
		if rec := d.rec; rec != nil {
			rec.Witness(&w)
		}
		// Same cap and same order as the races slice, so retained witnesses
		// pair with retained races index-for-index.
		if len(d.witnesses) < d.opts.MaxRaces {
			d.witnesses = append(d.witnesses, w)
		}
	}
	if len(d.races) < d.opts.MaxRaces {
		d.races = append(d.races, r)
	}
}

// buildWitness captures the evidence behind one race: the racy pair and
// the interleaving window sliced from both threads' access rings. Runs
// only at report time.
func (d *Detector) buildWitness(r Race) obs.Witness {
	w := obs.Witness{
		Detector: "frd",
		Seq:      r.SecondSeq,
		CPU:      r.SecondCPU,
		PC:       r.SecondPC,
		Block:    r.Block,
		Conflict: obs.WitnessAccess{
			CPU:   r.FirstCPU,
			PC:    r.FirstPC,
			Block: r.Block,
			Write: r.FirstWr,
			Seq:   r.FirstSeq,
		},
	}
	local := d.rings[r.SecondCPU].Snapshot(r.SecondSeq, nil)
	var remote []obs.WitnessAccess
	if r.FirstCPU != r.SecondCPU {
		remote = d.rings[r.FirstCPU].Snapshot(r.SecondSeq, nil)
	}
	win := obs.MergeWindow(local, remote, d.opts.WitnessRing-1)
	// The reporting access enters its ring only after the race check, so
	// close the window with it explicitly.
	win = append(win, obs.WitnessAccess{CPU: r.SecondCPU, PC: r.SecondPC, Block: r.Block, Write: r.SecondWr, Seq: r.SecondSeq})
	present := false
	for i := range win {
		if win[i].Seq == r.FirstSeq && win[i].CPU == r.FirstCPU {
			present = true
			break
		}
	}
	if !present {
		// Everything retained is newer than an evicted first access, so
		// prepending keeps the window sorted.
		win = append([]obs.WitnessAccess{w.Conflict}, win...)
	}
	w.Window = win
	return w
}
