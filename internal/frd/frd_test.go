package frd

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

type script struct {
	d   *Detector
	seq uint64
}

func newScript(numCPUs int, opts Options) *script {
	return &script{d: New(&isa.Program{Name: "s", Code: make([]isa.Instr, 64)}, numCPUs, opts)}
}

func (s *script) mem(cpu int, pc int64, addr int64, load, store, cas bool) {
	in := isa.Load(8, isa.RegZero, addr)
	if cas {
		in = isa.Cas(8, 9, 10, 11)
	} else if store {
		in = isa.Store(8, isa.RegZero, addr)
	}
	ev := vm.Event{Seq: s.seq, CPU: cpu, PC: pc, Instr: in, Addr: addr, IsLoad: load, IsStore: store}
	s.seq++
	s.d.Step(&ev)
}

func (s *script) load(cpu int, pc, addr int64)  { s.mem(cpu, pc, addr, true, false, false) }
func (s *script) store(cpu int, pc, addr int64) { s.mem(cpu, pc, addr, false, true, false) }

// acquire/release model a lock through CAS + plain store the way workloads
// compile it.
func (s *script) acquire(cpu int, pc, addr int64) { s.mem(cpu, pc, addr, true, true, true) }
func (s *script) release(cpu int, pc, addr int64) { s.mem(cpu, pc, addr, false, true, false) }

func TestWriteReadRace(t *testing.T) {
	s := newScript(2, Options{})
	s.store(0, 1, 100)
	s.load(1, 2, 100)
	if got := s.d.Stats().Races; got != 1 {
		t.Fatalf("races = %d, want 1", got)
	}
	r := s.d.Races()[0]
	if !r.FirstWr || r.SecondWr || r.FirstPC != 1 || r.SecondPC != 2 {
		t.Errorf("race = %+v", r)
	}
}

func TestWriteWriteRace(t *testing.T) {
	s := newScript(2, Options{})
	s.store(0, 1, 100)
	s.store(1, 2, 100)
	if got := s.d.Stats().Races; got != 1 {
		t.Fatalf("races = %d, want 1", got)
	}
	if r := s.d.Races()[0]; !r.FirstWr || !r.SecondWr {
		t.Errorf("race = %+v", r)
	}
}

func TestReadWriteRace(t *testing.T) {
	s := newScript(2, Options{})
	s.load(0, 1, 100)
	s.store(1, 2, 100)
	if got := s.d.Stats().Races; got != 1 {
		t.Fatalf("races = %d, want 1", got)
	}
	if r := s.d.Races()[0]; r.FirstWr || !r.SecondWr {
		t.Errorf("race = %+v", r)
	}
}

func TestReadReadNoRace(t *testing.T) {
	s := newScript(2, Options{})
	s.load(0, 1, 100)
	s.load(1, 2, 100)
	if got := s.d.Stats().Races; got != 0 {
		t.Errorf("read-read reported %d races", got)
	}
}

func TestSameThreadNoRace(t *testing.T) {
	s := newScript(2, Options{})
	s.store(0, 1, 100)
	s.load(0, 2, 100)
	s.store(0, 3, 100)
	if got := s.d.Stats().Races; got != 0 {
		t.Errorf("same-thread accesses reported %d races", got)
	}
}

// TestLockOrdersAccesses: conflicting accesses separated by a release →
// acquire edge on a CAS lock are ordered: no race.
func TestLockOrdersAccesses(t *testing.T) {
	s := newScript(2, Options{})
	const lock, x = 10, 100
	s.acquire(0, 1, lock)
	s.store(0, 2, x)
	s.release(0, 3, lock)
	s.acquire(1, 1, lock) // joins T0's release clock
	s.load(1, 4, x)
	s.store(1, 5, x)
	s.release(1, 3, lock)
	if got := s.d.Stats().Races; got != 0 {
		for _, r := range s.d.Races() {
			t.Logf("race: %s", r)
		}
		t.Errorf("lock-ordered accesses reported %d races", got)
	}
	if got := s.d.Stats().SyncOps; got != 4 {
		t.Errorf("sync ops = %d, want 4", got)
	}
}

// TestUnlockedAccessRaces: an access outside the lock still races with the
// locked ones — the Figure 1 shape where FRD reports the benign race that
// SVD does not.
func TestUnlockedAccessRaces(t *testing.T) {
	s := newScript(2, Options{})
	const lock, tot = 10, 100
	s.acquire(0, 1, lock)
	s.store(0, 2, tot)
	s.release(0, 3, lock)
	s.load(1, 7, tot) // no acquire first: unordered with T0's store
	if got := s.d.Stats().Races; got != 1 {
		t.Fatalf("races = %d, want 1", got)
	}
	r := s.d.Races()[0]
	if r.FirstPC != 2 || r.SecondPC != 7 {
		t.Errorf("race = %+v", r)
	}
}

// TestExplicitSyncAnnotation: blocks listed in Options.SyncBlocks order
// accesses even without CAS.
func TestExplicitSyncAnnotation(t *testing.T) {
	s := newScript(2, Options{SyncBlocks: []int64{10}})
	s.store(0, 1, 100)
	s.release(0, 2, 10)
	s.load(1, 3, 10) // acquire via plain load of the annotated block
	s.load(1, 4, 100)
	if got := s.d.Stats().Races; got != 0 {
		t.Errorf("annotated sync did not order accesses: %d races", got)
	}
}

// TestTransitiveOrder: ordering established through a third thread is
// honored (vector clocks, not just direct edges).
func TestTransitiveOrder(t *testing.T) {
	s := newScript(3, Options{})
	const l1, l2, x = 10, 11, 100
	s.acquire(0, 0, l1) // locks are CAS-acquired before being released
	s.store(0, 1, x)
	s.release(0, 2, l1)
	s.acquire(1, 3, l1)
	s.acquire(1, 4, l2)
	s.release(1, 5, l2)
	s.acquire(2, 6, l2)
	s.load(2, 7, x) // ordered after T0's store through T1
	if got := s.d.Stats().Races; got != 0 {
		t.Errorf("transitive order missed: %d races", got)
	}
}

// TestDynamicCountsAndSites: repeated racy pairs aggregate by PC pair. The
// first iteration produces one write-read race; every later iteration adds
// both a read-write race (previous read vs new store) and a write-read
// race, all folding into one static site.
func TestDynamicCountsAndSites(t *testing.T) {
	s := newScript(2, Options{})
	for i := 0; i < 4; i++ {
		s.store(0, 1, 100)
		s.load(1, 2, 100)
	}
	st := s.d.Stats()
	if st.Races != 7 {
		t.Errorf("dynamic races = %d, want 7", st.Races)
	}
	sites := s.d.Sites()
	if len(sites) != 1 || sites[0].Count != 7 {
		t.Errorf("sites = %+v", sites)
	}
	if sites[0].PCLow != 1 || sites[0].PCHigh != 2 {
		t.Errorf("site PCs = %d,%d", sites[0].PCLow, sites[0].PCHigh)
	}
}

func TestRaceCap(t *testing.T) {
	s := newScript(2, Options{MaxRaces: 2})
	for i := 0; i < 5; i++ {
		s.store(0, 1, 100)
		s.load(1, 2, 100)
	}
	if got := len(s.d.Races()); got != 2 {
		t.Errorf("retained %d races, want 2", got)
	}
	if got := s.d.Stats().Races; got != 9 {
		t.Errorf("counted %d races, want 9 (1 + 2 per later iteration)", got)
	}
}

func TestReset(t *testing.T) {
	s := newScript(2, Options{})
	s.store(0, 1, 100)
	s.load(1, 2, 100)
	s.d.Reset()
	if s.d.Stats().Races != 0 || len(s.d.Races()) != 0 || len(s.d.Sites()) != 0 {
		t.Error("reset left state")
	}
	// Detector still functional after reset.
	s.store(0, 1, 100)
	s.load(1, 2, 100)
	if s.d.Stats().Races != 1 {
		t.Error("detector broken after reset")
	}
}

func TestBlockShiftFalseSharing(t *testing.T) {
	s := newScript(2, Options{BlockShift: 2})
	s.store(0, 1, 100)
	s.load(1, 2, 102) // same 4-word block
	if got := s.d.Stats().Races; got != 1 {
		t.Errorf("false sharing with 4-word blocks: %d races, want 1", got)
	}
}

func TestVClock(t *testing.T) {
	a, b := newVClock(3), newVClock(3)
	a[0], a[1] = 2, 1
	b[0], b[1], b[2] = 2, 3, 1
	if !a.happensBefore(b) {
		t.Error("a should happen before b")
	}
	if b.happensBefore(a) {
		t.Error("b should not happen before a")
	}
	if a.happensBefore(a.clone()) {
		t.Error("equal clocks are not ordered")
	}
	c := a.clone()
	c.join(b)
	for i := range c {
		if c[i] < a[i] || c[i] < b[i] {
			t.Fatalf("join not supremum: %v", c)
		}
	}
}

func TestFrontierStaircase(t *testing.T) {
	// T0 writes X then Y; T1 reads Y then X. The frontier between the
	// threads: (writeY, readY) is minimal; (writeX, readX) is also
	// minimal because readX's partner writeX precedes writeY.
	accs := []Access{
		{Seq: 0, CPU: 0, PC: 1, Block: 100, Write: true},  // write X
		{Seq: 1, CPU: 0, PC: 2, Block: 101, Write: true},  // write Y
		{Seq: 2, CPU: 1, PC: 3, Block: 101, Write: false}, // read Y
		{Seq: 3, CPU: 1, PC: 4, Block: 100, Write: false}, // read X
	}
	races := Frontier(accs)
	if len(races) != 2 {
		t.Fatalf("frontier = %d races, want 2: %+v", len(races), races)
	}
	if races[0].Block != 101 || races[1].Block != 100 {
		t.Errorf("frontier order wrong: %+v", races)
	}
}

func TestFrontierDominatedPairExcluded(t *testing.T) {
	// T0 writes X; T1 reads X twice. The second read's race is dominated
	// by the first read's race.
	accs := []Access{
		{Seq: 0, CPU: 0, PC: 1, Block: 100, Write: true},
		{Seq: 1, CPU: 1, PC: 2, Block: 100},
		{Seq: 2, CPU: 1, PC: 3, Block: 100},
	}
	races := Frontier(accs)
	if len(races) != 1 {
		t.Fatalf("frontier = %d races, want 1: %+v", len(races), races)
	}
	if races[0].SecondPC != 2 {
		t.Errorf("kept the dominated pair: %+v", races[0])
	}
}

func TestFrontierNoConflicts(t *testing.T) {
	accs := []Access{
		{Seq: 0, CPU: 0, PC: 1, Block: 100},
		{Seq: 1, CPU: 1, PC: 2, Block: 100},
		{Seq: 2, CPU: 0, PC: 3, Block: 101, Write: true},
		{Seq: 3, CPU: 1, PC: 4, Block: 102, Write: true},
	}
	if races := Frontier(accs); len(races) != 0 {
		t.Errorf("conflict-free trace produced %d frontier races", len(races))
	}
}

func TestDiscoverSync(t *testing.T) {
	accs := []Access{
		{Seq: 0, CPU: 0, PC: 1, Block: 10, Write: true, CAS: true}, // lock acquire
		{Seq: 1, CPU: 0, PC: 2, Block: 100, Write: true},           // data
		{Seq: 2, CPU: 1, PC: 1, Block: 10, Write: true, CAS: true}, // contended acquire
		{Seq: 3, CPU: 1, PC: 3, Block: 100},                        // data race
	}
	sync := DiscoverSync(accs)
	if len(sync) != 1 || sync[0] != 10 {
		t.Errorf("DiscoverSync = %v, want [10]", sync)
	}
}

// TestEndToEndLockedProgram: a properly locked program observed through the
// real VM is race-free under FRD.
func TestEndToEndLockedProgram(t *testing.T) {
	code := []isa.Instr{
		0:  isa.LI(8, 30),
		1:  isa.LI(9, 10),
		2:  isa.LI(10, 0),
		3:  isa.LI(11, 1),
		4:  isa.Cas(12, 9, 10, 11),
		5:  isa.Bnez(12, 8),
		6:  isa.Yield(),
		7:  isa.Jmp(4),
		8:  isa.Load(13, isa.RegZero, 0),
		9:  isa.Addi(13, 13, 1),
		10: isa.Store(13, isa.RegZero, 0),
		11: isa.Store(isa.RegZero, 9, 0),
		12: isa.Addi(8, 8, -1),
		13: isa.Bnez(8, 1),
		14: isa.Halt(),
	}
	p := &isa.Program{Name: "locked", Code: code, Entries: []int64{0, 0, 0}}
	m, err := vm.New(p, vm.Config{NumCPUs: 3, Seed: 2, MaxQuantum: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := New(p, 3, Options{})
	m.Attach(d)
	if _, err := m.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Races; got != 0 {
		for _, r := range d.Races() {
			t.Logf("race: %s", r)
		}
		t.Errorf("locked program reported %d races", got)
	}
}

// TestEndToEndRacyProgram: the unlocked counter must race.
func TestEndToEndRacyProgram(t *testing.T) {
	code := []isa.Instr{
		isa.LI(8, 30),
		isa.Load(9, isa.RegZero, 0),
		isa.Addi(9, 9, 1),
		isa.Store(9, isa.RegZero, 0),
		isa.Addi(8, 8, -1),
		isa.Bnez(8, 1),
		isa.Halt(),
	}
	p := &isa.Program{Name: "racy", Code: code, Entries: []int64{0, 0}}
	m, err := vm.New(p, vm.Config{NumCPUs: 2, Seed: 1, MaxQuantum: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := New(p, 2, Options{})
	m.Attach(d)
	if _, err := m.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Races == 0 {
		t.Error("racy program reported no races")
	}
}

func TestRaceString(t *testing.T) {
	r := Race{Block: 5, FirstPC: 1, SecondPC: 2}
	if r.String() == "" {
		t.Error("empty race string")
	}
}
