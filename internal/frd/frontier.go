package frd

import "sort"

// Access is one recorded memory access, the input to the frontier pass.
type Access struct {
	Seq   uint64 // global order
	CPU   int
	PC    int64
	Block int64
	Write bool
	CAS   bool // access made by a compare-and-swap instruction
}

// Frontier computes the frontier races of a recorded execution: for every
// ordered pair of threads, the minimal conflicting access pairs — pairs
// (a, b) with a before b such that no other conflicting pair (c, d) between
// the same threads has c at-or-before a and d at-or-before b in program
// order [Choi & Min, Race Frontier]. These are the "tightest" races the
// paper's FRD presents for synchronization/data annotation: every other
// race is causally downstream of a frontier race.
//
// The result is sorted by the second access's sequence number.
func Frontier(accs []Access) []Race {
	// Per thread, accesses in program order; per (thread, block), the
	// first access and first write.
	perThread := map[int][]Access{}
	for _, a := range accs {
		perThread[a.CPU] = append(perThread[a.CPU], a)
	}
	type firstKey struct {
		cpu   int
		block int64
	}
	type firsts struct {
		anyIdx, anySeq   int
		wrIdx, wrSeq     int
		hasAny, hasWrite bool
		any, wr          Access
	}
	first := map[firstKey]*firsts{}
	for cpu, list := range perThread {
		for i, a := range list {
			k := firstKey{cpu, a.Block}
			f := first[k]
			if f == nil {
				f = &firsts{}
				first[k] = f
			}
			if !f.hasAny {
				f.hasAny, f.anyIdx, f.anySeq, f.any = true, i, int(a.Seq), a
			}
			if a.Write && !f.hasWrite {
				f.hasWrite, f.wrIdx, f.wrSeq, f.wr = true, i, int(a.Seq), a
			}
		}
	}

	var out []Race
	for cpu1 := range perThread {
		for cpu2, list2 := range perThread {
			if cpu1 == cpu2 {
				continue
			}
			runningMin := int(^uint(0) >> 1) // +inf
			// Access traces are block-local, so memoize the last block's
			// firsts lookup: repeat blocks skip the map hash entirely. A
			// nil result is memoized too — absent partners repeat just as
			// hard.
			var lastB int64
			var lastF *firsts
			haveLast := false
			for _, b := range list2 {
				var f *firsts
				if haveLast && lastB == b.Block {
					f = lastF
				} else {
					f = first[firstKey{cpu1, b.Block}]
					haveLast, lastB, lastF = true, b.Block, f
				}
				if f == nil {
					continue
				}
				// The minimal conflicting partner in cpu1's program order:
				// any access when b writes, the first write when b reads.
				var idx, seq int
				var partner Access
				switch {
				case b.Write && f.hasAny && f.anySeq < int(b.Seq):
					idx, seq, partner = f.anyIdx, f.anySeq, f.any
				case !b.Write && f.hasWrite && f.wrSeq < int(b.Seq):
					idx, seq, partner = f.wrIdx, f.wrSeq, f.wr
				default:
					continue
				}
				_ = seq
				if idx < runningMin {
					runningMin = idx
					out = append(out, Race{
						Block:     b.Block,
						FirstPC:   partner.PC,
						FirstCPU:  partner.CPU,
						FirstSeq:  partner.Seq,
						FirstWr:   partner.Write,
						SecondPC:  b.PC,
						SecondCPU: b.CPU,
						SecondSeq: b.Seq,
						SecondWr:  b.Write,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SecondSeq != out[j].SecondSeq {
			return out[i].SecondSeq < out[j].SecondSeq
		}
		return out[i].FirstSeq < out[j].FirstSeq
	})
	return out
}

// DiscoverSync returns the blocks involved in frontier races in which
// either participant is a compare-and-swap access. This is the automated
// stand-in for the paper's manual annotation step: frontier races on
// CAS-managed blocks are synchronization races, everything else is a data
// race candidate.
func DiscoverSync(accs []Access) []int64 {
	casBlocks := map[int64]bool{}
	for _, a := range accs {
		if a.CAS {
			casBlocks[a.Block] = true
		}
	}
	seen := map[int64]bool{}
	var out []int64
	for _, r := range Frontier(accs) {
		if casBlocks[r.Block] && !seen[r.Block] {
			seen[r.Block] = true
			out = append(out, r.Block)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
