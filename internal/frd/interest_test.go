package frd

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// runFRD executes a workload with one detector attached and returns it.
func runFRD(t *testing.T, w *workloads.Workload, seed uint64, opts Options) *Detector {
	t.Helper()
	m, err := w.NewVM(seed)
	if err != nil {
		t.Fatal(err)
	}
	d := New(w.Prog, w.NumThreads, opts)
	m.Attach(d)
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestReaderIndexDifferential runs real workloads twice — once with the
// per-block reader interest set driving write-time scans, once scanning
// every thread's read epoch — and requires identical races, sites, and
// stats. A reader the index missed shows up here as a lost race.
func TestReaderIndexDifferential(t *testing.T) {
	cases := []struct {
		name string
		w    *workloads.Workload
	}{
		{"apache-buggy", workloads.ApacheLog(workloads.ApacheConfig{
			Threads: 4, Requests: 48, Buggy: true, Seed: 2,
		})},
		{"mysql-tables", workloads.MySQLTables(workloads.MySQLTablesConfig{
			Lockers: 3, Ops: 60,
		})},
		{"pgsql", workloads.PgSQLOLTP(workloads.PgSQLConfig{
			Warehouses: 2, Terminals: 4, Txns: 48, Seed: 2,
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				indexed := runFRD(t, tc.w, seed, Options{})
				full := runFRD(t, tc.w, seed, Options{NoInterestIndex: true})

				if !reflect.DeepEqual(indexed.Races(), full.Races()) {
					t.Errorf("seed %d: races diverge with reader index", seed)
				}
				if !reflect.DeepEqual(indexed.Sites(), full.Sites()) {
					t.Errorf("seed %d: sites diverge with reader index", seed)
				}
				is, fs := indexed.Stats(), full.Stats()
				if is.RemoteSent+is.RemoteSkipped != fs.RemoteSent {
					t.Errorf("seed %d: sent %d + skipped %d != full scan %d",
						seed, is.RemoteSent, is.RemoteSkipped, fs.RemoteSent)
				}
				if is.RemoteSkipped == 0 {
					t.Errorf("seed %d: index never skipped a probe", seed)
				}
				if fs.RemoteSkipped != 0 {
					t.Errorf("seed %d: fallback skipped %d probes", seed, fs.RemoteSkipped)
				}
				is.RemoteSent, fs.RemoteSent = 0, 0
				is.RemoteSkipped, fs.RemoteSkipped = 0, 0
				if is != fs {
					t.Errorf("seed %d: stats diverge:\nindexed %+v\nfull    %+v", seed, is, fs)
				}
			}
		})
	}
}

// TestReaderIndexInvariant: after any script, a block's reader set must
// hold exactly the threads with valid read epochs.
func TestReaderIndexInvariant(t *testing.T) {
	s := newScript(3, Options{})
	s.load(0, 1, 100)
	s.load(1, 2, 100)
	s.load(2, 3, 100)
	s.store(0, 4, 100) // invalidates all reads, races with 1 and 2
	s.load(1, 5, 100)
	check := func() {
		t.Helper()
		s.d.blocks.Range(func(b int64, bi *blockInfo) bool {
			for cpu := range bi.reads {
				if bi.reads[cpu].valid != bi.readers.Has(cpu) {
					t.Errorf("block %d cpu %d: valid=%v but indexed=%v",
						b, cpu, bi.reads[cpu].valid, bi.readers.Has(cpu))
				}
			}
			return true
		})
	}
	check()
	// Two write-read races at the store (threads 1 and 2's reads), plus
	// the unordered read of the new write at pc 5.
	if got := s.d.Stats().Races; got != 3 {
		t.Fatalf("races = %d, want 3", got)
	}
	// Repeated reads by one thread must not double-count membership.
	s.load(1, 6, 100)
	s.load(1, 7, 100)
	s.store(2, 8, 100)
	check()
}

// TestFRDBatchChopping: the event stream chopped into arbitrary batch
// sizes must match per-event Step bit for bit.
func TestFRDBatchChopping(t *testing.T) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{
		Warehouses: 2, Terminals: 4, Txns: 48, Seed: 2,
	})
	m, err := w.NewVM(1)
	if err != nil {
		t.Fatal(err)
	}
	var evs []vm.Event
	m.Attach(vm.ObserverFunc(func(ev *vm.Event) { evs = append(evs, *ev) }))
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}

	ref := New(w.Prog, w.NumThreads, Options{})
	for i := range evs {
		ref.Step(&evs[i])
	}

	for _, size := range []int{1, 7, vm.DefaultBatchCap, len(evs)} {
		t.Run(fmt.Sprintf("batch-%d", size), func(t *testing.T) {
			d := New(w.Prog, w.NumThreads, Options{})
			for lo := 0; lo < len(evs); lo += size {
				hi := lo + size
				if hi > len(evs) {
					hi = len(evs)
				}
				d.StepBatch(evs[lo:hi])
			}
			if !reflect.DeepEqual(d.Races(), ref.Races()) {
				t.Error("races diverge from per-event Step")
			}
			if !reflect.DeepEqual(d.Sites(), ref.Sites()) {
				t.Error("sites diverge from per-event Step")
			}
			if d.Stats() != ref.Stats() {
				t.Errorf("stats diverge:\nbatched %+v\nstepped %+v", d.Stats(), ref.Stats())
			}
		})
	}
}
