package frd

// vclock is a Lamport/Mattern vector clock with one component per
// processor. Component t counts thread t's release operations, so
// comparing an access epoch against another thread's clock answers "did
// the accessor's segment happen before mine?" in the precise sense defined
// by Lamport [18] that the paper's happens-before baseline uses.
type vclock []uint64

func newVClock(n int) vclock { return make(vclock, n) }

// join folds other into v componentwise (v = sup(v, other)).
func (v vclock) join(other vclock) {
	for i, o := range other {
		if o > v[i] {
			v[i] = o
		}
	}
}

// happensBefore reports whether v <= other componentwise and v != other.
func (v vclock) happensBefore(other vclock) bool {
	le, lt := true, false
	for i := range v {
		if v[i] > other[i] {
			le = false
			break
		}
		if v[i] < other[i] {
			lt = true
		}
	}
	return le && lt
}

// clone returns a copy of v.
func (v vclock) clone() vclock {
	out := make(vclock, len(v))
	copy(out, v)
	return out
}
