package frd

import (
	"testing"
	"testing/quick"
)

// Vector clocks form a lattice under join with happensBefore as the strict
// order; the happens-before detector's correctness leans on these laws,
// so they are property-checked here.

func clockFrom(a [4]uint8) vclock {
	v := newVClock(4)
	for i := range a {
		v[i] = uint64(a[i])
	}
	return v
}

func TestVClockJoinIsSupremum(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		va, vb := clockFrom(a), clockFrom(b)
		j := va.clone()
		j.join(vb)
		// Upper bound of both.
		for i := range j {
			if j[i] < va[i] || j[i] < vb[i] {
				return false
			}
		}
		// Least: no component exceeds the max of the inputs.
		for i := range j {
			max := va[i]
			if vb[i] > max {
				max = vb[i]
			}
			if j[i] != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVClockJoinCommutativeIdempotent(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		va, vb := clockFrom(a), clockFrom(b)
		ab := va.clone()
		ab.join(vb)
		ba := vb.clone()
		ba.join(va)
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		again := ab.clone()
		again.join(vb) // idempotent: joining b twice changes nothing
		for i := range ab {
			if again[i] != ab[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVClockHappensBeforeStrictPartialOrder(t *testing.T) {
	f := func(a, b, c [4]uint8) bool {
		va, vb, vc := clockFrom(a), clockFrom(b), clockFrom(c)
		// Irreflexive.
		if va.happensBefore(va) {
			return false
		}
		// Antisymmetric.
		if va.happensBefore(vb) && vb.happensBefore(va) {
			return false
		}
		// Transitive.
		if va.happensBefore(vb) && vb.happensBefore(vc) && !va.happensBefore(vc) {
			return false
		}
		// Both inputs are below (or equal to) their join.
		j := va.clone()
		j.join(vb)
		if j.happensBefore(va) || j.happensBefore(vb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
