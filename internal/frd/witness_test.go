package frd

import (
	"testing"

	"repro/internal/workloads"
)

// TestWitnessPairsWithEveryRace is FRD's half of the flight-recorder
// acceptance check: each reported race carries a witness, one-for-one and
// index-for-index, whose first/second accesses match the race record.
func TestWitnessPairsWithEveryRace(t *testing.T) {
	wl := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 64, Buggy: true, Seed: 1})
	m, err := wl.NewVM(1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(wl.Prog, wl.NumThreads, Options{Witness: true})
	m.AttachBatch(d)
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}

	st := d.Stats()
	if st.Races == 0 {
		t.Fatal("no races; the pairing check needs a racy run")
	}
	if st.Witnesses != st.Races {
		t.Errorf("witnesses = %d, races = %d, want equal", st.Witnesses, st.Races)
	}
	rs, ws := d.Races(), d.Witnesses()
	if len(ws) != len(rs) {
		t.Fatalf("retained %d witnesses for %d races", len(ws), len(rs))
	}
	for i := range rs {
		r, w := rs[i], ws[i]
		if w.Detector != "frd" || w.Seq != r.SecondSeq || w.CPU != r.SecondCPU ||
			w.PC != r.SecondPC || w.Block != r.Block {
			t.Fatalf("witness %d does not pair with its race:\n w=%+v\n r=%+v", i, w, r)
		}
		if w.Conflict.CPU != r.FirstCPU || w.Conflict.PC != r.FirstPC ||
			w.Conflict.Seq != r.FirstSeq || w.Conflict.Write != r.FirstWr {
			t.Fatalf("witness %d conflict %+v does not match race first access %+v", i, w.Conflict, r)
		}
		var haveConflict, haveReport bool
		for j, a := range w.Window {
			if j > 0 && a.Seq < w.Window[j-1].Seq {
				t.Fatalf("witness %d window out of order: %+v", i, w.Window)
			}
			if a.Seq == w.Conflict.Seq && a.CPU == w.Conflict.CPU {
				haveConflict = true
			}
			if a.Seq == w.Seq && a.CPU == w.CPU {
				haveReport = true
			}
		}
		if !haveConflict || !haveReport {
			t.Fatalf("witness %d window misses conflict (%v) or report (%v): %+v",
				i, haveConflict, haveReport, w.Window)
		}
	}
}

// TestWitnessScriptedRace pins the witness fields on a two-access race.
func TestWitnessScriptedRace(t *testing.T) {
	s := newScript(2, Options{Witness: true})
	s.store(0, 1, 100)
	s.load(1, 2, 100)
	ws := s.d.Witnesses()
	if len(ws) != 1 {
		t.Fatalf("witnesses = %d, want 1", len(ws))
	}
	w := ws[0]
	if w.Detector != "frd" || w.CPU != 1 || w.PC != 2 || w.Block != 100 {
		t.Errorf("witness = %+v", w)
	}
	if w.Conflict.CPU != 0 || w.Conflict.PC != 1 || !w.Conflict.Write {
		t.Errorf("conflict = %+v", w.Conflict)
	}
	if w.Stale != nil || w.CU != 0 || w.Inputs != nil || w.Outputs != nil {
		t.Errorf("race witness carries CU fields: %+v", w)
	}
	if len(w.Window) != 2 || w.Window[0].PC != 1 || w.Window[1].PC != 2 {
		t.Errorf("window = %+v", w.Window)
	}
}

// TestWitnessDisabledCollectsNothing: the default detector keeps no rings
// and assembles no witnesses even when races fire.
func TestWitnessDisabledCollectsNothing(t *testing.T) {
	s := newScript(2, Options{})
	s.store(0, 1, 100)
	s.load(1, 2, 100)
	if s.d.Stats().Races != 1 {
		t.Fatal("script did not race")
	}
	if s.d.Stats().Witnesses != 0 || s.d.Witnesses() != nil || s.d.rings != nil {
		t.Errorf("witness machinery active with recorder off: %+v", s.d.Witnesses())
	}
}
