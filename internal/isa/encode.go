package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary program image format. The format is deliberately simple: a magic
// header, then length-prefixed sections. All integers are little-endian.
// Each instruction occupies instrBytes bytes:
//
//	byte 0    opcode
//	byte 1-4  rd, rs1, rs2, rs3
//	byte 5-7  reserved (zero)
//	byte 8-15 imm (int64)

const (
	magic      = "SVDPROG1"
	instrBytes = 16
)

// EncodeInstr appends the fixed-width encoding of in to dst.
func EncodeInstr(dst []byte, in Instr) []byte {
	var buf [instrBytes]byte
	buf[0] = byte(in.Op)
	buf[1] = byte(in.Rd)
	buf[2] = byte(in.Rs1)
	buf[3] = byte(in.Rs2)
	buf[4] = byte(in.Rs3)
	binary.LittleEndian.PutUint64(buf[8:], uint64(in.Imm))
	return append(dst, buf[:]...)
}

// DecodeInstr decodes one instruction from b.
func DecodeInstr(b []byte) (Instr, error) {
	if len(b) < instrBytes {
		return Instr{}, fmt.Errorf("isa: short instruction encoding (%d bytes)", len(b))
	}
	in := Instr{
		Op:  Op(b[0]),
		Rd:  Reg(b[1]),
		Rs1: Reg(b[2]),
		Rs2: Reg(b[3]),
		Rs3: Reg(b[4]),
		Imm: int64(binary.LittleEndian.Uint64(b[8:])),
	}
	if err := in.Validate(-1); err != nil {
		return Instr{}, err
	}
	return in, nil
}

// WriteProgram serializes p to w in the binary image format.
func WriteProgram(w io.Writer, p *Program) error {
	var buf bytes.Buffer
	buf.WriteString(magic)
	writeString(&buf, p.Name)

	writeU64(&buf, uint64(len(p.Code)))
	for _, in := range p.Code {
		b := EncodeInstr(nil, in)
		buf.Write(b)
	}

	writeU64(&buf, uint64(p.DataBase))
	writeU64(&buf, uint64(len(p.Data)))
	for _, w := range p.Data {
		writeU64(&buf, uint64(w))
	}

	writeU64(&buf, uint64(len(p.Entries)))
	for _, e := range p.Entries {
		writeU64(&buf, uint64(e))
	}

	writeSymtab(&buf, p.Symbols)
	writeSymtab(&buf, p.Labels)

	writeU64(&buf, uint64(len(p.LineInfo)))
	for _, s := range p.LineInfo {
		writeString(&buf, s)
	}

	_, err := w.Write(buf.Bytes())
	return err
}

// ReadProgram parses a binary image produced by WriteProgram.
func ReadProgram(r io.Reader) (*Program, error) {
	all, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: all}
	if string(d.bytes(len(magic))) != magic {
		return nil, fmt.Errorf("isa: bad program magic")
	}
	p := &Program{}
	p.Name = d.str()

	// Element counts are untrusted: validate them against the bytes that
	// actually remain before allocating.
	n, err := d.count(instrBytes)
	if err != nil {
		return nil, err
	}
	p.Code = make([]Instr, 0, n)
	for i := 0; i < n; i++ {
		in, err := DecodeInstr(d.bytes(instrBytes))
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		p.Code = append(p.Code, in)
	}

	p.DataBase = int64(d.u64())
	if n, err = d.count(8); err != nil {
		return nil, err
	}
	p.Data = make([]int64, n)
	for i := range p.Data {
		p.Data[i] = int64(d.u64())
	}

	if n, err = d.count(8); err != nil {
		return nil, err
	}
	p.Entries = make([]int64, n)
	for i := range p.Entries {
		p.Entries[i] = int64(d.u64())
	}

	p.Symbols = d.symtab()
	p.Labels = d.symtab()

	if n, err = d.count(8); err != nil {
		return nil, err
	}
	if n > 0 {
		p.LineInfo = make([]string, 0, n)
		for i := 0; i < n; i++ {
			p.LineInfo = append(p.LineInfo, d.str())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeString(buf *bytes.Buffer, s string) {
	writeU64(buf, uint64(len(s)))
	buf.WriteString(s)
}

func writeSymtab(buf *bytes.Buffer, m map[string]int64) {
	writeU64(buf, uint64(len(m)))
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeString(buf, name)
		writeU64(buf, uint64(m[name]))
	}
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || d.off+n > len(d.b) {
		if d.err == nil {
			d.err = fmt.Errorf("isa: truncated program image at offset %d", d.off)
		}
		return make([]byte, n)
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u64() uint64 {
	return binary.LittleEndian.Uint64(d.bytes(8))
}

// count reads an element count and validates that elemBytes*count bytes can
// still be present, so hostile counts cannot force huge allocations.
func (d *decoder) count(elemBytes int) (int, error) {
	n := d.u64()
	if d.err != nil {
		return 0, d.err
	}
	remaining := uint64(len(d.b) - d.off)
	if n > remaining/uint64(elemBytes) {
		return 0, fmt.Errorf("isa: count %d exceeds remaining input at offset %d", n, d.off)
	}
	return int(n), nil
}

func (d *decoder) str() string {
	n := int(d.u64())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		if d.err == nil {
			d.err = fmt.Errorf("isa: truncated string at offset %d", d.off)
		}
		return ""
	}
	return string(d.bytes(n))
}

func (d *decoder) symtab() map[string]int64 {
	// Each entry takes at least 16 bytes (length prefix + value).
	n, err := d.count(16)
	if err != nil || n == 0 {
		if d.err == nil {
			d.err = err
		}
		return nil
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		name := d.str()
		m[name] = int64(d.u64())
	}
	return m
}
