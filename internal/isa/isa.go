// Package isa defines the instruction set of the reproduction's
// multiprocessor virtual machine.
//
// The ISA is a small word-oriented RISC: 32 general-purpose 64-bit
// registers, word-addressed memory, explicit loads and stores, simple ALU
// operations, conditional branches, direct and indirect jumps, and an atomic
// compare-and-swap used by workloads to build locks. The serializability
// violation detector (package svd) consumes the dynamic instruction stream
// of this ISA exactly the way the paper's detector consumes SPARC
// instructions under Simics: loads, stores, ALU register movements, branch
// outcomes, and nothing else. In particular the detector never interprets
// CAS as synchronization.
package isa

import "fmt"

// Reg names a machine register. Register 0 is hardwired to zero.
type Reg uint8

// NumRegs is the number of architectural registers.
const NumRegs = 32

// Conventional register assignments used by the assembler and the SVL
// compiler. The VM initializes SP and TID at boot; everything else starts
// at zero.
const (
	RegZero Reg = 0 // always reads as zero; writes are discarded
	RegRA   Reg = 1 // return address (JAL default link register)
	RegSP   Reg = 2 // stack pointer, initialized per CPU by the VM
	RegTID  Reg = 3 // thread/CPU id, initialized per CPU by the VM
	RegA0   Reg = 4 // first argument / return value
	RegA1   Reg = 5
	RegA2   Reg = 6
	RegA3   Reg = 7
	RegT0   Reg = 8  // t0..t9 = r8..r17 caller-saved temporaries
	RegS0   Reg = 18 // s0..s9 = r18..r27 callee-saved
	RegGP   Reg = 28 // scratch used by assembler pseudo-expansions
)

// Op identifies an instruction opcode.
type Op uint8

// Opcodes. The comment shows the operand use: rd = destination, rs1..rs3 =
// sources, imm = immediate (also branch/jump target program counters).
const (
	OpNop   Op = iota // no operation
	OpHalt            // stop this CPU
	OpYield           // scheduling hint: end the current quantum
	OpLI              // rd = imm
	OpMov             // rd = rs1
	OpAdd             // rd = rs1 + rs2
	OpSub             // rd = rs1 - rs2
	OpMul             // rd = rs1 * rs2
	OpDiv             // rd = rs1 / rs2 (faults on rs2 == 0)
	OpMod             // rd = rs1 % rs2 (faults on rs2 == 0)
	OpAnd             // rd = rs1 & rs2
	OpOr              // rd = rs1 | rs2
	OpXor             // rd = rs1 ^ rs2
	OpShl             // rd = rs1 << (rs2 & 63)
	OpShr             // rd = int64(uint64(rs1) >> (rs2 & 63))
	OpSlt             // rd = 1 if rs1 < rs2 else 0
	OpSle             // rd = 1 if rs1 <= rs2 else 0
	OpSeq             // rd = 1 if rs1 == rs2 else 0
	OpSne             // rd = 1 if rs1 != rs2 else 0
	OpAddi            // rd = rs1 + imm
	OpLoad            // rd = mem[rs1 + imm]
	OpStore           // mem[rs1 + imm] = rs2
	OpBeqz            // if rs1 == 0 goto imm
	OpBnez            // if rs1 != 0 goto imm
	OpJmp             // goto imm (branch-always)
	OpJal             // rd = pc + 1; goto imm
	OpJr              // goto rs1 (indirect jump; function return)
	OpCas             // rd = 1, mem[rs1] = rs3 if mem[rs1] == rs2; else rd = 0

	opCount // sentinel, not a real opcode
)

var opNames = [...]string{
	OpNop:   "nop",
	OpHalt:  "halt",
	OpYield: "yield",
	OpLI:    "li",
	OpMov:   "mov",
	OpAdd:   "add",
	OpSub:   "sub",
	OpMul:   "mul",
	OpDiv:   "div",
	OpMod:   "mod",
	OpAnd:   "and",
	OpOr:    "or",
	OpXor:   "xor",
	OpShl:   "shl",
	OpShr:   "shr",
	OpSlt:   "slt",
	OpSle:   "sle",
	OpSeq:   "seq",
	OpSne:   "sne",
	OpAddi:  "addi",
	OpLoad:  "load",
	OpStore: "store",
	OpBeqz:  "beqz",
	OpBnez:  "bnez",
	OpJmp:   "jmp",
	OpJal:   "jal",
	OpJr:    "jr",
	OpCas:   "cas",
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount }

// IsALU reports whether op is a pure register computation (including
// immediate moves). These are the events Figure 7 of the paper handles in
// its ALU case: CU references flow from source registers to the
// destination register.
func (op Op) IsALU() bool {
	switch op {
	case OpLI, OpMov, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpSlt, OpSle, OpSeq, OpSne, OpAddi:
		return true
	}
	return false
}

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return op == OpLoad || op == OpStore || op == OpCas }

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool { return op == OpBeqz || op == OpBnez }

// IsUncondJump reports whether op unconditionally transfers control to a
// static target ("branch always" in the paper's reconvergence probing).
func (op Op) IsUncondJump() bool { return op == OpJmp || op == OpJal }

// Instr is one decoded instruction. Fields not used by an opcode are zero.
type Instr struct {
	Op           Op
	Rd, Rs1, Rs2 Reg
	Rs3          Reg   // only CAS: the new value
	Imm          int64 // immediate, displacement, or branch target PC
}

// Convenience constructors. They keep workload and test code brief and make
// the operand roles explicit at the call site.

// Nop returns a no-op instruction.
func Nop() Instr { return Instr{Op: OpNop} }

// Halt returns a halt instruction.
func Halt() Instr { return Instr{Op: OpHalt} }

// Yield returns a scheduler-yield instruction.
func Yield() Instr { return Instr{Op: OpYield} }

// LI returns rd = imm.
func LI(rd Reg, imm int64) Instr { return Instr{Op: OpLI, Rd: rd, Imm: imm} }

// Mov returns rd = rs.
func Mov(rd, rs Reg) Instr { return Instr{Op: OpMov, Rd: rd, Rs1: rs} }

// ALU returns rd = rs1 op rs2 for a three-register ALU opcode.
func ALU(op Op, rd, rs1, rs2 Reg) Instr { return Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Addi returns rd = rs1 + imm.
func Addi(rd, rs1 Reg, imm int64) Instr { return Instr{Op: OpAddi, Rd: rd, Rs1: rs1, Imm: imm} }

// Load returns rd = mem[rs1+imm].
func Load(rd, rs1 Reg, imm int64) Instr { return Instr{Op: OpLoad, Rd: rd, Rs1: rs1, Imm: imm} }

// Store returns mem[rs1+imm] = rs2.
func Store(rs2, rs1 Reg, imm int64) Instr { return Instr{Op: OpStore, Rs1: rs1, Rs2: rs2, Imm: imm} }

// Beqz returns a branch to target when rs1 == 0.
func Beqz(rs1 Reg, target int64) Instr { return Instr{Op: OpBeqz, Rs1: rs1, Imm: target} }

// Bnez returns a branch to target when rs1 != 0.
func Bnez(rs1 Reg, target int64) Instr { return Instr{Op: OpBnez, Rs1: rs1, Imm: target} }

// Jmp returns an unconditional jump to target.
func Jmp(target int64) Instr { return Instr{Op: OpJmp, Imm: target} }

// Jal returns a call: rd = pc+1, jump to target.
func Jal(rd Reg, target int64) Instr { return Instr{Op: OpJal, Rd: rd, Imm: target} }

// Jr returns an indirect jump to the address in rs1.
func Jr(rs1 Reg) Instr { return Instr{Op: OpJr, Rs1: rs1} }

// Cas returns an atomic compare-and-swap:
// rd = 1 and mem[rs1] = rs3 if mem[rs1] == rs2, else rd = 0.
func Cas(rd, addr, expect, repl Reg) Instr {
	return Instr{Op: OpCas, Rd: rd, Rs1: addr, Rs2: expect, Rs3: repl}
}

// Validate checks the instruction's static well-formedness: known opcode
// and in-range registers. Branch targets are validated against codeLen;
// pass a negative codeLen to skip target validation.
func (in Instr) Validate(codeLen int) error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	for _, r := range [...]Reg{in.Rd, in.Rs1, in.Rs2, in.Rs3} {
		if r >= NumRegs {
			return fmt.Errorf("isa: register r%d out of range in %s", r, in.Op)
		}
	}
	if codeLen >= 0 {
		switch in.Op {
		case OpBeqz, OpBnez, OpJmp, OpJal:
			if in.Imm < 0 || in.Imm >= int64(codeLen) {
				return fmt.Errorf("isa: %s target %d outside code [0,%d)", in.Op, in.Imm, codeLen)
			}
		}
	}
	return nil
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpYield:
		return in.Op.String()
	case OpLI:
		return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	case OpAddi:
		return fmt.Sprintf("addi r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load r%d, %d(r%d)", in.Rd, in.Imm, in.Rs1)
	case OpStore:
		return fmt.Sprintf("store r%d, %d(r%d)", in.Rs2, in.Imm, in.Rs1)
	case OpBeqz:
		return fmt.Sprintf("beqz r%d, %d", in.Rs1, in.Imm)
	case OpBnez:
		return fmt.Sprintf("bnez r%d, %d", in.Rs1, in.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Imm)
	case OpJal:
		return fmt.Sprintf("jal r%d, %d", in.Rd, in.Imm)
	case OpJr:
		return fmt.Sprintf("jr r%d", in.Rs1)
	case OpCas:
		return fmt.Sprintf("cas r%d, (r%d), r%d, r%d", in.Rd, in.Rs1, in.Rs2, in.Rs3)
	default:
		if in.Op.IsALU() {
			return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
		}
		return in.Op.String()
	}
}

// Program is a loadable unit: code, an initial data image, and debug
// metadata. Code and data live in separate address spaces (a Harvard
// machine): PCs index Code, memory addresses index words.
type Program struct {
	Name string

	// Code is the instruction sequence; the PC indexes it directly.
	Code []Instr

	// Data is the initial shared-memory image, loaded at word address
	// DataBase when a VM boots the program.
	Data     []int64
	DataBase int64

	// Entries lists, per CPU, the PC at which that CPU starts. A CPU with
	// no entry (index beyond the slice) halts immediately.
	Entries []int64

	// Symbols maps data symbols to word addresses; Labels maps code labels
	// to PCs. Both are optional debug metadata.
	Symbols map[string]int64
	Labels  map[string]int64

	// LineInfo, when non-nil, has one entry per instruction naming the
	// source position that produced it (file:line or assembler line).
	LineInfo []string
}

// Validate checks every instruction and the entry points.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q has no code", p.Name)
	}
	for pc, in := range p.Code {
		if err := in.Validate(len(p.Code)); err != nil {
			return fmt.Errorf("pc %d: %w", pc, err)
		}
	}
	for cpu, e := range p.Entries {
		if e < 0 || e >= int64(len(p.Code)) {
			return fmt.Errorf("isa: entry for cpu %d is %d, outside code [0,%d)", cpu, e, len(p.Code))
		}
	}
	if p.DataBase < 0 {
		return fmt.Errorf("isa: negative data base %d", p.DataBase)
	}
	return nil
}

// LocationOf returns the debug location for pc, or "" when unknown.
func (p *Program) LocationOf(pc int64) string {
	if pc >= 0 && pc < int64(len(p.LineInfo)) {
		return p.LineInfo[pc]
	}
	return ""
}

// LabelAt returns a label that names pc exactly, or "" if none does.
func (p *Program) LabelAt(pc int64) string {
	for name, at := range p.Labels {
		if at == pc {
			return name
		}
	}
	return ""
}

// SymbolFor returns the data symbol whose address range covers addr, using
// the next symbol (by address) as the end of each range. Returns "" when
// addr precedes all symbols or the program has no symbols.
func (p *Program) SymbolFor(addr int64) string {
	best, bestAddr := "", int64(-1)
	for name, a := range p.Symbols {
		if a <= addr && a > bestAddr {
			best, bestAddr = name, a
		}
	}
	if best != "" && addr != bestAddr {
		return fmt.Sprintf("%s+%d", best, addr-bestAddr)
	}
	return best
}
