package isa

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown opcode rendered %q", got)
	}
}

func TestOpClassesDisjoint(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		classes := 0
		if op.IsALU() {
			classes++
		}
		if op.IsMem() {
			classes++
		}
		if op.IsCondBranch() {
			classes++
		}
		if op.IsUncondJump() {
			classes++
		}
		if classes > 1 {
			t.Errorf("%s belongs to %d classes", op, classes)
		}
	}
}

func TestOpClassMembership(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() || !OpCas.IsMem() {
		t.Error("memory ops misclassified")
	}
	if !OpBeqz.IsCondBranch() || !OpBnez.IsCondBranch() {
		t.Error("conditional branches misclassified")
	}
	if !OpJmp.IsUncondJump() || !OpJal.IsUncondJump() {
		t.Error("unconditional jumps misclassified")
	}
	if OpJr.IsUncondJump() {
		t.Error("jr has no static target; it must not be a static branch-always")
	}
	if !OpLI.IsALU() || !OpAddi.IsALU() || OpLoad.IsALU() {
		t.Error("ALU classification wrong")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{LI(5, 42), "li r5, 42"},
		{Mov(1, 2), "mov r1, r2"},
		{ALU(OpAdd, 3, 1, 2), "add r3, r1, r2"},
		{Addi(3, 1, -7), "addi r3, r1, -7"},
		{Load(4, 2, 8), "load r4, 8(r2)"},
		{Store(4, 2, 8), "store r4, 8(r2)"},
		{Beqz(9, 17), "beqz r9, 17"},
		{Bnez(9, 17), "bnez r9, 17"},
		{Jmp(3), "jmp 3"},
		{Jal(1, 3), "jal r1, 3"},
		{Jr(1), "jr r1"},
		{Cas(5, 6, 7, 8), "cas r5, (r6), r7, r8"},
		{Nop(), "nop"},
		{Halt(), "halt"},
		{Yield(), "yield"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := LI(5, 1).Validate(10); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}
	if err := (Instr{Op: opCount}).Validate(10); err == nil {
		t.Error("invalid opcode accepted")
	}
	if err := (Instr{Op: OpMov, Rd: NumRegs}).Validate(10); err == nil {
		t.Error("out-of-range register accepted")
	}
	if err := Jmp(10).Validate(10); err == nil {
		t.Error("out-of-range jump target accepted")
	}
	if err := Jmp(10).Validate(-1); err != nil {
		t.Errorf("target validation not skipped: %v", err)
	}
	if err := Beqz(1, -1).Validate(10); err == nil {
		t.Error("negative branch target accepted")
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Name: "t", Code: []Instr{Halt()}, Entries: []int64{0}}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	if err := (&Program{Name: "e"}).Validate(); err == nil {
		t.Error("empty program accepted")
	}
	bad := &Program{Name: "b", Code: []Instr{Halt()}, Entries: []int64{5}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range entry accepted")
	}
	neg := &Program{Name: "n", Code: []Instr{Halt()}, DataBase: -1}
	if err := neg.Validate(); err == nil {
		t.Error("negative data base accepted")
	}
}

func TestEncodeDecodeInstr(t *testing.T) {
	ins := []Instr{
		LI(5, -1234567890123), Cas(5, 6, 7, 8), Load(4, 2, 1<<40),
		Store(4, 2, -9), Jal(1, 77), Halt(),
	}
	for _, in := range ins {
		b := EncodeInstr(nil, in)
		got, err := DecodeInstr(b)
		if err != nil {
			t.Fatalf("decode(%v): %v", in, err)
		}
		if got != in {
			t.Errorf("roundtrip: got %v, want %v", got, in)
		}
	}
	if _, err := DecodeInstr([]byte{1, 2}); err == nil {
		t.Error("short encoding accepted")
	}
	if _, err := DecodeInstr(make([]byte, instrBytes)); err != nil {
		t.Errorf("all-zero (nop) encoding rejected: %v", err)
	}
	bad := EncodeInstr(nil, Instr{})
	bad[0] = byte(opCount)
	if _, err := DecodeInstr(bad); err == nil {
		t.Error("invalid opcode decoded without error")
	}
}

func TestProgramRoundtrip(t *testing.T) {
	p := &Program{
		Name:     "round",
		Code:     []Instr{LI(4, 9), Store(4, 0, 100), Jmp(3), Halt()},
		Data:     []int64{1, 2, 3},
		DataBase: 100,
		Entries:  []int64{0, 3},
		Symbols:  map[string]int64{"x": 100, "y": 101},
		Labels:   map[string]int64{"main": 0, "end": 3},
		LineInfo: []string{"a", "b", "c", "d"},
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || len(q.Code) != len(p.Code) || q.DataBase != p.DataBase {
		t.Fatalf("header mismatch: %+v", q)
	}
	for i := range p.Code {
		if q.Code[i] != p.Code[i] {
			t.Errorf("code[%d] = %v, want %v", i, q.Code[i], p.Code[i])
		}
	}
	for i := range p.Data {
		if q.Data[i] != p.Data[i] {
			t.Errorf("data[%d] = %d, want %d", i, q.Data[i], p.Data[i])
		}
	}
	for k, v := range p.Symbols {
		if q.Symbols[k] != v {
			t.Errorf("symbol %s = %d, want %d", k, q.Symbols[k], v)
		}
	}
	for k, v := range p.Labels {
		if q.Labels[k] != v {
			t.Errorf("label %s = %d, want %d", k, q.Labels[k], v)
		}
	}
	for i := range p.LineInfo {
		if q.LineInfo[i] != p.LineInfo[i] {
			t.Errorf("lineinfo[%d] = %q, want %q", i, q.LineInfo[i], p.LineInfo[i])
		}
	}
}

func TestReadProgramTruncated(t *testing.T) {
	p := &Program{Name: "t", Code: []Instr{Halt()}}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for cut := 0; cut < len(img)-1; cut += 3 {
		if _, err := ReadProgram(bytes.NewReader(img[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := ReadProgram(bytes.NewReader(img)); err != nil {
		t.Errorf("full image rejected: %v", err)
	}
}

// TestEncodeInstrRoundtripQuick property-tests that any well-formed
// instruction survives the binary encoding.
func TestEncodeInstrRoundtripQuick(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2, rs3 uint8, imm int64) bool {
		in := Instr{
			Op:  Op(op % uint8(opCount)),
			Rd:  Reg(rd % NumRegs),
			Rs1: Reg(rs1 % NumRegs),
			Rs2: Reg(rs2 % NumRegs),
			Rs3: Reg(rs3 % NumRegs),
			Imm: imm,
		}
		got, err := DecodeInstr(EncodeInstr(nil, in))
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramQueries(t *testing.T) {
	p := &Program{
		Name:     "q",
		Code:     []Instr{Nop(), Halt()},
		Symbols:  map[string]int64{"buf": 10, "cnt": 20},
		Labels:   map[string]int64{"main": 0},
		LineInfo: []string{"one", "two"},
	}
	if got := p.LocationOf(1); got != "two" {
		t.Errorf("LocationOf(1) = %q", got)
	}
	if got := p.LocationOf(5); got != "" {
		t.Errorf("LocationOf(5) = %q", got)
	}
	if got := p.LabelAt(0); got != "main" {
		t.Errorf("LabelAt(0) = %q", got)
	}
	if got := p.LabelAt(1); got != "" {
		t.Errorf("LabelAt(1) = %q", got)
	}
	if got := p.SymbolFor(10); got != "buf" {
		t.Errorf("SymbolFor(10) = %q", got)
	}
	if got := p.SymbolFor(12); got != "buf+2" {
		t.Errorf("SymbolFor(12) = %q", got)
	}
	if got := p.SymbolFor(25); got != "cnt+5" {
		t.Errorf("SymbolFor(25) = %q", got)
	}
	if got := p.SymbolFor(5); got != "" {
		t.Errorf("SymbolFor(5) = %q", got)
	}
}
