// Append-path microbenchmarks: the per-record cost a journaled ingest
// hop pays on the producer thread. BenchmarkWriterAppend is the number
// to read against BenchmarkServerIngestJournaled — one ingest op appends
// ~70 wire frames of ~10 KiB, so (ns/op here) × 70 is the journal's
// share of that benchmark's gap over ServerIngestSteady.
package journal

import (
	"os"
	"testing"
)

func benchDir(b *testing.B) string {
	// tmpfs when available, for the same reason the ingest benchmark
	// uses it: measure the code, not the disk.
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		d, err := os.MkdirTemp("/dev/shm", "svdjournal-bench-")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(d) })
			return d
		}
	}
	return b.TempDir()
}

func benchAppend(b *testing.B, payloadBytes int, opts Options) {
	prov, err := OpenDir(benchDir(b))
	if err != nil {
		b.Fatal(err)
	}
	w, err := OpenWriter(prov, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	hdr := make([]byte, 9)
	payload := make([]byte, payloadBytes-9)
	m := Meta{Kind: KindEvents, Stream: 1, FirstSeq: 1, LastSeq: 512}
	// When the config can recycle, warm the rotation cycle first so the
	// timed region writes into page-warm reused files, not fresh ones.
	if opts.RetainSegments > 0 && opts.RecycleSegments >= 0 {
		for i := 0; w.Stats().RecycledSegments < 2 && i < 1<<20; i++ {
			if _, err := w.Append(m, hdr, payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(payloadBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(m, hdr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriterAppend is the production configuration: async flush
// pipeline and background fsync ticker, one oversized segment so
// rotation stays out of the loop.
func BenchmarkWriterAppend(b *testing.B) {
	benchAppend(b, 10<<10, Options{SegmentBytes: 1 << 40})
}

// BenchmarkWriterAppendRotating includes rotation and retention at the
// default 64 MiB segment size — the cost profile of a long-running
// daemon, amortized.
func BenchmarkWriterAppendRotating(b *testing.B) {
	benchAppend(b, 10<<10, Options{RetainSegments: 4})
}

// BenchmarkWriterAppendRecycled is the steady state of a long-running
// daemon under retention: every rotation reuses a parked segment file,
// so appends overwrite already-allocated pages instead of paying
// first-touch page allocation — the configuration the journaled ingest
// guard measures.
func BenchmarkWriterAppendRecycled(b *testing.B) {
	benchAppend(b, 10<<10, Options{SegmentBytes: 8 << 20, RetainSegments: 1})
}
