package journal

import (
	"bytes"
	"testing"

	"repro/internal/vm"
	"repro/internal/wire"
)

// buildSeedSegment assembles valid segment bytes whose records are real
// wire frames — the corpus shape the production journal actually holds.
func buildSeedSegment(t interface{ Fatal(...any) }) []byte {
	p := InMemory()
	w, err := OpenWriter(p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var frames bytes.Buffer
	f := wire.NewFramer(&frames, 2)
	hello := wire.Hello{Version: wire.Version, Threads: 2, Workload: "queue-fixed", Scale: 1, Seed: 7}
	if err := f.WriteHello(hello); err != nil {
		t.Fatal(err)
	}
	helloBytes := append([]byte(nil), frames.Bytes()...)
	frames.Reset()
	evs := []vm.Event{
		{Seq: 1, CPU: 0, PC: 3, IsLoad: true, Addr: 64, Loaded: 5},
		{Seq: 2, CPU: 1, PC: 9, IsStore: true, Addr: 64, Stored: 6},
		{Seq: 3, CPU: 0, PC: 4},
	}
	if err := f.WriteEvents(evs); err != nil {
		t.Fatal(err)
	}
	eventBytes := append([]byte(nil), frames.Bytes()...)
	frames.Reset()
	if err := f.WriteGoodbye(); err != nil {
		t.Fatal(err)
	}
	byeBytes := append([]byte(nil), frames.Bytes()...)

	if _, err := w.Append(Meta{Kind: KindHello, Stream: 1}, nil, helloBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Meta{Kind: KindEvents, Stream: 1, FirstSeq: 1, LastSeq: 3}, nil, eventBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Meta{Kind: KindGoodbye, Stream: 1}, nil, byeBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Meta{Kind: KindResult, Stream: 1}, nil, []byte(`{"workload":"queue-fixed"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := p.Open(segName(0))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(f2); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// FuzzJournalSegment drives the segment scanner — the code recovery
// trusts with arbitrary crash debris — over mutated segment bytes. The
// invariants: never panic, never claim good bytes past the input, and
// the reported good prefix must itself rescan to the identical index
// with no torn tail (recovery's truncate-then-serve step depends on
// exactly that).
func FuzzJournalSegment(f *testing.F) {
	seed := buildSeedSegment(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                   // torn tail
	f.Add(seed[:segHeaderSize])                 // header only
	f.Add(seed[:segHeaderSize+recHeaderSize-1]) // torn record header
	f.Add([]byte{})                             // empty file
	f.Add([]byte("SVDJ"))                       // truncated header
	flipped := append([]byte(nil), seed...)
	flipped[segHeaderSize+4] ^= 0x40 // corrupt first record's length
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The seed corpus is segment 0; the id must match or every
		// record fails its seeded CRC and the fuzzer never gets past
		// the first one.
		sc, err := scanSegment(bytes.NewReader(data), 0)
		if err != nil {
			return // unreadable header: recovery removes the segment
		}
		if sc.goodBytes < segHeaderSize || sc.goodBytes > int64(len(data)) {
			t.Fatalf("goodBytes %d outside [%d, %d]", sc.goodBytes, segHeaderSize, len(data))
		}
		off := int64(segHeaderSize)
		for i, e := range sc.entries {
			if e.Offset != off {
				t.Fatalf("entry %d at offset %d, want %d", i, e.Offset, off)
			}
			if e.Len < recHeaderSize {
				t.Fatalf("entry %d length %d below header size", i, e.Len)
			}
			off += e.Len
		}
		if off != sc.goodBytes {
			t.Fatalf("entries end at %d, goodBytes %d", off, sc.goodBytes)
		}

		resc, err := scanSegment(bytes.NewReader(data[:sc.goodBytes]), 0)
		if err != nil {
			t.Fatalf("rescan of good prefix: %v", err)
		}
		if resc.torn || len(resc.entries) != len(sc.entries) || resc.goodBytes != sc.goodBytes {
			t.Fatalf("rescan disagrees: torn=%v entries=%d/%d good=%d/%d",
				resc.torn, len(resc.entries), len(sc.entries), resc.goodBytes, sc.goodBytes)
		}
	})
}
