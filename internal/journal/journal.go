// Package journal is the detection service's durable event store: a
// segmented, append-only record of every wire frame the daemon ingested,
// written on the hot path without allocation and readable later for
// replay, verification, and offline re-detection.
//
// The paper's offline three-pass algorithm (Figures 5-6, internal/offline)
// presupposes a persisted trace of the execution under analysis; the
// online service (internal/server) used to be fire-and-forget, so once a
// batch left the SPSC recycle ring the evidence was gone. The journal
// closes that gap: frames are stored as the raw wire bytes the deframer
// already validated, so a journaled stream replays through the same
// decoder that served it and is bit-identical by construction.
//
// # Format
//
// A journal is a directory (or any Provider namespace) of segments:
//
//	seg-%016x.svdj   records, append-only
//	seg-%016x.idx    index sidecar, written when the segment seals
//
// Each segment opens with a 16-byte header:
//
//	[4] magic "SVDJ"
//	[2] format version (little-endian)
//	[2] reserved
//	[8] created wall clock (unix nanoseconds, little-endian)
//
// followed by records:
//
//	[4] crc32c over the remaining header and payload
//	[4] payload length n (little-endian)
//	[1] kind
//	[8] stream id
//	[8] first event sequence number
//	[8] last event sequence number
//	[n] payload
//
// The CRC makes every record self-validating: a torn tail (power cut,
// SIGKILL mid-write) fails the checksum and recovery truncates the
// segment at the last whole record. The index sidecar holds one entry
// per record — (stream, seq-range, offset) — so a reader seeks without
// scanning; a missing or corrupt sidecar is rebuilt by scanning the
// segment, which the record format makes cheap and safe.
//
// # Lifecycle
//
// OpenWriter recovers the directory (truncating torn tails, sealing any
// segment the previous process never sealed) and starts a fresh active
// segment. Append buffers records and flushes in large writes; fsync
// runs on a wall-clock interval so the loss window is bounded without
// putting a disk flush on every batch. Segments rotate by size or age;
// rotation seals the finished segment (writes its sidecar) and applies
// retention, deleting the oldest sealed segments beyond the configured
// count or byte budget.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"sync"

	"repro/internal/obs"
)

// Kind discriminates record payloads.
type Kind byte

const (
	// KindHello is a stream's raw Hello frame, journaled first.
	KindHello Kind = iota + 1

	// KindEvents is one raw Events frame (delta-coded batch, send stamp
	// included when the stream negotiated timestamps).
	KindEvents

	// KindGoodbye is the stream's raw Goodbye frame.
	KindGoodbye

	// KindResult is the serve-side detection report JSON — exactly the
	// bytes the daemon put in the Result frame, so a replay verifies
	// against it byte for byte.
	KindResult

	// KindError is a terminal stream error string (overload, abort).
	KindError
)

// String names the kind for logs and tools.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindEvents:
		return "events"
	case KindGoodbye:
		return "goodbye"
	case KindResult:
		return "result"
	case KindError:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

const (
	segMagic = "SVDJ"
	// segVersion 2 seeds record CRCs with the segment's identity (id +
	// creation stamp) so recycled segment files — overwritten in place,
	// old bytes surviving past the new tail — can never resurrect a
	// record from a previous life through a torn-tail scan. Version 1
	// journals (unseeded CRCs) are not readable by this build.
	segVersion    = 2
	segHeaderSize = 16
	recHeaderSize = 33

	// MaxRecordPayload bounds one record. Wire ingest frames are capped
	// at 4 MiB and result JSON at 64 MiB (internal/wire); the journal
	// cap leaves room for either plus framing, and bounds what a corrupt
	// length field can make a scanner allocate.
	MaxRecordPayload = 96 << 20

	segSuffix = ".svdj"
	idxSuffix = ".idx"
)

// DefaultSegmentBytes rotates segments at 64 MiB.
const DefaultSegmentBytes = 64 << 20

// DefaultFsyncInterval bounds the unsynced window to 100ms.
const DefaultFsyncInterval = 100 * time.Millisecond

// DefaultRecycleSegments parks up to two retired segment files for
// reuse by rotation.
const DefaultRecycleSegments = 2

// defaultBufBytes is the append buffer: records accumulate here and hit
// the provider in large sequential writes.
const defaultBufBytes = 256 << 10

// crcTable is Castagnoli, the polynomial with hardware support on both
// amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segSeed is the per-segment CRC seed: record checksums start from it
// rather than zero, binding every record to the segment incarnation
// (id + creation stamp) it was written into. A recycled file's stale
// records were checksummed under a different seed, so a recovery or
// reader scan rejects them at the first record past the torn point.
func segSeed(id uint64, created int64) uint32 {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], id)
	binary.LittleEndian.PutUint64(b[8:16], uint64(created))
	return crc32.Checksum(b[:], crcTable)
}

// Loc addresses one record: the anchor the engine hands to forensics.
type Loc struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

// Meta is a record's identity: everything in the header but the CRC and
// length.
type Meta struct {
	Kind     Kind
	Stream   uint64
	FirstSeq uint64
	LastSeq  uint64
}

// IndexEntry locates one record inside a segment.
type IndexEntry struct {
	Stream   uint64 `json:"stream"`
	Kind     Kind   `json:"kind"`
	Offset   int64  `json:"off"`
	Len      int64  `json:"len"` // whole record, header included
	FirstSeq uint64 `json:"first_seq,omitempty"`
	LastSeq  uint64 `json:"last_seq,omitempty"`
}

// segIndex is the sidecar's JSON shape.
type segIndex struct {
	Version         int          `json:"version"`
	Segment         uint64       `json:"segment"`
	CreatedUnixNano int64        `json:"created_unix_nano"`
	SealedUnixNano  int64        `json:"sealed_unix_nano"`
	Size            int64        `json:"size"`
	Entries         []IndexEntry `json:"entries"`
}

func segName(id uint64) string { return fmt.Sprintf("seg-%016x%s", id, segSuffix) }
func idxName(id uint64) string { return fmt.Sprintf("seg-%016x%s", id, idxSuffix) }

// recycleName names a retired segment file parked for reuse. The prefix
// keeps it out of parseSegName's namespace, so readers and recovery
// never mistake a parked file for a live segment.
func recycleName(n uint64) string { return fmt.Sprintf("recycle-%04d%s", n, segSuffix) }

// parseRecycleName extracts the counter from a parked file's name.
func parseRecycleName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "recycle-") || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	dec := strings.TrimSuffix(strings.TrimPrefix(name, "recycle-"), segSuffix)
	n, err := strconv.ParseUint(dec, 10, 64)
	return n, err == nil
}

// parseSegName extracts the id from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), segSuffix)
	id, err := strconv.ParseUint(hex, 16, 64)
	return id, err == nil
}

// CompactionResult records the outcome of the most recent retention
// pass, for /statusz.
type CompactionResult struct {
	UnixNano int64  `json:"unix_nano"`
	Removed  int    `json:"removed"`
	Err      string `json:"err,omitempty"`
}

// RecoveryInfo reports what OpenWriter had to repair.
type RecoveryInfo struct {
	Segments        int   `json:"segments"`         // segments found on open
	Repaired        int   `json:"repaired"`         // segments sealed by scan (unclean shutdown)
	TruncatedBytes  int64 `json:"truncated_bytes"`  // torn-tail bytes cut
	RemovedSegments int   `json:"removed_segments"` // unreadable or empty segments deleted
}

// Stats is the journal's observability snapshot, feeding the /metrics
// families and the /statusz panel.
type Stats struct {
	Dir             string `json:"dir"`
	Segments        int    `json:"segments"` // sealed + active
	ActiveSegment   uint64 `json:"active_segment"`
	ActiveBytes     int64  `json:"active_bytes"`
	TotalBytes      int64  `json:"total_bytes"`
	AppendedRecords uint64 `json:"appended_records"`
	AppendedBytes   uint64 `json:"appended_bytes"`
	Rotations       uint64 `json:"rotations"`

	// RecycledSegments counts rotations that reused a parked segment
	// file (already-allocated pages) instead of creating a fresh one.
	RecycledSegments uint64 `json:"recycled_segments"`

	AppendErrors uint64 `json:"append_errors"`

	// OldestUnixNano is the oldest retained segment's creation stamp,
	// NewestUnixNano the wall clock of the most recent append.
	OldestUnixNano int64 `json:"oldest_unix_nano"`
	NewestUnixNano int64 `json:"newest_unix_nano"`

	// FsyncNs distributes the Sync() calls the writer issued.
	FsyncNs obs.Histogram `json:"fsync_ns"`

	LastCompaction CompactionResult `json:"last_compaction"`
	Recovery       RecoveryInfo     `json:"recovery"`
}

// Options tune a Writer.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this size.
	// <= 0 means DefaultSegmentBytes.
	SegmentBytes int64

	// SegmentAge rotates the active segment once it has been open this
	// long, so a quiet journal still seals segments for retention to
	// work on. 0 disables age rotation.
	SegmentAge time.Duration

	// RetainSegments caps the sealed segments kept; rotation deletes the
	// oldest beyond it. 0 keeps everything.
	RetainSegments int

	// RetainBytes caps the total bytes across sealed segments. 0 keeps
	// everything.
	RetainBytes int64

	// RecycleSegments caps how many retired segment files rotation parks
	// for reuse instead of deleting. Reusing a parked file skips the
	// kernel's first-touch page allocation — the dominant cost of
	// growing a fresh segment — at the price of holding that many
	// segments of disk past retention. 0 means DefaultRecycleSegments;
	// < 0 disables recycling.
	RecycleSegments int

	// FsyncInterval bounds the unsynced window: a background ticker
	// flushes and fsyncs the active segment at this cadence, keeping the
	// disk wait off the append path. 0 means DefaultFsyncInterval; < 0
	// syncs inline on every append (maximum durability, test crash
	// simulation).
	FsyncInterval time.Duration

	// Now is the wall clock, swappable for tests. nil means time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FsyncInterval == 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.RecycleSegments == 0 {
		o.RecycleSegments = DefaultRecycleSegments
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// flushReq is one unit of work for flushLoop: a full buffer to write to
// the segment file it was appended against, a barrier (reply non-nil)
// that surfaces the flusher's sticky write error, or both.
type flushReq struct {
	f     WriteFile
	seg   uint64
	buf   []byte
	reply chan<- error
}

// sealedSeg is the writer's bookkeeping for one sealed segment.
type sealedSeg struct {
	id      uint64
	size    int64
	created int64
}

// Writer appends records to a segmented journal. Safe for concurrent
// use; the engine's sessions share one.
type Writer struct {
	p    Provider
	opts Options

	mu       sync.Mutex
	f        WriteFile // active segment
	segID    uint64
	seed     uint32 // segSeed of the active segment; records CRC from it
	off      int64  // next record offset in the active segment
	buf      []byte
	direct   bool  // active segment WriteFile is a cheap memcpy: skip buf
	flushed  int64 // bytes of the active segment already written through
	created  int64 // active segment creation stamp
	index    []IndexEntry
	sealed   []sealedSeg
	lastSync time.Time
	closed   bool

	// freelist holds parked segment files awaiting reuse; nextRecycle
	// numbers new parks so names stay unique across restarts.
	freelist    []string
	nextRecycle uint64
	werr        error // sticky write error; appends fail fast after it

	// rec is Append's header scratch. A stack array would escape — the
	// crc32.Update calls defeat escape analysis — costing one heap
	// allocation per append on the zero-alloc ingest path.
	rec [recHeaderSize]byte

	// syncStop/syncDone bracket the background fsync ticker that bounds
	// the unsynced window when FsyncInterval > 0. Running the fsync off
	// the append path matters: an ext4 fsync is milliseconds, and paying
	// it inline would stall ingest (and the session behind it) every
	// interval. Nil when FsyncInterval < 0 (every append syncs inline).
	syncStop chan struct{}
	syncDone chan struct{}

	// Async flush pipeline, enabled alongside the sync ticker when
	// FsyncInterval > 0: full append buffers are handed to flushLoop so
	// the producer never pays the page-cache copy of a 256 KiB write
	// syscall on the ingest path. Three buffers circulate — one active,
	// one queued on flushCh, one in the flusher's hands or parked on
	// flushRet — so steady state never allocates. drainReply is the
	// reusable barrier channel (all drains hold w.mu, so one suffices).
	// Nil in inline-sync mode (FsyncInterval < 0), where flushes stay
	// synchronous and errors surface directly from Append.
	flushCh    chan flushReq
	flushRet   chan []byte
	flushDone  chan struct{}
	drainReply chan error

	streamBase uint64
	recovery   RecoveryInfo

	stats struct {
		appendedRecords uint64
		appendedBytes   uint64
		rotations       uint64
		recycled        uint64
		appendErrors    uint64
		newestUnixNano  int64
		fsyncNs         obs.Histogram
		lastCompaction  CompactionResult
	}
}

// OpenWriter opens (and if necessary repairs) the journal behind p and
// starts a fresh active segment. Segments the previous process never
// sealed are scanned, torn tails truncated, and sidecars written, so
// the directory is always in a clean state before new records land.
func OpenWriter(p Provider, opts Options) (*Writer, error) {
	w := &Writer{p: p, opts: opts.withDefaults()}
	names, err := p.List()
	if err != nil {
		return nil, fmt.Errorf("journal: list: %w", err)
	}
	var ids []uint64
	for _, n := range names {
		if id, ok := parseSegName(n); ok {
			ids = append(ids, id)
		} else if k, ok := parseRecycleName(n); ok {
			// A parked file from the previous process: adopt it so its
			// allocated pages keep paying off across restarts.
			w.freelist = append(w.freelist, n)
			if k >= w.nextRecycle {
				w.nextRecycle = k + 1
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.recovery.Segments = len(ids)

	next := uint64(0)
	for _, id := range ids {
		if id >= next {
			next = id + 1
		}
		seg, err := w.recoverSegment(id)
		if err != nil {
			return nil, err
		}
		if seg != nil {
			w.sealed = append(w.sealed, *seg)
		}
	}
	w.segID = next
	if err := w.openActive(); err != nil {
		return nil, err
	}
	w.lastSync = w.opts.Now()
	if w.opts.FsyncInterval > 0 {
		w.flushCh = make(chan flushReq, 1)
		w.flushRet = make(chan []byte, 2)
		w.flushDone = make(chan struct{})
		w.drainReply = make(chan error, 1)
		w.flushRet <- make([]byte, 0, defaultBufBytes)
		w.flushRet <- make([]byte, 0, defaultBufBytes)
		go w.flushLoop()
		w.syncStop = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop(w.syncStop)
	}
	return w, nil
}

// flushLoop is the async flush sink. It owns every buffer in flight,
// writes each to the segment file it was appended against, and recycles
// it on flushRet. It deliberately never takes w.mu, so barrier drains
// issued under the lock always make progress. A write error is held
// locally and surfaced through the next barrier; buffers after a failure
// are dropped unwritten, mirroring the sticky-werr fail-fast of the
// synchronous path.
func (w *Writer) flushLoop() {
	defer close(w.flushDone)
	var err error
	for req := range w.flushCh {
		if req.buf != nil {
			if err == nil {
				if _, e := req.f.Write(req.buf); e != nil {
					err = fmt.Errorf("journal: write segment %d: %w", req.seg, e)
				}
			}
			w.flushRet <- req.buf
		}
		if req.reply != nil {
			req.reply <- err
		}
	}
}

// syncLoop is the background fsync ticker: every FsyncInterval it
// flushes and syncs the active segment, so the window of appended but
// undurable bytes stays bounded without the append path ever waiting
// on the disk.
// stop is passed in rather than read off the struct: Close nils the
// field to claim shutdown, and a select on the nilled field would
// block forever.
func (w *Writer) syncLoop(stop <-chan struct{}) {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// Flush under the lock, fsync outside it: an ext4 fsync is
			// milliseconds, and holding the lock across it would stall
			// every Append for the duration — the exact producer hiccup
			// this goroutine exists to avoid. os.File serializes a
			// concurrent Write/Close internally, so the worst cases are
			// benign: bytes appended after the flush get synced early,
			// or a rotation closes the file mid-sync and the error is
			// discarded below because the segment moved on.
			w.mu.Lock()
			if w.closed || w.werr != nil ||
				w.flushLocked() != nil || w.drainFlushLocked() != nil {
				w.mu.Unlock()
				continue
			}
			f, seg := w.f, w.segID
			w.mu.Unlock()
			t0 := w.opts.Now()
			err := f.Sync()
			d := w.opts.Now().Sub(t0)
			w.mu.Lock()
			switch {
			case err != nil:
				// Only a failure on the still-active segment is real; a
				// rotation or Close snatching the file out from under the
				// sync is expected.
				if seg == w.segID && !w.closed && w.werr == nil {
					w.werr = fmt.Errorf("journal: sync segment %d: %w", seg, err)
					w.stats.appendErrors++
				}
			default:
				if d > 0 {
					w.stats.fsyncNs.Observe(uint64(d))
				} else {
					w.stats.fsyncNs.Observe(0)
				}
				w.lastSync = w.opts.Now()
			}
			w.mu.Unlock()
		}
	}
}

// recoverSegment brings one pre-existing segment to sealed state:
// trusted via its sidecar when present, otherwise scanned, truncated at
// the first bad record, and sealed. Returns nil when the segment was
// empty or unreadable and has been removed.
func (w *Writer) recoverSegment(id uint64) (*sealedSeg, error) {
	if idx, err := loadIndex(w.p, id); err == nil {
		for _, e := range idx.Entries {
			if e.Stream >= w.streamBase {
				w.streamBase = e.Stream + 1
			}
		}
		// Belt and braces: a crash cannot grow a sealed segment, but a
		// partial copy can shrink one; trust the smaller of the two.
		size := idx.Size
		if actual, err := w.p.Size(segName(id)); err == nil && actual < size {
			size = actual
		}
		return &sealedSeg{id: id, size: size, created: idx.CreatedUnixNano}, nil
	}

	// No usable sidecar: the previous process died with this segment
	// active. Scan, truncate the torn tail, seal.
	f, err := w.p.Open(segName(id))
	if err != nil {
		return nil, fmt.Errorf("journal: recover %s: %w", segName(id), err)
	}
	sc, scanErr := scanSegment(f, id)
	f.Close()
	if scanErr != nil {
		// Header unreadable: nothing in this segment is trustworthy.
		w.recovery.RemovedSegments++
		if err := w.p.Remove(segName(id)); err != nil {
			return nil, fmt.Errorf("journal: remove unreadable %s: %w", segName(id), err)
		}
		return nil, nil
	}
	if size, err := w.p.Size(segName(id)); err == nil && size > sc.goodBytes {
		w.recovery.TruncatedBytes += size - sc.goodBytes
		if err := w.p.Truncate(segName(id), sc.goodBytes); err != nil {
			return nil, fmt.Errorf("journal: truncate %s: %w", segName(id), err)
		}
	}
	if len(sc.entries) == 0 {
		// Nothing but a header survived; drop the segment.
		w.recovery.RemovedSegments++
		if err := w.p.Remove(segName(id)); err != nil {
			return nil, fmt.Errorf("journal: remove empty %s: %w", segName(id), err)
		}
		return nil, nil
	}
	for _, e := range sc.entries {
		if e.Stream >= w.streamBase {
			w.streamBase = e.Stream + 1
		}
	}
	if err := writeIndex(w.p, segIndex{
		Version:         segVersion,
		Segment:         id,
		CreatedUnixNano: sc.created,
		SealedUnixNano:  w.opts.Now().UnixNano(),
		Size:            sc.goodBytes,
		Entries:         sc.entries,
	}); err != nil {
		return nil, err
	}
	w.recovery.Repaired++
	return &sealedSeg{id: id, size: sc.goodBytes, created: sc.created}, nil
}

// openActive opens the next active segment and writes its header,
// reusing a parked file when one is available. A parked file keeps its
// old bytes — the header overwrite and in-place record writes leave a
// stale tail — which is safe because the new incarnation's CRC seed
// (fresh id + creation stamp) makes every stale record fail the scan.
func (w *Writer) openActive() error {
	name := segName(w.segID)
	var f WriteFile
	if n := len(w.freelist); n > 0 {
		parked := w.freelist[n-1]
		w.freelist = w.freelist[:n-1]
		if w.p.Rename(parked, name) == nil {
			if rf, err := w.p.Recycle(name); err == nil {
				f = rf
				w.stats.recycled++
			}
		}
		// Any failure falls through to Create, which truncates whatever
		// half-renamed state the provider was left in.
	}
	if f == nil {
		var err error
		f, err = w.p.Create(name)
		if err != nil {
			return fmt.Errorf("journal: create segment: %w", err)
		}
	}
	now := w.opts.Now().UnixNano()
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(now))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: segment header: %w", err)
	}
	w.f = f
	dw, ok := f.(DirectWriter)
	w.direct = ok && dw.DirectWrite()
	w.off = segHeaderSize
	w.flushed = segHeaderSize
	w.created = now
	w.seed = segSeed(w.segID, now)
	w.index = w.index[:0]
	if w.buf == nil {
		w.buf = make([]byte, 0, defaultBufBytes)
	} else {
		w.buf = w.buf[:0]
	}
	return nil
}

// StreamBase is one past the highest stream id recovery saw in existing
// segments: the engine starts numbering there so stream ids stay unique
// across daemon restarts sharing one journal.
func (w *Writer) StreamBase() uint64 { return w.streamBase }

// Recovery reports what OpenWriter repaired.
func (w *Writer) Recovery() RecoveryInfo { return w.recovery }

// Append writes one record whose payload is the concatenation of hdr
// and payload (either may be nil) and returns its location. The split
// exists so the session can journal a wire frame straight from the
// deframer's header and payload buffers without gluing them first.
func (w *Writer) Append(m Meta, hdr, payload []byte) (Loc, error) {
	n := len(hdr) + len(payload)
	if n > MaxRecordPayload {
		return Loc{}, fmt.Errorf("journal: record of %d bytes exceeds cap", n)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return Loc{}, fmt.Errorf("journal: append after close")
	}
	if w.werr != nil {
		w.stats.appendErrors++
		return Loc{}, w.werr
	}

	loc := Loc{Segment: w.segID, Offset: w.off}
	rec := w.rec[:]
	binary.LittleEndian.PutUint32(rec[4:8], uint32(n))
	rec[8] = byte(m.Kind)
	binary.LittleEndian.PutUint64(rec[9:17], m.Stream)
	binary.LittleEndian.PutUint64(rec[17:25], m.FirstSeq)
	binary.LittleEndian.PutUint64(rec[25:33], m.LastSeq)
	crc := crc32.Update(w.seed, crcTable, rec[4:])
	crc = crc32.Update(crc, crcTable, hdr)
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(rec[0:4], crc)

	if w.direct {
		// Mapped segment: each Write is a memcpy, so records go straight
		// through and the append buffer (whose batching amortizes
		// syscalls this file doesn't make) stays out of the way.
		if err := w.writeDirect(rec, hdr, payload); err != nil {
			return loc, err
		}
	} else {
		w.buf = append(w.buf, rec[:]...)
		w.buf = append(w.buf, hdr...)
		w.buf = append(w.buf, payload...)
	}
	recLen := int64(recHeaderSize + n)
	w.index = append(w.index, IndexEntry{
		Stream: m.Stream, Kind: m.Kind, Offset: w.off, Len: recLen,
		FirstSeq: m.FirstSeq, LastSeq: m.LastSeq,
	})
	w.off += recLen
	w.stats.appendedRecords++
	w.stats.appendedBytes += uint64(recLen)

	now := w.opts.Now()
	w.stats.newestUnixNano = now.UnixNano()
	if !w.direct && len(w.buf) >= defaultBufBytes {
		if err := w.flushLocked(); err != nil {
			return loc, err
		}
	}
	if w.opts.FsyncInterval < 0 {
		if err := w.syncLocked(now); err != nil {
			return loc, err
		}
	}
	if w.off >= w.opts.SegmentBytes ||
		(w.opts.SegmentAge > 0 && now.UnixNano()-w.created >= int64(w.opts.SegmentAge)) {
		if err := w.rotateLocked(now); err != nil {
			return loc, err
		}
	}
	return loc, nil
}

// writeDirect sends one record straight to the active segment's
// WriteFile — the path for mapped segments, where each Write is a
// user-space copy and buffering would only add one more.
func (w *Writer) writeDirect(rec, hdr, payload []byte) error {
	parts := [3][]byte{rec, hdr, payload}
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		n, err := w.f.Write(p)
		w.flushed += int64(n)
		if err != nil {
			w.werr = fmt.Errorf("journal: write segment %d: %w", w.segID, err)
			w.stats.appendErrors++
			return w.werr
		}
	}
	return nil
}

// flushLocked pushes the append buffer toward the provider. In async
// mode the full buffer is handed to flushLoop and a recycled one swapped
// in — the actual write happens off the append path, and any error
// surfaces at the next drain (sync tick, rotation, or Close) rather
// than here. In inline mode the write happens synchronously.
func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	if w.flushCh != nil {
		w.flushCh <- flushReq{f: w.f, seg: w.segID, buf: w.buf}
		w.flushed += int64(len(w.buf))
		w.buf = (<-w.flushRet)[:0]
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.werr = fmt.Errorf("journal: write segment %d: %w", w.segID, err)
		w.stats.appendErrors++
		return w.werr
	}
	w.flushed += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// drainFlushLocked barriers the async flusher: when it returns, every
// buffer handed off before the call has been written (or dropped after a
// failure, now folded into w.werr). Callers hold w.mu; flushLoop never
// takes it, so the barrier cannot deadlock. No-op in inline mode.
func (w *Writer) drainFlushLocked() error {
	if w.flushCh == nil {
		return w.werr
	}
	w.flushCh <- flushReq{reply: w.drainReply}
	if err := <-w.drainReply; err != nil && w.werr == nil {
		w.werr = err
		w.stats.appendErrors++
	}
	return w.werr
}

// syncLocked flushes, drains, and fsyncs the active segment, timing the
// sync.
func (w *Writer) syncLocked(now time.Time) error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	if err := w.drainFlushLocked(); err != nil {
		return err
	}
	t0 := w.opts.Now()
	if err := w.f.Sync(); err != nil {
		w.werr = fmt.Errorf("journal: sync segment %d: %w", w.segID, err)
		w.stats.appendErrors++
		return w.werr
	}
	if d := w.opts.Now().Sub(t0); d > 0 {
		w.stats.fsyncNs.Observe(uint64(d))
	} else {
		w.stats.fsyncNs.Observe(0)
	}
	w.lastSync = now
	return nil
}

// Sync forces a flush + fsync — the daemon calls it on shutdown paths
// that bypass Close.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked(w.opts.Now())
}

// rotateLocked seals the active segment and opens the next one, then
// applies retention to the sealed set.
func (w *Writer) rotateLocked(now time.Time) error {
	if err := w.syncLocked(now); err != nil {
		return err
	}
	if err := w.sealActiveLocked(now); err != nil {
		return err
	}
	w.stats.rotations++
	w.segID++
	if err := w.openActive(); err != nil {
		w.werr = err
		return err
	}
	w.compactLocked(now)
	return nil
}

// sealActiveLocked closes the active segment and writes its sidecar.
func (w *Writer) sealActiveLocked(now time.Time) error {
	if err := writeIndex(w.p, segIndex{
		Version:         segVersion,
		Segment:         w.segID,
		CreatedUnixNano: w.created,
		SealedUnixNano:  now.UnixNano(),
		Size:            w.off,
		Entries:         w.index,
	}); err != nil {
		w.werr = err
		return err
	}
	if err := w.f.Close(); err != nil {
		w.werr = fmt.Errorf("journal: close segment %d: %w", w.segID, err)
		return w.werr
	}
	w.sealed = append(w.sealed, sealedSeg{id: w.segID, size: w.off, created: w.created})
	return nil
}

// compactLocked applies retention: sealed segments beyond the count or
// byte budget are removed, oldest first. The active segment never
// compacts.
func (w *Writer) compactLocked(now time.Time) {
	over := func() bool {
		if w.opts.RetainSegments > 0 && len(w.sealed) > w.opts.RetainSegments {
			return true
		}
		if w.opts.RetainBytes > 0 {
			var total int64
			for _, s := range w.sealed {
				total += s.size
			}
			return total > w.opts.RetainBytes
		}
		return false
	}
	if w.opts.RetainSegments <= 0 && w.opts.RetainBytes <= 0 {
		return
	}
	res := CompactionResult{UnixNano: now.UnixNano()}
	for over() {
		victim := w.sealed[0]
		if err := w.retireLocked(victim.id); err != nil {
			res.Err = err.Error()
			break
		}
		w.sealed = w.sealed[1:]
		res.Removed++
	}
	w.stats.lastCompaction = res
}

// retireLocked disposes of a compacted segment: parked for reuse while
// the freelist has room, deleted otherwise. Either way its sidecar goes
// — a parked file has no index identity until rotation renames it back
// into the segment namespace.
func (w *Writer) retireLocked(id uint64) error {
	if w.opts.RecycleSegments > 0 && len(w.freelist) < w.opts.RecycleSegments {
		name := recycleName(w.nextRecycle)
		if err := w.p.Rename(segName(id), name); err == nil {
			w.nextRecycle++
			w.freelist = append(w.freelist, name)
			// Sidecar removal is best effort: an orphan idx without its
			// segment is ignored by open and read paths.
			_ = w.p.Remove(idxName(id))
			return nil
		}
		// Rename failed; fall through and try plain removal.
	}
	if err := w.p.Remove(segName(id)); err != nil {
		return err
	}
	_ = w.p.Remove(idxName(id))
	return nil
}

// Close flushes, seals the active segment, and closes the journal. An
// active segment with no records is deleted rather than sealed.
func (w *Writer) Close() error {
	// Claim the syncer under the lock so concurrent Closes race safely,
	// but join it outside: it may be mid-fsync holding the lock itself.
	w.mu.Lock()
	stop := w.syncStop
	w.syncStop = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.syncDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked(w.opts.Now())
	// The final sync drained the flusher (or died trying); stop it before
	// touching the file again so no write can land after the seal.
	// flushLoop never takes w.mu, so joining it under the lock is safe.
	if w.flushCh != nil {
		close(w.flushCh)
		<-w.flushDone
		w.flushCh = nil
	}
	if err != nil {
		w.f.Close()
		return err
	}
	if len(w.index) == 0 {
		w.f.Close()
		return w.p.Remove(segName(w.segID))
	}
	return w.sealActiveLocked(w.opts.Now())
}

// Stats snapshots the journal for /metrics and /statusz.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Dir:              w.p.Name(),
		ActiveSegment:    w.segID,
		ActiveBytes:      w.off,
		AppendedRecords:  w.stats.appendedRecords,
		AppendedBytes:    w.stats.appendedBytes,
		Rotations:        w.stats.rotations,
		RecycledSegments: w.stats.recycled,
		AppendErrors:     w.stats.appendErrors,
		NewestUnixNano:   w.stats.newestUnixNano,
		FsyncNs:          w.stats.fsyncNs,
		LastCompaction:   w.stats.lastCompaction,
		Recovery:         w.recovery,
	}
	st.Segments = len(w.sealed)
	st.TotalBytes = w.off
	for _, s := range w.sealed {
		st.TotalBytes += s.size
	}
	st.OldestUnixNano = w.created
	if len(w.sealed) > 0 {
		st.OldestUnixNano = w.sealed[0].created
	}
	if !w.closed {
		st.Segments++ // the active segment
	}
	return st
}

// --- shared segment scanning ---

// scanResult is what a sequential segment scan recovers.
type scanResult struct {
	created   int64
	entries   []IndexEntry
	goodBytes int64 // offset of the first byte past the last whole record
	torn      bool  // the scan stopped at a bad or truncated record
}

// scanSegment walks the segment with id from the start, validating
// every record's seeded CRC, and stops at the first torn or corrupt
// one. It returns an error only when the segment header itself is
// unreadable — in every other case the good prefix is usable and
// goodBytes says where it ends. The id feeds the CRC seed: records from
// a recycled file's previous incarnation (different id or creation
// stamp) fail here, which is what keeps stale tails from resurrecting.
func scanSegment(r io.Reader, id uint64) (scanResult, error) {
	var sc scanResult
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return sc, fmt.Errorf("journal: segment header: %w", err)
	}
	if string(hdr[:4]) != segMagic {
		return sc, fmt.Errorf("journal: bad segment magic % x", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != segVersion {
		return sc, fmt.Errorf("journal: segment version %d, this build reads %d", v, segVersion)
	}
	sc.created = int64(binary.LittleEndian.Uint64(hdr[8:16]))
	sc.goodBytes = segHeaderSize
	seed := segSeed(id, sc.created)

	var rec [recHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err != io.EOF {
				sc.torn = true
			}
			return sc, nil
		}
		n := binary.LittleEndian.Uint32(rec[4:8])
		if int64(n) > MaxRecordPayload {
			sc.torn = true
			return sc, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			sc.torn = true
			return sc, nil
		}
		crc := crc32.Update(seed, crcTable, rec[4:])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != binary.LittleEndian.Uint32(rec[0:4]) {
			sc.torn = true
			return sc, nil
		}
		recLen := int64(recHeaderSize) + int64(n)
		sc.entries = append(sc.entries, IndexEntry{
			Stream:   binary.LittleEndian.Uint64(rec[9:17]),
			Kind:     Kind(rec[8]),
			Offset:   sc.goodBytes,
			Len:      recLen,
			FirstSeq: binary.LittleEndian.Uint64(rec[17:25]),
			LastSeq:  binary.LittleEndian.Uint64(rec[25:33]),
		})
		sc.goodBytes += recLen
	}
}

// --- sidecar IO ---

func writeIndex(p Provider, idx segIndex) error {
	data, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("journal: encode index: %w", err)
	}
	f, err := p.Create(idxName(idx.Segment))
	if err != nil {
		return fmt.Errorf("journal: create index: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("journal: write index: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync index: %w", err)
	}
	return f.Close()
}

func loadIndex(p Provider, id uint64) (segIndex, error) {
	f, err := p.Open(idxName(id))
	if err != nil {
		return segIndex{}, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return segIndex{}, err
	}
	var idx segIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return segIndex{}, fmt.Errorf("journal: decode index %d: %w", id, err)
	}
	if idx.Version != segVersion || idx.Segment != id {
		return segIndex{}, fmt.Errorf("journal: index %d mismatched (version %d, segment %d)", id, idx.Version, idx.Segment)
	}
	return idx, nil
}
