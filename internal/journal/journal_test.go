package journal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testProviders runs fn against both providers: memory is the
// reference, dir is production.
func testProviders(t *testing.T, fn func(t *testing.T, p Provider)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) { fn(t, InMemory()) })
	t.Run("dir", func(t *testing.T) {
		p, err := OpenDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, p)
	})
}

// appendAll writes records and returns their locations.
func appendAll(t *testing.T, w *Writer, recs []struct {
	m       Meta
	payload string
}) []Loc {
	t.Helper()
	locs := make([]Loc, len(recs))
	for i, r := range recs {
		loc, err := w.Append(r.m, nil, []byte(r.payload))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		locs[i] = loc
	}
	return locs
}

func TestRoundTrip(t *testing.T) {
	recs := []struct {
		m       Meta
		payload string
	}{
		{Meta{Kind: KindHello, Stream: 1}, "hello-1"},
		{Meta{Kind: KindHello, Stream: 2}, "hello-2"},
		{Meta{Kind: KindEvents, Stream: 1, FirstSeq: 1, LastSeq: 40}, "events-1a"},
		{Meta{Kind: KindEvents, Stream: 2, FirstSeq: 1, LastSeq: 10}, "events-2a"},
		{Meta{Kind: KindEvents, Stream: 1, FirstSeq: 41, LastSeq: 90}, "events-1b"},
		{Meta{Kind: KindGoodbye, Stream: 1}, "bye-1"},
		{Meta{Kind: KindResult, Stream: 1}, `{"workload":"q"}`},
		{Meta{Kind: KindError, Stream: 2}, "overloaded"},
	}
	testProviders(t, func(t *testing.T, p Provider) {
		w, err := OpenWriter(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		locs := appendAll(t, w, recs)
		st := w.Stats()
		if st.AppendedRecords != uint64(len(recs)) {
			t.Fatalf("appended %d records, want %d", st.AppendedRecords, len(recs))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := OpenReader(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		segs := r.Segments()
		if len(segs) != 1 || segs[0].Records != len(recs) || segs[0].Torn || segs[0].Scanned {
			t.Fatalf("segments = %+v", segs)
		}
		for i, rec := range recs {
			m, payload, err := r.ReadAt(locs[i])
			if err != nil {
				t.Fatalf("ReadAt %d: %v", i, err)
			}
			if m != rec.m || string(payload) != rec.payload {
				t.Fatalf("record %d: got %+v %q, want %+v %q", i, m, payload, rec.m, rec.payload)
			}
		}

		streams := r.Streams()
		if len(streams) != 2 {
			t.Fatalf("streams = %+v", streams)
		}
		s1 := streams[0]
		if s1.Stream != 1 || s1.Events != 2 || s1.FirstSeq != 1 || s1.LastSeq != 90 ||
			!s1.HasHello || !s1.HasGoodbye || !s1.HasResult || s1.HasError {
			t.Fatalf("stream 1 = %+v", s1)
		}
		s2 := streams[1]
		if s2.Stream != 2 || s2.Events != 1 || !s2.HasError || s2.HasGoodbye {
			t.Fatalf("stream 2 = %+v", s2)
		}

		got, err := io.ReadAll(r.StreamReader(1))
		if err != nil {
			t.Fatal(err)
		}
		if want := "hello-1events-1aevents-1bbye-1"; string(got) != want {
			t.Fatalf("stream 1 bytes = %q, want %q", got, want)
		}

		sample, errMsg, ok := r.Result(1)
		if !ok || errMsg != "" || string(sample) != `{"workload":"q"}` {
			t.Fatalf("Result(1) = %q %q %v", sample, errMsg, ok)
		}
		if _, errMsg, ok := r.Result(2); !ok || errMsg != "overloaded" {
			t.Fatalf("Result(2) = %q %v", errMsg, ok)
		}
		if _, _, ok := r.Result(7); ok {
			t.Fatal("Result(7) should be absent")
		}
	})
}

func TestSplitPayloadAppend(t *testing.T) {
	p := InMemory()
	w, err := OpenWriter(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := w.Append(Meta{Kind: KindEvents, Stream: 3}, []byte("head|"), []byte("tail"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, payload, err := r.ReadAt(loc)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "head|tail" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestRotationAndRetention(t *testing.T) {
	testProviders(t, func(t *testing.T, p Provider) {
		w, err := OpenWriter(p, Options{SegmentBytes: 256, RetainSegments: 2})
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte("x"), 100)
		for i := 0; i < 20; i++ {
			if _, err := w.Append(Meta{Kind: KindEvents, Stream: uint64(i)}, nil, payload); err != nil {
				t.Fatal(err)
			}
		}
		st := w.Stats()
		if st.Rotations == 0 {
			t.Fatal("no rotations at a 256-byte segment cap")
		}
		if st.Segments > 3 { // 2 sealed retained + active
			t.Fatalf("retention kept %d segments", st.Segments)
		}
		if st.LastCompaction.Removed == 0 {
			t.Fatalf("compaction removed nothing: %+v", st.LastCompaction)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := OpenReader(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		segs := r.Segments()
		if len(segs) == 0 || len(segs) > 3 {
			t.Fatalf("reader sees %d segments", len(segs))
		}
		// The oldest streams are gone; the newest survive and read back.
		streams := r.Streams()
		if len(streams) == 0 {
			t.Fatal("no streams survived retention")
		}
		last := streams[len(streams)-1]
		if last.Stream != 19 {
			t.Fatalf("newest stream = %d, want 19", last.Stream)
		}
		got, err := io.ReadAll(r.StreamReader(last.Stream))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("stream %d read: %q err %v", last.Stream, got, err)
		}
		// An anchor into a compacted segment reports rather than panics.
		if _, _, err := r.ReadAt(Loc{Segment: 0, Offset: segHeaderSize}); err == nil {
			t.Fatal("ReadAt into compacted segment 0 should fail")
		}
	})
}

func TestAgeRotation(t *testing.T) {
	now := time.Unix(0, 0)
	p := InMemory()
	w, err := OpenWriter(p, Options{
		SegmentAge: time.Minute,
		Now:        func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Meta{Kind: KindEvents, Stream: 1}, nil, []byte("a")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := w.Append(Meta{Kind: KindEvents, Stream: 1}, nil, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Rotations != 1 {
		t.Fatalf("rotations = %d, want 1", st.Rotations)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamBaseAcrossReopen(t *testing.T) {
	testProviders(t, func(t *testing.T, p Provider) {
		w, err := OpenWriter(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if w.StreamBase() != 0 {
			t.Fatalf("fresh StreamBase = %d", w.StreamBase())
		}
		for _, id := range []uint64{5, 9, 2} {
			if _, err := w.Append(Meta{Kind: KindHello, Stream: id}, nil, []byte("h")); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWriter(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		if w2.StreamBase() != 10 {
			t.Fatalf("reopened StreamBase = %d, want 10", w2.StreamBase())
		}
	})
}

// unsealedSegment writes recs into a throwaway dir with fsync on every
// append and no Close, then returns the raw bytes of the (unsealed)
// active segment — the exact on-disk state a SIGKILL leaves behind.
func unsealedSegment(t *testing.T, recs []struct {
	m       Meta
	payload string
}) []byte {
	t.Helper()
	dir := t.TempDir()
	p, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(p, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs)
	// No Close: abandon the writer as a crash would. The on-disk file
	// may extend past the written bytes (fallocate reservation); keep
	// the logical extent so callers cut at real record boundaries.
	logical := w.Stats().ActiveBytes
	data, err := os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		t.Fatal(err)
	}
	return data[:logical]
}

// reopenSegment plants data as segment 0 in a fresh dir and runs
// recovery over it.
func reopenSegment(t *testing.T, data []byte) (*Writer, Provider, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(p, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	return w, p, dir
}

// TestCrashRecoveryEveryBoundary cuts the unsealed segment at every
// byte boundary of the last record and asserts recovery lands exactly
// on the preceding whole-record prefix, stays appendable, and reads
// back clean.
func TestCrashRecoveryEveryBoundary(t *testing.T) {
	recs := []struct {
		m       Meta
		payload string
	}{
		{Meta{Kind: KindHello, Stream: 1}, "hello"},
		{Meta{Kind: KindEvents, Stream: 1, FirstSeq: 1, LastSeq: 8}, "eventsA"},
		{Meta{Kind: KindEvents, Stream: 1, FirstSeq: 9, LastSeq: 20}, "eventsBB"},
	}
	data := unsealedSegment(t, recs)
	lastLen := recHeaderSize + len(recs[len(recs)-1].payload)
	lastStart := len(data) - lastLen

	for cut := lastStart; cut < len(data); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			w, p, _ := reopenSegment(t, data[:cut])
			rec := w.Recovery()
			if rec.Repaired != 1 {
				t.Fatalf("repaired = %d", rec.Repaired)
			}
			if want := int64(cut - lastStart); rec.TruncatedBytes != want {
				t.Fatalf("truncated %d bytes, want %d", rec.TruncatedBytes, want)
			}
			if w.StreamBase() != 2 {
				t.Fatalf("StreamBase = %d", w.StreamBase())
			}
			// The journal must accept appends immediately after recovery.
			if _, err := w.Append(Meta{Kind: KindGoodbye, Stream: 1}, nil, []byte("bye")); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := OpenReader(p)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			want := "hello" + "eventsA" + "bye"
			got, err := io.ReadAll(r.StreamReader(1))
			if err != nil || string(got) != want {
				t.Fatalf("stream 1 after recovery = %q (err %v), want %q", got, err, want)
			}
		})
	}

	// The whole file (clean kill between appends): nothing truncated.
	w, _, _ := reopenSegment(t, data)
	if rec := w.Recovery(); rec.TruncatedBytes != 0 || rec.Repaired != 1 {
		t.Fatalf("clean tail recovery = %+v", rec)
	}
	w.Close()
}

// TestCrashRecoveryCorruptTail flips each byte of the last record in
// turn; the CRC must catch every one and recovery must drop exactly
// that record.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	recs := []struct {
		m       Meta
		payload string
	}{
		{Meta{Kind: KindHello, Stream: 1}, "hello"},
		{Meta{Kind: KindEvents, Stream: 1, FirstSeq: 1, LastSeq: 8}, "events"},
	}
	data := unsealedSegment(t, recs)
	lastLen := recHeaderSize + len(recs[len(recs)-1].payload)
	lastStart := len(data) - lastLen

	for i := lastStart; i < len(data); i++ {
		// Corrupting the length field can declare a giant record; both
		// that and a flipped payload byte must fail the scan safely.
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		w, p, _ := reopenSegment(t, mut)
		if err := w.Close(); err != nil {
			t.Fatalf("byte %d: close: %v", i, err)
		}
		r, err := OpenReader(p)
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		got, err := io.ReadAll(r.StreamReader(1))
		r.Close()
		if err != nil || string(got) != "hello" {
			t.Fatalf("byte %d: stream = %q (err %v), want %q", i, got, err, "hello")
		}
	}
}

// TestRecoveryRemovesGarbageSegment: a segment whose header never made
// it to disk is deleted, not served.
func TestRecoveryRemovesGarbageSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(3)), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if rec := w.Recovery(); rec.RemovedSegments != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	// The next segment id must not collide with the removed one.
	if w.Stats().ActiveSegment != 4 {
		t.Fatalf("active segment = %d, want 4", w.Stats().ActiveSegment)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(3))); !os.IsNotExist(err) {
		t.Fatalf("garbage segment still present: %v", err)
	}
}

// TestRecoveryAcrossSealedSegments: sealed segments are trusted via
// their sidecars; only the unsealed tail is scanned.
func TestRecoveryAcrossSealedSegments(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(p, Options{SegmentBytes: 128, FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 80)
	for i := 0; i < 4; i++ {
		if _, err := w.Append(Meta{Kind: KindEvents, Stream: 1, FirstSeq: uint64(i)}, nil, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close. At 128-byte segments each record rotates,
	// so sealed segments plus one unsealed tail exist.
	w2, err := OpenWriter(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	r, err := OpenReader(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var events int
	for _, s := range r.Streams() {
		events += s.Events
	}
	if events != 4 {
		t.Fatalf("recovered %d event records, want 4", events)
	}
}

func TestStatsShape(t *testing.T) {
	now := time.Unix(100, 0)
	p := InMemory()
	w, err := OpenWriter(p, Options{FsyncInterval: -1, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(Meta{Kind: KindHello, Stream: 1}, nil, []byte("h")); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Dir != "memory" || st.Segments != 1 || st.AppendedRecords != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.FsyncNs.Count == 0 {
		t.Fatal("fsync histogram empty with FsyncInterval < 0")
	}
	if st.OldestUnixNano != now.UnixNano() || st.NewestUnixNano != now.UnixNano() {
		t.Fatalf("timestamps: oldest %d newest %d", st.OldestUnixNano, st.NewestUnixNano)
	}
	if st.ActiveBytes != segHeaderSize+recHeaderSize+1 {
		t.Fatalf("active bytes = %d", st.ActiveBytes)
	}
}

func TestAppendAfterClose(t *testing.T) {
	p := InMemory()
	w, err := OpenWriter(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Meta{Kind: KindHello, Stream: 1}, nil, []byte("h")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Meta{Kind: KindHello, Stream: 2}, nil, []byte("h")); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyJournalCloseLeavesNothing(t *testing.T) {
	p := InMemory()
	w, err := OpenWriter(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := p.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("empty journal left %v behind", names)
	}
}

func TestRecordTooLarge(t *testing.T) {
	p := InMemory()
	w, err := OpenWriter(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	huge := make([]byte, 1)
	if _, err := w.Append(Meta{Kind: KindEvents}, make([]byte, MaxRecordPayload), huge); err == nil {
		t.Fatal("oversized record should be rejected")
	}
}

// TestSegmentRecycling drives rotation until retired segments are
// parked and reused, then checks the journal still reads back exactly
// and that a restarted writer adopts the parked files.
func TestSegmentRecycling(t *testing.T) {
	testProviders(t, func(t *testing.T, p Provider) {
		opts := Options{SegmentBytes: 256, RetainSegments: 1, FsyncInterval: -1}
		w, err := OpenWriter(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte("r"), 100)
		for i := 0; i < 40; i++ {
			m := Meta{Kind: KindEvents, Stream: uint64(i), FirstSeq: 1, LastSeq: 1}
			if _, err := w.Append(m, nil, payload); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		st := w.Stats()
		if st.RecycledSegments == 0 {
			t.Fatalf("no segments recycled across %d rotations: %+v", st.Rotations, st)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		names, err := p.List()
		if err != nil {
			t.Fatal(err)
		}
		parked := 0
		for _, n := range names {
			if _, ok := parseRecycleName(n); ok {
				parked++
			}
		}
		if parked == 0 || parked > DefaultRecycleSegments {
			t.Fatalf("parked %d recycle files after close, want 1..%d (names %v)", parked, DefaultRecycleSegments, names)
		}

		// Reads over recycled segments must be exact: every surviving
		// record intact, and the parked files invisible to the reader.
		r, err := OpenReader(p)
		if err != nil {
			t.Fatal(err)
		}
		streams := r.Streams()
		if len(streams) == 0 {
			t.Fatal("no streams survived retention")
		}
		last := streams[len(streams)-1]
		if last.Stream != 39 || last.Events != 1 {
			t.Fatalf("newest stream = %+v", last)
		}
		for _, s := range r.segs {
			for _, e := range s.entries {
				if _, got, err := r.readEntry(r.bySeg[s.info.ID], e); err != nil {
					t.Fatalf("seg %d off %d: %v", s.info.ID, e.Offset, err)
				} else if !bytes.Equal(got, payload) {
					t.Fatalf("seg %d off %d: payload corrupted", s.info.ID, e.Offset)
				}
			}
		}
		r.Close()

		// A restarted writer adopts the parked files: its first active
		// segment comes off the freelist, not from Create.
		w2, err := OpenWriter(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		if got := w2.Stats().RecycledSegments; got == 0 {
			t.Fatal("restarted writer did not adopt parked recycle files")
		}
		if _, err := w2.Append(Meta{Kind: KindHello, Stream: 99}, nil, []byte("h")); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRecycledStaleTailRejected is the hazard segment-recycling
// introduces: a crash leaves the previous incarnation's bytes past the
// new tail, and because every record here is the same size the stale
// tail starts exactly on a record boundary — a record whose CRC is
// valid under the OLD segment's seed. Recovery must reject it via the
// per-incarnation seed and truncate, never resurrecting old records
// into the new segment.
func TestRecycledStaleTailRejected(t *testing.T) {
	testProviders(t, func(t *testing.T, p Provider) {
		var fake int64
		now := func() time.Time { fake++; return time.Unix(fake, 0) }
		opts := Options{SegmentBytes: 512, RetainSegments: 1, FsyncInterval: -1, Now: now}
		payload := bytes.Repeat([]byte("s"), 100)

		// Fill and rotate until retired segments are parked on the
		// freelist, with stream ids in the 1000s.
		w, err := OpenWriter(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			m := Meta{Kind: KindEvents, Stream: 1000 + uint64(i), FirstSeq: 1, LastSeq: 1}
			if _, err := w.Append(m, nil, payload); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		// Restart: the new active segment overwrites a parked file in
		// place. Write two records (stream ids in the 2000s) and crash —
		// drop the writer without Close, leaving no seal and no sidecar.
		w2, err := OpenWriter(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if w2.Stats().RecycledSegments == 0 {
			t.Fatal("active segment is not recycled; stale-tail scenario not constructed")
		}
		for i := 0; i < 2; i++ {
			m := Meta{Kind: KindEvents, Stream: 2000 + uint64(i), FirstSeq: 1, LastSeq: 1}
			if _, err := w2.Append(m, nil, payload); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		w2 = nil // crash: buffered state already flushed by FsyncInterval < 0

		// Recovery must truncate at the incarnation boundary.
		w3, err := OpenWriter(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		rec := w3.Recovery()
		if rec.Repaired == 0 || rec.TruncatedBytes == 0 {
			t.Fatalf("recovery did not trim the stale tail: %+v", rec)
		}
		if err := w3.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := OpenReader(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		segs := r.Segments()
		if len(segs) == 0 {
			t.Fatal("no segments after recovery")
		}
		crashed := segs[len(segs)-1]
		if crashed.Records != 2 {
			t.Fatalf("recycled crash segment has %d records, want 2 (stale record resurrected?): %+v", crashed.Records, crashed)
		}
		seen2000 := 0
		for _, s := range r.Streams() {
			if s.Stream >= 2000 {
				seen2000++
			}
		}
		if seen2000 != 2 {
			t.Fatalf("want streams 2000 and 2001 to survive, saw %d", seen2000)
		}
	})
}

// TestCrashRecoveryFallocatedZeroTail is the crash image an mmap-backed
// segment leaves behind: the file extends to its fallocated reservation,
// so the written records are followed by a run of zero pages. Recovery
// must truncate the whole zero tail and keep every record.
func TestCrashRecoveryFallocatedZeroTail(t *testing.T) {
	recs := []struct {
		m       Meta
		payload string
	}{
		{Meta{Kind: KindHello, Stream: 1}, "hello"},
		{Meta{Kind: KindEvents, Stream: 1, FirstSeq: 1, LastSeq: 8}, "events"},
	}
	data := unsealedSegment(t, recs)
	w, p, _ := reopenSegment(t, append(data, make([]byte, 64<<10)...))
	rec := w.Recovery()
	if rec.Repaired != 1 || rec.TruncatedBytes != 64<<10 {
		t.Fatalf("recovery = %+v, want the 65536-byte zero tail truncated", rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r.StreamReader(1))
	if err != nil || string(got) != "hello"+"events" {
		t.Fatalf("stream 1 = %q (err %v)", got, err)
	}
}
