package journal

// Storage providers: the journal's only contact with the outside world.
// The writer and reader speak this narrow interface so the same record
// format, recovery scan, and index logic run over real files in
// production and over in-memory buffers in tests — the provider split
// voedger's istorage takes, reduced to what an append-only segment store
// actually needs (create, open, list, remove, truncate, rename,
// recycle).

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// WriteFile is an open segment being appended to.
type WriteFile interface {
	io.Writer

	// Sync flushes the file to stable storage (fsync for real files, a
	// no-op for memory).
	Sync() error

	io.Closer
}

// DirectWriter is an optional WriteFile refinement. Reporting true
// means Write is a user-space copy (into a memory-mapped segment), so
// the journal writer sends records straight through instead of
// batching them in its append buffer — batching exists to amortize
// write syscalls, and a mapped file has none to amortize.
type DirectWriter interface {
	DirectWrite() bool
}

// ReadFile is an open segment being read. ReaderAt supports the
// violation-anchor seek path (read one record at a known offset without
// disturbing a sequential scan).
type ReadFile interface {
	io.ReadSeeker
	io.ReaderAt
	io.Closer
}

// Provider is the pluggable storage behind a journal: a flat namespace
// of named blobs. Implementations must serialize their own metadata
// operations; the journal serializes writes itself.
type Provider interface {
	// Name identifies the backing store for logs and /statusz
	// ("dir:/var/journal", "memory").
	Name() string

	// List returns every stored name, in any order.
	List() ([]string, error)

	// Create makes (or truncates) a blob for writing.
	Create(name string) (WriteFile, error)

	// Open opens an existing blob for reading.
	Open(name string) (ReadFile, error)

	// Size reports a blob's current length in bytes.
	Size(name string) (int64, error)

	// Remove deletes a blob. Removing a missing blob is an error.
	Remove(name string) error

	// Truncate cuts a blob to size bytes — the recovery path's torn-tail
	// repair.
	Truncate(name string, size int64) error

	// Rename moves a blob to a new name, replacing any blob already
	// there. Rotation uses it to park retired segments for reuse and to
	// hand a parked file its next segment name.
	Rename(old, new string) error

	// Recycle reopens an existing blob for writing from offset zero
	// without releasing its storage: new bytes overwrite old in place,
	// and the old tail survives past the write point until truncated.
	// Rotation uses it to reuse a retired segment's already-allocated
	// pages — first-touch page allocation in the kernel is the dominant
	// cost of growing a fresh segment file — instead of paying that
	// allocation again. Record checksums are seeded per segment
	// incarnation, so the stale tail can never scan as valid.
	Recycle(name string) (WriteFile, error)
}

// --- file provider ---

// fileProvider stores blobs as files in one directory. On linux,
// segment writes go through pooled shared memory maps (see
// provider_linux.go): appending is a user-space memcpy into
// fallocate-reserved pages rather than a write syscall's kernel copy,
// and a recycled segment keeps its mapping — and therefore its hot
// pages — across incarnations. Elsewhere, plain buffered writes.
type fileProvider struct {
	dir string

	// poolMu guards pool: segment files kept open and mapped after
	// Close so Recycle can hand the next incarnation a live mapping.
	poolMu sync.Mutex
	pool   map[string]*mmapFile
}

// poolCap bounds how many closed segment files stay open and mapped
// awaiting recycling — the writer's freelist plus the final sealed
// segment is the working set.
const poolCap = 4

// OpenDir returns a Provider over files in dir, creating it if needed.
func OpenDir(dir string) (Provider, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	return &fileProvider{dir: dir}, nil
}

func (p *fileProvider) Name() string { return "dir:" + p.dir }

func (p *fileProvider) List() ([]string, error) {
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (p *fileProvider) Open(name string) (ReadFile, error) {
	return os.Open(filepath.Join(p.dir, name))
}

func (p *fileProvider) Size(name string) (int64, error) {
	fi, err := os.Stat(filepath.Join(p.dir, name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (p *fileProvider) Remove(name string) error {
	p.evict(name)
	return os.Remove(filepath.Join(p.dir, name))
}

func (p *fileProvider) Truncate(name string, size int64) error {
	p.evict(name)
	return os.Truncate(filepath.Join(p.dir, name), size)
}

func (p *fileProvider) Rename(old, new string) error {
	if err := os.Rename(filepath.Join(p.dir, old), filepath.Join(p.dir, new)); err != nil {
		return err
	}
	p.renamePooled(old, new)
	return nil
}

// --- memory provider ---

// memProvider stores blobs in process memory — the test provider, and
// the reference the file provider's behavior is checked against.
type memProvider struct {
	mu    sync.Mutex
	blobs map[string]*[]byte
}

// InMemory returns an empty memory-backed Provider.
func InMemory() Provider {
	return &memProvider{blobs: make(map[string]*[]byte)}
}

func (p *memProvider) Name() string { return "memory" }

func (p *memProvider) List() ([]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.blobs))
	for n := range p.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (p *memProvider) Create(name string) (WriteFile, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := new([]byte)
	p.blobs[name] = b
	return &memWriteFile{p: p, b: b}, nil
}

func (p *memProvider) Open(name string) (ReadFile, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.blobs[name]
	if !ok {
		return nil, fmt.Errorf("journal: open %s: %w", name, os.ErrNotExist)
	}
	// Snapshot the contents: a reader holds a stable view even if the
	// writer keeps appending, matching what a file read sees in practice
	// for the sealed segments the reader cares about.
	return &memReadFile{Reader: bytes.NewReader(append([]byte(nil), *b...))}, nil
}

func (p *memProvider) Size(name string) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.blobs[name]
	if !ok {
		return 0, fmt.Errorf("journal: size %s: %w", name, os.ErrNotExist)
	}
	return int64(len(*b)), nil
}

func (p *memProvider) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.blobs[name]; !ok {
		return fmt.Errorf("journal: remove %s: %w", name, os.ErrNotExist)
	}
	delete(p.blobs, name)
	return nil
}

func (p *memProvider) Truncate(name string, size int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.blobs[name]
	if !ok {
		return fmt.Errorf("journal: truncate %s: %w", name, os.ErrNotExist)
	}
	if size < 0 || size > int64(len(*b)) {
		return fmt.Errorf("journal: truncate %s to %d bytes of %d", name, size, len(*b))
	}
	*b = (*b)[:size]
	return nil
}

func (p *memProvider) Rename(old, new string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.blobs[old]
	if !ok {
		return fmt.Errorf("journal: rename %s: %w", old, os.ErrNotExist)
	}
	p.blobs[new] = b
	delete(p.blobs, old)
	return nil
}

func (p *memProvider) Recycle(name string) (WriteFile, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.blobs[name]
	if !ok {
		return nil, fmt.Errorf("journal: recycle %s: %w", name, os.ErrNotExist)
	}
	// Overwrite in place from offset zero, old tail preserved — the same
	// stale-bytes hazard a recycled file on disk has, so the seeded-CRC
	// scan gets exercised against the memory provider too.
	return &memWriteFile{p: p, b: b}, nil
}

type memWriteFile struct {
	p   *memProvider
	b   *[]byte
	off int
}

func (f *memWriteFile) Write(d []byte) (int, error) {
	f.p.mu.Lock()
	b := *f.b
	if need := f.off + len(d); need > len(b) {
		if need <= cap(b) {
			b = b[:need]
		} else {
			b = append(b, make([]byte, need-len(b))...)
		}
	}
	copy(b[f.off:], d)
	f.off += len(d)
	*f.b = b
	f.p.mu.Unlock()
	return len(d), nil
}

func (f *memWriteFile) Sync() error  { return nil }
func (f *memWriteFile) Close() error { return nil }

type memReadFile struct {
	*bytes.Reader
}

func (f *memReadFile) Close() error { return nil }
