//go:build linux

package journal

// Memory-mapped segment writes. The flusher's 256 KiB write syscalls
// are the journal's dominant steady-state cost on this path's profile:
// each one is a kernel copy into the page cache at roughly 0.25 ns/B,
// against 0.09 ns/B for a user-space memcpy of the same bytes. Mapping
// the segment file MAP_SHARED turns the flush into that memcpy.
//
// Two details make it fast and safe:
//
//   - Backing space is reserved with fallocate before the mapping is
//     extended, so running out of disk surfaces as an append error from
//     Write, never as a SIGBUS on a page fault. If fallocate is not
//     supported (or fails), the file degrades to plain pwrite-style
//     writes at the current offset — correct, just slower.
//
//   - A closed segment file is parked in the provider's pool still
//     open and still mapped. When rotation recycles it, the next
//     incarnation inherits the live mapping: no page faults, no
//     remapping, no first-touch allocation — the pages are the same
//     hot pages the previous incarnation wrote.

import (
	"os"
	"path/filepath"
	"syscall"
)

func (p *fileProvider) Create(name string) (WriteFile, error) {
	if _, ok := parseSegName(name); !ok {
		// Index sidecars and other small blobs: plain writes, no
		// reservation or pooling worth their bookkeeping.
		return os.OpenFile(filepath.Join(p.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	}
	f, err := os.OpenFile(filepath.Join(p.dir, name), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &mmapFile{f: f, p: p, name: name}, nil
}

func (p *fileProvider) Recycle(name string) (WriteFile, error) {
	p.poolMu.Lock()
	if mf := p.pool[name]; mf != nil {
		delete(p.pool, name)
		p.poolMu.Unlock()
		mf.off = 0
		mf.plain = false
		return mf, nil
	}
	p.poolMu.Unlock()

	f, err := os.OpenFile(filepath.Join(p.dir, name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	mf := &mmapFile{f: f, p: p, name: name}
	// Map the previous incarnation's extent up front: its pages are
	// already allocated, and MAP_POPULATE faults them in with one pass
	// instead of one fault per written page.
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		if m, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()),
			syscall.PROT_READ|syscall.PROT_WRITE,
			syscall.MAP_SHARED|syscall.MAP_POPULATE); err == nil {
			mf.m = m
			mf.backed = fi.Size()
		}
	}
	return mf, nil
}

// evict closes and unmaps a pooled file before an operation (remove,
// truncate) that would invalidate its mapping.
func (p *fileProvider) evict(name string) {
	p.poolMu.Lock()
	mf := p.pool[name]
	delete(p.pool, name)
	p.poolMu.Unlock()
	if mf != nil {
		mf.release(false)
	}
}

// renamePooled keeps the pool keyed by the file's current name as
// rotation parks and reissues segment files.
func (p *fileProvider) renamePooled(old, new string) {
	p.poolMu.Lock()
	if mf := p.pool[old]; mf != nil {
		delete(p.pool, old)
		p.pool[new] = mf
		mf.name = new
	}
	p.poolMu.Unlock()
}

// adopt parks a closed segment file in the pool, keeping it open and
// mapped for Recycle. Reports whether the pool took it.
func (p *fileProvider) adopt(mf *mmapFile) bool {
	p.poolMu.Lock()
	defer p.poolMu.Unlock()
	if p.pool == nil {
		p.pool = make(map[string]*mmapFile, poolCap)
	}
	if len(p.pool) >= poolCap || p.pool[mf.name] != nil {
		return false
	}
	p.pool[mf.name] = mf
	return true
}

// mmapFile is an open segment backed by a shared mapping. Write is the
// only method called concurrently with anything (the flusher owns it);
// Sync touches only the descriptor, and Close runs after the flusher
// has drained.
type mmapFile struct {
	f    *os.File
	p    *fileProvider
	name string
	m    []byte // MAP_SHARED view; len(m) is the mapped capacity
	off  int64  // logical write offset
	// backed is how far the file's storage actually extends. Close
	// trims the file to the bytes written, which can leave the mapping
	// longer than the backing — touching that gap would SIGBUS, so
	// Write re-reserves with fallocate before crossing it.
	backed int64
	// plain degrades to direct file writes when fallocate or mmap is
	// unavailable; the mapped prefix (if any) and file writes are
	// coherent through the unified page cache.
	plain bool
}

// mmapMinCap is the initial reservation; capacity doubles as the
// segment grows, so a SegmentBytes-sized file maps O(log) times.
const mmapMinCap = 64 << 10

func (mf *mmapFile) Write(d []byte) (int, error) {
	if mf.plain {
		n, err := mf.f.WriteAt(d, mf.off)
		mf.off += int64(n)
		return n, err
	}
	need := mf.off + int64(len(d))
	if need > mf.backed {
		if err := mf.reserve(need); err != nil {
			// Degrade rather than fail: reservation or mapping is not
			// available here, so pay the syscall per flush instead.
			mf.plain = true
			n, werr := mf.f.WriteAt(d, mf.off)
			mf.off += int64(n)
			return n, werr
		}
	}
	copy(mf.m[mf.off:], d)
	mf.off = need
	return len(d), nil
}

// reserve extends the file's backing (and, when needed, the mapping)
// to cover at least need bytes. Reserving before touching is what
// keeps out-of-space an error instead of a SIGBUS.
func (mf *mmapFile) reserve(need int64) error {
	if need <= int64(len(mf.m)) {
		// Mapping already covers it; restore the backing the last
		// trim released.
		if err := syscall.Fallocate(int(mf.f.Fd()), 0, 0, int64(len(mf.m))); err != nil {
			return err
		}
		mf.backed = int64(len(mf.m))
		return nil
	}
	return mf.grow(need)
}

// grow reserves backing space to at least need bytes and remaps.
func (mf *mmapFile) grow(need int64) error {
	newCap := int64(len(mf.m))
	if newCap < mmapMinCap {
		newCap = mmapMinCap
	}
	for newCap < need {
		newCap *= 2
	}
	if err := syscall.Fallocate(int(mf.f.Fd()), 0, 0, newCap); err != nil {
		return err
	}
	mf.backed = newCap
	if mf.m != nil {
		if err := syscall.Munmap(mf.m); err != nil {
			return err
		}
		mf.m = nil
	}
	m, err := syscall.Mmap(int(mf.f.Fd()), 0, int(newCap),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return err
	}
	mf.m = m
	return nil
}

func (mf *mmapFile) Sync() error { return mf.f.Sync() }

// DirectWrite reports whether writes are still memcpys into the
// mapping. Queried once per segment, after the header write — by which
// point a filesystem without fallocate has already degraded to plain.
func (mf *mmapFile) DirectWrite() bool { return !mf.plain }

// Close trims the fallocated tail to the bytes actually written, then
// parks the file in the provider's pool when there is room — still
// open and still mapped, so the next incarnation inherits hot pages —
// and otherwise unmaps and closes it.
func (mf *mmapFile) Close() error {
	if mf.p != nil && !mf.plain {
		if err := mf.f.Truncate(mf.off); err == nil {
			mf.backed = mf.off
			if mf.p.adopt(mf) {
				return nil
			}
		}
	}
	return mf.release(true)
}

func (mf *mmapFile) release(trim bool) error {
	var err error
	if mf.m != nil {
		err = syscall.Munmap(mf.m)
		mf.m = nil
	}
	if trim {
		if e := mf.f.Truncate(mf.off); err == nil {
			err = e
		}
	}
	if e := mf.f.Close(); err == nil {
		err = e
	}
	return err
}
