//go:build !linux

package journal

// Portable segment writes: plain buffered files. The mmap fast path in
// provider_linux.go needs fallocate and MAP_SHARED semantics this
// build cannot assume.

import (
	"os"
	"path/filepath"
)

// mmapFile exists on every platform so fileProvider's pool field
// typechecks; it is never instantiated here.
type mmapFile struct{}

func (mf *mmapFile) release(bool) error { return nil }

func (p *fileProvider) Create(name string) (WriteFile, error) {
	return os.OpenFile(filepath.Join(p.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (p *fileProvider) Recycle(name string) (WriteFile, error) {
	return os.OpenFile(filepath.Join(p.dir, name), os.O_WRONLY, 0o644)
}

func (p *fileProvider) evict(string) {}

func (p *fileProvider) renamePooled(string, string) {}
