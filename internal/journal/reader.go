package journal

import (
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// SegmentInfo describes one segment to tools and /statusz.
type SegmentInfo struct {
	ID              uint64 `json:"id"`
	Size            int64  `json:"size"`
	Records         int    `json:"records"`
	CreatedUnixNano int64  `json:"created_unix_nano"`
	SealedUnixNano  int64  `json:"sealed_unix_nano,omitempty"`
	Scanned         bool   `json:"scanned,omitempty"` // sidecar missing; index rebuilt by scan
	Torn            bool   `json:"torn,omitempty"`    // scan stopped at a damaged tail
}

// StreamInfo aggregates one stream's records across segments.
type StreamInfo struct {
	Stream     uint64 `json:"stream"`
	Records    int    `json:"records"`
	Events     int    `json:"event_frames"`
	FirstSeq   uint64 `json:"first_seq"`
	LastSeq    uint64 `json:"last_seq"`
	HasHello   bool   `json:"has_hello"`
	HasGoodbye bool   `json:"has_goodbye"`
	HasResult  bool   `json:"has_result"`
	HasError   bool   `json:"has_error"`
}

// readerSeg is one segment as the reader sees it.
type readerSeg struct {
	info    SegmentInfo
	entries []IndexEntry
	seed    uint32   // segSeed(id, created) — the record CRC seed
	f       ReadFile // opened lazily, held until Close
}

// Reader opens a journal for replay. It is not safe for concurrent use;
// replay tools are single-threaded.
type Reader struct {
	p    Provider
	segs []readerSeg
	// bySeg maps segment id to its index in segs for anchor seeks.
	bySeg map[uint64]int
}

// OpenReader loads every segment's index (from the sidecar when
// present, by scanning otherwise) and returns a Reader positioned over
// the whole journal. Damaged tails are tolerated: the good prefix of
// every segment is served.
func OpenReader(p Provider) (*Reader, error) {
	names, err := p.List()
	if err != nil {
		return nil, fmt.Errorf("journal: list: %w", err)
	}
	var ids []uint64
	for _, n := range names {
		if id, ok := parseSegName(n); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	r := &Reader{p: p, bySeg: make(map[uint64]int, len(ids))}
	for _, id := range ids {
		seg, err := loadSegment(p, id)
		if err != nil {
			return nil, err
		}
		if seg == nil {
			continue // unreadable header: skip, as recovery would remove it
		}
		r.bySeg[id] = len(r.segs)
		r.segs = append(r.segs, *seg)
	}
	return r, nil
}

// loadSegment builds one segment's in-memory index. Returns nil (no
// error) when the segment header itself is unreadable.
func loadSegment(p Provider, id uint64) (*readerSeg, error) {
	if idx, err := loadIndex(p, id); err == nil {
		size := idx.Size
		if actual, err := p.Size(segName(id)); err == nil && actual < size {
			size = actual
		}
		info := SegmentInfo{
			ID: id, Size: size, Records: len(idx.Entries),
			CreatedUnixNano: idx.CreatedUnixNano, SealedUnixNano: idx.SealedUnixNano,
		}
		// A shrunk sealed segment (partial copy) drops entries past the
		// new end.
		ents := idx.Entries
		for len(ents) > 0 {
			last := ents[len(ents)-1]
			if last.Offset+last.Len <= size {
				break
			}
			ents = ents[:len(ents)-1]
			info.Torn = true
			info.Records = len(ents)
		}
		return &readerSeg{
			info: info, entries: ents,
			seed: segSeed(id, idx.CreatedUnixNano),
		}, nil
	}

	f, err := p.Open(segName(id))
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", segName(id), err)
	}
	sc, scanErr := scanSegment(f, id)
	f.Close()
	if scanErr != nil {
		return nil, nil
	}
	return &readerSeg{
		info: SegmentInfo{
			ID: id, Size: sc.goodBytes, Records: len(sc.entries),
			CreatedUnixNano: sc.created, Scanned: true, Torn: sc.torn,
		},
		entries: sc.entries,
		seed:    segSeed(id, sc.created),
	}, nil
}

// Close releases every open segment file.
func (r *Reader) Close() error {
	var first error
	for i := range r.segs {
		if r.segs[i].f != nil {
			if err := r.segs[i].f.Close(); err != nil && first == nil {
				first = err
			}
			r.segs[i].f = nil
		}
	}
	return first
}

// Segments lists the journal's segments in id order.
func (r *Reader) Segments() []SegmentInfo {
	out := make([]SegmentInfo, len(r.segs))
	for i, s := range r.segs {
		out[i] = s.info
	}
	return out
}

// Streams aggregates the journal per stream, in stream-id order.
func (r *Reader) Streams() []StreamInfo {
	agg := make(map[uint64]*StreamInfo)
	var order []uint64
	for _, s := range r.segs {
		for _, e := range s.entries {
			si := agg[e.Stream]
			if si == nil {
				si = &StreamInfo{Stream: e.Stream, FirstSeq: e.FirstSeq}
				agg[e.Stream] = si
				order = append(order, e.Stream)
			}
			si.Records++
			switch e.Kind {
			case KindHello:
				si.HasHello = true
			case KindEvents:
				si.Events++
				if si.Events == 1 {
					si.FirstSeq = e.FirstSeq
				}
				si.LastSeq = e.LastSeq
			case KindGoodbye:
				si.HasGoodbye = true
			case KindResult:
				si.HasResult = true
			case KindError:
				si.HasError = true
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]StreamInfo, len(order))
	for i, id := range order {
		out[i] = *agg[id]
	}
	return out
}

// open returns the segment's file, opening it on first use.
func (r *Reader) open(i int) (ReadFile, error) {
	if r.segs[i].f == nil {
		f, err := r.p.Open(segName(r.segs[i].info.ID))
		if err != nil {
			return nil, fmt.Errorf("journal: open %s: %w", segName(r.segs[i].info.ID), err)
		}
		r.segs[i].f = f
	}
	return r.segs[i].f, nil
}

// readEntry reads and CRC-checks the record at e in segment i.
func (r *Reader) readEntry(i int, e IndexEntry) (Meta, []byte, error) {
	f, err := r.open(i)
	if err != nil {
		return Meta{}, nil, err
	}
	buf := make([]byte, e.Len)
	if _, err := f.ReadAt(buf, e.Offset); err != nil {
		return Meta{}, nil, fmt.Errorf("journal: read seg %d off %d: %w", r.segs[i].info.ID, e.Offset, err)
	}
	m, payload, err := parseRecord(buf, r.segs[i].seed)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("journal: seg %d off %d: %w", r.segs[i].info.ID, e.Offset, err)
	}
	return m, payload, nil
}

// parseRecord validates one whole record against its segment's CRC seed
// and returns its payload view.
func parseRecord(buf []byte, seed uint32) (Meta, []byte, error) {
	if len(buf) < recHeaderSize {
		return Meta{}, nil, fmt.Errorf("short record (%d bytes)", len(buf))
	}
	n := le32(buf[4:8])
	if int64(recHeaderSize)+int64(n) != int64(len(buf)) {
		return Meta{}, nil, fmt.Errorf("record length %d disagrees with index %d", recHeaderSize+int(n), len(buf))
	}
	crc := crcUpdate(seed, buf[4:])
	if crc != le32(buf[0:4]) {
		return Meta{}, nil, fmt.Errorf("record crc mismatch")
	}
	m := Meta{
		Kind:     Kind(buf[8]),
		Stream:   le64(buf[9:17]),
		FirstSeq: le64(buf[17:25]),
		LastSeq:  le64(buf[25:33]),
	}
	return m, buf[recHeaderSize:], nil
}

// ReadAt reads the record a violation anchor points to.
func (r *Reader) ReadAt(loc Loc) (Meta, []byte, error) {
	i, ok := r.bySeg[loc.Segment]
	if !ok {
		return Meta{}, nil, fmt.Errorf("journal: segment %d not present (compacted?)", loc.Segment)
	}
	for _, e := range r.segs[i].entries {
		if e.Offset == loc.Offset {
			return r.readEntry(i, e)
		}
	}
	return Meta{}, nil, fmt.Errorf("journal: no record at segment %d offset %d", loc.Segment, loc.Offset)
}

// Result returns a stream's journaled verdict: the exact Result-frame
// JSON for a stream that completed, or its error string. ok is false
// when the stream has neither (killed mid-flight).
func (r *Reader) Result(stream uint64) (sample []byte, errMsg string, ok bool) {
	for i := range r.segs {
		for _, e := range r.segs[i].entries {
			if e.Stream != stream {
				continue
			}
			switch e.Kind {
			case KindResult:
				_, payload, err := r.readEntry(i, e)
				if err != nil {
					return nil, "", false
				}
				return payload, "", true
			case KindError:
				_, payload, err := r.readEntry(i, e)
				if err != nil {
					return nil, "", false
				}
				return nil, string(payload), true
			}
		}
	}
	return nil, "", false
}

// StreamEventLocs returns the location of every Events record of one
// stream, in journal order. The k-th Loc addresses the record whose
// payload a replaying deframer decodes as the stream's k-th Events
// frame, which is what lets an anchored replay (svdreplay -anchors)
// stamp fresh violations with the same coordinates the live daemon
// would have.
func (r *Reader) StreamEventLocs(stream uint64) []Loc {
	var locs []Loc
	for i := range r.segs {
		for _, e := range r.segs[i].entries {
			if e.Stream == stream && e.Kind == KindEvents {
				locs = append(locs, Loc{Segment: r.segs[i].info.ID, Offset: e.Offset})
			}
		}
	}
	return locs
}

// StreamReader returns an io.Reader over the concatenated raw wire
// frames (hello, events, goodbye) of one stream, in journal order.
// Because records hold the exact bytes the deframer validated, the
// result is a well-formed wire byte stream: feed it straight to a
// Deframer to replay.
func (r *Reader) StreamReader(stream uint64) io.Reader {
	return &streamReader{r: r, stream: stream, seg: 0, idx: -1}
}

// streamReader iterates a stream's wire records lazily, one payload at
// a time.
type streamReader struct {
	r      *Reader
	stream uint64
	seg    int
	idx    int // index of the current entry within seg; -1 before first
	cur    []byte
	err    error
}

func (s *streamReader) Read(p []byte) (int, error) {
	for len(s.cur) == 0 {
		if s.err != nil {
			return 0, s.err
		}
		e, segIdx, ok := s.next()
		if !ok {
			s.err = io.EOF
			return 0, io.EOF
		}
		_, payload, err := s.r.readEntry(segIdx, e)
		if err != nil {
			s.err = err
			return 0, err
		}
		s.cur = payload
	}
	n := copy(p, s.cur)
	s.cur = s.cur[n:]
	return n, nil
}

// next advances to the stream's next wire record.
func (s *streamReader) next() (IndexEntry, int, bool) {
	for ; s.seg < len(s.r.segs); s.seg++ {
		ents := s.r.segs[s.seg].entries
		for s.idx++; s.idx < len(ents); s.idx++ {
			e := ents[s.idx]
			if e.Stream != s.stream {
				continue
			}
			switch e.Kind {
			case KindHello, KindEvents, KindGoodbye:
				return e, s.seg, true
			}
		}
		s.idx = -1
	}
	return IndexEntry{}, 0, false
}

// --- tiny endian helpers shared with parseRecord ---

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func crcUpdate(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, crcTable, p)
}
