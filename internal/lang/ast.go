package lang

// AST node definitions. Every node carries its source line for the
// compiler's LineInfo, which the detectors use to map violation PCs back to
// SVL source.

// Program is a parsed SVL compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
	Threads []*ThreadDecl
}

// GlobalKind classifies global declarations.
type GlobalKind int

const (
	// GlobalShared is a shared variable or array: one copy, visible to all
	// threads.
	GlobalShared GlobalKind = iota
	// GlobalLocal is a thread-local global: one copy per thread,
	// addressed by tid under the hood.
	GlobalLocal
	// GlobalLock is a lock word used by lock()/unlock().
	GlobalLock
)

// GlobalDecl declares a global variable, array, or lock.
type GlobalDecl struct {
	Kind    GlobalKind
	Name    string
	Size    int64 // array length; 1 for scalars and locks
	IsArray bool  // declared with [n]
	Init    int64 // scalar initializer (shared scalars only)
	Line    int
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// ThreadDecl maps a CPU to its entry call.
type ThreadDecl struct {
	CPU  int
	Func string
	Args []Expr
	Line int
}

// Stmt is a statement node.
type Stmt interface{ stmtLine() int }

// VarStmt declares zero-initialized stack locals.
type VarStmt struct {
	Names []string
	Line  int
}

// AssignStmt stores Value into Target.
type AssignStmt struct {
	Target *LValue
	Value  Expr
	Line   int
}

// IfStmt is a conditional with an optional else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is a C-style for loop. Init and Post are assignments and may be
// nil; a nil Cond loops forever. continue jumps to Post, as in C.
type ForStmt struct {
	Init *AssignStmt // may be nil
	Cond Expr        // may be nil (true)
	Post *AssignStmt // may be nil
	Body []Stmt
	Line int
}

// ReturnStmt returns from the enclosing function, optionally with a value.
type ReturnStmt struct {
	Value Expr // may be nil
	Line  int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

// LockStmt acquires a lock; UnlockStmt releases it. Index is non-nil for
// lock arrays ("lock w[4]; ... lock(w[i]);").
type LockStmt struct {
	Name  string
	Index Expr // nil for scalar locks
	Line  int
}

// UnlockStmt releases a lock.
type UnlockStmt struct {
	Name  string
	Index Expr // nil for scalar locks
	Line  int
}

// YieldStmt hints the scheduler.
type YieldStmt struct{ Line int }

func (s *VarStmt) stmtLine() int      { return s.Line }
func (s *AssignStmt) stmtLine() int   { return s.Line }
func (s *IfStmt) stmtLine() int       { return s.Line }
func (s *WhileStmt) stmtLine() int    { return s.Line }
func (s *ForStmt) stmtLine() int      { return s.Line }
func (s *ReturnStmt) stmtLine() int   { return s.Line }
func (s *BreakStmt) stmtLine() int    { return s.Line }
func (s *ContinueStmt) stmtLine() int { return s.Line }
func (s *ExprStmt) stmtLine() int     { return s.Line }
func (s *LockStmt) stmtLine() int     { return s.Line }
func (s *UnlockStmt) stmtLine() int   { return s.Line }
func (s *YieldStmt) stmtLine() int    { return s.Line }

// LValue is an assignable location: a scalar or an array element.
type LValue struct {
	Name  string
	Index Expr // nil for scalars
	Line  int
}

// Expr is an expression node.
type Expr interface{ exprLine() int }

// IntLit is an integer literal.
type IntLit struct {
	Val  int64
	Line int
}

// VarRef reads a variable (stack local, param, global scalar, or tid).
type VarRef struct {
	Name string
	Line int
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// CallExpr calls a function.
type CallExpr struct {
	Func string
	Args []Expr
	Line int
}

// UnaryExpr applies "-" or "!".
type UnaryExpr struct {
	Op   tokKind
	X    Expr
	Line int
}

// BinaryExpr applies a binary operator; && and || short-circuit.
type BinaryExpr struct {
	Op   tokKind
	L, R Expr
	Line int
}

func (e *IntLit) exprLine() int     { return e.Line }
func (e *VarRef) exprLine() int     { return e.Line }
func (e *IndexExpr) exprLine() int  { return e.Line }
func (e *CallExpr) exprLine() int   { return e.Line }
func (e *UnaryExpr) exprLine() int  { return e.Line }
func (e *BinaryExpr) exprLine() int { return e.Line }
