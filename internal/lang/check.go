package lang

import "fmt"

// maxParams is the number of argument registers (a0..a3).
const maxParams = 4

// maxGlobalWords bounds the data segment (thread-local globals multiply by
// the thread count downstream, so this also caps that product at 64x).
const maxGlobalWords = 1 << 22

// checked holds the resolved program: symbol tables the code generator
// consumes.
type checked struct {
	prog    *Program
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	// frames maps each function to its stack layout: slot offsets for
	// params and locals, in frame words from SP after the prologue.
	frames map[string]*frame

	// numThreads is max thread id + 1.
	numThreads int
}

type frame struct {
	slots map[string]int64
	size  int64
}

// check resolves names and validates the program.
func check(prog *Program) (*checked, error) {
	c := &checked{
		prog:    prog,
		globals: make(map[string]*GlobalDecl),
		funcs:   make(map[string]*FuncDecl),
		frames:  make(map[string]*frame),
	}

	var dataWords int64
	for _, g := range prog.Globals {
		if g.Name == "tid" {
			return nil, errf(g.Line, 1, "cannot declare %q: reserved", g.Name)
		}
		if _, dup := c.globals[g.Name]; dup {
			return nil, errf(g.Line, 1, "duplicate global %q", g.Name)
		}
		if g.Size > maxGlobalWords {
			return nil, errf(g.Line, 1, "global %q too large (%d words; limit %d)", g.Name, g.Size, maxGlobalWords)
		}
		dataWords += g.Size
		if dataWords > maxGlobalWords {
			return nil, errf(g.Line, 1, "globals exceed %d words", maxGlobalWords)
		}
		c.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return nil, errf(f.Line, 1, "duplicate function %q", f.Name)
		}
		if _, clash := c.globals[f.Name]; clash {
			return nil, errf(f.Line, 1, "function %q collides with a global", f.Name)
		}
		if len(f.Params) > maxParams {
			return nil, errf(f.Line, 1, "function %q has %d parameters; at most %d", f.Name, len(f.Params), maxParams)
		}
		c.funcs[f.Name] = f
	}

	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return nil, err
		}
	}

	if len(prog.Threads) == 0 {
		return nil, errf(1, 1, "program declares no threads")
	}
	seenCPU := map[int]bool{}
	for _, th := range prog.Threads {
		if seenCPU[th.CPU] {
			return nil, errf(th.Line, 1, "duplicate thread %d", th.CPU)
		}
		seenCPU[th.CPU] = true
		if th.CPU+1 > c.numThreads {
			c.numThreads = th.CPU + 1
		}
		fn, ok := c.funcs[th.Func]
		if !ok {
			return nil, errf(th.Line, 1, "thread %d calls undefined function %q", th.CPU, th.Func)
		}
		if len(th.Args) != len(fn.Params) {
			return nil, errf(th.Line, 1, "thread %d passes %d args to %q (wants %d)",
				th.CPU, len(th.Args), th.Func, len(fn.Params))
		}
		for _, a := range th.Args {
			if err := c.checkExpr(a, nil, th.Line); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// checkFunc lays out the frame and validates the body. SVL has
// function-scoped locals (all var declarations are hoisted, C89-style).
func (c *checked) checkFunc(f *FuncDecl) error {
	fr := &frame{slots: make(map[string]int64)}
	c.frames[f.Name] = fr
	declare := func(name string, line int) error {
		if name == "tid" {
			return errf(line, 1, "cannot declare %q: reserved", name)
		}
		if _, dup := fr.slots[name]; dup {
			return errf(line, 1, "duplicate local %q in function %q", name, f.Name)
		}
		fr.slots[name] = fr.size
		fr.size++
		return nil
	}
	for _, p := range f.Params {
		if err := declare(p, f.Line); err != nil {
			return err
		}
	}
	var collect func(stmts []Stmt) error
	collect = func(stmts []Stmt) error {
		for _, s := range stmts {
			switch s := s.(type) {
			case *VarStmt:
				for _, n := range s.Names {
					if err := declare(n, s.Line); err != nil {
						return err
					}
				}
			case *IfStmt:
				if err := collect(s.Then); err != nil {
					return err
				}
				if err := collect(s.Else); err != nil {
					return err
				}
			case *WhileStmt:
				if err := collect(s.Body); err != nil {
					return err
				}
			case *ForStmt:
				if err := collect(s.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := collect(f.Body); err != nil {
		return err
	}
	return c.checkStmts(f.Body, fr, 0)
}

func (c *checked) checkStmts(stmts []Stmt, fr *frame, loopDepth int) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *VarStmt:
			// Declared during frame layout.
		case *AssignStmt:
			if err := c.checkLValue(s.Target, fr); err != nil {
				return err
			}
			if err := c.checkExpr(s.Value, fr, s.Line); err != nil {
				return err
			}
		case *IfStmt:
			if err := c.checkExpr(s.Cond, fr, s.Line); err != nil {
				return err
			}
			if err := c.checkStmts(s.Then, fr, loopDepth); err != nil {
				return err
			}
			if err := c.checkStmts(s.Else, fr, loopDepth); err != nil {
				return err
			}
		case *WhileStmt:
			if err := c.checkExpr(s.Cond, fr, s.Line); err != nil {
				return err
			}
			if err := c.checkStmts(s.Body, fr, loopDepth+1); err != nil {
				return err
			}
		case *ForStmt:
			if s.Init != nil {
				if err := c.checkStmts([]Stmt{s.Init}, fr, loopDepth); err != nil {
					return err
				}
			}
			if s.Cond != nil {
				if err := c.checkExpr(s.Cond, fr, s.Line); err != nil {
					return err
				}
			}
			if s.Post != nil {
				if err := c.checkStmts([]Stmt{s.Post}, fr, loopDepth); err != nil {
					return err
				}
			}
			if err := c.checkStmts(s.Body, fr, loopDepth+1); err != nil {
				return err
			}
		case *ReturnStmt:
			if s.Value != nil {
				if err := c.checkExpr(s.Value, fr, s.Line); err != nil {
					return err
				}
			}
		case *BreakStmt:
			if loopDepth == 0 {
				return errf(s.Line, 1, "break outside loop")
			}
		case *ContinueStmt:
			if loopDepth == 0 {
				return errf(s.Line, 1, "continue outside loop")
			}
		case *ExprStmt:
			if _, ok := s.X.(*CallExpr); !ok {
				return errf(s.Line, 1, "expression statement must be a call")
			}
			if err := c.checkExpr(s.X, fr, s.Line); err != nil {
				return err
			}
		case *LockStmt:
			if err := c.checkLockUse(s.Name, s.Index, fr, s.Line); err != nil {
				return err
			}
		case *UnlockStmt:
			if err := c.checkLockUse(s.Name, s.Index, fr, s.Line); err != nil {
				return err
			}
		case *YieldStmt:
		default:
			return fmt.Errorf("svl: unknown statement %T", s)
		}
	}
	return nil
}

func (c *checked) checkLockUse(name string, index Expr, fr *frame, line int) error {
	g, ok := c.globals[name]
	if !ok {
		return errf(line, 1, "undefined lock %q", name)
	}
	if g.Kind != GlobalLock {
		return errf(line, 1, "%q is not a lock", name)
	}
	if g.IsArray && index == nil {
		return errf(line, 1, "lock array %q needs an index", name)
	}
	if !g.IsArray && index != nil {
		return errf(line, 1, "lock %q is not an array", name)
	}
	if index != nil {
		return c.checkExpr(index, fr, line)
	}
	return nil
}

func (c *checked) checkLValue(lv *LValue, fr *frame) error {
	if lv.Name == "tid" {
		return errf(lv.Line, 1, "cannot assign to tid")
	}
	if lv.Index != nil {
		g, ok := c.globals[lv.Name]
		if !ok || !g.IsArray {
			return errf(lv.Line, 1, "%q is not an array", lv.Name)
		}
		if g.Kind == GlobalLock {
			return errf(lv.Line, 1, "cannot index lock %q", lv.Name)
		}
		return c.checkExpr(lv.Index, fr, lv.Line)
	}
	if fr != nil {
		if _, ok := fr.slots[lv.Name]; ok {
			return nil
		}
	}
	if g, ok := c.globals[lv.Name]; ok {
		if g.IsArray {
			return errf(lv.Line, 1, "array %q needs an index", lv.Name)
		}
		if g.Kind == GlobalLock {
			return errf(lv.Line, 1, "assign to lock %q: use lock()/unlock()", lv.Name)
		}
		return nil
	}
	return errf(lv.Line, 1, "undefined variable %q", lv.Name)
}

// checkExpr validates an expression. fr is nil in thread-declaration
// context, where only globals, literals, and tid are visible.
func (c *checked) checkExpr(e Expr, fr *frame, line int) error {
	switch e := e.(type) {
	case *IntLit:
		return nil
	case *VarRef:
		if e.Name == "tid" {
			return nil
		}
		if fr != nil {
			if _, ok := fr.slots[e.Name]; ok {
				return nil
			}
		}
		if g, ok := c.globals[e.Name]; ok {
			if g.IsArray {
				return errf(e.Line, 1, "array %q needs an index", e.Name)
			}
			if g.Kind == GlobalLock {
				return errf(e.Line, 1, "lock %q cannot be read directly", e.Name)
			}
			return nil
		}
		return errf(e.Line, 1, "undefined variable %q", e.Name)
	case *IndexExpr:
		g, ok := c.globals[e.Name]
		if !ok || !g.IsArray {
			return errf(e.Line, 1, "%q is not an array", e.Name)
		}
		return c.checkExpr(e.Index, fr, e.Line)
	case *CallExpr:
		fn, ok := c.funcs[e.Func]
		if !ok {
			return errf(e.Line, 1, "undefined function %q", e.Func)
		}
		if len(e.Args) != len(fn.Params) {
			return errf(e.Line, 1, "%q wants %d args, got %d", e.Func, len(fn.Params), len(e.Args))
		}
		for _, a := range e.Args {
			if err := c.checkExpr(a, fr, e.Line); err != nil {
				return err
			}
		}
		return nil
	case *UnaryExpr:
		return c.checkExpr(e.X, fr, e.Line)
	case *BinaryExpr:
		if err := c.checkExpr(e.L, fr, e.Line); err != nil {
			return err
		}
		return c.checkExpr(e.R, fr, e.Line)
	}
	return fmt.Errorf("svl: unknown expression %T", e)
}
