package lang

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Options parameterize compilation.
type Options struct {
	// Name labels the program; it also prefixes LineInfo entries.
	Name string
	// DataBase is the word address where globals are laid out.
	DataBase int64
	// Optimize applies the AST optimizer (constant folding, identities,
	// dead-branch elimination) before code generation.
	Optimize bool
}

// Compile parses, checks, and compiles SVL source.
func Compile(src string, opts Options) (*isa.Program, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileAST(ast, opts)
}

// MustCompile is Compile for fixed workload sources; it panics on error.
func MustCompile(src string, opts Options) *isa.Program {
	p, err := Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileAST checks and compiles a parsed program.
func CompileAST(ast *Program, opts Options) (*isa.Program, error) {
	if opts.Optimize {
		// Check before optimizing so that errors in code the optimizer
		// would delete are still reported.
		if _, err := check(ast); err != nil {
			return nil, err
		}
		ast = Optimize(ast)
	}
	c, err := check(ast)
	if err != nil {
		return nil, err
	}
	if opts.Name == "" {
		opts.Name = "svl"
	}
	g := &codegen{
		c:       c,
		opts:    opts,
		labels:  make(map[string]int64),
		symbols: make(map[string]int64),
	}
	return g.run()
}

// maxTemps is the expression register stack depth (t0..t9).
const maxTemps = 10

func tempReg(d int) isa.Reg { return isa.RegT0 + isa.Reg(d) }

type fixup struct {
	pc    int
	label string
}

type codegen struct {
	c    *checked
	opts Options

	code     []isa.Instr
	lineInfo []string
	fixups   []fixup
	labels   map[string]int64
	symbols  map[string]int64
	data     []int64
	nextLbl  int

	curFunc *FuncDecl
	curLine int

	// Loop context for break/continue.
	loopCond []string
	loopEnd  []string
}

func (g *codegen) run() (*isa.Program, error) {
	g.layoutData()

	// Thread bootstraps first, so each CPU's entry is compact.
	entries := make([]int64, 0)
	for _, th := range g.c.prog.Threads {
		for len(entries) <= th.CPU {
			entries = append(entries, -1)
		}
	}
	for _, th := range g.c.prog.Threads {
		g.curLine = th.Line
		entries[th.CPU] = int64(len(g.code))
		g.labels[fmt.Sprintf("__thread_%d", th.CPU)] = int64(len(g.code))
		if err := g.callSequence(th.Func, th.Args, 0, th.Line); err != nil {
			return nil, err
		}
		g.emit(isa.Halt())
	}
	// CPUs without thread declarations park on a shared halt.
	sharedHalt := int64(len(g.code))
	g.emit(isa.Halt())
	for i, e := range entries {
		if e < 0 {
			entries[i] = sharedHalt
		}
	}

	for _, f := range g.c.prog.Funcs {
		if err := g.genFunc(f); err != nil {
			return nil, err
		}
	}

	for _, fx := range g.fixups {
		pc, ok := g.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("svl: internal error: undefined label %q", fx.label)
		}
		g.code[fx.pc].Imm = pc
	}

	p := &isa.Program{
		Name:     g.opts.Name,
		Code:     g.code,
		Data:     g.data,
		DataBase: g.opts.DataBase,
		Entries:  entries,
		Symbols:  g.symbols,
		Labels:   g.labels,
		LineInfo: g.lineInfo,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("svl: generated invalid code: %w", err)
	}
	return p, nil
}

// layoutData places globals: locks first, then shared globals, then
// thread-local globals (numThreads copies each).
func (g *codegen) layoutData() {
	place := func(decl *GlobalDecl, copies int64) {
		g.symbols[decl.Name] = g.opts.DataBase + int64(len(g.data))
		words := make([]int64, decl.Size*copies)
		if decl.Kind == GlobalShared && !decl.IsArray {
			for i := range words {
				words[i] = decl.Init
			}
		}
		g.data = append(g.data, words...)
	}
	for _, decl := range g.c.prog.Globals {
		if decl.Kind == GlobalLock {
			place(decl, 1)
		}
	}
	for _, decl := range g.c.prog.Globals {
		if decl.Kind == GlobalShared {
			place(decl, 1)
		}
	}
	for _, decl := range g.c.prog.Globals {
		if decl.Kind == GlobalLocal {
			place(decl, int64(g.c.numThreads))
		}
	}
}

func (g *codegen) emit(in isa.Instr) {
	g.code = append(g.code, in)
	g.lineInfo = append(g.lineInfo, fmt.Sprintf("%s:%d", g.opts.Name, g.curLine))
}

func (g *codegen) emitBranch(in isa.Instr, label string) {
	g.fixups = append(g.fixups, fixup{pc: len(g.code), label: label})
	g.emit(in)
}

func (g *codegen) newLabel(hint string) string {
	g.nextLbl++
	return fmt.Sprintf(".%s%d", hint, g.nextLbl)
}

func (g *codegen) bind(label string) { g.labels[label] = int64(len(g.code)) }

func (g *codegen) genFunc(f *FuncDecl) error {
	g.curFunc = f
	g.curLine = f.Line
	fr := g.c.frames[f.Name]
	g.labels[f.Name] = int64(len(g.code))
	epilogue := g.newLabel("ret_" + f.Name)

	// Prologue: push ra, allocate the frame, spill params, zero locals.
	g.emit(isa.Addi(isa.RegSP, isa.RegSP, -1))
	g.emit(isa.Store(isa.RegRA, isa.RegSP, 0))
	if fr.size > 0 {
		g.emit(isa.Addi(isa.RegSP, isa.RegSP, -fr.size))
	}
	for i, p := range f.Params {
		g.emit(isa.Store(isa.RegA0+isa.Reg(i), isa.RegSP, fr.slots[p]))
	}
	params := map[string]bool{}
	for _, p := range f.Params {
		params[p] = true
	}
	// Zero locals in frame-offset order: map-order emission would make two
	// compiles of the same source trace different address sequences, and
	// the detection service's differential tests require recompiling a
	// workload from (name, scale, seed) to reproduce the event stream
	// bit-for-bit.
	var zero []int64
	for name, off := range fr.slots {
		if !params[name] {
			zero = append(zero, off)
		}
	}
	sort.Slice(zero, func(i, j int) bool { return zero[i] < zero[j] })
	for _, off := range zero {
		g.emit(isa.Store(isa.RegZero, isa.RegSP, off))
	}

	if err := g.genStmts(f.Body, epilogue); err != nil {
		return err
	}

	// Epilogue: free the frame, restore ra, return.
	g.bind(epilogue)
	if fr.size > 0 {
		g.emit(isa.Addi(isa.RegSP, isa.RegSP, fr.size))
	}
	g.emit(isa.Load(isa.RegRA, isa.RegSP, 0))
	g.emit(isa.Addi(isa.RegSP, isa.RegSP, 1))
	g.emit(isa.Jr(isa.RegRA))
	return nil
}

func (g *codegen) genStmts(stmts []Stmt, epilogue string) error {
	for _, s := range stmts {
		if err := g.genStmt(s, epilogue); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt, epilogue string) error {
	g.curLine = s.stmtLine()
	switch s := s.(type) {
	case *VarStmt:
		return nil // zero-initialized in the prologue

	case *AssignStmt:
		return g.genAssign(s)

	case *IfStmt:
		if err := g.evalExpr(s.Cond, 0); err != nil {
			return err
		}
		if len(s.Else) == 0 {
			end := g.newLabel("endif")
			g.emitBranch(isa.Beqz(tempReg(0), 0), end)
			if err := g.genStmts(s.Then, epilogue); err != nil {
				return err
			}
			g.bind(end)
			return nil
		}
		els, end := g.newLabel("else"), g.newLabel("endif")
		g.emitBranch(isa.Beqz(tempReg(0), 0), els)
		if err := g.genStmts(s.Then, epilogue); err != nil {
			return err
		}
		g.curLine = s.Line
		g.emitBranch(isa.Jmp(0), end) // the branch-always Skipper probes
		g.bind(els)
		if err := g.genStmts(s.Else, epilogue); err != nil {
			return err
		}
		g.bind(end)
		return nil

	case *WhileStmt:
		cond, end := g.newLabel("while"), g.newLabel("endwhile")
		g.bind(cond)
		if err := g.evalExpr(s.Cond, 0); err != nil {
			return err
		}
		g.emitBranch(isa.Beqz(tempReg(0), 0), end)
		g.loopCond = append(g.loopCond, cond)
		g.loopEnd = append(g.loopEnd, end)
		err := g.genStmts(s.Body, epilogue)
		g.loopCond = g.loopCond[:len(g.loopCond)-1]
		g.loopEnd = g.loopEnd[:len(g.loopEnd)-1]
		if err != nil {
			return err
		}
		g.curLine = s.Line
		g.emitBranch(isa.Jmp(0), cond)
		g.bind(end)
		return nil

	case *ForStmt:
		// init; Lcond: cond? beqz Lend; body; Lpost: post; jmp Lcond;
		// Lend. continue targets Lpost (the post clause runs, as in C).
		if s.Init != nil {
			if err := g.genStmt(s.Init, epilogue); err != nil {
				return err
			}
		}
		cond, post, end := g.newLabel("for"), g.newLabel("forpost"), g.newLabel("endfor")
		g.bind(cond)
		if s.Cond != nil {
			g.curLine = s.Line
			if err := g.evalExpr(s.Cond, 0); err != nil {
				return err
			}
			g.emitBranch(isa.Beqz(tempReg(0), 0), end)
		}
		g.loopCond = append(g.loopCond, post)
		g.loopEnd = append(g.loopEnd, end)
		err := g.genStmts(s.Body, epilogue)
		g.loopCond = g.loopCond[:len(g.loopCond)-1]
		g.loopEnd = g.loopEnd[:len(g.loopEnd)-1]
		if err != nil {
			return err
		}
		g.bind(post)
		if s.Post != nil {
			if err := g.genStmt(s.Post, epilogue); err != nil {
				return err
			}
		}
		g.curLine = s.Line
		g.emitBranch(isa.Jmp(0), cond)
		g.bind(end)
		return nil

	case *ReturnStmt:
		if s.Value != nil {
			if err := g.evalExpr(s.Value, 0); err != nil {
				return err
			}
			g.emit(isa.Mov(isa.RegA0, tempReg(0)))
		}
		g.emitBranch(isa.Jmp(0), epilogue)
		return nil

	case *BreakStmt:
		g.emitBranch(isa.Jmp(0), g.loopEnd[len(g.loopEnd)-1])
		return nil

	case *ContinueStmt:
		g.emitBranch(isa.Jmp(0), g.loopCond[len(g.loopCond)-1])
		return nil

	case *ExprStmt:
		return g.evalExpr(s.X, 0)

	case *LockStmt:
		// Spin: cas until the lock word flips 0 -> 1, yielding while
		// contended. The detector sees plain loads and stores here — SVL
		// locks are invisible to SVD, exactly like pthread locks compiled
		// to SPARC CAS were in the paper.
		if err := g.lockAddr(s.Name, s.Index); err != nil {
			return err
		}
		acq, done := g.newLabel("acquire"), g.newLabel("locked")
		g.emit(isa.LI(tempReg(1), 0))
		g.emit(isa.LI(tempReg(2), 1))
		g.bind(acq)
		g.emit(isa.Cas(tempReg(3), tempReg(0), tempReg(1), tempReg(2)))
		g.emitBranch(isa.Bnez(tempReg(3), 0), done)
		g.emit(isa.Yield())
		g.emitBranch(isa.Jmp(0), acq)
		g.bind(done)
		return nil

	case *UnlockStmt:
		if s.Index == nil {
			g.emit(isa.Store(isa.RegZero, isa.RegZero, g.symbols[s.Name]))
			return nil
		}
		if err := g.lockAddr(s.Name, s.Index); err != nil {
			return err
		}
		g.emit(isa.Store(isa.RegZero, tempReg(0), 0))
		return nil

	case *YieldStmt:
		g.emit(isa.Yield())
		return nil
	}
	return fmt.Errorf("svl: unknown statement %T", s)
}

func (g *codegen) genAssign(s *AssignStmt) error {
	lv := s.Target
	fr := g.c.frames[g.curFunc.Name]

	// Stack local or parameter.
	if lv.Index == nil {
		if off, ok := fr.slots[lv.Name]; ok {
			if err := g.evalExpr(s.Value, 0); err != nil {
				return err
			}
			g.emit(isa.Store(tempReg(0), isa.RegSP, off))
			return nil
		}
	}

	decl := g.c.globals[lv.Name]
	base := g.symbols[lv.Name]
	switch {
	case lv.Index == nil && decl.Kind == GlobalShared:
		if err := g.evalExpr(s.Value, 0); err != nil {
			return err
		}
		g.emit(isa.Store(tempReg(0), isa.RegZero, base))

	case lv.Index == nil && decl.Kind == GlobalLocal:
		if err := g.evalExpr(s.Value, 0); err != nil {
			return err
		}
		if g.opts.Optimize {
			// Addressing-mode fold: the per-thread copy lives at
			// base + tid, reachable in one store.
			g.emit(isa.Store(tempReg(0), isa.RegTID, base))
			return nil
		}
		g.emit(isa.LI(tempReg(1), base))
		g.emit(isa.ALU(isa.OpAdd, tempReg(1), tempReg(1), isa.RegTID))
		g.emit(isa.Store(tempReg(0), tempReg(1), 0))

	case lv.Index != nil && decl.Kind == GlobalShared:
		if err := g.evalExpr(lv.Index, 0); err != nil {
			return err
		}
		if err := g.evalExpr(s.Value, 1); err != nil {
			return err
		}
		if g.opts.Optimize {
			g.emit(isa.Store(tempReg(1), tempReg(0), base))
			return nil
		}
		g.emit(isa.Addi(tempReg(0), tempReg(0), base))
		g.emit(isa.Store(tempReg(1), tempReg(0), 0))

	case lv.Index != nil && decl.Kind == GlobalLocal:
		if err := g.evalExpr(lv.Index, 0); err != nil {
			return err
		}
		if err := g.evalExpr(s.Value, 1); err != nil {
			return err
		}
		g.emit(isa.LI(tempReg(2), decl.Size))
		g.emit(isa.ALU(isa.OpMul, tempReg(2), isa.RegTID, tempReg(2)))
		g.emit(isa.ALU(isa.OpAdd, tempReg(0), tempReg(0), tempReg(2)))
		if g.opts.Optimize {
			g.emit(isa.Store(tempReg(1), tempReg(0), base))
			return nil
		}
		g.emit(isa.Addi(tempReg(0), tempReg(0), base))
		g.emit(isa.Store(tempReg(1), tempReg(0), 0))

	default:
		return errf(lv.Line, 1, "cannot assign to %q", lv.Name)
	}
	return nil
}

// evalExpr generates code leaving the expression's value in tempReg(d).
// Registers tempReg(0..d-1) hold live values and are preserved.
func (g *codegen) evalExpr(e Expr, d int) error {
	if d >= maxTemps {
		return errf(e.exprLine(), 1, "expression too complex (more than %d live temporaries)", maxTemps)
	}
	dst := tempReg(d)
	switch e := e.(type) {
	case *IntLit:
		g.emit(isa.LI(dst, e.Val))

	case *VarRef:
		if e.Name == "tid" {
			g.emit(isa.Mov(dst, isa.RegTID))
			return nil
		}
		if g.curFunc != nil {
			if off, ok := g.c.frames[g.curFunc.Name].slots[e.Name]; ok {
				g.emit(isa.Load(dst, isa.RegSP, off))
				return nil
			}
		}
		decl := g.c.globals[e.Name]
		base := g.symbols[e.Name]
		if decl.Kind == GlobalLocal {
			if g.opts.Optimize {
				g.emit(isa.Load(dst, isa.RegTID, base))
				return nil
			}
			g.emit(isa.LI(dst, base))
			g.emit(isa.ALU(isa.OpAdd, dst, dst, isa.RegTID))
			g.emit(isa.Load(dst, dst, 0))
			return nil
		}
		g.emit(isa.Load(dst, isa.RegZero, base))

	case *IndexExpr:
		if err := g.evalExpr(e.Index, d); err != nil {
			return err
		}
		decl := g.c.globals[e.Name]
		base := g.symbols[e.Name]
		if decl.Kind == GlobalLocal {
			if d+1 >= maxTemps {
				return errf(e.Line, 1, "expression too complex")
			}
			aux := tempReg(d + 1)
			g.emit(isa.LI(aux, decl.Size))
			g.emit(isa.ALU(isa.OpMul, aux, isa.RegTID, aux))
			g.emit(isa.ALU(isa.OpAdd, dst, dst, aux))
		}
		if g.opts.Optimize {
			g.emit(isa.Load(dst, dst, base))
			return nil
		}
		g.emit(isa.Addi(dst, dst, base))
		g.emit(isa.Load(dst, dst, 0))

	case *CallExpr:
		if err := g.callSequence(e.Func, e.Args, d, e.Line); err != nil {
			return err
		}

	case *UnaryExpr:
		if err := g.evalExpr(e.X, d); err != nil {
			return err
		}
		switch e.Op {
		case tokMinus:
			g.emit(isa.ALU(isa.OpSub, dst, isa.RegZero, dst))
		case tokNot:
			g.emit(isa.ALU(isa.OpSeq, dst, dst, isa.RegZero))
		default:
			return errf(e.Line, 1, "unknown unary operator %s", e.Op)
		}

	case *BinaryExpr:
		if e.Op == tokAndAnd || e.Op == tokOrOr {
			return g.evalShortCircuit(e, d)
		}
		if err := g.evalExpr(e.L, d); err != nil {
			return err
		}
		if err := g.evalExpr(e.R, d+1); err != nil {
			return err
		}
		rhs := tempReg(d + 1)
		switch e.Op {
		case tokPlus:
			g.emit(isa.ALU(isa.OpAdd, dst, dst, rhs))
		case tokMinus:
			g.emit(isa.ALU(isa.OpSub, dst, dst, rhs))
		case tokStar:
			g.emit(isa.ALU(isa.OpMul, dst, dst, rhs))
		case tokSlash:
			g.emit(isa.ALU(isa.OpDiv, dst, dst, rhs))
		case tokPercent:
			g.emit(isa.ALU(isa.OpMod, dst, dst, rhs))
		case tokAmp:
			g.emit(isa.ALU(isa.OpAnd, dst, dst, rhs))
		case tokPipe:
			g.emit(isa.ALU(isa.OpOr, dst, dst, rhs))
		case tokCaret:
			g.emit(isa.ALU(isa.OpXor, dst, dst, rhs))
		case tokShl:
			g.emit(isa.ALU(isa.OpShl, dst, dst, rhs))
		case tokShr:
			g.emit(isa.ALU(isa.OpShr, dst, dst, rhs))
		case tokLt:
			g.emit(isa.ALU(isa.OpSlt, dst, dst, rhs))
		case tokLe:
			g.emit(isa.ALU(isa.OpSle, dst, dst, rhs))
		case tokGt:
			g.emit(isa.ALU(isa.OpSlt, dst, rhs, dst))
		case tokGe:
			g.emit(isa.ALU(isa.OpSle, dst, rhs, dst))
		case tokEq:
			g.emit(isa.ALU(isa.OpSeq, dst, dst, rhs))
		case tokNe:
			g.emit(isa.ALU(isa.OpSne, dst, dst, rhs))
		default:
			return errf(e.Line, 1, "unknown binary operator %s", e.Op)
		}

	default:
		return fmt.Errorf("svl: unknown expression %T", e)
	}
	return nil
}

// evalShortCircuit compiles && and || with branches, normalizing the result
// to 0/1.
func (g *codegen) evalShortCircuit(e *BinaryExpr, d int) error {
	dst := tempReg(d)
	if err := g.evalExpr(e.L, d); err != nil {
		return err
	}
	short, end := g.newLabel("sc"), g.newLabel("scend")
	if e.Op == tokAndAnd {
		g.emitBranch(isa.Beqz(dst, 0), short)
	} else {
		g.emitBranch(isa.Bnez(dst, 0), short)
	}
	if err := g.evalExpr(e.R, d); err != nil {
		return err
	}
	g.emit(isa.ALU(isa.OpSne, dst, dst, isa.RegZero))
	g.emitBranch(isa.Jmp(0), end)
	g.bind(short)
	if e.Op == tokAndAnd {
		g.emit(isa.LI(dst, 0))
	} else {
		g.emit(isa.LI(dst, 1))
	}
	g.bind(end)
	return nil
}

// lockAddr leaves the address of a lock word in tempReg(0): the symbol
// address for scalar locks, base+index for lock arrays.
func (g *codegen) lockAddr(name string, index Expr) error {
	base := g.symbols[name]
	if index == nil {
		g.emit(isa.LI(tempReg(0), base))
		return nil
	}
	if err := g.evalExpr(index, 0); err != nil {
		return err
	}
	g.emit(isa.Addi(tempReg(0), tempReg(0), base))
	return nil
}

// callSequence evaluates args into temps at depth d, preserves live
// temporaries across the call, and leaves the result in tempReg(d).
func (g *codegen) callSequence(fn string, args []Expr, d int, line int) error {
	if d+len(args) > maxTemps {
		return errf(line, 1, "call arguments too complex")
	}
	for i, a := range args {
		if err := g.evalExpr(a, d+i); err != nil {
			return err
		}
	}
	// Save live temporaries (t0..t(d-1)) — the callee may clobber them.
	for i := 0; i < d; i++ {
		g.emit(isa.Addi(isa.RegSP, isa.RegSP, -1))
		g.emit(isa.Store(tempReg(i), isa.RegSP, 0))
	}
	for i := range args {
		g.emit(isa.Mov(isa.RegA0+isa.Reg(i), tempReg(d+i)))
	}
	g.emitBranch(isa.Jal(isa.RegRA, 0), fn)
	g.emit(isa.Mov(tempReg(d), isa.RegA0))
	for i := d - 1; i >= 0; i-- {
		g.emit(isa.Load(tempReg(i), isa.RegSP, 0))
		g.emit(isa.Addi(isa.RegSP, isa.RegSP, 1))
	}
	return nil
}
