package lang

import (
	"strings"
	"testing"
)

// FuzzCompile checks that arbitrary input never panics the pipeline and
// that accepted programs always produce validated code. Run the seed
// corpus with `go test`; fuzz with `go test -fuzz=FuzzCompile`.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"shared x;",
		"func main(){} thread 0 main();",
		"shared a[4]; lock l; func f(n){ var i; while(i<n){ lock(l); a[i%4]=i; unlock(l); i=i+1; } } thread 0 f(5); thread 1 f(5);",
		"func f(){ return f(); } thread 0 f();",
		"shared x; func main(){ x = 1 + ; } thread 0 main();",
		"func main(){ if (1) { } else if (0) { } } thread 0 main();",
		"lock l[3]; func m(){ lock(l[tid]); unlock(l[tid]); } thread 0 m();",
		"/* unterminated",
		"func main(){ x = \x00; }",
		"shared out; func main(){ out = (0 && (1/0)) + !2; } thread 0 main();",
		strings.Repeat("(", 100),
		"thread 99999 f();",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, optimize := range []bool{false, true} {
			p, err := Compile(src, Options{Name: "fuzz", Optimize: optimize})
			if err != nil {
				continue
			}
			if verr := p.Validate(); verr != nil {
				t.Fatalf("accepted program failed validation: %v\nsource: %q", verr, src)
			}
		}
	})
}

// FuzzLexer checks the tokenizer terminates and never panics.
func FuzzLexer(f *testing.F) {
	for _, s := range []string{"", "a b c", "1 <<>>= && || !", "/**/ //", "\xff\xfe", "0x", "9999999999999999999999"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexAll(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream not EOF-terminated for %q", src)
		}
	})
}
