package lang

import (
	"strings"
	"testing"

	"repro/internal/vm"
)

// compileRun compiles src and runs it to completion, returning the machine.
func compileRun(t *testing.T, src string, cpus int, seed uint64) *vm.VM {
	t.Helper()
	p, err := Compile(src, Options{Name: "test", DataBase: 0})
	if err != nil {
		t.Fatal(err)
	}
	if cpus < len(p.Entries) {
		cpus = len(p.Entries)
	}
	m, err := vm.New(p, vm.Config{NumCPUs: cpus, MemWords: 1 << 16, StackWords: 1 << 10, Seed: seed, MaxQuantum: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("program did not halt")
	}
	return m
}

func word(t *testing.T, m *vm.VM, sym string) int64 {
	t.Helper()
	addr, ok := m.Program().Symbols[sym]
	if !ok {
		t.Fatalf("no symbol %q", sym)
	}
	return m.Mem(addr)
}

func TestArithmetic(t *testing.T) {
	src := `
shared out;
func main() {
    out = (2 + 3) * 4 - 10 / 2 - 7 % 4;  // 20 - 5 - 3 = 12
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 12 {
		t.Errorf("out = %d, want 12", got)
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	src := `
shared a; shared b; shared c; shared d; shared e;
func main() {
    a = 12 & 10;
    b = 12 | 10;
    c = 12 ^ 10;
    d = 3 << 4;
    e = 48 >> 4;
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	for sym, want := range map[string]int64{"a": 8, "b": 14, "c": 6, "d": 48, "e": 3} {
		if got := word(t, m, sym); got != want {
			t.Errorf("%s = %d, want %d", sym, got, want)
		}
	}
}

func TestComparisonsAndUnary(t *testing.T) {
	src := `
shared r[8];
func main() {
    r[0] = 3 < 4;
    r[1] = 4 <= 4;
    r[2] = 5 > 4;
    r[3] = 4 >= 5;
    r[4] = 4 == 4;
    r[5] = 4 != 4;
    r[6] = -(3);
    r[7] = !5;
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	base := m.Program().Symbols["r"]
	want := []int64{1, 1, 1, 0, 1, 0, -3, 0}
	for i, w := range want {
		if got := m.Mem(base + int64(i)); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not evaluate when the left is false:
	// evaluating it would divide by zero and fault the VM.
	src := `
shared ok; shared zero = 0;
func main() {
    if (0 && (1 / zero)) {
        ok = 111;
    } else {
        ok = 1;
    }
    if (1 || (1 / zero)) {
        ok = ok + 1;
    }
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "ok"); got != 2 {
		t.Errorf("ok = %d, want 2", got)
	}
}

func TestWhileLoopAndLocals(t *testing.T) {
	src := `
shared out;
func main() {
    var i, sum;
    i = 1;
    sum = 0;
    while (i <= 10) {
        sum = sum + i;
        i = i + 1;
    }
    out = sum;
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 55 {
		t.Errorf("out = %d, want 55", got)
	}
}

func TestForLoop(t *testing.T) {
	src := `
shared out;
func main() {
    var i, sum;
    sum = 0;
    for (i = 1; i <= 10; i = i + 1) {
        sum = sum + i;
    }
    out = sum;
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 55 {
		t.Errorf("for-loop sum = %d, want 55", got)
	}
}

func TestForLoopContinueRunsPost(t *testing.T) {
	// The C semantics: continue jumps to the post clause, so the loop
	// still advances.
	src := `
shared out;
func main() {
    var i, sum;
    sum = 0;
    for (i = 1; i <= 10; i = i + 1) {
        if (i % 2 == 0) { continue; }
        sum = sum + i;   // 1+3+5+7+9 = 25
    }
    out = sum;
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 25 {
		t.Errorf("out = %d, want 25", got)
	}
}

func TestForLoopBreakAndEmptyClauses(t *testing.T) {
	src := `
shared out;
func main() {
    var i;
    i = 0;
    for (;;) {
        i = i + 1;
        if (i >= 7) { break; }
    }
    out = i;
    for (; out < 10;) {
        out = out + 1;
    }
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 10 {
		t.Errorf("out = %d, want 10", got)
	}
}

func TestForLoopOptimized(t *testing.T) {
	src := `
shared out;
func main() {
    var i, sum;
    sum = 1;
    for (i = 0; 0; i = i + 1) {   // dead loop: init only
        sum = 9999;
    }
    for (i = 0; i < 2 + 2; i = i + 1) {
        sum = sum * 2;            // runs 4 times: 16
    }
    out = sum + i * 0;
}
thread 0 main();
`
	for _, o := range []bool{false, true} {
		p, err := Compile(src, Options{Name: "fo", Optimize: o})
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(p, vm.Config{NumCPUs: 1, MemWords: 1 << 14, StackWords: 512})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(1 << 16); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem(p.Symbols["out"]); got != 16 {
			t.Errorf("optimize=%v: out = %d, want 16", o, got)
		}
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
shared out;
func main() {
    var i, sum;
    i = 0;
    sum = 0;
    while (1) {
        i = i + 1;
        if (i > 10) { break; }
        if (i % 2 == 0) { continue; }
        sum = sum + i;   // 1+3+5+7+9 = 25
    }
    out = sum;
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 25 {
		t.Errorf("out = %d, want 25", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
shared out;
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() {
    out = fib(12);
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 144 {
		t.Errorf("fib(12) = %d, want 144", got)
	}
}

func TestCallPreservesLiveTemporaries(t *testing.T) {
	// The call appears mid-expression: 100 is live in a temp across it.
	src := `
shared out;
func seven() { return 7; }
func main() {
    out = 100 + seven() * 2;
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 114 {
		t.Errorf("out = %d, want 114", got)
	}
}

func TestSharedArrays(t *testing.T) {
	src := `
shared a[10]; shared out;
func main() {
    var i;
    i = 0;
    while (i < 10) {
        a[i] = i * i;
        i = i + 1;
    }
    out = a[7];
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 49 {
		t.Errorf("out = %d, want 49", got)
	}
}

func TestSharedInitializer(t *testing.T) {
	src := `
shared x = 41; shared y = -5; shared out;
func main() { out = x + y; }
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 36 {
		t.Errorf("out = %d, want 36", got)
	}
}

func TestTidAndThreadArgs(t *testing.T) {
	src := `
shared out[4];
func main(bonus) {
    out[tid] = tid * 10 + bonus;
}
thread 0 main(1);
thread 1 main(2);
thread 2 main(3);
thread 3 main(4);
`
	m := compileRun(t, src, 4, 9)
	base := m.Program().Symbols["out"]
	for i := int64(0); i < 4; i++ {
		if got := m.Mem(base + i); got != i*10+i+1 {
			t.Errorf("out[%d] = %d, want %d", i, got, i*10+i+1)
		}
	}
}

func TestLocalGlobalsArePerThread(t *testing.T) {
	src := `
local mine;
local arr[4];
shared out[2];
func main() {
    var i;
    mine = (tid + 1) * 100;
    i = 0;
    while (i < 4) {
        arr[i] = mine + i;
        i = i + 1;
    }
    yield();
    out[tid] = arr[3];   // must be unaffected by the other thread
}
thread 0 main();
thread 1 main();
`
	for seed := uint64(0); seed < 4; seed++ {
		m := compileRun(t, src, 2, seed)
		base := m.Program().Symbols["out"]
		if got := m.Mem(base); got != 103 {
			t.Errorf("seed %d: out[0] = %d, want 103", seed, got)
		}
		if got := m.Mem(base + 1); got != 203 {
			t.Errorf("seed %d: out[1] = %d, want 203", seed, got)
		}
	}
}

func TestLockMutualExclusion(t *testing.T) {
	src := `
lock l;
shared counter;
func main() {
    var i;
    i = 0;
    while (i < 100) {
        lock(l);
        counter = counter + 1;
        unlock(l);
        i = i + 1;
    }
}
thread 0 main();
thread 1 main();
thread 2 main();
`
	for seed := uint64(0); seed < 4; seed++ {
		m := compileRun(t, src, 3, seed)
		if got := word(t, m, "counter"); got != 300 {
			t.Errorf("seed %d: counter = %d, want 300", seed, got)
		}
	}
}

func TestRacyCounterLosesUpdates(t *testing.T) {
	src := `
shared counter;
func main() {
    var i;
    i = 0;
    while (i < 100) {
        counter = counter + 1;
        i = i + 1;
    }
}
thread 0 main();
thread 1 main();
thread 2 main();
`
	lost := false
	for seed := uint64(0); seed < 8 && !lost; seed++ {
		m := compileRun(t, src, 3, seed)
		if word(t, m, "counter") < 300 {
			lost = true
		}
	}
	if !lost {
		t.Error("racy counter never lost an update across seeds")
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
shared out;
func classify(n) {
    if (n < 10) { return 1; }
    else if (n < 100) { return 2; }
    else { return 3; }
}
func main() {
    out = classify(5) * 100 + classify(50) * 10 + classify(500);
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 123 {
		t.Errorf("out = %d, want 123", got)
	}
}

func TestCommentsLexing(t *testing.T) {
	src := `
// line comment
shared out; /* block
   comment */
func main() { out = 5; } // trailing
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 5 {
		t.Errorf("out = %d", got)
	}
}

func TestLineInfoMapsToSource(t *testing.T) {
	src := `shared out;
func main() {
    out = 7;
}
thread 0 main();
`
	p, err := Compile(src, Options{Name: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for pc := range p.Code {
		if p.Code[pc].Op.IsMem() && strings.Contains(p.LocationOf(int64(pc)), "unit:3") {
			found = true
		}
	}
	if !found {
		t.Error("no memory instruction mapped to source line 3")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined var", `func main(){ x = 1; } thread 0 main();`, "undefined variable"},
		{"undefined func", `func main(){ foo(); } thread 0 main();`, "undefined function"},
		{"arity", `func f(a){} func main(){ f(); } thread 0 main();`, "wants 1 args"},
		{"dup global", `shared x; shared x; func main(){} thread 0 main();`, "duplicate global"},
		{"dup func", `func f(){} func f(){} thread 0 f();`, "duplicate function"},
		{"dup local", `func main(){ var a; var a; } thread 0 main();`, "duplicate local"},
		{"dup thread", `func main(){} thread 0 main(); thread 0 main();`, "duplicate thread"},
		{"no threads", `func main(){}`, "no threads"},
		{"break outside", `func main(){ break; } thread 0 main();`, "break outside loop"},
		{"continue outside", `func main(){ continue; } thread 0 main();`, "continue outside loop"},
		{"assign tid", `func main(){ tid = 1; } thread 0 main();`, "cannot assign to tid"},
		{"declare tid", `shared tid; func main(){} thread 0 main();`, "reserved"},
		{"scalar indexed", `shared x; func main(){ x[0] = 1; } thread 0 main();`, "not an array"},
		{"array unindexed", `shared a[4]; func main(){ a = 1; } thread 0 main();`, "needs an index"},
		{"read lock", `lock l; shared y; func main(){ y = l; } thread 0 main();`, "cannot be read"},
		{"assign lock", `lock l; func main(){ l = 1; } thread 0 main();`, "use lock()/unlock()"},
		{"bad lock name", `shared x; func main(){ lock(x); } thread 0 main();`, "not a lock"},
		{"undefined lock", `func main(){ lock(nope); } thread 0 main();`, "undefined lock"},
		{"too many params", `func f(a,b,c,d,e){} func main(){} thread 0 main();`, "at most 4"},
		{"thread undefined func", `thread 0 nope();`, "undefined function"},
		{"thread arity", `func f(a){} thread 0 f();`, "passes 0 args"},
		{"bad array size", `shared a[0]; func main(){} thread 0 main();`, "must be positive"},
		{"local init", `local x = 3; func main(){} thread 0 main();`, "only shared scalars"},
		{"expr stmt", `shared x; func main(){ x + 1; } thread 0 main();`, "expected"},
		{"lex error", "func main(){ @ }", "unexpected character"},
		{"unterminated comment", "/* foo", "unterminated block comment"},
		{"unterminated block", "func main(){", "unterminated block"},
		{"thread id range", `func main(){} thread 99 main();`, "out of range"},
		{"func collides global", `shared f; func f(){} thread 0 f();`, "collides"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, Options{})
		if err == nil {
			t.Errorf("%s: compiled without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestExpressionTooComplex(t *testing.T) {
	// A right-leaning chain of depth 12 needs 12 live temporaries, past
	// the t0..t9 budget.
	expr := "1"
	for i := 0; i < 12; i++ {
		expr = "1 + (" + expr + ")"
	}
	src := "shared out;\nfunc main(){ out = " + expr + "; }\nthread 0 main();"
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatal("deep expression compiled within temp budget")
	}
	if !strings.Contains(err.Error(), "too complex") {
		t.Errorf("error %q does not mention too complex", err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile("junk", Options{})
}

func TestNestedCallsDeep(t *testing.T) {
	src := `
shared out;
func add(a, b) { return a + b; }
func main() {
    out = add(add(1, add(2, 3)), add(add(4, 5), 6));
}
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 21 {
		t.Errorf("out = %d, want 21", got)
	}
}

func TestFourParams(t *testing.T) {
	src := `
shared out;
func f(a, b, c, d) { return a*1000 + b*100 + c*10 + d; }
func main() { out = f(1, 2, 3, 4); }
thread 0 main();
`
	m := compileRun(t, src, 1, 0)
	if got := word(t, m, "out"); got != 1234 {
		t.Errorf("out = %d, want 1234", got)
	}
}

func TestLocksLaidOutFirst(t *testing.T) {
	src := `
shared x; lock l; shared y;
func main(){ x = 1; y = 2; }
thread 0 main();
`
	p, err := Compile(src, Options{DataBase: 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["l"] != 100 {
		t.Errorf("lock at %d, want 100 (locks first)", p.Symbols["l"])
	}
	if p.Symbols["x"] != 101 || p.Symbols["y"] != 102 {
		t.Errorf("shared layout: x=%d y=%d", p.Symbols["x"], p.Symbols["y"])
	}
}

func TestLockArrayMutualExclusion(t *testing.T) {
	src := `
lock l[2];
shared counter[2];
func main() {
    var i, w;
    i = 0;
    while (i < 60) {
        w = i % 2;
        lock(l[w]);
        counter[w] = counter[w] + 1;
        unlock(l[w]);
        i = i + 1;
    }
}
thread 0 main();
thread 1 main();
`
	for seed := uint64(0); seed < 3; seed++ {
		m := compileRun(t, src, 2, seed)
		base := m.Program().Symbols["counter"]
		if m.Mem(base) != 60 || m.Mem(base+1) != 60 {
			t.Errorf("seed %d: counters = %d,%d, want 60,60", seed, m.Mem(base), m.Mem(base+1))
		}
	}
}

func TestLockArrayErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"array needs index", `lock l[2]; func main(){ lock(l); } thread 0 main();`, "needs an index"},
		{"scalar no index", `lock l; func main(){ lock(l[0]); } thread 0 main();`, "not an array"},
		{"bad size", `lock l[0]; func main(){} thread 0 main();`, "must be positive"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.wantSub)
		}
	}
}

func TestUndeclaredCPUsHalt(t *testing.T) {
	src := `
shared out;
func main() { out = 1; }
thread 2 main();
`
	p, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(p.Entries))
	}
	m, err := vm.New(p, vm.Config{NumCPUs: 3, MemWords: 1 << 14, StackWords: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Error("machine with gap CPUs did not halt")
	}
	if got := m.Mem(p.Symbols["out"]); got != 1 {
		t.Errorf("out = %d", got)
	}
}
