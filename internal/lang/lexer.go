package lang

import "strconv"

// lexer scans SVL source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errf(line, col, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	t := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		t.kind = tokEOF
		return t, nil
	}
	c := l.peekByte()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		t.text = l.src[start:l.pos]
		if k, ok := keywords[t.text]; ok {
			t.kind = k
		} else {
			t.kind = tokIdent
		}
		return t, nil

	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && (isIdentPart(l.peekByte())) {
			l.advance()
		}
		t.text = l.src[start:l.pos]
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return t, errf(t.line, t.col, "bad integer literal %q", t.text)
		}
		t.kind = tokInt
		t.val = v
		return t, nil
	}

	two := func(second byte, both, single tokKind) token {
		l.advance()
		if l.pos < len(l.src) && l.peekByte() == second {
			l.advance()
			t.kind = both
		} else {
			t.kind = single
		}
		return t
	}

	switch c {
	case '(':
		l.advance()
		t.kind = tokLParen
	case ')':
		l.advance()
		t.kind = tokRParen
	case '{':
		l.advance()
		t.kind = tokLBrace
	case '}':
		l.advance()
		t.kind = tokRBrace
	case '[':
		l.advance()
		t.kind = tokLBracket
	case ']':
		l.advance()
		t.kind = tokRBracket
	case ',':
		l.advance()
		t.kind = tokComma
	case ';':
		l.advance()
		t.kind = tokSemi
	case '+':
		l.advance()
		t.kind = tokPlus
	case '-':
		l.advance()
		t.kind = tokMinus
	case '*':
		l.advance()
		t.kind = tokStar
	case '/':
		l.advance()
		t.kind = tokSlash
	case '%':
		l.advance()
		t.kind = tokPercent
	case '^':
		l.advance()
		t.kind = tokCaret
	case '=':
		return two('=', tokEq, tokAssign), nil
	case '!':
		return two('=', tokNe, tokNot), nil
	case '<':
		l.advance()
		switch l.peekByte() {
		case '=':
			l.advance()
			t.kind = tokLe
		case '<':
			l.advance()
			t.kind = tokShl
		default:
			t.kind = tokLt
		}
	case '>':
		l.advance()
		switch l.peekByte() {
		case '=':
			l.advance()
			t.kind = tokGe
		case '>':
			l.advance()
			t.kind = tokShr
		default:
			t.kind = tokGt
		}
	case '&':
		return two('&', tokAndAnd, tokAmp), nil
	case '|':
		return two('|', tokOrOr, tokPipe), nil
	default:
		return t, errf(t.line, t.col, "unexpected character %q", string(c))
	}
	return t, nil
}

// lexAll scans the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
