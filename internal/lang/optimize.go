package lang

// AST-level optimizations: constant folding, algebraic identities on pure
// operands, short-circuit simplification, and dead-branch elimination.
//
// Besides being a normal part of a compiler, optimization is an
// interesting knob for the detector: folded code performs fewer dynamic
// loads and branches, which changes the dependence structure SVD infers
// (fewer singleton CUs, shorter register chains) without changing program
// behavior. BenchmarkOptimizerImpact measures that.

// Optimize returns a simplified copy of the program. The input is not
// modified.
func Optimize(p *Program) *Program {
	out := &Program{
		Globals: p.Globals,
		Threads: make([]*ThreadDecl, len(p.Threads)),
	}
	for _, f := range p.Funcs {
		nf := &FuncDecl{Name: f.Name, Params: f.Params, Line: f.Line}
		nf.Body = optStmts(f.Body)
		out.Funcs = append(out.Funcs, nf)
	}
	for i, th := range p.Threads {
		nt := *th
		nt.Args = make([]Expr, len(th.Args))
		for j, a := range th.Args {
			nt.Args[j] = optExpr(a)
		}
		out.Threads[i] = &nt
	}
	return out
}

func optStmts(stmts []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		out = append(out, optStmt(s)...)
	}
	return out
}

// optStmt simplifies one statement; it may expand to zero or more
// statements (dead-branch elimination inlines the surviving arm).
func optStmt(s Stmt) []Stmt {
	switch s := s.(type) {
	case *AssignStmt:
		ns := *s
		ns.Value = optExpr(s.Value)
		if s.Target.Index != nil {
			nt := *s.Target
			nt.Index = optExpr(s.Target.Index)
			ns.Target = &nt
		}
		return []Stmt{&ns}

	case *IfStmt:
		cond := optExpr(s.Cond)
		if lit, ok := cond.(*IntLit); ok {
			if lit.Val != 0 {
				return optStmts(s.Then)
			}
			return optStmts(s.Else)
		}
		return []Stmt{&IfStmt{Cond: cond, Then: optStmts(s.Then), Else: optStmts(s.Else), Line: s.Line}}

	case *WhileStmt:
		cond := optExpr(s.Cond)
		if lit, ok := cond.(*IntLit); ok && lit.Val == 0 {
			return nil // while(0): dead
		}
		return []Stmt{&WhileStmt{Cond: cond, Body: optStmts(s.Body), Line: s.Line}}

	case *ForStmt:
		ns := &ForStmt{Init: s.Init, Post: s.Post, Body: optStmts(s.Body), Line: s.Line}
		if s.Init != nil {
			ns.Init = optStmt(s.Init)[0].(*AssignStmt)
		}
		if s.Post != nil {
			ns.Post = optStmt(s.Post)[0].(*AssignStmt)
		}
		if s.Cond != nil {
			cond := optExpr(s.Cond)
			if lit, ok := cond.(*IntLit); ok && lit.Val == 0 {
				// for(init; 0; ...): only the init clause runs.
				if ns.Init != nil {
					return []Stmt{ns.Init}
				}
				return nil
			}
			ns.Cond = cond
		}
		return []Stmt{ns}

	case *ReturnStmt:
		if s.Value == nil {
			return []Stmt{s}
		}
		return []Stmt{&ReturnStmt{Value: optExpr(s.Value), Line: s.Line}}

	case *ExprStmt:
		return []Stmt{&ExprStmt{X: optExpr(s.X), Line: s.Line}}

	case *LockStmt:
		if s.Index == nil {
			return []Stmt{s}
		}
		return []Stmt{&LockStmt{Name: s.Name, Index: optExpr(s.Index), Line: s.Line}}

	case *UnlockStmt:
		if s.Index == nil {
			return []Stmt{s}
		}
		return []Stmt{&UnlockStmt{Name: s.Name, Index: optExpr(s.Index), Line: s.Line}}

	default:
		return []Stmt{s}
	}
}

// pure reports whether evaluating e has no side effects (no calls; every
// other SVL expression is pure).
func pure(e Expr) bool {
	switch e := e.(type) {
	case *IntLit, *VarRef:
		return true
	case *IndexExpr:
		return pure(e.Index)
	case *UnaryExpr:
		return pure(e.X)
	case *BinaryExpr:
		return pure(e.L) && pure(e.R)
	default:
		return false
	}
}

func optExpr(e Expr) Expr {
	switch e := e.(type) {
	case *UnaryExpr:
		x := optExpr(e.X)
		if lit, ok := x.(*IntLit); ok {
			switch e.Op {
			case tokMinus:
				return &IntLit{Val: -lit.Val, Line: e.Line}
			case tokNot:
				v := int64(0)
				if lit.Val == 0 {
					v = 1
				}
				return &IntLit{Val: v, Line: e.Line}
			}
		}
		return &UnaryExpr{Op: e.Op, X: x, Line: e.Line}

	case *BinaryExpr:
		l, r := optExpr(e.L), optExpr(e.R)

		// Short-circuit operators with a constant left operand.
		if e.Op == tokAndAnd || e.Op == tokOrOr {
			if ll, ok := l.(*IntLit); ok {
				taken := (e.Op == tokAndAnd) == (ll.Val != 0)
				if !taken {
					// 0 && x -> 0; 1 || x -> 1, and x never evaluates.
					v := int64(0)
					if e.Op == tokOrOr {
						v = 1
					}
					return &IntLit{Val: v, Line: e.Line}
				}
				// 1 && x / 0 || x -> normalized x.
				if rl, ok := r.(*IntLit); ok {
					return &IntLit{Val: boolVal(rl.Val != 0), Line: e.Line}
				}
				return &BinaryExpr{Op: tokNe, L: r, R: &IntLit{Val: 0, Line: e.Line}, Line: e.Line}
			}
			return &BinaryExpr{Op: e.Op, L: l, R: r, Line: e.Line}
		}

		ll, lok := l.(*IntLit)
		rl, rok := r.(*IntLit)
		if lok && rok {
			if v, ok := foldConst(e.Op, ll.Val, rl.Val); ok {
				return &IntLit{Val: v, Line: e.Line}
			}
		}
		// Identities on pure operands.
		if rok && pure(l) {
			switch {
			case rl.Val == 0 && (e.Op == tokPlus || e.Op == tokMinus ||
				e.Op == tokPipe || e.Op == tokCaret || e.Op == tokShl || e.Op == tokShr):
				return l // x+0, x-0, x|0, x^0, x<<0, x>>0
			case rl.Val == 1 && (e.Op == tokStar || e.Op == tokSlash):
				return l // x*1, x/1
			case rl.Val == 0 && (e.Op == tokStar || e.Op == tokAmp):
				return &IntLit{Val: 0, Line: e.Line} // x*0, x&0
			}
		}
		if lok && pure(r) {
			switch {
			case ll.Val == 0 && (e.Op == tokPlus || e.Op == tokPipe || e.Op == tokCaret):
				return r // 0+x, 0|x, 0^x
			case ll.Val == 1 && e.Op == tokStar:
				return r // 1*x
			case ll.Val == 0 && (e.Op == tokStar || e.Op == tokAmp):
				return &IntLit{Val: 0, Line: e.Line} // 0*x, 0&x
			}
		}
		return &BinaryExpr{Op: e.Op, L: l, R: r, Line: e.Line}

	case *IndexExpr:
		return &IndexExpr{Name: e.Name, Index: optExpr(e.Index), Line: e.Line}

	case *CallExpr:
		nc := &CallExpr{Func: e.Func, Line: e.Line}
		for _, a := range e.Args {
			nc.Args = append(nc.Args, optExpr(a))
		}
		return nc

	default:
		return e
	}
}

// foldConst evaluates a binary operator over constants; division and
// modulo by zero stay unfolded so the runtime fault is preserved.
func foldConst(op tokKind, a, b int64) (int64, bool) {
	switch op {
	case tokPlus:
		return a + b, true
	case tokMinus:
		return a - b, true
	case tokStar:
		return a * b, true
	case tokSlash:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case tokPercent:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case tokAmp:
		return a & b, true
	case tokPipe:
		return a | b, true
	case tokCaret:
		return a ^ b, true
	case tokShl:
		return a << (uint64(b) & 63), true
	case tokShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case tokLt:
		return boolVal(a < b), true
	case tokLe:
		return boolVal(a <= b), true
	case tokGt:
		return boolVal(a > b), true
	case tokGe:
		return boolVal(a >= b), true
	case tokEq:
		return boolVal(a == b), true
	case tokNe:
		return boolVal(a != b), true
	}
	return 0, false
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
