package lang

import (
	"testing"

	"repro/internal/vm"
)

// compileBoth compiles src unoptimized and optimized and checks both
// produce out == want; it returns the two code sizes.
func compileBoth(t *testing.T, src string, want int64) (plain, opt int) {
	t.Helper()
	run := func(optimize bool) int {
		p, err := Compile(src, Options{Name: "o", Optimize: optimize})
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(p, vm.Config{NumCPUs: len(p.Entries), MemWords: 1 << 14, StackWords: 512})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(1 << 20); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem(p.Symbols["out"]); got != want {
			t.Fatalf("optimize=%v: out = %d, want %d", optimize, got, want)
		}
		return len(p.Code)
	}
	return run(false), run(true)
}

func TestConstantFolding(t *testing.T) {
	src := `
shared out;
func main() {
    out = (2 + 3) * 4 - 10 / 2 + (7 % 4) + (1 << 4) - (32 >> 2)
        + (12 & 10) + (12 | 10) + (12 ^ 10)
        + (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) + (4 == 4) + (4 != 4)
        + (-(3)) + (!5) + (!0);
}
thread 0 main();
`
	// 20 - 5 + 3 + 16 - 8 + 8 + 14 + 6 + 1+1+1+0+1+0 - 3 + 0 + 1 = 56
	plain, opt := compileBoth(t, src, 56)
	if opt >= plain {
		t.Errorf("optimized code (%d instrs) not smaller than plain (%d)", opt, plain)
	}
}

func TestIdentities(t *testing.T) {
	src := `
shared out; shared x = 7;
func main() {
    out = (x + 0) + (x - 0) + (x * 1) + (x / 1) + (x * 0) + (0 * x)
        + (x | 0) + (x ^ 0) + (x << 0) + (x >> 0) + (x & 0) + (0 + x) + (1 * x);
}
thread 0 main();
`
	// 7+7+7+7+0+0+7+7+7+7+0+7+7 = 70
	plain, opt := compileBoth(t, src, 70)
	if opt >= plain {
		t.Errorf("identities not simplified: %d vs %d instrs", opt, plain)
	}
}

func TestDeadBranchElimination(t *testing.T) {
	src := `
shared out;
func main() {
    if (1) { out = out + 10; } else { out = out + 100; }
    if (0) { out = out + 1000; }
    if (2 > 3) { out = out + 1; } else { out = out + 20; }
    while (0) { out = out + 5000; }
    out = out + 1;
}
thread 0 main();
`
	plain, opt := compileBoth(t, src, 31)
	if opt >= plain {
		t.Errorf("dead branches not eliminated: %d vs %d instrs", opt, plain)
	}
}

func TestShortCircuitFolding(t *testing.T) {
	src := `
shared out; shared x = 3;
func main() {
    out = (0 && (x / 0)) + (1 || (x / 0)) * 10 + (1 && x) * 100 + (0 || x) * 1000;
}
thread 0 main();
`
	// 0 + 10 + 100 + 1000 = 1110 (x normalized to 1 by &&/||)
	compileBoth(t, src, 1110)
}

func TestDivByZeroNotFolded(t *testing.T) {
	src := `
shared out;
func main() {
    out = 1 / 0;
}
thread 0 main();
`
	p, err := Compile(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(p, vm.Config{NumCPUs: 1, MemWords: 1 << 12, StackWords: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1 << 12); err == nil {
		t.Error("constant division by zero did not fault (folded away?)")
	}
}

func TestCallsNotDuplicatedOrDropped(t *testing.T) {
	// Calls are impure: identities must not clone or delete them.
	src := `
shared out; shared calls;
func bump() { calls = calls + 1; return 1; }
func main() {
    out = bump() * 1 + 0 * 7 + bump() - 0;
    out = out * 10 + calls;
}
thread 0 main();
`
	compileBoth(t, src, 22) // (1+0+1)*10 + 2
}

func TestWhileConditionKept(t *testing.T) {
	src := `
shared out;
func main() {
    var i;
    i = 0;
    while (i < 3 + 2) {    // folds to i < 5, loop preserved
        i = i + 1;
    }
    out = i;
}
thread 0 main();
`
	compileBoth(t, src, 5)
}

// TestOptimizedWorkloadsBehaveIdentically recompiles every workload source
// with the optimizer and checks the consistency outcome is preserved.
func TestOptimizeIsSemanticallyTransparent(t *testing.T) {
	srcs := []string{
		`shared out; local mine[4]; lock l;
func f(n) { var i; i = 0; while (i < n) { lock(l); out = out + 1; unlock(l); mine[i % 4] = i; i = i + 1; } }
thread 0 f(50); thread 1 f(50);`,
	}
	for _, src := range srcs {
		for _, seed := range []uint64{1, 5} {
			vals := map[bool]int64{}
			for _, o := range []bool{false, true} {
				p, err := Compile(src, Options{Optimize: o})
				if err != nil {
					t.Fatal(err)
				}
				m, err := vm.New(p, vm.Config{NumCPUs: 2, MemWords: 1 << 14, StackWords: 512, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(1 << 22); err != nil {
					t.Fatal(err)
				}
				vals[o] = m.Mem(p.Symbols["out"])
			}
			if vals[false] != vals[true] {
				t.Errorf("seed %d: optimizer changed outcome: %d vs %d", seed, vals[false], vals[true])
			}
		}
	}
}
