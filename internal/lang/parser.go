package lang

import "strconv"

// parser is a recursive-descent parser with precedence climbing for
// expressions.
type parser struct {
	toks []token
	pos  int
}

// Parse parses SVL source into an AST.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %s, found %s", k, describe(t))
	}
	return p.advance(), nil
}

func describe(t token) string {
	switch t.kind {
	case tokIdent:
		return "identifier " + strconv.Quote(t.text)
	case tokInt:
		return "integer " + t.text
	default:
		return strconv.Quote(t.kind.String())
	}
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tokEOF {
		switch p.cur().kind {
		case tokShared, tokLocal:
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case tokLock:
			// "lock name;" at the top level declares a lock; inside a
			// function body "lock(name);" is a statement. Disambiguate by
			// the next token.
			if p.peek().kind == tokIdent {
				t := p.advance()
				name, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				g := &GlobalDecl{Kind: GlobalLock, Name: name.text, Size: 1, Line: t.line}
				if p.cur().kind == tokLBracket {
					p.advance()
					size, err := p.expect(tokInt)
					if err != nil {
						return nil, err
					}
					if size.val <= 0 {
						return nil, errf(size.line, size.col, "lock array size must be positive, got %d", size.val)
					}
					g.Size = size.val
					g.IsArray = true
					if _, err := p.expect(tokRBracket); err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				prog.Globals = append(prog.Globals, g)
				continue
			}
			t := p.cur()
			return nil, errf(t.line, t.col, "expected lock name after 'lock'")
		case tokFunc:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		case tokThread:
			th, err := p.threadDecl()
			if err != nil {
				return nil, err
			}
			prog.Threads = append(prog.Threads, th)
		default:
			t := p.cur()
			return nil, errf(t.line, t.col, "expected declaration, found %s", describe(t))
		}
	}
	return prog, nil
}

func (p *parser) globalDecl() (*GlobalDecl, error) {
	t := p.advance() // shared | local
	kind := GlobalShared
	if t.kind == tokLocal {
		kind = GlobalLocal
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Kind: kind, Name: name.text, Size: 1, Line: t.line}
	switch p.cur().kind {
	case tokLBracket:
		p.advance()
		size, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		if size.val <= 0 {
			return nil, errf(size.line, size.col, "array size must be positive, got %d", size.val)
		}
		g.Size = size.val
		g.IsArray = true
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	case tokAssign:
		p.advance()
		neg := false
		if p.cur().kind == tokMinus {
			p.advance()
			neg = true
		}
		v, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		g.Init = v.val
		if neg {
			g.Init = -g.Init
		}
		if kind != GlobalShared {
			return nil, errf(t.line, t.col, "only shared scalars take initializers")
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	t := p.advance() // func
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.text, Line: t.line}
	for p.cur().kind != tokRParen {
		param, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, param.text)
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) threadDecl() (*ThreadDecl, error) {
	t := p.advance() // thread
	cpu, err := p.expect(tokInt)
	if err != nil {
		return nil, err
	}
	if cpu.val < 0 || cpu.val > 63 {
		return nil, errf(cpu.line, cpu.col, "thread id %d out of range [0,63]", cpu.val)
	}
	fn, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	th := &ThreadDecl{CPU: int(cpu.val), Func: fn.text, Line: t.line}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRParen {
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		th.Args = append(th.Args, arg)
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return th, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []Stmt
	for p.cur().kind != tokRBrace {
		if p.cur().kind == tokEOF {
			t := p.cur()
			return nil, errf(t.line, t.col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.advance() // }
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		s := &VarStmt{Line: t.line}
		for {
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			s.Names = append(s.Names, name.text)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return s, nil

	case tokIf:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then, Line: t.line}
		if p.cur().kind == tokElse {
			p.advance()
			if p.cur().kind == tokIf {
				inner, err := p.stmt()
				if err != nil {
					return nil, err
				}
				s.Else = []Stmt{inner}
			} else {
				els, err := p.block()
				if err != nil {
					return nil, err
				}
				s.Else = els
			}
		}
		return s, nil

	case tokWhile:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil

	case tokFor:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		s := &ForStmt{Line: t.line}
		if p.cur().kind != tokSemi {
			init, err := p.assignClause()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		if p.cur().kind != tokSemi {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Cond = cond
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			post, err := p.assignClause()
			if err != nil {
				return nil, err
			}
			s.Post = post
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil

	case tokReturn:
		p.advance()
		s := &ReturnStmt{Line: t.line}
		if p.cur().kind != tokSemi {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return s, nil

	case tokBreak:
		p.advance()
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil

	case tokContinue:
		p.advance()
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil

	case tokLock:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		s := &LockStmt{Name: name.text, Line: t.line}
		if p.cur().kind == tokLBracket {
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			s.Index = idx
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return s, nil

	case tokIdent:
		// unlock(l); yield(); a call statement; or an assignment.
		switch t.text {
		case "unlock":
			if p.peek().kind == tokLParen {
				p.advance()
				p.advance()
				name, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				s := &UnlockStmt{Name: name.text, Line: t.line}
				if p.cur().kind == tokLBracket {
					p.advance()
					idx, err := p.expr()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(tokRBracket); err != nil {
						return nil, err
					}
					s.Index = idx
				}
				if _, err := p.expect(tokRParen); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				return s, nil
			}
		case "yield":
			if p.peek().kind == tokLParen {
				p.advance()
				p.advance()
				if _, err := p.expect(tokRParen); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				return &YieldStmt{Line: t.line}, nil
			}
		}
		if p.peek().kind == tokLParen {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			return &ExprStmt{X: x, Line: t.line}, nil
		}
		// Assignment.
		lv, err := p.lvalue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lv, Value: v, Line: t.line}, nil
	}
	return nil, errf(t.line, t.col, "expected statement, found %s", describe(t))
}

// assignClause parses the "x = expr" clauses of a for header.
func (p *parser) assignClause() (*AssignStmt, error) {
	t := p.cur()
	lv, err := p.lvalue()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Target: lv, Value: v, Line: t.line}, nil
}

func (p *parser) lvalue() (*LValue, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	lv := &LValue{Name: name.text, Line: name.line}
	if p.cur().kind == tokLBracket {
		p.advance()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		lv.Index = idx
	}
	return lv, nil
}

// Binary operator precedence, loosest first.
var precedence = map[tokKind]int{
	tokOrOr:   1,
	tokAndAnd: 2,
	tokPipe:   3,
	tokCaret:  4,
	tokAmp:    5,
	tokEq:     6, tokNe: 6,
	tokLt: 7, tokLe: 7, tokGt: 7, tokGe: 7,
	tokShl: 8, tokShr: 8,
	tokPlus: 9, tokMinus: 9,
	tokStar: 10, tokSlash: 10, tokPercent: 10,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := precedence[op.kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.kind, L: lhs, R: rhs, Line: op.line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokMinus, tokNot:
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.kind, X: x, Line: t.line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		return &IntLit{Val: t.val, Line: t.line}, nil
	case tokLParen:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tokIdent:
		p.advance()
		switch p.cur().kind {
		case tokLParen:
			p.advance()
			c := &CallExpr{Func: t.text, Line: t.line}
			for p.cur().kind != tokRParen {
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, arg)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return c, nil
		case tokLBracket:
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.text, Index: idx, Line: t.line}, nil
		}
		return &VarRef{Name: t.text, Line: t.line}, nil
	}
	return nil, errf(t.line, t.col, "expected expression, found %s", describe(t))
}
