// Package lang implements SVL ("server verification language"), a small
// concurrent imperative language, and its compiler to the isa package's
// instruction set.
//
// The paper's workloads are C server programs compiled to SPARC; the
// detector "uses only information that is available from program binaries"
// (§4.2). SVL plays C's role here: the workload models in package
// workloads are written in SVL and compiled by this package, so the
// detector observes realistic compiled code — register reuse, stack
// frames, short-circuit control flow, spinlock loops — rather than
// hand-shaped instruction sequences.
//
// Language summary:
//
//	shared buf[1024];      // shared global array (zero-initialized)
//	shared outcnt;         // shared global scalar
//	shared limit = 64;     // with initializer
//	local scratch[8];      // per-thread global (one copy per thread)
//	lock biglock;          // a lock word for lock()/unlock()
//
//	func writer(n) {
//	    var len, i;
//	    len = n % 16 + 1;
//	    lock(biglock);
//	    i = 0;
//	    while (i < len) {
//	        buf[outcnt + i] = scratch[i];
//	        i = i + 1;
//	    }
//	    outcnt = outcnt + len;
//	    unlock(biglock);
//	    return len;
//	}
//
//	thread 0 writer(5);    // CPU 0 runs writer(5)
//	thread 1 writer(7);
//
// Expressions are 64-bit integers; && and || short-circuit; `tid` is the
// executing thread's id; break/continue work in while loops; yield() hints
// the scheduler. lock/unlock compile to CAS spin loops and plain stores —
// the detector is never told which words are locks.
package lang

import "fmt"

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt

	// Punctuation.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokSemi

	// Operators.
	tokAssign // =
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokLt
	tokLe
	tokGt
	tokGe
	tokEq
	tokNe
	tokAndAnd
	tokOrOr
	tokNot
	tokAmp
	tokPipe
	tokCaret
	tokShl
	tokShr

	// Keywords.
	tokShared
	tokLocal
	tokLock
	tokFunc
	tokVar
	tokIf
	tokElse
	tokWhile
	tokFor
	tokReturn
	tokBreak
	tokContinue
	tokThread
)

var keywords = map[string]tokKind{
	"shared":   tokShared,
	"local":    tokLocal,
	"lock":     tokLock,
	"func":     tokFunc,
	"var":      tokVar,
	"if":       tokIf,
	"else":     tokElse,
	"while":    tokWhile,
	"for":      tokFor,
	"return":   tokReturn,
	"break":    tokBreak,
	"continue": tokContinue,
	"thread":   tokThread,
}

var tokNames = map[tokKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokInt: "integer",
	tokLParen: "(", tokRParen: ")", tokLBrace: "{", tokRBrace: "}",
	tokLBracket: "[", tokRBracket: "]", tokComma: ",", tokSemi: ";",
	tokAssign: "=", tokPlus: "+", tokMinus: "-", tokStar: "*",
	tokSlash: "/", tokPercent: "%", tokLt: "<", tokLe: "<=", tokGt: ">",
	tokGe: ">=", tokEq: "==", tokNe: "!=", tokAndAnd: "&&", tokOrOr: "||",
	tokNot: "!", tokAmp: "&", tokPipe: "|", tokCaret: "^", tokShl: "<<",
	tokShr:    ">>",
	tokShared: "shared", tokLocal: "local", tokLock: "lock", tokFunc: "func",
	tokVar: "var", tokIf: "if", tokElse: "else", tokWhile: "while",
	tokFor:    "for",
	tokReturn: "return", tokBreak: "break", tokContinue: "continue",
	tokThread: "thread",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	val  int64 // tokInt
	line int
	col  int
}

// Error is a compile error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("svl:%d:%d: %s", e.Line, e.Col, e.Msg) }

func errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
