// Package lockset implements an Eraser-style lockset data-race detector
// [Savage et al. 1997], one of the two detector families the paper
// positions SVD against (§8): "the lockset algorithm checks whether each
// shared variable in a program is consistently guarded by at least one
// lock".
//
// Like the paper's FRD baseline — and unlike SVD — lockset detection needs
// a priori knowledge of the synchronization operations; here lock words
// are identified by the same automatic CAS rule FRD uses (a successful CAS
// acquires, a store of zero to a lock word releases).
//
// The detector implements Eraser's per-location state machine: Virgin →
// Exclusive (one thread) → Shared (read-shared after another thread reads)
// → Shared-Modified (checked). The candidate lockset of a location is
// refined by intersection on every access in the checked states; a report
// fires when it empties. Compared to happens-before detection the lockset
// approach reports *potential* races that no execution ordering can
// excuse, which gives it more coverage and more false positives — the
// trade SVD's evaluation discusses.
package lockset

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Options tune the detector.
type Options struct {
	// BlockShift selects block size as 1<<BlockShift words.
	BlockShift uint
	// MaxReports caps retained reports (counting continues). Zero means
	// 1 << 16.
	MaxReports int
}

func (o Options) withDefaults() Options {
	if o.MaxReports <= 0 {
		o.MaxReports = 1 << 16
	}
	return o
}

// state is Eraser's per-location lifecycle.
type state uint8

const (
	stVirgin state = iota
	stExclusive
	stShared
	stSharedModified
)

var stateNames = [...]string{"Virgin", "Exclusive", "Shared", "Shared-Modified"}

func (s state) String() string { return stateNames[s] }

// Report is one lockset violation: the location's candidate set became
// empty at this access.
type Report struct {
	Block int64
	PC    int64
	CPU   int
	Seq   uint64
	Write bool
	State state // state at the time of the report
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("lockset violation: block %d at cpu %d pc %d (seq %d, write=%v, %s): no common lock",
		r.Block, r.CPU, r.PC, r.Seq, r.Write, r.State)
}

// Site aggregates reports by PC.
type Site struct {
	PC    int64
	Count uint64
	First Report
}

// Stats aggregates detector activity.
type Stats struct {
	Instructions uint64
	Accesses     uint64
	SyncOps      uint64
	Reports      uint64
}

type blockInfo struct {
	st       state
	owner    int
	lockset  map[int64]bool // nil until first refinement (meaning "all locks")
	reported bool
}

// Detector is the online lockset detector. It implements vm.Observer.
type Detector struct {
	opts    Options
	numCPUs int

	held      []map[int64]bool // locks currently held per CPU
	lockWords map[int64]bool   // CAS-identified lock words (by block)
	blocks    map[int64]*blockInfo

	reports []Report
	sites   map[int64]*Site
	stats   Stats
}

// New builds a detector for numCPUs processors.
func New(numCPUs int, opts Options) *Detector {
	d := &Detector{
		opts:      opts.withDefaults(),
		numCPUs:   numCPUs,
		held:      make([]map[int64]bool, numCPUs),
		lockWords: make(map[int64]bool),
		blocks:    make(map[int64]*blockInfo),
		sites:     make(map[int64]*Site),
	}
	for i := range d.held {
		d.held[i] = make(map[int64]bool)
	}
	return d
}

// Reports returns retained reports.
func (d *Detector) Reports() []Report { return d.reports }

// Stats returns aggregate counters.
func (d *Detector) Stats() Stats { return d.stats }

// Sites returns report sites sorted by descending count.
func (d *Detector) Sites() []Site {
	out := make([]Site, 0, len(d.sites))
	for _, s := range d.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Step processes one dynamic instruction (vm.Observer).
func (d *Detector) Step(ev *vm.Event) {
	d.stats.Instructions++
	in := ev.Instr
	if !in.Op.IsMem() {
		return
	}
	b := ev.Addr >> d.opts.BlockShift

	// Lock identification and acquire/release bookkeeping.
	if in.Op == isa.OpCas {
		d.lockWords[b] = true
		if ev.IsStore && ev.Stored != 0 {
			// Successful CAS to non-zero: acquire.
			d.held[ev.CPU][b] = true
			d.stats.SyncOps++
			return
		}
		d.stats.SyncOps++
		return
	}
	if d.lockWords[b] {
		if ev.IsStore && ev.Stored == 0 {
			delete(d.held[ev.CPU], b) // release
		}
		d.stats.SyncOps++
		return
	}

	d.stats.Accesses++
	bi := d.blocks[b]
	if bi == nil {
		bi = &blockInfo{st: stVirgin}
		d.blocks[b] = bi
	}

	// Eraser state machine.
	switch bi.st {
	case stVirgin:
		bi.st = stExclusive
		bi.owner = ev.CPU
		return
	case stExclusive:
		if ev.CPU == bi.owner {
			return
		}
		if ev.IsStore {
			bi.st = stSharedModified
		} else {
			bi.st = stShared
		}
		// First refinement initializes the candidate set to the current
		// holder's locks.
		bi.lockset = cloneSet(d.held[ev.CPU])
	case stShared:
		if ev.IsStore {
			bi.st = stSharedModified
		}
		d.refine(bi, ev.CPU)
	case stSharedModified:
		d.refine(bi, ev.CPU)
	}

	// Reads in Shared state refine but do not report (Eraser reports only
	// when a write is involved).
	if bi.st == stSharedModified && len(bi.lockset) == 0 && !bi.reported {
		bi.reported = true
		d.stats.Reports++
		r := Report{Block: b, PC: ev.PC, CPU: ev.CPU, Seq: ev.Seq, Write: ev.IsStore, State: bi.st}
		s := d.sites[ev.PC]
		if s == nil {
			s = &Site{PC: ev.PC, First: r}
			d.sites[ev.PC] = s
		}
		s.Count++
		if len(d.reports) < d.opts.MaxReports {
			d.reports = append(d.reports, r)
		}
	}
}

func (d *Detector) refine(bi *blockInfo, cpu int) {
	if bi.lockset == nil {
		bi.lockset = cloneSet(d.held[cpu])
		return
	}
	for l := range bi.lockset {
		if !d.held[cpu][l] {
			delete(bi.lockset, l)
		}
	}
}

func cloneSet(s map[int64]bool) map[int64]bool {
	out := make(map[int64]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
