package lockset

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workloads"
)

type script struct {
	d   *Detector
	seq uint64
}

func newScript(n int) *script { return &script{d: New(n, Options{})} }

func (s *script) ev(cpu int, pc int64, in isa.Instr, addr int64, load, store bool, stored int64) {
	e := vm.Event{Seq: s.seq, CPU: cpu, PC: pc, Instr: in, Addr: addr, IsLoad: load, IsStore: store, Stored: stored}
	s.seq++
	s.d.Step(&e)
}

func (s *script) load(cpu int, pc, addr int64) {
	s.ev(cpu, pc, isa.Load(8, isa.RegZero, addr), addr, true, false, 0)
}

func (s *script) store(cpu int, pc, addr int64) {
	s.ev(cpu, pc, isa.Store(8, isa.RegZero, addr), addr, false, true, 1)
}

func (s *script) acquire(cpu int, pc, lock int64) {
	s.ev(cpu, pc, isa.Cas(8, 9, 10, 11), lock, true, true, 1)
}

func (s *script) release(cpu int, pc, lock int64) {
	s.ev(cpu, pc, isa.Store(isa.RegZero, isa.RegZero, lock), lock, false, true, 0)
}

func TestConsistentlyLockedNoReport(t *testing.T) {
	s := newScript(2)
	const l, x = 10, 100
	for i := 0; i < 3; i++ {
		for cpu := 0; cpu < 2; cpu++ {
			s.acquire(cpu, 1, l)
			s.load(cpu, 2, x)
			s.store(cpu, 3, x)
			s.release(cpu, 4, l)
		}
	}
	if got := s.d.Stats().Reports; got != 0 {
		t.Errorf("locked accesses reported %d violations", got)
	}
}

func TestUnlockedSharedWriteReports(t *testing.T) {
	s := newScript(2)
	const x = 100
	s.store(0, 1, x) // exclusive
	s.store(1, 2, x) // shared-modified, empty lockset
	st := s.d.Stats()
	if st.Reports != 1 {
		t.Fatalf("reports = %d, want 1", st.Reports)
	}
	r := s.d.Reports()[0]
	if r.Block != x || r.CPU != 1 || !r.Write {
		t.Errorf("report = %+v", r)
	}
}

func TestReadSharedNoReport(t *testing.T) {
	// Read-only sharing after initialization never reports (Eraser's
	// Shared state).
	s := newScript(3)
	const x = 100
	s.store(0, 1, x)
	s.load(1, 2, x)
	s.load(2, 3, x)
	s.load(1, 2, x)
	if got := s.d.Stats().Reports; got != 0 {
		t.Errorf("read-shared reported %d violations", got)
	}
}

func TestExclusiveOwnerNeverReports(t *testing.T) {
	s := newScript(2)
	const x = 100
	for i := 0; i < 5; i++ {
		s.store(0, 1, x)
		s.load(0, 2, x)
	}
	if got := s.d.Stats().Reports; got != 0 {
		t.Errorf("single-owner accesses reported %d violations", got)
	}
}

func TestDifferentLocksReport(t *testing.T) {
	// Two threads each hold a lock — but different ones: intersection
	// empties.
	s := newScript(2)
	const l1, l2, x = 10, 11, 100
	s.acquire(0, 1, l1)
	s.store(0, 2, x)
	s.release(0, 3, l1)
	s.acquire(1, 4, l2)
	s.store(1, 5, x) // candidate set initializes to {l2}
	s.release(1, 6, l2)
	s.acquire(0, 1, l1)
	s.store(0, 2, x) // {l2} ∩ {l1} = ∅: report
	s.release(0, 3, l1)
	if got := s.d.Stats().Reports; got != 1 {
		t.Errorf("different-lock accesses reported %d violations, want 1", got)
	}
}

func TestBenignRaceIsReported(t *testing.T) {
	// The Figure 1 shape: lockset, like happens-before, reports the
	// benign unlocked read — the false positive SVD avoids.
	s := newScript(2)
	const l, tot = 10, 100
	s.acquire(0, 1, l)
	s.load(0, 2, tot)
	s.store(0, 3, tot)
	s.release(0, 4, l)
	s.load(1, 7, tot) // unlocked reader
	s.acquire(0, 1, l)
	s.store(0, 3, tot) // write with the reader's empty set intersected
	s.release(0, 4, l)
	if got := s.d.Stats().Reports; got == 0 {
		t.Error("lockset did not report the unlocked reader")
	}
}

func TestReportOncePerBlock(t *testing.T) {
	s := newScript(2)
	const x = 100
	for i := 0; i < 5; i++ {
		s.store(0, 1, x)
		s.store(1, 2, x)
	}
	if got := s.d.Stats().Reports; got != 1 {
		t.Errorf("reports = %d, want 1 (report once per location)", got)
	}
}

func TestSitesAggregation(t *testing.T) {
	s := newScript(2)
	for b := int64(100); b < 103; b++ {
		s.store(0, 1, b)
		s.store(1, 2, b)
	}
	sites := s.d.Sites()
	if len(sites) != 1 || sites[0].PC != 2 || sites[0].Count != 3 {
		t.Errorf("sites = %+v", sites)
	}
	if sites[0].First.String() == "" {
		t.Error("empty report string")
	}
}

// TestEndToEndWorkloads: the lockset detector on the repository's
// workloads — silent on fully locked code, loud on the benign race that
// SVD excuses.
func TestEndToEndWorkloads(t *testing.T) {
	run := func(w *workloads.Workload) *Detector {
		t.Helper()
		m, err := w.NewVM(1)
		if err != nil {
			t.Fatal(err)
		}
		d := New(w.NumThreads, Options{})
		m.Attach(d)
		if _, err := m.Run(1 << 24); err != nil {
			t.Fatal(err)
		}
		return d
	}

	pg := run(workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1}))
	// PgSQL's shared state is consistently locked; only per-terminal
	// private slots and generated input tables are touched unlocked, and
	// those are single-owner.
	if got := pg.Stats().Reports; got != 0 {
		for _, r := range pg.Reports() {
			t.Logf("report: %s", r)
		}
		t.Errorf("lockset reported %d violations on lock-disciplined pgsql", got)
	}

	mt := run(workloads.MySQLTables(workloads.MySQLTablesConfig{Lockers: 3, Ops: 60}))
	if got := mt.Stats().Reports; got == 0 {
		t.Error("lockset missed the benign race on mysql-tables")
	}

	ap := run(workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 32, Buggy: true, Seed: 1}))
	if got := ap.Stats().Reports; got == 0 {
		t.Error("lockset missed the unlocked apache append")
	}
}

func TestStateNames(t *testing.T) {
	for st := stVirgin; st <= stSharedModified; st++ {
		if st.String() == "" {
			t.Errorf("state %d unnamed", st)
		}
	}
}
