package obs

import (
	"bufio"
	"io"
	"os"
	"strconv"
	"sync"
)

// Trace event phases (the Chrome trace-event "ph" field).
const (
	PhaseInstant   = byte('i') // point event
	PhaseComplete  = byte('X') // span with a duration
	PhaseMetadata  = byte('M') // process/thread naming
	PhaseCounter   = byte('C') // counter track
	PhaseFlowStart = byte('s') // flow arrow origin
	PhaseFlowEnd   = byte('f') // flow arrow destination (binds enclosing)
)

// maxArgs bounds per-event arguments so events stay allocation-free on
// the recording path.
const maxArgs = 4

// KV is one trace-event argument. A non-empty Str takes precedence over
// Val; a zero Key terminates the argument list.
type KV struct {
	Key string
	Str string
	Val int64
}

// TraceEvent is one Chrome trace-event record. Detector events carry
// virtual time (1 dynamic instruction = 1 µs) on their sample's process;
// harness phase spans carry wall-clock microseconds on process 0.
type TraceEvent struct {
	Name string
	Cat  string
	Ph   byte
	TS   uint64 // microseconds (virtual or wall, by process — see above)
	Dur  uint64 // microseconds, PhaseComplete only
	ID   uint64 // flow binding id, PhaseFlowStart/PhaseFlowEnd only
	PID  int
	TID  int64
	Args [maxArgs]KV
}

// Trace is a concurrency-safe collector of trace events. Recorders buffer
// privately and append in batches at Flush, so the lock is cold.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (t *Trace) append(evs []TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, evs...)
	t.mu.Unlock()
}

// Len reports the number of collected events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the collected events.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// CountName returns the number of events with the given name — the
// cross-check hook (e.g. trace "violation" events vs detector-reported
// violations).
func (t *Trace) CountName(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.events {
		if t.events[i].Name == name {
			n++
		}
	}
	return n
}

// WriteJSON emits the trace in Chrome trace-event JSON object format
// ({"traceEvents": [...]}), loadable in Perfetto and chrome://tracing.
// Events are written in collection order; viewers sort by timestamp.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for i := range t.events {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeEvent(bw, &t.events[i])
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// WriteFile writes the trace to path as Chrome trace-event JSON.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeEvent(bw *bufio.Writer, e *TraceEvent) {
	bw.WriteString(`{"name":`)
	bw.WriteString(strconv.Quote(e.Name))
	if e.Cat != "" {
		bw.WriteString(`,"cat":`)
		bw.WriteString(strconv.Quote(e.Cat))
	}
	bw.WriteString(`,"ph":"`)
	bw.WriteByte(e.Ph)
	bw.WriteString(`","ts":`)
	bw.WriteString(strconv.FormatUint(e.TS, 10))
	if e.Ph == PhaseComplete {
		bw.WriteString(`,"dur":`)
		bw.WriteString(strconv.FormatUint(e.Dur, 10))
	}
	if e.Ph == PhaseInstant {
		bw.WriteString(`,"s":"t"`) // thread-scoped instant
	}
	if e.Ph == PhaseFlowStart || e.Ph == PhaseFlowEnd {
		bw.WriteString(`,"id":`)
		bw.WriteString(strconv.FormatUint(e.ID, 10))
		if e.Ph == PhaseFlowEnd {
			bw.WriteString(`,"bp":"e"`) // bind to the enclosing slice/instant
		}
	}
	bw.WriteString(`,"pid":`)
	bw.WriteString(strconv.Itoa(e.PID))
	bw.WriteString(`,"tid":`)
	bw.WriteString(strconv.FormatInt(e.TID, 10))
	if e.Args[0].Key != "" {
		bw.WriteString(`,"args":{`)
		for i := range e.Args {
			a := &e.Args[i]
			if a.Key == "" {
				break
			}
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Quote(a.Key))
			bw.WriteByte(':')
			if a.Str != "" {
				bw.WriteString(strconv.Quote(a.Str))
			} else {
				bw.WriteString(strconv.FormatInt(a.Val, 10))
			}
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}
