package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeFile mirrors the trace-event JSON object format for decoding.
type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestTraceWriteJSON(t *testing.T) {
	tr := &Trace{}
	tr.append([]TraceEvent{
		processName(1, "sample \"one\""),
		{
			Name: "violation", Cat: "svd", Ph: PhaseInstant, TS: 42, PID: 1, TID: 3,
			Args: [maxArgs]KV{{Key: "store_pc", Val: 7}, {Key: "block", Val: -5}},
		},
		{
			Name: "simulate", Cat: "phase", Ph: PhaseComplete, TS: 10, Dur: 90, PID: 0, TID: 1,
		},
	})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("decoded %d events, want 3", len(f.TraceEvents))
	}

	meta := f.TraceEvents[0]
	if meta.Ph != "M" || meta.Args["name"] != `sample "one"` {
		t.Errorf("metadata event mangled: %+v", meta)
	}
	inst := f.TraceEvents[1]
	if inst.Ph != "i" || inst.TS != 42 || inst.Args["store_pc"] != float64(7) || inst.Args["block"] != float64(-5) {
		t.Errorf("instant event mangled: %+v", inst)
	}
	span := f.TraceEvents[2]
	if span.Ph != "X" || span.Dur != 90 {
		t.Errorf("complete event mangled: %+v", span)
	}
}

func TestTraceCountName(t *testing.T) {
	tr := &Trace{}
	tr.append([]TraceEvent{
		{Name: "violation"}, {Name: "race"}, {Name: "violation"},
	})
	if got := tr.CountName("violation"); got != 2 {
		t.Fatalf("CountName = %d, want 2", got)
	}
	var nilTrace *Trace
	if nilTrace.CountName("violation") != 0 || nilTrace.Len() != 0 {
		t.Fatal("nil trace should count 0")
	}
}
