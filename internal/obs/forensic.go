package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Forensic reporting: fold witnesses by the static site pair that produced
// them, rank the groups the way an examiner would read them (heaviest
// first), and render the two-thread schedule behind each group's first
// witness. The renderer is detector-agnostic — SVD violations and FRD
// races share the format — and callers fold in extra context (symbol
// names, a posteriori examination findings) through ForensicOptions.

// WitnessGroup is every witness sharing one static site pair: the
// reporting program point and the conflicting program point.
type WitnessGroup struct {
	Detector   string `json:"detector"`
	PC         int64  `json:"pc"`          // reporting access
	ConflictPC int64  `json:"conflict_pc"` // remote conflicting access
	Count      int    `json:"count"`       // dynamic witnesses at this pair

	// First is the group's exemplar: the earliest captured witness.
	First Witness `json:"first"`
}

// GroupWitnesses folds witnesses by (detector, reporting PC, conflicting
// PC), ranked by descending count with PC-order tie-breaks — a stable,
// map-iteration-independent order.
func GroupWitnesses(ws []Witness) []WitnessGroup {
	type key struct {
		det    string
		pc, cp int64
	}
	idx := make(map[key]int)
	var out []WitnessGroup
	for i := range ws {
		w := &ws[i]
		k := key{w.Detector, w.PC, w.Conflict.PC}
		if j, ok := idx[k]; ok {
			out[j].Count++
			continue
		}
		idx[k] = len(out)
		out = append(out, WitnessGroup{
			Detector: w.Detector, PC: w.PC, ConflictPC: w.Conflict.PC,
			Count: 1, First: *w,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		if out[i].ConflictPC != out[j].ConflictPC {
			return out[i].ConflictPC < out[j].ConflictPC
		}
		return out[i].Detector < out[j].Detector
	})
	return out
}

// ForensicOptions parameterize the text report.
type ForensicOptions struct {
	// Loc resolves a PC to a source location ("" falls back to "pc N").
	Loc func(pc int64) string
	// Sym resolves a block id to a data-symbol name ("" falls back to
	// "block N").
	Sym func(block int64) string
	// Annotate returns extra per-group context appended under the group —
	// the hook cmd/svd uses to fold in the matching svd.Examine finding.
	Annotate func(g WitnessGroup) string

	// MaxGroups and MaxWindow bound the report (0 = defaults 10 and 16).
	MaxGroups int
	MaxWindow int
}

func (o ForensicOptions) withDefaults() ForensicOptions {
	if o.Loc == nil {
		o.Loc = func(int64) string { return "" }
	}
	if o.Sym == nil {
		o.Sym = func(int64) string { return "" }
	}
	if o.MaxGroups <= 0 {
		o.MaxGroups = 10
	}
	if o.MaxWindow <= 0 {
		o.MaxWindow = 16
	}
	return o
}

func (o ForensicOptions) loc(pc int64) string {
	if s := o.Loc(pc); s != "" {
		return s
	}
	return fmt.Sprintf("pc %d", pc)
}

func (o ForensicOptions) sym(b int64) string {
	if s := o.Sym(b); s != "" {
		return s
	}
	return fmt.Sprintf("block %d", b)
}

// RenderForensicReport renders witnesses as a ranked human-readable
// report: one section per site pair, the interleaving window of the
// exemplar witness printed as the two-thread schedule that closed the
// cycle.
func RenderForensicReport(ws []Witness, opts ForensicOptions) string {
	opts = opts.withDefaults()
	groups := GroupWitnesses(ws)
	var b strings.Builder
	fmt.Fprintf(&b, "forensic report: %d witnesses at %d site pairs\n", len(ws), len(groups))
	for i, g := range groups {
		if i >= opts.MaxGroups {
			fmt.Fprintf(&b, "... %d more site pairs\n", len(groups)-opts.MaxGroups)
			break
		}
		b.WriteString(renderGroup(g, opts))
		if opts.Annotate != nil {
			if note := opts.Annotate(g); note != "" {
				for _, line := range strings.Split(strings.TrimRight(note, "\n"), "\n") {
					fmt.Fprintf(&b, "    %s\n", line)
				}
			}
		}
	}
	return b.String()
}

func renderGroup(g WitnessGroup, opts ForensicOptions) string {
	w := g.First
	var b strings.Builder
	kind := "serializability violation"
	if g.Detector == "frd" {
		kind = "data race"
	}
	fmt.Fprintf(&b, "[%6d dynamic] %s: %s conflicts with %s on %s\n",
		g.Count, kind, opts.loc(g.PC), opts.loc(g.ConflictPC), opts.sym(w.Block))
	if w.CU != 0 {
		fmt.Fprintf(&b, "    victim CU %d: %d input / %d output blocks", w.CU, len(w.Inputs), len(w.Outputs))
		if len(w.Inputs) > 0 {
			fmt.Fprintf(&b, "; inputs %s", blockList(w.Inputs, opts))
		}
		b.WriteString("\n")
	}
	if w.Stale != nil {
		fmt.Fprintf(&b, "    stale input: cpu %d %s %s at t=%d (%s)\n",
			w.Stale.CPU, rw(w.Stale.Write), opts.sym(w.Stale.Block), w.Stale.Seq, opts.loc(w.Stale.PC))
	}
	fmt.Fprintf(&b, "    schedule (cpu %d vs cpu %d):\n", w.CPU, w.Conflict.CPU)
	window := w.Window
	if len(window) > opts.MaxWindow {
		fmt.Fprintf(&b, "      ... %d earlier accesses elided\n", len(window)-opts.MaxWindow)
		window = window[len(window)-opts.MaxWindow:]
	}
	for i := range window {
		a := &window[i]
		marker := ""
		switch {
		case a.Seq == w.Conflict.Seq && a.CPU == w.Conflict.CPU:
			marker = "  <- conflicting access"
		case a.Seq == w.Seq && a.CPU == w.CPU:
			marker = "  <- reports here"
		}
		fmt.Fprintf(&b, "      t=%-10d cpu %d %-5s %-18s %s%s\n",
			a.Seq, a.CPU, rw(a.Write), opts.sym(a.Block), opts.loc(a.PC), marker)
	}
	return b.String()
}

func rw(write bool) string {
	if write {
		return "store"
	}
	return "load"
}

func blockList(blocks []int64, opts ForensicOptions) string {
	var b strings.Builder
	for i, blk := range blocks {
		if i >= 4 {
			fmt.Fprintf(&b, ", +%d more", len(blocks)-4)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(opts.sym(blk))
	}
	return b.String()
}
