package obs

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is the bucket count: bucket i holds values whose bit length
// is i (bucket 0 is exactly zero, bucket i≥1 covers [2^(i-1), 2^i-1]), so
// 65 buckets span all of uint64.
const histBuckets = 65

// Histogram counts uint64 observations in power-of-two buckets. The
// geometric resolution matches the quantities the detectors produce —
// lifetimes, footprints, page counts, latencies in nanoseconds — whose
// interesting structure is orders of magnitude, not absolute values. The
// zero value is an empty histogram; it is not goroutine-safe (recorders
// are single-goroutine, the Sink merges under its lock).
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// inclusive upper edge of the bucket where the cumulative count crosses
// q·Count, clamped to the observed Max.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.Buckets {
		cum += n
		if cum >= target {
			upper := uint64(0)
			if i > 0 {
				upper = 1<<uint(i) - 1
			}
			if upper > h.Max {
				upper = h.Max
			}
			return upper
		}
	}
	return h.Max
}

// String renders a compact summary for reports.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f min=%d p50≤%d p90≤%d p99≤%d max=%d",
		h.Count, h.Mean(), h.Min, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max)
	return b.String()
}

// Summary is the flattened, serialization-friendly view of a histogram
// used by the expvar snapshot and -json outputs.
type Summary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
}

// Summarize flattens the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count,
		Sum:   h.Sum,
		Min:   h.Min,
		Max:   h.Max,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
