package obs

import "testing"

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	if h.Count != 7 {
		t.Fatalf("Count = %d, want 7", h.Count)
	}
	if h.Sum != 1110 {
		t.Fatalf("Sum = %d, want 1110", h.Sum)
	}
	if h.Min != 0 || h.Max != 1000 {
		t.Fatalf("Min/Max = %d/%d, want 0/1000", h.Min, h.Max)
	}
	// Buckets: 0 -> b0, 1 -> b1, 2,3 -> b2, 4 -> b3, 100 -> b7, 1000 -> b10.
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 7: 1, 10: 1} {
		if h.Buckets[i] != want {
			t.Errorf("Buckets[%d] = %d, want %d", i, h.Buckets[i], want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	// p50 of 1..100 lands in bucket 6 (values 32..63): upper bound 63.
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	// p100 clamps to the observed max.
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	if got := h.Quantile(0.0); got == 0 {
		t.Errorf("p0 should still land in a populated bucket, got %d", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := uint64(1); i <= 10; i++ {
		a.Observe(i)
	}
	for i := uint64(100); i <= 110; i++ {
		b.Observe(i)
	}
	a.Merge(&b)
	if a.Count != 21 {
		t.Fatalf("merged Count = %d, want 21", a.Count)
	}
	if a.Min != 1 || a.Max != 110 {
		t.Fatalf("merged Min/Max = %d/%d, want 1/110", a.Min, a.Max)
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count != 21 {
		t.Fatalf("merging empty changed Count to %d", a.Count)
	}
	empty.Merge(&a)
	if empty.Count != 21 || empty.Min != 1 {
		t.Fatalf("merge into empty: Count=%d Min=%d", empty.Count, empty.Min)
	}
}

func TestHistogramSummarize(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	s := h.Summarize()
	if s.Count != 2 || s.Sum != 30 || s.Mean != 15 {
		t.Fatalf("summary = %+v", s)
	}
}
