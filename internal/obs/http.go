package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishMu sync.Mutex

// PublishExpvar registers the sink's aggregated metrics under name at
// /debug/vars. Re-publishing the same name replaces the reader (expvar
// itself panics on duplicates, so this wraps a stable indirection).
func (s *Sink) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if v := expvar.Get(name); v != nil {
		if h, ok := v.(*sinkVar); ok {
			h.mu.Lock()
			h.sink = s
			h.mu.Unlock()
			return
		}
		// Name taken by an unrelated var; leave it alone.
		return
	}
	expvar.Publish(name, &sinkVar{sink: s})
}

// sinkVar adapts a Sink to expvar.Var with a swappable target.
type sinkVar struct {
	mu   sync.Mutex
	sink *Sink
}

func (v *sinkVar) String() string {
	v.mu.Lock()
	s := v.sink
	v.mu.Unlock()
	f := expvar.Func(func() any { return s.Snapshot() })
	return f.String()
}

// Server is the live observability endpoint: OpenMetrics at /metrics,
// expvar at /debug/vars, profiles at /debug/pprof. Unlike the fire-and-
// forget listener it replaces, it owns its listener and mux, reports the
// bound address (so tests can pass port 0), and shuts down cleanly.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewServeMux builds the endpoint's handler: /metrics serving the sink's
// OpenMetrics exposition under ns, plus /debug/vars and /debug/pprof.
// A nil sink (with no extra writers) serves 404 at /metrics and keeps
// the debug routes.
//
// extra writers append additional metric families to the same /metrics
// page — the ingestion engine's shard and stream telemetry rides here —
// before the single # EOF terminator.
func NewServeMux(sink *Sink, ns string, extra ...func(*OpenMetricsWriter)) *http.ServeMux {
	mux := http.NewServeMux()
	if sink != nil || len(extra) > 0 {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			o := NewOpenMetricsWriter(w, ns)
			if sink != nil {
				sink.WriteFamilies(o)
			}
			for _, f := range extra {
				f(o)
			}
			_ = o.EOF()
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer binds addr (port 0 picks a free port) and serves the sink's
// observability endpoint in a background goroutine until Shutdown.
func StartServer(addr string, sink *Sink, ns string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: NewServeMux(sink, ns)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal Shutdown signal.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:37021".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting connections, waits for in-flight requests up
// to the context deadline, and releases the listener.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
