package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
)

var publishMu sync.Mutex

// PublishExpvar registers the sink's aggregated metrics under name at
// /debug/vars. Re-publishing the same name replaces the reader (expvar
// itself panics on duplicates, so this wraps a stable indirection).
func (s *Sink) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if v := expvar.Get(name); v != nil {
		if h, ok := v.(*sinkVar); ok {
			h.mu.Lock()
			h.sink = s
			h.mu.Unlock()
			return
		}
		// Name taken by an unrelated var; leave it alone.
		return
	}
	expvar.Publish(name, &sinkVar{sink: s})
}

// sinkVar adapts a Sink to expvar.Var with a swappable target.
type sinkVar struct {
	mu   sync.Mutex
	sink *Sink
}

func (v *sinkVar) String() string {
	v.mu.Lock()
	s := v.sink
	v.mu.Unlock()
	f := expvar.Func(func() any { return s.Snapshot() })
	return f.String()
}

// ListenAndServe starts the live observability endpoint on addr (expvar
// at /debug/vars, profiles at /debug/pprof) in a background goroutine and
// returns the bound address — useful when addr has port 0. The server
// runs until the process exits.
func ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, http.DefaultServeMux)
	}()
	return ln.Addr().String(), nil
}
