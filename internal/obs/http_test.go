package obs

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"
)

type httpResp struct {
	header http.Header
	body   string
}

func httpGet(t *testing.T, url string) httpResp {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return httpResp{header: resp.Header, body: string(body)}
}

func shutdownServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestServerGracefulShutdown: port 0 binds a free port, the bound address
// is reported, and after Shutdown the listener is released — a second
// server can take the same address and new connections to the old one
// fail.
func TestServerGracefulShutdown(t *testing.T) {
	sink := NewSink(SinkOptions{})
	srv, err := StartServer("127.0.0.1:0", sink, "svd")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" || addr == "127.0.0.1:0" {
		t.Fatalf("Addr() = %q, want a concrete bound address", addr)
	}
	httpGet(t, "http://"+addr+"/metrics")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("request after shutdown unexpectedly succeeded")
	}
	// The port is free again: a new server can bind it.
	srv2, err := StartServer(addr, sink, "svd")
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	shutdownServer(t, srv2)
}

// TestServerNilSink: the debug routes stay up without a sink; /metrics is
// absent.
func TestServerNilSink(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", nil, "svd")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, srv)
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without sink: status %d, want 404", resp.StatusCode)
	}
	httpGet(t, "http://"+srv.Addr()+"/debug/vars")
}
