package obs

import (
	"log/slog"
	"os"
	"strings"
)

// Structured logging for the harness commands. The commands print their
// results to stdout (tables, reports); operational events — servers
// starting, traces written, shutdown signals — go through log/slog on
// stderr so a service deployment can ship them as structured records.

// InitSlog installs a slog default logger on stderr at the given level
// ("debug", "info", "warn", "error"; unknown strings mean info). With
// jsonFmt the handler emits JSON records, otherwise logfmt-style text.
// It returns the logger for direct use.
func InitSlog(level string, jsonFmt bool) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if jsonFmt {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l
}
