package obs

// Metrics is one recorder's (or, after merging, a whole run set's)
// aggregate telemetry: lifecycle counters and the histograms named by the
// observability design (DESIGN.md §7). All fields merge associatively, so
// aggregation across report.RunMany workers is order-independent.
type Metrics struct {
	Samples uint64 // recorder flushes folded in

	// Lifecycle counters (one per recorded event, even with tracing off).
	CUCreates  uint64
	CUExtends  uint64
	CUMerges   uint64
	CUCuts     uint64
	Violations uint64
	LogTriples uint64
	Races      uint64
	Witnesses  uint64 // violation/race witnesses assembled (flight recorder)

	// Arena counters, folded in at FlushObs.
	ArenaAllocated uint64
	ArenaReused    uint64
	ArenaRecycled  uint64

	// Remote-propagation counters, folded in at FlushObs: notifications
	// dispatched to remote thread instances vs. elided by the block
	// interest index.
	RemoteSent    uint64
	RemoteSkipped uint64

	// CULifetime is the age of retired units in dynamic instructions
	// (observed at merge and cut); CUFootprint their rs+ws size at
	// retirement.
	CULifetime  Histogram
	CUFootprint Histogram

	// Blockstore occupancy, one observation per thread-store at FlushObs:
	// dense pages materialized, slots committed, and blocks recorded.
	StorePages   Histogram
	StoreSlots   Histogram
	StoreTouched Histogram

	// Phase holds wall-clock nanoseconds per harness phase (build-vm,
	// simulate, classify, ...).
	Phase map[string]*Histogram
}

func (m *Metrics) observePhase(name string, ns uint64) {
	if m.Phase == nil {
		m.Phase = make(map[string]*Histogram)
	}
	h := m.Phase[name]
	if h == nil {
		h = &Histogram{}
		m.Phase[name] = h
	}
	h.Observe(ns)
}

// Merge folds o into m.
func (m *Metrics) Merge(o *Metrics) {
	m.Samples += o.Samples
	m.CUCreates += o.CUCreates
	m.CUExtends += o.CUExtends
	m.CUMerges += o.CUMerges
	m.CUCuts += o.CUCuts
	m.Violations += o.Violations
	m.LogTriples += o.LogTriples
	m.Races += o.Races
	m.Witnesses += o.Witnesses
	m.ArenaAllocated += o.ArenaAllocated
	m.ArenaReused += o.ArenaReused
	m.ArenaRecycled += o.ArenaRecycled
	m.RemoteSent += o.RemoteSent
	m.RemoteSkipped += o.RemoteSkipped
	m.CULifetime.Merge(&o.CULifetime)
	m.CUFootprint.Merge(&o.CUFootprint)
	m.StorePages.Merge(&o.StorePages)
	m.StoreSlots.Merge(&o.StoreSlots)
	m.StoreTouched.Merge(&o.StoreTouched)
	for name, h := range o.Phase {
		if m.Phase == nil {
			m.Phase = make(map[string]*Histogram)
		}
		dst := m.Phase[name]
		if dst == nil {
			dst = &Histogram{}
			m.Phase[name] = dst
		}
		dst.Merge(h)
	}
}

// clone deep-copies the metrics (the Phase map is the only shared state).
func (m *Metrics) clone() Metrics {
	out := *m
	if m.Phase != nil {
		out.Phase = make(map[string]*Histogram, len(m.Phase))
		for name, h := range m.Phase {
			cp := *h
			out.Phase[name] = &cp
		}
	}
	return out
}

// ArenaReuseRate returns the fraction of CU creations served from the
// free list, the arena's headline number.
func (m *Metrics) ArenaReuseRate() float64 {
	total := m.ArenaAllocated + m.ArenaReused
	if total == 0 {
		return 0
	}
	return float64(m.ArenaReused) / float64(total)
}

// Snapshot is the serialization-friendly view of aggregated metrics used
// by expvar and the -json outputs.
type Snapshot struct {
	Samples uint64 `json:"samples"`

	Counters map[string]uint64 `json:"counters"`

	ArenaReuseRate float64 `json:"arena_reuse_rate"`

	Histograms map[string]Summary `json:"histograms"`
	PhaseNs    map[string]Summary `json:"phase_ns"`
}

// Snapshot flattens the metrics.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Samples: m.Samples,
		Counters: map[string]uint64{
			"cu_creates":      m.CUCreates,
			"cu_extends":      m.CUExtends,
			"cu_merges":       m.CUMerges,
			"cu_cuts":         m.CUCuts,
			"violations":      m.Violations,
			"log_triples":     m.LogTriples,
			"races":           m.Races,
			"witnesses":       m.Witnesses,
			"arena_allocated": m.ArenaAllocated,
			"arena_reused":    m.ArenaReused,
			"arena_recycled":  m.ArenaRecycled,
			"remote_sent":     m.RemoteSent,
			"remote_skipped":  m.RemoteSkipped,
		},
		ArenaReuseRate: m.ArenaReuseRate(),
		Histograms: map[string]Summary{
			"cu_lifetime_instrs": m.CULifetime.Summarize(),
			"cu_footprint":       m.CUFootprint.Summarize(),
			"store_pages":        m.StorePages.Summarize(),
			"store_slots":        m.StoreSlots.Summarize(),
			"store_touched":      m.StoreTouched.Summarize(),
		},
		PhaseNs: map[string]Summary{},
	}
	for name, h := range m.Phase {
		s.PhaseNs[name] = h.Summarize()
	}
	return s
}

// Snapshot returns the sink's aggregated metrics flattened for
// serialization.
func (s *Sink) Snapshot() Snapshot {
	m := s.Metrics()
	return m.Snapshot()
}
