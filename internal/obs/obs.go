// Package obs is the detectors' telemetry layer: an event tracer, phase
// timing and size histograms, and a live metrics endpoint.
//
// The paper's evaluation (§6–7) is built from aggregate counters, but
// steering the implementation — validating the hot-path rewrite, finding
// the next optimization target — needs event-level visibility: when CUs
// are created, how long they live, how they die, where violations and
// (s, rw, lw) log triples come from, and what the per-phase costs of a
// sample run are. This package provides that visibility at three layers:
//
//   - Trace: a Chrome trace-event JSON recorder (chrome.go). CU lifecycle
//     events, violations, log triples, and races are instant events on a
//     per-sample process timeline whose clock is the detector's dynamic
//     instruction count (1 instruction = 1 µs of virtual time); harness
//     phase spans are duration events on a shared wall-clock process. The
//     output loads in Perfetto and chrome://tracing.
//
//   - Metrics: counters and power-of-two histograms (hist.go, metrics.go)
//     of CU lifetimes, footprint sizes, blockstore page occupancy, arena
//     reuse, and harness phase latencies, merged across parallel sample
//     runners.
//
//   - Endpoint: expvar publication of the aggregated metrics plus
//     net/http/pprof, served live from the harness (http.go).
//
// Cost model: the detectors hold a single *Recorder pointer and guard
// every hook with a nil check, so the instrumented-but-disabled hot path
// differs from the uninstrumented one by predictable not-taken branches
// (the bench-guard CI target holds it within 10% of the recorded
// baseline). With a recorder attached but tracing off, hooks update
// fixed-size counters and histograms only; event buffering happens only
// when the Sink was built with Tracing set.
//
// Concurrency model: a Recorder is single-goroutine (one per sample run,
// created by Sink.NewRecorder); the Sink is the synchronization point,
// folding each recorder's metrics and buffered events in under one lock
// at Flush.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// CutCause labels why a computational unit was cut.
type CutCause uint8

const (
	// CutLoadShared: a load hit a Stored_Shared block (Figure 8
	// transition I).
	CutLoadShared CutCause = iota
	// CutRemoteTrueDep: a remote access hit a True_Dep block (Figure 8
	// transition II).
	CutRemoteTrueDep
)

func (c CutCause) String() string {
	if c == CutLoadShared {
		return "load_shared"
	}
	return "remote_true_dep"
}

// harnessPID is the trace process that carries wall-clock phase spans;
// detector processes (one per recorder) start at 1.
const harnessPID = 0

// SinkOptions configure a Sink.
type SinkOptions struct {
	// Tracing enables event buffering; without it recorders keep only
	// counters and histograms.
	Tracing bool
}

// Sink aggregates telemetry from many single-goroutine Recorders. It is
// safe for concurrent use by the parallel sample runner.
type Sink struct {
	epoch   time.Time
	trace   *Trace
	nextPID atomic.Int64

	mu      sync.Mutex
	metrics Metrics
}

// NewSink builds a Sink.
func NewSink(opts SinkOptions) *Sink {
	s := &Sink{epoch: time.Now()}
	if opts.Tracing {
		s.trace = &Trace{}
		s.trace.append([]TraceEvent{processName(harnessPID, "harness (wall-clock phases)")})
	}
	return s
}

// Tracing reports whether the sink buffers trace events.
func (s *Sink) Tracing() bool { return s != nil && s.trace != nil }

// Trace returns the sink's event trace, or nil when tracing is disabled.
func (s *Sink) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// Metrics returns a deep copy of the aggregated metrics.
func (s *Sink) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics.clone()
}

// NewRecorder allocates a recorder for one sample run. name labels the
// sample's process track in the trace ("" for no label). The recorder
// must be used from a single goroutine and flushed with Flush.
func (s *Sink) NewRecorder(name string) *Recorder {
	if s == nil {
		return nil
	}
	r := &Recorder{
		sink:    s,
		pid:     int(s.nextPID.Add(1)),
		epoch:   s.epoch,
		tracing: s.trace != nil,
	}
	if r.tracing && name != "" {
		r.events = append(r.events, processName(r.pid, name))
	}
	return r
}

// Recorder collects one sample run's telemetry: detector lifecycle events
// keyed to virtual (instruction-count) time, harness phase spans keyed to
// wall-clock time, and the run's histograms. All methods are safe on a
// nil receiver (no-ops), so call sites can thread an optional recorder
// without branching; the detectors still guard their hot-path hooks with
// a nil check to keep the disabled path free of call overhead.
type Recorder struct {
	sink    *Sink
	pid     int
	epoch   time.Time
	tracing bool
	events  []TraceEvent
	m       Metrics
}

// PID returns the recorder's trace process id.
func (r *Recorder) PID() int {
	if r == nil {
		return 0
	}
	return r.pid
}

// Tracing reports whether the recorder buffers trace events.
func (r *Recorder) Tracing() bool { return r != nil && r.tracing }

// CUCreate records a computational-unit allocation at virtual time ts.
func (r *Recorder) CUCreate(ts uint64, cpu int, cu uint64) {
	if r == nil {
		return
	}
	r.m.CUCreates++
	if r.tracing {
		r.emit(TraceEvent{
			Name: "cu_create", Cat: "cu", Ph: PhaseInstant,
			TS: ts, PID: r.pid, TID: int64(cpu),
			Args: [maxArgs]KV{{Key: "cu", Val: int64(cu)}},
		})
	}
}

// CUExtend records block b joining a unit's footprint (write selects the
// ws set; otherwise rs).
func (r *Recorder) CUExtend(ts uint64, cpu int, cu uint64, b int64, write bool) {
	if r == nil {
		return
	}
	r.m.CUExtends++
	if r.tracing {
		var w int64
		if write {
			w = 1
		}
		r.emit(TraceEvent{
			Name: "cu_extend", Cat: "cu", Ph: PhaseInstant,
			TS: ts, PID: r.pid, TID: int64(cpu),
			Args: [maxArgs]KV{
				{Key: "cu", Val: int64(cu)},
				{Key: "block", Val: b},
				{Key: "write", Val: w},
			},
		})
	}
}

// CUMerge records merge_and_update consuming child into root; lifetime is
// the child's age in instructions and footprint its rs+ws size at merge.
func (r *Recorder) CUMerge(ts uint64, cpu int, child, root uint64, lifetime uint64, footprint int) {
	if r == nil {
		return
	}
	r.m.CUMerges++
	r.m.CULifetime.Observe(lifetime)
	r.m.CUFootprint.Observe(uint64(footprint))
	if r.tracing {
		r.emit(TraceEvent{
			Name: "cu_merge", Cat: "cu", Ph: PhaseInstant,
			TS: ts, PID: r.pid, TID: int64(cpu),
			Args: [maxArgs]KV{
				{Key: "cu", Val: int64(child)},
				{Key: "into", Val: int64(root)},
				{Key: "lifetime", Val: int64(lifetime)},
				{Key: "footprint", Val: int64(footprint)},
			},
		})
	}
}

// CUCut records a shared-dependence cut ending a unit.
func (r *Recorder) CUCut(ts uint64, cpu int, cu uint64, cause CutCause, lifetime uint64, footprint int) {
	if r == nil {
		return
	}
	r.m.CUCuts++
	r.m.CULifetime.Observe(lifetime)
	r.m.CUFootprint.Observe(uint64(footprint))
	if r.tracing {
		r.emit(TraceEvent{
			Name: "cu_cut", Cat: "cu", Ph: PhaseInstant,
			TS: ts, PID: r.pid, TID: int64(cpu),
			Args: [maxArgs]KV{
				{Key: "cu", Val: int64(cu)},
				{Key: "cause", Str: cause.String()},
				{Key: "lifetime", Val: int64(lifetime)},
				{Key: "footprint", Val: int64(footprint)},
			},
		})
	}
}

// Violation records one dynamic serializability-violation report. Exactly
// one event is emitted per report the detector counts, so a trace's
// violation events match Stats().Violations one-for-one.
func (r *Recorder) Violation(ts uint64, cpu int, storePC, block int64, cu uint64) {
	if r == nil {
		return
	}
	r.m.Violations++
	if r.tracing {
		r.emit(TraceEvent{
			Name: "violation", Cat: "svd", Ph: PhaseInstant,
			TS: ts, PID: r.pid, TID: int64(cpu),
			Args: [maxArgs]KV{
				{Key: "store_pc", Val: storePC},
				{Key: "block", Val: block},
				{Key: "cu", Val: int64(cu)},
			},
		})
	}
}

// LogTriple records one dynamic (s, rw, lw) a posteriori log occurrence
// (pre-dedup, pre-cap: one event per occurrence the detector counts).
func (r *Recorder) LogTriple(ts uint64, cpu int, readPC, remotePC, localPC int64) {
	if r == nil {
		return
	}
	r.m.LogTriples++
	if r.tracing {
		r.emit(TraceEvent{
			Name: "log_triple", Cat: "svd", Ph: PhaseInstant,
			TS: ts, PID: r.pid, TID: int64(cpu),
			Args: [maxArgs]KV{
				{Key: "read_pc", Val: readPC},
				{Key: "remote_write_pc", Val: remotePC},
				{Key: "local_write_pc", Val: localPC},
			},
		})
	}
}

// Race records one dynamic happens-before race report from the FRD
// baseline.
func (r *Recorder) Race(ts uint64, cpu int, pc, block int64) {
	if r == nil {
		return
	}
	r.m.Races++
	if r.tracing {
		r.emit(TraceEvent{
			Name: "race", Cat: "frd", Ph: PhaseInstant,
			TS: ts, PID: r.pid, TID: int64(cpu),
			Args: [maxArgs]KV{
				{Key: "pc", Val: pc},
				{Key: "block", Val: block},
			},
		})
	}
}

// ObserveStore records one block store's end-of-run occupancy: pages
// materialized, slots committed, and blocks actually recorded. Pass a
// negative touched when the store does not track per-block occupancy
// (the observation is skipped for that histogram).
func (r *Recorder) ObserveStore(id int, pages, slots, touched int) {
	if r == nil {
		return
	}
	r.m.StorePages.Observe(uint64(pages))
	r.m.StoreSlots.Observe(uint64(slots))
	if touched >= 0 {
		r.m.StoreTouched.Observe(uint64(touched))
	}
	_ = id
}

// ObserveArena folds the CU arena's end-of-run counters in.
func (r *Recorder) ObserveArena(allocated, reused, recycled uint64) {
	if r == nil {
		return
	}
	r.m.ArenaAllocated += allocated
	r.m.ArenaReused += reused
	r.m.ArenaRecycled += recycled
}

// ObserveRemote folds a detector's end-of-run remote-propagation counters
// in: notifications dispatched vs. elided by the interest index.
func (r *Recorder) ObserveRemote(sent, skipped uint64) {
	if r == nil {
		return
	}
	r.m.RemoteSent += sent
	r.m.RemoteSkipped += skipped
}

var noopEnd = func() {}

// Span opens a wall-clock harness phase; the returned func closes it,
// feeding the phase histogram and (when tracing) a duration event on the
// harness timeline. Safe and allocation-free on a nil recorder.
func (r *Recorder) Span(name string) func() {
	if r == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		dur := time.Since(start)
		r.m.observePhase(name, uint64(dur.Nanoseconds()))
		if r.tracing {
			r.emit(TraceEvent{
				Name: name, Cat: "phase", Ph: PhaseComplete,
				TS:  uint64(start.Sub(r.epoch).Microseconds()),
				Dur: uint64(dur.Microseconds()),
				PID: harnessPID, TID: int64(r.pid),
				Args: [maxArgs]KV{{Key: "sample", Val: int64(r.pid)}},
			})
		}
	}
}

func (r *Recorder) emit(ev TraceEvent) {
	r.events = append(r.events, ev)
}

// Flush folds the recorder's metrics and buffered events into the sink.
// The recorder is reusable afterwards (its buffers restart empty).
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	r.m.Samples++
	r.sink.mu.Lock()
	r.sink.metrics.Merge(&r.m)
	r.sink.mu.Unlock()
	if r.tracing && len(r.events) > 0 {
		r.sink.trace.append(r.events)
	}
	r.events = nil
	r.m = Metrics{}
}

// processName builds the trace metadata event naming a process track.
func processName(pid int, name string) TraceEvent {
	return TraceEvent{
		Name: "process_name", Ph: PhaseMetadata, PID: pid,
		Args: [maxArgs]KV{{Key: "name", Str: name}},
	}
}

// WriteTraceFile writes the sink's trace as Chrome trace-event JSON.
func (s *Sink) WriteTraceFile(path string) error {
	if s == nil || s.trace == nil {
		return fmt.Errorf("obs: no trace collected (sink built without Tracing)")
	}
	return s.trace.WriteFile(path)
}
