package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

func TestRecorderMetricsAggregation(t *testing.T) {
	sink := NewSink(SinkOptions{})
	if sink.Tracing() {
		t.Fatal("metrics-only sink should not trace")
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := sink.NewRecorder("worker")
			for i := 0; i < 10; i++ {
				r.CUCreate(uint64(i), 0, uint64(i))
				r.CUCut(uint64(i), 0, uint64(i), CutLoadShared, 5, 2)
			}
			r.Violation(1, 0, 10, 20, 1)
			r.LogTriple(2, 1, 1, 2, 3)
			r.Race(3, 0, 4, 5)
			r.ObserveArena(7, 3, 3)
			r.ObserveStore(0, 2, 1024, 100)
			done := r.Span("simulate")
			done()
			r.Flush()
		}()
	}
	wg.Wait()

	m := sink.Metrics()
	if m.Samples != 4 {
		t.Fatalf("Samples = %d, want 4", m.Samples)
	}
	if m.CUCreates != 40 || m.CUCuts != 40 || m.Violations != 4 || m.LogTriples != 4 || m.Races != 4 {
		t.Fatalf("counters wrong: %+v", m)
	}
	if m.CULifetime.Count != 40 || m.CULifetime.Max != 5 {
		t.Fatalf("lifetime histogram wrong: %+v", m.CULifetime)
	}
	if got := m.ArenaReuseRate(); got != 0.3 {
		t.Fatalf("ArenaReuseRate = %v, want 0.3", got)
	}
	if m.Phase["simulate"] == nil || m.Phase["simulate"].Count != 4 {
		t.Fatalf("phase histogram missing: %+v", m.Phase)
	}

	snap := m.Snapshot()
	if snap.Counters["violations"] != 4 || snap.Histograms["store_slots"].Count != 4 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not serializable: %v", err)
	}
}

func TestRecorderTracing(t *testing.T) {
	sink := NewSink(SinkOptions{Tracing: true})
	r := sink.NewRecorder("sample 1")
	r.CUCreate(1, 0, 1)
	r.CUExtend(2, 0, 1, 9, false)
	r.CUMerge(3, 0, 2, 1, 10, 4)
	r.Violation(4, 1, 100, 9, 1)
	done := r.Span("classify")
	done()

	// Nothing reaches the shared trace before Flush (the process_name
	// metadata event is buffered with the rest).
	if n := sink.Trace().Len(); n != 1 { // harness process_name only
		t.Fatalf("trace has %d events before flush, want 1", n)
	}
	r.Flush()
	tr := sink.Trace()
	if tr.CountName("violation") != 1 || tr.CountName("cu_create") != 1 || tr.CountName("classify") != 1 {
		t.Fatalf("missing events after flush: %d total", tr.Len())
	}
	if tr.CountName("process_name") != 2 { // harness + sample
		t.Fatalf("process metadata missing: %d", tr.CountName("process_name"))
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.CUCreate(1, 0, 1)
	r.CUExtend(1, 0, 1, 2, true)
	r.CUMerge(1, 0, 1, 2, 3, 4)
	r.CUCut(1, 0, 1, CutRemoteTrueDep, 3, 4)
	r.Violation(1, 0, 1, 2, 3)
	r.LogTriple(1, 0, 1, 2, 3)
	r.Race(1, 0, 1, 2)
	r.ObserveArena(1, 2, 3)
	r.ObserveStore(0, 1, 2, 3)
	r.Span("x")()
	r.Flush()
	if r.Tracing() || r.PID() != 0 {
		t.Fatal("nil recorder should report inert state")
	}

	var s *Sink
	if s.NewRecorder("x") != nil || s.Tracing() || s.Trace() != nil {
		t.Fatal("nil sink should hand out nil recorders")
	}
}

func TestExpvarEndpoint(t *testing.T) {
	sink := NewSink(SinkOptions{})
	r := sink.NewRecorder("s")
	r.Violation(1, 0, 1, 2, 3)
	r.Flush()
	sink.PublishExpvar("svd_test_metrics")

	// Re-publishing with a fresh sink must swap the target, not panic.
	sink2 := NewSink(SinkOptions{})
	sink2.PublishExpvar("svd_test_metrics")
	sink.PublishExpvar("svd_test_metrics")

	srv, err := StartServer("127.0.0.1:0", sink, "svd")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	addr := srv.Addr()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	raw, ok := vars["svd_test_metrics"]
	if !ok {
		t.Fatalf("svd_test_metrics missing from /debug/vars")
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("published metrics not decodable: %v", err)
	}
	if snap.Counters["violations"] != 1 {
		t.Fatalf("published snapshot = %+v, want 1 violation", snap)
	}

	// pprof should be mounted on the same mux.
	resp2, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint returned %d", resp2.StatusCode)
	}
}
