package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// OpenMetrics/Prometheus text exposition of the aggregated metrics
// (DESIGN.md §9). The expvar endpoint from the first telemetry pass
// published a JSON blob a human can read; this writer speaks the format
// scrapers actually consume: `<ns>_<counter>_total` counters, gauges, and
// the power-of-two histograms as cumulative `_bucket{le="..."}` series
// with `_sum`/`_count`, terminated by `# EOF` per the OpenMetrics spec.

// OpenMetricsContentType is the content type of the exposition,
// negotiable down to the classic Prometheus text format by any scraper.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// OpenMetricsWriter builds one exposition page incrementally: metric
// families in any order, then exactly one EOF. It exists so packages
// outside obs (the ingestion engine's shard and stream telemetry) can
// append their own labeled families to the same scrape the sink's
// detector metrics land on, without duplicating format rules — one
// HELP/TYPE header per family, label-distinguished series under it,
// cumulative le-buckets for histograms.
type OpenMetricsWriter struct {
	ew *errWriter
	ns string
}

// NewOpenMetricsWriter starts an exposition under the namespace prefix
// (every family is named ns_<name>). Call EOF exactly once at the end.
func NewOpenMetricsWriter(w io.Writer, ns string) *OpenMetricsWriter {
	return &OpenMetricsWriter{ew: &errWriter{w: w}, ns: ns}
}

// LabeledValue is one series of a labeled counter or gauge family.
type LabeledValue struct {
	Labels map[string]string
	Value  float64
}

// LabeledHistogram is one series of a labeled histogram family.
type LabeledHistogram struct {
	Labels map[string]string
	Hist   *Histogram
}

// Counter emits a single-series counter family.
func (o *OpenMetricsWriter) Counter(name, help string, v uint64) {
	fmt.Fprintf(o.ew, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s_total %d\n",
		o.ns, name, help, o.ns, name, o.ns, name, v)
}

// Gauge emits a single-series gauge family.
func (o *OpenMetricsWriter) Gauge(name, help string, v float64) {
	fmt.Fprintf(o.ew, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n%s_%s %g\n",
		o.ns, name, help, o.ns, name, o.ns, name, v)
}

// CounterSeries emits one counter family with a label-distinguished
// series per element, in the order given (callers sort for determinism).
func (o *OpenMetricsWriter) CounterSeries(name, help string, series []LabeledValue) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(o.ew, "# HELP %s_%s %s\n# TYPE %s_%s counter\n", o.ns, name, help, o.ns, name)
	for _, s := range series {
		fmt.Fprintf(o.ew, "%s_%s_total%s %g\n", o.ns, name, bareLabels(s.Labels), s.Value)
	}
}

// GaugeSeries emits one gauge family with a label-distinguished series
// per element, in the order given.
func (o *OpenMetricsWriter) GaugeSeries(name, help string, series []LabeledValue) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(o.ew, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n", o.ns, name, help, o.ns, name)
	for _, s := range series {
		fmt.Fprintf(o.ew, "%s_%s%s %g\n", o.ns, name, bareLabels(s.Labels), s.Value)
	}
}

// Histogram emits a single-series histogram family.
func (o *OpenMetricsWriter) Histogram(name, help string, h *Histogram) {
	writeHistogram(o.ew, o.ns, name, help, h, nil)
}

// HistogramSeries emits one histogram family with a label-distinguished
// series per element, in the order given — one shared HELP/TYPE header,
// as the OpenMetrics spec requires.
func (o *OpenMetricsWriter) HistogramSeries(name, help string, series []LabeledHistogram) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(o.ew, "# HELP %s_%s %s\n# TYPE %s_%s histogram\n", o.ns, name, help, o.ns, name)
	for _, s := range series {
		writeHistogramSeries(o.ew, o.ns, name, s.Hist, s.Labels)
	}
}

// EOF terminates the exposition and reports the first write error.
func (o *OpenMetricsWriter) EOF() error {
	fmt.Fprint(o.ew, "# EOF\n")
	return o.ew.err
}

// Err reports the first write error without terminating the exposition.
func (o *OpenMetricsWriter) Err() error { return o.ew.err }

// WriteOpenMetrics writes the metrics in OpenMetrics text format under the
// given namespace prefix (e.g. "svd"). Series order is deterministic.
func (m *Metrics) WriteOpenMetrics(w io.Writer, ns string) error {
	o := NewOpenMetricsWriter(w, ns)
	m.WriteFamilies(o)
	return o.EOF()
}

// WriteFamilies emits the metrics' families onto an in-progress
// exposition, leaving the EOF to the caller — the hook that lets a
// daemon's /metrics page interleave sink metrics with service telemetry.
func (m *Metrics) WriteFamilies(o *OpenMetricsWriter) {
	ew, ns := o.ew, o.ns
	counter := o.Counter
	gauge := o.Gauge

	gauge("samples", "sample runs folded into this sink", float64(m.Samples))
	counter("cu_creates", "computational units allocated", m.CUCreates)
	counter("cu_extends", "blocks joining a unit footprint", m.CUExtends)
	counter("cu_merges", "units consumed by merge_and_update", m.CUMerges)
	counter("cu_cuts", "units ended by shared dependences", m.CUCuts)
	counter("violations", "dynamic serializability violations", m.Violations)
	counter("log_triples", "dynamic (s, rw, lw) log occurrences", m.LogTriples)
	counter("races", "dynamic happens-before races", m.Races)
	counter("witnesses", "violation witnesses assembled by the flight recorder", m.Witnesses)
	counter("arena_allocated", "units carved fresh from slabs", m.ArenaAllocated)
	counter("arena_reused", "units served from the free list", m.ArenaReused)
	counter("arena_recycled", "units returned to the free list", m.ArenaRecycled)
	counter("remote_sent", "remote notifications dispatched", m.RemoteSent)
	counter("remote_skipped", "remote notifications elided by the interest index", m.RemoteSkipped)
	gauge("arena_reuse_rate", "fraction of unit creations served from the free list", m.ArenaReuseRate())

	writeHistogram(ew, ns, "cu_lifetime_instrs", "unit age at retirement in instructions", &m.CULifetime, nil)
	writeHistogram(ew, ns, "cu_footprint_blocks", "unit rs+ws size at retirement", &m.CUFootprint, nil)
	writeHistogram(ew, ns, "store_pages", "block-store pages materialized per thread store", &m.StorePages, nil)
	writeHistogram(ew, ns, "store_slots", "block-store slots committed per thread store", &m.StoreSlots, nil)
	writeHistogram(ew, ns, "store_touched_blocks", "blocks recorded per thread store", &m.StoreTouched, nil)

	// One metric family, one HELP/TYPE header: the per-phase histograms
	// are label-distinguished series under a single phase_ns family.
	if len(m.Phase) > 0 {
		phases := make([]string, 0, len(m.Phase))
		for name := range m.Phase {
			phases = append(phases, name)
		}
		sort.Strings(phases)
		fmt.Fprintf(ew, "# HELP %s_phase_ns harness phase latency in nanoseconds\n# TYPE %s_phase_ns histogram\n", ns, ns)
		for _, name := range phases {
			writeHistogramSeries(ew, ns, "phase_ns", m.Phase[name], map[string]string{"phase": name})
		}
	}
}

// writeHistogram emits one histogram as cumulative power-of-two buckets.
// Only populated boundaries are emitted (plus the mandatory +Inf), keeping
// the exposition proportional to the data instead of 65 buckets per
// series.
func writeHistogram(w io.Writer, ns, name, help string, h *Histogram, labels map[string]string) {
	fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s histogram\n", ns, name, help, ns, name)
	writeHistogramSeries(w, ns, name, h, labels)
}

// writeHistogramSeries emits one histogram's bucket/sum/count series
// without a family header, so label-distinguished series can share one.
func writeHistogramSeries(w io.Writer, ns, name string, h *Histogram, labels map[string]string) {
	base := labelString(labels)
	var cum uint64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		// Bucket i holds values of bit length i: upper bound 2^i - 1
		// (bucket 0 is exactly zero).
		upper := uint64(0)
		if i > 0 {
			upper = 1<<uint(i) - 1
		}
		fmt.Fprintf(w, "%s_%s_bucket{%sle=\"%d\"} %d\n", ns, name, base, upper, cum)
	}
	fmt.Fprintf(w, "%s_%s_bucket{%sle=\"+Inf\"} %d\n", ns, name, base, h.Count)
	fmt.Fprintf(w, "%s_%s_sum%s %d\n", ns, name, bareLabels(labels), h.Sum)
	fmt.Fprintf(w, "%s_%s_count%s %d\n", ns, name, bareLabels(labels), h.Count)
}

// labelString renders labels for use inside a bucket's braces, with a
// trailing comma so `le` can follow ("" for no labels).
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// bareLabels renders a complete label set ("{k="v"}" or "") for the
// _sum/_count series.
func bareLabels(labels map[string]string) string {
	s := labelString(labels)
	if s == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(s, ",") + "}"
}

// errWriter latches the first write error so the exposition loop stays
// unconditional.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

// WriteOpenMetrics writes the sink's aggregated metrics in OpenMetrics
// text format under the namespace prefix.
func (s *Sink) WriteOpenMetrics(w io.Writer, ns string) error {
	m := s.Metrics()
	return m.WriteOpenMetrics(w, ns)
}

// WriteFamilies emits the sink's aggregated families onto an
// in-progress exposition, leaving the EOF to the caller.
func (s *Sink) WriteFamilies(o *OpenMetricsWriter) {
	m := s.Metrics()
	m.WriteFamilies(o)
}
