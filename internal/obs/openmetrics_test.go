package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOpenMetricsExposition(t *testing.T) {
	sink := NewSink(SinkOptions{})
	r := sink.NewRecorder("s")
	r.Violation(1, 0, 10, 20, 1)
	r.Violation(2, 0, 11, 21, 2)
	r.Witness(&Witness{Detector: "svd", Seq: 2, Conflict: WitnessAccess{CPU: 1, Seq: 1}})
	r.ObserveStore(0, 2, 1024, 100)
	r.Span("simulate")()
	r.Span("classify")()
	r.Flush()

	var b strings.Builder
	if err := sink.WriteOpenMetrics(&b, "svd"); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE svd_violations counter",
		"svd_violations_total 2",
		"svd_witnesses_total 1",
		"# TYPE svd_samples gauge",
		"svd_samples 1",
		"# TYPE svd_store_slots histogram",
		`svd_store_slots_bucket{le="+Inf"} 1`,
		"svd_store_slots_sum 1024",
		"svd_store_slots_count 1",
		`svd_phase_ns_bucket{phase="classify",`,
		`svd_phase_ns_bucket{phase="simulate",`,
		`svd_phase_ns_sum{phase="simulate"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("exposition must end with # EOF")
	}
	// Each metric family gets exactly one HELP/TYPE header — label series
	// share it (the OpenMetrics spec forbids repeated families).
	if got := strings.Count(out, "# TYPE svd_phase_ns histogram"); got != 1 {
		t.Errorf("phase_ns family declared %d times, want 1", got)
	}
	if !strings.Contains(OpenMetricsContentType, "openmetrics-text") {
		t.Errorf("content type = %q", OpenMetricsContentType)
	}
}

func TestOpenMetricsHistogramBucketsCumulative(t *testing.T) {
	var m Metrics
	// Values 1 (bucket 1, le=1), 2 and 3 (bucket 2, le=3), 8 (bucket 4,
	// le=15): cumulative counts 1, 3, 4.
	for _, v := range []uint64{1, 2, 3, 8} {
		m.StoreSlots.Observe(v)
	}
	var b strings.Builder
	if err := m.WriteOpenMetrics(&b, "t"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`t_store_slots_bucket{le="1"} 1`,
		`t_store_slots_bucket{le="3"} 3`,
		`t_store_slots_bucket{le="15"} 4`,
		`t_store_slots_bucket{le="+Inf"} 4`,
		"t_store_slots_sum 14",
		"t_store_slots_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramPercentilesKnownDistributions pins the percentile summaries
// on distributions whose quantiles are known exactly: the bucketed
// estimate must be the inclusive upper bound of the bucket holding the
// true quantile, clamped to the observed max.
func TestHistogramPercentilesKnownDistributions(t *testing.T) {
	// Uniform 1..100: p50 -> value 50 -> bucket 6 (32..63) -> 63;
	// p90 -> 90 and p99 -> 99 -> bucket 7 (64..127) -> clamped to 100.
	var u Histogram
	for i := uint64(1); i <= 100; i++ {
		u.Observe(i)
	}
	s := u.Summarize()
	if s.P50 != 63 || s.P90 != 100 || s.P99 != 100 {
		t.Errorf("uniform summary p50/p90/p99 = %d/%d/%d, want 63/100/100", s.P50, s.P90, s.P99)
	}

	// Constant distribution: every percentile is the value itself.
	var c Histogram
	for i := 0; i < 1000; i++ {
		c.Observe(8)
	}
	s = c.Summarize()
	if s.P50 != 8 || s.P90 != 8 || s.P99 != 8 {
		t.Errorf("constant summary p50/p90/p99 = %d/%d/%d, want 8/8/8", s.P50, s.P90, s.P99)
	}

	// Heavy tail: 99 small values (exactly 1) and one huge outlier. p50
	// and p90 stay in the small bucket; p99 still reads small (99% of
	// mass is small); only p100 reaches the outlier.
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(1 << 20)
	s = h.Summarize()
	if s.P50 != 1 || s.P90 != 1 || s.P99 != 1 {
		t.Errorf("tail summary p50/p90/p99 = %d/%d/%d, want 1/1/1", s.P50, s.P90, s.P99)
	}
	if got := h.Quantile(1.0); got != 1<<20 {
		t.Errorf("p100 = %d, want %d", got, 1<<20)
	}

	// The percentiles flow through the snapshot (what /debug/vars and the
	// -json emitters serialize).
	var m Metrics
	for i := uint64(1); i <= 100; i++ {
		m.CULifetime.Observe(i)
	}
	snap := m.Snapshot()
	if got := snap.Histograms["cu_lifetime_instrs"]; got.P50 != 63 || got.P90 != 100 || got.P99 != 100 {
		t.Errorf("snapshot percentiles = %+v", got)
	}
}

func TestServerServesOpenMetrics(t *testing.T) {
	sink := NewSink(SinkOptions{})
	r := sink.NewRecorder("s")
	r.Violation(1, 0, 1, 2, 3)
	r.Flush()
	srv, err := StartServer("127.0.0.1:0", sink, "svd")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, srv)

	resp := httpGet(t, "http://"+srv.Addr()+"/metrics")
	if ct := resp.header.Get("Content-Type"); ct != OpenMetricsContentType {
		t.Errorf("content type = %q, want %q", ct, OpenMetricsContentType)
	}
	if !strings.Contains(resp.body, "svd_violations_total 1") {
		t.Errorf("/metrics missing violations counter:\n%s", resp.body)
	}
	if !strings.HasSuffix(resp.body, "# EOF\n") {
		t.Error("/metrics body must end with # EOF")
	}
}

// TestOpenMetricsWriterLabeledFamilies pins the conformance rules for
// the exported writer the engine's service telemetry rides on: one
// HELP/TYPE header per family regardless of series count, counter
// series named _total, cumulative le-buckets per labeled histogram
// series, deterministic label order, and a single # EOF.
func TestOpenMetricsWriterLabeledFamilies(t *testing.T) {
	var b strings.Builder
	o := NewOpenMetricsWriter(&b, "svdd")

	o.CounterSeries("shard_events", "events per shard", []LabeledValue{
		{Labels: map[string]string{"shard": "0"}, Value: 10},
		{Labels: map[string]string{"shard": "1"}, Value: 20},
	})
	o.GaugeSeries("shard_busy", "busy fraction", []LabeledValue{
		{Labels: map[string]string{"shard": "0"}, Value: 0.25},
		{Labels: map[string]string{"shard": "1"}, Value: 0.5},
	})
	var h0, h1 Histogram
	for _, v := range []uint64{1, 2, 3, 8} {
		h0.Observe(v)
	}
	h1.Observe(100)
	o.HistogramSeries("step_ns", "step latency", []LabeledHistogram{
		{Labels: map[string]string{"shard": "0"}, Hist: &h0},
		{Labels: map[string]string{"shard": "1"}, Hist: &h1},
	})
	// Multi-label series must render keys sorted, values quoted.
	o.CounterSeries("stream_events", "events per stream", []LabeledValue{
		{Labels: map[string]string{"workload": `q"x`, "stream": "3", "shard": "1"}, Value: 7},
	})
	// Empty series emit nothing — no headerless families, no orphan headers.
	o.CounterSeries("never", "empty", nil)
	o.GaugeSeries("never_g", "empty", nil)
	o.HistogramSeries("never_h", "empty", nil)
	if err := o.EOF(); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP svdd_shard_events events per shard\n# TYPE svdd_shard_events counter\n",
		`svdd_shard_events_total{shard="0"} 10`,
		`svdd_shard_events_total{shard="1"} 20`,
		`svdd_shard_busy{shard="0"} 0.25`,
		`svdd_shard_busy{shard="1"} 0.5`,
		"# TYPE svdd_step_ns histogram",
		`svdd_step_ns_bucket{shard="0",le="1"} 1`,
		`svdd_step_ns_bucket{shard="0",le="3"} 3`,
		`svdd_step_ns_bucket{shard="0",le="15"} 4`,
		`svdd_step_ns_bucket{shard="0",le="+Inf"} 4`,
		`svdd_step_ns_sum{shard="0"} 14`,
		`svdd_step_ns_count{shard="0"} 4`,
		`svdd_step_ns_bucket{shard="1",le="+Inf"} 1`,
		`svdd_stream_events_total{shard="1",stream="3",workload="q\"x"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	for _, family := range []string{
		"# TYPE svdd_shard_events counter",
		"# TYPE svdd_shard_busy gauge",
		"# TYPE svdd_step_ns histogram",
	} {
		if got := strings.Count(out, family); got != 1 {
			t.Errorf("family %q declared %d times, want 1", family, got)
		}
	}
	if strings.Contains(out, "never") {
		t.Errorf("empty series leaked a family header:\n%s", out)
	}
	if got := strings.Count(out, "# EOF"); got != 1 || !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition must end with exactly one # EOF (got %d)", got)
	}
}

// TestServeMuxExtraWriters: extra families land on the same /metrics
// page as the sink's, before the shared # EOF; and extras alone (nil
// sink) still serve instead of 404ing.
func TestServeMuxExtraWriters(t *testing.T) {
	sink := NewSink(SinkOptions{})
	r := sink.NewRecorder("s")
	r.Violation(1, 0, 1, 2, 3)
	r.Flush()

	extra := func(o *OpenMetricsWriter) {
		o.CounterSeries("shard_events", "events per shard", []LabeledValue{
			{Labels: map[string]string{"shard": "0"}, Value: 5},
		})
	}

	rr := httptest.NewRecorder()
	NewServeMux(sink, "svd", extra).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	out := rr.Body.String()
	sinkAt := strings.Index(out, "svd_violations_total 1")
	extraAt := strings.Index(out, `svd_shard_events_total{shard="0"} 5`)
	if sinkAt < 0 || extraAt < 0 {
		t.Fatalf("/metrics page missing sink or extra families:\n%s", out)
	}
	if extraAt < sinkAt {
		t.Errorf("extra families precede the sink's")
	}
	if got := strings.Count(out, "# EOF"); got != 1 || !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("combined page must end with exactly one # EOF (got %d)", got)
	}

	rr = httptest.NewRecorder()
	NewServeMux(nil, "svd", extra).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "svd_shard_events_total") {
		t.Errorf("extras without a sink: code %d body:\n%s", rr.Code, rr.Body.String())
	}
}
