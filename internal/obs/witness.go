package obs

// The violation flight recorder (DESIGN.md §9). The detectors report a
// violation as a site pair; what makes the report actionable is a concrete
// witness — the ordered conflicting accesses that close the unserializable
// cycle, the way RegionTrack and AeroDrome print the schedule behind an
// atomicity report. Each detector thread keeps a small bounded ring of its
// recent accesses; when SVD's strict-2PL check fires (or FRD flags a race)
// the detector slices the victim's and the conflicting thread's rings into
// an interleaving window and attaches the victim unit's footprint, the
// local access that created the stale input block, and the conflicting
// remote access. This file defines the witness model; forensic.go renders
// it, and Recorder.Witness injects it into the Chrome trace as a clickable
// flow arrow from the conflicting access to the reporting store.

// WitnessAccess is one dynamic memory access inside a witness: the thread,
// program point, block, direction, virtual timestamp (the VM's global
// sequence number), and — for SVD — the computational unit it extended.
type WitnessAccess struct {
	CPU   int    `json:"cpu"`
	PC    int64  `json:"pc"`
	Block int64  `json:"block"`
	Write bool   `json:"write"`
	Seq   uint64 `json:"seq"`
	CU    uint64 `json:"cu,omitempty"`
}

// Witness is the captured evidence for one dynamic violation (or race):
// enough to print the two-thread schedule that closed the cycle.
type Witness struct {
	// Detector is "svd" (strict-2PL violation) or "frd" (data race).
	Detector string `json:"detector"`

	// The reporting access: for SVD the store that failed the strict-2PL
	// check, for FRD the second access of the racy pair.
	Seq   uint64 `json:"seq"`
	CPU   int    `json:"cpu"`
	PC    int64  `json:"pc"`
	Block int64  `json:"block"`

	// CU identifies the victim computational unit (SVD only).
	CU uint64 `json:"cu,omitempty"`

	// Inputs and Outputs are the victim unit's block footprint at report
	// time: its input (read-before-written) and output (written) blocks.
	// SVD only; both are sorted and capped at MaxFootprintBlocks.
	Inputs  []int64 `json:"inputs,omitempty"`
	Outputs []int64 `json:"outputs,omitempty"`

	// Stale is the victim's local access that pulled the conflicted block
	// into the unit — the read (or write) whose value the remote access
	// made stale. Nil when the detector retained no local history.
	Stale *WitnessAccess `json:"stale_input,omitempty"`

	// Conflict is the remote conflicting access, with its thread and
	// virtual timestamp. For SVD it is the first unconsumed conflicting
	// access on the checked block; for FRD the first access of the pair.
	Conflict WitnessAccess `json:"conflict"`

	// Window is the interleaving slice: the victim's and the conflicting
	// thread's recent accesses, merged in virtual-time order and ending at
	// the reporting access. Bounded by the detectors' ring size.
	Window []WitnessAccess `json:"window,omitempty"`
}

// Clone returns a deep copy: the Inputs, Outputs, Window slices and the
// Stale pointer no longer alias the receiver's. Aggregation paths that
// outlive or run concurrently with the witness's producer — the capped
// run-level digest in report.MergeSamples, the detection server's query
// surface — must clone rather than copy the struct, or a reader of the
// digest shares backing arrays with a detector shard that is still
// draining.
func (w Witness) Clone() Witness {
	c := w
	if w.Inputs != nil {
		c.Inputs = append([]int64(nil), w.Inputs...)
	}
	if w.Outputs != nil {
		c.Outputs = append([]int64(nil), w.Outputs...)
	}
	if w.Window != nil {
		c.Window = append([]WitnessAccess(nil), w.Window...)
	}
	if w.Stale != nil {
		st := *w.Stale
		c.Stale = &st
	}
	return c
}

// MaxFootprintBlocks caps the Inputs/Outputs lists a witness retains; a
// unit's full footprint can reach thousands of blocks and the first blocks
// (sorted) identify the variable just as well.
const MaxFootprintBlocks = 64

// DefaultWitnessRing is the per-thread access-ring capacity when the
// detectors' witness options leave it zero: deep enough to span the
// interleaving window between a conflicting access and the store that
// reports it under any of the Table 2 workloads, small enough (~3 KB per
// thread) to stay cache-resident.
const DefaultWitnessRing = 64

// AccessRing is a bounded ring of one thread's recent memory accesses —
// the flight-recorder buffer behind witness windows. Appends overwrite
// the oldest entry once the ring is full; the zero-size ring is invalid
// (use NewAccessRing).
type AccessRing struct {
	buf []WitnessAccess
	n   int // total appended
}

// NewAccessRing builds a ring holding the last size accesses (size <= 0
// selects DefaultWitnessRing).
func NewAccessRing(size int) *AccessRing {
	if size <= 0 {
		size = DefaultWitnessRing
	}
	return &AccessRing{buf: make([]WitnessAccess, size)}
}

// Add records one access, evicting the oldest when full.
func (r *AccessRing) Add(a WitnessAccess) {
	r.buf[r.n%len(r.buf)] = a
	r.n++
}

// Snapshot appends the retained accesses with Seq <= maxSeq to out in
// oldest-first (virtual-time) order and returns the extended slice.
func (r *AccessRing) Snapshot(maxSeq uint64, out []WitnessAccess) []WitnessAccess {
	if r == nil {
		return out
	}
	kept := r.n
	if kept > len(r.buf) {
		kept = len(r.buf)
	}
	for i := r.n - kept; i < r.n; i++ {
		a := &r.buf[i%len(r.buf)]
		if a.Seq <= maxSeq {
			out = append(out, *a)
		}
	}
	return out
}

// MergeWindow merges two oldest-first access slices into one virtual-time
// ordered window, keeping at most max entries from the end (the accesses
// nearest the report). The inputs must each be sorted by Seq, which ring
// snapshots are by construction.
func MergeWindow(a, b []WitnessAccess, max int) []WitnessAccess {
	out := make([]WitnessAccess, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Seq <= b[j].Seq {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Witness records one assembled violation witness: a counter tick always,
// and — when tracing — an instant event on the victim thread plus a flow
// arrow from the conflicting access to the reporting store, so the
// violation is clickable in Perfetto next to the CU events that produced
// it. Exactly one call per witness the detector counts, so trace "witness"
// events match Stats().Witnesses one-for-one.
func (r *Recorder) Witness(w *Witness) {
	if r == nil {
		return
	}
	r.m.Witnesses++
	if !r.tracing {
		return
	}
	// Flow ids must be unique per (id, cat) across the whole trace; fold
	// the recorder's pid in so parallel samples cannot collide.
	id := uint64(r.pid)<<40 | (w.Seq & (1<<40 - 1))
	r.emit(TraceEvent{
		Name: "witness_flow", Cat: "forensic", Ph: PhaseFlowStart,
		TS: w.Conflict.Seq, ID: id, PID: r.pid, TID: int64(w.Conflict.CPU),
	})
	r.emit(TraceEvent{
		Name: "witness_flow", Cat: "forensic", Ph: PhaseFlowEnd,
		TS: w.Seq, ID: id, PID: r.pid, TID: int64(w.CPU),
	})
	var win int64
	if n := len(w.Window); n > 0 {
		win = int64(n)
	}
	r.emit(TraceEvent{
		Name: "witness", Cat: "forensic", Ph: PhaseInstant,
		TS: w.Seq, PID: r.pid, TID: int64(w.CPU),
		Args: [maxArgs]KV{
			{Key: "detector", Str: w.Detector},
			{Key: "block", Val: w.Block},
			{Key: "conflict_cpu", Val: int64(w.Conflict.CPU)},
			{Key: "window", Val: win},
		},
	})
}
