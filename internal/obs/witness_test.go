package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func acc(cpu int, seq uint64, block int64, write bool) WitnessAccess {
	return WitnessAccess{CPU: cpu, PC: int64(seq) * 10, Block: block, Write: write, Seq: seq}
}

func TestAccessRingWrapsAndSnapshots(t *testing.T) {
	r := NewAccessRing(4)
	for i := uint64(1); i <= 10; i++ {
		r.Add(acc(0, i, int64(i), false))
	}
	got := r.Snapshot(^uint64(0), nil)
	if len(got) != 4 {
		t.Fatalf("snapshot kept %d entries, want 4", len(got))
	}
	for i, a := range got {
		if want := uint64(7 + i); a.Seq != want {
			t.Errorf("entry %d seq = %d, want %d (oldest-first)", i, a.Seq, want)
		}
	}
	// maxSeq filters newer entries out.
	if got := r.Snapshot(8, nil); len(got) != 2 || got[0].Seq != 7 || got[1].Seq != 8 {
		t.Errorf("filtered snapshot = %+v", got)
	}
	// A nil ring snapshots to nothing.
	var nilRing *AccessRing
	if got := nilRing.Snapshot(100, nil); got != nil {
		t.Errorf("nil ring snapshot = %+v", got)
	}
	// Zero size falls back to the default.
	if r := NewAccessRing(0); len(r.buf) != DefaultWitnessRing {
		t.Errorf("default ring size = %d", len(r.buf))
	}
}

func TestMergeWindow(t *testing.T) {
	a := []WitnessAccess{acc(0, 1, 1, false), acc(0, 4, 1, true), acc(0, 6, 1, false)}
	b := []WitnessAccess{acc(1, 2, 2, false), acc(1, 5, 2, true)}
	got := MergeWindow(a, b, 0)
	want := []uint64{1, 2, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Seq != want[i] {
			t.Errorf("entry %d seq = %d, want %d", i, a.Seq, want[i])
		}
	}
	// Capping keeps the tail — the accesses nearest the report.
	capped := MergeWindow(a, b, 2)
	if len(capped) != 2 || capped[0].Seq != 5 || capped[1].Seq != 6 {
		t.Errorf("capped = %+v", capped)
	}
}

func TestWitnessJSONRoundtrip(t *testing.T) {
	stale := acc(0, 3, 7, false)
	w := Witness{
		Detector: "svd", Seq: 9, CPU: 0, PC: 90, Block: 7, CU: 42,
		Inputs: []int64{7, 8}, Outputs: []int64{9},
		Stale:    &stale,
		Conflict: acc(1, 5, 7, true),
		Window:   []WitnessAccess{acc(0, 3, 7, false), acc(1, 5, 7, true), acc(0, 9, 7, true)},
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Witness
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, back) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", back, w)
	}
	// The wire names are part of the contract (tooling parses them).
	for _, field := range []string{`"detector"`, `"stale_input"`, `"conflict"`, `"window"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("marshaled witness missing %s: %s", field, data)
		}
	}
}

func TestGroupWitnessesOrdering(t *testing.T) {
	mk := func(pc, cpc int64) Witness {
		return Witness{Detector: "svd", PC: pc, Conflict: WitnessAccess{PC: cpc}}
	}
	ws := []Witness{mk(10, 20), mk(30, 40), mk(10, 20), mk(10, 20), mk(30, 40), mk(50, 60)}
	groups := GroupWitnesses(ws)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if groups[0].PC != 10 || groups[0].Count != 3 {
		t.Errorf("top group = %+v", groups[0])
	}
	if groups[1].PC != 30 || groups[1].Count != 2 {
		t.Errorf("second group = %+v", groups[1])
	}
	if groups[2].PC != 50 || groups[2].Count != 1 {
		t.Errorf("third group = %+v", groups[2])
	}
}

func TestRenderForensicReport(t *testing.T) {
	stale := acc(1, 3, 7, false)
	ws := []Witness{{
		Detector: "svd", Seq: 9, CPU: 1, PC: 90, Block: 7, CU: 42,
		Inputs: []int64{7}, Stale: &stale,
		Conflict: acc(0, 5, 7, true),
		Window:   []WitnessAccess{acc(1, 3, 7, false), acc(0, 5, 7, true), {CPU: 1, PC: 90, Block: 7, Write: true, Seq: 9}},
	}}
	out := RenderForensicReport(ws, ForensicOptions{
		Sym:      func(b int64) string { return "shared_var" },
		Annotate: func(g WitnessGroup) string { return "examiner: note" },
	})
	for _, want := range []string{
		"1 witnesses at 1 site pairs",
		"serializability violation",
		"shared_var",
		"victim CU 42",
		"stale input",
		"<- conflicting access",
		"<- reports here",
		"examiner: note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// FRD witnesses render as data races.
	frd := []Witness{{Detector: "frd", Seq: 9, CPU: 1, PC: 90, Block: 7, Conflict: acc(0, 5, 7, true)}}
	if out := RenderForensicReport(frd, ForensicOptions{}); !strings.Contains(out, "data race") {
		t.Errorf("frd witness not rendered as data race:\n%s", out)
	}
}

func TestRecorderWitnessTrace(t *testing.T) {
	sink := NewSink(SinkOptions{Tracing: true})
	r := sink.NewRecorder("s")
	w := Witness{
		Detector: "svd", Seq: 9, CPU: 1, PC: 90, Block: 7,
		Conflict: acc(0, 5, 7, true),
		Window:   []WitnessAccess{acc(0, 5, 7, true)},
	}
	r.Witness(&w)
	r.Witness(&w)
	r.Flush()

	if got := sink.Metrics().Witnesses; got != 2 {
		t.Fatalf("Witnesses counter = %d, want 2", got)
	}
	tr := sink.Trace()
	// Exactly one instant event per counted witness.
	if got := tr.CountName("witness"); got != 2 {
		t.Fatalf("witness instants = %d, want 2", got)
	}
	var starts, ends int
	for _, e := range tr.Events() {
		if e.Name != "witness_flow" {
			continue
		}
		switch e.Ph {
		case PhaseFlowStart:
			starts++
			if e.TS != w.Conflict.Seq || e.TID != int64(w.Conflict.CPU) {
				t.Errorf("flow start at ts=%d tid=%d, want conflict ts=%d tid=%d", e.TS, e.TID, w.Conflict.Seq, w.Conflict.CPU)
			}
		case PhaseFlowEnd:
			ends++
			if e.TS != w.Seq || e.TID != int64(w.CPU) {
				t.Errorf("flow end at ts=%d tid=%d, want report ts=%d tid=%d", e.TS, e.TID, w.Seq, w.CPU)
			}
		}
		if e.ID == 0 {
			t.Error("flow event with zero id")
		}
	}
	if starts != 2 || ends != 2 {
		t.Fatalf("flow events: %d starts, %d ends, want 2 each", starts, ends)
	}

	// A nil recorder swallows witnesses safely.
	var nr *Recorder
	nr.Witness(&w)

	// The flow id must appear in the serialized JSON with the binding point.
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"bp":"e"`) {
		t.Error("flow end missing binding point in JSON")
	}
	if !strings.Contains(sb.String(), `"id":`) {
		t.Error("flow events missing id in JSON")
	}
}
