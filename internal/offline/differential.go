package offline

import (
	"fmt"
	"time"

	"repro/internal/frd"
	"repro/internal/isa"
	"repro/internal/svd"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Differential re-detection: the paper's offline methodology running
// over a captured execution. The offline three-pass algorithm is the
// reference (§4.1: exact dependences, shared-variable oracle); each
// online configuration — SVD and FRD across their option axes — replays
// the same events and is scored against it on static sites and on
// wall-clock cost. cmd/svdreplay drives this over journaled production
// traffic, which is exactly the Table 2 accuracy/overhead comparison
// with real captures in place of benchmark reruns.

// Config names one online detector configuration in the sweep.
type Config struct {
	Name     string `json:"name"`
	Detector string `json:"detector"` // "svd" or "frd"

	// Witness turns on flight-recorder witness assembly — the accuracy
	// is unchanged by construction, so the interesting column is cost.
	Witness bool `json:"witness,omitempty"`

	// NoInterestIndex disables the reader-interest index (the remote
	// propagation filter): same verdicts, different overhead.
	NoInterestIndex bool `json:"no_interest_index,omitempty"`
}

// DefaultConfigs is the standard sweep: both detectors, with and
// without witnesses and the interest index.
func DefaultConfigs() []Config {
	return []Config{
		{Name: "svd", Detector: "svd"},
		{Name: "svd+witness", Detector: "svd", Witness: true},
		{Name: "svd-noindex", Detector: "svd", NoInterestIndex: true},
		{Name: "frd", Detector: "frd"},
		{Name: "frd-noindex", Detector: "frd", NoInterestIndex: true},
	}
}

// DiffRow is one configuration's outcome.
type DiffRow struct {
	Config     Config `json:"config"`
	Violations uint64 `json:"violations"` // dynamic reports, pre-cap
	Sites      int    `json:"sites"`      // distinct static PC pairs
	ElapsedNs  int64  `json:"elapsed_ns"`

	// Site agreement against the offline reference, on unordered PC
	// pairs: Shared appear in both, OnlineOnly only here (online
	// approximation error or FRD's different defect class), OfflineOnly
	// only in the reference (missed by this configuration).
	SharedSites  int     `json:"shared_sites"`
	OnlineOnly   int     `json:"online_only_sites"`
	OfflineOnly  int     `json:"offline_only_sites"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// DiffReport is the full differential table for one captured stream.
type DiffReport struct {
	Events            int       `json:"events"`
	Threads           int       `json:"threads"`
	OfflineViolations int       `json:"offline_violations"`
	OfflineSites      int       `json:"offline_sites"`
	OfflineElapsedNs  int64     `json:"offline_elapsed_ns"`
	TraceDropped      uint64    `json:"trace_dropped,omitempty"`
	Rows              []DiffRow `json:"rows"`
}

// pcPair is a canonical unordered static site.
type pcPair struct{ lo, hi int64 }

func canonPair(a, b int64) pcPair {
	if a > b {
		a, b = b, a
	}
	return pcPair{lo: a, hi: b}
}

// Differential records evs, runs the offline reference, then replays
// the same events through every config and scores it. configs nil means
// DefaultConfigs. maxStmts bounds the recorded trace (0 means the
// recorder default); events past the bound are dropped from the offline
// reference but still reach every online config, mirroring how the
// online detectors never buffer the execution.
func Differential(prog *isa.Program, threads int, evs []vm.Event, configs []Config, maxStmts int) (*DiffReport, error) {
	if len(configs) == 0 {
		configs = DefaultConfigs()
	}
	rec, err := trace.NewRecorder(prog, threads, maxStmts)
	if err != nil {
		return nil, err
	}
	for i := range evs {
		rec.Step(&evs[i])
	}
	tr := rec.Trace()
	t0 := time.Now()
	ref := Run(tr, 0)
	offElapsed := time.Since(t0)

	refSites := make(map[pcPair]bool)
	for _, s := range ref.Sites() {
		refSites[canonPair(s[0], s[1])] = true
	}
	rep := &DiffReport{
		Events:            len(evs),
		Threads:           threads,
		OfflineViolations: len(ref.Violations),
		OfflineSites:      len(refSites),
		OfflineElapsedNs:  offElapsed.Nanoseconds(),
		TraceDropped:      tr.Dropped,
	}

	for _, cfg := range configs {
		row := DiffRow{Config: cfg}
		sites := make(map[pcPair]bool)
		t0 := time.Now()
		switch cfg.Detector {
		case "svd":
			d := svd.New(prog, threads, svd.Options{Witness: cfg.Witness, NoInterestIndex: cfg.NoInterestIndex})
			for i := range evs {
				d.Step(&evs[i])
			}
			row.ElapsedNs = time.Since(t0).Nanoseconds()
			row.Violations = d.Stats().Violations
			for _, v := range d.Violations() {
				sites[canonPair(v.StorePC, v.ConflictPC)] = true
			}
		case "frd":
			d := frd.New(prog, threads, frd.Options{Witness: cfg.Witness, NoInterestIndex: cfg.NoInterestIndex})
			for i := range evs {
				d.Step(&evs[i])
			}
			row.ElapsedNs = time.Since(t0).Nanoseconds()
			row.Violations = d.Stats().Races
			for _, s := range d.Sites() {
				sites[canonPair(s.PCLow, s.PCHigh)] = true
			}
		default:
			return nil, fmt.Errorf("offline: unknown detector %q in config %q", cfg.Detector, cfg.Name)
		}
		row.Sites = len(sites)
		for p := range sites {
			if refSites[p] {
				row.SharedSites++
			} else {
				row.OnlineOnly++
			}
		}
		row.OfflineOnly = len(refSites) - row.SharedSites
		if row.ElapsedNs > 0 {
			row.EventsPerSec = float64(len(evs)) / (float64(row.ElapsedNs) / 1e9)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
