// Package offline implements the paper's offline, multi-pass
// serializability violation detector (§4.1, Figures 5 and 6).
//
// The offline algorithm is the reference the online SVD approximates. It
// requires a trace annotated with exact dependence predecessors and a
// shared-variable oracle — which package trace records — and runs in three
// passes:
//
//  1. scan each thread trace and compute computational units, cutting a CU
//     whenever a statement reads a shared variable the unit wrote
//     (Figure 5; implemented in depgraph.OperationalCUs);
//  2. assign the global total order and record where each CU finishes
//     (its maximum sequence id);
//  3. scan the total order and report a strict-2PL violation whenever a
//     statement conflicts with a statement of another thread's CU that has
//     not yet finished (Figure 6).
package offline

import (
	"fmt"
	"sort"

	"repro/internal/depgraph"
	"repro/internal/trace"
)

// Violation is one strict-2PL violation found by pass 3: statement S
// conflicted with statement In while In's computational unit was still
// executing.
type Violation struct {
	S  int32 // index of the intruding statement (other thread)
	In int32 // index of the statement whose CU was broken
	CU int   // id of the broken CU

	SPC, InPC int64 // program counters, for static aggregation
	Addr      int64 // conflicting word
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("offline violation: stmt %d (pc %d) conflicts with stmt %d (pc %d) of open CU %d on word %d",
		v.S, v.SPC, v.In, v.InPC, v.CU, v.Addr)
}

// Result is the offline analysis of one trace.
type Result struct {
	// CUOf maps each statement index to its computational-unit id (pass 1).
	CUOf []int

	// MaxSeq maps each CU id to the sequence id of its last statement
	// (pass 2: where the CU finishes its execution).
	MaxSeq []uint64

	// Violations are the strict-2PL violations (pass 3).
	Violations []Violation
}

// NumCUs returns the number of computational units in the partition.
func (r *Result) NumCUs() int { return len(r.MaxSeq) }

// Sites returns the distinct (SPC, InPC) pairs of the violations, the
// static-report axis, sorted by descending dynamic count.
func (r *Result) Sites() [][2]int64 {
	counts := map[[2]int64]int{}
	for _, v := range r.Violations {
		counts[[2]int64{v.SPC, v.InPC}]++
	}
	out := make([][2]int64, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Run executes the three passes on a recorded trace. maxViolations bounds
// the retained reports (0 means 1<<16).
func Run(tr *trace.Trace, maxViolations int) *Result {
	if maxViolations <= 0 {
		maxViolations = 1 << 16
	}

	// Pass 1 (Figure 5).
	cuOf := depgraph.OperationalCUs(tr)

	// Pass 2 (Figure 6 top): the trace is already in total order; record
	// each CU's last sequence id.
	numCU := 0
	for _, id := range cuOf {
		if id+1 > numCU {
			numCU = id + 1
		}
	}
	maxSeq := make([]uint64, numCU)
	for i := range tr.Stmts {
		if id := cuOf[i]; id >= 0 {
			if s := tr.Stmts[i].Seq; s > maxSeq[id] {
				maxSeq[id] = s
			}
		}
	}

	res := &Result{CUOf: cuOf, MaxSeq: maxSeq}

	// Pass 3 (Figure 6 bottom): scan the total order; keep, per word, the
	// accesses whose CU is still open, and report conflicts from other
	// threads against them. An access is "open" until its CU's max
	// sequence id passes.
	type open struct {
		idx    int32
		cpu    int
		write  bool
		endSeq uint64
	}
	openAcc := map[int64][]open{}
	for i := range tr.Stmts {
		s := &tr.Stmts[i]
		if !s.IsLoad && !s.IsStore {
			continue
		}
		id := cuOf[i]
		v := s.Addr
		list := openAcc[v]

		// Prune finished accesses.
		k := 0
		for _, o := range list {
			if o.endSeq > s.Seq {
				list[k] = o
				k++
			}
		}
		list = list[:k]

		// Conflicts: this access vs open accesses of other threads' CUs.
		for _, o := range list {
			if o.cpu == s.CPU || !(o.write || s.IsStore) {
				continue
			}
			if len(res.Violations) < maxViolations {
				res.Violations = append(res.Violations, Violation{
					S:    int32(i),
					In:   o.idx,
					CU:   cuOf[o.idx],
					SPC:  s.PC,
					InPC: tr.Stmts[o.idx].PC,
					Addr: v,
				})
			}
		}

		if id >= 0 {
			list = append(list, open{
				idx:    int32(i),
				cpu:    s.CPU,
				write:  s.IsStore,
				endSeq: maxSeq[id],
			})
		}
		openAcc[v] = list
	}
	return res
}

// Clean reports whether the offline analysis found no strict-2PL
// violations; by §3.3 a clean trace is serializable.
func (r *Result) Clean() bool { return len(r.Violations) == 0 }
