package offline

import (
	"math/rand"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

func record(t *testing.T, p *isa.Program, cfg vm.Config) *trace.Trace {
	t.Helper()
	m, err := vm.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewRecorder(p, cfg.NumCPUs, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(r)
	if _, err := m.Run(1 << 18); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("program did not halt")
	}
	return r.Trace()
}

func incrementProgram(n int, k int64) *isa.Program {
	code := []isa.Instr{
		isa.LI(8, k),
		isa.Load(9, isa.RegZero, 0),
		isa.Addi(9, 9, 1),
		isa.Store(9, isa.RegZero, 0),
		isa.Addi(8, 8, -1),
		isa.Bnez(8, 1),
		isa.Halt(),
	}
	return &isa.Program{Name: "inc", Code: code, Entries: make([]int64, n)}
}

// TestSerialExecutionClean: a serialized execution has no strict-2PL
// violations.
func TestSerialExecutionClean(t *testing.T) {
	tr := record(t, incrementProgram(3, 5), vm.Config{NumCPUs: 3, Mode: vm.Serialize})
	res := Run(tr, 0)
	if !res.Clean() {
		for _, v := range res.Violations {
			t.Logf("violation: %s", v)
		}
		t.Errorf("serialized execution produced %d offline violations", len(res.Violations))
	}
	if res.NumCUs() == 0 {
		t.Error("no computational units computed")
	}
}

// TestLostUpdateDetectedOffline: an interleaving that loses updates must be
// flagged by pass 3.
func TestLostUpdateDetectedOffline(t *testing.T) {
	p := incrementProgram(2, 30)
	for seed := uint64(0); seed < 50; seed++ {
		m, err := vm.New(p, vm.Config{NumCPUs: 2, Seed: seed, MaxQuantum: 2})
		if err != nil {
			t.Fatal(err)
		}
		r, _ := trace.NewRecorder(p, 2, 0)
		m.Attach(r)
		if _, err := m.Run(1 << 18); err != nil {
			t.Fatal(err)
		}
		if m.Mem(0) == 60 {
			continue
		}
		res := Run(r.Trace(), 0)
		if res.Clean() {
			t.Fatalf("seed %d lost an update; offline detector found nothing", seed)
		}
		if len(res.Sites()) == 0 {
			t.Error("no static sites for the violations")
		}
		v := res.Violations[0]
		if v.String() == "" {
			t.Error("empty violation string")
		}
		return
	}
	t.Skip("no seed produced a lost update")
}

// TestCleanImpliesSerializable is §3.3's soundness property: not violating
// strict 2PL is sufficient for serializability, so every execution the
// offline detector passes must be conflict-serializable.
func TestCleanImpliesSerializable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 80; trial++ {
		p := randProgram(rng, 10+rng.Intn(30), 1+rng.Intn(3))
		tr := record(t, p, vm.Config{NumCPUs: len(p.Entries), Seed: rng.Uint64(), MaxQuantum: 2})
		res := Run(tr, 0)
		if !res.Clean() {
			continue
		}
		checked++
		if !depgraph.ConflictSerializable(tr, res.CUOf) {
			t.Fatalf("trial %d: strict-2PL-clean execution is not serializable", trial)
		}
	}
	if checked == 0 {
		t.Error("property never exercised: no clean executions")
	}
}

// TestMaxSeqRecordsCUEnds: pass 2 records where each CU finishes.
func TestMaxSeqRecordsCUEnds(t *testing.T) {
	p := &isa.Program{Name: "m", Entries: []int64{0}, Code: []isa.Instr{
		isa.LI(8, 1),
		isa.Store(8, isa.RegZero, 5),
		isa.Load(9, isa.RegZero, 5),
		isa.Halt(),
	}}
	tr := record(t, p, vm.Config{NumCPUs: 1})
	res := Run(tr, 0)
	for i := range tr.Stmts {
		id := res.CUOf[i]
		if id < 0 {
			continue
		}
		if tr.Stmts[i].Seq > res.MaxSeq[id] {
			t.Errorf("stmt %d (seq %d) exceeds its CU's max seq %d", i, tr.Stmts[i].Seq, res.MaxSeq[id])
		}
	}
}

// TestViolationCapRespected bounds retained reports.
func TestViolationCapRespected(t *testing.T) {
	p := incrementProgram(4, 40)
	m, err := vm.New(p, vm.Config{NumCPUs: 4, Seed: 3, MaxQuantum: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := trace.NewRecorder(p, 4, 0)
	m.Attach(r)
	if _, err := m.Run(1 << 18); err != nil {
		t.Fatal(err)
	}
	res := Run(r.Trace(), 3)
	if len(res.Violations) > 3 {
		t.Errorf("retained %d violations, cap 3", len(res.Violations))
	}
}

func randProgram(rng *rand.Rand, n int, cpus int) *isa.Program {
	regs := []isa.Reg{8, 9, 10, 11, 12}
	reg := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	code := make([]isa.Instr, n+1)
	for pc := 0; pc < n; pc++ {
		switch rng.Intn(10) {
		case 0, 1:
			code[pc] = isa.LI(reg(), int64(rng.Intn(100)))
		case 2, 3:
			code[pc] = isa.ALU(isa.OpAdd, reg(), reg(), reg())
		case 4, 5:
			code[pc] = isa.Load(reg(), isa.RegZero, int64(rng.Intn(16)))
		case 6, 7:
			code[pc] = isa.Store(reg(), isa.RegZero, int64(rng.Intn(16)))
		case 8:
			target := pc + 1 + rng.Intn(n-pc)
			code[pc] = isa.Beqz(reg(), int64(target))
		default:
			code[pc] = isa.Addi(reg(), reg(), int64(rng.Intn(5)))
		}
	}
	code[n] = isa.Halt()
	return &isa.Program{Name: "rand", Code: code, Entries: make([]int64, cpus)}
}
