package report

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// TestRunBatchedMatchesUnbatched: the default batched event pipeline must
// produce samples bit-identical to per-instruction observer dispatch —
// classifications, logs, and both detectors' raw stats.
func TestRunBatchedMatchesUnbatched(t *testing.T) {
	cases := []*workloads.Workload{
		workloads.ApacheLog(workloads.ApacheConfig{
			Threads: 4, Requests: 48, Buggy: true, Seed: 2,
		}),
		workloads.PgSQLOLTP(workloads.PgSQLConfig{
			Warehouses: 2, Terminals: 4, Txns: 48, Seed: 2,
		}),
	}
	for _, w := range cases {
		t.Run(w.Name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				batched, err := Run(w, seed, Options{})
				if err != nil {
					t.Fatal(err)
				}
				stepped, err := Run(w, seed, Options{Unbatched: true})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(batched, stepped) {
					t.Errorf("seed %d: batched sample diverges:\nbatched %+v\nstepped %+v",
						seed, batched, stepped)
				}
			}
		})
	}
}
