package report

import (
	"reflect"
	"testing"

	"repro/internal/frd"
	"repro/internal/svd"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// The columnar fast path (svd/frd StepColumns) must be bit-identical to
// per-event Step no matter where batch boundaries fall. The chopping
// schemes below are chosen to be adversarial: size 1 makes every batch
// a degenerate run, size 7 lands boundaries mid-run of same-thread
// events, the default cap reproduces production batch geometry, and
// the cpu-switch chop aligns batch boundaries exactly with thread
// switches so each run spans a whole batch. Run under -race this also
// shakes out any accidental sharing through the reused EventBatch.

// chopFixed splits evs into columnar batches of at most n rows.
func chopFixed(evs []vm.Event, n int) []*vm.EventBatch {
	var batches []*vm.EventBatch
	for len(evs) > 0 {
		k := n
		if k > len(evs) {
			k = len(evs)
		}
		eb := vm.NewEventBatch(k)
		for i := 0; i < k; i++ {
			eb.Append(&evs[i])
		}
		batches = append(batches, eb)
		evs = evs[k:]
	}
	return batches
}

// chopAtSwitches starts a new batch whenever the executing thread
// changes (capped at the default batch size), so every batch is one
// same-thread run.
func chopAtSwitches(evs []vm.Event) []*vm.EventBatch {
	var batches []*vm.EventBatch
	var eb *vm.EventBatch
	for i := range evs {
		if eb == nil || eb.Len() >= vm.DefaultBatchCap ||
			(eb.Len() > 0 && int(eb.CPU[eb.Len()-1]) != evs[i].CPU) {
			eb = vm.NewEventBatch(64)
			batches = append(batches, eb)
		}
		eb.Append(&evs[i])
	}
	return batches
}

// detectorOutputs collects everything a finished detector pair exposes.
type detectorOutputs struct {
	Sample       *Sample
	SVDViolation []svd.Violation
	SVDLog       []svd.LogEntry
}

func finish(t *testing.T, w *workloads.Workload, seed uint64, sd *svd.Detector, fd *frd.Detector) detectorOutputs {
	t.Helper()
	sd.FlushObs()
	fd.FlushObs()
	return detectorOutputs{
		Sample:       Classify(w, seed, sd, fd),
		SVDViolation: sd.Violations(),
		SVDLog:       sd.Log(),
	}
}

// TestColumnarDifferential feeds every registry workload through the
// per-event path and through StepColumns under each chopping scheme,
// and requires identical violations, witnesses, sites, logs and stats.
func TestColumnarDifferential(t *testing.T) {
	const scale, seed = 1, 1
	for name, build := range workloads.Registry(scale, seed) {
		w := build()
		t.Run(name, func(t *testing.T) {
			m, err := w.NewVM(seed)
			if err != nil {
				t.Fatal(err)
			}
			var evs []vm.Event
			m.AttachBatch(batchCollector{&evs})
			if _, err := m.Run(1 << 24); err != nil {
				t.Fatal(err)
			}
			if !m.Done() {
				t.Fatalf("%s did not finish", name)
			}

			opts := svd.Options{Witness: true}
			fopts := frd.Options{Witness: true}
			sd := svd.New(w.Prog, w.NumThreads, opts)
			fd := frd.New(w.Prog, w.NumThreads, fopts)
			for i := range evs {
				sd.Step(&evs[i])
				fd.Step(&evs[i])
			}
			want := finish(t, w, seed, sd, fd)

			chops := map[string][]*vm.EventBatch{
				"size1":     chopFixed(evs, 1),
				"size7":     chopFixed(evs, 7),
				"sizecap":   chopFixed(evs, vm.DefaultBatchCap),
				"cpuswitch": chopAtSwitches(evs),
			}
			for chop, batches := range chops {
				csd := svd.New(w.Prog, w.NumThreads, opts)
				cfd := frd.New(w.Prog, w.NumThreads, fopts)
				for _, eb := range batches {
					csd.StepColumns(eb)
					cfd.StepColumns(eb)
				}
				got := finish(t, w, seed, csd, cfd)
				// The producer side can't judge Erroneous here (no VM
				// handed to Classify), so both sides leave it zero.
				if !reflect.DeepEqual(got, want) {
					t.Errorf("chop %s diverges from per-event Step:\ngot  %+v\nwant %+v", chop, got, want)
				}
			}
		})
	}
}

// batchCollector accumulates a private copy of every batch.
type batchCollector struct{ evs *[]vm.Event }

func (c batchCollector) StepBatch(evs []vm.Event) { *c.evs = append(*c.evs, evs...) }
