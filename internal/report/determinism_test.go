package report

import (
	"encoding/json"
	"testing"

	"repro/internal/workloads"
)

// TestRunDeterministic pins the property the detection service's wire
// differential rests on: rebuilding a workload from (name, scale, seed)
// and re-running it reproduces the full sample — witnesses, arena
// counters, everything — bit for bit. Two historical bugs broke this:
// the compiler zeroed frame locals in map order (so two compiles of the
// same source traced different address sequences), and the SVD block
// set iterated spilled footprints in map order (so which block a
// violation named varied run to run).
func TestRunDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 5},
		{"apache-buggy", 2},
		{"mysql-prepared-buggy", 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func() []byte {
				w, err := workloads.ByName(tc.name, 1, tc.seed)
				if err != nil {
					t.Fatal(err)
				}
				s, err := Run(w, tc.seed, Options{Witness: true})
				if err != nil {
					t.Fatal(err)
				}
				js, err := json.Marshal(s)
				if err != nil {
					t.Fatal(err)
				}
				return js
			}
			a, b := run(), run()
			if string(a) != string(b) {
				i := 0
				for i < len(a) && i < len(b) && a[i] == b[i] {
					i++
				}
				lo := max(0, i-60)
				t.Errorf("two runs of %s seed %d diverge at byte %d:\n a: ...%s\n b: ...%s",
					tc.name, tc.seed, i, a[lo:min(len(a), i+80)], b[lo:min(len(b), i+80)])
			}
		})
	}
}
