package report

import (
	"reflect"
	"testing"

	"repro/internal/frd"
	"repro/internal/isa"
	"repro/internal/svd"
	"repro/internal/vm"
)

// Adversarial locality streams. The hot path carries three layers of
// locality caching — the per-thread MRU block cache, the per-thread
// fanout interest cache with its quiet fast path, and the batch-level
// same-block sub-run coalescing in StepColumns — and each is exactly
// the kind of state that can silently diverge from the per-event path
// on a pathological access pattern. The streams here are built to sit
// on those edges: a single block hammered hard (maximal quiet-skip
// coalescing), two blocks ping-ponged (the 2-entry caches' promote
// path on every access), three blocks rotated (constant cache misses),
// addresses straddling a block boundary at 1<<BlockShift ± 1 (adjacent
// addresses, different blocks), and a CAS-heavy mix (the only opcode
// with two memory halves). Each stream runs through per-event Step and
// through StepColumns under run-boundary and sub-run-boundary chops,
// with the Blocks column both matching and mismatching the detectors'
// shift, and every observable output must be bit-identical. Run under
// -race this also shakes out sharing through the reused caches.

// locGen builds synthetic interleaved event streams over a fixed tiny
// program, with flags always consistent with opcodes (the invariant
// the wire decoder enforces).
type locGen struct {
	prog *isa.Program
	evs  []vm.Event
	seq  uint64
}

// Fixed PCs in the synthetic program, one per access shape.
const (
	lpLoad  = 0
	lpStore = 1
	lpCas   = 2
	lpAddi  = 3
)

const lRA = isa.Reg(8)

func newLocGen() *locGen {
	code := []isa.Instr{
		lpLoad:  isa.Load(lRA, isa.RegZero, 0),
		lpStore: isa.Store(lRA, isa.RegZero, 0),
		lpCas:   isa.Cas(lRA, isa.RegZero, lRA, lRA),
		lpAddi:  isa.Addi(lRA, lRA, 1),
		4:       isa.Halt(),
	}
	return &locGen{prog: &isa.Program{Name: "locality", Code: code}}
}

func (g *locGen) emit(ev vm.Event) {
	g.seq++
	ev.Seq = g.seq
	ev.Instr = g.prog.Code[ev.PC]
	g.evs = append(g.evs, ev)
}

func (g *locGen) load(cpu int, addr int64) {
	g.emit(vm.Event{CPU: cpu, PC: lpLoad, Addr: addr, IsLoad: true, Loaded: addr + 1})
}

func (g *locGen) store(cpu int, addr int64) {
	g.emit(vm.Event{CPU: cpu, PC: lpStore, Addr: addr, IsStore: true, Stored: addr + 2})
}

func (g *locGen) cas(cpu int, addr int64, success bool) {
	ev := vm.Event{CPU: cpu, PC: lpCas, Addr: addr, IsLoad: true, Loaded: 0}
	if success {
		ev.IsStore = true
		ev.Stored = 1
	}
	g.emit(ev)
}

func (g *locGen) addi(cpu int) {
	g.emit(vm.Event{CPU: cpu, PC: lpAddi})
}

// singleBlockHammer: long same-thread runs on one address, interleaved
// with bursts from the other threads — the maximal case for quiet-skip
// coalescing, with real conflicts so the fan-out is not always quiet.
func singleBlockHammer(g *locGen) {
	const X = 64
	for round := 0; round < 8; round++ {
		for cpu := 0; cpu < 3; cpu++ {
			g.load(cpu, X)
			for i := 0; i < 16; i++ {
				g.addi(cpu)
				g.load(cpu, X)
			}
			g.store(cpu, X)
		}
	}
}

// twoBlockPingPong: every access alternates between two blocks, so both
// 2-entry caches (MRU block cache, fanout cache) promote on every hit.
func twoBlockPingPong(g *locGen) {
	const A, B = 128, 256
	for round := 0; round < 8; round++ {
		for cpu := 0; cpu < 3; cpu++ {
			for i := 0; i < 8; i++ {
				g.load(cpu, A)
				g.load(cpu, B)
			}
			g.store(cpu, A)
			g.store(cpu, B)
		}
	}
}

// threeBlockRotate: one block more than the caches hold, so every
// access misses both 2-entry caches.
func threeBlockRotate(g *locGen) {
	addrs := []int64{512, 640, 768}
	for round := 0; round < 8; round++ {
		for cpu := 0; cpu < 3; cpu++ {
			for i := 0; i < 6; i++ {
				g.load(cpu, addrs[i%3])
			}
			g.store(cpu, addrs[round%3])
		}
	}
}

// boundaryStraddle walks addresses across a block boundary: with
// BlockShift = 4 the addresses 1<<4 - 1 and 1<<4 are adjacent words in
// different blocks, so a linear walk flips blocks exactly at the edge
// and sub-run segmentation must split there.
func boundaryStraddle(g *locGen) {
	const edge = int64(1) << 4
	for round := 0; round < 6; round++ {
		for cpu := 0; cpu < 3; cpu++ {
			for a := edge - 2; a <= edge+1; a++ {
				g.load(cpu, a)
			}
			g.store(cpu, edge-1)
			g.store(cpu, edge)
		}
	}
}

// casMix: CAS successes and failures on a shared word interleaved with
// plain accesses on a neighbor — CAS is the one opcode whose store half
// is conditional, and FRD flips the block to sync semantics on it.
func casMix(g *locGen) {
	const L, D = 1024, 1025
	for round := 0; round < 8; round++ {
		for cpu := 0; cpu < 3; cpu++ {
			g.cas(cpu, L, cpu == round%3)
			g.load(cpu, D)
			g.addi(cpu)
			g.store(cpu, D)
			g.cas(cpu, L, false)
		}
	}
}

// chopAtBlockSwitch starts a new batch whenever the thread or the
// accessed block changes — batch boundaries land exactly on sub-run
// boundaries, the coalescing loop's own segmentation.
func chopAtBlockSwitch(evs []vm.Event, shift uint) []*vm.EventBatch {
	var batches []*vm.EventBatch
	var eb *vm.EventBatch
	lastCPU, lastBlock := -1, int64(-1)
	for i := range evs {
		ev := &evs[i]
		block := lastBlock
		if ev.IsLoad || ev.IsStore {
			block = ev.Addr >> shift
		}
		if eb == nil || ev.CPU != lastCPU || block != lastBlock {
			eb = vm.NewEventBatch(16)
			batches = append(batches, eb)
		}
		eb.Append(ev)
		lastCPU, lastBlock = ev.CPU, block
	}
	return batches
}

// localityOutputs is every observable a detector pair exposes.
type localityOutputs struct {
	SVDViolations []svd.Violation
	SVDLog        []svd.LogEntry
	SVDSites      []svd.Site
	SVDStats      svd.Stats
	FRDRaces      []frd.Race
	FRDSites      []frd.Site
	FRDStats      frd.Stats
}

func collectLocality(sd *svd.Detector, fd *frd.Detector) localityOutputs {
	return localityOutputs{
		SVDViolations: sd.Violations(),
		SVDLog:        sd.Log(),
		SVDSites:      sd.Sites(),
		SVDStats:      sd.Stats(),
		FRDRaces:      fd.Races(),
		FRDSites:      fd.Sites(),
		FRDStats:      fd.Stats(),
	}
}

func TestLocalityDifferential(t *testing.T) {
	streams := []struct {
		name  string
		shift uint
		build func(*locGen)
	}{
		{"single-block-hammer", 0, singleBlockHammer},
		{"two-block-ping-pong", 0, twoBlockPingPong},
		{"three-block-rotate", 0, threeBlockRotate},
		{"boundary-straddle", 4, boundaryStraddle},
		{"cas-mix", 0, casMix},
	}
	const threads = 3
	for _, s := range streams {
		t.Run(s.name, func(t *testing.T) {
			g := newLocGen()
			s.build(g)
			evs := g.evs
			sopts := svd.Options{BlockShift: s.shift}
			fopts := frd.Options{BlockShift: s.shift}

			sd := svd.New(g.prog, threads, sopts)
			fd := frd.New(g.prog, threads, fopts)
			for i := range evs {
				sd.Step(&evs[i])
				fd.Step(&evs[i])
			}
			want := collectLocality(sd, fd)

			// withShift re-encodes a chop's batches with the Blocks column
			// at the given shift; the detectors must behave identically
			// whether the column matches their shift (consumed) or not
			// (recomputed per row).
			withShift := func(batches []*vm.EventBatch, shift uint) []*vm.EventBatch {
				out := make([]*vm.EventBatch, len(batches))
				for i, eb := range batches {
					ne := vm.NewEventBatch(eb.Len())
					ne.EnableBlocks(shift)
					for r := 0; r < eb.Len(); r++ {
						ne.AppendRaw(eb.Seq[r], eb.CPU[r], eb.PC[r], eb.Flags[r], eb.Addr[r], eb.Loaded[r], eb.Stored[r])
					}
					out[i] = ne
				}
				return out
			}

			chops := map[string][]*vm.EventBatch{
				"size1":       chopFixed(evs, 1),
				"size7":       chopFixed(evs, 7),
				"cpuswitch":   chopAtSwitches(evs),
				"blockswitch": chopAtBlockSwitch(evs, s.shift),
			}
			// The fixed-size chops carry the Blocks column at the
			// detector's shift (the served configuration); the run-aligned
			// chops carry a mismatched shift to force the fallback.
			chops["size7-colmatch"] = withShift(chops["size7"], s.shift)
			chops["blockswitch-colmismatch"] = withShift(chops["blockswitch"], s.shift+1)

			for chop, batches := range chops {
				csd := svd.New(g.prog, threads, sopts)
				cfd := frd.New(g.prog, threads, fopts)
				for _, eb := range batches {
					csd.StepColumns(eb)
					cfd.StepColumns(eb)
				}
				if err := csd.BatchErr(); err != nil {
					t.Fatalf("chop %s: svd poisoned: %v", chop, err)
				}
				if err := cfd.BatchErr(); err != nil {
					t.Fatalf("chop %s: frd poisoned: %v", chop, err)
				}
				got := collectLocality(csd, cfd)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("chop %s diverges from per-event Step:\ngot  %+v\nwant %+v", chop, got, want)
				}
			}
		})
	}
}

// TestStepColumnsPoisonsOnBadPC: a batch with one out-of-range PC must
// be dropped whole — no partial application — and every later batch,
// valid or not, must be rejected, on both detectors.
func TestStepColumnsPoisonsOnBadPC(t *testing.T) {
	g := newLocGen()
	singleBlockHammer(g)
	good := chopFixed(g.evs, 32)

	bad := vm.NewEventBatch(2)
	bad.AppendRaw(1, 0, lpLoad, vm.FlagLoad, 64, 1, 0)
	bad.AppendRaw(2, 0, int64(len(g.prog.Code))+7, vm.FlagLoad, 64, 1, 0)

	sd := svd.New(g.prog, 3, svd.Options{})
	fd := frd.New(g.prog, 3, frd.Options{})
	sd.StepColumns(good[0])
	fd.StepColumns(good[0])
	preS, preF := sd.Stats(), fd.Stats()

	sd.StepColumns(bad)
	fd.StepColumns(bad)
	if sd.BatchErr() == nil || fd.BatchErr() == nil {
		t.Fatalf("bad batch not flagged: svd=%v frd=%v", sd.BatchErr(), fd.BatchErr())
	}
	if got := sd.Stats(); !reflect.DeepEqual(got, preS) {
		t.Errorf("svd partially applied a bad batch:\npre  %+v\npost %+v", preS, got)
	}
	if got := fd.Stats(); !reflect.DeepEqual(got, preF) {
		t.Errorf("frd partially applied a bad batch:\npre  %+v\npost %+v", preF, got)
	}

	sd.StepColumns(good[1])
	fd.StepColumns(good[1])
	if got := sd.Stats(); !reflect.DeepEqual(got, preS) {
		t.Errorf("svd accepted a batch after poisoning")
	}
	if got := fd.Stats(); !reflect.DeepEqual(got, preF) {
		t.Errorf("frd accepted a batch after poisoning")
	}
}
