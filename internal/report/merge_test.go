package report

import (
	"testing"

	"repro/internal/obs"
)

// TestMergeSamplesClonesWitnesses pins the deep copy in MergeSamples: the
// merged digest is handed to concurrent readers (the detection server's
// query surface serves it while shards still publish), so sharing the
// samples' witness backing arrays would be a data race. A struct copy
// aliases Inputs/Outputs/Window/Stale; the merge must clone them.
func TestMergeSamplesClonesWitnesses(t *testing.T) {
	stale := &obs.WitnessAccess{CPU: 1, PC: 10, Block: 7, Seq: 3}
	s := &Sample{
		SVDWitnesses: []obs.Witness{{
			Detector: "svd",
			Inputs:   []int64{1, 2, 3},
			Outputs:  []int64{4},
			Window:   []obs.WitnessAccess{{CPU: 0, PC: 5, Block: 1, Seq: 9}},
			Stale:    stale,
		}},
		FRDWitnesses: []obs.Witness{{
			Detector: "frd",
			Window:   []obs.WitnessAccess{{CPU: 2, PC: 6, Block: 2, Seq: 11}},
		}},
	}
	m := MergeSamples([]*Sample{s})
	if len(m.Witnesses) != 2 {
		t.Fatalf("merged %d witnesses, want 2", len(m.Witnesses))
	}

	m.Witnesses[0].Inputs[0] = -1
	m.Witnesses[0].Outputs[0] = -1
	m.Witnesses[0].Window[0].PC = -1
	m.Witnesses[0].Stale.PC = -1
	m.Witnesses[1].Window[0].PC = -1

	w := s.SVDWitnesses[0]
	if w.Inputs[0] != 1 || w.Outputs[0] != 4 || w.Window[0].PC != 5 || w.Stale.PC != 10 {
		t.Errorf("mutating the merged digest reached the sample's witness: %+v", w)
	}
	if s.FRDWitnesses[0].Window[0].PC != 6 {
		t.Errorf("mutating the merged digest reached the FRD witness")
	}
	if stale.PC != 10 {
		t.Errorf("merged digest aliases the Stale pointer")
	}
}

// TestMergeSamplesCap: the digest stays bounded however many witnesses
// the samples carry.
func TestMergeSamplesCap(t *testing.T) {
	many := make([]obs.Witness, MaxMergedWitnesses)
	s := &Sample{SVDWitnesses: many, FRDWitnesses: many}
	m := MergeSamples([]*Sample{s, s})
	if len(m.Witnesses) != MaxMergedWitnesses {
		t.Errorf("digest holds %d witnesses, want cap %d", len(m.Witnesses), MaxMergedWitnesses)
	}
}
