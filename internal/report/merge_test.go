package report

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// TestMergeSamplesClonesWitnesses pins the deep copy in MergeSamples: the
// merged digest is handed to concurrent readers (the detection server's
// query surface serves it while shards still publish), so sharing the
// samples' witness backing arrays would be a data race. A struct copy
// aliases Inputs/Outputs/Window/Stale; the merge must clone them.
func TestMergeSamplesClonesWitnesses(t *testing.T) {
	stale := &obs.WitnessAccess{CPU: 1, PC: 10, Block: 7, Seq: 3}
	s := &Sample{
		SVDWitnesses: []obs.Witness{{
			Detector: "svd",
			Inputs:   []int64{1, 2, 3},
			Outputs:  []int64{4},
			Window:   []obs.WitnessAccess{{CPU: 0, PC: 5, Block: 1, Seq: 9}},
			Stale:    stale,
		}},
		FRDWitnesses: []obs.Witness{{
			Detector: "frd",
			Window:   []obs.WitnessAccess{{CPU: 2, PC: 6, Block: 2, Seq: 11}},
		}},
	}
	m := MergeSamples([]*Sample{s})
	if len(m.Witnesses) != 2 {
		t.Fatalf("merged %d witnesses, want 2", len(m.Witnesses))
	}

	m.Witnesses[0].Inputs[0] = -1
	m.Witnesses[0].Outputs[0] = -1
	m.Witnesses[0].Window[0].PC = -1
	m.Witnesses[0].Stale.PC = -1
	m.Witnesses[1].Window[0].PC = -1

	w := s.SVDWitnesses[0]
	if w.Inputs[0] != 1 || w.Outputs[0] != 4 || w.Window[0].PC != 5 || w.Stale.PC != 10 {
		t.Errorf("mutating the merged digest reached the sample's witness: %+v", w)
	}
	if s.FRDWitnesses[0].Window[0].PC != 6 {
		t.Errorf("mutating the merged digest reached the FRD witness")
	}
	if stale.PC != 10 {
		t.Errorf("merged digest aliases the Stale pointer")
	}
}

// TestMergeSamplesCap: the digest stays bounded however many witnesses
// the samples carry.
func TestMergeSamplesCap(t *testing.T) {
	many := make([]obs.Witness, MaxMergedWitnesses)
	s := &Sample{SVDWitnesses: many, FRDWitnesses: many}
	m := MergeSamples([]*Sample{s, s})
	if len(m.Witnesses) != MaxMergedWitnesses {
		t.Errorf("digest holds %d witnesses, want cap %d", len(m.Witnesses), MaxMergedWitnesses)
	}
}

// mergeTestSamples runs a small violating workload over several seeds
// with witnesses on, so the merged digest's order-sensitive witness fold
// is actually exercised by the property tests below.
func mergeTestSamples(t *testing.T) []*Sample {
	t.Helper()
	wl := workloads.ApacheLog(workloads.ApacheConfig{
		Threads: 4, Requests: 32, Buggy: true, Seed: 3,
	})
	samples, err := RunMany(wl, Seeds(1, 6), Options{Witness: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var witnesses int
	for _, s := range samples {
		witnesses += len(s.SVDWitnesses) + len(s.FRDWitnesses)
	}
	if witnesses == 0 {
		t.Fatal("no witnesses; the property tests need a violating workload")
	}
	return samples
}

func mergedJSON(t *testing.T, samples []*Sample) string {
	t.Helper()
	js, err := json.Marshal(MergeSamples(samples))
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

// TestMergeSamplesOrderInsensitiveAfterSort is the cluster contract:
// nodes hand the gatherer their samples in arbitrary arrival order, and
// SortSamples + MergeSamples must still produce a byte-identical digest.
// Without the sort the capped witness fold is order-sensitive, so this
// property is exactly what makes a scatter-gather /report comparable
// against a single-process run.
func TestMergeSamplesOrderInsensitiveAfterSort(t *testing.T) {
	samples := mergeTestSamples(t)
	SortSamples(samples)
	want := mergedJSON(t, samples)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		shuffled := append([]*Sample(nil), samples...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		SortSamples(shuffled)
		if got := mergedJSON(t, shuffled); got != want {
			t.Fatalf("trial %d: shuffled+sorted merge differs from sorted merge", trial)
		}
	}
}

// TestMergeSamplesPartitionInvariant: splitting the sample set into
// per-node partials, concatenating the partials, and sorting before the
// merge yields the same digest as merging the whole set directly — the
// gatherer never needs to know how streams were sharded.
func TestMergeSamplesPartitionInvariant(t *testing.T) {
	samples := mergeTestSamples(t)
	SortSamples(samples)
	want := mergedJSON(t, samples)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		nodes := 1 + rng.Intn(4)
		parts := make([][]*Sample, nodes)
		for _, s := range samples {
			n := rng.Intn(nodes)
			parts[n] = append(parts[n], s)
		}
		var gathered []*Sample
		for _, p := range parts {
			gathered = append(gathered, p...)
		}
		SortSamples(gathered)
		if got := mergedJSON(t, gathered); got != want {
			t.Fatalf("trial %d: %d-way partition merge differs from direct merge", trial, nodes)
		}
	}
}

// TestSortSamplesOrdering pins the sort key — (Workload, Seed), nils
// first — and that sorting is a no-op on already-sorted input.
func TestSortSamplesOrdering(t *testing.T) {
	mk := func(w string, seed uint64) *Sample { return &Sample{Workload: w, Seed: seed} }
	samples := []*Sample{mk("b", 2), nil, mk("a", 9), mk("b", 1), nil, mk("a", 3)}
	SortSamples(samples)
	wantOrder := []*Sample{nil, nil, mk("a", 3), mk("a", 9), mk("b", 1), mk("b", 2)}
	for i, s := range samples {
		w := wantOrder[i]
		if (s == nil) != (w == nil) {
			t.Fatalf("pos %d: nil placement wrong", i)
		}
		if s != nil && (s.Workload != w.Workload || s.Seed != w.Seed) {
			t.Errorf("pos %d: got %s/%d want %s/%d", i, s.Workload, s.Seed, w.Workload, w.Seed)
		}
	}
	before := append([]*Sample(nil), samples...)
	SortSamples(samples)
	for i := range samples {
		if samples[i] != before[i] {
			t.Errorf("re-sorting a sorted slice moved element %d", i)
		}
	}
}

// TestMergeSamplesEmpty: empty and all-nil inputs are no-ops — the
// digest of nothing is the zero value, and nil entries never count.
func TestMergeSamplesEmpty(t *testing.T) {
	for _, in := range [][]*Sample{nil, {}, {nil, nil}} {
		m := MergeSamples(in)
		if m.Samples != 0 || len(m.Witnesses) != 0 {
			t.Errorf("merge of %v counted %d samples, %d witnesses", in, m.Samples, len(m.Witnesses))
		}
	}
	SortSamples(nil) // must not panic
	one := &Sample{Workload: "w", Seed: 1}
	m := MergeSamples([]*Sample{nil, one, nil})
	if m.Samples != 1 {
		t.Errorf("nil entries counted: %d samples, want 1", m.Samples)
	}
}
