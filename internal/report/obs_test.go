package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// TestTelemetryAcrossRunMany runs a buggy workload with tracing on across
// parallel workers and checks the acceptance criteria of the telemetry
// layer: trace violation events match the detectors' counters one-for-one,
// the merged stats equal the per-sample sums, and the emitted trace is
// valid Chrome trace-event JSON.
func TestTelemetryAcrossRunMany(t *testing.T) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 16, Buggy: true, Seed: 1})
	sink := obs.NewSink(obs.SinkOptions{Tracing: true})
	samples, err := RunMany(w, Seeds(1, 4), Options{Obs: sink}, 4)
	if err != nil {
		t.Fatal(err)
	}

	var wantViolations, wantRaces, wantLogs uint64
	for _, s := range samples {
		wantViolations += s.SVDStats.Violations
		wantRaces += s.FRDStats.Races
		wantLogs += s.SVDStats.LogEntries
	}
	if wantViolations == 0 {
		t.Fatal("buggy workload produced no violations")
	}

	tr := sink.Trace()
	if got := uint64(tr.CountName("violation")); got != wantViolations {
		t.Errorf("trace has %d violation events, detectors counted %d", got, wantViolations)
	}
	if got := uint64(tr.CountName("race")); got != wantRaces {
		t.Errorf("trace has %d race events, FRD counted %d", got, wantRaces)
	}
	if got := uint64(tr.CountName("log_triple")); got != wantLogs {
		t.Errorf("trace has %d log_triple events, SVD counted %d", got, wantLogs)
	}
	// One process per sample plus the wall-clock harness track, each
	// named via metadata.
	if got := tr.CountName("process_name"); got != len(samples)+1 {
		t.Errorf("got %d process_name events, want %d", got, len(samples)+1)
	}
	// Each sample times its three phases on the harness track.
	for _, phase := range []string{"build-vm", "simulate", "classify"} {
		if got := tr.CountName(phase); got != len(samples) {
			t.Errorf("got %d %q spans, want %d", got, phase, len(samples))
		}
	}

	merged := MergeSamples(samples)
	if merged.Samples != len(samples) {
		t.Errorf("merged %d samples, want %d", merged.Samples, len(samples))
	}
	if merged.SVD.Violations != wantViolations || merged.FRD.Races != wantRaces {
		t.Errorf("MergeSamples diverges from per-sample sums: %+v", merged)
	}

	m := sink.Metrics()
	if m.Samples != uint64(len(samples)) {
		t.Errorf("sink folded %d samples, want %d", m.Samples, len(samples))
	}
	if m.Violations != wantViolations {
		t.Errorf("sink counted %d violations, want %d", m.Violations, wantViolations)
	}
	snap := sink.Snapshot()
	if snap.Samples != uint64(len(samples)) || snap.Counters["violations"] != wantViolations {
		t.Errorf("snapshot diverges: %+v", snap)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != tr.Len() {
		t.Errorf("decoded %d events, trace holds %d", len(doc.TraceEvents), tr.Len())
	}
	violations := 0
	for _, e := range doc.TraceEvents {
		if e.Name == "violation" {
			violations++
			if e.Ph != "i" {
				t.Errorf("violation event has phase %q, want instant", e.Ph)
			}
		}
	}
	if uint64(violations) != wantViolations {
		t.Errorf("decoded %d violation events, want %d", violations, wantViolations)
	}
}

// TestTelemetryDisabledIsInert: a nil sink must leave samples identical to
// an untelemetered run.
func TestTelemetryDisabledIsInert(t *testing.T) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 8, Buggy: true, Seed: 2})
	plain, err := Run(w, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink(obs.SinkOptions{})
	traced, err := Run(w, 3, Options{Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	if plain.SVDStats != traced.SVDStats || plain.FRDStats != traced.FRDStats {
		t.Errorf("telemetry changed detector stats:\nplain:  %+v\ntraced: %+v", plain.SVDStats, traced.SVDStats)
	}
	if sink.Metrics().Samples != 1 {
		t.Errorf("metrics-only sink folded %d samples, want 1", sink.Metrics().Samples)
	}
	if sink.Trace().Len() != 0 {
		t.Errorf("non-tracing sink buffered %d events, want 0", sink.Trace().Len())
	}
}
