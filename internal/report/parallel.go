package report

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/workloads"
)

// RunMany executes one sample per seed, fanning the seeds across a worker
// pool. Every sample is an independent deterministic simulation — the VM,
// both detectors, and the workload's RNG are all derived from the
// workload definition and the seed — so the result slice is bit-identical
// to calling Run sequentially for each seed, in seed order, regardless of
// parallelism or scheduling.
//
// parallelism <= 0 selects GOMAXPROCS workers. The first error (in seed
// order) wins; on error the returned samples are nil.
func RunMany(w *workloads.Workload, seeds []uint64, opts Options, parallelism int) ([]*Sample, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(seeds) {
		parallelism = len(seeds)
	}
	if parallelism <= 1 {
		samples := make([]*Sample, len(seeds))
		for i, seed := range seeds {
			sm, err := Run(w, seed, opts)
			if err != nil {
				return nil, err
			}
			samples[i] = sm
		}
		return samples, nil
	}

	samples := make([]*Sample, len(seeds))
	errs := make([]error, len(seeds))
	var next atomic.Int64
	var wg sync.WaitGroup
	for range parallelism {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seeds) {
					return
				}
				samples[i], errs[i] = Run(w, seeds[i], opts)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return samples, nil
}

// Seeds returns the n consecutive seeds starting at base — the seed
// schedule Table2 and the sweeps use.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}
