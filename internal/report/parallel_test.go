package report

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// TestRunManyMatchesSequential asserts the parallel runner's contract: for
// any parallelism, RunMany over N seeds returns exactly the N samples that
// N sequential Run calls produce, in seed order.
func TestRunManyMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		w    *workloads.Workload
	}{
		{"apache-buggy", workloads.ApacheLog(workloads.ApacheConfig{
			Threads: 4, Requests: 48, Buggy: true, Seed: 3,
		})},
		{"pgsql", workloads.PgSQLOLTP(workloads.PgSQLConfig{
			Warehouses: 2, Terminals: 4, Txns: 64, Seed: 3,
		})},
	}
	seeds := Seeds(11, 6)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := make([]*Sample, len(seeds))
			for i, seed := range seeds {
				sm, err := Run(tc.w, seed, Options{})
				if err != nil {
					t.Fatal(err)
				}
				want[i] = sm
			}
			for _, par := range []int{0, 1, 3, 16} {
				got, err := RunMany(tc.w, seeds, Options{}, par)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if len(got) != len(want) {
					t.Fatalf("parallelism %d: %d samples, want %d", par, len(got), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Errorf("parallelism %d: sample %d (seed %d) diverged:\n got %+v\nwant %+v",
							par, i, seeds[i], got[i], want[i])
					}
				}
			}
		})
	}
}

func TestSeeds(t *testing.T) {
	got := Seeds(5, 3)
	want := []uint64{5, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Seeds(5,3) = %v, want %v", got, want)
	}
}
