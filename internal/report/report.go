// Package report runs workloads under both detectors and classifies their
// output against workload ground truth, reproducing the paper's evaluation
// methodology (§6):
//
//   - dynamic false positives — dynamic report instances not attributable
//     to the injected bug (each one would cost an unnecessary BER
//     rollback; Table 2 normalizes them per million instructions);
//   - static false positives — distinct report sites (program points) not
//     attributable to the bug (each one distracts a programmer);
//   - apparent false negatives — erroneous executions the happens-before
//     baseline catches but SVD does not (counting SVD's a posteriori log,
//     which is how the paper's authors found the MySQL bug);
//   - a posteriori examination entries and computational-unit counts.
package report

import (
	"fmt"
	"sort"

	"repro/internal/frd"
	"repro/internal/obs"
	"repro/internal/svd"
	"repro/internal/workloads"
)

// SiteKey is the composite static identity of one report site. FRD sites
// are canonically ordered PC pairs; SVD sites are single store PCs,
// recorded with PCHigh == -1. Keeping the pair as a struct (rather than
// packing it into one integer) keeps distinct pairs distinct for any PC
// range.
type SiteKey struct {
	PCLow, PCHigh int64
}

func svdSiteKey(storePC int64) SiteKey { return SiteKey{PCLow: storePC, PCHigh: -1} }

// MarshalText renders the key "low/high" so site maps survive JSON
// encoding (struct map keys don't; text-marshaler keys do), keeping whole
// Samples machine-serializable for the -json surfaces.
func (k SiteKey) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("%d/%d", k.PCLow, k.PCHigh)), nil
}

// UnmarshalText parses the "low/high" form MarshalText writes.
func (k *SiteKey) UnmarshalText(b []byte) error {
	_, err := fmt.Sscanf(string(b), "%d/%d", &k.PCLow, &k.PCHigh)
	return err
}

// DetectorResult classifies one detector's output on one sample.
type DetectorResult struct {
	DynamicTrue  uint64 // dynamic reports on bug program points
	DynamicFalse uint64 // dynamic reports elsewhere

	TrueSites  map[SiteKey]bool // static sites on bug PCs
	FalseSites map[SiteKey]bool // static sites elsewhere

	FoundBug bool // any report lands on the bug
}

// Sample is one execution of a workload under both detectors.
type Sample struct {
	Workload     string
	Seed         uint64
	Instructions uint64
	Erroneous    bool // the workload's consistency check failed
	ErrorDetail  string

	SVD DetectorResult
	FRD DetectorResult

	// LogEntries is the number of distinct (s, rw, lw) triples in SVD's a
	// posteriori log; LogFoundBug reports whether any triple touches the
	// bug's program points.
	LogEntries  int
	LogFoundBug bool

	// CUs is the number of computational units SVD inferred.
	CUs uint64

	// SVDStats and FRDStats are the detectors' raw counters for this
	// sample; MergeSamples folds them across a run set. (Before these
	// fields, parallel runs reported per-sample classifications but
	// dropped the underlying detector stats.)
	SVDStats svd.Stats
	FRDStats frd.Stats

	// SVDWitnesses and FRDWitnesses are the flight-recorder witnesses the
	// detectors assembled, paired one-for-one with their retained reports.
	// Nil unless Options.Witness.
	SVDWitnesses []obs.Witness `json:"svd_witnesses,omitempty"`
	FRDWitnesses []obs.Witness `json:"frd_witnesses,omitempty"`
}

// Options tune a sample run.
type Options struct {
	MaxSteps uint64 // instruction budget; zero means 1<<24
	SVD      svd.Options
	FRD      frd.Options

	// Obs collects telemetry across samples (internal/obs). Each Run
	// attaches a per-sample recorder to both detectors and times its
	// phases; RunMany workers all fold into this one sink. Nil disables
	// telemetry entirely.
	Obs *obs.Sink

	// Unbatched attaches the detectors as per-instruction vm.Observers
	// instead of columnar batch consumers. Debug and differential-testing
	// knob; the batched pipeline is output-identical.
	Unbatched bool

	// RowBatched attaches the detectors as row-form vm.BatchObservers
	// (StepBatch over []vm.Event) instead of the default columnar ring.
	// Differential-testing knob, mutually exclusive with Unbatched.
	RowBatched bool

	// Witness enables both detectors' flight recorders and carries their
	// witnesses into each Sample.
	Witness bool
}

// Run executes one sample.
func Run(w *workloads.Workload, seed uint64, opts Options) (*Sample, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1 << 24
	}
	var rec *obs.Recorder
	if opts.Obs != nil {
		rec = opts.Obs.NewRecorder(fmt.Sprintf("%s seed %d", w.Name, seed))
		defer rec.Flush()
		opts.SVD.Recorder = rec
		opts.FRD.Recorder = rec
	}
	if opts.Witness {
		opts.SVD.Witness = true
		opts.FRD.Witness = true
	}

	endBuild := rec.Span("build-vm")
	m, err := w.NewVM(seed)
	endBuild()
	if err != nil {
		return nil, err
	}
	sd := svd.New(w.Prog, w.NumThreads, opts.SVD)
	fd := frd.New(w.Prog, w.NumThreads, opts.FRD)
	switch {
	case opts.Unbatched:
		m.Attach(sd)
		m.Attach(fd)
	case opts.RowBatched:
		m.AttachBatch(sd)
		m.AttachBatch(fd)
	default:
		// Columnar by default: in-process runs exercise exactly the
		// ingest path the detection service runs (StepColumns), so the
		// loopback -verify comparison covers one code path, not two.
		// The ring carries block ids at SVD's shift, computed once at
		// append time; FRD shares them whenever its shift agrees.
		m.SetColumnBlockShift(opts.SVD.BlockShift)
		m.AttachColumns(sd)
		m.AttachColumns(fd)
	}
	endSim := rec.Span("simulate")
	_, err = m.Run(opts.MaxSteps)
	endSim()
	if err != nil {
		return nil, fmt.Errorf("report: %s seed %d: %w", w.Name, seed, err)
	}
	if !m.Done() {
		return nil, fmt.Errorf("report: %s seed %d did not finish within %d steps", w.Name, seed, opts.MaxSteps)
	}
	sd.FlushObs()
	fd.FlushObs()

	endClassify := rec.Span("classify")
	defer endClassify()
	s := Classify(w, seed, sd, fd)
	if w.Check != nil {
		s.Erroneous, s.ErrorDetail = w.Check(m)
	}
	return s, nil
}

// Classify builds the detection report for a pair of finished detectors:
// counters, witnesses, site classification against the workload's ground
// truth, and the a posteriori log scan. It is the tail of Run, split out
// so a detection service that received the event stream over the wire
// (internal/server) produces reports bit-identical to an in-process run
// by construction — only Erroneous/ErrorDetail stay empty there, because
// judging them takes the finished VM, which only the event producer has.
func Classify(w *workloads.Workload, seed uint64, sd *svd.Detector, fd *frd.Detector) *Sample {
	s := &Sample{
		Workload:     w.Name,
		Seed:         seed,
		Instructions: sd.Stats().Instructions,
		CUs:          sd.Stats().CUsLive(),
		SVDStats:     sd.Stats(),
		FRDStats:     fd.Stats(),
		SVDWitnesses: sd.Witnesses(),
		FRDWitnesses: fd.Witnesses(),
	}
	s.SVD = classifySVD(w, sd)
	s.FRD = classifyFRD(w, fd)
	log := sd.Log()
	s.LogEntries = len(log)
	for _, e := range log {
		if w.BugPCs[e.ReadPC] || w.BugPCs[e.RemoteWritePC] || w.BugPCs[e.LocalWritePC] {
			s.LogFoundBug = true
			break
		}
	}
	return s
}

// MergedStats is the field-wise sum of both detectors' counters across a
// sample set — the whole-run view that per-sample rows used to drop.
type MergedStats struct {
	Samples int       `json:"samples"`
	SVD     svd.Stats `json:"svd"`
	FRD     frd.Stats `json:"frd"`

	// Witnesses collects the samples' flight-recorder witnesses (SVD's
	// first, then FRD's, in sample order), capped at MaxMergedWitnesses.
	// The per-sample slices remain complete; this is the run-level digest
	// the JSON emitters attach. Empty unless Options.Witness.
	Witnesses []obs.Witness `json:"witnesses,omitempty"`
}

// MaxMergedWitnesses caps the witnesses MergedStats retains across a run
// set; full per-violation witness lists stay on the individual samples.
const MaxMergedWitnesses = 256

// SortSamples orders samples by (Workload, Seed), nils first. The
// merged digest's witness section is a capped, order-sensitive fold, so
// two nodes that merge the same sample set in different arrival orders
// would disagree byte-for-byte; sorting both sides before MergeSamples
// is what makes a cluster's scatter-gather /report reproducible and
// comparable against a single-process run.
func SortSamples(samples []*Sample) {
	sort.SliceStable(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a == nil || b == nil {
			return a == nil && b != nil
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Seed < b.Seed
	})
}

// MergeSamples folds every sample's detector counters together. Nil
// samples (skipped runs) are ignored. Witnesses enter the capped digest
// as deep copies: a Witness struct copy would share its Inputs/Outputs/
// Window backing arrays with the sample, and the digest is exactly the
// view handed to concurrent readers (the detection server's query path
// serves it while shards are still draining), so aliasing here was a
// read/write race waiting for its first -race run.
func MergeSamples(samples []*Sample) MergedStats {
	var m MergedStats
	for _, s := range samples {
		if s == nil {
			continue
		}
		m.Samples++
		m.SVD.Add(s.SVDStats)
		m.FRD.Add(s.FRDStats)
		for _, w := range s.SVDWitnesses {
			if len(m.Witnesses) >= MaxMergedWitnesses {
				break
			}
			m.Witnesses = append(m.Witnesses, w.Clone())
		}
		for _, w := range s.FRDWitnesses {
			if len(m.Witnesses) >= MaxMergedWitnesses {
				break
			}
			m.Witnesses = append(m.Witnesses, w.Clone())
		}
	}
	return m
}

func classifySVD(w *workloads.Workload, sd *svd.Detector) DetectorResult {
	sites := sd.Sites()
	r := DetectorResult{
		TrueSites:  make(map[SiteKey]bool, len(sites)),
		FalseSites: make(map[SiteKey]bool, len(sites)),
	}
	for _, site := range sites {
		hit := w.BugPCs[site.StorePC] || w.BugPCs[site.First.ConflictPC]
		if hit {
			r.TrueSites[svdSiteKey(site.StorePC)] = true
			r.DynamicTrue += site.Count
			r.FoundBug = true
		} else {
			r.FalseSites[svdSiteKey(site.StorePC)] = true
			r.DynamicFalse += site.Count
		}
	}
	return r
}

func classifyFRD(w *workloads.Workload, fd *frd.Detector) DetectorResult {
	sites := fd.Sites()
	r := DetectorResult{
		TrueSites:  make(map[SiteKey]bool, len(sites)),
		FalseSites: make(map[SiteKey]bool, len(sites)),
	}
	for _, site := range sites {
		hit := w.BugPCs[site.PCLow] || w.BugPCs[site.PCHigh]
		key := SiteKey(site.Key())
		if hit {
			r.TrueSites[key] = true
			r.DynamicTrue += site.Count
			r.FoundBug = true
		} else {
			r.FalseSites[key] = true
			r.DynamicFalse += site.Count
		}
	}
	return r
}

// Row is one Table 2 row: a workload aggregated over samples.
type Row struct {
	Workload string
	Samples  int
	MInsts   float64 // total million instructions across samples

	ErroneousSamples int
	// ApparentFNs counts samples where FRD found the bug but SVD —
	// including its a posteriori log — did not (§6's apparent false
	// negatives).
	ApparentFNs int

	SVDFoundBug bool // online detection on any sample
	LogFoundBug bool // a posteriori log hit on any sample

	SVDStaticFP   int // distinct FP sites across all samples
	FRDStaticFP   int
	SVDStaticTrue int
	FRDStaticTrue int

	SVDDynFP uint64 // total dynamic FP instances
	FRDDynFP uint64

	APosteriori int // distinct log triples (max across samples)

	CUs uint64 // total computational units
}

// SVDDynFPPerM returns SVD dynamic false positives per million
// instructions.
func (r Row) SVDDynFPPerM() float64 { return perM(r.SVDDynFP, r.MInsts) }

// FRDDynFPPerM returns FRD dynamic false positives per million
// instructions.
func (r Row) FRDDynFPPerM() float64 { return perM(r.FRDDynFP, r.MInsts) }

// CUsPerM returns computational units per million instructions.
func (r Row) CUsPerM() float64 { return perM(r.CUs, r.MInsts) }

func perM(n uint64, mInsts float64) float64 {
	if mInsts == 0 {
		return 0
	}
	return float64(n) / mInsts
}

// Aggregate folds samples of one workload into a row.
func Aggregate(name string, samples []*Sample) Row {
	row := Row{Workload: name, Samples: len(samples)}
	svdFP := map[SiteKey]bool{}
	frdFP := map[SiteKey]bool{}
	svdTrue := map[SiteKey]bool{}
	frdTrue := map[SiteKey]bool{}
	for _, s := range samples {
		row.MInsts += float64(s.Instructions) / 1e6
		if s.Erroneous {
			row.ErroneousSamples++
		}
		svdFound := s.SVD.FoundBug || s.LogFoundBug
		if s.FRD.FoundBug && !svdFound {
			row.ApparentFNs++
		}
		row.SVDFoundBug = row.SVDFoundBug || s.SVD.FoundBug
		row.LogFoundBug = row.LogFoundBug || s.LogFoundBug
		for pc := range s.SVD.FalseSites {
			svdFP[pc] = true
		}
		for pc := range s.SVD.TrueSites {
			svdTrue[pc] = true
		}
		for pc := range s.FRD.FalseSites {
			frdFP[pc] = true
		}
		for pc := range s.FRD.TrueSites {
			frdTrue[pc] = true
		}
		row.SVDDynFP += s.SVD.DynamicFalse
		row.FRDDynFP += s.FRD.DynamicFalse
		if s.LogEntries > row.APosteriori {
			row.APosteriori = s.LogEntries
		}
		row.CUs += s.CUs
	}
	row.SVDStaticFP = len(svdFP)
	row.FRDStaticFP = len(frdFP)
	row.SVDStaticTrue = len(svdTrue)
	row.FRDStaticTrue = len(frdTrue)
	return row
}
