package report

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestRunClassifiesApacheBuggy(t *testing.T) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 48, Buggy: true, Seed: 1})
	found := false
	for seed := uint64(0); seed < 6 && !found; seed++ {
		s, err := Run(w, seed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Erroneous && s.SVD.FoundBug {
			found = true
			if s.SVD.DynamicTrue == 0 {
				t.Error("found bug with zero dynamic true reports")
			}
			if len(s.SVD.TrueSites) == 0 {
				t.Error("found bug with zero true sites")
			}
			if !s.FRD.FoundBug {
				t.Error("FRD missed the bug SVD found")
			}
		}
	}
	if !found {
		t.Fatal("no sample manifested and detected the apache bug")
	}
}

func TestRunClassifiesBenignWorkload(t *testing.T) {
	w := workloads.MySQLTables(workloads.MySQLTablesConfig{Lockers: 3, Ops: 60})
	s, err := Run(w, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Erroneous {
		t.Fatalf("benign workload erroneous: %s", s.ErrorDetail)
	}
	if s.SVD.DynamicTrue != 0 || s.FRD.DynamicTrue != 0 {
		t.Error("bug-free workload produced 'true' detections")
	}
	if s.SVD.DynamicFalse != 0 {
		t.Errorf("SVD has %d dynamic FPs on the benign race", s.SVD.DynamicFalse)
	}
	if s.FRD.DynamicFalse == 0 {
		t.Error("FRD has no FPs on the benign race; the Figure 1 contrast is gone")
	}
}

func TestAggregateApparentFNs(t *testing.T) {
	samples := []*Sample{
		{
			Workload:     "x",
			Instructions: 1e6,
			Erroneous:    true,
			SVD:          DetectorResult{FoundBug: false},
			FRD:          DetectorResult{FoundBug: true},
		},
		{
			Workload:     "x",
			Instructions: 1e6,
			Erroneous:    true,
			SVD:          DetectorResult{FoundBug: false},
			FRD:          DetectorResult{FoundBug: true},
			LogFoundBug:  true, // a posteriori finding cancels the FN
		},
	}
	row := Aggregate("x", samples)
	if row.ApparentFNs != 1 {
		t.Errorf("apparent FNs = %d, want 1", row.ApparentFNs)
	}
	if row.MInsts != 2 {
		t.Errorf("MInsts = %f, want 2", row.MInsts)
	}
	if !row.LogFoundBug || row.SVDFoundBug {
		t.Errorf("found-bug flags wrong: %+v", row)
	}
}

func TestAggregateStaticSitesAreUnioned(t *testing.T) {
	samples := []*Sample{
		{Workload: "x", Instructions: 1000, SVD: DetectorResult{
			FalseSites: map[SiteKey]bool{svdSiteKey(10): true, svdSiteKey(20): true}, DynamicFalse: 5,
		}},
		{Workload: "x", Instructions: 1000, SVD: DetectorResult{
			FalseSites: map[SiteKey]bool{svdSiteKey(20): true, svdSiteKey(30): true}, DynamicFalse: 7,
		}},
	}
	row := Aggregate("x", samples)
	if row.SVDStaticFP != 3 {
		t.Errorf("static FPs = %d, want 3 (union)", row.SVDStaticFP)
	}
	if row.SVDDynFP != 12 {
		t.Errorf("dynamic FPs = %d, want 12 (sum)", row.SVDDynFP)
	}
}

func TestRates(t *testing.T) {
	r := Row{SVDDynFP: 50, FRDDynFP: 100, CUs: 2000, MInsts: 2}
	if got := r.SVDDynFPPerM(); got != 25 {
		t.Errorf("SVD dFP/M = %f", got)
	}
	if got := r.FRDDynFPPerM(); got != 50 {
		t.Errorf("FRD dFP/M = %f", got)
	}
	if got := r.CUsPerM(); got != 1000 {
		t.Errorf("CUs/M = %f", got)
	}
	empty := Row{}
	if empty.SVDDynFPPerM() != 0 {
		t.Error("zero-instruction row should rate 0")
	}
}

// TestTable2SmallScale runs the whole Table 2 pipeline at scale 1 and
// checks the headline shape of the paper's results.
func TestTable2SmallScale(t *testing.T) {
	rows, merged, err := Table2(Table2Config{Scale: 1, Samples: 2, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	if merged.Samples == 0 || merged.SVD.Instructions == 0 || merged.FRD.Instructions == 0 {
		t.Errorf("merged stats empty: %+v", merged)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Workload] = r
	}

	ab := byName["apache-buggy"]
	if ab.ErroneousSamples == 0 {
		t.Error("apache-buggy sample was not erroneous")
	}
	if !ab.SVDFoundBug {
		t.Error("SVD did not find the apache bug")
	}
	if ab.ApparentFNs != 0 {
		t.Errorf("apache-buggy apparent FNs = %d, want 0", ab.ApparentFNs)
	}

	mb := byName["mysql-prepared-buggy"]
	if !mb.LogFoundBug {
		t.Error("a posteriori log did not reveal the mysql bug")
	}
	if mb.ApparentFNs != 0 {
		t.Errorf("mysql apparent FNs = %d, want 0 (log finding counts)", mb.ApparentFNs)
	}

	mt := byName["mysql-tables"]
	if mt.SVDDynFP != 0 {
		t.Errorf("SVD dynamic FPs on mysql-tables = %d, want 0", mt.SVDDynFP)
	}
	if mt.FRDDynFP == 0 {
		t.Error("FRD has no FPs on mysql-tables; benign-race contrast missing")
	}

	pg := byName["pgsql-oltp"]
	if pg.FRDStaticFP != 0 {
		t.Errorf("FRD static FPs on pgsql = %d, want 0", pg.FRDStaticFP)
	}
	if pg.SVDStaticFP == 0 {
		t.Error("SVD static FPs on pgsql = 0; the Table 2 inversion is missing")
	}

	out := RenderTable(rows)
	for _, name := range []string{"apache-buggy", "mysql-tables", "pgsql-oltp"} {
		if !strings.Contains(out, name) {
			t.Errorf("rendered table missing %s:\n%s", name, out)
		}
	}
	if s := Summary(mb); !strings.Contains(s, "a posteriori") {
		t.Errorf("summary of the mysql row does not mention the log: %s", s)
	}
}

// TestScalingSweepShape verifies the §7.3 claim on a small sweep: dynamic
// FPs grow with length while static FPs stay nearly flat.
func TestScalingSweepShape(t *testing.T) {
	pts, err := ScalingSweep([]int{1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	byWorkload := map[string][]ScalingPoint{}
	for _, p := range pts {
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	pg := byWorkload["pgsql-oltp"]
	if len(pg) != 2 {
		t.Fatalf("pgsql points = %d", len(pg))
	}
	if pg[1].DynFP <= pg[0].DynFP {
		t.Errorf("dynamic FPs did not grow with length: %d -> %d", pg[0].DynFP, pg[1].DynFP)
	}
	// Static sites track exercised code: growing the execution 4x must
	// not grow distinct sites 4x.
	if pg[0].StaticFP > 0 && pg[1].StaticFP > 3*pg[0].StaticFP {
		t.Errorf("static FPs grew with length: %d -> %d", pg[0].StaticFP, pg[1].StaticFP)
	}
}
