package report

import (
	"fmt"
	"strings"
)

// RenderTable renders rows in the layout of the paper's Table 2.
func RenderTable(rows []Row) string {
	var b strings.Builder
	header := []string{
		"Workload", "Samples", "MInsts", "Errors",
		"App.FN", "SVD sFP", "FRD sFP",
		"SVD dFP/M (tot)", "FRD dFP/M (tot)",
		"A-post.", "CUs/M (tot)",
	}
	fmt.Fprintf(&b, "%-22s %7s %7s %6s %6s %8s %8s %18s %18s %8s %16s\n",
		header[0], header[1], header[2], header[3], header[4], header[5],
		header[6], header[7], header[8], header[9], header[10])
	fmt.Fprintln(&b, strings.Repeat("-", 132))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %7d %7.2f %6d %6d %8d %8d %10.2f (%5d) %10.2f (%5d) %8d %8.0f (%5d)\n",
			r.Workload, r.Samples, r.MInsts, r.ErroneousSamples,
			r.ApparentFNs, r.SVDStaticFP, r.FRDStaticFP,
			r.SVDDynFPPerM(), r.SVDDynFP,
			r.FRDDynFPPerM(), r.FRDDynFP,
			r.APosteriori,
			r.CUsPerM(), r.CUs)
	}
	return b.String()
}

// Summary renders the detection outcome of a row in prose, the way §7.1
// reports apparent false negatives.
func Summary(r Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d samples, %.2fM instructions, %d erroneous\n",
		r.Workload, r.Samples, r.MInsts, r.ErroneousSamples)
	switch {
	case r.SVDFoundBug && r.LogFoundBug:
		fmt.Fprintf(&b, "  SVD found the bug online and in the a posteriori log\n")
	case r.SVDFoundBug:
		fmt.Fprintf(&b, "  SVD found the bug online\n")
	case r.LogFoundBug:
		fmt.Fprintf(&b, "  SVD missed the bug online; the a posteriori log revealed it\n")
	default:
		fmt.Fprintf(&b, "  SVD made no bug detections (none injected or all missed)\n")
	}
	fmt.Fprintf(&b, "  apparent false negatives vs FRD: %d\n", r.ApparentFNs)
	fmt.Fprintf(&b, "  static FPs: SVD %d vs FRD %d; dynamic FPs/M: SVD %.2f vs FRD %.2f\n",
		r.SVDStaticFP, r.FRDStaticFP, r.SVDDynFPPerM(), r.FRDDynFPPerM())
	return b.String()
}
