package report

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// Table2Config scales the Table 2 reproduction. Scale 1 is a quick run;
// larger scales lengthen every workload proportionally (the paper samples
// 16-40M instructions per row; scale ~8 approaches that).
type Table2Config struct {
	Scale   int // work multiplier; zero means 1
	Samples int // samples per bug-free row; zero means 4
	Seed    uint64

	// Parallelism fans a row's samples across this many workers (see
	// RunMany); zero or negative means GOMAXPROCS. Results are identical
	// to the sequential run for any value.
	Parallelism int

	// Obs collects telemetry (event traces, histograms) across every
	// sample of every row; nil disables it.
	Obs *obs.Sink

	// Witness enables the detectors' flight recorders on every sample; the
	// merged stats then carry a capped witness digest.
	Witness bool
}

func (c Table2Config) withDefaults() Table2Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Samples <= 0 {
		c.Samples = 4
	}
	return c
}

// Table2Workloads builds the five workload configurations of the paper's
// Table 2: Apache with the erroneous execution, Apache bug-free, MySQL
// with the erroneous execution, MySQL bug-free, and PgSQL (bug-free by
// construction).
func Table2Workloads(cfg Table2Config) []struct {
	W       *workloads.Workload
	Samples int
} {
	cfg = cfg.withDefaults()
	s := cfg.Scale
	return []struct {
		W       *workloads.Workload
		Samples int
	}{
		{workloads.ApacheLog(workloads.ApacheConfig{
			Threads: 4, Requests: 64 * s, Buggy: true, Seed: cfg.Seed,
		}), 1},
		{workloads.ApacheLog(workloads.ApacheConfig{
			Threads: 4, Requests: 64 * s, Buggy: false, Seed: cfg.Seed,
		}), cfg.Samples},
		{workloads.MySQLPrepared(workloads.MySQLPreparedConfig{
			Threads: 4, Queries: 48 * s, Buggy: true, Seed: cfg.Seed,
		}), 1},
		{workloads.MySQLTables(workloads.MySQLTablesConfig{
			Lockers: 3, Ops: 80 * s,
		}), cfg.Samples},
		{workloads.PgSQLOLTP(workloads.PgSQLConfig{
			Warehouses: 4, Terminals: 4, Txns: 128 * s, Seed: cfg.Seed,
		}), cfg.Samples},
	}
}

// Table2 reproduces the paper's Table 2: each workload is run for its
// sample count with distinct seeds, both detectors attached, and the
// classified results aggregated into rows. The second return value is
// the field-wise sum of both detectors' counters across every sample —
// the merged stats that per-row aggregation alone would drop.
func Table2(cfg Table2Config) ([]Row, MergedStats, error) {
	cfg = cfg.withDefaults()
	var rows []Row
	var merged MergedStats
	for _, entry := range Table2Workloads(cfg) {
		samples, err := RunMany(entry.W, Seeds(cfg.Seed, entry.Samples), Options{Obs: cfg.Obs, Witness: cfg.Witness}, cfg.Parallelism)
		if err != nil {
			return nil, MergedStats{}, fmt.Errorf("table2: %s: %w", entry.W.Name, err)
		}
		rows = append(rows, Aggregate(entry.W.Name, samples))
		m := MergeSamples(samples)
		merged.Samples += m.Samples
		merged.SVD.Add(m.SVD)
		merged.FRD.Add(m.FRD)
		for _, w := range m.Witnesses {
			if len(merged.Witnesses) >= MaxMergedWitnesses {
				break
			}
			merged.Witnesses = append(merged.Witnesses, w)
		}
	}
	return rows, merged, nil
}

// ScalingPoint is one point of the §7.3 execution-length sweep.
type ScalingPoint struct {
	Workload string
	Factor   int
	MInsts   float64
	StaticFP int    // distinct SVD false-positive sites
	DynFP    uint64 // dynamic SVD false positives
}

// ScalingSweep reproduces the §7.3 observation: as execution length grows,
// static false positives grow slowly (they track exercised code, not
// time), while dynamic false positives grow roughly linearly.
func ScalingSweep(factors []int, seed uint64) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, f := range factors {
		for _, w := range []*workloads.Workload{
			workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 32 * f, Buggy: false, Seed: seed}),
			workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64 * f, Seed: seed}),
		} {
			sm, err := Run(w, seed, Options{})
			if err != nil {
				return nil, fmt.Errorf("scaling: %s x%d: %w", w.Name, f, err)
			}
			out = append(out, ScalingPoint{
				Workload: w.Name,
				Factor:   f,
				MInsts:   float64(sm.Instructions) / 1e6,
				StaticFP: len(sm.SVD.FalseSites),
				DynFP:    sm.SVD.DynamicFalse,
			})
		}
	}
	return out, nil
}
