package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/workloads"
)

// TestRunManyWitnesses drives the parallel runner with the flight recorder
// on: every sample's witness slices must pair with its detector stats, the
// merged digest must fold them (capped), and the samples must serialize
// with the wire field names tooling parses. Exercised under -race in CI.
func TestRunManyWitnesses(t *testing.T) {
	wl := workloads.ApacheLog(workloads.ApacheConfig{
		Threads: 4, Requests: 48, Buggy: true, Seed: 3,
	})
	seeds := Seeds(11, 6)
	samples, err := RunMany(wl, seeds, Options{Witness: true}, 4)
	if err != nil {
		t.Fatal(err)
	}

	var total int
	for i, s := range samples {
		if uint64(len(s.SVDWitnesses)) != s.SVDStats.Witnesses {
			t.Errorf("sample %d: %d svd witnesses, stats say %d", i, len(s.SVDWitnesses), s.SVDStats.Witnesses)
		}
		if uint64(len(s.FRDWitnesses)) != s.FRDStats.Witnesses {
			t.Errorf("sample %d: %d frd witnesses, stats say %d", i, len(s.FRDWitnesses), s.FRDStats.Witnesses)
		}
		if s.SVDStats.Witnesses != s.SVDStats.Violations {
			t.Errorf("sample %d: svd witnesses = %d, violations = %d", i, s.SVDStats.Witnesses, s.SVDStats.Violations)
		}
		total += len(s.SVDWitnesses) + len(s.FRDWitnesses)
	}
	if total == 0 {
		t.Fatal("no witnesses across any sample; the test needs violating runs")
	}

	m := MergeSamples(samples)
	wantMerged := total
	if wantMerged > MaxMergedWitnesses {
		wantMerged = MaxMergedWitnesses
	}
	if len(m.Witnesses) != wantMerged {
		t.Errorf("merged digest holds %d witnesses, want %d (cap %d)", len(m.Witnesses), wantMerged, MaxMergedWitnesses)
	}

	data, err := json.Marshal(samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(samples[0].SVDWitnesses) > 0 && !strings.Contains(string(data), `"svd_witnesses"`) {
		t.Error("sample JSON missing svd_witnesses field")
	}
}

// TestRunWitnessOffByDefault: without the option samples carry no
// witnesses and serialize without the fields (omitempty).
func TestRunWitnessOffByDefault(t *testing.T) {
	wl := workloads.ApacheLog(workloads.ApacheConfig{
		Threads: 4, Requests: 48, Buggy: true, Seed: 3,
	})
	s, err := Run(wl, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.SVDWitnesses != nil || s.FRDWitnesses != nil {
		t.Errorf("witnesses collected by default: svd=%d frd=%d", len(s.SVDWitnesses), len(s.FRDWitnesses))
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "witnesses") {
		t.Error("default sample JSON mentions witnesses; fields must be omitempty")
	}
}
