package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/report"
	"repro/internal/vm"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// Client is the producer half of the detection service: it replays
// workload executions over a wire connection, one stream per sample,
// and reads back the server's report. cmd/svdload drives it; the
// loopback differential test uses it over net.Pipe.
type Client struct {
	rw io.ReadWriter
	f  *wire.Framer
	d  *wire.Deframer
}

// NewClient wraps an established connection (or any reliable byte
// stream, e.g. one side of a net.Pipe).
func NewClient(rw io.ReadWriter) *Client {
	d := wire.NewDeframer(rw)
	d.ExpectResults() // reports with witnesses outgrow the ingest cap
	return &Client{rw: rw, f: wire.NewFramer(rw, 1), d: d}
}

// Dial connects to a detection daemon.
func Dial(addr string) (*Client, net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	return NewClient(conn), conn, nil
}

// ReplayOptions tune one RunSample call.
type ReplayOptions struct {
	// MaxSteps is the VM instruction budget; zero means report.Run's
	// default, keeping wire replays comparable to in-process runs.
	MaxSteps uint64

	// Witness asks the server for flight-recorder witnesses.
	Witness bool

	// Rate paces the replay at approximately this many events per
	// second (0 = as fast as the connection allows). Pacing sleeps
	// between batches, so granularity is one VM event ring.
	Rate float64

	// Scale is the workload scale the producer built its workload
	// with; the server must rebuild with the same scale or the
	// programs diverge.
	Scale int

	// EmbedProgram ships the program image in the handshake, for
	// servers that do not hold this workload in their registry.
	EmbedProgram bool

	// RowEncode replays through the legacy row-form observer path
	// (vm.AttachBatch + Framer.WriteEvents) instead of the default
	// columnar one. The bytes on the wire are identical either way;
	// the flag exists so the loopback differential can exercise both
	// producer paths.
	RowEncode bool

	// Timestamps negotiates wire-to-verdict latency tracing: every
	// Events frame carries a send stamp, and the Result comes back with
	// the server's latency digest in ReplayStats.Latency. Needs a
	// wire.Version >= 2 server.
	Timestamps bool

	// Key is the cluster routing key carried in the handshake. A
	// cluster node that is not the key's owner forwards the stream to
	// the node that is; empty opts out of routing (the receiving node
	// serves the stream itself). Needs a wire.Version >= 3 server.
	Key string
}

// ReplayStats reports the achieved throughput of one stream.
type ReplayStats struct {
	Events  uint64
	Batches uint64
	Elapsed time.Duration

	// Latency is the server's wire-to-verdict digest for this stream,
	// non-nil only when ReplayOptions.Timestamps was negotiated. The
	// send stamps are this process's wall clock and the verdict stamps
	// the server's, so cross-host numbers include clock skew.
	Latency *LatencyReport
}

// EventsPerSec is the achieved replay rate.
func (s ReplayStats) EventsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Events) / s.Elapsed.Seconds()
}

// RunSample executes w locally under seed, streams every dynamic
// instruction to the server, and returns the server's detection report.
// The local VM is the event producer — the same role the instrumented
// server program plays in the paper — so the erroneous/consistency
// judgment (which needs the finished memory image) is filled in locally
// before returning, leaving everything else exactly as the server
// classified it.
func (c *Client) RunSample(w *workloads.Workload, seed uint64, opts ReplayOptions) (*report.Sample, ReplayStats, error) {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 24
	}
	m, err := w.NewVM(seed)
	if err != nil {
		return nil, ReplayStats{}, err
	}
	h := wire.Hello{
		Version:    wire.Version,
		Threads:    w.NumThreads,
		Workload:   w.Name,
		Scale:      opts.Scale,
		Seed:       seed,
		Witness:    opts.Witness,
		Timestamps: opts.Timestamps,
		Key:        opts.Key,
	}
	if opts.EmbedProgram {
		h.Program = w.Prog
	}
	if err := c.f.WriteHello(h); err != nil {
		return nil, ReplayStats{}, err
	}

	var stats ReplayStats
	var sendErr error
	start := time.Now()
	pace := func() {
		if opts.Rate > 0 {
			// Pace against the stream's own clock: the batch is due
			// when events-so-far/rate seconds have elapsed.
			due := start.Add(time.Duration(float64(stats.Events) / opts.Rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
	}
	if opts.RowEncode {
		m.AttachBatch(batchFunc(func(evs []vm.Event) {
			if sendErr != nil {
				return
			}
			pace()
			sendErr = c.f.WriteEvents(evs)
			stats.Events += uint64(len(evs))
			stats.Batches++
		}))
	} else {
		// Default producer path: the VM's columnar ring feeds the
		// columnar encoder, so no []vm.Event is built on this side
		// either — the replay is zero-copy end to end.
		m.AttachColumns(vm.ColumnFunc(func(eb *vm.EventBatch) {
			if sendErr != nil {
				return
			}
			pace()
			sendErr = c.f.WriteColumns(eb)
			stats.Events += uint64(eb.Len())
			stats.Batches++
		}))
	}
	_, runErr := m.Run(maxSteps)
	stats.Elapsed = time.Since(start)
	if sendErr != nil {
		return nil, stats, fmt.Errorf("server/client: send: %w", sendErr)
	}
	if runErr != nil {
		return nil, stats, fmt.Errorf("server/client: %s seed %d: %w", w.Name, seed, runErr)
	}
	if !m.Done() {
		return nil, stats, fmt.Errorf("server/client: %s seed %d did not finish within %d steps", w.Name, seed, maxSteps)
	}
	if err := c.f.WriteGoodbye(); err != nil {
		return nil, stats, err
	}

	fr, err := c.d.ReadFrame()
	if err != nil {
		return nil, stats, err
	}
	switch fr.Type {
	case wire.FrameResult:
		if len(fr.Result.Latency) > 0 {
			var lr LatencyReport
			if err := json.Unmarshal(fr.Result.Latency, &lr); err != nil {
				return nil, stats, fmt.Errorf("server/client: decode latency report: %w", err)
			}
			stats.Latency = &lr
		}
		if fr.Result.Err != "" {
			return nil, stats, fmt.Errorf("server/client: server: %s", fr.Result.Err)
		}
		var sample report.Sample
		if err := json.Unmarshal(fr.Result.Sample, &sample); err != nil {
			return nil, stats, fmt.Errorf("server/client: decode result: %w", err)
		}
		if w.Check != nil {
			sample.Erroneous, sample.ErrorDetail = w.Check(m)
		}
		return &sample, stats, nil
	case wire.FrameError:
		return nil, stats, fmt.Errorf("server/client: server: %s", fr.Errmsg)
	default:
		return nil, stats, fmt.Errorf("%w: expected result, got %s", wire.ErrBadFrame, fr.Type)
	}
}

// batchFunc adapts a function to vm.BatchObserver.
type batchFunc func(evs []vm.Event)

func (f batchFunc) StepBatch(evs []vm.Event) { f(evs) }
