package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/vm"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// Cluster differential tests: a stream that crosses nodes — forwarded
// at its Hello or handed off mid-flight — must produce a sample byte
// for byte identical to the in-process run, because the new owner
// replays exactly the client's bytes through deterministic detectors.

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// collectEvents replays the workload locally and returns the full event
// stream plus the finished VM (for the erroneous check, which needs the
// final memory image — the same split Client.RunSample makes).
func collectEvents(t *testing.T, w *workloads.Workload, seed uint64) ([]vm.Event, *vm.VM) {
	t.Helper()
	m, err := w.NewVM(seed)
	if err != nil {
		t.Fatal(err)
	}
	var evs []vm.Event
	m.AttachBatch(batchFunc(func(b []vm.Event) {
		evs = append(evs, b...)
	}))
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("vm did not finish")
	}
	return evs, m
}

// startClusterNode builds an engine+router+server listening on TCP.
func startClusterNode(t *testing.T, id string, view *cluster.View, copts ClusterOptions) (*ClusterServer, net.Listener) {
	t.Helper()
	e := New(Options{Shards: 2, NodeID: id})
	cs := NewClusterServer(e, cluster.NewRouter(id, view), copts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go cs.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		shutdown(t, e)
	})
	return cs, ln
}

// TestClusterHandoffDifferential moves a live stream from node A to
// node B after exactly cut events — one event, a prime mid-batch
// count, and a full batch — and requires the sample B publishes (and
// relays back through A) to be byte-identical to the in-process run.
// The net.Pipe rendezvous plus the engine's event odometer make the
// boundary deterministic: frame 1 is fully ingested under the old view
// before the new view lands, so the transferred history holds exactly
// cut events.
func TestClusterHandoffDifferential(t *testing.T) {
	const name = "queue-buggy"
	const seed = uint64(9)
	w, err := workloads.ByName(name, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	evs, m := collectEvents(t, w, seed)
	if len(evs) <= vm.DefaultBatchCap {
		t.Fatalf("workload too small to cut at the batch cap: %d events", len(evs))
	}
	want := inProcess(t, name, seed)

	for _, cut := range []int{1, 7, vm.DefaultBatchCap} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			// Node B: the stream's eventual owner.
			csB, lnB := startClusterNode(t, "nB",
				cluster.NewView(1, []cluster.Member{{ID: "nB", Addr: "unused"}}), ClusterOptions{})
			eB := csB.Engine()

			// Node A serves the client over a pipe; initially sole owner.
			eA := New(Options{Shards: 2, NodeID: "nA"})
			defer shutdown(t, eA)
			rtA := cluster.NewRouter("nA", cluster.NewView(1, []cluster.Member{{ID: "nA", Addr: "unused"}}))
			csA := NewClusterServer(eA, rtA, ClusterOptions{})
			cli, srv := net.Pipe()
			sessionDone := make(chan struct{})
			go func() { csA.ServeConn(srv); close(sessionDone) }()

			const key = "queue-buggy/9"
			f := wire.NewFramer(cli, w.NumThreads)
			d := wire.NewDeframer(cli)
			d.ExpectResults()
			if err := f.WriteHello(wire.Hello{
				Version: wire.Version, Threads: w.NumThreads, Workload: name,
				Scale: 1, Seed: seed, Witness: true, Key: key,
			}); err != nil {
				t.Fatal(err)
			}
			if err := f.WriteEvents(evs[:cut]); err != nil {
				t.Fatal(err)
			}
			// Frame 1 ingested locally under the old view, then move the
			// key to B: the next frame crosses the ownership boundary.
			waitFor(t, "frame 1 ingest", func() bool { return eA.Counters().Events >= uint64(cut) })
			rtA.ApplyAssignment(cluster.NewView(2,
				[]cluster.Member{{ID: "nB", Addr: lnB.Addr().String()}}).Assignment("test"))

			for i := cut; i < len(evs); i += vm.DefaultBatchCap {
				j := min(i+vm.DefaultBatchCap, len(evs))
				if err := f.WriteEvents(evs[i:j]); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.WriteGoodbye(); err != nil {
				t.Fatal(err)
			}
			fr, err := d.ReadFrame()
			if err != nil {
				t.Fatal(err)
			}
			if fr.Type != wire.FrameResult {
				t.Fatalf("expected result, got %s", fr.Type)
			}
			if fr.Result.Err != "" {
				t.Fatalf("server error: %s", fr.Result.Err)
			}
			var got report.Sample
			if err := json.Unmarshal(fr.Result.Sample, &got); err != nil {
				t.Fatal(err)
			}
			got.Erroneous, got.ErrorDetail = w.Check(m)
			diffSamples(t, fmt.Sprintf("handoff cut=%d", cut), &got, want)

			cli.Close()
			<-sessionDone
			if s := rtA.Snapshot(); s.HandoffsOut != 1 || s.HandoffsInFlight != 0 || s.Misroutes != 0 {
				t.Errorf("origin router: %+v", s)
			}
			if s := csB.Router().Snapshot(); s.HandoffsIn != 1 || s.HandoffsInFlight != 0 {
				t.Errorf("owner router: %+v", s)
			}
			if c := eA.Counters(); c.StreamsHandedOff != 1 {
				t.Errorf("origin handed off %d streams, want 1", c.StreamsHandedOff)
			}
			if n := len(eA.Samples()); n != 0 {
				t.Errorf("origin published %d samples, want 0", n)
			}
			if n := len(eB.Samples()); n != 1 {
				t.Errorf("owner published %d samples, want 1", n)
			}
		})
	}
}

// TestClusterHandoffTimestamps hands off a stream that negotiated send
// stamps: after the splice the live tail's Events frames still open
// with a stamp, which the new owner's connection deframer must keep
// stripping (AdoptCodec carries the flag) — otherwise every post-
// handoff frame decodes the stamp as event data. The sample must stay
// byte-identical and the result must still carry a latency digest.
func TestClusterHandoffTimestamps(t *testing.T) {
	const name = "queue-buggy"
	const seed = uint64(9)
	w, err := workloads.ByName(name, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	evs, m := collectEvents(t, w, seed)
	want := inProcess(t, name, seed)

	csB, lnB := startClusterNode(t, "nB",
		cluster.NewView(1, []cluster.Member{{ID: "nB", Addr: "unused"}}), ClusterOptions{})

	eA := New(Options{Shards: 2, NodeID: "nA"})
	defer shutdown(t, eA)
	rtA := cluster.NewRouter("nA", cluster.NewView(1, []cluster.Member{{ID: "nA", Addr: "unused"}}))
	csA := NewClusterServer(eA, rtA, ClusterOptions{})
	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() { csA.ServeConn(srv); close(sessionDone) }()

	const cut = 7
	f := wire.NewFramer(cli, w.NumThreads)
	d := wire.NewDeframer(cli)
	d.ExpectResults()
	if err := f.WriteHello(wire.Hello{
		Version: wire.Version, Threads: w.NumThreads, Workload: name,
		Scale: 1, Seed: seed, Witness: true, Timestamps: true, Key: "queue-buggy/ts/9",
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteEvents(evs[:cut]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "frame 1 ingest", func() bool { return eA.Counters().Events >= cut })
	rtA.ApplyAssignment(cluster.NewView(2,
		[]cluster.Member{{ID: "nB", Addr: lnB.Addr().String()}}).Assignment("test"))

	for i := cut; i < len(evs); i += vm.DefaultBatchCap {
		j := min(i+vm.DefaultBatchCap, len(evs))
		if err := f.WriteEvents(evs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WriteGoodbye(); err != nil {
		t.Fatal(err)
	}
	fr, err := d.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Type != wire.FrameResult || fr.Result.Err != "" {
		t.Fatalf("bad result: type=%s err=%q", fr.Type, fr.Result.Err)
	}
	if len(fr.Result.Latency) == 0 {
		t.Error("timestamps stream lost its latency digest across the handoff")
	}
	var got report.Sample
	if err := json.Unmarshal(fr.Result.Sample, &got); err != nil {
		t.Fatal(err)
	}
	got.Erroneous, got.ErrorDetail = w.Check(m)
	diffSamples(t, "timestamps handoff", &got, want)
	cli.Close()
	<-sessionDone
	if s := csB.Router().Snapshot(); s.HandoffsIn != 1 {
		t.Errorf("owner router: %+v", s)
	}
	if n := len(csB.Engine().Samples()); n != 1 {
		t.Errorf("owner published %d samples, want 1", n)
	}
}

// TestClusterPeerAuth: the node-to-node plane is gated on the shared
// token. A connection that has not presented it cannot hand off a
// stream at all, and a forged Assign (any epoch) is rejected without
// touching the view — so a client that can reach the wire port cannot
// hijack routing. A token-valid Assign promotes the connection and the
// full handoff path works.
func TestClusterPeerAuth(t *testing.T) {
	const token = "s3cret"
	members := []cluster.Member{{ID: "nA", Addr: "a:1"}, {ID: "nB", Addr: "b:1"}}
	e := New(Options{Shards: 1, NodeID: "nA"})
	defer shutdown(t, e)
	rt := cluster.NewRouter("nA", cluster.NewView(1, members))
	cs := NewClusterServer(e, rt, ClusterOptions{PeerToken: token})

	dialSession := func() (net.Conn, chan struct{}) {
		cli, srv := net.Pipe()
		done := make(chan struct{})
		go func() { cs.ServeConn(srv); close(done) }()
		return cli, done
	}

	t.Run("forged assign rejected", func(t *testing.T) {
		cli, done := dialSession()
		f := wire.NewFramer(cli, 1)
		forged := cluster.NewView(99, members[:1]).Assignment("evil")
		forged.Token = "wrong"
		if err := f.WriteAssign(forged); err != nil {
			t.Fatal(err)
		}
		d := wire.NewDeframer(cli)
		fr, err := d.ReadFrame()
		if err != nil || fr.Type != wire.FrameError {
			t.Fatalf("want error frame, got %v type %v", err, fr.Type)
		}
		cli.Close()
		<-done
		if v := rt.View(); v.Epoch != 1 {
			t.Fatalf("forged assign moved the view to epoch %d", v.Epoch)
		}
	})

	t.Run("handoff before auth rejected", func(t *testing.T) {
		cli, done := dialSession()
		f := wire.NewFramer(cli, 1)
		if err := f.WriteHandoff(wire.Handoff{Key: "k", Origin: "evil", History: []byte("junk")}); err != nil {
			t.Fatal(err)
		}
		d := wire.NewDeframer(cli)
		fr, err := d.ReadFrame()
		if err != nil || fr.Type != wire.FrameError {
			t.Fatalf("want error frame, got %v type %v", err, fr.Type)
		}
		cli.Close()
		<-done
		if s := rt.Snapshot(); s.HandoffsIn != 0 {
			t.Fatalf("unauthenticated handoff counted: %+v", s)
		}
	})

	t.Run("token unlocks handoff", func(t *testing.T) {
		cli, done := dialSession()
		f := wire.NewFramer(cli, 1)
		d := wire.NewDeframer(cli)
		d.ExpectHandoffs()
		d.ExpectResults()
		a := cluster.NewView(1, members).Assignment("nB")
		a.Token = token
		if err := f.WriteAssign(a); err != nil {
			t.Fatal(err)
		}
		fr, err := d.ReadFrame()
		if err != nil || fr.Type != wire.FrameAssign {
			t.Fatalf("assign reply: %v type %v", err, fr.Type)
		}
		if fr.Assign.Token != token {
			t.Fatalf("reply not authenticated: %+v", fr.Assign)
		}

		// A minimal but valid handoff: hello + goodbye history. The
		// promoted connection must adopt it and answer with the result.
		w, err := workloads.ByName("queue-buggy", 1, 9)
		if err != nil {
			t.Fatal(err)
		}
		var hist bytes.Buffer
		hf := wire.NewFramer(&hist, w.NumThreads)
		if err := hf.WriteHello(wire.Hello{
			Version: wire.Version, Threads: w.NumThreads, Workload: w.Name,
			Scale: 1, Seed: 9, Key: "auth/1",
		}); err != nil {
			t.Fatal(err)
		}
		if err := hf.WriteGoodbye(); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteHandoff(wire.Handoff{Key: "auth/1", Origin: "nB", Epoch: 1, History: hist.Bytes()}); err != nil {
			t.Fatal(err)
		}
		fr, err = d.ReadFrame()
		if err != nil || fr.Type != wire.FrameResult || fr.Result.Err != "" {
			t.Fatalf("handoff result: %v type %v err %q", err, fr.Type, fr.Result.Err)
		}
		cli.Close()
		<-done
		if s := rt.Snapshot(); s.HandoffsIn != 1 {
			t.Fatalf("authenticated handoff not counted: %+v", s)
		}
	})
}

// TestClusterHopLimitBreaksPingPong wires two nodes whose views
// disagree about a key's owner — the divergence window REVIEW found. A
// still runs the shared base view and routes the key to B; B has
// adopted a newer view in which B itself was marked down, so it routes
// every key to A. Each relay bumps the Hello's hop counter, so instead
// of bouncing connections between the two at network speed forever, the
// chain terminates at maxStreamHops and the stream is served where it
// landed, with the sample still byte-identical.
func TestClusterHopLimitBreaksPingPong(t *testing.T) {
	const name = "queue-fixed"
	const seed = uint64(6)
	w, err := workloads.ByName(name, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := inProcess(t, name, seed)

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	viewA := cluster.NewView(1, []cluster.Member{
		{ID: "nA", Addr: "unused"}, {ID: "nB", Addr: lnB.Addr().String()},
	})
	viewB := cluster.NewView(2, []cluster.Member{
		{ID: "nA", Addr: lnA.Addr().String()},
	})
	key := keyOwnedBy(t, viewA, "nB")

	eA := New(Options{Shards: 2, NodeID: "nA"})
	defer shutdown(t, eA)
	csA := NewClusterServer(eA, cluster.NewRouter("nA", viewA), ClusterOptions{})
	go csA.Serve(lnA)
	defer lnA.Close()

	eB := New(Options{Shards: 2, NodeID: "nB"})
	defer shutdown(t, eB)
	csB := NewClusterServer(eB, cluster.NewRouter("nB", viewB), ClusterOptions{})
	go csB.Serve(lnB)
	defer lnB.Close()

	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() { csA.ServeConn(srv); close(sessionDone) }()

	c := NewClient(cli)
	got, _, err := c.RunSample(w, seed, ReplayOptions{Witness: true, Scale: 1, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	diffSamples(t, "hop-limited stream", got, want)
	cli.Close()
	<-sessionDone

	// hops 0 (client at A) -> 1 (B) -> 2 (A) -> 3: B hits the hop
	// limit and stops relaying. Its between-frame ownership check then
	// hands the stream to nA; the handoff's Assign exchange teaches A
	// the epoch-2 view, so A sees itself as owner and publishes. The
	// hop guard broke the relay loop, and the handoff anti-entropy
	// converged the views.
	if n := len(eA.Samples()); n != 1 {
		t.Errorf("nA published %d samples, want 1", n)
	}
	if n := len(eB.Samples()); n != 0 {
		t.Errorf("nB published %d samples, want 0", n)
	}
	sA, sB := csA.Router().Snapshot(), csB.Router().Snapshot()
	if sA.Misroutes != 2 || sB.Misroutes != 2 {
		t.Errorf("misroutes A=%d B=%d, want 2/2", sA.Misroutes, sB.Misroutes)
	}
	if sA.Epoch != 2 {
		t.Errorf("nA converged to epoch %d, want 2", sA.Epoch)
	}
	if sB.HandoffsOut != 1 || sA.HandoffsIn != 1 {
		t.Errorf("handoffs out(B)=%d in(A)=%d, want 1/1", sB.HandoffsOut, sA.HandoffsIn)
	}
}

// TestClusterStickyStream: when the history buffer overflows before
// ownership moves, the stream must finish where its state is — no
// handoff, locally published sample, still byte-identical.
func TestClusterStickyStream(t *testing.T) {
	const name = "queue-buggy"
	const seed = uint64(9)
	w, err := workloads.ByName(name, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	evs, m := collectEvents(t, w, seed)
	want := inProcess(t, name, seed)

	_, lnB := startClusterNode(t, "nB",
		cluster.NewView(1, []cluster.Member{{ID: "nB", Addr: "unused"}}), ClusterOptions{})

	eA := New(Options{Shards: 1, NodeID: "nA"})
	defer shutdown(t, eA)
	rtA := cluster.NewRouter("nA", cluster.NewView(1, []cluster.Member{{ID: "nA", Addr: "unused"}}))
	// A history cap smaller than any frame: the stream is sticky from
	// its first events frame on.
	csA := NewClusterServer(eA, rtA, ClusterOptions{HistoryLimit: 16})
	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() { csA.ServeConn(srv); close(sessionDone) }()

	f := wire.NewFramer(cli, w.NumThreads)
	d := wire.NewDeframer(cli)
	d.ExpectResults()
	if err := f.WriteHello(wire.Hello{
		Version: wire.Version, Threads: w.NumThreads, Workload: name,
		Scale: 1, Seed: seed, Witness: true, Key: "sticky/1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteEvents(evs[:7]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "frame 1 ingest", func() bool { return eA.Counters().Events >= 7 })
	rtA.ApplyAssignment(cluster.NewView(2,
		[]cluster.Member{{ID: "nB", Addr: lnB.Addr().String()}}).Assignment("test"))
	for i := 7; i < len(evs); i += vm.DefaultBatchCap {
		j := min(i+vm.DefaultBatchCap, len(evs))
		if err := f.WriteEvents(evs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WriteGoodbye(); err != nil {
		t.Fatal(err)
	}
	fr, err := d.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Type != wire.FrameResult || fr.Result.Err != "" {
		t.Fatalf("bad result: type=%s err=%q", fr.Type, fr.Result.Err)
	}
	var got report.Sample
	if err := json.Unmarshal(fr.Result.Sample, &got); err != nil {
		t.Fatal(err)
	}
	got.Erroneous, got.ErrorDetail = w.Check(m)
	diffSamples(t, "sticky stream", &got, want)
	cli.Close()
	<-sessionDone
	if s := rtA.Snapshot(); s.HandoffsOut != 0 {
		t.Errorf("sticky stream handed off: %+v", s)
	}
	if n := len(eA.Samples()); n != 1 {
		t.Errorf("sticky stream published %d samples locally, want 1", n)
	}
}

// keyOwnedBy searches for a stream key the view routes to the wanted
// node — how tests pin a deterministic route without fixing the hash.
func keyOwnedBy(t *testing.T, v *cluster.View, id string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("probe/%d", i)
		if m, ok := v.Owner(key); ok && m.ID == id {
			return key
		}
	}
	t.Fatalf("no key routed to %s in 10000 probes", id)
	return ""
}

// TestClusterForwardDifferential connects a client to the wrong node: a
// two-member view where the stream's key belongs to the peer. The
// session must relay the raw bytes to the owner and the relayed-back
// sample must be byte-identical to the in-process run.
func TestClusterForwardDifferential(t *testing.T) {
	const name = "apache-buggy"
	const seed = uint64(4)
	w, err := workloads.ByName(name, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := inProcess(t, name, seed)

	// B listens first so the shared view can carry its real address.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	members := []cluster.Member{
		{ID: "nA", Addr: "unused"},
		{ID: "nB", Addr: lnB.Addr().String()},
	}
	view := cluster.NewView(1, members)

	eB := New(Options{Shards: 2, NodeID: "nB"})
	defer shutdown(t, eB)
	csB := NewClusterServer(eB, cluster.NewRouter("nB", view), ClusterOptions{})
	go csB.Serve(lnB)
	defer lnB.Close()

	eA := New(Options{Shards: 2, NodeID: "nA"})
	defer shutdown(t, eA)
	rtA := cluster.NewRouter("nA", view)
	csA := NewClusterServer(eA, rtA, ClusterOptions{})
	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() { csA.ServeConn(srv); close(sessionDone) }()

	key := keyOwnedBy(t, view, "nB")
	c := NewClient(cli)
	got, stats, err := c.RunSample(w, seed, ReplayOptions{Witness: true, Scale: 1, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 {
		t.Fatal("replay sent no events")
	}
	diffSamples(t, "forwarded stream", got, want)
	cli.Close()
	<-sessionDone

	if s := rtA.Snapshot(); s.Misroutes != 1 || s.ForwardedFrames == 0 || s.HandoffsOut != 0 {
		t.Errorf("relay router: %+v", s)
	}
	if n := len(eA.Samples()); n != 0 {
		t.Errorf("relay node published %d samples, want 0", n)
	}
	if n := len(eB.Samples()); n != 1 {
		t.Errorf("owner published %d samples, want 1", n)
	}
}

// TestClusterFailoverServesLocally: the key's owner is unreachable, so
// the session marks it down and serves the stream itself — availability
// over placement, and the view epoch advances so the removal spreads.
func TestClusterFailoverServesLocally(t *testing.T) {
	const name = "queue-fixed"
	const seed = uint64(6)
	w, err := workloads.ByName(name, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := inProcess(t, name, seed)

	// A dead address: listen, learn the port, close.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	view := cluster.NewView(1, []cluster.Member{
		{ID: "nA", Addr: "unused"},
		{ID: "nB", Addr: deadAddr},
	})
	eA := New(Options{Shards: 2, NodeID: "nA"})
	defer shutdown(t, eA)
	rtA := cluster.NewRouter("nA", view)
	csA := NewClusterServer(eA, rtA, ClusterOptions{})
	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() { csA.ServeConn(srv); close(sessionDone) }()

	key := keyOwnedBy(t, view, "nB")
	c := NewClient(cli)
	got, _, err := c.RunSample(w, seed, ReplayOptions{Witness: true, Scale: 1, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	diffSamples(t, "failover stream", got, want)
	cli.Close()
	<-sessionDone

	s := rtA.Snapshot()
	if s.MembersDown != 1 || s.Misroutes != 1 {
		t.Errorf("router after failover: %+v", s)
	}
	if s.Epoch != view.Epoch+1 {
		t.Errorf("epoch %d after mark-down, want %d", s.Epoch, view.Epoch+1)
	}
	if n := len(eA.Samples()); n != 1 {
		t.Errorf("survivor published %d samples, want 1", n)
	}
}

// TestClusterAssignExchange drives the wire-level membership exchange:
// a newer view is adopted and echoed back; a stale one is answered with
// the newer view unchanged.
func TestClusterAssignExchange(t *testing.T) {
	members := []cluster.Member{{ID: "nA", Addr: "a:1"}, {ID: "nB", Addr: "b:1"}}
	eA := New(Options{Shards: 1, NodeID: "nA"})
	defer shutdown(t, eA)
	rtA := cluster.NewRouter("nA", cluster.NewView(1, members))
	csA := NewClusterServer(eA, rtA, ClusterOptions{})
	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() { csA.ServeConn(srv); close(sessionDone) }()

	f := wire.NewFramer(cli, 1)
	d := wire.NewDeframer(cli)
	d.ExpectHandoffs()

	newer := cluster.NewView(7, members[:1]).Assignment("nB")
	if err := f.WriteAssign(newer); err != nil {
		t.Fatal(err)
	}
	fr, err := d.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Type != wire.FrameAssign || fr.Assign.Epoch != 7 || fr.Assign.Origin != "nA" {
		t.Fatalf("assign reply: %+v", fr.Assign)
	}
	if v := rtA.View(); v.Epoch != 7 || len(v.Members) != 1 {
		t.Fatalf("router did not adopt the newer view: %+v", v)
	}

	stale := cluster.NewView(2, members).Assignment("nB")
	if err := f.WriteAssign(stale); err != nil {
		t.Fatal(err)
	}
	fr, err = d.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Assign.Epoch != 7 {
		t.Fatalf("stale assign changed the view: reply epoch %d", fr.Assign.Epoch)
	}
	cli.Close()
	<-sessionDone
}

// TestClusterGatherReport: two nodes each detect their own streams; the
// gathered cluster report's merged digest must be byte-identical to a
// single-process merge over the union of the in-process samples.
func TestClusterGatherReport(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 31},
		{"apache-buggy", 32},
		{"queue-fixed", 33},
	}

	var engines []*Engine
	var members []cluster.Member
	for i := 0; i < 2; i++ {
		e := New(Options{Shards: 2, NodeID: fmt.Sprintf("n%d", i)})
		defer shutdown(t, e)
		engines = append(engines, e)
		mux := http.NewServeMux()
		mux.Handle("/samples", e.SamplesHandler())
		hs := httptest.NewServer(mux)
		defer hs.Close()
		members = append(members, cluster.Member{
			ID:       fmt.Sprintf("n%d", i),
			Addr:     "unused",
			HTTPAddr: strings.TrimPrefix(hs.URL, "http://"),
		})
	}

	// Spray the streams: case i runs on node i%2, keyless (local serve).
	var want []*report.Sample
	for i, tc := range cases {
		e := engines[i%2]
		cli, srv := net.Pipe()
		done := make(chan struct{})
		go func() { e.ServeConn(srv); close(done) }()
		w, err := workloads.ByName(tc.name, 1, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(cli)
		if _, _, err := c.RunSample(w, tc.seed, ReplayOptions{Witness: true, Scale: 1}); err != nil {
			t.Fatal(err)
		}
		cli.Close()
		<-done
		want = append(want, inProcess(t, tc.name, tc.seed))
	}

	cs := NewClusterServer(engines[0], cluster.NewRouter("n0", cluster.NewView(1, members)), ClusterOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cr := cs.GatherReport(ctx)
	if len(cr.Nodes) != 2 {
		t.Fatalf("gathered %d nodes", len(cr.Nodes))
	}
	for _, n := range cr.Nodes {
		if n.Err != "" {
			t.Fatalf("node %s: %s", n.ID, n.Err)
		}
	}
	if cr.Merged.Samples != len(cases) {
		t.Fatalf("merged %d samples, want %d", cr.Merged.Samples, len(cases))
	}

	report.SortSamples(want)
	wantJS, err := json.Marshal(report.MergeSamples(want))
	if err != nil {
		t.Fatal(err)
	}
	gotJS, err := json.Marshal(cr.Merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJS) != string(wantJS) {
		t.Errorf("gathered merge differs from single-process merge:\n got: %s\nwant: %s", gotJS, wantJS)
	}
}

// TestClusterObservability pins the cluster families on /metrics and
// the cluster panel on /statusz — and that a standalone engine emits
// neither.
func TestClusterObservability(t *testing.T) {
	members := []cluster.Member{{ID: "nA", Addr: "a:1"}, {ID: "nB", Addr: "b:1"}}
	e := New(Options{Shards: 1, NodeID: "nA"})
	defer shutdown(t, e)
	rt := cluster.NewRouter("nA", cluster.NewView(3, members))
	NewClusterServer(e, rt, ClusterOptions{})
	rt.NoteMisroute()
	rt.NoteForwarded(5)
	rt.NoteHandoffOut()
	rt.NoteHandoffIn()

	var sb strings.Builder
	o := obs.NewOpenMetricsWriter(&sb, "svdd")
	e.WriteMetrics(o)
	if err := o.EOF(); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, fam := range []string{
		"cluster_misroutes", "cluster_forwarded", "cluster_handoffs",
		"cluster_handoffs_in_flight", "cluster_members_down",
		"cluster_epoch", "cluster_ring_version", "cluster_members",
	} {
		if !strings.Contains(body, "svdd_"+fam) {
			t.Errorf("metrics missing family %s", fam)
		}
	}
	for _, series := range []string{
		`svdd_cluster_misroutes_total 1`,
		`svdd_cluster_forwarded_total 5`,
		`svdd_cluster_handoffs_total{direction="in"} 1`,
		`svdd_cluster_handoffs_total{direction="out"} 1`,
		`svdd_cluster_epoch 3`,
		`svdd_cluster_members 2`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing series %q:\n%s", series, body)
		}
	}

	rr := httptest.NewRecorder()
	e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
	if !strings.Contains(rr.Body.String(), "<h2>Cluster</h2>") {
		t.Error("statusz html has no cluster panel")
	}
	rr = httptest.NewRecorder()
	e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz?format=text", nil))
	txt := rr.Body.String()
	if !strings.Contains(txt, "cluster node=nA epoch=3 ring_version=3 members=2") {
		t.Errorf("statusz text has no cluster line:\n%s", txt)
	}
	if !strings.Contains(txt, "cluster_member id=nB") {
		t.Errorf("statusz text has no member lines:\n%s", txt)
	}

	// Standalone engines stay silent on both surfaces.
	e2 := New(Options{Shards: 1})
	defer shutdown(t, e2)
	sb.Reset()
	o = obs.NewOpenMetricsWriter(&sb, "svdd")
	e2.WriteMetrics(o)
	if err := o.EOF(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "cluster_") {
		t.Error("standalone engine emits cluster families")
	}
	rr = httptest.NewRecorder()
	e2.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
	if strings.Contains(rr.Body.String(), "<h2>Cluster</h2>") {
		t.Error("standalone statusz shows a cluster panel")
	}
}
