package server

// Cluster serving: the session layer that makes N detection daemons act
// as one service. A ClusterServer wraps an Engine with a cluster.Router
// and speaks the wire v3 cluster frames on top of the ordinary stream
// protocol:
//
//   - a Hello carrying a routing key is served locally when this node
//     owns the key and relayed raw to the owner otherwise (the session
//     becomes a byte relay — frames are never re-encoded, so the owner
//     journals and detects exactly the client's bytes);
//   - an Assign frame is the probe/anti-entropy exchange: apply the
//     peer's view if it is newer, answer with our own;
//   - a Handoff frame carries a drained stream's raw frame history;
//     replaying it through fresh detectors rebuilds the detection state
//     exactly (the detectors are deterministic), after which the live
//     tail of the stream continues from the relaying origin.
//
// Handoff is initiated between frames by the session that owns the
// client connection: after each Events frame it re-checks ownership,
// and when the view has moved the key elsewhere it ships the recorded
// history, releases the local stream (no sample, no anchors — the new
// owner publishes them), and turns into a relay for the rest of the
// stream. Nothing is handed off mid-frame, so the boundary is always a
// frame boundary and the concatenated bytes the new owner sees are a
// valid wire stream — the same property the journal's replay path
// proves.

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/journal"
	"repro/internal/report"
	"repro/internal/vm"
	"repro/internal/wire"
)

// DefaultHistoryLimit caps each stream's recorded frame history. A
// stream that outgrows it becomes sticky — it finishes on the node
// that holds its detector state instead of holding unbounded memory
// for a handoff that may never come.
const DefaultHistoryLimit = 8 << 20

// maxStreamHops bounds how many times a Hello may be relayed between
// nodes. While views diverge (the anti-entropy window after a failure)
// node A can believe B owns a key while B believes A does; without a
// bound each relayed Hello looks like a fresh client stream and the
// pair plays ping-pong at network speed. At the limit the stream is
// served wherever it happens to be — availability over placement, the
// same policy the unreachable-owner path uses.
const maxStreamHops = 3

// ClusterOptions tune a ClusterServer.
type ClusterOptions struct {
	// HistoryLimit caps per-stream history buffers; <= 0 means
	// DefaultHistoryLimit. Clamped so key plus history always fit in
	// one Handoff frame under wire.MaxHandoffPayload.
	HistoryLimit int

	// PeerToken authenticates the node-to-node plane: a connection must
	// present it in an Assign frame before the node honors membership
	// changes or stream handoffs from it. Every node of one cluster
	// must share the same token. Empty disables the check — acceptable
	// only when the wire port is unreachable by untrusted clients.
	PeerToken string

	// Dial opens a wire connection to a peer; nil means TCP with a
	// 5-second timeout. Tests inject pipes here.
	Dial func(addr string) (net.Conn, error)
}

// ClusterServer serves wire connections for one node of a detection
// cluster. Create with NewClusterServer; it registers itself with the
// engine so /statusz and /metrics pick up the cluster counters.
type ClusterServer struct {
	eng          *Engine
	rt           *cluster.Router
	historyLimit int
	token        string
	dial         func(addr string) (net.Conn, error)
}

// NewClusterServer wires an engine to a router.
func NewClusterServer(e *Engine, rt *cluster.Router, opts ClusterOptions) *ClusterServer {
	limit := opts.HistoryLimit
	if limit <= 0 {
		limit = DefaultHistoryLimit
	}
	// The Handoff payload carries the key (<= wire.MaxKeyLen, enforced
	// at Hello decode) and a few short fields besides the history; the
	// headroom keeps their sum under the frame cap for any legal key.
	if max := wire.MaxHandoffPayload - wire.MaxKeyLen - 4096; limit > max {
		limit = max
	}
	dial := opts.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	e.clusterRt = rt
	return &ClusterServer{eng: e, rt: rt, historyLimit: limit, token: opts.PeerToken, dial: dial}
}

// tokenOK compares a presented peer token in constant time.
func (cs *ClusterServer) tokenOK(token string) bool {
	return subtle.ConstantTimeCompare([]byte(token), []byte(cs.token)) == 1
}

// assignment renders this node's current view as an authenticated
// Assign payload.
func (cs *ClusterServer) assignment() wire.Assignment {
	a := cs.rt.View().Assignment(cs.rt.Self())
	a.Token = cs.token
	return a
}

// Router exposes the node's routing state.
func (cs *ClusterServer) Router() *cluster.Router { return cs.rt }

// Engine exposes the wrapped engine.
func (cs *ClusterServer) Engine() *Engine { return cs.eng }

// Serve accepts connections until the listener closes, one cluster
// session per connection — the cluster-mode analogue of Engine.Serve.
func (cs *ClusterServer) Serve(ln net.Listener) error {
	var sessions sync.WaitGroup
	defer sessions.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		sessions.Add(1)
		go func() {
			defer sessions.Done()
			cs.ServeConn(conn)
		}()
	}
}

// ServeConn runs one cluster session: a loop of top-level frames, each
// either a client stream (Hello), a membership exchange (Assign), or an
// incoming stream transfer (Handoff).
//
// The cluster frames are gated: a fresh connection may decode Assign
// (to present the peer token) but not Handoff, and an Assign whose
// token does not match is rejected without being applied — so a client
// that can reach the wire port cannot hijack routing with a forged
// high-epoch view or make the node adopt (or even allocate) a handoff.
// A token-valid Assign promotes the connection to the peer plane for
// its remaining lifetime.
func (cs *ClusterServer) ServeConn(conn net.Conn) {
	defer conn.Close()
	log := cs.eng.opts.Logger.With("remote", conn.RemoteAddr().String())
	d := wire.NewDeframer(conn)
	d.ExpectAssigns()
	f := wire.NewFramer(conn, 1)

	for {
		fr, err := d.ReadFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			log.Warn("cluster session ended", "err", err)
			_ = f.WriteError(err.Error())
			return
		}
		switch fr.Type {
		case wire.FrameHello:
			if fr.Hello.Key == "" || cs.rt.Owns(fr.Hello.Key) {
				err = cs.serveLocal(conn, d, f, fr.Hello)
			} else {
				cs.rt.NoteMisroute()
				err = cs.forward(conn, d, f, fr.Hello)
			}
		case wire.FrameAssign:
			// The Assign exchange doubles as probe and anti-entropy:
			// adopt the peer's view when newer, answer with our own so
			// the peer can do the same — but only for a peer that holds
			// the cluster token.
			if !cs.tokenOK(fr.Assign.Token) {
				err = fmt.Errorf("cluster: peer token mismatch on assign from %q", fr.Assign.Origin)
				break
			}
			d.ExpectHandoffs()
			cs.rt.ApplyAssignment(fr.Assign)
			err = f.WriteAssign(cs.assignment())
		case wire.FrameHandoff:
			// Only reachable on a promoted connection: the deframer
			// rejects Handoff until a token-valid Assign has arrived.
			err = cs.receiveHandoff(conn, d, f, fr.Handoff)
		default:
			err = fmt.Errorf("%w: unexpected %s frame between streams", wire.ErrBadFrame, fr.Type)
		}
		switch {
		case err == nil:
			continue
		case errors.Is(err, io.EOF):
			return // a relayed Error frame already told the client why
		default:
			log.Warn("cluster session ended", "err", err)
			_ = f.WriteError(err.Error())
			return
		}
	}
}

// serveLocal runs one owned stream on this node — serveStream plus the
// history recording and between-frame ownership checks handoff needs.
func (cs *ClusterServer) serveLocal(cw io.Writer, d *wire.Deframer, f *wire.Framer, hello wire.Hello) error {
	e := cs.eng
	st, err := e.OpenStream(hello, hello.Key)
	if err != nil {
		return err
	}
	d.SetProgram(st.w.Prog, st.w.NumThreads)
	hist := cluster.NewHistory(cs.historyLimit)
	hdr, payload := d.RawFrame()
	hist.Append(hdr, payload)
	jw := e.opts.Journal
	if jw != nil {
		if _, jerr := jw.Append(journal.Meta{Kind: journal.KindHello, Stream: st.id}, hdr, payload); jerr != nil {
			e.opts.Logger.Warn("journal append failed; stream unjournaled", "stream", st.id, "err", jerr)
			jw = nil
		}
	}
	return cs.ingestLoop(cw, d, d, f, st, hist, jw)
}

// ingestLoop drives one stream to completion. d is the deframer to read
// next; live is the connection's deframer. They differ only during a
// handoff replay, where d drains the transferred history first — on its
// clean EOF the loop switches to live and continues with the frames the
// origin relays. Ownership is re-checked after every live Events frame;
// replayed frames never trigger a handoff (the replay must land the
// state somewhere before it can move again — the first live frame
// re-checks).
func (cs *ClusterServer) ingestLoop(cw io.Writer, d, live *wire.Deframer, f *wire.Framer, st *Stream, hist *cluster.History, jw *journal.Writer) error {
	e := cs.eng
	closed := false
	defer func() {
		if !closed {
			st.Abort()
		}
	}()
	for {
		eb := st.GetBatch()
		fr, err := d.ReadFrameInto(eb)
		if err != nil {
			st.PutBatch(eb)
			if errors.Is(err, io.EOF) {
				if d != live {
					// History replayed; the live tail's deltas continue
					// from the last replayed frame, so the connection's
					// deframer takes over the codec context with it.
					live.AdoptCodec(d)
					d = live
					continue
				}
				return fmt.Errorf("%w: connection closed mid-stream", wire.ErrTruncated)
			}
			return err
		}
		switch fr.Type {
		case wire.FrameEvents:
			st.NoteWireBytes(d.LastFrameBytes())
			hdr, payload := d.RawFrame()
			if d == live && st.key != "" && !hist.Sticky() && !cs.rt.Owns(st.key) {
				done, herr := cs.tryHandoff(cw, live, st, hist, eb, hdr, payload)
				if done {
					closed = true
					return herr
				}
				// Owner unreachable or the key routed back here after a
				// MarkDown: the stream stays local, next frame re-checks.
			}
			hist.Append(hdr, payload)
			if jw != nil {
				var first, last uint64
				if n := eb.Len(); n > 0 {
					first, last = eb.Seq[0], eb.Seq[n-1]
				}
				loc, jerr := jw.Append(journal.Meta{
					Kind: journal.KindEvents, Stream: st.id, FirstSeq: first, LastSeq: last,
				}, hdr, payload)
				if jerr == nil {
					st.IngestBatchJournaled(eb, fr.SendNanos, loc)
					continue
				}
				e.opts.Logger.Warn("journal append failed; stream unjournaled", "stream", st.id, "err", jerr)
				jw = nil
			}
			st.IngestBatchAt(eb, fr.SendNanos)
		case wire.FrameGoodbye:
			st.PutBatch(eb)
			if jw != nil {
				hdr, payload := d.RawFrame()
				if _, jerr := jw.Append(journal.Meta{Kind: journal.KindGoodbye, Stream: st.id}, hdr, payload); jerr != nil {
					jw = nil
				}
			}
			closed = true
			sample, serr := st.Close()
			res := wire.Result{}
			if serr != nil {
				res.Err = serr.Error()
				if jw != nil {
					_, _ = jw.Append(journal.Meta{Kind: journal.KindError, Stream: st.id}, nil, []byte(res.Err))
				}
			} else {
				data, err := json.Marshal(sample)
				if err != nil {
					return fmt.Errorf("server: encode result: %w", err)
				}
				res.Sample = data
				if jw != nil {
					_, _ = jw.Append(journal.Meta{Kind: journal.KindResult, Stream: st.id}, nil, data)
				}
			}
			if lr := st.Latency(); lr != nil {
				if data, err := json.Marshal(lr); err == nil {
					res.Latency = data
				}
			}
			return f.WriteResult(res)
		default:
			st.PutBatch(eb)
			return fmt.Errorf("%w: unexpected %s frame inside a stream", wire.ErrBadFrame, fr.Type)
		}
	}
}

// tryHandoff attempts to move the stream to the key's current owner.
// fhdr/fpayload are the raw bytes of the just-read Events frame — the
// first frame past the ownership boundary, relayed to the new owner
// right after the history. Returns done=false (and keeps the stream
// local) when no reachable remote owner exists; an unreachable owner is
// marked down, so the next frame's re-check routes around it. Once the
// Handoff frame is written the transfer is committed: the local stream
// is released and the session relays the live tail.
func (cs *ClusterServer) tryHandoff(cw io.Writer, live *wire.Deframer, st *Stream, hist *cluster.History, eb *vm.EventBatch, fhdr, fpayload []byte) (bool, error) {
	owner, ok := cs.rt.Owner(st.key)
	if !ok || owner.ID == cs.rt.Self() {
		return false, nil
	}
	peer, err := cs.dial(owner.Addr)
	if err != nil {
		cs.rt.MarkDown(owner.ID)
		return false, nil
	}
	pf := wire.NewFramer(peer, 1)
	// Authenticate before shipping anything: the owner unlocks Handoff
	// only after a token-valid Assign, and its reply doubles as
	// anti-entropy — if it knows a newer view, adopt it and re-check
	// that this peer still owns the key before committing the transfer.
	pd := wire.NewDeframer(peer)
	pd.ExpectAssigns()
	if err := pf.WriteAssign(cs.assignment()); err != nil {
		peer.Close()
		cs.rt.MarkDown(owner.ID)
		return false, nil
	}
	fr, err := pd.ReadFrame()
	if err != nil || fr.Type != wire.FrameAssign {
		peer.Close()
		cs.rt.MarkDown(owner.ID)
		return false, nil
	}
	if !cs.tokenOK(fr.Assign.Token) {
		// Reachable but foreign — a config error, not a death. Keep the
		// stream local and leave the member up.
		peer.Close()
		return false, nil
	}
	if _, changed := cs.rt.ApplyAssignment(fr.Assign); changed {
		if now, ok := cs.rt.Owner(st.key); !ok || now.ID != owner.ID {
			peer.Close()
			return false, nil // next frame re-checks under the new view
		}
	}
	v := cs.rt.View()
	h := wire.Handoff{Key: st.key, Origin: cs.rt.Self(), Epoch: v.Epoch, History: hist.Bytes()}
	if err := pf.WriteHandoff(h); err != nil {
		peer.Close()
		if errors.Is(err, wire.ErrFrameTooLarge) {
			// An encode-side size failure says nothing about the peer's
			// health: do not mark it down. Retrying cannot shrink the
			// history, so pin the stream here.
			hist.MarkSticky()
			return false, nil
		}
		cs.rt.MarkDown(owner.ID)
		return false, nil
	}
	// Committed: the new owner holds the history. Drain the local
	// detectors (their state is now redundant — replay rebuilds it
	// exactly) and become a relay for the rest of the stream.
	defer peer.Close()
	cs.rt.NoteHandoffOut()
	cs.rt.HandoffStarted()
	defer cs.rt.HandoffDone()
	st.PutBatch(eb)
	st.Release()
	if err := writeRaw(peer, fhdr, fpayload); err != nil {
		return true, fmt.Errorf("cluster: relay to %s: %w", owner.ID, err)
	}
	cs.rt.NoteForwarded(1)
	return true, cs.relayFrames(live, cw, peer, pd)
}

// forward relays a misrouted stream to its owner from the Hello on.
// When every remote owner is unreachable (each gets marked down) the
// ring eventually routes the key back here and the stream is served
// locally — availability over placement. The same policy bounds relay
// chains: the Hello is re-emitted with its hop count bumped, and a
// Hello that has already crossed maxStreamHops relays is served where
// it is, so nodes with diverged views cannot bounce a stream between
// each other indefinitely.
func (cs *ClusterServer) forward(cw io.Writer, d *wire.Deframer, f *wire.Framer, hello wire.Hello) error {
	if hello.Hops >= maxStreamHops {
		return cs.serveLocal(cw, d, f, hello)
	}
	relayed := hello
	relayed.Hops++
	for {
		owner, ok := cs.rt.Owner(hello.Key)
		if !ok || owner.ID == cs.rt.Self() {
			return cs.serveLocal(cw, d, f, hello)
		}
		peer, err := cs.dial(owner.Addr)
		if err != nil {
			cs.rt.MarkDown(owner.ID)
			continue
		}
		err = func() error {
			defer peer.Close()
			pf := wire.NewFramer(peer, relayed.Threads)
			if err := pf.WriteHello(relayed); err != nil {
				return fmt.Errorf("cluster: relay to %s: %w", owner.ID, err)
			}
			cs.rt.NoteForwarded(1)
			return cs.relayFrames(d, cw, peer, wire.NewDeframer(peer))
		}()
		return err
	}
}

// relayFrames is the relay core: client frames go to the peer raw until
// the Goodbye, then the peer's reply — read through pd, which must be
// the deframer already wrapping the peer connection (it may hold
// buffered bytes from a handshake read) — comes back raw until a Result
// (success) or Error (the peer already said why; io.EOF tells ServeConn
// to hang up without writing a second error).
func (cs *ClusterServer) relayFrames(d *wire.Deframer, cw io.Writer, peer net.Conn, pd *wire.Deframer) error {
	for {
		t, hdr, payload, err := d.ReadRawFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("%w: connection closed mid-stream", wire.ErrTruncated)
			}
			return err
		}
		if err := writeRaw(peer, hdr, payload); err != nil {
			return fmt.Errorf("cluster: relay: %w", err)
		}
		cs.rt.NoteForwarded(1)
		if t == wire.FrameGoodbye {
			break
		}
	}
	pd.ExpectResults()
	for {
		t, hdr, payload, err := pd.ReadRawFrame()
		if err != nil {
			return fmt.Errorf("cluster: owner reply: %w", err)
		}
		if err := writeRaw(cw, hdr, payload); err != nil {
			return err
		}
		switch t {
		case wire.FrameResult:
			return nil
		case wire.FrameError:
			return io.EOF
		}
	}
}

// receiveHandoff adopts a stream transferred from a peer: replay the
// shipped history through fresh detectors (journaling it, so this
// node's journal holds the complete stream), then continue with the
// live frames the origin relays on the same connection. The Result goes
// back to the origin, which relays it to the client.
func (cs *ClusterServer) receiveHandoff(cw io.Writer, d *wire.Deframer, f *wire.Framer, h wire.Handoff) error {
	cs.rt.NoteHandoffIn()
	cs.rt.HandoffStarted()
	defer cs.rt.HandoffDone()

	hd := wire.NewDeframer(bytes.NewReader(h.History))
	fr, err := hd.ReadFrame()
	if err != nil {
		return fmt.Errorf("cluster: handoff history from %s: %w", h.Origin, err)
	}
	if fr.Type != wire.FrameHello {
		return fmt.Errorf("%w: handoff history must start with a hello, got %s", wire.ErrBadFrame, fr.Type)
	}
	e := cs.eng
	st, err := e.OpenStream(fr.Hello, fr.Hello.Key)
	if err != nil {
		return err
	}
	// Only the replay deframer gets the program here: the connection's
	// deframer adopts the replay's codec context (program included) when
	// the history runs out, because the live tail's deltas continue from
	// the last replayed frame.
	hd.SetProgram(st.w.Prog, st.w.NumThreads)
	// A fresh history wraps the incoming bytes, so the stream can hand
	// off again if the view moves again (chain handoff).
	hist := cluster.NewHistory(cs.historyLimit)
	hdr, payload := hd.RawFrame()
	hist.Append(hdr, payload)
	jw := e.opts.Journal
	if jw != nil {
		if _, jerr := jw.Append(journal.Meta{Kind: journal.KindHello, Stream: st.id}, hdr, payload); jerr != nil {
			e.opts.Logger.Warn("journal append failed; stream unjournaled", "stream", st.id, "err", jerr)
			jw = nil
		}
	}
	return cs.ingestLoop(cw, hd, d, f, st, hist, jw)
}

// writeRaw emits one raw frame (header then payload) to w.
func writeRaw(w io.Writer, hdr, payload []byte) error {
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ProbePeer dials one peer and exchanges membership views — failure
// detector and anti-entropy in a single round trip. An unreachable or
// unresponsive peer is marked down; a reachable peer's newer view is
// adopted (and it adopts ours symmetrically on its side).
func (cs *ClusterServer) ProbePeer(m cluster.Member) error {
	if m.ID == cs.rt.Self() {
		return nil
	}
	conn, err := cs.dial(m.Addr)
	if err != nil {
		cs.rt.MarkDown(m.ID)
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	f := wire.NewFramer(conn, 1)
	d := wire.NewDeframer(conn)
	d.ExpectAssigns()
	if err := f.WriteAssign(cs.assignment()); err != nil {
		cs.rt.MarkDown(m.ID)
		return err
	}
	fr, err := d.ReadFrame()
	if err != nil {
		cs.rt.MarkDown(m.ID)
		return err
	}
	if fr.Type != wire.FrameAssign {
		cs.rt.MarkDown(m.ID)
		return fmt.Errorf("%w: probe expected assign, got %s", wire.ErrBadFrame, fr.Type)
	}
	if !cs.tokenOK(fr.Assign.Token) {
		// Something answered, but not a member of this cluster: adopt
		// nothing. Leave the member up — demotion is for unreachable
		// nodes, and a token mismatch is a config error to surface.
		return fmt.Errorf("cluster: peer token mismatch from %q at %s", fr.Assign.Origin, m.Addr)
	}
	cs.rt.ApplyAssignment(fr.Assign)
	return nil
}

// ProbePeers probes every current member once.
func (cs *ClusterServer) ProbePeers() {
	for _, m := range cs.rt.View().Members {
		_ = cs.ProbePeer(m)
	}
}

// ClusterNode is one node's slice of a gathered cluster report.
type ClusterNode struct {
	ID      string `json:"id"`
	Samples int    `json:"samples"`
	Err     string `json:"err,omitempty"`
}

// ClusterReport is the scatter-gather answer: every reachable node's
// completed samples merged into one digest. Samples are sorted with
// report.SortSamples before merging, so the Merged section is
// independent of node order and byte-comparable against a
// single-process run over the same streams.
type ClusterReport struct {
	Self        string             `json:"self"`
	Epoch       uint64             `json:"epoch"`
	RingVersion uint64             `json:"ring_version"`
	Nodes       []ClusterNode      `json:"nodes"`
	Merged      report.MergedStats `json:"merged"`
}

// GatherReport fans out to every member's /samples endpoint and merges.
func (cs *ClusterServer) GatherReport(ctx context.Context) ClusterReport {
	v := cs.rt.View()
	cr := ClusterReport{Self: cs.rt.Self(), Epoch: v.Epoch, RingVersion: v.Ring().Version()}
	var all []*report.Sample
	for _, m := range v.Members {
		node := ClusterNode{ID: m.ID}
		var samples []*report.Sample
		var err error
		if m.ID == cs.rt.Self() {
			samples = cs.eng.Samples()
		} else {
			samples, err = fetchSamples(ctx, m.HTTPAddr)
		}
		if err != nil {
			node.Err = err.Error()
		} else {
			node.Samples = len(samples)
			all = append(all, samples...)
		}
		cr.Nodes = append(cr.Nodes, node)
	}
	report.SortSamples(all)
	cr.Merged = report.MergeSamples(all)
	return cr
}

// fetchSamples pulls one peer's raw sample list over its HTTP plane.
func fetchSamples(ctx context.Context, httpAddr string) ([]*report.Sample, error) {
	if httpAddr == "" {
		return nil, errors.New("peer has no http address")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+httpAddr+"/samples", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer /samples: %s", resp.Status)
	}
	var samples []*report.Sample
	if err := json.NewDecoder(resp.Body).Decode(&samples); err != nil {
		return nil, err
	}
	return samples, nil
}

// GatherHandler serves the merged cluster report — the cluster-mode
// /report, mounted next to the engine's node-local /report/local.
func (cs *ClusterServer) GatherHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 15*time.Second)
		defer cancel()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cs.GatherReport(ctx))
	})
}
