package server

import (
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/report"
)

// Violation anchors: the joint between live detection and the durable
// journal. When a shard worker steps a journaled batch and the detector
// count moves, the worker records the journal location of exactly that
// batch's record. A violation report therefore carries its replay
// coordinates end-to-end — seek the journal to (segment, offset), read
// one CRC-checked record, and the raw wire frame whose events produced
// the verdict is in hand.

// Anchor ties one detected violation to the journal record that
// produced it.
type Anchor struct {
	// Detector is "svd" (strict-2PL serializability violation) or "frd"
	// (flag race).
	Detector string `json:"detector"`

	// Index is the violation's ordinal in the detector's pre-cap count;
	// when below the retention cap it indexes the detector's retained
	// violation and witness slices.
	Index int `json:"index"`

	// Loc addresses the journaled Events record whose batch moved the
	// detector: journal.Reader.ReadAt(Loc) returns the raw wire frame.
	Loc journal.Loc `json:"loc"`

	// FirstSeq and LastSeq bound the batch's event sequence numbers —
	// the range an offline pass narrows to.
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`

	// Node names the cluster node whose journal holds Loc. Empty outside
	// cluster mode — a single daemon's anchors all live in its own
	// journal, so the field would only be noise there.
	Node string `json:"node,omitempty"`

	// Witness is the flight-recorder witness paired with this violation
	// when the stream ran with witnesses on and the index is within the
	// retention cap.
	Witness *obs.Witness `json:"witness,omitempty"`
}

// StreamAnchors is one completed stream's violation anchors.
type StreamAnchors struct {
	Stream   uint64   `json:"stream"`
	Workload string   `json:"workload"`
	Seed     uint64   `json:"seed"`
	Anchors  []Anchor `json:"anchors"`
}

// JournalReport is the /report journal section: store health plus every
// completed stream's anchors.
type JournalReport struct {
	Stats   journal.Stats   `json:"stats"`
	Streams []StreamAnchors `json:"streams,omitempty"`
}

// attachWitnesses pairs a close-time sample's retained witnesses with
// the stream's anchors, index-for-index per detector. Witness retention
// and violation retention share a cap and an order (both append in
// detection order), so Index addresses both slices.
func attachWitnesses(anchors []Anchor, sample *report.Sample) {
	if sample == nil {
		return
	}
	for i := range anchors {
		a := &anchors[i]
		var ws []obs.Witness
		switch a.Detector {
		case "svd":
			ws = sample.SVDWitnesses
		case "frd":
			ws = sample.FRDWitnesses
		}
		if a.Index < len(ws) {
			a.Witness = &ws[a.Index]
		}
	}
}

// journalReport assembles the Report's journal section. Caller must not
// hold e.mu.
func (e *Engine) journalReport() *JournalReport {
	if e.opts.Journal == nil {
		return nil
	}
	jr := &JournalReport{Stats: e.opts.Journal.Stats()}
	e.mu.Lock()
	jr.Streams = append(jr.Streams, e.anchors...)
	e.mu.Unlock()
	return jr
}
