package server

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/offline"
	"repro/internal/vm"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// Journal integration tests: serve real traffic over loopback with a
// journal attached, then verify the capture replays to byte-identical
// verdicts and feeds the offline differential.

// serveJournaled runs the given workloads through a journaled engine
// over a net.Pipe and returns after every stream completes. Detector
// options are the defaults, witnesses on, matching replayEngine below.
func serveJournaled(t *testing.T, jw *journal.Writer, cases []struct {
	name string
	seed uint64
}) {
	t.Helper()
	e := New(Options{Shards: 2, Journal: jw, StreamBase: jw.StreamBase()})
	defer shutdown(t, e)

	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() {
		e.ServeConn(srv)
		close(sessionDone)
	}()
	c := NewClient(cli)
	for _, tc := range cases {
		w, err := workloads.ByName(tc.name, 1, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.RunSample(w, tc.seed, ReplayOptions{Witness: true, Scale: 1}); err != nil {
			t.Fatalf("%s seed %d: %v", tc.name, tc.seed, err)
		}
	}
	cli.Close()
	select {
	case <-sessionDone:
	case <-time.After(5 * time.Second):
		t.Fatal("session did not end after client hangup")
	}

	// Satellite: the engine report carries the journal section with
	// per-stream anchors (queue-buggy produces violations).
	rep := e.Report()
	if rep.Journal == nil {
		t.Fatal("journaled engine report has no journal section")
	}
	if rep.Journal.Stats.AppendedRecords == 0 {
		t.Fatal("journal stats report no appends after a served run")
	}
	var anchored int
	for _, sa := range rep.Journal.Streams {
		anchored += len(sa.Anchors)
		for _, a := range sa.Anchors {
			if a.Detector != "svd" && a.Detector != "frd" {
				t.Fatalf("anchor with bad detector: %+v", a)
			}
			if a.LastSeq < a.FirstSeq {
				t.Fatalf("anchor seq range inverted: %+v", a)
			}
		}
	}
	if anchored == 0 {
		t.Fatal("no violation anchors recorded for buggy workloads")
	}
	// Anchors pair with witnesses when retained (streams ran Witness).
	var withWitness int
	for _, sa := range rep.Journal.Streams {
		for _, a := range sa.Anchors {
			if a.Witness != nil {
				withWitness++
			}
		}
	}
	if withWitness == 0 {
		t.Fatal("no anchor carries its witness")
	}
}

// replayEngine builds the engine a replay must use: same detector
// options as serveJournaled's live engine.
func replayEngine() *Engine {
	return New(Options{Shards: 1})
}

func TestJournaledServeThenReplayVerify(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 5},
		{"queue-fixed", 3},
		{"apache-buggy", 2},
	}
	p := journal.InMemory()
	jw, err := journal.OpenWriter(p, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serveJournaled(t, jw, cases)
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := journal.OpenReader(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.Streams()); got != len(cases) {
		t.Fatalf("journal holds %d streams, want %d", got, len(cases))
	}

	e := replayEngine()
	defer shutdown(t, e)
	sum, err := e.ReplayJournal(r)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Replayed != len(cases) || !sum.Ok() {
		js, _ := json.MarshalIndent(sum, "", "  ")
		t.Fatalf("replay summary not clean:\n%s", js)
	}
	if sum.Matched != len(cases) {
		js, _ := json.MarshalIndent(sum, "", "  ")
		t.Fatalf("matched %d of %d:\n%s", sum.Matched, len(cases), js)
	}
}

// TestReplayAcrossRestart simulates the SIGKILL drill in-process: serve
// half the load into a journal, abandon the writer without Close (the
// crash), reopen the journal (recovery), serve the rest with the
// recovered StreamBase, then verify the combined capture end to end.
func TestReplayAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	p, err := journal.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	jw, err := journal.OpenWriter(p, journal.Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	serveJournaled(t, jw, []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 5},
		{"queue-fixed", 3},
	})
	// Crash: no jw.Close(). FsyncInterval < 0 means every append hit
	// the file, as a SIGKILL after the last batch would leave it.

	jw2, err := journal.OpenWriter(p, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jw2.StreamBase() < 2 {
		t.Fatalf("StreamBase after recovery = %d, want >= 2", jw2.StreamBase())
	}
	if rec := jw2.Recovery(); rec.Repaired == 0 {
		t.Fatalf("recovery repaired nothing: %+v", rec)
	}
	serveJournaled(t, jw2, []struct {
		name string
		seed uint64
	}{
		{"apache-buggy", 2},
	})
	if err := jw2.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := journal.OpenReader(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	streams := r.Streams()
	if len(streams) != 3 {
		t.Fatalf("journal holds %d streams after restart, want 3", len(streams))
	}
	seen := map[uint64]bool{}
	for _, s := range streams {
		if seen[s.Stream] {
			t.Fatalf("stream id %d reused across restart", s.Stream)
		}
		seen[s.Stream] = true
	}

	e := replayEngine()
	defer shutdown(t, e)
	sum, err := e.ReplayJournal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() || sum.Matched != 3 {
		js, _ := json.MarshalIndent(sum, "", "  ")
		t.Fatalf("post-restart replay not clean:\n%s", js)
	}
}

// TestReplayIncompleteStream journals a stream whose producer hangs up
// without a goodbye (the mid-flight kill) and expects replay to step
// its events and report the stream incomplete — not diverged, not an
// error.
func TestReplayIncompleteStream(t *testing.T) {
	p := journal.InMemory()
	jw, err := journal.OpenWriter(p, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serveJournaled(t, jw, []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 5},
	})

	// Hand-drive a second stream on the wire and hang up mid-stream.
	// This second engine shares the first one's journal writer, so it
	// gets a disjoint id range — StreamBase is the caller's contract.
	e := New(Options{Shards: 1, Journal: jw, StreamBase: 1000})
	defer shutdown(t, e)
	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() {
		e.ServeConn(srv)
		close(sessionDone)
	}()
	w, err := workloads.ByName("queue-buggy", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := wire.NewFramer(cli, w.NumThreads)
	if err := f.WriteHello(wire.Hello{
		Version: wire.Version, Threads: w.NumThreads, Workload: w.Name, Scale: 1, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := w.NewVM(7)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachBatch(batchFunc(func(evs []vm.Event) {
		if err := f.WriteEvents(evs); err != nil {
			t.Error(err)
		}
	}))
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	cli.Close() // no goodbye: the session aborts the stream
	select {
	case <-sessionDone:
	case <-time.After(5 * time.Second):
		t.Fatal("session did not end after hangup")
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := journal.OpenReader(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	streams := r.Streams()
	if len(streams) != 2 {
		t.Fatalf("journal holds %d streams, want 2", len(streams))
	}

	re := replayEngine()
	defer shutdown(t, re)
	sum, err := re.ReplayJournal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Ok() || sum.Matched != 1 || sum.Incomplete != 1 {
		js, _ := json.MarshalIndent(sum, "", "  ")
		t.Fatalf("replay summary:\n%s", js)
	}
	for _, rs := range sum.Streams {
		if rs.Incomplete && rs.Events == 0 {
			t.Fatalf("incomplete stream replayed no events: %+v", rs)
		}
	}
}

// TestJournalObservability scrapes a journaled engine's metrics and
// statusz: the journal families must appear on /metrics and the panel
// on /statusz, and an unjournaled engine must emit neither.
func TestJournalObservability(t *testing.T) {
	p := journal.InMemory()
	jw, err := journal.OpenWriter(p, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	e := New(Options{Shards: 1, Journal: jw, StreamBase: jw.StreamBase()})
	defer shutdown(t, e)

	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() {
		e.ServeConn(srv)
		close(sessionDone)
	}()
	c := NewClient(cli)
	w, err := workloads.ByName("queue-fixed", 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunSample(w, 9, ReplayOptions{Scale: 1}); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	<-sessionDone

	var sb strings.Builder
	o := obs.NewOpenMetricsWriter(&sb, "svdd")
	e.WriteMetrics(o)
	if err := o.EOF(); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, fam := range []string{
		"journal_segments", "journal_active_bytes", "journal_total_bytes",
		"journal_appended_records", "journal_appended_bytes",
		"journal_rotations", "journal_recycled_segments",
		"journal_append_errors", "journal_fsync_ns",
	} {
		if !strings.Contains(body, "svdd_"+fam) {
			t.Errorf("metrics missing family %s", fam)
		}
	}

	rr := httptest.NewRecorder()
	e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
	if !strings.Contains(rr.Body.String(), "<h2>Journal</h2>") {
		t.Error("statusz html has no journal panel")
	}
	rr = httptest.NewRecorder()
	e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz?format=text", nil))
	if !strings.Contains(rr.Body.String(), "journal dir=") {
		t.Errorf("statusz text has no journal line:\n%s", rr.Body.String())
	}

	// The families are conditional: a journal-less engine stays silent.
	e2 := New(Options{Shards: 1})
	defer shutdown(t, e2)
	sb.Reset()
	o = obs.NewOpenMetricsWriter(&sb, "svdd")
	e2.WriteMetrics(o)
	if err := o.EOF(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "journal_") {
		t.Error("unjournaled engine emits journal families")
	}
	rr = httptest.NewRecorder()
	e2.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
	if strings.Contains(rr.Body.String(), "<h2>Journal</h2>") {
		t.Error("unjournaled statusz shows a journal panel")
	}
}

// TestDecodeAndDifferential decodes a journaled stream to rows and runs
// the offline differential over it: the offline reference and the
// default online sweep must agree that the buggy queue violates and
// produce overlapping static sites.
func TestDecodeAndDifferential(t *testing.T) {
	p := journal.InMemory()
	jw, err := journal.OpenWriter(p, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serveJournaled(t, jw, []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 5},
	})
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := journal.OpenReader(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	e := replayEngine()
	defer shutdown(t, e)
	stream := r.Streams()[0].Stream
	w, evs, err := e.DecodeStreamEvents(r, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("decoded no events")
	}
	rep, err := offline.Differential(w.Prog, w.NumThreads, evs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OfflineViolations == 0 {
		t.Fatal("offline reference found no violations in queue-buggy")
	}
	if len(rep.Rows) != len(offline.DefaultConfigs()) {
		t.Fatalf("differential ran %d configs", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Config.Detector == "svd" && row.Violations == 0 {
			t.Fatalf("config %s found no violations", row.Config.Name)
		}
		if row.Config.Detector == "svd" && row.SharedSites == 0 {
			t.Fatalf("config %s shares no sites with the offline reference", row.Config.Name)
		}
		if row.ElapsedNs <= 0 {
			t.Fatalf("config %s has no timing", row.Config.Name)
		}
	}
}


// TestReplayJournalAnchored: a capture served WITHOUT witnesses still
// anchors its violations; the anchored replay re-detects it on a
// ForceWitness engine and re-derives a witness for every anchor, at the
// same journal coordinates the live daemon recorded. This is svdreplay
// -anchors in miniature — and the reason it runs on its own engine,
// since forcing witnesses changes the sample encoding -verify compares.
func TestReplayJournalAnchored(t *testing.T) {
	p := journal.InMemory()
	jw, err := journal.OpenWriter(p, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Shards: 2, Journal: jw, StreamBase: jw.StreamBase()})
	defer shutdown(t, e)
	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() {
		e.ServeConn(srv)
		close(sessionDone)
	}()
	c := NewClient(cli)
	w, err := workloads.ByName("queue-buggy", 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunSample(w, 9, ReplayOptions{Scale: 1}); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	<-sessionDone

	live := e.Report().Journal.Streams
	if len(live) != 1 || len(live[0].Anchors) == 0 {
		t.Fatalf("live engine recorded no anchors: %+v", live)
	}
	for _, a := range live[0].Anchors {
		if a.Witness != nil {
			t.Fatal("witnessless serve attached a witness")
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := journal.OpenReader(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ae := New(Options{Shards: 1, ForceWitness: true})
	defer shutdown(t, ae)
	streams, err := ae.ReplayJournalAnchored(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 {
		t.Fatalf("anchored replay covered %d streams, want 1", len(streams))
	}
	as := streams[0]
	if as.Err != "" || as.Incomplete {
		t.Fatalf("anchored replay not clean: %+v", as)
	}
	if len(as.Anchors) != len(live[0].Anchors) {
		t.Fatalf("replay anchored %d violations, live anchored %d", len(as.Anchors), len(live[0].Anchors))
	}
	for i, a := range as.Anchors {
		la := live[0].Anchors[i]
		if a.Detector != la.Detector || a.Index != la.Index || a.Loc != la.Loc ||
			a.FirstSeq != la.FirstSeq || a.LastSeq != la.LastSeq {
			t.Fatalf("anchor %d diverges from live: replay %+v live %+v", i, a, la)
		}
		if a.Witness == nil {
			t.Fatalf("anchor %d has no re-derived witness", i)
		}
		if a.Witness.Detector != a.Detector {
			t.Fatalf("anchor %d: witness detector %q != %q", i, a.Witness.Detector, a.Detector)
		}
		m, _, err := r.ReadAt(a.Loc)
		if err != nil {
			t.Fatalf("anchor %d does not resolve: %v", i, err)
		}
		if m.Kind != journal.KindEvents || m.FirstSeq != a.FirstSeq || m.LastSeq != a.LastSeq {
			t.Fatalf("anchor %d resolves to wrong record: %+v vs %+v", i, m, a)
		}
	}
}
