package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/workloads"
)

// loopback differential tests: the whole point of the service is that a
// sample detected over the wire is bit-identical to one detected
// in-process. These tests run the full stack — client VM replay, delta
// codec, framing, session, shard worker, report — and diff the JSON.

func inProcess(t *testing.T, name string, seed uint64) *report.Sample {
	t.Helper()
	w, err := workloads.ByName(name, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := report.Run(w, seed, report.Options{Witness: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func diffSamples(t *testing.T, label string, got, want *report.Sample) {
	t.Helper()
	gotJS, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJS, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJS) == string(wantJS) {
		return
	}
	i := 0
	for i < len(gotJS) && i < len(wantJS) && gotJS[i] == wantJS[i] {
		i++
	}
	lo := max(0, i-60)
	t.Errorf("%s: wire sample differs from in-process at byte %d:\n got: ...%s\nwant: ...%s",
		label, i, gotJS[lo:min(len(gotJS), i+100)], wantJS[lo:min(len(wantJS), i+100)])
}

// TestLoopbackDifferential replays several workloads through a client
// and a serving engine joined by a net.Pipe — every byte crosses the
// wire codec — and requires each served sample to match report.Run on a
// freshly rebuilt workload, bit for bit. Multiple streams ride one
// connection, exercising the session's stream loop.
func TestLoopbackDifferential(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 5},
		{"queue-fixed", 3},
		{"apache-buggy", 2},
		{"mysql-prepared-buggy", 11},
	}
	e := New(Options{Shards: 2})
	defer shutdown(t, e)

	cli, srv := net.Pipe()
	sessionDone := make(chan struct{})
	go func() {
		e.ServeConn(srv)
		close(sessionDone)
	}()
	c := NewClient(cli)

	for _, tc := range cases {
		w, err := workloads.ByName(tc.name, 1, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := c.RunSample(w, tc.seed, ReplayOptions{Witness: true, Scale: 1})
		if err != nil {
			t.Fatalf("%s seed %d: %v", tc.name, tc.seed, err)
		}
		if stats.Events == 0 || stats.Batches == 0 {
			t.Fatalf("%s seed %d: replay sent no events", tc.name, tc.seed)
		}
		diffSamples(t, fmt.Sprintf("%s seed %d", tc.name, tc.seed), got, inProcess(t, tc.name, tc.seed))
	}

	cli.Close()
	select {
	case <-sessionDone:
	case <-time.After(5 * time.Second):
		t.Fatal("session did not end after client hangup")
	}
	if c := e.Counters(); c.StreamsClosed != uint64(len(cases)) || c.BatchesShed != 0 {
		t.Errorf("counters: %+v", c)
	}
}

// TestLoopbackConcurrentTCP runs several clients against a listening
// engine over localhost TCP while another goroutine hammers the query
// surface; every served sample must still match its in-process twin.
// Under -race this doubles as the aliasing check on the merged witness
// digest (report.MergeSamples clones while shards keep publishing).
func TestLoopbackConcurrentTCP(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 21},
		{"queue-fixed", 22},
		{"apache-buggy", 23},
		{"apache-fixed", 24},
	}
	want := make([]*report.Sample, len(cases))
	for i, tc := range cases {
		want[i] = inProcess(t, tc.name, tc.seed)
	}

	e := New(Options{Shards: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- e.Serve(ln) }()

	stopPolling := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stopPolling:
				return
			default:
				rep := e.Report()
				if rep.Shards != 4 {
					t.Error("report lost its shard count")
					return
				}
			}
		}
	}()

	var clients sync.WaitGroup
	for i, tc := range cases {
		clients.Add(1)
		go func() {
			defer clients.Done()
			c, conn, err := Dial(ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			w, err := workloads.ByName(tc.name, 1, tc.seed)
			if err != nil {
				t.Error(err)
				return
			}
			got, _, err := c.RunSample(w, tc.seed, ReplayOptions{Witness: true, Scale: 1})
			if err != nil {
				t.Errorf("%s seed %d: %v", tc.name, tc.seed, err)
				return
			}
			diffSamples(t, fmt.Sprintf("%s seed %d", tc.name, tc.seed), got, want[i])
		}()
	}
	clients.Wait()
	close(stopPolling)
	pollers.Wait()

	if got := e.Report(); got.Merged.Samples != len(cases) {
		t.Errorf("merged %d samples, want %d", got.Merged.Samples, len(cases))
	}
	ln.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
