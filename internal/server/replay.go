package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/journal"
	"repro/internal/vm"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// Journal replay: re-serve captured traffic through a live engine and
// hold the fresh verdicts against the journaled ones, byte for byte.
// Because the journal stores the exact wire bytes the deframer
// validated, replay runs the identical decode path (ReadFrameInto into
// borrowed batches) and the identical detector path (shard workers,
// report.Classify) as the original serve — any divergence means the
// pipeline is not deterministic, which is precisely what -verify exists
// to catch.

// ReplayedStream is one journaled stream's replay outcome.
type ReplayedStream struct {
	Stream   uint64 `json:"stream"`
	Workload string `json:"workload,omitempty"`
	Events   uint64 `json:"events"`

	// Incomplete marks a stream with no journaled Goodbye — the
	// producer (or the daemon) died mid-stream. Its events still replay
	// through the detectors, but there is no verdict to verify against.
	Incomplete bool `json:"incomplete,omitempty"`

	// Verified is set when a journaled verdict existed and was compared;
	// Match reports byte equality of the sample JSON.
	Verified bool `json:"verified,omitempty"`
	Match    bool `json:"match,omitempty"`

	// Divergence describes the first mismatch when Verified && !Match.
	Divergence string `json:"divergence,omitempty"`

	// Err is a replay-side failure (decode error, engine refusal).
	Err string `json:"err,omitempty"`
}

// ReplaySummary aggregates a journal replay.
type ReplaySummary struct {
	Streams    []ReplayedStream `json:"streams"`
	Replayed   int              `json:"replayed"`
	Verified   int              `json:"verified"`
	Matched    int              `json:"matched"`
	Diverged   int              `json:"diverged"`
	Incomplete int              `json:"incomplete"`
	Errors     int              `json:"errors"`
}

// Ok reports a clean replay: nothing diverged and nothing errored.
func (s *ReplaySummary) Ok() bool { return s.Diverged == 0 && s.Errors == 0 }

// ReplayJournal re-serves every journaled stream through e, comparing
// each completed stream's fresh verdict against the journaled one. The
// engine must be configured with the live daemon's detector options or
// verdicts will legitimately differ. Streams replay sequentially, in
// stream-id order.
func (e *Engine) ReplayJournal(r *journal.Reader) (*ReplaySummary, error) {
	sum := &ReplaySummary{}
	for _, si := range r.Streams() {
		rs := e.replayStream(r, si)
		sum.Streams = append(sum.Streams, rs)
		sum.Replayed++
		switch {
		case rs.Err != "":
			sum.Errors++
		case rs.Incomplete:
			sum.Incomplete++
		case rs.Verified && rs.Match:
			sum.Verified++
			sum.Matched++
		case rs.Verified:
			sum.Verified++
			sum.Diverged++
		}
	}
	return sum, nil
}

// replayStream runs one journaled stream through the engine.
func (e *Engine) replayStream(r *journal.Reader, si journal.StreamInfo) ReplayedStream {
	rs := ReplayedStream{Stream: si.Stream}
	if !si.HasHello {
		rs.Err = "journal holds no hello for this stream"
		return rs
	}
	d := wire.NewDeframer(r.StreamReader(si.Stream))
	fr, err := d.ReadFrame()
	if err != nil || fr.Type != wire.FrameHello {
		rs.Err = fmt.Sprintf("replay hello: %v (type %v)", err, fr.Type)
		return rs
	}
	st, err := e.OpenStream(fr.Hello, "")
	if err != nil {
		rs.Err = err.Error()
		return rs
	}
	rs.Workload = st.w.Name
	d.SetProgram(st.w.Prog, st.w.NumThreads)

	closed := false
	defer func() {
		if !closed {
			st.Abort()
		}
	}()
	for {
		eb := st.GetBatch()
		fr, err := d.ReadFrameInto(eb)
		if err != nil {
			st.PutBatch(eb)
			if errors.Is(err, io.EOF) {
				// The journal ends mid-stream: the capture was cut by a
				// crash. The events were still stepped — the detectors ran
				// — but there is no goodbye and no verdict.
				closed = true
				st.Abort()
				rs.Incomplete = true
				return rs
			}
			rs.Err = err.Error()
			return rs
		}
		switch fr.Type {
		case wire.FrameEvents:
			rs.Events += uint64(eb.Len())
			// Replay is not a live measurement: the captured send stamps
			// would register as enormous wire-to-verdict latencies, so
			// they are deliberately not forwarded.
			st.IngestBatchAt(eb, 0)
		case wire.FrameGoodbye:
			st.PutBatch(eb)
			closed = true
			sample, serr := st.Close()
			liveSample, liveErr, ok := r.Result(si.Stream)
			if !ok {
				// Goodbye journaled but the daemon died before the result
				// record: nothing to verify against.
				rs.Incomplete = true
				return rs
			}
			if liveErr != "" {
				// The live stream ended in a terminal error (overload
				// shed). Replay under PolicyBlock cannot reproduce a shed;
				// report it as an error outcome, not a divergence.
				rs.Err = fmt.Sprintf("live verdict was an error: %s", liveErr)
				return rs
			}
			if serr != nil {
				rs.Verified = true
				rs.Divergence = fmt.Sprintf("replay errored where live succeeded: %v", serr)
				return rs
			}
			fresh, err := json.Marshal(sample)
			if err != nil {
				rs.Err = fmt.Sprintf("encode replay sample: %v", err)
				return rs
			}
			rs.Verified = true
			rs.Match = string(fresh) == string(liveSample)
			if !rs.Match {
				rs.Divergence = describeDivergence(liveSample, fresh)
			}
			return rs
		default:
			st.PutBatch(eb)
			rs.Err = fmt.Sprintf("unexpected %s frame in journaled stream", fr.Type)
			return rs
		}
	}
}

// describeDivergence pinpoints the first differing byte of two sample
// encodings, with a window of context from each.
func describeDivergence(live, fresh []byte) string {
	n := len(live)
	if len(fresh) < n {
		n = len(fresh)
	}
	i := 0
	for i < n && live[i] == fresh[i] {
		i++
	}
	window := func(b []byte) string {
		lo, hi := i-20, i+20
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("first differing byte at %d of %d/%d: live %q vs replay %q",
		i, len(live), len(fresh), window(live), window(fresh))
}

// DecodeStreamEvents decodes one journaled stream's events into rows —
// the offline differential's input. The hello resolves through the
// engine's workload registry exactly as a served stream would; the
// returned program and thread count parameterize the offline recorder.
func (e *Engine) DecodeStreamEvents(r *journal.Reader, stream uint64) (*workloads.Workload, []vm.Event, error) {
	d := wire.NewDeframer(r.StreamReader(stream))
	fr, err := d.ReadFrame()
	if err != nil {
		return nil, nil, fmt.Errorf("server: replay hello: %w", err)
	}
	if fr.Type != wire.FrameHello {
		return nil, nil, fmt.Errorf("server: journaled stream %d opens with %s, not hello", stream, fr.Type)
	}
	w, err := e.resolve(fr.Hello)
	if err != nil {
		return nil, nil, err
	}
	d.SetProgram(w.Prog, w.NumThreads)
	var evs []vm.Event
	for {
		fr, err := d.ReadFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return w, evs, nil // cut capture: serve what decoded
			}
			return nil, nil, err
		}
		switch fr.Type {
		case wire.FrameEvents:
			evs = append(evs, fr.Events...)
		case wire.FrameGoodbye:
			return w, evs, nil
		default:
			return nil, nil, fmt.Errorf("server: unexpected %s frame in journaled stream %d", fr.Type, stream)
		}
	}
}

// Anchored replay: re-detect a capture with violation anchoring (and,
// when the engine runs with Options.ForceWitness, flight-recorder
// witnesses) regardless of what the original producer asked for. This
// is the forensic half of the journal: a daemon that served a stream
// without -witness still anchored its violations, and an anchored
// replay re-derives the witness evidence for each of them after the
// fact. It deliberately does NOT byte-compare against the journaled
// verdict — forcing witnesses on a witnessless capture legitimately
// changes the sample encoding, which is why svdreplay runs -verify and
// -anchors on separate engines.

// AnchoredStream is one journaled stream's re-detection outcome: its
// violation anchors, each carrying the journal coordinates of the batch
// that produced it and (with ForceWitness) its re-derived witness.
type AnchoredStream struct {
	Stream   uint64   `json:"stream"`
	Workload string   `json:"workload,omitempty"`
	Seed     uint64   `json:"seed"`
	Events   uint64   `json:"events"`
	Anchors  []Anchor `json:"anchors,omitempty"`

	// Incomplete marks a cut capture: anchors up to the cut are still
	// produced, but witnesses cannot attach (no close-time sample).
	Incomplete bool   `json:"incomplete,omitempty"`
	Err        string `json:"err,omitempty"`
}

// ReplayJournalAnchored re-detects every journaled stream with each
// Events batch anchored to its original journal record, returning the
// per-stream anchors. Streams replay sequentially, in stream-id order.
func (e *Engine) ReplayJournalAnchored(r *journal.Reader) ([]AnchoredStream, error) {
	var out []AnchoredStream
	for _, si := range r.Streams() {
		out = append(out, e.replayStreamAnchored(r, si))
	}
	return out, nil
}

func (e *Engine) replayStreamAnchored(r *journal.Reader, si journal.StreamInfo) AnchoredStream {
	as := AnchoredStream{Stream: si.Stream}
	if !si.HasHello {
		as.Err = "journal holds no hello for this stream"
		return as
	}
	locs := r.StreamEventLocs(si.Stream)
	d := wire.NewDeframer(r.StreamReader(si.Stream))
	fr, err := d.ReadFrame()
	if err != nil || fr.Type != wire.FrameHello {
		as.Err = fmt.Sprintf("replay hello: %v (type %v)", err, fr.Type)
		return as
	}
	st, err := e.OpenStream(fr.Hello, "")
	if err != nil {
		as.Err = err.Error()
		return as
	}
	as.Workload, as.Seed = st.w.Name, st.seed
	d.SetProgram(st.w.Prog, st.w.NumThreads)

	// The close path appends this stream's StreamAnchors to e.anchors;
	// replay is sequential, so the entries past this mark are ours.
	e.mu.Lock()
	mark := len(e.anchors)
	e.mu.Unlock()

	closed := false
	defer func() {
		if !closed {
			st.Abort()
		}
	}()
	k := 0
	for {
		eb := st.GetBatch()
		fr, err := d.ReadFrameInto(eb)
		if err != nil {
			st.PutBatch(eb)
			if !errors.Is(err, io.EOF) {
				as.Err = err.Error()
				return as
			}
			// Cut capture: close out what was stepped so the anchors
			// publish; without a sample no witnesses attach.
			closed = true
			st.Abort()
			as.Incomplete = true
			break
		}
		switch fr.Type {
		case wire.FrameEvents:
			as.Events += uint64(eb.Len())
			if k >= len(locs) {
				st.PutBatch(eb)
				as.Err = "more events frames than journaled event records"
				return as
			}
			st.IngestBatchJournaled(eb, 0, locs[k])
			k++
		case wire.FrameGoodbye:
			st.PutBatch(eb)
			closed = true
			_, _ = st.Close()
		default:
			st.PutBatch(eb)
			as.Err = fmt.Sprintf("unexpected %s frame in journaled stream", fr.Type)
			return as
		}
		if closed {
			break
		}
	}
	e.mu.Lock()
	for _, sa := range e.anchors[mark:] {
		as.Anchors = append(as.Anchors, sa.Anchors...)
	}
	e.mu.Unlock()
	return as
}
