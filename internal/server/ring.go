package server

import (
	"sync/atomic"

	"repro/internal/vm"
)

// ringSize is the per-stream recycle ring capacity. Must be a power of
// two. 32 slots at the default batch cap bounds ring-held memory per
// stream to ~half a megabyte while comfortably covering the number of
// batches a worker can finish between two session reads.
const ringSize = 32

// batchRing is a single-producer single-consumer ring of recycled
// batch buffers: the shard worker (producer) pushes batches it has
// finished stepping, the stream's session (consumer) pops them for the
// next ReadFrameInto. It is the return half of the zero-copy ingest
// path — the forward half is the shard's job queue — and exists so a
// stream in steady state circulates a fixed set of buffers between
// session and worker without touching the shard-wide sync.Pool (and
// its per-P locking) on every batch.
//
// The SPSC discipline is load-bearing: only the owning shard worker
// may push, only the stream's session goroutine may pop. head and tail
// are monotonic; atomic loads/stores give the usual release/acquire
// pairing (the consumer observing tail=t+1 sees the slot write that
// preceded it). The sole exception to the discipline is the close job:
// by the time the worker processes it the session is parked in
// Close/Abort waiting on st.done — the job channel send gives the
// happens-before — so the worker may drain the ring back to the pool.
type batchRing struct {
	slots [ringSize]*vm.EventBatch
	head  atomic.Uint64 // next pop (consumer-owned)
	tail  atomic.Uint64 // next push (producer-owned)
}

// push hands a buffer to the consumer side; false means the ring is
// full and the caller should fall back to the shard pool.
func (r *batchRing) push(eb *vm.EventBatch) bool {
	t := r.tail.Load()
	if t-r.head.Load() == ringSize {
		return false
	}
	r.slots[t&(ringSize-1)] = eb
	r.tail.Store(t + 1)
	return true
}

// pop takes a recycled buffer; nil means the ring is empty.
func (r *batchRing) pop() *vm.EventBatch {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	i := h & (ringSize - 1)
	eb := r.slots[i]
	r.slots[i] = nil
	r.head.Store(h + 1)
	return eb
}
