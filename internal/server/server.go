// Package server is the detection service's ingestion engine: it turns
// wire-format event streams into detector work spread across shards.
//
// The paper positions SVD as an always-on monitor for server programs
// (§1); this package is the piece that lets one long-running daemon
// monitor many executions at once. The design splits three concerns:
//
//   - sessions (session.go) speak the wire protocol on one connection,
//     decoding frames and pushing decoded batches into the engine;
//   - the shard router assigns each stream to one of N detector workers
//     (round-robin over engine-assigned stream ids, or an FNV hash of
//     the client's stream key when it supplies one), so one stream's
//     events are always processed by one goroutine in order while
//     distinct streams run in parallel;
//   - shard workers own all detector state. Each worker pulls jobs off
//     a bounded queue and runs the columnar detector path —
//     svd.Detector and frd.Detector StepColumns, bit-identical to the
//     per-event code an in-process report.Run drives — then classifies
//     the finished detectors with report.Classify, so a served result
//     is bit-identical to a local one.
//
// # Batch ownership
//
// The ingest hot path is zero-copy: the wire decoder fills a columnar
// vm.EventBatch in place (Deframer.ReadFrameInto) and that same buffer
// travels to the shard worker. No []vm.Event is materialized and no
// copy-on-enqueue happens. That works only because buffer ownership is
// explicit and linear:
//
//  1. The session borrows an empty batch with Stream.GetBatch — from
//     the stream's recycle ring when the worker has returned one, from
//     the shard's sync.Pool otherwise.
//  2. Stream.IngestBatch(eb) transfers ownership to the engine. The
//     session must not touch eb afterwards — not even its length. If
//     the batch is not handed off (empty batch, shed, non-event frame
//     decoded into it), the session keeps ownership and parks the
//     buffer in Stream.spare for the next GetBatch.
//  3. The shard worker, after StepColumns, recycles the buffer: onto
//     the stream's single-producer/single-consumer ring (ring.go) when
//     there is room, back to the shard pool when not. In steady state
//     a stream circulates a small fixed set of buffers and the pool is
//     never touched.
//  4. The close job drains the stream's ring back to the pool; the
//     session is provably parked in Close/Abort by then, which is what
//     licenses the worker to touch the consumer end.
//
// The legacy Stream.Ingest([]vm.Event) survives as a convenience that
// copies rows into a borrowed batch — the vm.BatchObserver contract
// (caller may reuse the slice immediately) makes the copy mandatory
// there, which is precisely why the columnar entry points exist.
//
// The per-shard queues are bounded; Options.Policy picks what happens
// when a queue fills. PolicyBlock stalls the producing session, which
// propagates backpressure to the client through TCP — the right default
// for a detector whose results must be complete. PolicyShed drops the
// batch and poisons the stream: its eventual result carries an
// overload error instead of silently wrong counts, the standard
// monitoring-service trade (Tunç et al. shed under burst; a detector
// that sheds must say so).
//
// Shutdown follows obs.Server's context idiom: Shutdown(ctx) stops new
// streams, waits for open streams to drain (bounded by ctx), then stops
// the workers.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/frd"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/svd"
	"repro/internal/vm"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// Policy selects the overload behavior of a full shard queue.
type Policy int

const (
	// PolicyBlock stalls the producer until the worker catches up —
	// lossless, backpressure flows to the client over TCP.
	PolicyBlock Policy = iota

	// PolicyShed drops the batch, counts it, and poisons the stream so
	// its result reports the overload instead of wrong counts.
	PolicyShed
)

// String names the policy for flags and logs.
func (p Policy) String() string {
	if p == PolicyShed {
		return "shed"
	}
	return "block"
}

// ParsePolicy parses "block" or "shed".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block", "":
		return PolicyBlock, nil
	case "shed":
		return PolicyShed, nil
	default:
		return 0, fmt.Errorf("server: unknown overload policy %q (want block or shed)", s)
	}
}

// Options tune the engine.
type Options struct {
	// Shards is the detector worker count. <= 0 means 1.
	Shards int

	// QueueDepth bounds each shard's pending-job queue. <= 0 means 64.
	QueueDepth int

	// Policy picks blocking or shedding when a shard queue is full.
	Policy Policy

	// SVD and FRD configure every stream's detectors. Witness is forced
	// on per stream when its Hello asks for it.
	SVD svd.Options
	FRD frd.Options

	// Scale is the workload scale used to rebuild registry workloads
	// for streams that name one. It must match the producer's scale or
	// programs diverge; the Hello carries the client's value, which
	// wins when nonzero.
	Scale int

	// Obs collects detector telemetry across streams; nil disables it.
	Obs *obs.Sink

	// Journal, when set, is the durable store sessions append ingested
	// wire frames to; shard workers then anchor every detected violation
	// to the journal record whose batch produced it. In-process
	// producers that bypass the wire (Stream.Ingest/IngestBatch) are not
	// journaled — the journal records what arrived on the wire, exactly.
	Journal *journal.Writer

	// StreamBase offsets engine-assigned stream ids. A daemon reopening
	// a journal passes the writer's StreamBase() so ids stay unique
	// across restarts sharing one journal directory.
	StreamBase uint64

	// NodeID names this engine's node in a detection cluster. Violation
	// anchors carry it, so a merged cross-node report says which node's
	// journal holds each anchor's record. Empty outside cluster mode.
	NodeID string

	// ForceWitness runs every stream's detectors with the flight
	// recorder on, regardless of what its Hello asked for. Replay tools
	// use it to re-detect anchored violations with witnesses; a serving
	// daemon leaves it off so the client's Witness flag stays in charge.
	ForceWitness bool

	// Telemetry enables the ingest path's own instrumentation: per-batch
	// queue-wait/step clocks folded into per-shard histograms and the
	// busy-fraction EWMA (telemetry.go). Off, the hot path takes no
	// clock readings and shard stats stay zero; stream odometers and
	// wire-to-verdict latency (driven by the peer's Timestamps
	// negotiation, not this flag) still work.
	Telemetry bool

	// Logger receives operational events; nil means slog.Default().
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Counters is the engine's ingest odometer, served by the query surface.
type Counters struct {
	StreamsOpened uint64 `json:"streams_opened"`
	StreamsClosed uint64 `json:"streams_closed"`
	Batches       uint64 `json:"batches"`
	Events        uint64 `json:"events"`
	BatchesShed   uint64 `json:"batches_shed"`
	StreamsShed   uint64 `json:"streams_shed"` // streams poisoned by shedding

	// StreamsHandedOff counts streams drained here and transferred to
	// another cluster node; their results are published by the new
	// owner, not this engine.
	StreamsHandedOff uint64 `json:"streams_handed_off,omitempty"`
}

// Engine is the sharded ingestion engine. Create with New, feed with
// OpenStream (or ServeConn / Serve for wire transport), stop with
// Shutdown.
type Engine struct {
	opts    Options
	shards  []*shard
	started time.Time

	nextStream atomic.Uint64
	streams    sync.WaitGroup // open streams

	draining atomic.Bool
	stopOnce sync.Once // closes the shard queues exactly once

	counters struct {
		streamsOpened    atomic.Uint64
		streamsClosed    atomic.Uint64
		batches          atomic.Uint64
		events           atomic.Uint64
		batchesShed      atomic.Uint64
		streamsShed      atomic.Uint64
		streamsHandedOff atomic.Uint64
	}

	// clusterRt is the cluster router when this engine runs as a
	// cluster node (set by NewClusterServer before any serving starts);
	// nil for a standalone daemon. /statusz and /metrics read it.
	clusterRt *cluster.Router

	mu      sync.Mutex
	samples []*report.Sample   // completed stream reports, open-order
	open    map[uint64]*Stream // registry behind Snapshot's stream table
	anchors []StreamAnchors    // journaled streams' violation anchors, close-order
}

// job is one unit of shard work. Exactly one of open/close/eb is set.
type job struct {
	st    *Stream
	open  bool
	close bool
	eb    *vm.EventBatch // owned by the worker once enqueued; recycled after StepColumns

	// sendNanos is the producer's wall-clock send stamp (0 when the
	// stream did not negotiate timestamps); enq is the local enqueue
	// time, taken only under Options.Telemetry.
	sendNanos uint64
	enq       time.Time

	// loc is the journal record this batch was persisted as, valid when
	// journaled is set; the worker anchors any violations the batch
	// produces to it.
	loc       journal.Loc
	journaled bool
}

type shard struct {
	id    int
	jobs  chan job
	pool  sync.Pool // *vm.EventBatch buffers (overflow beyond the per-stream rings)
	stats shardStats
}

// New builds and starts the engine's shard workers.
func New(opts Options) *Engine {
	e := &Engine{
		opts:    opts.withDefaults(),
		started: time.Now(),
		open:    make(map[uint64]*Stream),
	}
	e.shards = make([]*shard, e.opts.Shards)
	for i := range e.shards {
		sh := &shard{id: i, jobs: make(chan job, e.opts.QueueDepth)}
		sh.pool.New = func() any {
			eb := vm.NewEventBatch(vm.DefaultBatchCap)
			// The wire decoder fills the Blocks column during varint
			// decode; at the engine's SVD shift both detectors (FRD too,
			// when its shift agrees) skip the per-row block computation.
			eb.EnableBlocks(e.opts.SVD.BlockShift)
			return eb
		}
		e.shards[i] = sh
		go e.worker(sh)
	}
	return e
}

// route picks the shard for a new stream: FNV-1a of the client-supplied
// key when present, round-robin over engine-assigned ids otherwise.
func (e *Engine) route(key string, id uint64) *shard {
	if key != "" {
		h := fnv.New64a()
		h.Write([]byte(key))
		return e.shards[h.Sum64()%uint64(len(e.shards))]
	}
	return e.shards[id%uint64(len(e.shards))]
}

// Stream is one open event stream: the handle a session (or an
// in-process producer like the ingest benchmark) feeds batches through.
type Stream struct {
	eng *Engine
	sh  *shard
	id  uint64

	// Resolved stream identity, fixed at open.
	w       *workloads.Workload
	seed    uint64
	witness bool
	key     string // cluster routing key; empty outside cluster mode

	// Worker-owned detector state, created by the open job; only the
	// owning shard worker touches these after OpenStream returns.
	sd  *svd.Detector
	fd  *frd.Detector
	rec *obs.Recorder

	// ring carries processed batch buffers back from the shard worker
	// to the session; spare holds a borrowed-but-unsent buffer on the
	// session side. See the package comment's ownership rules.
	ring  batchRing
	spare *vm.EventBatch

	shed     atomic.Uint64 // batches dropped under PolicyShed
	aborted  bool          // set before the close job when the producer died
	released bool          // set before the close job when the stream is handed off

	// Telemetry odometers: written by the producing session, read by
	// Engine.Snapshot through the atomics while the stream is live.
	timestamps bool // the Hello negotiated send stamps
	opened     time.Time
	frames     atomic.Uint64
	events     atomic.Uint64
	wireBytes  atomic.Uint64
	lastActive atomic.Int64 // wall clock of the last ingested batch

	// lat is the stream's wire-to-verdict histogram. Only the owning
	// shard worker touches it until the close job publishes it as
	// latReport; the st.done close is the happens-before edge that lets
	// Latency() read it afterwards.
	lat       obs.Histogram
	latReport *LatencyReport

	// anchors collects the stream's violation anchors; worker-owned
	// until the close job publishes them into the engine. anchorCapSVD
	// and anchorCapFRD bound it to the detectors' retention caps: a
	// violation past the cap has no retained record or witness to point
	// at, so anchoring it would grow the slice without bound on
	// pathological streams.
	anchors      []Anchor
	anchorCapSVD uint64
	anchorCapFRD uint64

	done   chan struct{}
	sample *report.Sample // set before done closes
	err    error          // terminal stream error (overload, abort)
}

// resolve maps a Hello to a runnable workload: a registry entry when it
// names one (ground truth included), else a synthetic workload wrapping
// the embedded program (no ground truth; every report classifies as a
// false positive, which is the honest reading of "no bug annotations").
func (e *Engine) resolve(h wire.Hello) (*workloads.Workload, error) {
	if h.Workload != "" {
		scale := h.Scale
		if scale <= 0 {
			scale = e.opts.Scale
		}
		w, err := workloads.ByName(h.Workload, scale, h.Seed)
		if err == nil {
			if w.NumThreads != h.Threads {
				return nil, fmt.Errorf("server: workload %q has %d threads, hello declares %d",
					h.Workload, w.NumThreads, h.Threads)
			}
			return w, nil
		}
		if h.Program == nil {
			return nil, err
		}
	}
	if h.Program == nil {
		return nil, fmt.Errorf("server: hello carries neither a known workload nor a program")
	}
	name := h.Program.Name
	if name == "" {
		name = "remote"
	}
	return &workloads.Workload{Name: name, Prog: h.Program, NumThreads: h.Threads}, nil
}

// OpenStream admits a new stream described by its handshake. key feeds
// the shard router; empty means round-robin. The returned Stream is not
// safe for concurrent use by multiple producers.
func (e *Engine) OpenStream(h wire.Hello, key string) (*Stream, error) {
	if e.draining.Load() {
		return nil, fmt.Errorf("server: draining, not accepting streams")
	}
	w, err := e.resolve(h)
	if err != nil {
		return nil, err
	}
	id := e.opts.StreamBase + e.nextStream.Add(1) - 1
	st := &Stream{
		eng:        e,
		sh:         e.route(key, id),
		id:         id,
		w:          w,
		seed:       h.Seed,
		witness:    h.Witness || e.opts.ForceWitness,
		key:        key,
		timestamps: h.Timestamps,
		opened:     time.Now(),
		done:       make(chan struct{}),
	}
	e.streams.Add(1)
	e.counters.streamsOpened.Add(1)
	e.mu.Lock()
	e.open[id] = st
	e.mu.Unlock()
	// The open job cannot shed: losing it would orphan the stream.
	st.sh.jobs <- job{st: st, open: true}
	return st, nil
}

// ID reports the stream's engine-assigned id — the identity journal
// records carry, offset by Options.StreamBase across daemon restarts.
func (s *Stream) ID() uint64 { return s.id }

// GetBatch borrows an empty batch buffer for the producer to fill —
// typically as the target of wire.Deframer.ReadFrameInto. Ownership
// rests with the caller until IngestBatch transfers it; a buffer that
// ends up not being ingested is returned with PutBatch.
func (s *Stream) GetBatch() *vm.EventBatch {
	if eb := s.spare; eb != nil {
		s.spare = nil
		eb.Reset()
		return eb
	}
	if eb := s.ring.pop(); eb != nil {
		eb.Reset()
		return eb
	}
	return s.sh.pool.Get().(*vm.EventBatch)
}

// PutBatch returns a borrowed buffer that was never ingested (the
// frame decoded into it turned out to be a Goodbye, or the stream is
// being torn down). It must not be called for a buffer already passed
// to IngestBatch.
func (s *Stream) PutBatch(eb *vm.EventBatch) {
	if s.spare == nil {
		s.spare = eb
		return
	}
	eb.Reset()
	s.sh.pool.Put(eb)
}

// IngestBatch feeds one columnar event batch, transferring ownership
// of eb to the engine — the caller must not touch it afterwards. Under
// PolicyBlock a full shard queue blocks; under PolicyShed the batch is
// dropped (its buffer reclaimed) and the stream poisoned. An empty
// batch is a no-op whose buffer is reclaimed immediately.
func (s *Stream) IngestBatch(eb *vm.EventBatch) {
	s.IngestBatchAt(eb, 0)
}

// IngestBatchAt is IngestBatch carrying the producer's wall-clock send
// stamp (UnixNano; 0 for none). Sessions pass the stamp decoded from the
// Events frame; the shard worker turns it into the stream's
// wire-to-verdict latency observation.
func (s *Stream) IngestBatchAt(eb *vm.EventBatch, sendNanos uint64) {
	s.ingest(job{st: s, eb: eb, sendNanos: sendNanos})
}

// IngestBatchJournaled is IngestBatchAt for a batch whose wire frame
// was appended to the journal as the record at loc: the shard worker
// anchors any violations the batch produces to that record.
func (s *Stream) IngestBatchJournaled(eb *vm.EventBatch, sendNanos uint64, loc journal.Loc) {
	s.ingest(job{st: s, eb: eb, sendNanos: sendNanos, loc: loc, journaled: true})
}

// ingest enqueues one batch job, applying the overload policy.
func (s *Stream) ingest(j job) {
	eb := j.eb
	n := eb.Len()
	if n == 0 {
		s.PutBatch(eb)
		return
	}
	if s.eng.opts.Telemetry {
		j.enq = time.Now()
		s.lastActive.Store(j.enq.UnixNano())
	}
	if s.eng.opts.Policy == PolicyShed {
		select {
		case s.sh.jobs <- j:
		default:
			s.PutBatch(eb)
			if s.shed.Add(1) == 1 {
				s.eng.counters.streamsShed.Add(1)
			}
			s.eng.counters.batchesShed.Add(1)
			return
		}
	} else {
		s.sh.jobs <- j
	}
	s.eng.counters.batches.Add(1)
	s.eng.counters.events.Add(uint64(n))
	s.frames.Add(1)
	s.events.Add(uint64(n))
}

// NoteWireBytes adds n to the stream's wire-byte odometer. Sessions call
// it with the deframer's frame size after each decoded Events frame;
// in-process producers have no wire bytes and never call it.
func (s *Stream) NoteWireBytes(n int) {
	s.wireBytes.Add(uint64(n))
}

// Latency returns the stream's wire-to-verdict latency report. It is
// populated by the close job, so it must not be called before Close (or
// Abort) returns; nil when the stream never carried a send stamp.
func (s *Stream) Latency() *LatencyReport { return s.latReport }

// Ingest feeds one row-form event batch. The slice is copied into a
// borrowed columnar buffer before enqueueing (callers may reuse it
// immediately, matching the vm.BatchObserver contract); producers that
// can avoid the copy should use GetBatch/IngestBatch directly.
func (s *Stream) Ingest(evs []vm.Event) {
	if len(evs) == 0 {
		return
	}
	eb := s.GetBatch()
	for i := range evs {
		eb.Append(&evs[i])
	}
	s.IngestBatch(eb)
}

// Close finalizes the stream and returns its report. The close job
// never sheds — a queue full of this stream's own batches must drain
// first, which is exactly the ordering that makes the report complete.
func (s *Stream) Close() (*report.Sample, error) {
	s.sh.jobs <- job{st: s, close: true}
	<-s.done
	return s.sample, s.err
}

// Abort tears the stream down without publishing a report — the path
// for a producer that died mid-stream. Idempotent with respect to
// Close is NOT provided: call exactly one of Close or Abort.
func (s *Stream) Abort() {
	s.aborted = true
	s.sh.jobs <- job{st: s, close: true}
	<-s.done
}

// Release is the handoff drain: it tears the stream down like Abort but
// records the teardown as a transfer, not a failure — no sample, no
// anchors, and the handed-off counter moves instead of looking like a
// dead producer. The caller has already captured the stream's frame
// history; the new owner's replay rebuilds the detector state exactly,
// which is why discarding the local detectors loses nothing. Returns
// once every batch enqueued before the release has been stepped and the
// shard has let go of the stream. Call exactly one of Close, Abort, or
// Release.
func (s *Stream) Release() {
	s.released = true
	s.sh.jobs <- job{st: s, close: true}
	<-s.done
}

// worker is one shard's detector loop: it owns every detector that was
// routed to it, processing open/batch/close jobs strictly in order per
// stream.
func (e *Engine) worker(sh *shard) {
	for j := range sh.jobs {
		st := j.st
		switch {
		case j.open:
			svdOpts := e.opts.SVD
			frdOpts := e.opts.FRD
			if st.witness {
				svdOpts.Witness = true
				frdOpts.Witness = true
			}
			if e.opts.Obs != nil {
				st.rec = e.opts.Obs.NewRecorder(fmt.Sprintf("%s seed %d stream %d", st.w.Name, st.seed, st.id))
				svdOpts.Recorder = st.rec
				frdOpts.Recorder = st.rec
			}
			st.sd = svd.New(st.w.Prog, st.w.NumThreads, svdOpts)
			st.fd = frd.New(st.w.Prog, st.w.NumThreads, frdOpts)
			// Mirror the detectors' retention defaulting (<=0 means 1<<16)
			// so the anchor bound always matches what they retain.
			st.anchorCapSVD = 1 << 16
			if svdOpts.MaxViolations > 0 {
				st.anchorCapSVD = uint64(svdOpts.MaxViolations)
			}
			st.anchorCapFRD = 1 << 16
			if frdOpts.MaxRaces > 0 {
				st.anchorCapFRD = uint64(frdOpts.MaxRaces)
			}
		case j.close:
			// Reclaim the stream's recycle ring. The session is parked
			// in Close/Abort (the close job's channel send happened
			// after its last ring access), so popping the consumer end
			// here is race-free.
			for eb := st.ring.pop(); eb != nil; eb = st.ring.pop() {
				sh.pool.Put(eb)
			}
			st.sd.FlushObs()
			st.fd.FlushObs()
			sample := report.Classify(st.w, st.seed, st.sd, st.fd)
			if st.rec != nil {
				st.rec.Flush()
			}
			switch {
			case st.released:
				st.err = fmt.Errorf("server: stream %d released for handoff", st.id)
			case st.aborted:
				st.err = fmt.Errorf("server: stream %d aborted by its producer", st.id)
			case st.sd.BatchErr() != nil:
				st.err = fmt.Errorf("server: stream %d: %w", st.id, st.sd.BatchErr())
			case st.fd.BatchErr() != nil:
				st.err = fmt.Errorf("server: stream %d: %w", st.id, st.fd.BatchErr())
			case st.shed.Load() > 0:
				st.err = fmt.Errorf("server: overloaded: shed %d batches of stream %d (results incomplete)", st.shed.Load(), st.id)
			default:
				st.sample = sample
			}
			if st.lat.Count > 0 {
				st.latReport = &LatencyReport{Batches: st.lat.Count, WireToVerdictNs: st.lat}
			}
			attachWitnesses(st.anchors, st.sample)
			e.mu.Lock()
			delete(e.open, st.id)
			if st.sample != nil {
				e.samples = append(e.samples, sample)
			}
			// A released stream publishes no anchors — the new owner
			// replays its history and owns its sample and anchors.
			if len(st.anchors) > 0 && !st.released {
				e.anchors = append(e.anchors, StreamAnchors{
					Stream: st.id, Workload: st.w.Name, Seed: st.seed, Anchors: st.anchors,
				})
			}
			e.mu.Unlock()
			if st.released {
				e.counters.streamsHandedOff.Add(1)
			}
			// Free detector state before signaling: the stream handle
			// may outlive the shard's interest in it.
			st.sd, st.fd, st.rec = nil, nil, nil
			e.counters.streamsClosed.Add(1)
			e.streams.Done()
			close(st.done)
		default:
			// Telemetry clocks: Options.Telemetry feeds the shard stats,
			// a send stamp feeds the stream's wire-to-verdict histogram;
			// with neither, the steady-state path reads no clocks at all.
			track := e.opts.Telemetry
			stamped := j.sendNanos != 0
			var t0 time.Time
			if track || stamped {
				t0 = time.Now()
			}
			// Journaled batches bracket the step with detector counts so a
			// violation lands an anchor on exactly the record that holds
			// its batch. Stats() is a struct copy — no clock, no alloc.
			var v0, r0 uint64
			if j.journaled {
				v0 = st.sd.Stats().Violations
				r0 = st.fd.Stats().Races
			}
			st.sd.StepColumns(j.eb)
			st.fd.StepColumns(j.eb)
			n := j.eb.Len()
			if j.journaled {
				firstSeq, lastSeq := j.eb.Seq[0], j.eb.Seq[n-1]
				if v1 := st.sd.Stats().Violations; v1 > v0 {
					if v1 > st.anchorCapSVD {
						v1 = st.anchorCapSVD
					}
					for i := v0; i < v1; i++ {
						st.anchors = append(st.anchors, Anchor{
							Detector: "svd", Index: int(i), Loc: j.loc,
							FirstSeq: firstSeq, LastSeq: lastSeq,
							Node: e.opts.NodeID,
						})
					}
				}
				if r1 := st.fd.Stats().Races; r1 > r0 {
					if r1 > st.anchorCapFRD {
						r1 = st.anchorCapFRD
					}
					for i := r0; i < r1; i++ {
						st.anchors = append(st.anchors, Anchor{
							Detector: "frd", Index: int(i), Loc: j.loc,
							FirstSeq: firstSeq, LastSeq: lastSeq,
							Node: e.opts.NodeID,
						})
					}
				}
			}
			j.eb.Reset()
			if !st.ring.push(j.eb) {
				sh.pool.Put(j.eb)
			}
			if track || stamped {
				t1 := time.Now()
				var wire uint64
				if stamped {
					if d := t1.UnixNano() - int64(j.sendNanos); d > 0 {
						wire = uint64(d)
					}
					st.lat.Observe(wire)
				}
				if track {
					sh.stats.observe(j.enq, t0, t1, len(sh.jobs)+1, n, stamped, wire)
				}
			}
		}
	}
}

// Counters snapshots the ingest odometer.
func (e *Engine) Counters() Counters {
	return Counters{
		StreamsOpened: e.counters.streamsOpened.Load(),
		StreamsClosed: e.counters.streamsClosed.Load(),
		Batches:       e.counters.batches.Load(),
		Events:        e.counters.events.Load(),
		BatchesShed:   e.counters.batchesShed.Load(),
		StreamsShed:   e.counters.streamsShed.Load(),

		StreamsHandedOff: e.counters.streamsHandedOff.Load(),
	}
}

// Samples returns the completed stream reports accumulated so far, in
// completion order. The slice is a copy; the samples are immutable
// after publication.
func (e *Engine) Samples() []*report.Sample {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*report.Sample(nil), e.samples...)
}

// Report is the query surface's answer: the run-level digest over every
// completed stream plus the ingest odometer. Witnesses inside Merged
// are deep copies (report.MergeSamples clones), so callers can hold the
// Report while shards keep draining.
type Report struct {
	Shards   int                `json:"shards"`
	Policy   string             `json:"policy"`
	Counters Counters           `json:"counters"`
	Merged   report.MergedStats `json:"merged"`

	// Obs is the sink's aggregated detector telemetry — histogram
	// summaries included — merged across streams from every shard. An
	// earlier Report dropped it entirely, so /report showed counters
	// while the unit-lifetime and footprint distributions the sink had
	// collected were unreachable. Nil when the engine runs without a
	// sink.
	Obs *obs.Snapshot `json:"obs,omitempty"`

	// Ingest is the live service snapshot: shard table, open-stream
	// odometers, uptime.
	Ingest Snapshot `json:"ingest"`

	// Journal is the durable-store section: writer health plus every
	// completed stream's violation anchors with their witnesses. Nil
	// when the engine runs without a journal.
	Journal *JournalReport `json:"journal,omitempty"`
}

// Report builds the current query answer.
func (e *Engine) Report() Report {
	r := Report{
		Shards:   len(e.shards),
		Policy:   e.opts.Policy.String(),
		Counters: e.Counters(),
		Merged:   report.MergeSamples(e.Samples()),
		Ingest:   e.Snapshot(),
	}
	if e.opts.Obs != nil {
		sn := e.opts.Obs.Snapshot()
		r.Obs = &sn
	}
	r.Journal = e.journalReport()
	return r
}

// ReportHandler serves the query surface as JSON — mounted on the
// daemon's metrics mux next to /metrics and /debug/pprof.
func (e *Engine) ReportHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Report())
	})
}

// SamplesHandler serves the engine's raw completed samples as a JSON
// array — the scatter half of a cluster's scatter-gather /report: peers
// fetch each node's samples and merge them with report.MergeSamples
// after a deterministic sort, so the merged digest is independent of
// which node answered first.
func (e *Engine) SamplesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		samples := e.Samples()
		report.SortSamples(samples)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(samples)
	})
}

// Shutdown drains the engine: new streams are refused immediately, open
// streams may finish until ctx expires, then the shard workers stop.
// It returns ctx.Err() when the deadline cut the drain short (worker
// goroutines stay alive to avoid corrupting in-flight detector state;
// the process is expected to exit shortly after).
func (e *Engine) Shutdown(ctx context.Context) error {
	e.draining.Store(true)
	drained := make(chan struct{})
	go func() {
		e.streams.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	e.stopOnce.Do(func() {
		for _, sh := range e.shards {
			close(sh.jobs)
		}
	})
	return nil
}
