package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/vm"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// collectBatches runs a workload locally and returns its event batches
// at the VM's own boundaries — the raw material the engine ingests.
func collectBatches(t *testing.T, w *workloads.Workload, seed uint64) [][]vm.Event {
	t.Helper()
	m, err := w.NewVM(seed)
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]vm.Event
	m.AttachBatch(batchFunc(func(evs []vm.Event) {
		batches = append(batches, append([]vm.Event(nil), evs...))
	}))
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	return batches
}

func hello(w *workloads.Workload, seed uint64, witness bool) wire.Hello {
	return wire.Hello{
		Version: wire.Version, Threads: w.NumThreads,
		Workload: w.Name, Scale: 1, Seed: seed, Witness: witness,
	}
}

// TestEngineMatchesInProcess ingests a workload's batches through the
// engine's direct stream API and requires the published sample to carry
// the same detection results as report.Run on the same seed.
func TestEngineMatchesInProcess(t *testing.T) {
	const seed = 5
	w, err := workloads.ByName("queue-buggy", 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Shards: 2})
	defer shutdown(t, e)

	st, err := e.OpenStream(hello(w, seed, true), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range collectBatches(t, w, seed) {
		st.Ingest(b)
	}
	got, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}

	want, err := report.Run(w, seed, report.Options{Witness: true})
	if err != nil {
		t.Fatal(err)
	}
	// The engine never sees the finished VM, so the consistency check
	// stays unjudged; everything else must agree.
	want.Erroneous, want.ErrorDetail = false, ""
	gotJS, _ := json.Marshal(got)
	wantJS, _ := json.Marshal(want)
	if string(gotJS) != string(wantJS) {
		t.Errorf("engine sample differs from in-process run:\n got %s\nwant %s", gotJS, wantJS)
	}
	if c := e.Counters(); c.StreamsClosed != 1 || c.Events == 0 || c.BatchesShed != 0 {
		t.Errorf("counters: %+v", c)
	}
}

// TestShedPolicy drives batches at a one-deep queue far faster than the
// worker can chew them: some must shed, and the stream must report the
// overload instead of publishing wrong counts.
func TestShedPolicy(t *testing.T) {
	const seed = 2
	w, err := workloads.ByName("apache-buggy", 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Shards: 1, QueueDepth: 1, Policy: PolicyShed})
	defer shutdown(t, e)

	batches := collectBatches(t, w, seed)
	st, err := e.OpenStream(hello(w, seed, false), "")
	if err != nil {
		t.Fatal(err)
	}
	// Replay the stream several times over: the producer side is a
	// memcpy, the consumer side runs two detectors, so a 1-deep queue
	// cannot keep up.
	for i := 0; i < 4; i++ {
		for _, b := range batches {
			st.Ingest(b)
		}
	}
	if _, err := st.Close(); err == nil || !strings.Contains(err.Error(), "shed") {
		t.Fatalf("overloaded stream closed with %v, want shed error", err)
	}
	c := e.Counters()
	if c.BatchesShed == 0 || c.StreamsShed != 1 {
		t.Errorf("shed counters: %+v", c)
	}
	if len(e.Samples()) != 0 {
		t.Errorf("poisoned stream published a sample")
	}
}

// TestBlockPolicyLosesNothing pushes the same overload through the
// blocking policy: every batch must arrive.
func TestBlockPolicyLosesNothing(t *testing.T) {
	const seed = 2
	w, err := workloads.ByName("queue-fixed", 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Shards: 1, QueueDepth: 1, Policy: PolicyBlock})
	defer shutdown(t, e)

	batches := collectBatches(t, w, seed)
	var events uint64
	st, err := e.OpenStream(hello(w, seed, false), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		st.Ingest(b)
		events += uint64(len(b))
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if c := e.Counters(); c.Events != events || c.BatchesShed != 0 {
		t.Errorf("got %+v, want %d events and no sheds", c, events)
	}
}

// TestRouting: explicit keys route deterministically, and distinct
// engine-assigned ids round-robin across shards.
func TestRouting(t *testing.T) {
	e := New(Options{Shards: 4})
	defer shutdown(t, e)
	if a, b := e.route("client-7", 0), e.route("client-7", 99); a != b {
		t.Errorf("same key routed to different shards")
	}
	seen := map[int]bool{}
	for id := uint64(0); id < 4; id++ {
		seen[e.route("", id).id] = true
	}
	if len(seen) != 4 {
		t.Errorf("round-robin covered %d of 4 shards", len(seen))
	}
}

func TestResolveErrors(t *testing.T) {
	e := New(Options{})
	defer shutdown(t, e)
	if _, err := e.OpenStream(wire.Hello{Version: wire.Version, Threads: 2, Workload: "no-such"}, ""); err == nil {
		t.Error("unknown workload without program: want error")
	}
	w, err := workloads.ByName("queue-fixed", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := hello(w, 0, false)
	h.Threads = w.NumThreads + 1
	if _, err := e.OpenStream(h, ""); err == nil {
		t.Error("thread-count mismatch: want error")
	}
}

// TestEmbeddedProgramStream runs a stream the server has no registry
// entry for: the program rides in the handshake, detection still runs,
// and with no ground truth every site classifies as a false positive.
func TestEmbeddedProgramStream(t *testing.T) {
	const seed = 4
	w, err := workloads.ByName("queue-buggy", 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	defer shutdown(t, e)
	h := wire.Hello{Version: wire.Version, Threads: w.NumThreads, Seed: seed, Program: w.Prog}
	st, err := e.OpenStream(h, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range collectBatches(t, w, seed) {
		st.Ingest(b)
	}
	s, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if s.SVDStats.Instructions == 0 {
		t.Error("no instructions observed")
	}
	if len(s.SVD.TrueSites) != 0 || len(s.FRD.TrueSites) != 0 {
		t.Error("sites classified as true without ground truth")
	}
}

func TestShutdownDrains(t *testing.T) {
	w, err := workloads.ByName("queue-fixed", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Shards: 2})
	st, err := e.OpenStream(hello(w, 1, false), "")
	if err != nil {
		t.Fatal(err)
	}

	// With a stream still open, a short-deadline Shutdown must give up
	// with the context's error, not hang.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with open stream: %v", err)
	}
	// Draining refuses new streams immediately.
	if _, err := e.OpenStream(hello(w, 2, false), ""); err == nil {
		t.Fatal("open during drain: want error")
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := e.Shutdown(ctx2); err != nil {
		t.Fatalf("final shutdown: %v", err)
	}
}

// TestReportHandler exercises the query surface end to end: samples in,
// JSON out, witnesses deep-copied into the digest.
func TestReportHandler(t *testing.T) {
	const seed = 5
	w, err := workloads.ByName("queue-buggy", 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	defer shutdown(t, e)
	st, err := e.OpenStream(hello(w, seed, true), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range collectBatches(t, w, seed) {
		st.Ingest(b)
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	e.ReportHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/report", nil))
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("query surface returned invalid JSON: %v", err)
	}
	if rep.Merged.Samples != 1 || rep.Counters.StreamsClosed != 1 {
		t.Errorf("report: %+v", rep)
	}
	if rep.Merged.SVD.Violations == 0 {
		t.Errorf("queue-buggy produced no violations in the merged digest")
	}
}

func shutdown(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
