package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/journal"
	"repro/internal/wire"
)

// Session layer: the glue between the wire protocol and the engine. A
// session owns one connection and runs entirely in the caller's
// goroutine; all detector work happens on the shard workers, so a slow
// connection never holds a detector hostage and a slow shard stalls
// exactly the connections routed to it (PolicyBlock) and nobody else.

// Serve accepts connections until the listener closes (Shutdown's drain
// closes it via the caller) and runs one session per connection. It
// returns once the accept loop ends and every session has finished.
func (e *Engine) Serve(ln net.Listener) error {
	var sessions sync.WaitGroup
	defer sessions.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		sessions.Add(1)
		go func() {
			defer sessions.Done()
			e.ServeConn(conn)
		}()
	}
}

// ServeConn runs one session: a loop of streams, each a Hello, any
// number of Events frames, and a Goodbye answered with a Result. The
// connection closes on return. Protocol errors are answered with an
// Error frame when the connection still works; either way the session
// ends, because a desynchronized peer cannot be re-synchronized inside
// a stream.
func (e *Engine) ServeConn(conn net.Conn) {
	defer conn.Close()
	log := e.opts.Logger.With("remote", conn.RemoteAddr().String())
	d := wire.NewDeframer(conn)
	f := wire.NewFramer(conn, 1)

	for streamSeq := 0; ; streamSeq++ {
		err := e.serveStream(d, f, streamSeq)
		switch {
		case err == nil:
			continue // next Hello on the same connection
		case errors.Is(err, io.EOF):
			return // clean end between streams
		default:
			log.Warn("session ended", "stream", streamSeq, "err", err)
			// Best effort: tell the peer why before hanging up.
			_ = f.WriteError(err.Error())
			return
		}
	}
}

// serveStream runs one stream to completion: handshake, ingest, result.
func (e *Engine) serveStream(d *wire.Deframer, f *wire.Framer, seq int) error {
	fr, err := d.ReadFrame()
	if err != nil {
		return err // io.EOF here is the clean between-streams end
	}
	if fr.Type != wire.FrameHello {
		return fmt.Errorf("%w: stream must open with hello, got %s", wire.ErrBadFrame, fr.Type)
	}
	st, err := e.OpenStream(fr.Hello, "")
	if err != nil {
		return err
	}
	d.SetProgram(st.w.Prog, st.w.NumThreads)

	// Journaling persists each frame's raw wire bytes before its batch
	// reaches a shard, so a violation anchor always points at a record
	// already on disk. A journal write error downgrades the stream to
	// unjournaled rather than killing it: detection availability wins,
	// and the writer's sticky error keeps later appends cheap.
	jw := e.opts.Journal
	if jw != nil {
		hdr, payload := d.RawFrame()
		if _, jerr := jw.Append(journal.Meta{Kind: journal.KindHello, Stream: st.id}, hdr, payload); jerr != nil {
			e.opts.Logger.Warn("journal append failed; stream unjournaled", "stream", st.id, "err", jerr)
			jw = nil
		}
	}

	closed := false
	defer func() {
		if !closed {
			st.Abort()
		}
	}()
	for {
		// Zero-copy ingest: borrow a batch buffer from the stream and
		// let the deframer decode the next events frame straight into
		// its columns. Only a FrameEvents result transfers ownership to
		// IngestBatch; every other outcome returns the buffer.
		eb := st.GetBatch()
		fr, err := d.ReadFrameInto(eb)
		if err != nil {
			st.PutBatch(eb)
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("%w: connection closed mid-stream", wire.ErrTruncated)
			}
			return err
		}
		switch fr.Type {
		case wire.FrameEvents:
			st.NoteWireBytes(d.LastFrameBytes())
			if jw != nil {
				var first, last uint64
				if n := eb.Len(); n > 0 {
					first, last = eb.Seq[0], eb.Seq[n-1]
				}
				hdr, payload := d.RawFrame()
				loc, jerr := jw.Append(journal.Meta{
					Kind: journal.KindEvents, Stream: st.id, FirstSeq: first, LastSeq: last,
				}, hdr, payload)
				if jerr == nil {
					st.IngestBatchJournaled(eb, fr.SendNanos, loc)
					continue
				}
				e.opts.Logger.Warn("journal append failed; stream unjournaled", "stream", st.id, "err", jerr)
				jw = nil
			}
			st.IngestBatchAt(eb, fr.SendNanos)
		case wire.FrameGoodbye:
			st.PutBatch(eb)
			if jw != nil {
				hdr, payload := d.RawFrame()
				if _, jerr := jw.Append(journal.Meta{Kind: journal.KindGoodbye, Stream: st.id}, hdr, payload); jerr != nil {
					jw = nil
				}
			}
			closed = true
			sample, serr := st.Close()
			res := wire.Result{}
			if serr != nil {
				res.Err = serr.Error()
				if jw != nil {
					_, _ = jw.Append(journal.Meta{Kind: journal.KindError, Stream: st.id}, nil, []byte(res.Err))
				}
			} else {
				data, err := json.Marshal(sample)
				if err != nil {
					return fmt.Errorf("server: encode result: %w", err)
				}
				res.Sample = data
				if jw != nil {
					_, _ = jw.Append(journal.Meta{Kind: journal.KindResult, Stream: st.id}, nil, data)
				}
			}
			// A stream that negotiated timestamps gets its latency digest
			// back alongside the sample, even when the sample is replaced
			// by an error — latency of a shed stream is still meaningful.
			if lr := st.Latency(); lr != nil {
				if data, err := json.Marshal(lr); err == nil {
					res.Latency = data
				}
			}
			return f.WriteResult(res)
		default:
			st.PutBatch(eb)
			return fmt.Errorf("%w: unexpected %s frame inside a stream", wire.ErrBadFrame, fr.Type)
		}
	}
}
