package server

// /statusz: the human-facing half of the observability surface. /metrics
// speaks OpenMetrics to scrapers and /report speaks JSON to tools; this
// page answers the operator question "what is the daemon doing right
// now" in one glance — shard table, hottest streams, latency
// percentiles, overload — without anything to parse. ?format=text
// serves the same snapshot as plain text for curl and the CI scrape.

import (
	"fmt"
	"html/template"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// statusTopK bounds the hottest-streams table; a daemon fed by a load
// generator can have hundreds of open streams and the page is a glance,
// not a dump (the full set is on /metrics).
const statusTopK = 20

// statuszData is the template's view of one snapshot.
type statuszData struct {
	Snapshot
	Version   string
	GoVersion string
	Uptime    time.Duration
	Shown     int // streams rendered (min(len(Streams), statusTopK))
	Truncated int // open streams beyond the table

	// JournalFsync is the journal's fsync summary, flattened here because
	// Summarize has a pointer receiver the template cannot call through
	// the embedded snapshot's value field.
	JournalFsync obs.Summary

	// Cluster is the router panel, present only in cluster mode.
	Cluster *clusterPanel
}

// clusterPanel is the /statusz view of the cluster router: the stats
// snapshot plus how many of this node's open streams route to each
// member under the current view (streams here owned elsewhere are
// sticky or about to hand off).
type clusterPanel struct {
	cluster.Stats
	Nodes []clusterNodeRow
}

type clusterNodeRow struct {
	ID      string
	Addr    string
	Self    bool
	Streams int
}

// fmtNs renders a nanosecond quantity human-first (µs/ms/s).
func fmtNs(ns uint64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// fmtAge renders "how long ago" from a unix-nano stamp relative to the
// snapshot time ("never" for zero — telemetry off or nothing ingested).
func fmtAge(takenNs, ns int64) string {
	if ns == 0 {
		return "never"
	}
	d := time.Duration(takenNs - ns)
	if d < 0 {
		d = 0
	}
	return d.Round(time.Millisecond).String() + " ago"
}

var statuszTmpl = template.Must(template.New("statusz").Funcs(template.FuncMap{
	"ns":  fmtNs,
	"age": fmtAge,
	"pct": func(f float64) string { return fmt.Sprintf("%.1f%%", f*100) },
}).Parse(`<!DOCTYPE html>
<html><head><title>svdd statusz</title>
<style>
body { font-family: monospace; margin: 1.5em; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #999; padding: 2px 8px; text-align: right; }
th { background: #eee; }
td.l, th.l { text-align: left; }
.warn { color: #b00; font-weight: bold; }
h2 { margin-bottom: 0.2em; }
</style></head><body>
<h1>svdd</h1>
<p>version {{.Version}} · {{.GoVersion}} · up {{.Uptime}} · policy {{.Policy}} ·
telemetry {{if .Telemetry}}on{{else}}off{{end}} ·
{{len .Streams}} open stream(s)</p>

<h2>Engine</h2>
<table>
<tr><th class="l">counter</th><th>value</th></tr>
<tr><td class="l">streams opened</td><td>{{.Counters.StreamsOpened}}</td></tr>
<tr><td class="l">streams closed</td><td>{{.Counters.StreamsClosed}}</td></tr>
<tr><td class="l">batches</td><td>{{.Counters.Batches}}</td></tr>
<tr><td class="l">events</td><td>{{.Counters.Events}}</td></tr>
{{if .Counters.BatchesShed}}<tr class="warn"><td class="l">batches shed</td><td>{{.Counters.BatchesShed}}</td></tr>{{end}}
{{if .Counters.StreamsShed}}<tr class="warn"><td class="l">streams shed</td><td>{{.Counters.StreamsShed}}</td></tr>{{end}}
{{if .Counters.StreamsHandedOff}}<tr><td class="l">streams handed off</td><td>{{.Counters.StreamsHandedOff}}</td></tr>{{end}}
</table>

{{with .Cluster}}
<h2>Cluster</h2>
<p>node {{.Self}} · epoch {{.Epoch}} · ring v{{.RingVersion}} ·
handoffs in flight {{.HandoffsInFlight}}</p>
<table>
<tr><th class="l">counter</th><th>value</th></tr>
<tr><td class="l">misroutes</td><td>{{.Misroutes}}</td></tr>
<tr><td class="l">forwarded frames</td><td>{{.ForwardedFrames}}</td></tr>
<tr><td class="l">handoffs out / in</td><td>{{.HandoffsOut}} / {{.HandoffsIn}}</td></tr>
{{if .MembersDown}}<tr class="warn"><td class="l">members down</td><td>{{.MembersDown}}</td></tr>{{end}}
</table>
<table>
<tr><th class="l">member</th><th class="l">addr</th><th>streams here</th></tr>
{{range .Nodes}}
<tr><td class="l">{{.ID}}{{if .Self}} (self){{end}}</td><td class="l">{{.Addr}}</td><td>{{.Streams}}</td></tr>
{{end}}
</table>
{{end}}

{{with .Journal}}
<h2>Journal</h2>
<table>
<tr><th class="l">field</th><th>value</th></tr>
<tr><td class="l">directory</td><td class="l">{{.Dir}}</td></tr>
<tr><td class="l">segments</td><td>{{.Segments}}</td></tr>
<tr><td class="l">active segment</td><td>{{printf "%016x" .ActiveSegment}}</td></tr>
<tr><td class="l">active / total bytes</td><td>{{.ActiveBytes}} / {{.TotalBytes}}</td></tr>
<tr><td class="l">appended records / bytes</td><td>{{.AppendedRecords}} / {{.AppendedBytes}}</td></tr>
<tr><td class="l">rotations / recycled</td><td>{{.Rotations}} / {{.RecycledSegments}}</td></tr>
{{if .AppendErrors}}<tr class="warn"><td class="l">append errors</td><td>{{.AppendErrors}}</td></tr>{{end}}
<tr><td class="l">oldest segment</td><td class="l">{{age $.TakenUnixNano .OldestUnixNano}}</td></tr>
<tr><td class="l">newest append</td><td class="l">{{age $.TakenUnixNano .NewestUnixNano}}</td></tr>
<tr><td class="l">fsync p50 / p99</td><td>{{ns $.JournalFsync.P50}} / {{ns $.JournalFsync.P99}}</td></tr>
{{if .LastCompaction.UnixNano}}<tr{{if .LastCompaction.Err}} class="warn"{{end}}><td class="l">last compaction</td>
<td class="l">{{age $.TakenUnixNano .LastCompaction.UnixNano}}: removed {{.LastCompaction.Removed}}{{with .LastCompaction.Err}}, err {{.}}{{end}}</td></tr>{{end}}
{{if .Recovery.Repaired}}<tr><td class="l">recovery</td>
<td class="l">repaired {{.Recovery.Repaired}} segment(s), truncated {{.Recovery.TruncatedBytes}} bytes</td></tr>{{end}}
</table>
{{end}}

<h2>Shards</h2>
<table>
<tr><th>shard</th><th>queue</th><th>hwm</th><th>busy</th><th>batches</th><th>events</th>
<th>q-wait p50</th><th>q-wait p99</th><th>step p50</th><th>step p99</th>
<th>wire p50</th><th>wire p99</th></tr>
{{range .Shards}}
<tr><td>{{.ID}}</td><td>{{.QueueLen}}/{{.QueueCap}}</td><td>{{.QueueHWM}}</td>
<td>{{pct .Busy}}</td><td>{{.Batches}}</td><td>{{.Events}}</td>
<td>{{ns .QueueWaitNs.P50}}</td><td>{{ns .QueueWaitNs.P99}}</td>
<td>{{ns .StepNs.P50}}</td><td>{{ns .StepNs.P99}}</td>
<td>{{ns .WireNs.P50}}</td><td>{{ns .WireNs.P99}}</td></tr>
{{end}}
</table>

<h2>Hottest streams</h2>
{{if .Streams}}
<table>
<tr><th>id</th><th class="l">workload</th><th>seed</th><th>shard</th>
<th>frames</th><th>events</th><th>wire bytes</th><th>shed</th><th class="l">state</th><th class="l">last active</th></tr>
{{$taken := .TakenUnixNano}}
{{range $i, $s := .Streams}}{{if lt $i $.Shown}}
<tr><td>{{$s.ID}}</td><td class="l">{{$s.Workload}}</td><td>{{$s.Seed}}</td><td>{{$s.Shard}}</td>
<td>{{$s.Frames}}</td><td>{{$s.Events}}</td><td>{{$s.WireBytes}}</td>
<td>{{$s.Shed}}</td>
<td class="l">{{if $s.Poisoned}}<span class="warn">poisoned</span>{{else}}ok{{end}}</td>
<td class="l">{{age $taken $s.LastActiveUnixNano}}</td></tr>
{{end}}{{end}}
</table>
{{if .Truncated}}<p>… and {{.Truncated}} more open stream(s); see /metrics for all.</p>{{end}}
{{else}}<p>no open streams</p>{{end}}

<p><a href="/metrics">/metrics</a> · <a href="/report">/report</a> ·
<a href="/statusz?format=text">text</a> · <a href="/debug/pprof/">pprof</a> ·
<a href="/debug/vars">expvar</a></p>
</body></html>
`))

// buildVersion reports the module version baked into the binary, "devel"
// when built from a working tree.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// statusz builds the template view from a fresh snapshot.
func (e *Engine) statusz() statuszData {
	d := statuszData{
		Snapshot:  e.Snapshot(),
		Version:   buildVersion(),
		GoVersion: runtime.Version(),
	}
	d.Uptime = time.Duration(d.UptimeSeconds * float64(time.Second)).Round(time.Second)
	if d.Journal != nil {
		d.JournalFsync = d.Journal.FsyncNs.Summarize()
	}
	d.Shown = len(d.Streams)
	if d.Shown > statusTopK {
		d.Truncated = d.Shown - statusTopK
		d.Shown = statusTopK
	}
	if rt := e.clusterRt; rt != nil {
		s := rt.Snapshot()
		counts := make(map[string]int)
		e.mu.Lock()
		for _, st := range e.open {
			if st.key == "" {
				counts[s.Self]++
				continue
			}
			if m, ok := rt.Owner(st.key); ok {
				counts[m.ID]++
			} else {
				counts[s.Self]++
			}
		}
		e.mu.Unlock()
		p := &clusterPanel{Stats: s}
		for _, m := range s.Members {
			p.Nodes = append(p.Nodes, clusterNodeRow{
				ID: m.ID, Addr: m.Addr, Self: m.ID == s.Self, Streams: counts[m.ID],
			})
		}
		d.Cluster = p
	}
	return d
}

// WriteStatusText renders the snapshot as plain text — the ?format=text
// body, also reused by svdd's periodic status log when it wants a full
// dump. One line per shard and stream, stable key=value tokens, so a
// grep in CI can assert on it without an HTML parser.
func (e *Engine) WriteStatusText(w io.Writer) {
	d := e.statusz()
	fmt.Fprintf(w, "svdd version=%s go=%s uptime=%s policy=%s telemetry=%v open_streams=%d\n",
		d.Version, d.GoVersion, d.Uptime, d.Policy, d.Telemetry, len(d.Streams))
	c := d.Counters
	fmt.Fprintf(w, "counters opened=%d closed=%d batches=%d events=%d batches_shed=%d streams_shed=%d streams_handed_off=%d\n",
		c.StreamsOpened, c.StreamsClosed, c.Batches, c.Events, c.BatchesShed, c.StreamsShed, c.StreamsHandedOff)
	if cl := d.Cluster; cl != nil {
		fmt.Fprintf(w, "cluster node=%s epoch=%d ring_version=%d members=%d handoffs_in_flight=%d misroutes=%d forwarded_frames=%d handoffs_out=%d handoffs_in=%d members_down=%d\n",
			cl.Self, cl.Epoch, cl.RingVersion, len(cl.Members), cl.HandoffsInFlight,
			cl.Misroutes, cl.ForwardedFrames, cl.HandoffsOut, cl.HandoffsIn, cl.MembersDown)
		for _, n := range cl.Nodes {
			fmt.Fprintf(w, "cluster_member id=%s addr=%q self=%v streams=%d\n", n.ID, n.Addr, n.Self, n.Streams)
		}
	}
	if j := d.Journal; j != nil {
		fmt.Fprintf(w, "journal dir=%q segments=%d active_bytes=%d total_bytes=%d records=%d bytes=%d rotations=%d append_errors=%d oldest=%q newest=%q fsync_p50=%s fsync_p99=%s compaction_removed=%d\n",
			j.Dir, j.Segments, j.ActiveBytes, j.TotalBytes,
			j.AppendedRecords, j.AppendedBytes, j.Rotations, j.AppendErrors,
			fmtAge(d.TakenUnixNano, j.OldestUnixNano), fmtAge(d.TakenUnixNano, j.NewestUnixNano),
			fmtNs(d.JournalFsync.P50), fmtNs(d.JournalFsync.P99),
			j.LastCompaction.Removed)
	}
	for _, s := range d.Shards {
		fmt.Fprintf(w, "shard id=%d queue=%d/%d hwm=%d busy=%.3f batches=%d events=%d qwait_p50=%s qwait_p99=%s step_p50=%s step_p99=%s wire_p50=%s wire_p99=%s\n",
			s.ID, s.QueueLen, s.QueueCap, s.QueueHWM, s.Busy, s.Batches, s.Events,
			fmtNs(s.QueueWaitNs.P50), fmtNs(s.QueueWaitNs.P99),
			fmtNs(s.StepNs.P50), fmtNs(s.StepNs.P99),
			fmtNs(s.WireNs.P50), fmtNs(s.WireNs.P99))
	}
	for i, s := range d.Streams {
		if i == d.Shown {
			fmt.Fprintf(w, "streams_truncated count=%d\n", d.Truncated)
			break
		}
		state := "ok"
		if s.Poisoned {
			state = "poisoned"
		}
		fmt.Fprintf(w, "stream id=%d workload=%q seed=%d shard=%d frames=%d events=%d wire_bytes=%d shed=%d state=%s last_active=%q\n",
			s.ID, s.Workload, s.Seed, s.Shard, s.Frames, s.Events, s.WireBytes, s.Shed,
			state, fmtAge(d.TakenUnixNano, s.LastActiveUnixNano))
	}
}

// StatuszHandler serves the live status page. Workload names come off
// the wire from untrusted peers, so the HTML path goes through
// html/template's contextual escaping rather than string pasting.
func (e *Engine) StatuszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			e.WriteStatusText(w)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = statuszTmpl.Execute(w, e.statusz())
	})
}

// StatusSummary is one compact status line for the periodic slog ticker:
// engine counters plus queue/latency highlights, cheap enough to log
// every few seconds.
func (e *Engine) StatusSummary() []any {
	sn := e.Snapshot()
	var depth, hwm int
	var busy float64
	var wire obs.Summary
	for i, s := range sn.Shards {
		depth += s.QueueLen
		if s.QueueHWM > hwm {
			hwm = s.QueueHWM
		}
		if s.Busy > busy {
			busy = s.Busy
		}
		if i == 0 || s.WireNs.P99 > wire.P99 {
			wire = s.WireNs
		}
	}
	return []any{
		"open", len(sn.Streams),
		"opened", sn.Counters.StreamsOpened,
		"closed", sn.Counters.StreamsClosed,
		"events", sn.Counters.Events,
		"shed", sn.Counters.BatchesShed,
		"queue", depth,
		"queue_hwm", hwm,
		"busy", fmt.Sprintf("%.2f", busy),
		"wire_p99", fmtNs(wire.P99),
	}
}
