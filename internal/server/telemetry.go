package server

// Service telemetry: the ingest path's own observability, as opposed to
// the detector-domain metrics the obs.Sink aggregates. Three layers:
//
//   - per-shard: a mutex-guarded shardStats each worker updates once per
//     batch — queue-wait/step/wire-to-verdict power-of-two histograms,
//     queue high-water mark, and a busy-fraction EWMA. One uncontended
//     lock per ~512-event batch keeps the overhead inside the 3% budget
//     BenchmarkServerIngestTelemetry enforces; Options.Telemetry gates
//     the clock reads so the zero-allocation steady-state path is
//     untouched when off.
//
//   - per-stream: lock-free atomic odometers (frames, events, wire
//     bytes, sheds, last activity) written by the producing session and
//     read by Snapshot while ingest runs. The stream's wire-to-verdict
//     histogram is worker-owned (no atomics on the hot path) and is
//     published as a LatencyReport at close, when the close job's
//     happens-before makes it safe to read.
//
//   - engine: Snapshot() captures all of it race-free — shard stats
//     under their locks, stream odometers via atomics, the open-stream
//     registry under the engine mutex — and feeds /statusz, /report,
//     the labeled /metrics families, and svdd's periodic status line.
//
// Clock domains: queue-wait and step time are same-process monotonic
// differences. Wire-to-verdict spans processes, so it compares the
// producer's wall-clock send stamp (wire.Hello Timestamps negotiation)
// against the worker's wall clock — exact on one host (the loopback CI
// and svdload -latency case), skew-bounded across hosts.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
)

// busyAlpha is the busy-fraction EWMA's smoothing factor: each batch's
// processing/(idle+processing) window moves the estimate 5% of the way,
// so the gauge reflects roughly the last few dozen batches.
const busyAlpha = 0.05

// shardStats is one shard worker's telemetry. The worker updates it
// under mu once per processed batch; Snapshot reads under the same
// lock, so scrapes during active ingest are race-free by construction.
type shardStats struct {
	mu       sync.Mutex
	batches  uint64
	events   uint64
	queueHWM int
	busy     float64   // EWMA of processing/(idle+processing)
	lastEnd  time.Time // end of the previous job, for the idle window

	queueWaitNs obs.Histogram // enqueue -> dequeue
	stepNs      obs.Histogram // dequeue -> StepColumns done
	wireNs      obs.Histogram // client send stamp -> StepColumns done
}

// observe folds one processed batch in. depth is the queue length seen
// at dequeue (this job included); wire is the wire-to-verdict latency,
// observed only when the stream carried a send stamp.
func (s *shardStats) observe(enq, t0, t1 time.Time, depth, events int, hasWire bool, wire uint64) {
	s.mu.Lock()
	s.batches++
	s.events += uint64(events)
	if depth > s.queueHWM {
		s.queueHWM = depth
	}
	if wait := t0.Sub(enq); wait > 0 {
		s.queueWaitNs.Observe(uint64(wait))
	} else {
		s.queueWaitNs.Observe(0)
	}
	step := t1.Sub(t0)
	if step < 0 {
		step = 0
	}
	s.stepNs.Observe(uint64(step))
	if hasWire {
		s.wireNs.Observe(wire)
	}
	if !s.lastEnd.IsZero() {
		if cycle := t1.Sub(s.lastEnd); cycle > 0 {
			frac := float64(step) / float64(cycle)
			if frac > 1 {
				frac = 1
			}
			s.busy += busyAlpha * (frac - s.busy)
		}
	}
	s.lastEnd = t1
	s.mu.Unlock()
}

// snapshot copies the stats under the lock.
func (s *shardStats) snapshot(sn *ShardSnapshot) {
	s.mu.Lock()
	sn.Batches = s.batches
	sn.Events = s.events
	sn.QueueHWM = s.queueHWM
	sn.Busy = s.busy
	sn.QueueWaitNs = s.queueWaitNs.Summarize()
	sn.StepNs = s.stepNs.Summarize()
	sn.WireNs = s.wireNs.Summarize()
	s.mu.Unlock()
}

// hists deep-copies the shard's histograms under the lock, for merging
// into the report path.
func (s *shardStats) hists() (queueWait, step, wire obs.Histogram) {
	s.mu.Lock()
	queueWait, step, wire = s.queueWaitNs, s.stepNs, s.wireNs
	s.mu.Unlock()
	return
}

// ShardSnapshot is one shard's telemetry at a point in time.
type ShardSnapshot struct {
	ID       int `json:"id"`
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	QueueHWM int `json:"queue_hwm"`

	// Busy is the worker's EWMA busy fraction in [0,1], as of its last
	// processed job (an idle shard keeps its last estimate).
	Busy float64 `json:"busy"`

	Batches uint64 `json:"batches"`
	Events  uint64 `json:"events"`

	QueueWaitNs obs.Summary `json:"queue_wait_ns"`
	StepNs      obs.Summary `json:"step_ns"`
	WireNs      obs.Summary `json:"wire_to_verdict_ns"`
}

// StreamSnapshot is one open stream's odometer at a point in time.
type StreamSnapshot struct {
	ID       uint64 `json:"id"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Shard    int    `json:"shard"`

	Frames    uint64 `json:"frames"`
	Events    uint64 `json:"events"`
	WireBytes uint64 `json:"wire_bytes"`
	Shed      uint64 `json:"shed"`

	// Poisoned marks a stream that shed under PolicyShed: its eventual
	// result will report the overload instead of counts.
	Poisoned bool `json:"poisoned"`

	OpenedUnixNano     int64 `json:"opened_unix_nano"`
	LastActiveUnixNano int64 `json:"last_active_unix_nano"`
}

// Snapshot is the engine's full operational state at one instant,
// captured race-free while ingest is running: the shard table, every
// open stream's odometer, and the engine counters. It backs /statusz,
// the labeled /metrics families, and the periodic status log line.
type Snapshot struct {
	TakenUnixNano int64   `json:"taken_unix_nano"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Policy        string  `json:"policy"`
	Telemetry     bool    `json:"telemetry"`

	Shards   []ShardSnapshot  `json:"shards"`
	Streams  []StreamSnapshot `json:"streams"` // open streams, hottest (most events) first
	Counters Counters         `json:"counters"`

	// Journal is the durable journal's state when one is attached
	// (svdd -journal); nil otherwise.
	Journal *journal.Stats `json:"journal,omitempty"`
}

// Snapshot captures the engine's operational state. Safe to call at any
// time, including concurrently with active ingest on every shard: shard
// stats are read under their per-shard locks, stream odometers through
// their atomics, and the open-stream registry under the engine mutex.
func (e *Engine) Snapshot() Snapshot {
	now := time.Now()
	sn := Snapshot{
		TakenUnixNano: now.UnixNano(),
		UptimeSeconds: now.Sub(e.started).Seconds(),
		Policy:        e.opts.Policy.String(),
		Telemetry:     e.opts.Telemetry,
		Shards:        make([]ShardSnapshot, len(e.shards)),
		Counters:      e.Counters(),
	}
	if jw := e.opts.Journal; jw != nil {
		js := jw.Stats()
		sn.Journal = &js
	}
	for i, sh := range e.shards {
		s := &sn.Shards[i]
		s.ID = sh.id
		s.QueueLen = len(sh.jobs)
		s.QueueCap = cap(sh.jobs)
		sh.stats.snapshot(s)
	}
	e.mu.Lock()
	sn.Streams = make([]StreamSnapshot, 0, len(e.open))
	for _, st := range e.open {
		shed := st.shed.Load()
		sn.Streams = append(sn.Streams, StreamSnapshot{
			ID:                 st.id,
			Workload:           st.w.Name,
			Seed:               st.seed,
			Shard:              st.sh.id,
			Frames:             st.frames.Load(),
			Events:             st.events.Load(),
			WireBytes:          st.wireBytes.Load(),
			Shed:               shed,
			Poisoned:           shed > 0,
			OpenedUnixNano:     st.opened.UnixNano(),
			LastActiveUnixNano: st.lastActive.Load(),
		})
	}
	e.mu.Unlock()
	// Hottest first; id breaks ties so the order is stable under test.
	sort.Slice(sn.Streams, func(i, j int) bool {
		if sn.Streams[i].Events != sn.Streams[j].Events {
			return sn.Streams[i].Events > sn.Streams[j].Events
		}
		return sn.Streams[i].ID < sn.Streams[j].ID
	})
	return sn
}

// LatencyReport is one stream's ingest-latency digest, assembled at
// close from the worker-owned histogram and echoed to the producer in
// the Result frame when the stream negotiated timestamps. The full
// histogram travels (not just the summary) so a load generator can
// merge reports across streams and quote exact aggregate percentiles.
type LatencyReport struct {
	// Batches is the number of stamped batches observed.
	Batches uint64 `json:"batches"`

	// WireToVerdictNs is client send stamp -> detectors stepped, in
	// nanoseconds. Exact when producer and detector share a host;
	// includes clock skew when they do not.
	WireToVerdictNs obs.Histogram `json:"wire_to_verdict_ns"`
}

// Summary flattens the report's histogram.
func (l *LatencyReport) Summary() obs.Summary { return l.WireToVerdictNs.Summarize() }

// WriteMetrics appends the engine's shard and stream telemetry to an
// OpenMetrics exposition as labeled families (shard="N", stream/workload
// labels), sharing the page with the sink's detector metrics. Families
// are emitted once with one series per shard or open stream, per the
// one-header-per-family rule openmetrics_test pins down.
func (e *Engine) WriteMetrics(o *obs.OpenMetricsWriter) {
	sn := e.Snapshot()

	c := sn.Counters
	o.Counter("streams_opened", "streams admitted by the engine", c.StreamsOpened)
	o.Counter("streams_closed", "streams finalized with a report", c.StreamsClosed)
	o.Counter("ingest_batches", "event batches enqueued to shard workers", c.Batches)
	o.Counter("ingest_events", "events enqueued to shard workers", c.Events)
	o.Counter("batches_shed", "batches dropped under PolicyShed", c.BatchesShed)
	o.Counter("streams_shed", "streams poisoned by shedding", c.StreamsShed)
	o.Gauge("streams_open", "streams currently open", float64(len(sn.Streams)))

	if j := sn.Journal; j != nil {
		o.Gauge("journal_segments", "journal segments on disk, sealed plus active", float64(j.Segments))
		o.Gauge("journal_active_bytes", "bytes in the journal's active segment", float64(j.ActiveBytes))
		o.Gauge("journal_total_bytes", "bytes across all retained journal segments", float64(j.TotalBytes))
		o.Counter("journal_appended_records", "wire frames and verdict records appended to the journal", j.AppendedRecords)
		o.Counter("journal_appended_bytes", "payload bytes appended to the journal", j.AppendedBytes)
		o.Counter("journal_rotations", "journal segment rotations", j.Rotations)
		o.Counter("journal_recycled_segments", "rotations that reused a retired segment file in place", j.RecycledSegments)
		o.Counter("journal_append_errors", "journal appends that failed and downgraded their stream", j.AppendErrors)
		o.Histogram("journal_fsync_ns", "journal fsync latency", &j.FsyncNs)
	}

	shardLabel := func(id int) map[string]string {
		return map[string]string{"shard": fmt.Sprintf("%d", id)}
	}
	depth := make([]obs.LabeledValue, len(sn.Shards))
	hwm := make([]obs.LabeledValue, len(sn.Shards))
	busy := make([]obs.LabeledValue, len(sn.Shards))
	batches := make([]obs.LabeledValue, len(sn.Shards))
	events := make([]obs.LabeledValue, len(sn.Shards))
	for i, s := range sn.Shards {
		l := shardLabel(s.ID)
		depth[i] = obs.LabeledValue{Labels: l, Value: float64(s.QueueLen)}
		hwm[i] = obs.LabeledValue{Labels: l, Value: float64(s.QueueHWM)}
		busy[i] = obs.LabeledValue{Labels: l, Value: s.Busy}
		batches[i] = obs.LabeledValue{Labels: l, Value: float64(s.Batches)}
		events[i] = obs.LabeledValue{Labels: l, Value: float64(s.Events)}
	}
	o.GaugeSeries("shard_queue_depth", "pending jobs on the shard queue", depth)
	o.GaugeSeries("shard_queue_hwm", "high-water mark of the shard queue", hwm)
	o.GaugeSeries("shard_busy", "EWMA busy fraction of the shard worker", busy)
	o.CounterSeries("shard_batches", "batches processed by the shard worker", batches)
	o.CounterSeries("shard_events", "events processed by the shard worker", events)

	// The histograms need the live buckets, not the snapshot summaries.
	queueWait := make([]obs.LabeledHistogram, len(e.shards))
	step := make([]obs.LabeledHistogram, len(e.shards))
	wire := make([]obs.LabeledHistogram, len(e.shards))
	for i, sh := range e.shards {
		qw, st, wi := sh.stats.hists()
		l := shardLabel(sh.id)
		queueWait[i] = obs.LabeledHistogram{Labels: l, Hist: &qw}
		step[i] = obs.LabeledHistogram{Labels: l, Hist: &st}
		wire[i] = obs.LabeledHistogram{Labels: l, Hist: &wi}
	}
	o.HistogramSeries("ingest_queue_wait_ns", "batch enqueue to dequeue latency", queueWait)
	o.HistogramSeries("ingest_step_ns", "batch detector-step latency", step)
	o.HistogramSeries("ingest_wire_to_verdict_ns", "client send stamp to detectors-stepped latency", wire)

	streamSeries := func(pick func(StreamSnapshot) float64) []obs.LabeledValue {
		out := make([]obs.LabeledValue, len(sn.Streams))
		for i, s := range sn.Streams {
			out[i] = obs.LabeledValue{
				Labels: map[string]string{
					"stream":   fmt.Sprintf("%d", s.ID),
					"workload": s.Workload,
					"shard":    fmt.Sprintf("%d", s.Shard),
				},
				Value: pick(s),
			}
		}
		return out
	}
	o.CounterSeries("stream_frames", "event frames ingested per open stream",
		streamSeries(func(s StreamSnapshot) float64 { return float64(s.Frames) }))
	o.CounterSeries("stream_events", "events ingested per open stream",
		streamSeries(func(s StreamSnapshot) float64 { return float64(s.Events) }))
	o.CounterSeries("stream_wire_bytes", "wire bytes ingested per open stream",
		streamSeries(func(s StreamSnapshot) float64 { return float64(s.WireBytes) }))
	o.CounterSeries("stream_shed_batches", "batches shed per open stream",
		streamSeries(func(s StreamSnapshot) float64 { return float64(s.Shed) }))
	o.GaugeSeries("stream_poisoned", "1 when the open stream has shed and will report overload",
		streamSeries(func(s StreamSnapshot) float64 {
			if s.Poisoned {
				return 1
			}
			return 0
		}))
	o.GaugeSeries("stream_last_active_unix_nano", "wall clock of the stream's last ingested batch",
		streamSeries(func(s StreamSnapshot) float64 { return float64(s.LastActiveUnixNano) }))

	if rt := e.clusterRt; rt != nil {
		cs := rt.Snapshot()
		o.Counter("cluster_misroutes", "streams that arrived at a non-owner node", cs.Misroutes)
		o.Counter("cluster_forwarded", "frames relayed toward a stream's owning node", cs.ForwardedFrames)
		o.CounterSeries("cluster_handoffs", "drained-stream transfers by direction", []obs.LabeledValue{
			{Labels: map[string]string{"direction": "in"}, Value: float64(cs.HandoffsIn)},
			{Labels: map[string]string{"direction": "out"}, Value: float64(cs.HandoffsOut)},
		})
		o.Gauge("cluster_handoffs_in_flight", "stream transfers currently replaying or relaying", float64(cs.HandoffsInFlight))
		o.Counter("cluster_members_down", "members this node declared dead", cs.MembersDown)
		o.Gauge("cluster_epoch", "membership view epoch in force", float64(cs.Epoch))
		o.Gauge("cluster_ring_version", "consistent-hash ring version in force", float64(cs.RingVersion))
		o.Gauge("cluster_members", "members in the current view", float64(len(cs.Members)))
	}
}

// MetricsWriter adapts WriteMetrics to the obs.NewServeMux extra-writer
// hook, so the daemon mounts one /metrics page carrying both detector
// and service families.
func (e *Engine) MetricsWriter() func(*obs.OpenMetricsWriter) {
	return func(o *obs.OpenMetricsWriter) { e.WriteMetrics(o) }
}
