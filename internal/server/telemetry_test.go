package server

import (
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestLoopbackLatencyTracing runs the full wire stack with timestamps
// negotiated and requires (a) the served sample to stay bit-identical to
// an in-process run — the stamps must be invisible to detection — and
// (b) a latency report covering every sent batch to come back.
func TestLoopbackLatencyTracing(t *testing.T) {
	const name, seed = "queue-buggy", 5
	e := New(Options{Shards: 2, Telemetry: true})
	defer shutdown(t, e)

	cli, srv := net.Pipe()
	go e.ServeConn(srv)
	defer cli.Close()
	c := NewClient(cli)

	w, err := workloads.ByName(name, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.RunSample(w, seed, ReplayOptions{Witness: true, Scale: 1, Timestamps: true})
	if err != nil {
		t.Fatal(err)
	}
	diffSamples(t, "stamped stream", got, inProcess(t, name, seed))

	if stats.Latency == nil {
		t.Fatal("no latency report on a stamped stream")
	}
	if stats.Latency.Batches != stats.Batches {
		t.Errorf("latency digest covers %d batches, replay sent %d", stats.Latency.Batches, stats.Batches)
	}
	sum := stats.Latency.Summary()
	if sum.Count != stats.Batches || sum.Max == 0 {
		t.Errorf("latency summary %+v over %d batches", sum, stats.Batches)
	}

	// An unstamped stream on the same engine gets no report.
	got2, stats2, err := c.RunSample(w, seed, ReplayOptions{Witness: true, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	diffSamples(t, "unstamped stream", got2, inProcess(t, name, seed))
	if stats2.Latency != nil {
		t.Errorf("latency report on an unstamped stream: %+v", stats2.Latency)
	}
}

// TestSnapshotDuringIngest hammers every read surface — Snapshot,
// WriteMetrics, /statusz in both formats, /report — from scraper
// goroutines while multiple streams ingest concurrently. Under -race
// this is the proof of the "scrape anytime" contract.
func TestSnapshotDuringIngest(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
	}{
		{"queue-buggy", 31},
		{"queue-fixed", 32},
		{"apache-buggy", 33},
	}
	sink := obs.NewSink(obs.SinkOptions{})
	e := New(Options{Shards: 2, Telemetry: true, Obs: sink})
	defer shutdown(t, e)

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := e.Snapshot()
				if len(sn.Shards) != 2 {
					t.Error("snapshot lost its shard table")
					return
				}
				for _, s := range sn.Streams {
					if s.Events > 0 && s.Frames == 0 {
						t.Errorf("stream %d has events without frames", s.ID)
						return
					}
				}
				var sb strings.Builder
				o := obs.NewOpenMetricsWriter(&sb, "svdd")
				e.WriteMetrics(o)
				if err := o.EOF(); err != nil {
					t.Errorf("metrics write: %v", err)
					return
				}
				rr := httptest.NewRecorder()
				e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
				if rr.Code != 200 || !strings.Contains(rr.Body.String(), "<h1>svdd</h1>") {
					t.Errorf("statusz: code %d", rr.Code)
					return
				}
				rr = httptest.NewRecorder()
				e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz?format=text", nil))
				if !strings.Contains(rr.Body.String(), "svdd version=") {
					t.Error("statusz text lost its header line")
					return
				}
				if rep := e.Report(); rep.Obs == nil {
					t.Error("report dropped the obs snapshot")
					return
				}
			}
		}()
	}

	var producers sync.WaitGroup
	for _, tc := range cases {
		producers.Add(1)
		go func() {
			defer producers.Done()
			w, err := workloads.ByName(tc.name, 1, tc.seed)
			if err != nil {
				t.Error(err)
				return
			}
			st, err := e.OpenStream(hello(w, tc.seed, false), "")
			if err != nil {
				t.Error(err)
				return
			}
			now := uint64(time.Now().UnixNano())
			for _, b := range collectBatchesB(t, w, tc.seed) {
				eb := st.GetBatch()
				for i := range b {
					eb.Append(&b[i])
				}
				st.NoteWireBytes(len(b) * 4)
				st.IngestBatchAt(eb, now)
			}
			if _, err := st.Close(); err != nil {
				t.Error(err)
				return
			}
			if lr := st.Latency(); lr == nil || lr.Batches == 0 {
				t.Errorf("%s: no latency digest after stamped ingest", tc.name)
			}
		}()
	}
	producers.Wait()
	close(stop)
	scrapers.Wait()

	sn := e.Snapshot()
	if len(sn.Streams) != 0 {
		t.Errorf("%d streams still open after close", len(sn.Streams))
	}
	var batches, events uint64
	for _, s := range sn.Shards {
		batches += s.Batches
		events += s.Events
		if s.Batches > 0 && s.StepNs.Count != s.Batches {
			t.Errorf("shard %d: %d batches but %d step observations", s.ID, s.Batches, s.StepNs.Count)
		}
	}
	c := e.Counters()
	if batches != c.Batches || events != c.Events {
		t.Errorf("shard stats (%d batches, %d events) disagree with counters %+v", batches, events, c)
	}
}

// collectBatchesB is collectBatches for use from non-test goroutines
// (t.Fatal is main-goroutine-only).
func collectBatchesB(t *testing.T, w *workloads.Workload, seed uint64) [][]vm.Event {
	m, err := w.NewVM(seed)
	if err != nil {
		t.Error(err)
		return nil
	}
	var batches [][]vm.Event
	m.AttachBatch(batchFunc(func(evs []vm.Event) {
		batches = append(batches, append([]vm.Event(nil), evs...))
	}))
	if _, err := m.Run(1 << 24); err != nil {
		t.Error(err)
		return nil
	}
	return batches
}

// TestShedVisibleInSnapshot overloads a shed-policy engine and requires
// the overload to be visible everywhere it should be: stream odometer,
// poisoned flag, statusz page, counters — while the stream is still
// open, which is when an operator needs to see it.
func TestShedVisibleInSnapshot(t *testing.T) {
	const seed = 2
	w, err := workloads.ByName("apache-buggy", 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Shards: 1, QueueDepth: 1, Policy: PolicyShed, Telemetry: true})
	defer shutdown(t, e)

	batches := collectBatches(t, w, seed)
	st, err := e.OpenStream(hello(w, seed, false), "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for _, b := range batches {
			st.Ingest(b)
		}
	}

	// Scrape before closing: the poisoned stream must show up live.
	sn := e.Snapshot()
	if len(sn.Streams) != 1 {
		t.Fatalf("snapshot shows %d open streams, want 1", len(sn.Streams))
	}
	s := sn.Streams[0]
	if s.Shed == 0 || !s.Poisoned {
		t.Errorf("open stream snapshot misses the overload: %+v", s)
	}
	if sn.Counters.BatchesShed != s.Shed {
		t.Errorf("engine counts %d shed batches, stream %d", sn.Counters.BatchesShed, s.Shed)
	}

	rr := httptest.NewRecorder()
	e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz?format=text", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "state=poisoned") {
		t.Errorf("statusz text does not flag the poisoned stream:\n%s", body)
	}
	if !strings.Contains(body, fmt.Sprintf("batches_shed=%d", s.Shed)) {
		t.Errorf("statusz text does not carry the shed counter:\n%s", body)
	}
	rr = httptest.NewRecorder()
	e.StatuszHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
	if !strings.Contains(rr.Body.String(), "poisoned") {
		t.Error("statusz html does not flag the poisoned stream")
	}

	var sb strings.Builder
	o := obs.NewOpenMetricsWriter(&sb, "svdd")
	e.WriteMetrics(o)
	if err := o.EOF(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "svdd_stream_poisoned") {
		t.Error("metrics exposition misses the poisoned gauge")
	}

	if _, err := st.Close(); err == nil || !strings.Contains(err.Error(), "shed") {
		t.Fatalf("overloaded stream closed with %v, want shed error", err)
	}
}

// TestReportMergesObsHistograms is the regression test for the report
// path dropping sink telemetry: streams pinned to different shards must
// all contribute to the histograms the Report surfaces.
func TestReportMergesObsHistograms(t *testing.T) {
	sink := obs.NewSink(obs.SinkOptions{})
	e := New(Options{Shards: 2, Obs: sink})
	defer shutdown(t, e)

	seeds := []uint64{7, 8, 9, 10} // round-robin lands both shards
	var wantShards []int
	for _, seed := range seeds {
		w, err := workloads.ByName("queue-buggy", 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.OpenStream(hello(w, seed, false), "")
		if err != nil {
			t.Fatal(err)
		}
		wantShards = append(wantShards, st.sh.id)
		for _, b := range collectBatches(t, w, seed) {
			st.Ingest(b)
		}
		if _, err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	shardsSeen := map[int]bool{}
	for _, id := range wantShards {
		shardsSeen[id] = true
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("test setup: all streams landed on one shard (%v)", wantShards)
	}

	rep := e.Report()
	if rep.Obs == nil {
		t.Fatal("Report carries no obs snapshot despite a configured sink")
	}
	if rep.Obs.Samples != uint64(len(seeds)) {
		t.Errorf("obs snapshot folded %d samples, want %d", rep.Obs.Samples, len(seeds))
	}
	h, ok := rep.Obs.Histograms["cu_lifetime_instrs"]
	if !ok || h.Count == 0 {
		t.Errorf("obs histograms missing or empty in the report: %+v", rep.Obs.Histograms)
	}
	// The sink's aggregate must cover every stream, i.e. match a
	// sink-side read — proving no shard's recorder was dropped.
	direct := sink.Snapshot()
	if direct.Histograms["cu_lifetime_instrs"].Count != h.Count {
		t.Errorf("report histogram count %d differs from sink %d",
			h.Count, direct.Histograms["cu_lifetime_instrs"].Count)
	}
	if rep.Ingest.Counters.StreamsClosed != uint64(len(seeds)) {
		t.Errorf("ingest snapshot in report: %+v", rep.Ingest.Counters)
	}
}

// TestSnapshotStreamOrdering: the stream table is sorted hottest-first,
// and odometers reflect what was ingested.
func TestSnapshotStreamOrdering(t *testing.T) {
	w, err := workloads.ByName("queue-fixed", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Shards: 1, Telemetry: true})
	defer shutdown(t, e)

	batches := collectBatches(t, w, 1)
	small, err := e.OpenStream(hello(w, 1, false), "")
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.OpenStream(hello(w, 1, false), "")
	if err != nil {
		t.Fatal(err)
	}
	small.Ingest(batches[0])
	for _, b := range batches {
		big.Ingest(b)
	}

	// Ingest is async; poll until the counters surface.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sn := e.Snapshot()
		if len(sn.Streams) == 2 && sn.Streams[0].Events > sn.Streams[1].Events {
			if sn.Streams[0].ID != big.id {
				t.Errorf("hottest stream is %d, want %d", sn.Streams[0].ID, big.id)
			}
			if sn.Streams[0].Frames != uint64(len(batches)) {
				t.Errorf("hot stream frames = %d, want %d", sn.Streams[0].Frames, len(batches))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream table never settled: %+v", sn.Streams)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := small.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := big.Close(); err != nil {
		t.Fatal(err)
	}
}
