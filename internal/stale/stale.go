// Package stale implements a Burrows–Leino stale-value detector, the other
// atomicity-violation detector family the paper discusses (§8): it "finds
// where stale values are used after critical sections have ended, because
// this type of program behavior may be an indicator of timing-dependent
// bugs".
//
// A value loaded from memory while a thread holds a lock is tainted with
// that (lock, acquisition-epoch). Taints propagate through registers and
// memory the way SVD's CU references do. When the thread releases the
// lock, the epoch advances and every value still carrying the old epoch is
// stale: its use — as an operand, an address, a stored value, or a branch
// condition — is reported. Staleness is a *potential*-bug property: it
// fires whether or not any other thread interfered, which is precisely the
// contrast with SVD (serializability is a property of the execution at
// hand). The benchmarks quantify that contrast.
//
// Like the lockset and happens-before baselines (and unlike SVD), the
// detector needs lock identification; the automatic CAS rule supplies it.
package stale

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Options tune the detector.
type Options struct {
	// BlockShift selects block size as 1<<BlockShift words.
	BlockShift uint
	// MaxReports caps retained reports. Zero means 1 << 16.
	MaxReports int
}

func (o Options) withDefaults() Options {
	if o.MaxReports <= 0 {
		o.MaxReports = 1 << 16
	}
	return o
}

// Report is one use of a stale value.
type Report struct {
	CPU     int
	PC      int64 // the using instruction
	Seq     uint64
	Lock    int64 // the lock whose critical section produced the value
	LoadPC  int64 // where the value was loaded
	LoadSeq uint64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("stale value: cpu %d pc %d (seq %d) uses value loaded at pc %d under lock %d after release",
		r.CPU, r.PC, r.Seq, r.LoadPC, r.Lock)
}

// Site aggregates reports by (use PC, load PC).
type Site struct {
	PC     int64
	LoadPC int64
	Count  uint64
	First  Report
}

// Stats aggregates detector activity.
type Stats struct {
	Instructions uint64
	TaintedLoads uint64
	Reports      uint64 // dynamic stale uses
}

// tag marks a value with the critical section that produced it.
type tag struct {
	set   bool
	lock  int64
	epoch uint64
	pc    int64 // load site
	seq   uint64
}

func (t tag) valid() bool { return t.set }

type threadState struct {
	regs   [isa.NumRegs]tag
	mem    map[int64]tag
	held   []int64          // lock acquisition stack (innermost last)
	epochs map[int64]uint64 // per-lock release counts
}

// Detector is the online stale-value detector. It implements vm.Observer.
type Detector struct {
	opts      Options
	lockWords map[int64]bool
	threads   []*threadState

	// owners tracks which threads accessed each block (bitmask).
	// Staleness is a property of a thread's private *copy* of a value: a
	// spill slot only this thread touches keeps the taint of the value
	// stored into it, while re-loading a genuinely shared variable yields
	// a fresh value (the variable itself is never "stale" — the thread's
	// old copy of it is).
	owners map[int64]uint64

	reports []Report
	sites   map[[2]int64]*Site
	stats   Stats
}

// New builds a detector for numCPUs processors.
func New(numCPUs int, opts Options) *Detector {
	d := &Detector{
		opts:      opts.withDefaults(),
		lockWords: make(map[int64]bool),
		threads:   make([]*threadState, numCPUs),
		owners:    make(map[int64]uint64),
		sites:     make(map[[2]int64]*Site),
	}
	for i := range d.threads {
		d.threads[i] = &threadState{
			mem:    make(map[int64]tag),
			epochs: make(map[int64]uint64),
		}
	}
	return d
}

// Reports returns retained reports.
func (d *Detector) Reports() []Report { return d.reports }

// Stats returns aggregate counters.
func (d *Detector) Stats() Stats { return d.stats }

// Sites returns report sites sorted by descending count.
func (d *Detector) Sites() []Site {
	out := make([]Site, 0, len(d.sites))
	for _, s := range d.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].LoadPC < out[j].LoadPC
	})
	return out
}

// Step processes one dynamic instruction (vm.Observer).
func (d *Detector) Step(ev *vm.Event) {
	d.stats.Instructions++
	t := d.threads[ev.CPU]
	in := ev.Instr

	// Lock bookkeeping (CAS-identified, as in the other annotated
	// baselines).
	if in.Op == isa.OpCas {
		b := ev.Addr >> d.opts.BlockShift
		d.lockWords[b] = true
		if ev.IsStore && ev.Stored != 0 {
			t.held = append(t.held, b)
		}
		t.regs[in.Rd] = tag{}
		return
	}
	if in.Op.IsMem() {
		b := ev.Addr >> d.opts.BlockShift
		if d.lockWords[b] {
			if ev.IsStore && ev.Stored == 0 {
				// Release: values from this critical section go stale.
				t.epochs[b]++
				for i := len(t.held) - 1; i >= 0; i-- {
					if t.held[i] == b {
						t.held = append(t.held[:i], t.held[i+1:]...)
						break
					}
				}
			}
			return
		}
	}

	use := func(r isa.Reg) {
		if r == isa.RegZero {
			return
		}
		d.check(ev, t, t.regs[r])
	}

	switch {
	case in.Op == isa.OpLoad:
		use(in.Rs1) // address
		b := ev.Addr >> d.opts.BlockShift
		private := d.touch(b, ev.CPU)
		if mt := t.mem[b]; private && mt.valid() {
			// Reloading a private copy keeps (and checks) its taint.
			d.check(ev, t, mt)
			t.regs[in.Rd] = mt
		} else if len(t.held) > 0 {
			// Reading a variable inside a critical section produces a
			// value that goes stale when the section ends.
			lock := t.held[len(t.held)-1]
			t.regs[in.Rd] = tag{set: true, lock: lock, epoch: t.epochs[lock], pc: ev.PC, seq: ev.Seq}
			d.stats.TaintedLoads++
		} else {
			t.regs[in.Rd] = tag{}
		}

	case in.Op == isa.OpStore:
		use(in.Rs1)
		use(in.Rs2)
		d.touch(ev.Addr>>d.opts.BlockShift, ev.CPU)
		t.mem[ev.Addr>>d.opts.BlockShift] = t.regs[in.Rs2]

	case in.Op == isa.OpLI:
		t.regs[in.Rd] = tag{}

	case in.Op == isa.OpMov, in.Op == isa.OpAddi:
		use(in.Rs1)
		t.regs[in.Rd] = t.regs[in.Rs1]

	case in.Op.IsALU():
		use(in.Rs1)
		use(in.Rs2)
		nt := t.regs[in.Rs1]
		if !nt.valid() {
			nt = t.regs[in.Rs2]
		}
		t.regs[in.Rd] = nt

	case in.Op.IsCondBranch():
		use(in.Rs1)

	case in.Op == isa.OpJal:
		t.regs[in.Rd] = tag{}

	case in.Op == isa.OpJr:
		use(in.Rs1)
	}
}

// touch records an accessor and reports whether the block is still private
// to that thread.
func (d *Detector) touch(b int64, cpu int) bool {
	bit := uint64(1) << uint(cpu%64)
	d.owners[b] |= bit
	return d.owners[b] == bit
}

// check reports when the value's critical section has ended.
func (d *Detector) check(ev *vm.Event, t *threadState, tg tag) {
	if !tg.valid() || t.epochs[tg.lock] <= tg.epoch {
		return
	}
	d.stats.Reports++
	r := Report{CPU: ev.CPU, PC: ev.PC, Seq: ev.Seq, Lock: tg.lock, LoadPC: tg.pc, LoadSeq: tg.seq}
	key := [2]int64{ev.PC, tg.pc}
	s := d.sites[key]
	if s == nil {
		s = &Site{PC: ev.PC, LoadPC: tg.pc, First: r}
		d.sites[key] = s
	}
	s.Count++
	if len(d.reports) < d.opts.MaxReports {
		d.reports = append(d.reports, r)
	}
}
