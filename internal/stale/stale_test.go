package stale

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workloads"
)

type script struct {
	d   *Detector
	seq uint64
}

func newScript(n int) *script { return &script{d: New(n, Options{})} }

func (s *script) step(cpu int, pc int64, in isa.Instr, mut func(*vm.Event)) {
	e := vm.Event{Seq: s.seq, CPU: cpu, PC: pc, Instr: in}
	if mut != nil {
		mut(&e)
	}
	s.seq++
	s.d.Step(&e)
}

func (s *script) load(cpu int, pc int64, rd isa.Reg, addr int64) {
	s.step(cpu, pc, isa.Load(rd, isa.RegZero, addr), func(e *vm.Event) {
		e.Addr, e.IsLoad = addr, true
	})
}

func (s *script) store(cpu int, pc int64, rs isa.Reg, addr int64, val int64) {
	s.step(cpu, pc, isa.Store(rs, isa.RegZero, addr), func(e *vm.Event) {
		e.Addr, e.IsStore, e.Stored = addr, true, val
	})
}

func (s *script) acquire(cpu int, pc, lock int64) {
	s.step(cpu, pc, isa.Cas(8, 9, 10, 11), func(e *vm.Event) {
		e.Addr, e.IsLoad, e.IsStore, e.Stored = lock, true, true, 1
	})
}

func (s *script) release(cpu int, pc, lock int64) {
	s.store(cpu, pc, isa.RegZero, lock, 0)
}

const (
	rA = isa.Reg(8)
	rB = isa.Reg(9)
)

func TestUseInsideCriticalSectionClean(t *testing.T) {
	s := newScript(1)
	const l, x, y = 10, 100, 101
	s.acquire(0, 1, l)
	s.load(0, 2, rA, x)
	s.step(0, 3, isa.Addi(rA, rA, 1), nil)
	s.store(0, 4, rA, y, 7)
	s.release(0, 5, l)
	if got := s.d.Stats().Reports; got != 0 {
		t.Errorf("in-section uses reported %d", got)
	}
	if got := s.d.Stats().TaintedLoads; got != 1 {
		t.Errorf("tainted loads = %d, want 1", got)
	}
}

func TestUseAfterReleaseReports(t *testing.T) {
	s := newScript(1)
	const l, x, y = 10, 100, 101
	s.acquire(0, 1, l)
	s.load(0, 2, rA, x)
	s.release(0, 3, l)
	s.store(0, 4, rA, y, 7) // stale use
	st := s.d.Stats()
	if st.Reports != 1 {
		t.Fatalf("reports = %d, want 1", st.Reports)
	}
	r := s.d.Reports()[0]
	if r.PC != 4 || r.LoadPC != 2 || r.Lock != 10 {
		t.Errorf("report = %+v", r)
	}
	if r.String() == "" {
		t.Error("empty report string")
	}
}

func TestTaintThroughMemory(t *testing.T) {
	// Spill the tainted value to a stack slot, reload after release, use.
	s := newScript(1)
	const l, x, slot, y = 10, 100, 500, 101
	s.acquire(0, 1, l)
	s.load(0, 2, rA, x)
	s.store(0, 3, rA, slot, 7) // spill inside the section (ok)
	s.release(0, 4, l)
	s.load(0, 5, rB, slot) // reload the stale value
	s.store(0, 6, rB, y, 7)
	if got := s.d.Stats().Reports; got == 0 {
		t.Error("stale value laundered through memory not caught")
	}
}

func TestTaintThroughALU(t *testing.T) {
	s := newScript(1)
	const l, x = 10, 100
	s.acquire(0, 1, l)
	s.load(0, 2, rA, x)
	s.release(0, 3, l)
	s.step(0, 4, isa.ALU(isa.OpAdd, rB, rA, isa.RegZero), nil) // use: report
	if got := s.d.Stats().Reports; got != 1 {
		t.Errorf("ALU use of stale value: %d reports, want 1", got)
	}
	// The derived value is stale too.
	s.step(0, 5, isa.Beqz(rB, 7), nil)
	if got := s.d.Stats().Reports; got != 2 {
		t.Errorf("branch on derived stale value: %d reports, want 2", got)
	}
}

func TestFreshLoadOverwritesTaint(t *testing.T) {
	s := newScript(1)
	const l, x = 10, 100
	s.acquire(0, 1, l)
	s.load(0, 2, rA, x)
	s.release(0, 3, l)
	s.acquire(0, 4, l)
	s.load(0, 5, rA, x) // re-read under the lock: fresh
	s.store(0, 6, rA, 101, 7)
	s.release(0, 7, l)
	if got := s.d.Stats().Reports; got != 0 {
		t.Errorf("re-read value reported %d times", got)
	}
}

func TestUntaintedOutsideLocks(t *testing.T) {
	s := newScript(1)
	s.load(0, 1, rA, 100)
	s.store(0, 2, rA, 101, 7)
	st := s.d.Stats()
	if st.TaintedLoads != 0 || st.Reports != 0 {
		t.Errorf("lockless code tainted=%d reports=%d", st.TaintedLoads, st.Reports)
	}
}

func TestLIClearsTaint(t *testing.T) {
	s := newScript(1)
	const l = 10
	s.acquire(0, 1, l)
	s.load(0, 2, rA, 100)
	s.release(0, 3, l)
	s.step(0, 4, isa.LI(rA, 5), nil) // overwrite: no use
	s.store(0, 5, rA, 101, 5)
	if got := s.d.Stats().Reports; got != 0 {
		t.Errorf("overwritten register reported %d times", got)
	}
}

func TestSitesDeduplicate(t *testing.T) {
	s := newScript(1)
	const l, x, y = 10, 100, 101
	for i := 0; i < 4; i++ {
		s.acquire(0, 1, l)
		s.load(0, 2, rA, x)
		s.release(0, 3, l)
		s.store(0, 4, rA, y, 7)
	}
	if got := s.d.Stats().Reports; got != 4 {
		t.Errorf("dynamic reports = %d, want 4", got)
	}
	sites := s.d.Sites()
	if len(sites) != 1 || sites[0].Count != 4 || sites[0].PC != 4 || sites[0].LoadPC != 2 {
		t.Errorf("sites = %+v", sites)
	}
}

// TestPgSQLPostCommitStaleUse: the pgsql workload's post-commit ledger
// update reuses a value read under the warehouse lock — the pattern this
// detector exists to flag. It reports regardless of interference, where
// SVD reports only on actual conflicts: the §8 contrast.
func TestPgSQLPostCommitStaleUse(t *testing.T) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 4, Terminals: 4, Txns: 64, Seed: 1})
	m, err := w.NewVM(1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(w.NumThreads, Options{})
	m.Attach(d)
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Reports; got == 0 {
		t.Error("stale detector found nothing on pgsql's post-commit reuse")
	}
	// Every report should trace back to a load under a warehouse lock.
	for _, r := range d.Reports()[:min(3, len(d.Reports()))] {
		if r.Lock < 0 {
			t.Errorf("report without a lock: %+v", r)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
