package svd

// This file manages computational-unit storage. The detector allocates a
// CU for nearly every load of an untracked block and retires most of them
// within a few instructions (merged away by a store, or cut by a shared
// dependence); with the paper reporting thousands of CUs per million
// instructions, the allocator sits squarely on the hot path. Units are
// therefore carved from slab chunks (one heap allocation per cuSlabSize
// units) and recycled through a free list once provably unreachable.
//
// Reachability is tracked with reference counts. A CU is referenced from
// exactly four kinds of slots, and every assignment to one of those slots
// goes through acquire/release:
//
//   - blockState.cu        (a block's current unit)
//   - threadState.regs[r]  (register CU sets)
//   - ctrlEntry.cuSet      (Skipper control-stack sets)
//   - cu.parent            (union-find forwarding of merged units)
//
// Local variables never count: they are always shadowed by one of the
// slots above for the duration of their use (callers pin, see cut). When
// the last counted reference drops, the unit is unreachable — no future
// resolve, check, cut, or merge can see it — so it is reset and pushed
// onto the free list. Retirement (active=false) alone is NOT sufficient to
// recycle: stale references to a merged-away unit must keep forwarding to
// its union-find root until the last of them is lazily resolved away.
//
// Options.NoCUArena keeps the counting but never reuses memory, restoring
// the seed allocator's behavior for differential testing.

// cu is a computational unit: an inferred approximation of one dynamic
// atomic region, represented by its read (input) and write block sets
// (§4.3 "Represent CU with memory blocks, not dynamic instructions").
type cu struct {
	id     uint64
	born   uint64 // detector instruction count at creation (telemetry)
	parent *cu    // union-find forwarding set by merge_and_update
	active bool
	refs   int32    // counted references; see the file comment
	rs     blockSet // input blocks: read before written by this CU
	ws     blockSet // blocks written by this CU
}

// cuSlabSize is the slab chunk size: one heap allocation per this many
// fresh units.
const cuSlabSize = 256

// newCU returns a live, empty unit — from the free list when possible,
// else from the current slab chunk.
func (d *Detector) newCU() *cu {
	d.nextCU++
	d.stats.CUsCreated++
	var c *cu
	if n := len(d.free); n > 0 {
		c = d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		d.stats.CUsReused++
	} else {
		if len(d.slab) == 0 {
			d.slab = make([]cu, cuSlabSize)
		}
		c = &d.slab[0]
		d.slab = d.slab[1:]
		d.stats.CUsAllocated++
	}
	c.id = d.nextCU
	c.born = d.stats.Instructions
	c.active = true
	return c
}

// acquire records a new counted reference to c.
func (d *Detector) acquire(c *cu) *cu {
	c.refs++
	return c
}

// release drops a counted reference; the last one reclaims the unit.
func (d *Detector) release(c *cu) {
	c.refs--
	if c.refs == 0 {
		d.reclaim(c)
	}
}

// reclaim recycles an unreachable unit: its forwarding reference is
// dropped (cascading reclamation up dead union-find chains) and its
// storage returns to the free list.
func (d *Detector) reclaim(c *cu) {
	if p := c.parent; p != nil {
		c.parent = nil
		d.release(p)
	}
	c.active = false
	c.rs.reset()
	c.ws.reset()
	if d.opts.NoCUArena {
		return
	}
	d.stats.CUsRecycled++
	d.free = append(d.free, c)
}

// find resolves union-find forwarding with path compression, keeping
// reference counts consistent as parent slots are rewritten. A root —
// the common case once chains compress — inlines to one nil test.
func (d *Detector) find(c *cu) *cu {
	if c.parent == nil {
		return c
	}
	return d.findSlow(c)
}

func (d *Detector) findSlow(c *cu) *cu {
	for c.parent != nil {
		p := c.parent
		if pp := p.parent; pp != nil {
			d.acquire(pp)
			c.parent = pp
			d.release(p)
			c = pp
		} else {
			c = p
		}
	}
	return c
}

// resolve returns the live root units referenced by a register or control
// set, rewriting the set in place. The set owns one counted reference per
// element; dropped and forwarded elements have their references released
// or transferred accordingly.
func (d *Detector) resolve(set []*cu) []*cu {
	out := set[:0]
	for _, c := range set {
		root := d.find(c)
		if !root.active {
			d.release(c)
			continue
		}
		dup := false
		for _, p := range out {
			if p == root {
				dup = true
				break
			}
		}
		if dup {
			d.release(c)
			continue
		}
		if root != c {
			d.acquire(root)
			d.release(c)
		}
		out = append(out, root)
	}
	for i := len(out); i < len(set); i++ {
		set[i] = nil
	}
	return out
}

// releaseSet releases every reference a set owns and clears it.
func (d *Detector) releaseSet(set []*cu) {
	for i, c := range set {
		d.release(c)
		set[i] = nil
	}
}
