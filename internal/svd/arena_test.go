package svd

import (
	"reflect"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// runDetector executes a workload with one detector attached and returns
// it for comparison.
func runDetector(t *testing.T, w *workloads.Workload, seed uint64, opts Options) *Detector {
	t.Helper()
	m, err := w.NewVM(seed)
	if err != nil {
		t.Fatal(err)
	}
	d := New(w.Prog, w.NumThreads, opts)
	m.Attach(d)
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestArenaDifferential runs real workloads twice — once with the
// recycling arena, once with NoCUArena (every unit freshly allocated) —
// and requires identical observable output. Any reference-counting bug
// that recycles a unit still in use shows up here as divergence.
func TestArenaDifferential(t *testing.T) {
	cases := []struct {
		name string
		w    *workloads.Workload
	}{
		{"apache-buggy", workloads.ApacheLog(workloads.ApacheConfig{
			Threads: 4, Requests: 48, Buggy: true, Seed: 2,
		})},
		{"mysql-tables", workloads.MySQLTables(workloads.MySQLTablesConfig{
			Lockers: 3, Ops: 60,
		})},
		{"pgsql", workloads.PgSQLOLTP(workloads.PgSQLConfig{
			Warehouses: 2, Terminals: 4, Txns: 48, Seed: 2,
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				arena := runDetector(t, tc.w, seed, Options{})
				fresh := runDetector(t, tc.w, seed, Options{NoCUArena: true})

				if !reflect.DeepEqual(arena.Violations(), fresh.Violations()) {
					t.Errorf("seed %d: violations diverge with arena recycling", seed)
				}
				if !reflect.DeepEqual(arena.Log(), fresh.Log()) {
					t.Errorf("seed %d: a posteriori logs diverge with arena recycling", seed)
				}
				if !reflect.DeepEqual(arena.Sites(), fresh.Sites()) {
					t.Errorf("seed %d: sites diverge with arena recycling", seed)
				}
				as, fs := arena.Stats(), fresh.Stats()
				if as.CUsRecycled == 0 {
					t.Errorf("seed %d: arena never recycled a unit", seed)
				}
				if fs.CUsReused != 0 || fs.CUsRecycled != 0 {
					t.Errorf("seed %d: NoCUArena reused units: %+v", seed, fs)
				}
				// Everything except the arena counters must agree.
				as.CUsAllocated, fs.CUsAllocated = 0, 0
				as.CUsReused, fs.CUsReused = 0, 0
				as.CUsRecycled, fs.CUsRecycled = 0, 0
				if as != fs {
					t.Errorf("seed %d: stats diverge:\narena %+v\nfresh %+v", seed, as, fs)
				}
			}
		})
	}
}

// TestArenaRecyclesUnits checks the free list actually serves allocations:
// after sustained load, most unit creations must be reuses.
func TestArenaRecyclesUnits(t *testing.T) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{Warehouses: 2, Terminals: 4, Txns: 64, Seed: 1})
	d := runDetector(t, w, 1, Options{})
	st := d.Stats()
	if st.CUsCreated == 0 {
		t.Fatal("no units created")
	}
	if st.CUsAllocated+st.CUsReused != st.CUsCreated {
		t.Errorf("arena accounting broken: allocated %d + reused %d != created %d",
			st.CUsAllocated, st.CUsReused, st.CUsCreated)
	}
	if reuse := float64(st.CUsReused) / float64(st.CUsCreated); reuse < 0.5 {
		t.Errorf("reuse rate %.2f; free list is not serving the hot path", reuse)
	}
}

// TestRefcountsBalanceAfterQuiesce: when every thread's registers, blocks,
// and control stacks are the only holders left, total outstanding
// references must equal exactly what those slots hold.
func TestRefcountsBalanceAfterQuiesce(t *testing.T) {
	w := workloads.MySQLTables(workloads.MySQLTablesConfig{Lockers: 3, Ops: 40})
	d := runDetector(t, w, 3, Options{})

	// Count references the four counted slot kinds hold.
	wantRefs := map[*cu]int32{}
	for _, th := range d.threads {
		th.blocks.Range(func(_ int64, bs *blockState) bool {
			if bs.touched && bs.cu != nil {
				wantRefs[bs.cu]++
			}
			return true
		})
		for _, set := range th.regs {
			for _, c := range set {
				wantRefs[c]++
			}
		}
		for _, e := range th.ctrl {
			for _, c := range e.cuSet {
				wantRefs[c]++
			}
		}
	}
	// Add union-find forwarding references, transitively.
	for c := range wantRefs {
		for p := c.parent; p != nil; p = p.parent {
			wantRefs[p]++
		}
	}
	for c, want := range wantRefs {
		if c.refs != want {
			t.Errorf("cu %d: refs %d, want %d", c.id, c.refs, want)
		}
	}
}

// TestEvictBlockReleasesUnit: hardware-mode eviction must drop the block's
// reference so the unit can recycle once unreferenced elsewhere.
func TestEvictBlockReleasesUnit(t *testing.T) {
	s := newScript(1, Options{})
	const b = 100
	s.store(0, 0, rA, b)
	bs := s.d.threads[0].lookupBlock(b)
	if bs == nil || bs.cu == nil {
		t.Fatal("store did not attach a unit")
	}
	c := bs.cu
	refsBefore := c.refs
	s.d.EvictBlock(0, b)
	if got := s.d.threads[0].lookupBlock(b); got != nil {
		t.Error("block still tracked after eviction")
	}
	if c.refs != refsBefore-1 {
		t.Errorf("eviction left refs at %d, want %d", c.refs, refsBefore-1)
	}
	// Evicting again is a no-op.
	s.d.EvictBlock(0, b)
}

// TestDetectorStepAllocFree: after warm-up, the detector hot path must not
// allocate per instruction.
func TestDetectorStepAllocFree(t *testing.T) {
	w := workloads.MySQLTables(workloads.MySQLTablesConfig{Lockers: 3, Ops: 40})
	m, err := w.NewVM(1)
	if err != nil {
		t.Fatal(err)
	}
	var evs []vm.Event
	m.Attach(vm.ObserverFunc(func(ev *vm.Event) { evs = append(evs, *ev) }))
	if _, err := m.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	d := New(w.Prog, w.NumThreads, Options{})
	for i := range evs {
		d.Step(&evs[i]) // warm-up: materialize pages, grow scratch
	}
	avg := testing.AllocsPerRun(10, func() {
		for i := range evs {
			d.Step(&evs[i])
		}
	})
	// The replayed stream re-triggers log dedup lookups but no steady-state
	// growth; a fraction of an alloc per full replay is the tolerance.
	if avg > 2 {
		t.Errorf("steady-state replay allocates %.1f times per %d events", avg, len(evs))
	}
}
