package svd

// blockSetInline is the number of footprint blocks a computational unit
// can hold without heap allocation. Most CUs are short — a handful of
// loads feeding one store (§4.3 reports CUs of a few instructions) — so
// eight inline slots absorb the common case; larger units spill to a map.
const blockSetInline = 8

// blockSet is a small-set of block numbers: the rs/ws footprint of a
// computational unit. Up to blockSetInline members live in an inline
// array (no allocation, insertion-ordered, linear membership tests);
// beyond that the set spills into a map. The zero value is an empty set.
type blockSet struct {
	n      int32
	inline [blockSetInline]int64
	spill  map[int64]struct{}
}

// len returns the member count.
func (s *blockSet) len() int {
	if s.spill != nil {
		return len(s.spill)
	}
	return int(s.n)
}

// has reports membership.
func (s *blockSet) has(b int64) bool {
	if s.spill != nil {
		_, ok := s.spill[b]
		return ok
	}
	for i := int32(0); i < s.n; i++ {
		if s.inline[i] == b {
			return true
		}
	}
	return false
}

// add inserts b (idempotent).
func (s *blockSet) add(b int64) {
	if s.spill != nil {
		s.spill[b] = struct{}{}
		return
	}
	for i := int32(0); i < s.n; i++ {
		if s.inline[i] == b {
			return
		}
	}
	if s.n < blockSetInline {
		s.inline[s.n] = b
		s.n++
		return
	}
	s.spill = make(map[int64]struct{}, 2*blockSetInline)
	for _, v := range s.inline {
		s.spill[v] = struct{}{}
	}
	s.spill[b] = struct{}{}
	s.n = 0
}

// remove deletes b if present.
func (s *blockSet) remove(b int64) {
	if s.spill != nil {
		delete(s.spill, b)
		return
	}
	for i := int32(0); i < s.n; i++ {
		if s.inline[i] == b {
			s.n--
			s.inline[i] = s.inline[s.n]
			return
		}
	}
}

// forEach visits members until f returns false. Inline members are
// visited in insertion order; spilled members in map order.
func (s *blockSet) forEach(f func(b int64) bool) {
	if s.spill != nil {
		for b := range s.spill {
			if !f(b) {
				return
			}
		}
		return
	}
	for i := int32(0); i < s.n; i++ {
		if !f(s.inline[i]) {
			return
		}
	}
}

// reset empties the set, dropping any spill map.
func (s *blockSet) reset() {
	s.n = 0
	s.spill = nil
}
