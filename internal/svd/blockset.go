package svd

// blockSetInline is the number of footprint blocks a computational unit
// can hold without heap allocation. Most CUs are short — a handful of
// loads feeding one store (§4.3 reports CUs of a few instructions) — so
// eight inline slots absorb the common case; larger units spill to an
// indexed set.
const blockSetInline = 8

// blockSet is a small-set of block numbers: the rs/ws footprint of a
// computational unit. Up to blockSetInline members live in an inline
// array (no allocation, insertion-ordered, linear membership tests);
// beyond that the set spills into a map-indexed slice. The slice keeps a
// deterministic order (insertion order, perturbed only by swap-deletes),
// which matters: violation checks stop at the first conflicting block,
// so iteration order decides which block a report names, and a detector
// fed the same event stream twice must produce bit-identical reports —
// the contract the wire service's differential tests pin down. Go map
// order would break that. The zero value is an empty set.
type blockSet struct {
	n      int32
	inline [blockSetInline]int64
	spill  map[int64]int32 // member -> index into order
	order  []int64
}

// len returns the member count.
func (s *blockSet) len() int {
	if s.spill != nil {
		return len(s.order)
	}
	return int(s.n)
}

// has reports membership.
func (s *blockSet) has(b int64) bool {
	if s.spill != nil {
		_, ok := s.spill[b]
		return ok
	}
	for i := int32(0); i < s.n; i++ {
		if s.inline[i] == b {
			return true
		}
	}
	return false
}

// add inserts b (idempotent).
func (s *blockSet) add(b int64) {
	if s.spill != nil {
		if _, ok := s.spill[b]; !ok {
			s.spill[b] = int32(len(s.order))
			s.order = append(s.order, b)
		}
		return
	}
	for i := int32(0); i < s.n; i++ {
		if s.inline[i] == b {
			return
		}
	}
	if s.n < blockSetInline {
		s.inline[s.n] = b
		s.n++
		return
	}
	s.spill = make(map[int64]int32, 2*blockSetInline)
	s.order = make([]int64, 0, 2*blockSetInline)
	for _, v := range s.inline {
		s.spill[v] = int32(len(s.order))
		s.order = append(s.order, v)
	}
	s.spill[b] = int32(len(s.order))
	s.order = append(s.order, b)
	s.n = 0
}

// remove deletes b if present (swap-delete, same as the inline case).
func (s *blockSet) remove(b int64) {
	if s.spill != nil {
		i, ok := s.spill[b]
		if !ok {
			return
		}
		delete(s.spill, b)
		last := int32(len(s.order) - 1)
		if i != last {
			moved := s.order[last]
			s.order[i] = moved
			s.spill[moved] = i
		}
		s.order = s.order[:last]
		return
	}
	for i := int32(0); i < s.n; i++ {
		if s.inline[i] == b {
			s.n--
			s.inline[i] = s.inline[s.n]
			return
		}
	}
}

// at returns the i-th member in the set's deterministic order,
// 0 <= i < len(). Paired with len it gives closure-free iteration for
// the violation-check hot path: a forEach callback capturing locals is
// a heap allocation per call, which at one check per store dominated
// the detector's steady-state allocation profile.
func (s *blockSet) at(i int) int64 {
	if s.spill != nil {
		return s.order[i]
	}
	return s.inline[i]
}

// forEach visits members until f returns false, in the set's
// deterministic order. f must not mutate the set it is iterating.
func (s *blockSet) forEach(f func(b int64) bool) {
	if s.spill != nil {
		for _, b := range s.order {
			if !f(b) {
				return
			}
		}
		return
	}
	for i := int32(0); i < s.n; i++ {
		if !f(s.inline[i]) {
			return
		}
	}
}

// reset empties the set, dropping any spill storage.
func (s *blockSet) reset() {
	s.n = 0
	s.spill = nil
	s.order = nil
}
