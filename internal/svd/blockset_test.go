package svd

import (
	"sort"
	"testing"
)

func setMembers(s *blockSet) []int64 {
	var out []int64
	s.forEach(func(b int64) bool { out = append(out, b); return true })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBlockSetInline(t *testing.T) {
	var s blockSet
	if s.len() != 0 || s.has(1) {
		t.Fatal("zero value not empty")
	}
	s.add(5)
	s.add(7)
	s.add(5) // idempotent
	if s.len() != 2 || !s.has(5) || !s.has(7) || s.has(6) {
		t.Fatalf("inline set wrong: %v", setMembers(&s))
	}
	s.remove(5)
	if s.len() != 1 || s.has(5) || !s.has(7) {
		t.Fatalf("remove broke set: %v", setMembers(&s))
	}
	s.remove(99) // absent: no-op
	if s.len() != 1 {
		t.Fatal("removing absent member changed size")
	}
}

func TestBlockSetSpill(t *testing.T) {
	var s blockSet
	n := int64(3 * blockSetInline)
	for i := int64(0); i < n; i++ {
		s.add(i * 10)
		s.add(i * 10) // idempotent across the spill boundary
	}
	if s.spill == nil {
		t.Fatal("set did not spill")
	}
	if int64(s.len()) != n {
		t.Fatalf("len = %d, want %d", s.len(), n)
	}
	for i := int64(0); i < n; i++ {
		if !s.has(i * 10) {
			t.Errorf("missing member %d after spill", i*10)
		}
	}
	s.remove(10)
	if s.has(10) || int64(s.len()) != n-1 {
		t.Error("remove after spill failed")
	}
	// Early-terminating iteration.
	visits := 0
	s.forEach(func(int64) bool { visits++; return false })
	if visits != 1 {
		t.Errorf("forEach after false: %d visits, want 1", visits)
	}
	s.reset()
	if s.len() != 0 || s.spill != nil || s.has(20) {
		t.Error("reset left members behind")
	}
}

func TestBlockSetInlineInsertionOrder(t *testing.T) {
	var s blockSet
	for _, b := range []int64{9, 3, 7} {
		s.add(b)
	}
	var got []int64
	s.forEach(func(b int64) bool { got = append(got, b); return true })
	want := []int64{9, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inline iteration order %v, want insertion order %v", got, want)
		}
	}
}
