package svd

import "repro/internal/blockstore"

// Clone deep-copies the detector. Backward error recovery snapshots the
// detector together with the machine: the paper's hardware BER keeps the
// detector's state (block FSMs, CU references) inside the checkpointed
// caches, so a rollback restores it — resetting the detector instead would
// blind it to any computational unit spanning a checkpoint boundary.
//
// Computational units are translated through a mapping so the clone's CU
// graph is disjoint from the original's; dead units (merged or cut) are
// dropped, which matches the lazy resolution the detector applies anyway.
// Clone units are ordinary heap allocations with one counted reference per
// installed slot, so the clone's arena works exactly like a fresh
// detector's.
func (d *Detector) Clone() *Detector {
	nd := &Detector{
		prog:   d.prog,
		opts:   d.opts,
		nextCU: d.nextCU,
		stats:  d.stats,
	}
	nd.violations = append([]Violation(nil), d.violations...)
	nd.logEntries = append([]LogEntry(nil), d.logEntries...)
	nd.logSeen = make(map[logKey]int, len(d.logSeen))
	for k, v := range d.logSeen {
		nd.logSeen[k] = v
	}
	if d.sites != nil {
		nd.sites = make(map[int64]*Site, len(d.sites))
		for k, s := range d.sites {
			cp := *s
			nd.sites[k] = &cp
		}
	}
	if d.ix != nil {
		nd.ix = blockstore.NewInterest(blockstore.Options{Sparse: nd.opts.SparseBlockTable})
	}

	cuMap := make(map[*cu]*cu)
	translate := func(c *cu) *cu {
		if c == nil {
			return nil
		}
		c = d.find(c)
		if !c.active {
			return nil
		}
		if nc, ok := cuMap[c]; ok {
			return nc
		}
		nc := &cu{id: c.id, born: c.born, active: true}
		c.rs.forEach(func(b int64) bool { nc.rs.add(b); return true })
		c.ws.forEach(func(b int64) bool { nc.ws.add(b); return true })
		cuMap[c] = nc
		return nc
	}
	translateSet := func(set []*cu) []*cu {
		var out []*cu
		for _, c := range set {
			if nc := translate(c); nc != nil {
				out = append(out, nd.acquire(nc))
			}
		}
		return out
	}

	nd.threads = make([]*threadState, len(d.threads))
	for i, t := range d.threads {
		nt := &threadState{
			d:       nd,
			id:      t.id,
			blocks:  blockstore.New[blockState](blockstore.Options{Sparse: nd.opts.SparseBlockTable}),
			nblocks: t.nblocks,
			depth:   t.depth,
		}
		t.blocks.Range(func(b int64, bs *blockState) bool {
			if !bs.touched {
				return true
			}
			if nd.ix != nil {
				nd.ix.Add(b, nt.id)
			}
			cp := *bs
			cp.cu = translate(bs.cu)
			if cp.cu != nil {
				nd.acquire(cp.cu)
			} else if bs.cu != nil {
				// The unit died; the block's FSM resets with it.
				cp.state = stIdle
				cp.conflict = false
			}
			*nt.blocks.Ensure(b) = cp
			return true
		})
		for r := range t.regs {
			nt.regs[r] = translateSet(t.regs[r])
		}
		nt.ctrl = make([]ctrlEntry, len(t.ctrl))
		for j, e := range t.ctrl {
			nt.ctrl[j] = ctrlEntry{
				cuSet:    translateSet(e.cuSet),
				reconvPC: e.reconvPC,
				depth:    e.depth,
			}
		}
		nd.threads[i] = nt
	}
	return nd
}

// CopyFrom rewinds the detector to a previously cloned state (the clone
// itself stays reusable).
func (d *Detector) CopyFrom(saved *Detector) {
	fresh := saved.Clone()
	*d = *fresh
	for _, t := range d.threads {
		t.d = d
	}
}
