package svd

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// captureEvents runs a workload and returns its event stream.
func captureEvents(t *testing.T, w *workloads.Workload, seed uint64) []vm.Event {
	t.Helper()
	m, err := w.NewVM(seed)
	if err != nil {
		t.Fatal(err)
	}
	var evs []vm.Event
	m.Attach(vm.ObserverFunc(func(ev *vm.Event) { evs = append(evs, *ev) }))
	if _, err := m.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestCloneContinuesIdentically: feeding the same suffix to the original
// and to a clone taken mid-stream yields identical results — the property
// BER's checkpointing relies on.
func TestCloneContinuesIdentically(t *testing.T) {
	w := workloads.ApacheLog(workloads.ApacheConfig{Threads: 4, Requests: 24, Buggy: true, Seed: 5})
	evs := captureEvents(t, w, 3)
	mid := len(evs) / 2

	orig := New(w.Prog, w.NumThreads, Options{})
	for i := 0; i < mid; i++ {
		orig.Step(&evs[i])
	}
	clone := orig.Clone()

	for i := mid; i < len(evs); i++ {
		orig.Step(&evs[i])
	}
	for i := mid; i < len(evs); i++ {
		clone.Step(&evs[i])
	}

	so, sc := orig.Stats(), clone.Stats()
	if so.Violations != sc.Violations || so.LogEntries != sc.LogEntries ||
		so.SharedCutLoads != sc.SharedCutLoads || so.SharedCutRemote != sc.SharedCutRemote {
		t.Errorf("clone diverged: orig=%+v clone=%+v", so, sc)
	}
	if len(orig.Sites()) != len(clone.Sites()) {
		t.Errorf("site counts differ: %d vs %d", len(orig.Sites()), len(clone.Sites()))
	}
	if len(orig.Log()) != len(clone.Log()) {
		t.Errorf("log lengths differ: %d vs %d", len(orig.Log()), len(clone.Log()))
	}
}

// TestCloneIsIsolated: stepping the original does not disturb the clone.
func TestCloneIsIsolated(t *testing.T) {
	s := newScript(2, Options{})
	const X = 100
	s.load(0, 0, rA, X)
	clone := s.d.Clone()
	snapViol := clone.Stats().Violations

	// Drive the original into a violation.
	s.store(1, 0, rB, X)
	s.addi(0, 1, rA, rA)
	s.store(0, 2, rA, X)
	if s.d.Stats().Violations == 0 {
		t.Fatal("original did not violate")
	}
	if clone.Stats().Violations != snapViol {
		t.Error("clone's stats moved with the original")
	}
	// The clone, fed the same events, detects independently.
	ev := vm.Event{Seq: 100, CPU: 1, PC: 0, Instr: isa.Store(rB, isa.RegZero, X), Addr: X, IsStore: true}
	clone.Step(&ev)
	ev = vm.Event{Seq: 101, CPU: 0, PC: 1, Instr: isa.Addi(rA, rA, 1)}
	clone.Step(&ev)
	ev = vm.Event{Seq: 102, CPU: 0, PC: 2, Instr: isa.Store(rA, isa.RegZero, X), Addr: X, IsStore: true}
	clone.Step(&ev)
	if clone.Stats().Violations != 1 {
		t.Errorf("clone violations = %d, want 1", clone.Stats().Violations)
	}
}

// TestCopyFromRewinds: CopyFrom restores a detector to the cloned state
// and the source clone stays reusable.
func TestCopyFromRewinds(t *testing.T) {
	s := newScript(2, Options{})
	const X = 100
	s.load(0, 0, rA, X)
	saved := s.d.Clone()

	s.store(1, 0, rB, X)
	s.addi(0, 1, rA, rA)
	s.store(0, 2, rA, X)
	if s.d.Stats().Violations != 1 {
		t.Fatal("setup did not violate")
	}

	s.d.CopyFrom(saved)
	if got := s.d.Stats().Violations; got != 0 {
		t.Errorf("violations after rewind = %d", got)
	}
	// Replaying the suffix reproduces the violation; the saved clone is
	// still usable for another rewind.
	s.store(1, 3, rB, X)
	s.addi(0, 4, rA, rA)
	s.store(0, 5, rA, X)
	if got := s.d.Stats().Violations; got != 1 {
		t.Errorf("violations after replay = %d, want 1", got)
	}
	s.d.CopyFrom(saved)
	if got := s.d.Stats().Violations; got != 0 {
		t.Errorf("second rewind left %d violations", got)
	}
}

// TestCloneDropsDeadUnits: merged-away and cut units do not survive
// cloning; blocks pointing at them reset.
func TestCloneDropsDeadUnits(t *testing.T) {
	s := newScript(2, Options{})
	const A, B, X, Q = 100, 101, 102, 103
	s.load(0, 0, rA, A)
	s.load(0, 1, rB, B)
	s.alu(0, 2, rC, rA, rB)
	s.store(0, 3, rC, X) // merges CU(A) and CU(B)
	// Shared-dependence cut on Q.
	s.store(0, 4, rA, Q)
	s.store(1, 0, rA, Q)
	s.load(0, 5, rB, Q) // cut

	clone := s.d.Clone()
	for _, tr := range clone.threads {
		tr.blocks.Range(func(b int64, bs *blockState) bool {
			if bs.touched && bs.cu != nil {
				c := clone.find(bs.cu)
				if !c.active {
					t.Errorf("block %d references dead unit after clone", b)
				}
				if c.parent != nil {
					t.Errorf("block %d's unit has forwarding after clone", b)
				}
			}
			return true
		})
	}
}
