package svd

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Columnar fast path. StepColumns consumes the struct-of-arrays batch
// form (vm.EventBatch) that the wire decoder and the VM's columnar ring
// produce, so the served ingest path never materializes []vm.Event.
// Output is bit-identical to feeding the rows through Step one at a
// time: the differential test in internal/report chops batches at
// pathological boundaries and compares violations, witnesses, the
// a-posteriori log and stats against the per-event path.

// StepColumns processes one columnar batch (vm.ColumnObserver).
//
// The batch is walked as runs of same-thread events so the thread
// instance lookup happens once per run, and memory rows inside a run
// are further grouped into same-block sub-runs: the block id comes from
// the batch's Blocks column when its shift matches ours (computed once
// at append time by the producer) and is compared against the previous
// row's, so a sub-run resolves the thread's block state through the MRU
// cache's one-compare hit path after the first access and — once an
// access proves the block quiet — skips the remote fan-out for the rest
// of the sub-run outright. Quietness is stable within a sub-run because
// only the accessing thread can gain interest in the block between its
// own consecutive accesses, and a thread is excluded from its own
// fan-out; see fanout.
//
// Bounds checks on PC are hoisted out of the row loop: one pass ORs
// every PC with its distance from the end of the program, so a single
// sign test proves the whole batch in-range before any row executes.
// A batch that fails poisons the detector — the batch is dropped,
// BatchErr reports a vm.ErrBadBatch, and every later batch is rejected
// — so a malformed stream cannot half-apply and then diverge from the
// per-event path. The VM and the validating wire decoder never produce
// such a batch; the preflight guards direct API callers.
func (d *Detector) StepColumns(eb *vm.EventBatch) {
	if d.batchErr != nil {
		return
	}
	code := d.prog.Code
	n := eb.Len()
	codeLen := int64(len(code))
	var or int64
	for _, pc := range eb.PC {
		or |= pc | (codeLen - 1 - pc)
	}
	if or < 0 {
		d.batchErr = fmt.Errorf("%w: pc outside program of %d instructions", vm.ErrBadBatch, codeLen)
		return
	}
	shift := d.opts.BlockShift
	blocks := eb.Blocks
	if s, on := eb.BlockShift(); !on || s != shift {
		blocks = nil
	}
	peers := uint64(len(d.threads) - 1)
	// One event materialized in place per row. The variable lives outside
	// the loops so each iteration overwrites fields in the same stack slot
	// instead of building a fresh struct through a temporary — at ~72
	// bytes per Event the construct-and-copy showed up as a double-digit
	// ns/event tax on the served ingest path.
	var ev vm.Event
	for i := 0; i < n; {
		cpu := eb.CPU[i]
		t := d.threads[cpu]
		ev.CPU = int(cpu)
		j := i + 1
		for j < n && eb.CPU[j] == cpu {
			j++
		}
		// Sub-run state: the block of the previous memory row and whether
		// an access already proved it quiet. Any non-memory row is
		// interest-neutral, so it does not break a sub-run.
		var runB int64
		runLive, runQuiet := false, false
		for k := i; k < j; k++ {
			// Instructions advances per event, not per batch: observer
			// timestamps (recorder events, CU birth times) are derived
			// from it and must match the per-event path exactly.
			d.stats.Instructions++
			flags := eb.Flags[k]
			pc := eb.PC[k]
			ev.Seq = eb.Seq[k]
			ev.PC = pc
			ev.Instr = code[pc]
			ev.Addr = eb.Addr[k]
			ev.IsLoad = flags&vm.FlagLoad != 0
			ev.IsStore = flags&vm.FlagStore != 0
			ev.Loaded = eb.Loaded[k]
			ev.Stored = eb.Stored[k]
			ev.Taken = flags&vm.FlagTaken != 0
			in := &ev.Instr
			if flags&(vm.FlagLoad|vm.FlagStore) == 0 || !in.Op.IsMem() {
				t.local(&ev)
				if flags&(vm.FlagLoad|vm.FlagStore) != 0 {
					// Memory flags on a non-memory opcode: rows the VM never
					// emits and the validating deframer rejects, kept
					// behavior-identical to the per-event path for direct
					// callers. No sub-run bookkeeping — the fanout result
					// says nothing about load/store rows of the same block.
					d.fanout(&ev, ev.Addr>>shift)
				}
				continue
			}
			var b int64
			if blocks != nil {
				b = blocks[k]
			} else {
				b = ev.Addr >> shift
			}
			if !runLive || b != runB {
				runLive, runB, runQuiet = true, b, false
			}
			if len(t.ctrl) != 0 {
				t.popCtrl(pc)
			}
			switch in.Op {
			case isa.OpLoad:
				d.stats.Loads++
				t.load(&ev, b, in.Rd)
			case isa.OpStore:
				d.stats.Stores++
				t.store(&ev, b, in.Rs2, in.Rs1)
			case isa.OpCas:
				d.stats.Loads++
				t.load(&ev, b, in.Rd)
				if ev.IsStore {
					d.stats.Stores++
					t.store(&ev, b, in.Rs3, in.Rs1)
				}
			}
			if runQuiet || t.quietHit(b) {
				runQuiet = true
				d.stats.RemoteSkipped += peers
			} else {
				runQuiet = d.fanout(&ev, b)
			}
		}
		i = j
	}
}
