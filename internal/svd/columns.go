package svd

import "repro/internal/vm"

// Columnar fast path. StepColumns consumes the struct-of-arrays batch
// form (vm.EventBatch) that the wire decoder and the VM's columnar ring
// produce, so the served ingest path never materializes []vm.Event.
// Output is bit-identical to feeding the rows through Step one at a
// time: the differential test in internal/report chops batches at
// pathological boundaries and compares violations, witnesses, the
// a-posteriori log and stats against the per-event path.

// StepColumns processes one columnar batch (vm.ColumnObserver). The
// batch is segmented into runs of same-thread events so the thread
// instance lookup happens once per run rather than once per row; within
// a run each row is materialized as a stack Event (Instr rebound from
// the program) and fed through the same local/fanout pair as Step.
func (d *Detector) StepColumns(eb *vm.EventBatch) {
	code := d.prog.Code
	shift := d.opts.BlockShift
	n := eb.Len()
	// One event materialized in place per row. The variable lives outside
	// the loops so each iteration overwrites fields in the same stack slot
	// instead of building a fresh struct through a temporary — at ~72
	// bytes per Event the construct-and-copy showed up as a double-digit
	// ns/event tax on the served ingest path.
	var ev vm.Event
	for i := 0; i < n; {
		cpu := eb.CPU[i]
		t := d.threads[cpu]
		ev.CPU = int(cpu)
		j := i + 1
		for j < n && eb.CPU[j] == cpu {
			j++
		}
		for k := i; k < j; k++ {
			// Instructions advances per event, not per batch: observer
			// timestamps (recorder events, CU birth times) are derived
			// from it and must match the per-event path exactly.
			d.stats.Instructions++
			flags := eb.Flags[k]
			pc := eb.PC[k]
			ev.Seq = eb.Seq[k]
			ev.PC = pc
			ev.Instr = code[pc]
			ev.Addr = eb.Addr[k]
			ev.IsLoad = flags&vm.FlagLoad != 0
			ev.IsStore = flags&vm.FlagStore != 0
			ev.Loaded = eb.Loaded[k]
			ev.Stored = eb.Stored[k]
			ev.Taken = flags&vm.FlagTaken != 0
			t.local(&ev)
			if flags&(vm.FlagLoad|vm.FlagStore) != 0 {
				d.fanout(&ev, ev.Addr>>shift)
			}
		}
		i = j
	}
}
