package svd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// The a posteriori examination (§2.3): the programmer reads the log of
// (s, rw, lw) triples to discover erroneous executions SVD missed online —
// the paper's authors diagnosed the MySQL prepared-query crash this way.
// Examine automates the grouping a human would do: fold the triples by
// variable, characterize the communication shape, and rank the groups the
// way an examiner would read them.

// Finding is one examined variable: all log triples touching one block,
// with the communication shape summarized.
type Finding struct {
	Block  int64
	Symbol string // data symbol covering the block, if known

	// Triples are the static log entries for this block, heaviest first.
	Triples []LogEntry

	// Symmetric reports that local and remote writes come from the same
	// program points — different threads running the same store and then
	// reading their own value back. This is the signature of a variable
	// that was meant to be thread-local (the Figure 3 bug): each thread
	// writes it as if it owned it.
	Symmetric bool

	// Readers and Writers count the distinct threads observed reading
	// back and remotely overwriting the block.
	Readers, Writers int

	// Dynamic totals the dynamic occurrences across the triples.
	Dynamic uint64
}

// Describe renders a one-paragraph reading of the finding.
func (f Finding) Describe(prog *isa.Program) string {
	var b strings.Builder
	name := f.Symbol
	if name == "" {
		name = fmt.Sprintf("block %d", f.Block)
	}
	fmt.Fprintf(&b, "%s: %d threads had their writes overwritten by %d others (%d dynamic occurrences)\n",
		name, f.Readers, f.Writers, f.Dynamic)
	if f.Symmetric {
		fmt.Fprintf(&b, "  symmetric: every thread writes at the same program point and reads its value back —\n")
		fmt.Fprintf(&b, "  the signature of a variable that was meant to be thread-local\n")
	}
	for i, e := range f.Triples {
		if i >= 3 {
			fmt.Fprintf(&b, "  ... %d more triples\n", len(f.Triples)-3)
			break
		}
		fmt.Fprintf(&b, "  read %s: local write %s overwritten by cpu %d write %s (%dx)\n",
			locOrPC(prog, e.ReadPC), locOrPC(prog, e.LocalWritePC),
			e.RemoteWriteCPU, locOrPC(prog, e.RemoteWritePC), e.Dynamic)
	}
	return b.String()
}

func locOrPC(prog *isa.Program, pc int64) string {
	if prog != nil {
		if loc := prog.LocationOf(pc); loc != "" {
			return loc
		}
	}
	return fmt.Sprintf("pc %d", pc)
}

// Examine groups and ranks the a posteriori log. Symmetric findings rank
// first (they are the strongest mistakenly-shared-variable candidates),
// then by dynamic occurrence count.
func Examine(prog *isa.Program, log []LogEntry) []Finding {
	byBlock := map[int64][]LogEntry{}
	for _, e := range log {
		byBlock[e.Block] = append(byBlock[e.Block], e)
	}
	var out []Finding
	for block, entries := range byBlock {
		// Full ordering: Dynamic alone ties between distinct static triples,
		// and an unstable sort would let run-to-run input order leak into
		// the report. The PC triple is unique per entry (the detector dedups
		// on it), so this comparison is total and the output deterministic.
		sort.Slice(entries, func(i, j int) bool {
			a, b := &entries[i], &entries[j]
			if a.Dynamic != b.Dynamic {
				return a.Dynamic > b.Dynamic
			}
			if a.ReadPC != b.ReadPC {
				return a.ReadPC < b.ReadPC
			}
			if a.RemoteWritePC != b.RemoteWritePC {
				return a.RemoteWritePC < b.RemoteWritePC
			}
			return a.LocalWritePC < b.LocalWritePC
		})
		f := Finding{Block: block, Triples: entries}
		if prog != nil {
			f.Symbol = prog.SymbolFor(block)
		}
		var readerMask, writerMask uint64
		localPCs := map[int64]bool{}
		remotePCs := map[int64]bool{}
		for _, e := range entries {
			readerMask |= e.ReaderCPUs | cpuBit(e.CPU)
			writerMask |= e.WriterCPUs | cpuBit(e.RemoteWriteCPU)
			localPCs[e.LocalWritePC] = true
			remotePCs[e.RemoteWritePC] = true
			f.Dynamic += e.Dynamic
		}
		f.Readers, f.Writers = popcount(readerMask), popcount(writerMask)
		// Symmetric: the remote writes hit the very program points the
		// local writes came from, and more than one thread is involved on
		// each side.
		f.Symmetric = f.Readers >= 2 && f.Writers >= 2 && sameSet(localPCs, remotePCs)
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Symmetric != out[j].Symmetric {
			return out[i].Symmetric
		}
		if out[i].Dynamic != out[j].Dynamic {
			return out[i].Dynamic > out[j].Dynamic
		}
		return out[i].Block < out[j].Block
	})
	return out
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func sameSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
