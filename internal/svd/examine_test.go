package svd

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

// TestExamineFindsMistakenlySharedVariables runs the Figure 3 workload and
// checks the examiner ranks the mistakenly shared variables first, marked
// symmetric — the automated version of the examination that root-caused
// the MySQL crash (§7.1).
func TestExamineFindsMistakenlySharedVariables(t *testing.T) {
	w := workloads.MySQLPrepared(workloads.MySQLPreparedConfig{Threads: 4, Queries: 64, Buggy: true, Seed: 2})
	for seed := uint64(0); seed < 6; seed++ {
		m, err := w.NewVM(seed)
		if err != nil {
			t.Fatal(err)
		}
		d := New(w.Prog, w.NumThreads, Options{})
		m.Attach(d)
		if _, err := m.Run(1 << 24); err != nil {
			t.Fatal(err)
		}
		if bad, _ := w.Check(m); !bad {
			continue
		}
		findings := Examine(w.Prog, d.Log())
		if len(findings) == 0 {
			t.Fatal("no findings from a corrupted run")
		}
		// The top symmetric findings must name the bug's variables.
		var symNames []string
		for _, f := range findings {
			if f.Symmetric {
				symNames = append(symNames, f.Symbol)
			}
		}
		if len(symNames) == 0 {
			t.Fatalf("no symmetric findings; findings: %+v", findings)
		}
		joined := strings.Join(symNames, " ")
		if !strings.Contains(joined, "used_fields") && !strings.Contains(joined, "field_query_id") {
			t.Errorf("symmetric findings (%v) do not name the mistakenly shared variables", symNames)
		}
		// Describe renders something readable.
		text := findings[0].Describe(w.Prog)
		if !strings.Contains(text, "thread-local") {
			t.Errorf("top finding not described as thread-local candidate:\n%s", text)
		}
		return
	}
	t.Skip("bug never manifested")
}

// TestExamineGroupsAndCounts exercises grouping arithmetic directly.
func TestExamineGroupsAndCounts(t *testing.T) {
	log := []LogEntry{
		{CPU: 0, Block: 100, ReadPC: 10, LocalWritePC: 5, RemoteWritePC: 5, RemoteWriteCPU: 1, Dynamic: 7},
		{CPU: 1, Block: 100, ReadPC: 10, LocalWritePC: 5, RemoteWritePC: 5, RemoteWriteCPU: 0, Dynamic: 3},
		{CPU: 0, Block: 200, ReadPC: 20, LocalWritePC: 6, RemoteWritePC: 9, RemoteWriteCPU: 1, Dynamic: 1},
	}
	findings := Examine(nil, log)
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(findings))
	}
	top := findings[0]
	if top.Block != 100 || !top.Symmetric || top.Dynamic != 10 || top.Readers != 2 || top.Writers != 2 {
		t.Errorf("top finding = %+v", top)
	}
	second := findings[1]
	if second.Block != 200 || second.Symmetric {
		t.Errorf("second finding = %+v", second)
	}
	if top.Describe(nil) == "" || second.Describe(nil) == "" {
		t.Error("empty descriptions")
	}
}

// TestLogDynamicCounts: duplicate triples accumulate their Dynamic count.
func TestLogDynamicCounts(t *testing.T) {
	s := newScript(2, Options{})
	const q = 100
	for i := 0; i < 5; i++ {
		s.store(0, 0, rA, q)
		s.store(1, 0, rA, q)
		s.load(0, 1, rB, q)
	}
	log := s.d.Log()
	if len(log) != 1 {
		t.Fatalf("log entries = %d", len(log))
	}
	if log[0].Dynamic != 5 {
		t.Errorf("dynamic count = %d, want 5", log[0].Dynamic)
	}
}
