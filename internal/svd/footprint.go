package svd

// Footprint summarizes the detector's memory consumption, the paper's
// space-overhead axis (§7.3: "SVD records a CU pointer for each memory
// block, which means the space overhead is proportional to the total
// memory footprint of a program"; for Apache it doubled the simulator's
// memory use).
type Footprint struct {
	TrackedBlocks int // per-thread block states currently held
	LiveCUs       int // distinct live computational units reachable
	CUSetWords    int // total rs/ws entries across live units
	CtrlEntries   int // control-stack entries across threads
	ApproxBytes   int // rough total, for overhead reporting
}

// Footprint walks the detector state and measures it.
func (d *Detector) Footprint() Footprint {
	var f Footprint
	live := map[*cu]bool{}
	note := func(c *cu) {
		if c == nil {
			return
		}
		c = d.find(c)
		if c.active {
			live[c] = true
		}
	}
	for _, t := range d.threads {
		f.TrackedBlocks += t.nblocks
		f.CtrlEntries += len(t.ctrl)
		t.blocks.Range(func(_ int64, bs *blockState) bool {
			if bs.touched {
				note(bs.cu)
			}
			return true
		})
		for _, set := range t.regs {
			for _, c := range set {
				note(c)
			}
		}
		for _, e := range t.ctrl {
			for _, c := range e.cuSet {
				note(c)
			}
		}
	}
	f.LiveCUs = len(live)
	for c := range live {
		f.CUSetWords += c.rs.len() + c.ws.len()
	}
	// Rough accounting: a block state is ~96 bytes, a CU header (with its
	// inline footprint arrays) ~192, a spilled set entry ~16, a control
	// entry ~48.
	f.ApproxBytes = f.TrackedBlocks*96 + f.LiveCUs*192 + f.CUSetWords*16 + f.CtrlEntries*48
	return f
}
