package svd

// Footprint summarizes the detector's memory consumption, the paper's
// space-overhead axis (§7.3: "SVD records a CU pointer for each memory
// block, which means the space overhead is proportional to the total
// memory footprint of a program"; for Apache it doubled the simulator's
// memory use).
type Footprint struct {
	TrackedBlocks int // per-thread block states currently held
	LiveCUs       int // distinct live computational units reachable
	CUSetWords    int // total rs/ws entries across live units
	CtrlEntries   int // control-stack entries across threads
	ApproxBytes   int // rough total, for overhead reporting
}

// Footprint walks the detector state and measures it.
func (d *Detector) Footprint() Footprint {
	var f Footprint
	live := map[*cu]bool{}
	for _, t := range d.threads {
		f.TrackedBlocks += len(t.blocks)
		f.CtrlEntries += len(t.ctrl)
		for _, bs := range t.blocks {
			if bs.cu != nil {
				c := bs.cu.find()
				if c.active {
					live[c] = true
				}
			}
		}
		for _, set := range t.regs {
			for _, c := range set {
				c = c.find()
				if c.active {
					live[c] = true
				}
			}
		}
		for _, e := range t.ctrl {
			for _, c := range e.cuSet {
				c = c.find()
				if c.active {
					live[c] = true
				}
			}
		}
	}
	f.LiveCUs = len(live)
	for c := range live {
		f.CUSetWords += len(c.rs) + len(c.ws)
	}
	// Rough accounting: a block state is ~96 bytes, a CU header ~64, a
	// set entry ~16 (map overhead included), a control entry ~48.
	f.ApproxBytes = f.TrackedBlocks*96 + f.LiveCUs*64 + f.CUSetWords*16 + f.CtrlEntries*48
	return f
}
