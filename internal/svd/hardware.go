package svd

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/vm"
)

// This file explores the paper's §4.4 hardware SVD sketch: "multiprocessor
// caches can help store CUs; cache coherence protocols can help detect
// serializability violations". Instead of the software detector's perfect
// fan-out of every access to every instance, the Hardware wrapper routes
// remote-access messages through an MSI cache model: an instance hears
// about a remote access only when the coherence protocol actually delivers
// it an invalidation or downgrade, and it loses a block's detection state
// when the line is evicted — exactly the visibility a real cache-resident
// implementation would have. Comparing it against the software detector
// quantifies the detection cost of finite caches (BenchmarkHardwareSVD).

// StepLocal processes one instruction on its own CPU's instance only,
// without the software fan-out. Hardware-mode wrappers pair it with
// DeliverRemote.
func (d *Detector) StepLocal(ev *vm.Event) {
	d.stats.Instructions++
	d.threads[ev.CPU].local(ev)
}

// DeliverRemote delivers a remote-access message for ev to one instance —
// the hardware analogue of a snooped coherence transaction.
func (d *Detector) DeliverRemote(toCPU int, ev *vm.Event) {
	if !ev.Instr.Op.IsMem() || toCPU == ev.CPU {
		return
	}
	d.threads[toCPU].remote(ev, d.block(ev.Addr))
}

// EvictBlock drops one instance's state for a block, as when the cache
// line holding it is evicted: the FSM, conflict flag, and access history
// are gone. Any computational unit keeps its membership sets, but with the
// conflict flag lost the block can no longer trigger a violation.
func (d *Detector) EvictBlock(cpu int, block int64) {
	d.threads[cpu].evictBlock(block)
}

// Hardware is a vm.Observer running the detector with cache-mediated
// remote visibility.
type Hardware struct {
	Det    *Detector
	Caches *cache.Hierarchy

	blocksPerLine int64
}

// NewHardware builds a hardware-mode detector. The cache line size must be
// at least the detector block size.
func NewHardware(prog *isa.Program, numCPUs int, opts Options, ccfg cache.Config) (*Hardware, error) {
	ccfg = cache.Config{Sets: ccfg.Sets, Ways: ccfg.Ways, LineShift: ccfg.LineShift}
	if ccfg.LineShift < opts.BlockShift {
		return nil, fmt.Errorf("svd: cache lines (shift %d) smaller than detector blocks (shift %d)",
			ccfg.LineShift, opts.BlockShift)
	}
	return &Hardware{
		Det:           New(prog, numCPUs, opts),
		Caches:        cache.New(numCPUs, ccfg),
		blocksPerLine: 1 << (ccfg.LineShift - opts.BlockShift),
	}, nil
}

// Step implements vm.Observer.
func (hw *Hardware) Step(ev *vm.Event) {
	hw.Det.StepLocal(ev)
	if !ev.Instr.Op.IsMem() {
		return
	}
	res := hw.Caches.Access(ev.CPU, ev.Addr, ev.IsStore)
	for _, cpu := range res.Invalidated {
		hw.Det.DeliverRemote(cpu, ev)
	}
	for _, cpu := range res.Downgraded {
		hw.Det.DeliverRemote(cpu, ev)
	}
	if res.EvictedLine >= 0 {
		base := res.EvictedLine << (hw.Caches.Config().LineShift - hw.Det.opts.BlockShift)
		for i := int64(0); i < hw.blocksPerLine; i++ {
			hw.Det.EvictBlock(ev.CPU, base+i)
		}
	}
}
