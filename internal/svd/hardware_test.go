package svd

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/vm"
)

// hwScript drives a Hardware wrapper with synthesized events.
type hwScript struct {
	hw  *Hardware
	seq uint64
}

func newHWScript(t *testing.T, numCPUs int, ccfg cache.Config) *hwScript {
	t.Helper()
	hw, err := NewHardware(&isa.Program{Name: "hw", Code: make([]isa.Instr, 64)}, numCPUs, Options{}, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return &hwScript{hw: hw}
}

func (s *hwScript) load(cpu int, pc int64, rd isa.Reg, addr int64) {
	ev := vm.Event{Seq: s.seq, CPU: cpu, PC: pc, Instr: isa.Load(rd, isa.RegZero, addr), Addr: addr, IsLoad: true}
	s.seq++
	s.hw.Step(&ev)
}

func (s *hwScript) store(cpu int, pc int64, rs isa.Reg, addr int64) {
	ev := vm.Event{Seq: s.seq, CPU: cpu, PC: pc, Instr: isa.Store(rs, isa.RegZero, addr), Addr: addr, IsStore: true}
	s.seq++
	s.hw.Step(&ev)
}

func (s *hwScript) addi(cpu int, pc int64, rd, rs isa.Reg) {
	ev := vm.Event{Seq: s.seq, CPU: cpu, PC: pc, Instr: isa.Addi(rd, rs, 1)}
	s.seq++
	s.hw.Step(&ev)
}

// TestHardwareDetectsLostUpdate: with ample cache, the coherence-mediated
// detector catches the same lost update the software detector does: the
// invalidation of T0's cached copy is the remote-access message.
func TestHardwareDetectsLostUpdate(t *testing.T) {
	s := newHWScript(t, 2, cache.Config{Sets: 64, Ways: 4})
	const X = 100
	s.load(0, 0, rA, X)
	s.load(1, 0, rA, X)
	s.addi(1, 1, rA, rA)
	s.store(1, 2, rA, X) // invalidates T0's copy -> T0 hears the conflict
	s.addi(0, 1, rA, rA)
	s.store(0, 2, rA, X)
	if got := s.hw.Det.Stats().Violations; got != 1 {
		t.Errorf("hardware SVD violations = %d, want 1", got)
	}
}

// TestHardwareEvictionLosesDetection: with a single-line cache, T0's copy
// of X is evicted before T1's conflicting write, so the invalidation never
// reaches T0 and the violation is missed — the finite-capacity detection
// loss the §4.4 design must accept.
func TestHardwareEvictionLosesDetection(t *testing.T) {
	s := newHWScript(t, 2, cache.Config{Sets: 1, Ways: 1})
	const X, Y = 100, 101
	s.load(0, 0, rA, X)
	s.load(0, 1, rB, Y) // evicts X from T0's one-line cache
	s.load(1, 0, rA, X)
	s.addi(1, 1, rA, rA)
	s.store(1, 2, rA, X) // no copy in T0: no message
	s.addi(0, 2, rA, rA)
	s.store(0, 3, rA, X)
	if got := s.hw.Det.Stats().Violations; got != 0 {
		t.Errorf("hardware SVD with evictions reported %d violations, want 0 (state was lost)", got)
	}
	if s.hw.Caches.Stats().Evictions == 0 {
		t.Error("no evictions happened; the test is vacuous")
	}
}

// TestHardwareMatchesSoftwareOnAmpleCache: with caches big enough to avoid
// evictions, the coherence-mediated detector reports the same violations
// as the software full-snoop detector on a real workload execution.
func TestHardwareMatchesSoftwareOnAmpleCache(t *testing.T) {
	code := []isa.Instr{
		isa.LI(8, 40),
		isa.Load(9, isa.RegZero, 0),
		isa.Addi(9, 9, 1),
		isa.Store(9, isa.RegZero, 0),
		isa.Addi(8, 8, -1),
		isa.Bnez(8, 1),
		isa.Halt(),
	}
	p := &isa.Program{Name: "racy", Code: code, Entries: []int64{0, 0, 0}}

	run := func(obs func() vm.Observer) vm.Observer {
		m, err := vm.New(p, vm.Config{NumCPUs: 3, Seed: 4, MaxQuantum: 2})
		if err != nil {
			t.Fatal(err)
		}
		o := obs()
		m.Attach(o)
		if _, err := m.Run(1 << 20); err != nil {
			t.Fatal(err)
		}
		return o
	}

	sw := run(func() vm.Observer { return New(p, 3, Options{}) }).(*Detector)
	hwo := run(func() vm.Observer {
		hw, err := NewHardware(p, 3, Options{}, cache.Config{Sets: 1024, Ways: 8})
		if err != nil {
			t.Fatal(err)
		}
		return hw
	}).(*Hardware)

	if hwo.Caches.Stats().Evictions != 0 {
		t.Fatal("ample cache evicted; comparison invalid")
	}
	// Even without evictions the two differ slightly: a remote read of a
	// line both caches hold Shared produces no coherence transaction, so
	// the hardware detector misses some Loaded -> Loaded_Shared
	// transitions, which shifts CU lifecycles in both directions. The
	// detection must stay in the same ballpark.
	swV, hwV := sw.Stats().Violations, hwo.Det.Stats().Violations
	if swV == 0 {
		t.Fatal("no violations at all; test vacuous")
	}
	if hwV == 0 {
		t.Error("hardware SVD with ample cache detected nothing")
	}
	lo, hi := swV*8/10, swV*12/10
	if hwV < lo || hwV > hi {
		t.Errorf("hardware %d violations outside [%d,%d] of software %d", hwV, lo, hi, swV)
	}
	t.Logf("violations: software=%d hardware=%d", swV, hwV)
}

// TestHardwareCacheSizeSweep: detection degrades monotonically-ish as the
// cache shrinks; at minimum it never exceeds the software detector.
func TestHardwareCacheSizeSweep(t *testing.T) {
	code := []isa.Instr{
		isa.LI(8, 60),
		// touch a few scratch words to create eviction pressure
		isa.Load(10, isa.RegZero, 10),
		isa.Load(11, isa.RegZero, 20),
		isa.Load(12, isa.RegZero, 30),
		isa.Load(9, isa.RegZero, 0),
		isa.Addi(9, 9, 1),
		isa.Store(9, isa.RegZero, 0),
		isa.Addi(8, 8, -1),
		isa.Bnez(8, 1),
		isa.Halt(),
	}
	p := &isa.Program{Name: "sweep", Code: code, Entries: []int64{0, 0}}

	violationsWith := func(sets int) uint64 {
		m, err := vm.New(p, vm.Config{NumCPUs: 2, Seed: 9, MaxQuantum: 2})
		if err != nil {
			t.Fatal(err)
		}
		var obs vm.Observer
		var get func() uint64
		if sets == 0 {
			d := New(p, 2, Options{})
			obs, get = d, func() uint64 { return d.Stats().Violations }
		} else {
			hw, err := NewHardware(p, 2, Options{}, cache.Config{Sets: sets, Ways: 1})
			if err != nil {
				t.Fatal(err)
			}
			obs, get = hw, func() uint64 { return hw.Det.Stats().Violations }
		}
		m.Attach(obs)
		if _, err := m.Run(1 << 20); err != nil {
			t.Fatal(err)
		}
		return get()
	}

	software := violationsWith(0)
	big := violationsWith(256)
	tiny := violationsWith(2)
	// Visibility loss shifts detection both ways (missed conflicts, but
	// also missed CU cuts that would have cleared stale conflict flags),
	// so only coarse relations are stable: everything detects something,
	// and the tiny cache cannot beat software by more than noise.
	if software == 0 || big == 0 || tiny == 0 {
		t.Errorf("some configuration detected nothing: software=%d big=%d tiny=%d", software, big, tiny)
	}
	if tiny > software*3/2 {
		t.Errorf("tiny cache %d wildly exceeds software %d", tiny, software)
	}
	t.Logf("violations: software=%d, 256-set=%d, 2-set=%d", software, big, tiny)
}

// TestNewHardwareValidatesShapes rejects lines smaller than blocks.
func TestNewHardwareValidatesShapes(t *testing.T) {
	_, err := NewHardware(&isa.Program{Name: "x", Code: []isa.Instr{isa.Halt()}}, 1,
		Options{BlockShift: 2}, cache.Config{LineShift: 0})
	if err == nil {
		t.Error("line smaller than block accepted")
	}
}
