package svd

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

func interestCases() []struct {
	name string
	w    *workloads.Workload
} {
	return []struct {
		name string
		w    *workloads.Workload
	}{
		{"apache-buggy", workloads.ApacheLog(workloads.ApacheConfig{
			Threads: 4, Requests: 48, Buggy: true, Seed: 2,
		})},
		{"mysql-tables", workloads.MySQLTables(workloads.MySQLTablesConfig{
			Lockers: 3, Ops: 60,
		})},
		{"pgsql", workloads.PgSQLOLTP(workloads.PgSQLConfig{
			Warehouses: 2, Terminals: 4, Txns: 48, Seed: 2,
		})},
	}
}

// TestInterestDifferential runs real workloads twice — once consulting the
// block interest index, once with the full O(NumCPUs) fan-out — and
// requires identical observable output. A missing index member (a thread
// with touched state the index forgot) shows up here as a divergence in
// violations, logs, or FSM-driven stats.
func TestInterestDifferential(t *testing.T) {
	for _, tc := range interestCases() {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				indexed := runDetector(t, tc.w, seed, Options{})
				full := runDetector(t, tc.w, seed, Options{NoInterestIndex: true})

				if !reflect.DeepEqual(indexed.Violations(), full.Violations()) {
					t.Errorf("seed %d: violations diverge with interest index", seed)
				}
				if !reflect.DeepEqual(indexed.Log(), full.Log()) {
					t.Errorf("seed %d: a posteriori logs diverge with interest index", seed)
				}
				if !reflect.DeepEqual(indexed.Sites(), full.Sites()) {
					t.Errorf("seed %d: sites diverge with interest index", seed)
				}
				is, fs := indexed.Stats(), full.Stats()
				// The fan-out obligation is path-independent: every memory
				// instruction owes NumCPUs-1 notifications, sent or skipped.
				if is.RemoteSent+is.RemoteSkipped != fs.RemoteSent {
					t.Errorf("seed %d: sent %d + skipped %d != full fan-out %d",
						seed, is.RemoteSent, is.RemoteSkipped, fs.RemoteSent)
				}
				if is.RemoteSkipped == 0 {
					t.Errorf("seed %d: index never skipped a notification", seed)
				}
				if fs.RemoteSkipped != 0 {
					t.Errorf("seed %d: fallback skipped %d notifications", seed, fs.RemoteSkipped)
				}
				// Everything except the propagation counters must agree.
				is.RemoteSent, fs.RemoteSent = 0, 0
				is.RemoteSkipped, fs.RemoteSkipped = 0, 0
				if is != fs {
					t.Errorf("seed %d: stats diverge:\nindexed %+v\nfull    %+v", seed, is, fs)
				}
			}
		})
	}
}

// TestInterestPopulationMatchesTouched: after a run, the index must hold
// exactly one (thread, block) entry per touched block — no leaks, no
// misses.
func TestInterestPopulationMatchesTouched(t *testing.T) {
	for _, tc := range interestCases() {
		t.Run(tc.name, func(t *testing.T) {
			d := runDetector(t, tc.w, 1, Options{})
			want := 0
			for _, th := range d.threads {
				want += th.nblocks
				th.blocks.Range(func(b int64, bs *blockState) bool {
					if bs.touched && !d.ix.Get(b).Has(th.id) {
						t.Errorf("thread %d touched block %d but is not in the index", th.id, b)
					}
					return true
				})
			}
			if got := d.ix.Population(); got != want {
				t.Errorf("index population %d, want %d touched entries", got, want)
			}
		})
	}
}

// TestEvictBlockClearsInterest is the hardware-mode regression test:
// eviction must clear the index entry (no leak), and a later re-access
// must re-register so a subsequent remote conflict is still caught.
func TestEvictBlockClearsInterest(t *testing.T) {
	s := newScript(2, Options{})
	d := s.d
	const b = 100

	s.load(0, 0, rA, b)
	if !d.ix.Get(b).Has(0) {
		t.Fatal("local access did not register interest")
	}
	d.EvictBlock(0, b)
	if d.ix.Get(b).Has(0) {
		t.Fatal("eviction leaked the interest entry")
	}

	// A remote access between eviction and re-access must be skipped (the
	// evicted thread holds no state) without losing anything.
	skippedBefore := d.Stats().RemoteSkipped
	s.store(1, 1, rB, b)
	if d.Stats().RemoteSkipped != skippedBefore+1 {
		t.Errorf("remote access to an evicted block was not skipped")
	}

	// Re-access re-registers; the conflict that follows must reach thread 0
	// and surface as a violation at its next dependent store.
	s.load(0, 2, rA, b)
	if !d.ix.Get(b).Has(0) {
		t.Fatal("re-access did not re-register interest")
	}
	s.store(1, 3, rB, b) // remote write: flags the conflict on thread 0
	s.store(0, 4, rA, b) // dependent store: strict-2PL check fires
	if got := len(d.Violations()); got != 1 {
		t.Fatalf("violation after evict/re-touch cycle: got %d reports, want 1", got)
	}

	// The cycle must leave exactly the live entries behind.
	want := 0
	for _, th := range d.threads {
		want += th.nblocks
	}
	if got := d.ix.Population(); got != want {
		t.Errorf("index population %d after evict cycle, want %d", got, want)
	}
}

// TestBatchChopping is the batching property test: the same event stream
// chopped into arbitrary batch sizes — single events, a prime stride, the
// default ring capacity, one whole-trace batch — must produce output
// bit-identical to per-event Step.
func TestBatchChopping(t *testing.T) {
	w := workloads.PgSQLOLTP(workloads.PgSQLConfig{
		Warehouses: 2, Terminals: 4, Txns: 48, Seed: 2,
	})
	m, err := w.NewVM(1)
	if err != nil {
		t.Fatal(err)
	}
	var evs []vm.Event
	m.Attach(vm.ObserverFunc(func(ev *vm.Event) { evs = append(evs, *ev) }))
	if _, err := m.Run(1 << 24); err != nil {
		t.Fatal(err)
	}

	ref := New(w.Prog, w.NumThreads, Options{})
	for i := range evs {
		ref.Step(&evs[i])
	}

	for _, size := range []int{1, 7, vm.DefaultBatchCap, len(evs)} {
		t.Run(fmt.Sprintf("batch-%d", size), func(t *testing.T) {
			d := New(w.Prog, w.NumThreads, Options{})
			for lo := 0; lo < len(evs); lo += size {
				hi := lo + size
				if hi > len(evs) {
					hi = len(evs)
				}
				d.StepBatch(evs[lo:hi])
			}
			if !reflect.DeepEqual(d.Violations(), ref.Violations()) {
				t.Error("violations diverge from per-event Step")
			}
			if !reflect.DeepEqual(d.Log(), ref.Log()) {
				t.Error("logs diverge from per-event Step")
			}
			if !reflect.DeepEqual(d.Sites(), ref.Sites()) {
				t.Error("sites diverge from per-event Step")
			}
			if d.Stats() != ref.Stats() {
				t.Errorf("stats diverge:\nbatched %+v\nstepped %+v", d.Stats(), ref.Stats())
			}
		})
	}
}

// TestCloneCarriesInterest: a cloned detector must rebuild the index from
// its copied touched blocks, so post-rollback detection keeps eliding and
// keeps catching conflicts.
func TestCloneCarriesInterest(t *testing.T) {
	w := workloads.MySQLTables(workloads.MySQLTablesConfig{Lockers: 3, Ops: 40})
	d := runDetector(t, w, 3, Options{})
	c := d.Clone()
	if c.ix == nil {
		t.Fatal("clone dropped the interest index")
	}
	if got, want := c.ix.Population(), d.ix.Population(); got != want {
		t.Errorf("clone index population %d, want %d", got, want)
	}
	for _, th := range c.threads {
		th.blocks.Range(func(b int64, bs *blockState) bool {
			if bs.touched && !c.ix.Get(b).Has(th.id) {
				t.Errorf("clone thread %d touched block %d missing from index", th.id, b)
			}
			return true
		})
	}
}
