package svd

import (
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Eviction under coalescing. Hardware mode (EvictBlock) deletes a
// thread's block state out from under every locality cache the hot path
// keeps: the MRU block-pointer cache would otherwise resurrect a
// zeroed slot without re-registering interest, and the fanout quiet
// cache would otherwise keep skipping deliveries the now-shrunk
// interest set no longer justifies. These tests interleave evictions
// with the coalesced columnar path and require bit-identical outputs
// against per-event Step with the same evictions at the same points.

// mkColumns converts a run of events into one columnar batch.
func mkColumns(evs []vm.Event) *vm.EventBatch {
	eb := vm.NewEventBatch(len(evs))
	for i := range evs {
		eb.Append(&evs[i])
	}
	return eb
}

// evictScript builds an event stream in segments separated by eviction
// points, so the same schedule can drive Step and StepColumns.
type evictScript struct {
	prog     *isa.Program
	segments [][]vm.Event
	evicts   [][2]int64 // after segment i: evict [cpu, block]
	seq      uint64
}

func newEvictScript() *evictScript {
	code := []isa.Instr{
		isa.Load(isa.Reg(8), isa.RegZero, 0),
		isa.Store(isa.Reg(8), isa.RegZero, 0),
		isa.Halt(),
	}
	return &evictScript{prog: &isa.Program{Name: "evict", Code: code}, segments: [][]vm.Event{nil}}
}

func (s *evictScript) load(cpu int, addr int64) {
	s.seq++
	last := len(s.segments) - 1
	s.segments[last] = append(s.segments[last], vm.Event{
		Seq: s.seq, CPU: cpu, PC: 0, Instr: s.prog.Code[0], Addr: addr, IsLoad: true, Loaded: 1,
	})
}

func (s *evictScript) store(cpu int, addr int64) {
	s.seq++
	last := len(s.segments) - 1
	s.segments[last] = append(s.segments[last], vm.Event{
		Seq: s.seq, CPU: cpu, PC: 1, Instr: s.prog.Code[1], Addr: addr, IsStore: true, Stored: 2,
	})
}

func (s *evictScript) evict(cpu int, block int64) {
	s.evicts = append(s.evicts, [2]int64{int64(cpu), block})
	s.segments = append(s.segments, nil)
}

// run drives the schedule through a detector, feeding each segment via
// feed and applying the eviction between segments.
func (s *evictScript) run(d *Detector, feed func(d *Detector, evs []vm.Event)) {
	for i, seg := range s.segments {
		feed(d, seg)
		if i < len(s.evicts) {
			d.EvictBlock(int(s.evicts[i][0]), s.evicts[i][1])
		}
	}
}

type evictOutputs struct {
	Violations []Violation
	Log        []LogEntry
	Stats      Stats
}

func (s *evictScript) differential(t *testing.T) {
	t.Helper()
	perEvent := New(s.prog, 3, Options{})
	s.run(perEvent, func(d *Detector, evs []vm.Event) {
		for i := range evs {
			d.Step(&evs[i])
		}
	})
	want := evictOutputs{perEvent.Violations(), perEvent.Log(), perEvent.Stats()}

	columnar := New(s.prog, 3, Options{})
	s.run(columnar, func(d *Detector, evs []vm.Event) {
		if len(evs) > 0 {
			d.StepColumns(mkColumns(evs))
		}
	})
	got := evictOutputs{columnar.Violations(), columnar.Log(), columnar.Stats()}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("columnar path with evictions diverges from per-event:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestEvictionUnderCoalescingHammer: a thread hammers one block (deep
// quiet coalescing), loses it to eviction mid-run, and resumes — then a
// cross-thread conflict pattern checks detection state reflects the
// eviction, not the caches.
func TestEvictionUnderCoalescingHammer(t *testing.T) {
	s := newEvictScript()
	const X = 64
	for i := 0; i < 24; i++ {
		s.load(0, X)
	}
	s.store(0, X)
	s.evict(0, X)
	// Resume hammering the evicted block: the MRU entry must not
	// resurrect the zeroed slot without re-registering interest.
	for i := 0; i < 24; i++ {
		s.load(0, X)
	}
	// Lost-update pattern across threads on the same block.
	s.load(1, X)
	s.load(2, X)
	s.store(2, X)
	s.store(1, X)
	s.differential(t)
}

// TestEvictionUnderCoalescingPingPong: both entries of the 2-entry
// caches hold blocks A and B; evicting each in turn (from different
// threads, at different cache slots) must invalidate exactly the right
// entries while batches keep coalescing across the eviction points.
func TestEvictionUnderCoalescingPingPong(t *testing.T) {
	s := newEvictScript()
	const A, B = 128, 256
	for i := 0; i < 8; i++ {
		s.load(0, A)
		s.load(0, B)
		s.load(1, A)
		s.load(1, B)
	}
	s.evict(0, A) // MRU slot 1 on cpu 0
	for i := 0; i < 8; i++ {
		s.load(0, A)
		s.load(0, B)
	}
	s.evict(0, B) // now the other entry
	s.store(1, A)
	s.store(1, B)
	s.load(0, A)
	s.store(0, A)
	s.store(1, A)
	s.differential(t)
}

// TestEvictionRestoresDetectionLoss mirrors the hardware-mode semantic:
// state evicted between the loads and the stores of a lost-update
// pattern erases the conflict evidence, so the violation must NOT be
// reported — a stale cache entry surviving the eviction would keep the
// conflict flag alive and report it anyway.
func TestEvictionRestoresDetectionLoss(t *testing.T) {
	s := newEvictScript()
	const X = 64
	s.load(0, X)
	for i := 0; i < 8; i++ {
		s.load(1, X) // populate cpu1's MRU + quiet caches
	}
	s.store(1, X)
	s.evict(0, X) // cpu0 loses its read history for X
	s.store(0, X)
	s.differential(t)

	// And the per-event reference itself must report nothing: the
	// eviction destroyed the evidence.
	d := New(s.prog, 3, Options{})
	s.run(d, func(d *Detector, evs []vm.Event) {
		for i := range evs {
			d.Step(&evs[i])
		}
	})
	if n := d.Stats().Violations; n != 0 {
		t.Errorf("eviction should have erased the conflict, got %d violations", n)
	}
}
